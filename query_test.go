package mdlog

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"mdlog/internal/html"
	"mdlog/internal/tree"
)

const crossPage = `
<html><body>
<table>
  <tr><td>Espresso</td><td><b>2.20</b></td></tr>
  <tr><td>Cappuccino</td><td><b>3.10</b></td></tr>
  <tr><td>Water</td><td>1.00</td></tr>
</table>
</body></html>`

// The same unary query — "td elements having a b-labeled child" —
// written in five of the paper's formalisms. Compiled through the one
// Compile entry point, all must select the same node set.
var crossSources = []struct {
	lang Language
	src  string
	opts []Option
}{
	{LangDatalog, `q(X) :- label_td(X), child(X,Y), label_b(Y). ?- q.`, nil},
	{LangMSO, `label_td(x) & exists y (child(x,y) & label_b(y))`, nil},
	{LangXPath, `//td[b]`, nil},
	{LangCaterpillar, `child*.label_td.child.label_b.(child^-1).label_td`, nil},
	{LangElog, `q(x) :- root(x0), subelem("html.body.table.tr.td", x0, x), contains("b", x, y).`, nil},
}

func TestCompileCrossFormalismEquivalence(t *testing.T) {
	doc := ParseHTML(crossPage)
	ctx := context.Background()

	// Reference: the direct Core XPath evaluator.
	xp, err := ParseXPath("//td[b]")
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprint(XPathSelect(xp, doc))
	if want == "[]" {
		t.Fatalf("reference query selects nothing; bad test document")
	}

	for _, lvl := range []OptLevel{OptNone, OptFull} {
		for _, cs := range crossSources {
			opts := append([]Option{WithOptLevel(lvl)}, cs.opts...)
			q, err := Compile(cs.src, cs.lang, opts...)
			if err != nil {
				t.Fatalf("%v/%v: compile: %v", cs.lang, lvl, err)
			}
			got, err := q.Select(ctx, doc)
			if err != nil {
				t.Fatalf("%v/%v: select: %v", cs.lang, lvl, err)
			}
			if fmt.Sprint(got) != want {
				t.Errorf("%v/%v selects %v, want %v", cs.lang, lvl, got, want)
			}
			// Repeated execution must be stable (and exercise the cache).
			again, err := q.Select(ctx, doc)
			if err != nil {
				t.Fatalf("%v/%v: second select: %v", cs.lang, lvl, err)
			}
			if fmt.Sprint(again) != want {
				t.Errorf("%v/%v second select %v, want %v", cs.lang, lvl, again, want)
			}
		}
	}
}

func TestCompileTMNFRoute(t *testing.T) {
	doc := ParseHTML(crossPage)
	p, err := ParseProgram(`q(X) :- label_td(X), child(X,Y), label_b(Y). ?- q.`)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := ToTMNF(p)
	if err != nil {
		t.Fatal(err)
	}
	// Program.String drops the ?- directive; WithQueryPred restores it.
	q, err := Compile(tp.String(), LangTMNF, WithQueryPred("q"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := q.Select(context.Background(), doc)
	if err != nil {
		t.Fatal(err)
	}
	xp, _ := ParseXPath("//td[b]")
	if want := fmt.Sprint(XPathSelect(xp, doc)); fmt.Sprint(got) != want {
		t.Errorf("TMNF route selects %v, want %v", got, want)
	}

	// LangTMNF must validate, not normalize.
	if _, err := Compile(`q(X) :- child(X,Y), label_b(Y).`, LangTMNF); err == nil {
		t.Error("LangTMNF accepted a non-TMNF program")
	}
}

func TestCompileEngines(t *testing.T) {
	doc := ParseHTML(crossPage)
	src := `sel(X) :- label_td(X), firstchild(X,Y), label_b(Y).` // td whose first child is b
	want := ""
	for _, e := range []Engine{EngineLinear, EngineSemiNaive, EngineNaive, EngineLIT} {
		q, err := Compile(src, LangDatalog, WithEngine(e), WithQueryPred("sel"))
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		got, err := q.Select(context.Background(), doc)
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		if want == "" {
			want = fmt.Sprint(got)
		} else if fmt.Sprint(got) != want {
			t.Errorf("engine %v selects %v, want %v", e, got, want)
		}
	}
}

// TestEvalHidesNormalizationHelpers pins the Eval contract: when the
// linear engine TMNF-normalizes a child-using program, the tm_*
// auxiliaries must not leak into the visible relations.
func TestEvalHidesNormalizationHelpers(t *testing.T) {
	doc := ParseHTML(crossPage)
	src := `q(X) :- child(Y,X), label_tr(Y).`
	want := ""
	for _, e := range []Engine{EngineLinear, EngineSemiNaive} {
		cq, err := Compile(src, LangDatalog, WithEngine(e))
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		db, err := cq.Eval(context.Background(), doc)
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		preds := fmt.Sprint(db.Preds())
		if want == "" {
			want = preds
		} else if preds != want {
			t.Errorf("engine %v exposes %v, engine linear exposes %v", e, preds, want)
		}
		if preds != "[q]" {
			t.Errorf("engine %v exposes %v, want [q]", e, preds)
		}
	}
}

func TestCompiledQueryWrap(t *testing.T) {
	doc := ParseHTML(crossPage)
	src := `
row(x)   :- root(x0), subelem("html.body.table.tr", x0, x).
price(x) :- row(x0), subelem("td.b.#text", x0, x).
`
	q, err := Compile(src, LangElog, WithWrapOptions(WrapOptions{KeepText: true}))
	if err != nil {
		t.Fatal(err)
	}
	out, assign, err := q.WrapAssign(context.Background(), doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(assign["row"]) != 3 || len(assign["price"]) != 2 {
		t.Fatalf("assignment = %v", assign)
	}
	// Legacy wrapper agrees.
	prog, err := ParseElog(src)
	if err != nil {
		t.Fatal(err)
	}
	w := &ElogWrapper{Program: prog, Options: WrapOptions{KeepText: true}}
	lout, lassign, err := w.Run(doc)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(assign) != fmt.Sprint(lassign) {
		t.Errorf("assignment %v vs legacy %v", assign, lassign)
	}
	if !out.Equal(lout) {
		t.Errorf("output tree differs from legacy wrapper:\n%s\nvs\n%s", out, lout)
	}
}

func TestElogSelectNeedsUniquePattern(t *testing.T) {
	src := `
a(x) :- root(x0), subelem("_", x0, x).
b(x) :- root(x0), subelem("_._", x0, x).
`
	q, err := Compile(src, LangElog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Select(context.Background(), ParseHTML(crossPage)); err == nil {
		t.Error("Select on ambiguous Elog program should error")
	}
	q2, err := Compile(src, LangElog, WithQueryPred("b"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q2.Select(context.Background(), ParseHTML(crossPage)); err != nil {
		t.Errorf("WithQueryPred select: %v", err)
	}
	// A single-pattern WithExtract also disambiguates Select.
	q3, err := Compile(src, LangElog, WithExtract("b"))
	if err != nil {
		t.Fatal(err)
	}
	if ids, err := q3.Select(context.Background(), ParseHTML(crossPage)); err != nil {
		t.Errorf("WithExtract select: %v", err)
	} else if len(ids) == 0 {
		t.Error("WithExtract select returned nothing")
	}
}

func TestCompiledQueryStats(t *testing.T) {
	doc := ParseHTML(crossPage)
	q, err := Compile(`q(X) :- label_td(X). ?- q.`, LangDatalog)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := q.Select(ctx, doc); err != nil {
		t.Fatal(err)
	}
	ids, rs, err := q.SelectStats(ctx, doc)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Runs != 1 || rs.Facts != int64(len(ids)) {
		t.Errorf("per-run stats = %+v", rs)
	}
	if rs.CacheHits != 1 {
		t.Errorf("second run on same tree should hit the cache: %+v", rs)
	}
	agg := q.Stats()
	if agg.Runs != 2 || agg.CacheHits < 1 {
		t.Errorf("aggregate stats = %+v", agg)
	}
	if agg.Compile <= 0 {
		t.Errorf("compile time not recorded: %+v", agg)
	}
}

func TestCompiledQueryContextCancel(t *testing.T) {
	q, err := Compile(`q(X) :- label_td(X). ?- q.`, LangDatalog)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := q.Select(ctx, ParseHTML(crossPage)); err == nil {
		t.Error("canceled context should fail Select")
	}
}

func TestSharedCacheAcrossQueries(t *testing.T) {
	doc := ParseHTML(crossPage)
	tc := NewTreeCache(0)
	q1, err := Compile(`q(X) :- label_td(X). ?- q.`, LangDatalog, WithCache(tc))
	if err != nil {
		t.Fatal(err)
	}
	q2, err := Compile(`q(X) :- label_tr(X). ?- q.`, LangDatalog, WithCache(tc))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := q1.Select(ctx, doc); err != nil {
		t.Fatal(err)
	}
	if _, rs, err := q2.SelectStats(ctx, doc); err != nil {
		t.Fatal(err)
	} else if rs.CacheHits != 1 {
		t.Errorf("q2 should reuse q1's cached document state: %+v", rs)
	}
	if tc.Len() != 1 {
		t.Errorf("cache holds %d trees, want 1", tc.Len())
	}
}

// TestUnknownBinaryDiagnosedAtEveryOptLevel: a typo'd tree relation
// must fail compilation identically at -O0 and -O1 — the optimizer is
// not allowed to eliminate its way past a diagnosable error, even
// when the offending rule is outside the extraction roots.
func TestUnknownBinaryDiagnosedAtEveryOptLevel(t *testing.T) {
	for _, src := range []string{
		`
q(X) :- label_td(X).
r(X) :- bogus(X,Y), label_b(Y).
`,
		// Indirect: the offending rule references an intensional
		// predicate whose defining rule is otherwise dead — it must
		// stay defined so the engine reaches the typo'd binary atom.
		`
q(X) :- label_td(X).
p(X) :- label_b(X).
r(X) :- p(X), bogus(X,Y).
`,
	} {
		for _, lvl := range []OptLevel{OptNone, OptFull} {
			_, err := Compile(src, LangDatalog, WithExtract("q"), WithOptLevel(lvl))
			if err == nil || !strings.Contains(err.Error(), "unknown binary predicate") {
				t.Errorf("%v: want the unknown-binary diagnosis, got %v\nprogram:%s", lvl, err, src)
			}
		}
	}
}

// TestResultMemoNoAliasing pins the TreeCache memo-key contract: the
// key hashes the POST-optimization program (plus engine and visible
// predicates), so two semantically different compilations of the SAME
// source string — different extraction lists, different optimization
// levels — never share a memo entry, while byte-identical plans do.
func TestResultMemoNoAliasing(t *testing.T) {
	doc := ParseHTML(crossPage)
	tc := NewTreeCache(0)
	ctx := context.Background()
	src := `
a(X) :- label_td(X).
b(X) :- label_tr(X).
`
	compile := func(extract string, lvl OptLevel) *CompiledQuery {
		t.Helper()
		q, err := Compile(src, LangDatalog, WithCache(tc), WithExtract(extract), WithOptLevel(lvl))
		if err != nil {
			t.Fatal(err)
		}
		return q
	}

	qa := compile("a", OptFull)
	dbA, err := qa.Eval(ctx, doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dbA.UnarySet("a")) == 0 {
		t.Fatalf("extract-a query found no td nodes")
	}

	// Same source, different visible predicate: must NOT reuse qa's
	// memoized (and a-only) result.
	qb := compile("b", OptFull)
	dbB, err := qb.Eval(ctx, doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dbB.UnarySet("b")) == 0 {
		t.Fatalf("extract-b query served a stale memo entry: %v", dbB)
	}

	// Same source and extraction, different optimization level: the
	// optimized and unoptimized plans differ, so a third entry appears.
	qa0 := compile("a", OptNone)
	if _, err := qa0.Eval(ctx, doc); err != nil {
		t.Fatal(err)
	}
	if got := tc.Stats().Results; got != 3 {
		t.Fatalf("memo holds %d entries, want 3 (a/O1, b/O1, a/O0)", got)
	}

	// A byte-identical plan from a separate Compile call SHARES the
	// entry: cross-query amortization, the flip side of the hash key.
	qaDup := compile("a", OptFull)
	if _, rs, err := qaDup.EvalStats(ctx, doc); err != nil {
		t.Fatal(err)
	} else if rs.CacheHits != 1 {
		t.Errorf("identical plan should hit the shared memo: %+v", rs)
	}
	if got := tc.Stats().Results; got != 3 {
		t.Errorf("identical plan grew the memo to %d entries", got)
	}
}

// TestRunnerFanOut exercises the Runner under -race: one compiled
// query, many documents, bounded workers, results in order; plus many
// goroutines hammering one document through the shared TreeCache.
func TestRunnerFanOut(t *testing.T) {
	q, err := Compile(`q(X) :- label_b(X). ?- q.`, LangDatalog)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))
	docs := make([]*Tree, 40)
	for i := range docs {
		docs[i] = tree.Random(rng, tree.RandomOptions{Labels: []string{"a", "b"}, Size: 50 + i, MaxChildren: 4})
	}
	want := make([][]int, len(docs))
	for i, d := range docs {
		ids, err := q.Select(ctx, d)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = ids
	}

	r := Runner{Workers: 8}
	res := r.SelectAll(ctx, q, docs)
	if len(res) != len(docs) {
		t.Fatalf("got %d results", len(res))
	}
	for i, x := range res {
		if x.Err != nil {
			t.Fatalf("doc %d: %v", i, x.Err)
		}
		if x.Index != i || x.Doc != docs[i] {
			t.Fatalf("result %d out of order (index %d)", i, x.Index)
		}
		if fmt.Sprint(x.Nodes) != fmt.Sprint(want[i]) {
			t.Errorf("doc %d: %v, want %v", i, x.Nodes, want[i])
		}
	}

	// Streaming: same results, same order.
	in := make(chan *Tree)
	go func() {
		defer close(in)
		for _, d := range docs {
			in <- d
		}
	}()
	i := 0
	for x := range r.SelectStream(ctx, q, in) {
		if x.Err != nil {
			t.Fatalf("stream doc %d: %v", i, x.Err)
		}
		if x.Index != i {
			t.Fatalf("stream result %d has index %d", i, x.Index)
		}
		if fmt.Sprint(x.Nodes) != fmt.Sprint(want[i]) {
			t.Errorf("stream doc %d: %v, want %v", i, x.Nodes, want[i])
		}
		i++
	}
	if i != len(docs) {
		t.Fatalf("stream yielded %d of %d", i, len(docs))
	}

	// Concurrent Select on the SAME document: the TreeCache must be
	// race-clean and the answer identical every time.
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 20; k++ {
				ids, err := q.Select(ctx, docs[0])
				if err != nil {
					t.Error(err)
					return
				}
				if fmt.Sprint(ids) != fmt.Sprint(want[0]) {
					t.Errorf("concurrent select: %v, want %v", ids, want[0])
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestRunnerWrapAll(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	docs := []*Tree{
		ParseHTML(html.ProductListing(rng, 3)),
		ParseHTML(html.ProductListing(rng, 5)),
		ParseHTML(html.ProductListing(rng, 2)),
	}
	q, err := Compile(`
item(x)  :- root(x0), subelem("html.body.table.tr", x0, x).
price(x) :- item(x0), subelem("td.b.#text", x0, x).
`, LangElog, WithWrapOptions(WrapOptions{KeepText: true}))
	if err != nil {
		t.Fatal(err)
	}
	res := Runner{Workers: 3}.WrapAll(context.Background(), q, docs)
	for i, x := range res {
		if x.Err != nil {
			t.Fatalf("doc %d: %v", i, x.Err)
		}
		if len(x.Assignment["item"]) == 0 {
			t.Errorf("doc %d extracted nothing: %v", i, x.Assignment)
		}
	}
	// ProductListing emits one header row plus the item rows.
	if len(res[0].Assignment["item"]) != 4 || len(res[1].Assignment["item"]) != 6 {
		t.Errorf("row counts: %v / %v", res[0].Assignment, res[1].Assignment)
	}
}

func TestRunnerContextCancel(t *testing.T) {
	q, err := Compile(`q(X) :- label_a(X). ?- q.`, LangDatalog)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	docs := []*Tree{MustParseTree(t, "a(b,c)"), MustParseTree(t, "a(a)")}
	res := Runner{Workers: 2}.SelectAll(ctx, q, docs)
	for i, x := range res {
		if x.Err == nil {
			t.Errorf("doc %d should carry the cancellation error", i)
		}
	}
}

func MustParseTree(t *testing.T, s string) *Tree {
	t.Helper()
	tr, err := ParseTree(s)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestShimsMatchCompiled pins the legacy free functions to the new
// path they now delegate to.
func TestShimsMatchCompiled(t *testing.T) {
	doc := ParseHTML(crossPage)
	ctx := context.Background()

	p, err := ParseProgram(`q(X) :- label_td(X), firstchild(X,Y). ?- q.`)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := Query(p, doc)
	if err != nil {
		t.Fatal(err)
	}
	cq, err := CompileProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	unified, err := cq.Select(ctx, doc)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(legacy) != fmt.Sprint(unified) {
		t.Errorf("Query %v vs CompiledQuery %v", legacy, unified)
	}

	xp, err := ParseXPath("//tr[not(td/b)]") // negation: direct plan
	if err != nil {
		t.Fatal(err)
	}
	got := XPathSelect(xp, doc)
	if len(got) != 1 {
		t.Errorf("negation query selects %v, want one row", got)
	}

	ce, err := ParseCaterpillar("child.child")
	if err != nil {
		t.Fatal(err)
	}
	cc, err := CompileCaterpillar(ce)
	if err != nil {
		t.Fatal(err)
	}
	cids, err := cc.Select(ctx, doc)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(CaterpillarSelect(ce, doc)) != fmt.Sprint(cids) {
		t.Errorf("CaterpillarSelect disagrees with compiled route")
	}
}

// TestRunnerSelectHTMLStream drives raw HTML readers through the
// worker pool: streaming parse (arena ingestion) + Select per worker,
// results in input order.
func TestRunnerSelectHTMLStream(t *testing.T) {
	q, err := Compile(`//td[b]`, LangXPath)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(9))
	srcs := make([]string, 24)
	want := make([][]int, len(srcs))
	for i := range srcs {
		srcs[i] = html.ProductListing(rng, 3+i)
		ids, err := q.Select(ctx, ParseHTML(srcs[i]))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = ids
	}

	in := make(chan io.Reader)
	go func() {
		defer close(in)
		for _, s := range srcs {
			in <- strings.NewReader(s)
		}
	}()
	r := Runner{Workers: 6}
	i := 0
	for x := range r.SelectHTMLStream(ctx, q, in) {
		if x.Err != nil {
			t.Fatalf("doc %d: %v", i, x.Err)
		}
		if x.Index != i {
			t.Fatalf("result %d has index %d", i, x.Index)
		}
		if x.Doc == nil || x.Doc.Size() == 0 {
			t.Fatalf("doc %d missing parsed tree", i)
		}
		if fmt.Sprint(x.Nodes) != fmt.Sprint(want[i]) {
			t.Errorf("doc %d: %v, want %v", i, x.Nodes, want[i])
		}
		i++
	}
	if i != len(srcs) {
		t.Fatalf("yielded %d of %d", i, len(srcs))
	}

	// A failing reader surfaces as a per-document error, not a hang.
	in2 := make(chan io.Reader, 2)
	in2 <- strings.NewReader(srcs[0])
	in2 <- iotestErrReader{}
	close(in2)
	var errs, oks int
	for x := range r.SelectHTMLStream(ctx, q, in2) {
		if x.Err != nil {
			errs++
		} else {
			oks++
		}
	}
	if errs != 1 || oks != 1 {
		t.Errorf("errs=%d oks=%d", errs, oks)
	}
}

type iotestErrReader struct{}

func (iotestErrReader) Read([]byte) (int, error) { return 0, fmt.Errorf("boom") }
