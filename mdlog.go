// Package mdlog is a from-scratch Go implementation of
//
//	Georg Gottlob and Christoph Koch:
//	"Monadic Datalog and the Expressive Power of Languages for Web
//	Information Extraction", PODS 2002.
//
// The paper proves six query formalisms over trees equally expressive;
// this package makes them equally usable. Any of them compiles — once
// — through [Compile] into a [CompiledQuery] that runs over any number
// of documents, concurrently:
//
//	Language          Source syntax                         Paper
//	LangDatalog       p(X) :- label_td(X), child(X,Y).      Section 3, Thm 4.2
//	LangTMNF          datalog already in normal form        Definition 5.1
//	LangMSO           exists y (child(x,y) & label_b(y))    Section 2, Thm 4.4
//	LangXPath         //table/tr[td/b]/td                   Section 7 remark
//	LangCaterpillar   child*.label_td.child.label_b         Lemma 5.9, Cor 5.12
//	LangElog          item(x) :- root(r), subelem(p, r, x)  Section 6, Cor 6.4
//	LangSpanner       p(X,A) :- c(X), text(X,S),            extension: document
//	                       match(S, /(?<a>\d+)/, A).        spanners
//
// (Query automata, the sixth formalism of the equivalence, arrive via
// their datalog translations — [QAr.ToDatalog] / [SQAu] — and
// LangDatalog.) Each language normalizes onto one of three prepared
// plans: the Theorem 4.2 linear-time datalog engine (via the TMNF
// rewriting of Theorem 5.2 where needed), a deterministic tree
// automaton, or a direct evaluator for the fragments with no positive
// datalog translation. The seventh language steps beyond the paper's
// node-selecting equivalence: a spanner program pairs monadic-datalog
// node rules with span rules whose regex formulas compile to
// variable-set automata over node text and attribute values, returning
// span relations ([CompiledQuery.Spans]) instead of bare node ids.
//
// Documents come from [ParseHTML] / [ParseHTMLReader] (streaming,
// arena-backed) or term syntax via [ParseTree]; [Runner] fans a
// compiled query over document collections and streams with a bounded
// worker pool. Many wrappers over the same pages fuse into a
// [QuerySet] — one shared evaluation pass per document, per-wrapper
// results and error isolation. cmd/mdlogd serves a registry of
// compiled wrappers over HTTP (internal/service), including fused
// all-wrapper extraction (/extractall, /batchall).
//
// This file is a façade re-exporting the user-facing surface of the
// internal packages; see ARCHITECTURE.md for the theorem-by-theorem
// map of the paper onto the code, DESIGN.md for the system inventory,
// and EXPERIMENTS.md for the reproduction of the paper's results.
package mdlog

import (
	"context"
	"fmt"
	"io"

	"mdlog/internal/caterpillar"
	"mdlog/internal/datalog"
	"mdlog/internal/elog"
	"mdlog/internal/eval"
	"mdlog/internal/html"
	"mdlog/internal/mso"
	"mdlog/internal/qa"
	"mdlog/internal/tmnf"
	"mdlog/internal/tree"
	"mdlog/internal/wrap"
	"mdlog/internal/xpath"
)

// Trees (Section 2).
type (
	// Tree is an ordered unranked labeled tree with document-order ids.
	Tree = tree.Tree
	// Node is a tree node.
	Node = tree.Node
	// RankedAlphabet assigns arities for ranked trees (τ_rk).
	RankedAlphabet = tree.RankedAlphabet
)

// ParseTree reads term syntax, e.g. "a(b,c(d))".
func ParseTree(s string) (*Tree, error) { return tree.Parse(s) }

// NewTree indexes a hand-built tree.
func NewTree(root *Node) *Tree { return tree.NewTree(root) }

// NewNode builds a node with children.
func NewNode(label string, children ...*Node) *Node { return tree.New(label, children...) }

// ParseHTML parses an HTML document into its tree (the pre-parsed
// document model the paper assumes as a front end).
func ParseHTML(src string) *Tree { return html.Parse(src) }

// ParseHTMLReader parses an HTML document from a stream: a single
// tokenizer pass builds the arena (struct-of-arrays) representation
// the evaluation engines index directly, without materializing the
// source as one string. The only possible error is a read error.
func ParseHTMLReader(r io.Reader) (*Tree, error) { return html.ParseReader(r) }

// Datalog (Section 3).
type (
	// Program is a datalog program.
	Program = datalog.Program
	// Rule is a datalog rule.
	Rule = datalog.Rule
	// Atom is a datalog atom.
	Atom = datalog.Atom
	// Term is a variable or constant.
	Term = datalog.Term
	// Database is a finite relational structure.
	Database = datalog.Database
)

// ParseProgram reads datalog syntax ("p(X) :- q(X,Y)." with an
// optional "?- p." query directive).
func ParseProgram(src string) (*Program, error) { return datalog.ParseProgram(src) }

// TreeDB materializes τ_ur (see eval options for extensions).
func TreeDB(t *Tree, opts ...eval.TreeDBOption) *Database { return eval.TreeDB(t, opts...) }

// Evaluation engines (Sections 3.2 and 4.1).
type Engine = eval.Engine

const (
	// EngineLinear is the Theorem 4.2 O(|P|·|dom|) engine.
	EngineLinear = eval.EngineLinear
	// EngineSemiNaive is generic semi-naive evaluation.
	EngineSemiNaive = eval.EngineSemiNaive
	// EngineNaive is the reference naive fixpoint.
	EngineNaive = eval.EngineNaive
	// EngineLIT is the monadic Datalog LIT engine (Proposition 3.7).
	EngineLIT = eval.EngineLIT
	// EngineBitmap evaluates the same Theorem 4.2 fragment as
	// EngineLinear as bulk bitset algebra over the arena columns.
	EngineBitmap = eval.EngineBitmap
)

// ParseEngineFlag converts a CLI flag value ("linear", "bitmap",
// "seminaive", "naive", "lit") into an Engine.
func ParseEngineFlag(s string) (Engine, error) { return eval.ParseEngine(s) }

// EvalOnTree evaluates a monadic program on a tree with the chosen
// engine, returning the intensional relations.
//
// It is a single-shot shim over the compile-once path: each call pays
// the full preparation cost. Use CompileProgram + CompiledQuery.Eval
// to amortize it over many documents.
func EvalOnTree(p *Program, t *Tree, e Engine) (*Database, error) {
	q, err := CompileProgram(p, WithEngine(e), WithoutCache())
	if err != nil {
		return nil, err
	}
	return q.Eval(context.Background(), t)
}

// Query evaluates the program's distinguished query predicate with the
// linear engine (Theorem 4.2) and returns the selected node ids.
//
// Single-shot shim; see CompileProgram + CompiledQuery.Select for the
// amortized path.
func Query(p *Program, t *Tree) ([]int, error) {
	if p.Query == "" {
		return nil, fmt.Errorf("eval: program has no distinguished query predicate")
	}
	q, err := CompileProgram(p, WithoutCache())
	if err != nil {
		return nil, err
	}
	return q.Select(context.Background(), t)
}

// MSO (Sections 2 and 4.2).
type (
	// MSOFormula is a monadic second-order formula over τ_ur.
	MSOFormula = mso.Formula
	// MSOQuery is a compiled unary MSO query.
	MSOQuery = mso.UnaryQuery
	// MSOSentence is a compiled MSO sentence (regular tree language).
	MSOSentence = mso.Sentence
)

// ParseMSO reads an MSO formula, e.g.
// "exists y (child(x,y) & label_b(y))".
func ParseMSO(src string) (MSOFormula, error) { return mso.Parse(src) }

// CompileMSOQuery compiles φ(x) to a deterministic tree automaton for
// linear-time evaluation (Select) and datalog generation (ToDatalog —
// the constructive Theorem 4.4).
func CompileMSOQuery(f MSOFormula) (*MSOQuery, error) { return mso.CompileQuery(f) }

// CompileMSOSentence compiles a sentence (Proposition 2.1).
func CompileMSOSentence(f MSOFormula) (*MSOSentence, error) { return mso.CompileSentence(f) }

// Query automata (Section 4.3).
type (
	// QAr is a ranked query automaton (Definition 4.8).
	QAr = qa.QAr
	// SQAu is a strong unranked query automaton (Definition 4.12).
	SQAu = qa.SQAu
)

// TMNF (Section 5).

// ToTMNF rewrites a monadic datalog program over τ_ur ∪ {child,
// lastchild} into the Tree-Marking Normal Form over τ_ur
// (Theorem 5.2).
func ToTMNF(p *Program) (*Program, error) { return tmnf.Transform(p) }

// IsTMNF validates Definition 5.1.
func IsTMNF(p *Program) error { return tmnf.IsTMNF(p) }

// Caterpillar expressions (Section 2, Lemma 5.9, Corollary 5.12).
type CaterpillarExpr = caterpillar.Expr

// ParseCaterpillar reads e.g. "child+ | (child^-1)*.nextsibling+.child*".
func ParseCaterpillar(src string) (CaterpillarExpr, error) { return caterpillar.Parse(src) }

// CaterpillarSelect evaluates the unary query root.E.
//
// Single-shot shim over CompileCaterpillar: every call pays the full
// translate/normalize/plan cost — use CompileCaterpillar directly to
// amortize it. Expressions the datalog translation cannot prepare
// fall back to the direct evaluator, preserving the never-fails
// contract of the legacy signature.
func CaterpillarSelect(e CaterpillarExpr, t *Tree) []int {
	q, err := CompileCaterpillar(e, WithoutCache())
	if err != nil {
		return caterpillar.SelectFromRoot(e, t)
	}
	ids, err := q.Select(context.Background(), t)
	if err != nil {
		return caterpillar.SelectFromRoot(e, t)
	}
	return ids
}

// Elog (Section 6).
type (
	// ElogProgram is an Elog⁻ / Elog⁻Δ program.
	ElogProgram = elog.Program
	// ElogBuilder is the visual-specification session of Section 6.2.
	ElogBuilder = elog.Builder
)

// ParseElog reads Elog⁻ syntax, e.g.
//
//	item(x) :- root(x0), subelem("table._.tr", x0, x).
func ParseElog(src string) (*ElogProgram, error) { return elog.ParseProgram(src) }

// NewElogBuilder starts a visual wrapper-specification session on an
// example document.
func NewElogBuilder(doc *Tree) *ElogBuilder { return elog.NewBuilder(doc) }

// Core XPath (the Section 7 remark: Core XPath maps to monadic
// datalog and inherits its evaluation bounds).
type XPath = xpath.Path

// ParseXPath reads a Core XPath expression, e.g. "//table/tr[td/b]/td".
func ParseXPath(src string) (*XPath, error) { return xpath.Parse(src) }

// XPathSelect evaluates a Core XPath query (supports not(·) via the
// direct-evaluator plan).
//
// Single-shot shim over CompileXPath: every call pays the full
// translate/normalize/plan cost — use CompileXPath directly to
// amortize it. Queries the datalog translation cannot prepare fall
// back to the reference evaluator, preserving the never-fails
// contract of the legacy signature.
func XPathSelect(p *XPath, t *Tree) []int {
	q, err := CompileXPath(p, WithoutCache())
	if err != nil {
		return xpath.Select(p, t)
	}
	ids, err := q.Select(context.Background(), t)
	if err != nil {
		return xpath.Select(p, t)
	}
	return ids
}

// XPathToDatalog translates a positive Core XPath query into monadic
// datalog over τ_ur ∪ {child}; compose with ToTMNF for the linear-time
// engine.
func XPathToDatalog(p *XPath, queryPred string) (*Program, error) {
	return xpath.ToDatalog(p, queryPred)
}

// Wrapping (Section 6 intro).
type (
	// Wrapper runs a monadic datalog program as a wrapper.
	Wrapper = wrap.Wrapper
	// ElogWrapper runs an Elog program as a wrapper.
	ElogWrapper = wrap.ElogWrapper
	// Assignment maps patterns to selected nodes.
	Assignment = wrap.Assignment
)
