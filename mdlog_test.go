package mdlog

import (
	"fmt"
	"testing"

	"mdlog/internal/caterpillar"
	"mdlog/internal/tree"
)

// helpers shared with bench_test.go.
func mustCat(src string) CaterpillarExpr { return caterpillar.MustParse(src) }

func selectRoot(e CaterpillarExpr, t *tree.Tree) []int {
	return caterpillar.SelectFromRoot(e, t)
}

// TestFacadeEndToEnd exercises the public API surface.
func TestFacadeEndToEnd(t *testing.T) {
	doc := ParseHTML(`<html><body><ul><li>one</li><li>two</li></ul></body></html>`)
	if doc.Root.Label != "#document" {
		t.Fatal("html parse wrong")
	}

	// Datalog route.
	p, err := ParseProgram(`
li(X) :- label_li(X).
first(X) :- li(X), firstchild(Y,X).
?- first.
`)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := Query(p, doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 {
		t.Errorf("first li = %v", ids)
	}

	// Engine dispatch.
	res, err := EvalOnTree(p, doc, EngineSemiNaive)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.UnarySet("li")) != 2 {
		t.Errorf("li = %v", res.UnarySet("li"))
	}

	// MSO route.
	f, err := ParseMSO("exists y (child(x,y) & label_li(y))")
	if err != nil {
		t.Fatal(err)
	}
	q, err := CompileMSOQuery(f)
	if err != nil {
		t.Fatal(err)
	}
	sel := q.Select(doc)
	if len(sel) != 1 { // only the ul has li children
		t.Errorf("MSO select = %v", sel)
	}

	// TMNF route.
	cp, err := ParseProgram(`q(X) :- child(X,Y), label_li(Y).`)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := ToTMNF(cp)
	if err != nil {
		t.Fatal(err)
	}
	if err := IsTMNF(tp); err != nil {
		t.Fatal(err)
	}
	got, err := EvalOnTree(tp, doc, EngineLinear)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got.UnarySet("q")) != fmt.Sprint(sel) {
		t.Errorf("TMNF %v vs MSO %v", got.UnarySet("q"), sel)
	}

	// Caterpillar route.
	e, err := ParseCaterpillar("child.child")
	if err != nil {
		t.Fatal(err)
	}
	if len(CaterpillarSelect(e, doc)) == 0 {
		t.Error("caterpillar select empty")
	}

	// Elog route with the visual builder.
	b := NewElogBuilder(doc)
	pb := b.DefinePattern("item", "root")
	var li *Node
	for _, n := range doc.Nodes {
		if n.Label == "li" {
			li = n
			break
		}
	}
	if err := pb.Click(li); err != nil {
		t.Fatal(err)
	}
	if _, err := pb.Commit(); err != nil {
		t.Fatal(err)
	}
	items, err := b.Instances("item")
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 {
		t.Errorf("items = %v", items)
	}

	// Wrapper route.
	w := &Wrapper{Program: p}
	out, _, err := w.Run(doc)
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() < 2 {
		t.Errorf("output tree too small: %s", out)
	}
}

func TestFacadeTreeHelpers(t *testing.T) {
	tr, err := ParseTree("a(b,c)")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 3 {
		t.Error("parse tree wrong")
	}
	n := NewNode("x", NewNode("y"))
	tr2 := NewTree(n)
	if tr2.Size() != 2 || tr2.Nodes[1].Label != "y" {
		t.Error("NewTree wrong")
	}
	ra := RankedAlphabet{"a": 2, "b": 0}
	if ra.MaxRank() != 2 {
		t.Error("ranked alphabet wrong")
	}
	db := TreeDB(tr)
	if len(db.UnarySet("leaf")) != 2 {
		t.Error("TreeDB wrong")
	}
}
