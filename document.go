package mdlog

// Live documents. A Document wraps a parsed tree whose arena may be
// mutated in place (InsertSubtree / RemoveSubtree / SetText /
// SetAttr), records every edit as a tree.ArenaDelta window, and feeds
// those windows to per-plan incremental maintainers
// (eval.IncState, DESIGN.md § Incremental maintenance). A compiled
// query run through SelectIncremental / EvalIncremental — or a whole
// QuerySet through RunIncremental — pays per edit for the delta-rule
// maintenance of its model instead of re-evaluating the document from
// scratch; plans outside the maintainable fragment (the MSO
// automaton, direct evaluators, generic engines) transparently fall
// back to a from-scratch run over the canonical live tree, mapped
// back to arena ids, so results are engine-independent.
//
// All edits to a Document's tree MUST go through the Document: it
// serializes mutation against evaluation and keeps the delta log that
// the maintainers replay. Mutating the underlying tree directly
// leaves the maintainers behind the arena, which they detect and
// report as an error rather than serving stale results.

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"mdlog/internal/datalog"
	"mdlog/internal/eval"
	"mdlog/internal/tree"
)

// Document is a live, editable document: a tree plus the edit log and
// per-query incremental evaluation state that keep compiled queries'
// results maintained under mutation. Build one with NewDocument; edit
// through the mutation methods; query through
// CompiledQuery.SelectIncremental / EvalIncremental / AssignIncremental
// or QuerySet.RunIncremental. All methods are safe for concurrent use
// (one mutex serializes edits and incremental runs — concurrent
// editors and readers interleave at whole-operation granularity).
type Document struct {
	mu    sync.Mutex
	t     *Tree
	arena *tree.Arena

	// log holds the not-yet-universally-applied edit windows, one per
	// mutation call; total counts windows ever appended and dropped
	// counts windows pruned off the front once every maintainer has
	// consumed them, so state.applied - dropped indexes into log.
	log     []*tree.ArenaDelta
	total   int
	dropped int

	// states maps a plan identity (CompiledQuery.memoKey or
	// QuerySet.fusedKey) to its incremental maintainer.
	states map[any]*docState

	// snap memoizes the canonical live tree (and its preorder → arena
	// id mapping) per generation, for the fallback path of plans the
	// delta maintainer cannot cover.
	snap    *Tree
	snapPre []int32
	snapGen uint64

	edits int64
}

// docState is one plan's maintainer plus how many of the document's
// edit windows it has consumed.
type docState struct {
	inc     *eval.IncState
	applied int
}

// NewDocument makes t editable. The tree is adopted, not copied:
// after this call all edits must go through the returned Document.
func NewDocument(t *Tree) *Document {
	return &Document{
		t:      t,
		arena:  t.Arena(),
		states: map[any]*docState{},
	}
}

// Tree returns the underlying tree. Reading it concurrently with
// edits is racy; use Snapshot for a stable view of a live document.
func (d *Document) Tree() *Tree { return d.t }

// Generation returns the document's mutation counter; it advances on
// every edit, and all caches key on it.
func (d *Document) Generation() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.t.Generation()
}

// NumNodes returns the number of arena rows (live and dead — removal
// marks rows dead in place; insertion appends).
func (d *Document) NumNodes() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.arena.Len()
}

// NumAlive returns the number of live nodes.
func (d *Document) NumAlive() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.arena.NumAlive()
}

// LiveNodes returns the arena ids of the live nodes in document
// (preorder) order — the id space incremental query results use.
func (d *Document) LiveNodes() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	pre := d.arena.LivePreorder()
	out := make([]int, len(pre))
	for i, v := range pre {
		out[i] = int(v)
	}
	return out
}

// Snapshot returns the canonical live tree: the document re-parsed
// into a fresh immutable Tree with document-order (preorder) ids.
// Before any edit this is the document's own tree (arena ids already
// canonical); after edits it is a copy whose ids differ from the
// arena ids live queries return. Snapshots are memoized per
// generation.
func (d *Document) Snapshot() *Tree {
	d.mu.Lock()
	defer d.mu.Unlock()
	lt, _ := d.snapshotLocked()
	return lt
}

func (d *Document) snapshotLocked() (*Tree, []int32) {
	if !d.arena.Mutated() {
		return d.t, nil
	}
	if g := d.t.Generation(); d.snap == nil || d.snapGen != g {
		d.snap = d.arena.LiveTree()
		d.snapPre = d.arena.LivePreorder()
		d.snapGen = g
	}
	return d.snap, d.snapPre
}

// edit runs one mutation under the lock and appends its delta window
// to the log.
func (d *Document) edit(f func(*tree.ArenaDelta) error) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	del := d.arena.NewDelta()
	if err := f(del); err != nil {
		return err
	}
	d.log = append(d.log, del)
	d.total++
	d.edits++
	// With no maintainers (or all caught up elsewhere) the window is
	// dropped immediately; otherwise it lives until every maintainer
	// has consumed it.
	d.pruneLocked()
	return nil
}

func (d *Document) checkNode(v int) error {
	if v < 0 || v >= d.arena.Len() || !d.arena.Alive(int32(v)) {
		return fmt.Errorf("mdlog: node %d is not a live node of the document", v)
	}
	return nil
}

// InsertSubtree inserts sub (a hand-built or parsed node, adopted
// whole) as the pos-th child of parent (clamped to the child count)
// and returns the arena id of the subtree root.
func (d *Document) InsertSubtree(parent, pos int, sub *Node) (int, error) {
	root := -1
	err := d.edit(func(del *tree.ArenaDelta) error {
		if err := d.checkNode(parent); err != nil {
			return err
		}
		r, err := d.arena.InsertSubtree(del, int32(parent), pos, sub)
		root = int(r)
		return err
	})
	if err != nil {
		return -1, err
	}
	return root, nil
}

// RemoveSubtree removes the subtree rooted at v (the root itself
// cannot be removed).
func (d *Document) RemoveSubtree(v int) error {
	return d.edit(func(del *tree.ArenaDelta) error {
		if err := d.checkNode(v); err != nil {
			return err
		}
		return d.arena.RemoveSubtree(del, int32(v))
	})
}

// SetText replaces v's text content. Text is outside the τ_ur
// signature, so query results never change — the edit only advances
// the generation.
func (d *Document) SetText(v int, text string) error {
	return d.edit(func(del *tree.ArenaDelta) error {
		if err := d.checkNode(v); err != nil {
			return err
		}
		return d.arena.SetText(del, int32(v), text)
	})
}

// AppendText appends suffix to v's text content (a convenience
// SetText of the concatenation — common for live logs and streaming
// ingestion). Like SetText, only the generation advances; spanner
// queries observe the new text on their next run.
func (d *Document) AppendText(v int, suffix string) error {
	return d.edit(func(del *tree.ArenaDelta) error {
		if err := d.checkNode(v); err != nil {
			return err
		}
		return d.arena.AppendText(del, int32(v), suffix)
	})
}

// SetAttr sets attribute key on v. Like text, attributes are outside
// the τ_ur signature.
func (d *Document) SetAttr(v int, key, value string) error {
	return d.edit(func(del *tree.ArenaDelta) error {
		if err := d.checkNode(v); err != nil {
			return err
		}
		return d.arena.SetAttr(del, int32(v), key, value)
	})
}

// DocumentStats is a point-in-time snapshot of a Document's state and
// maintenance counters.
type DocumentStats struct {
	// Generation is the mutation counter.
	Generation uint64
	// Nodes counts arena rows (live + dead); Live counts live nodes.
	Nodes, Live int
	// Edits counts mutation calls.
	Edits int64
	// PendingWindows is the length of the edit log not yet consumed by
	// every maintainer; MaintainedPlans is the number of per-plan
	// incremental states the document holds.
	PendingWindows, MaintainedPlans int
	// Inc aggregates the maintainers' counters (delta applies,
	// full-re-evaluation fallbacks, facts overdeleted / rederived).
	Inc eval.IncStats
}

// Stats snapshots the document's mutation and maintenance counters.
func (d *Document) Stats() DocumentStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	ds := DocumentStats{
		Generation:      d.t.Generation(),
		Nodes:           d.arena.Len(),
		Live:            d.arena.NumAlive(),
		Edits:           d.edits,
		PendingWindows:  len(d.log),
		MaintainedPlans: len(d.states),
	}
	for _, st := range d.states {
		is := st.inc.Stats()
		ds.Inc.Applies += is.Applies
		ds.Inc.Fallbacks += is.Fallbacks
		ds.Inc.Overdeleted += is.Overdeleted
		ds.Inc.Rederived += is.Rederived
	}
	return ds
}

// incRunLocked returns the maintained, projected model for one plan
// identity, creating the maintainer on first use and catching it up
// on the pending edit windows otherwise. Caller holds d.mu.
func (d *Document) incRunLocked(ctx context.Context, key any, project []string, engine string,
	build func() *eval.IncState) (*Database, Stats, error) {
	rs := Stats{Engine: engine}
	if err := ctx.Err(); err != nil {
		return nil, rs, err
	}
	start := time.Now()
	st := d.states[key]
	if st == nil {
		st = &docState{inc: build(), applied: d.total}
		d.states[key] = st
	} else if pending := d.log[st.applied-d.dropped:]; len(pending) > 0 {
		if err := st.inc.Apply(tree.ComposeDeltas(pending)); err != nil {
			return nil, rs, err
		}
		st.applied = d.total
	}
	db, err := st.inc.Database()
	if err != nil {
		return nil, rs, err
	}
	rs.Eval = time.Since(start)
	d.pruneLocked()
	return db.Project(project), rs, nil
}

// pruneLocked drops edit windows every maintainer has consumed.
func (d *Document) pruneLocked() {
	min := d.total
	for _, st := range d.states {
		if st.applied < min {
			min = st.applied
		}
	}
	if drop := min - d.dropped; drop > 0 {
		d.log = append([]*tree.ArenaDelta(nil), d.log[drop:]...)
		d.dropped = min
	}
}

// runIncrementalIn evaluates q against the live document. Grounding
// plans (linear, bitmap) are delta-maintained via the document's
// per-plan IncState; every other plan runs from scratch on the
// canonical live-tree snapshot (memoized per generation, results
// memoized in cache under the generation-aware key) with ids mapped
// back to arena ids. Caller holds d.mu.
func (q *CompiledQuery) runIncrementalIn(ctx context.Context, d *Document, cache *TreeCache) (*Database, Stats, error) {
	plan := q.plan
	if sp, ok := plan.(*spannerPlan); ok {
		// A spanner's node part is an ordinary grounding plan; maintain
		// it like one (span enumeration happens on top, per call).
		plan = sp.inner
	}
	switch p := plan.(type) {
	case *linearPlan:
		return d.incRunLocked(ctx, q.memoKey, p.project, p.engineName(),
			func() *eval.IncState { return p.plan.NewIncState(d.arena) })
	case *bitmapPlan:
		return d.incRunLocked(ctx, q.memoKey, p.project, p.engineName(),
			func() *eval.IncState { return p.plan.NewIncState(d.arena) })
	default:
		lt, pre := d.snapshotLocked()
		db, rs, err := q.runCachedIn(ctx, lt, cache)
		if err != nil {
			return nil, rs, err
		}
		if pre != nil {
			db = remapToArena(db, pre, d.arena.Len())
		}
		return db, rs, nil
	}
}

// remapToArena rewrites a database computed over the live-tree
// snapshot (preorder ids) into arena ids via the live preorder.
func remapToArena(db *Database, pre []int32, dom int) *Database {
	out := datalog.NewDatabase(dom)
	for _, pred := range db.Preds() {
		r := db.RelOrNil(pred)
		switch r.Arity {
		case 1:
			ids := db.UnarySet(pred)
			mapped := make([]int, len(ids))
			for i, v := range ids {
				mapped[i] = int(pre[v])
			}
			sort.Ints(mapped)
			out.Rel(pred, 1).AddUnarySet(mapped)
		case 0:
			if r.Len() > 0 {
				out.Rel(pred, 0).Add(nil)
			}
		}
	}
	return out
}

// SelectIncremental is Select against a live document: the query's
// model is maintained incrementally under the document's edits
// (DESIGN.md § Incremental maintenance), so an edit re-derives only
// what the edit touched. Returned ids are arena ids — stable across
// edits, not necessarily document order after mutations (see
// Document.Snapshot for canonical ids).
func (q *CompiledQuery) SelectIncremental(ctx context.Context, d *Document) ([]int, error) {
	if q.queryPred == "" {
		return nil, fmt.Errorf("mdlog: %v query has no distinguished query predicate; compile with WithQueryPred or add a ?- directive / Extract list", q.lang)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	db, rs, err := q.runIncrementalIn(ctx, d, q.cache)
	if err != nil {
		return nil, err
	}
	ids := db.UnarySet(q.queryPred)
	rs.Runs = 1
	rs.Facts = int64(len(ids))
	q.record(rs)
	return ids, nil
}

// EvalIncremental is Eval against a live document (see
// SelectIncremental for the id space and maintenance contract).
func (q *CompiledQuery) EvalIncremental(ctx context.Context, d *Document) (*Database, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	db, rs, err := q.runIncrementalIn(ctx, d, q.cache)
	if err != nil {
		return nil, err
	}
	rs.Runs = 1
	rs.Facts = int64(db.Size())
	q.record(rs)
	return db, nil
}

// AssignIncremental is Assign against a live document (see
// SelectIncremental for the id space and maintenance contract).
func (q *CompiledQuery) AssignIncremental(ctx context.Context, d *Document) (Assignment, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	db, rs, err := q.runIncrementalIn(ctx, d, q.cache)
	if err != nil {
		return nil, err
	}
	a := Assignment{}
	var facts int64
	for _, pred := range q.extract {
		if ids := db.UnarySet(pred); len(ids) > 0 {
			a[pred] = ids
			facts += int64(len(ids))
		}
	}
	rs.Runs = 1
	rs.Facts = facts
	q.record(rs)
	return a, nil
}

// RunIncremental is Run against a live document: the fused pass
// maintains ONE incremental state for the whole member union (split
// per member as in Run), and unfused members maintain (or fall back)
// individually. Result ids are arena ids; everything else matches
// Run, including per-member error isolation and stats attribution.
func (s *QuerySet) RunIncremental(ctx context.Context, d *Document) []SetResult {
	out := make([]SetResult, len(s.members))
	for i, m := range s.members {
		out[i] = SetResult{Name: m.Name, Index: i}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	var total Stats
	if s.fused != nil {
		full, shared, err := d.incRunLocked(ctx, s.fusedKey, s.fusedVisible, s.fused.Engine().String(),
			func() *eval.IncState { return s.fused.NewIncState(d.arena) })
		total.Add(shared)
		var dbs []*Database
		if err == nil {
			dbs = s.fused.Split(full)
		}
		for j, idx := range s.fusedIdx {
			res := &out[idx]
			if err != nil {
				res.Err = err
				continue
			}
			st := eval.AttributeShared(shared, len(s.fusedIdx))
			st.Runs, st.FusedRuns = 1, 1
			s.fill(res, arenaSource{a: d.arena}, dbs[j], st)
		}
	}
	for i, m := range s.members {
		if s.isFused(i) {
			continue
		}
		cache := s.cache
		if m.Query.cache == nil {
			cache = nil
		}
		db, rs, err := m.Query.runIncrementalIn(ctx, d, cache)
		total.Add(rs)
		if err != nil {
			out[i].Err = err
			continue
		}
		rs.Runs = 1
		s.fill(&out[i], arenaSource{a: d.arena}, db, rs)
	}
	for i := range out {
		total.Facts += out[i].Stats.Facts
	}
	total.Runs = 1
	s.agg.record(total)
	return out
}
