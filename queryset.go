package mdlog

// QuerySet fuses many compiled wrappers into one shared evaluation
// pass per document. The paper's central result — all six formalisms
// compile into monadic datalog over τ_ur — means N wrappers over the
// same page ground the identical base facts N times when run in
// isolation. A QuerySet apex-renames the members' post-optimization
// programs into one fused program (opt.Fuse), deduplicates the
// auxiliary tm_*/conn_* chains the translations share, prepares ONE
// linear-engine plan for the union, and per document runs that plan
// once, projecting each member's visible relations back out. Members
// that do not route through the linear datalog engine (the MSO
// automaton, the direct XPath/Elog⁻Δ evaluators, the set-oriented
// engines) are evaluated individually inside the same Run call with
// identical results — fusion is an optimization, never a semantics
// change. See DESIGN.md §QuerySet for the soundness argument.

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"mdlog/internal/datalog"
	"mdlog/internal/eval"
	"mdlog/internal/opt"
	"mdlog/internal/span"
)

// FuseReport describes what fusing a QuerySet did: total member rules
// in, fused rules out, and how many shared auxiliary predicates/rules
// were merged across members. The zero value means no members fused.
type FuseReport = opt.FuseReport

// NamedQuery pairs a compiled query with the name its results carry in
// SetResult.
type NamedQuery struct {
	// Name labels the member's results; it need not be unique (results
	// also carry the member index).
	Name string
	// Query is the member, compiled with any Compile* entry point.
	Query *CompiledQuery
}

// SetSpec is one member of CompileSet: a source in any of the six
// languages plus its per-member compile options.
type SetSpec struct {
	// Name labels the member's results ("q<i>" if empty).
	Name string
	// Source is the query text.
	Source string
	// Lang is the source language.
	Lang Language
	// Options are per-member compile options (engine, query predicate,
	// extraction list, optimization level, ...).
	Options []Option
}

// SetResult is one member's outcome for one document.
type SetResult struct {
	// Name and Index identify the member (Index is its position in the
	// set).
	Name  string
	Index int
	// IDs are the sorted node ids of the member's query predicate
	// (Select semantics); nil when the member has no distinguished
	// query predicate.
	IDs []int
	// Assignment maps each of the member's extraction predicates with
	// a non-empty extension to its sorted node ids (Assign semantics).
	Assignment Assignment
	// Spans holds a spanner member's span relations (Spans semantics);
	// nil for members of every other language.
	Spans SpanResult
	// Stats are the member's attributed per-run measurements; for
	// fused members the shared pass's timing is divided evenly and
	// FusedRuns is 1.
	Stats Stats
	// Err is the member's failure, if any; other members are
	// unaffected (per-member error isolation).
	Err error
}

// QuerySet is a fused evaluation unit over N compiled queries. Build
// one with NewQuerySet / NewNamedQuerySet / CompileSet; Run evaluates
// every member against one document with the base TreeDB grounded
// once. All methods are safe for concurrent use.
type QuerySet struct {
	members []NamedQuery
	cache   *TreeCache

	// fused covers the members at the positions in fusedIdx — every
	// member whose plan routes through the linear datalog engine; nil
	// when fewer than two members are fusable.
	fused    *eval.FusedPlan
	fusedIdx []int
	fusedKey planKey
	// fusedNoCache disables the fused pass's memoization: set when any
	// fused member was compiled WithoutCache, because memoizing the
	// shared result would silently reinstate the per-document caching
	// that member's compile options opted out of.
	fusedNoCache bool
	// fusedVisible is the union of the members' apex-renamed visible
	// predicates — the projection applied before memoizing a fused
	// result, so the memo never retains merged auxiliary relations.
	fusedVisible []string
	report       FuseReport
	// plans is the per-member compile outcome (fused / subsumed /
	// equivalence class), computed once at build time.
	plans []MemberPlan

	agg aggStats
}

// MemberPlan describes how the compile pipeline decided to serve one
// QuerySet member: evaluated inside the fused pass, evaluated
// individually, or — when the containment checker proved it equivalent
// to another member — answered purely by projection with zero rules of
// its own.
type MemberPlan struct {
	// Name and Index identify the member (Index is its set position).
	Name  string
	Index int
	// Fused reports whether the member is covered by the shared fused
	// pass.
	Fused bool
	// Subsumed reports that none of the member's own rules survive in
	// the fused program: its results are projected from an equivalent
	// member's relations and SetResult.Stats.SubsumedRuns is 1 per run.
	Subsumed bool
	// Rules is the number of fused-program rules the member owns
	// (0 when subsumed); for unfused members, its own plan's rule
	// count.
	Rules int
	// Class is the member's equivalence class among fused members:
	// members whose visible relations resolve to the same fused
	// predicates share a class (and therefore answers). -1 for unfused
	// members; singleton classes are normal.
	Class int
	// SharedWith names the representative member whose rules carry
	// this member's answers; empty unless Subsumed.
	SharedWith string
}

// Plans returns the per-member compile decisions in set order. The
// slice is freshly allocated; the decisions themselves are fixed at
// construction.
func (s *QuerySet) Plans() []MemberPlan {
	return append([]MemberPlan(nil), s.plans...)
}

// NewQuerySet fuses already-compiled queries into a set; members are
// named "q0", "q1", ... in argument order.
func NewQuerySet(queries ...*CompiledQuery) (*QuerySet, error) {
	named := make([]NamedQuery, len(queries))
	for i, q := range queries {
		named[i] = NamedQuery{Name: fmt.Sprintf("q%d", i), Query: q}
	}
	return NewNamedQuerySet(named...)
}

// NewNamedQuerySet is NewQuerySet with caller-chosen member names.
func NewNamedQuerySet(members ...NamedQuery) (*QuerySet, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("mdlog: a QuerySet needs at least one query")
	}
	s := &QuerySet{
		members: append([]NamedQuery(nil), members...),
		cache:   NewTreeCache(DefaultCacheTrees),
	}
	s.plans = make([]MemberPlan, len(s.members))
	for i, m := range s.members {
		s.plans[i] = MemberPlan{Name: m.Name, Index: i, Class: -1}
	}
	var fuseMembers []opt.FuseMember
	bitmapMembers := 0
	for i, m := range s.members {
		if m.Query == nil {
			return nil, fmt.Errorf("mdlog: QuerySet member %d (%s) is nil", i, m.Name)
		}
		// Both grounding-engine plans fuse: they execute the same
		// prepared Theorem 4.2 plans, only the execution strategy
		// differs.
		var prog *datalog.Program
		var visible []string
		// A spanner member's node part is an ordinary grounding plan —
		// fuse it; the span rules run per member on the split-out
		// candidate relations (see fill).
		plan := m.Query.plan
		if sp, ok := plan.(*spannerPlan); ok {
			plan = sp.inner
		}
		switch lp := plan.(type) {
		case *linearPlan:
			prog, visible = lp.plan.Program(), lp.project
		case *bitmapPlan:
			prog, visible = lp.plan.Program(), lp.project
			bitmapMembers++
		default:
			continue
		}
		fuseMembers = append(fuseMembers, opt.FuseMember{
			Prefix:  fmt.Sprintf("s%d__", i),
			Program: prog,
			Visible: append([]string(nil), visible...),
		})
		s.plans[i].Rules = len(prog.Rules)
		s.fusedIdx = append(s.fusedIdx, i)
		if m.Query.cache == nil {
			s.fusedNoCache = true
		}
	}
	if len(fuseMembers) >= 2 {
		fusedProg, aliases, rep := opt.Fuse(fuseMembers)
		// Per-member projections: a visible predicate normally lives at
		// its apex-renamed name; when fusion merged it into an
		// equivalent predicate, the alias map points at the relation
		// that carries the shared extension.
		evalMembers := make([]eval.FusedMember, len(fuseMembers))
		seen := map[string]bool{}
		var project []string
		for j, fm := range fuseMembers {
			rename := make(map[string]string, len(fm.Visible))
			for _, v := range fm.Visible {
				fused := fm.Prefix + v
				if target, ok := aliases[fused]; ok {
					fused = target
				}
				rename[v] = fused
				if !seen[fused] {
					seen[fused] = true
					project = append(project, fused)
				}
			}
			evalMembers[j] = eval.FusedMember{Name: s.members[s.fusedIdx[j]].Name, Project: rename}
		}
		// A member is subsumed when no fused rule carries its apex
		// prefix: whether the containment checker proved it equivalent
		// to another member or plain dedup merged an exact twin, its
		// results come purely from projecting surviving relations, so
		// it costs zero evaluation per document.
		ownedRules := map[string]int{}
		for _, r := range fusedProg.Rules {
			for _, fm := range fuseMembers {
				if strings.HasPrefix(r.Head.Pred, fm.Prefix) {
					ownedRules[fm.Prefix]++
					break
				}
			}
		}
		// Equivalence classes: members whose visible relations resolve
		// to the same fused predicates share every answer. Class ids are
		// assigned in member order; a subsumed member's SharedWith names
		// its class's surviving representative.
		classOf := map[string]int{}
		classRep := map[int]string{}
		for j, fm := range fuseMembers {
			idx := s.fusedIdx[j]
			mp := &s.plans[idx]
			mp.Fused = true
			mp.Rules = ownedRules[fm.Prefix]
			carriers := make([]string, 0, len(evalMembers[j].Project))
			for _, fusedPred := range evalMembers[j].Project {
				carriers = append(carriers, fusedPred)
			}
			sort.Strings(carriers)
			key := strings.Join(carriers, "\x00")
			cls, ok := classOf[key]
			if !ok {
				cls = len(classOf)
				classOf[key] = cls
			}
			mp.Class = cls
			if mp.Rules > 0 {
				if _, ok := classRep[cls]; !ok {
					classRep[cls] = s.members[idx].Name
				}
			}
			if mp.Rules == 0 {
				evalMembers[j].Subsumed = true
				mp.Subsumed = true
			}
		}
		for j := range fuseMembers {
			mp := &s.plans[s.fusedIdx[j]]
			if mp.Subsumed {
				mp.SharedWith = classRep[mp.Class]
			}
		}
		// The shared pass runs on the bitmap engine only when EVERY
		// fusable member asked for it — a single mixed set falls back to
		// linear, which is an optimization choice, not a semantics
		// change (the two engines are differentially tested to agree).
		fusedEngine := EngineLinear
		if bitmapMembers == len(fuseMembers) {
			fusedEngine = EngineBitmap
		}
		fp, err := eval.NewFusedPlanEngine(fusedProg, evalMembers, fusedEngine)
		if err != nil {
			// Every member plan compiled individually, so the union
			// must too; failing loudly beats silently degrading.
			return nil, fmt.Errorf("mdlog: fusing %d queries: %w", len(fuseMembers), err)
		}
		s.fused = fp
		s.report = rep
		s.fusedVisible = project
		s.fusedKey = newPlanKey(fusedProg, fusedEngine, project)
	} else {
		s.fusedIdx = nil
	}
	return s, nil
}

// CompileSet compiles each spec and fuses the results into a QuerySet
// — the one-call form of Compile × N + NewNamedQuerySet.
func CompileSet(specs []SetSpec) (*QuerySet, error) {
	members := make([]NamedQuery, len(specs))
	for i, sp := range specs {
		name := sp.Name
		if name == "" {
			name = fmt.Sprintf("q%d", i)
		}
		q, err := Compile(sp.Source, sp.Lang, sp.Options...)
		if err != nil {
			return nil, fmt.Errorf("mdlog: compiling set member %d (%s): %w", i, name, err)
		}
		members[i] = NamedQuery{Name: name, Query: q}
	}
	return NewNamedQuerySet(members...)
}

// Len returns the number of member queries.
func (s *QuerySet) Len() int { return len(s.members) }

// Names returns the member names in set order.
func (s *QuerySet) Names() []string {
	out := make([]string, len(s.members))
	for i, m := range s.members {
		out[i] = m.Name
	}
	return out
}

// Queries returns the member queries in set order.
func (s *QuerySet) Queries() []*CompiledQuery {
	out := make([]*CompiledQuery, len(s.members))
	for i, m := range s.members {
		out[i] = m.Query
	}
	return out
}

// FusedLen reports how many members the shared fused pass covers (0:
// every member runs individually).
func (s *QuerySet) FusedLen() int {
	if s.fused == nil {
		return 0
	}
	return s.fused.Members()
}

// FuseStats reports what program fusion did: member rules in, fused
// rules out, shared auxiliaries merged. The zero value means no fused
// pass exists.
func (s *QuerySet) FuseStats() FuseReport { return s.report }

// Cache returns the set's TreeCache, which holds ALL of the set's
// per-document state — the fused pass's navigation arrays and result
// memo plus the unfused members' memos — so Forget on a mutated
// document invalidates every member's results at once.
func (s *QuerySet) Cache() *TreeCache { return s.cache }

// Stats returns the set's lifetime aggregate: one entry of Runs per
// Run call, with the full (unattributed) shared-pass timing.
func (s *QuerySet) Stats() Stats { return s.agg.snapshot() }

// Run evaluates every member against one document and returns one
// SetResult per member, in set order. Members covered by the fused
// plan share a single evaluation pass (grounded once, memoized once in
// the set's TreeCache); the rest run their own plans. A member's
// failure is isolated to its own result; a canceled context fails
// every member still pending.
func (s *QuerySet) Run(ctx context.Context, t *Tree) []SetResult {
	out := make([]SetResult, len(s.members))
	for i, m := range s.members {
		out[i] = SetResult{Name: m.Name, Index: i}
	}
	var total Stats
	if s.fused != nil {
		dbs, shared, err := s.runFused(ctx, t)
		total.Add(shared)
		for j, idx := range s.fusedIdx {
			res := &out[idx]
			if err != nil {
				res.Err = err
				continue
			}
			st := eval.AttributeShared(shared, len(s.fusedIdx))
			st.Runs, st.FusedRuns = 1, 1
			if s.fused.MemberSubsumed(j) {
				st.SubsumedRuns = 1
			}
			s.fill(res, treeSource{t: t}, dbs[j], st)
		}
	}
	for i, m := range s.members {
		if s.isFused(i) {
			continue
		}
		// Unfused members run against the SET's cache, not their own:
		// one Cache().Forget invalidates every member's state for a
		// mutated document, fused or not. A member compiled
		// WithoutCache keeps its no-memoization contract inside the
		// set too.
		cache := s.cache
		if m.Query.cache == nil {
			cache = nil
		}
		db, rs, err := m.Query.runCachedIn(ctx, t, cache)
		total.Add(rs)
		if err != nil {
			out[i].Err = err
			continue
		}
		rs.Runs = 1
		s.fill(&out[i], treeSource{t: t}, db, rs)
	}
	for i := range out {
		total.Facts += out[i].Stats.Facts
	}
	total.Runs = 1
	s.agg.record(total)
	return out
}

// fill completes one member's SetResult from its visible database and
// records the attributed stats on the member query, so per-wrapper
// aggregates (service /stats, /metrics) reflect fused runs too. src
// supplies character data for spanner members (the tree for Run, the
// live arena for RunIncremental); the node ids in db must be in src's
// id space.
func (s *QuerySet) fill(res *SetResult, src span.Source, db *Database, st Stats) {
	q := s.members[res.Index].Query
	if q.queryPred != "" {
		res.IDs = db.UnarySet(q.queryPred)
	}
	a := Assignment{}
	var facts int64
	for _, pred := range q.extract {
		if ids := db.UnarySet(pred); len(ids) > 0 {
			a[pred] = ids
			facts += int64(len(ids))
		}
	}
	if sp, ok := q.plan.(*spannerPlan); ok {
		start := time.Now()
		res.Spans = sp.eval.Eval(src, db.UnarySet)
		st.Eval += time.Since(start)
		st.Spans = int64(res.Spans.Tuples())
	}
	res.Assignment = a
	st.Facts = facts
	res.Stats = st
	q.record(st)
}

// isFused reports whether member i is covered by the fused plan.
func (s *QuerySet) isFused(i int) bool {
	for _, idx := range s.fusedIdx {
		if idx == i {
			return true
		}
	}
	return false
}

// runFused executes the shared pass for one document, consulting the
// set's result memo first: the fused result database is memoized whole
// and re-split per call, so a repeat document costs one map lookup plus
// N cheap projections. When a fused member opted out of caching
// (WithoutCache), the whole pass runs uncached — fresh navigation,
// no memo — honoring that member's contract for the shared result.
func (s *QuerySet) runFused(ctx context.Context, t *Tree) ([]*Database, Stats, error) {
	rs := Stats{Engine: s.fused.Engine().String()}
	if err := ctx.Err(); err != nil {
		return nil, rs, err
	}
	if !s.fusedNoCache {
		if full, ok := s.cache.Result(t, s.fusedKey); ok {
			rs.CacheHits = 1
			return s.fused.Split(full), rs, nil
		}
	}
	start := time.Now()
	var nav *eval.Nav
	if s.fusedNoCache {
		nav = eval.NewNav(t)
	} else {
		var hit bool
		nav, hit = s.cache.NavCached(t)
		if hit {
			rs.CacheHits = 1
		}
	}
	rs.Materialize = time.Since(start)
	start = time.Now()
	full, err := s.fused.RunFull(nav)
	rs.Eval = time.Since(start)
	if err != nil {
		return nil, rs, err
	}
	full = full.Project(s.fusedVisible)
	if !s.fusedNoCache {
		s.cache.SetResult(t, s.fusedKey, full)
	}
	return s.fused.Split(full), rs, nil
}
