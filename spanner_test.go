package mdlog

import (
	"context"
	"strings"
	"testing"

	"mdlog/internal/tree"
)

const priceSpanner = `
	% text nodes inside table cells
	cell(X) :- label_td(Y), child(Y, X), label_#text(X).
	price(X, A) :- cell(X), text(X, S), match(S, /\$(?<amt>[0-9]+\.[0-9][0-9])/, A).
	?- cell.
`

const pricePage = `
<html><body><table>
  <tr><td>Espresso</td><td>$2.20</td></tr>
  <tr><td>Cappuccino</td><td>$3.10</td></tr>
  <tr><td>Water</td><td>free</td></tr>
</table></body></html>`

func priceTexts(res SpanResult) []string {
	var out []string
	if rel := res.Rel("price"); rel != nil {
		for _, row := range rel.Rows {
			out = append(out, row.Spans[0].Text)
		}
	}
	return out
}

func TestSpannerBasic(t *testing.T) {
	doc := ParseHTML(pricePage)
	q, err := Compile(priceSpanner, LangSpanner)
	if err != nil {
		t.Fatal(err)
	}
	if q.Language() != LangSpanner {
		t.Fatalf("lang = %v", q.Language())
	}
	res, rs, err := q.SpansStats(context.Background(), doc)
	if err != nil {
		t.Fatal(err)
	}
	if got := priceTexts(res); len(got) != 2 || got[0] != "2.20" || got[1] != "3.10" {
		t.Fatalf("prices = %v", got)
	}
	if rel := res.Rel("price"); rel.Vars[0] != "A" {
		t.Fatalf("vars = %v", rel.Vars)
	}
	if rs.Spans != 2 {
		t.Fatalf("Stats.Spans = %d", rs.Spans)
	}
	if q.Stats().Spans != 2 {
		t.Fatalf("aggregate Spans = %d", q.Stats().Spans)
	}
	// The node part still answers Select (the ?- cell directive): six
	// text nodes sit inside td cells.
	ids, err := q.Select(context.Background(), doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 6 {
		t.Fatalf("cells = %v", ids)
	}
}

func TestSpannerEngines(t *testing.T) {
	doc := ParseHTML(pricePage)
	base, err := Compile(priceSpanner, LangSpanner)
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.Spans(context.Background(), doc)
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []Engine{EngineLinear, EngineBitmap} {
		q, err := Compile(priceSpanner, LangSpanner, WithEngine(engine))
		if err != nil {
			t.Fatalf("%v: %v", engine, err)
		}
		got, err := q.Spans(context.Background(), doc)
		if err != nil {
			t.Fatalf("%v: %v", engine, err)
		}
		if len(got) != len(want) || len(got.Rel("price").Rows) != len(want.Rel("price").Rows) {
			t.Fatalf("%v: %+v != %+v", engine, got, want)
		}
	}
}

func TestSpannerAttr(t *testing.T) {
	doc := ParseHTML(`<html><body>
	  <a href="https://example.com/a">one</a>
	  <a href="https://example.com/b">two</a>
	  <a>no href</a>
	</body></html>`)
	q, err := Compile(`
		link(X, U) :- label_a(X), attr(X, "href", S),
			match(S, /(?<u>https:\/\/[a-z.\/]+)/, U).
	`, LangSpanner)
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Spans(context.Background(), doc)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rel("link").Rows
	var full []string
	for _, r := range rows {
		// All-matches semantics: keep the spans covering the whole value.
		if r.Spans[0].Start == 0 && r.Spans[0].End == len("https://example.com/a") {
			full = append(full, r.Spans[0].Text)
		}
	}
	if len(full) != 2 || full[0] != "https://example.com/a" || full[1] != "https://example.com/b" {
		t.Fatalf("full-value links = %v (rows %+v)", full, rows)
	}
}

func TestSpannerLanguagePlumbing(t *testing.T) {
	l, err := ParseLanguage("spanner")
	if err != nil || l != LangSpanner {
		t.Fatalf("ParseLanguage = %v, %v", l, err)
	}
	if LangSpanner.String() != "spanner" {
		t.Fatalf("String = %q", LangSpanner)
	}
	names := LanguageNames()
	if names[len(names)-1] != "spanner" || len(names) != 7 {
		t.Fatalf("LanguageNames = %v", names)
	}
	if _, err := ParseLanguage("nope"); err == nil || !strings.Contains(err.Error(), "spanner") {
		t.Fatalf("unknown-language error should list spanner: %v", err)
	}
	b, err := LangSpanner.MarshalText()
	if err != nil || string(b) != "spanner" {
		t.Fatalf("MarshalText = %q, %v", b, err)
	}
	var l2 Language
	if err := l2.UnmarshalText([]byte("spanner")); err != nil || l2 != LangSpanner {
		t.Fatalf("UnmarshalText = %v, %v", l2, err)
	}
}

func TestSpannerErrors(t *testing.T) {
	// Spans on a non-spanner query.
	q, err := Compile(`q(X) :- label_td(X). ?- q.`, LangDatalog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Spans(context.Background(), ParseHTML(pricePage)); err == nil {
		t.Fatal("Spans on a datalog query should error")
	}
	// A spanner program without span rules is invalid.
	if _, err := Compile(`q(X) :- label_td(X). ?- q.`, LangSpanner); err == nil {
		t.Fatal("spanner program without span rules should error")
	}
	// Invalid regex formulas surface at compile time.
	if _, err := Compile(`p(X, A) :- text(X, S), match(S, /((?<a>x)|y)/, A).`, LangSpanner); err == nil {
		t.Fatal("asymmetric alternation capture should error")
	}
}

func TestSpannerIncrementalEdits(t *testing.T) {
	d := NewDocument(ParseHTML(pricePage))
	q, err := Compile(priceSpanner, LangSpanner)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	res, err := q.SpansIncremental(ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	if got := priceTexts(res); len(got) != 2 || got[0] != "2.20" {
		t.Fatalf("prices = %v", got)
	}
	// SetText on the first price cell: spans must reflect the new text.
	node := res.Rel("price").Rows[0].Node
	if err := d.SetText(node, "$9.99 (was $2.20)"); err != nil {
		t.Fatal(err)
	}
	res, err = q.SpansIncremental(ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	got := priceTexts(res)
	if len(got) != 3 || got[0] != "9.99" || got[1] != "2.20" || got[2] != "3.10" {
		t.Fatalf("prices after SetText = %v", got)
	}
	// AppendText: suffixing more matching text adds a span.
	if err := d.AppendText(node, " now $8.88"); err != nil {
		t.Fatal(err)
	}
	res, err = q.SpansIncremental(ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	if got := priceTexts(res); len(got) != 4 || got[2] != "8.88" {
		t.Fatalf("prices after AppendText = %v", got)
	}
	// A structural edit: a brand-new cell with a price must show up
	// (the node part is delta-maintained, the automata run on the new
	// node's text).
	tds, err := Compile(`t(X) :- label_td(X). ?- t.`, LangDatalog)
	if err != nil {
		t.Fatal(err)
	}
	tdIDs, err := tds.SelectIncremental(ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	cell := tree.New("td")
	cell.Children = append(cell.Children, tree.NewText("$7.77"))
	if _, err := d.InsertSubtree(tdIDs[0], 0, cell); err == nil {
		// td inside td is fine for the spanner: the new #text child of
		// the inserted td matches cell(X).
		res, err = q.SpansIncremental(ctx, d)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, s := range priceTexts(res) {
			if s == "7.77" {
				found = true
			}
		}
		if !found {
			t.Fatalf("inserted price missing: %v", priceTexts(res))
		}
	}
	// Snapshot-based Spans agrees with the incremental path on the
	// canonical live tree (modulo the id space).
	snap, err := q.Spans(ctx, d.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if snap.Tuples() != res.Tuples() {
		t.Fatalf("snapshot %d tuples != incremental %d", snap.Tuples(), res.Tuples())
	}
}

func TestSpannerInQuerySet(t *testing.T) {
	s, err := CompileSet([]SetSpec{
		{Name: "prices", Source: priceSpanner, Lang: LangSpanner},
		{Name: "tds", Source: `t(X) :- label_td(X). ?- t.`, Lang: LangDatalog},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.FusedLen() != 2 {
		t.Fatalf("FusedLen = %d, want the spanner's node part to fuse", s.FusedLen())
	}
	ctx := context.Background()
	res := s.Run(ctx, ParseHTML(pricePage))
	if res[0].Err != nil || res[1].Err != nil {
		t.Fatalf("errs: %v %v", res[0].Err, res[1].Err)
	}
	if got := priceTexts(res[0].Spans); len(got) != 2 || got[0] != "2.20" {
		t.Fatalf("fused spanner prices = %v", got)
	}
	if res[0].Stats.Spans != 2 || res[0].Stats.FusedRuns != 1 {
		t.Fatalf("spanner member stats = %+v", res[0].Stats)
	}
	if res[1].Spans != nil {
		t.Fatalf("datalog member grew spans: %+v", res[1].Spans)
	}
	if len(res[1].IDs) != 6 {
		t.Fatalf("tds = %v", res[1].IDs)
	}

	// The incremental path: same answers over a live document, and
	// edits show up.
	d := NewDocument(ParseHTML(pricePage))
	inc := s.RunIncremental(ctx, d)
	if inc[0].Err != nil {
		t.Fatal(inc[0].Err)
	}
	if got := priceTexts(inc[0].Spans); len(got) != 2 {
		t.Fatalf("incremental prices = %v", got)
	}
	node := inc[0].Spans.Rel("price").Rows[0].Node
	if err := d.SetText(node, "$5.00"); err != nil {
		t.Fatal(err)
	}
	inc = s.RunIncremental(ctx, d)
	if got := priceTexts(inc[0].Spans); len(got) != 2 || got[0] != "5.00" {
		t.Fatalf("incremental prices after SetText = %v", got)
	}
}

func TestSpannerIncrementalBitmap(t *testing.T) {
	d := NewDocument(ParseHTML(pricePage))
	q, err := Compile(priceSpanner, LangSpanner, WithEngine(EngineBitmap))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	res, err := q.SpansIncremental(ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	if got := priceTexts(res); len(got) != 2 {
		t.Fatalf("prices = %v", got)
	}
	node := res.Rel("price").Rows[0].Node
	if err := d.SetText(node, "no price anymore"); err != nil {
		t.Fatal(err)
	}
	res, err = q.SpansIncremental(ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	if got := priceTexts(res); len(got) != 1 || got[0] != "3.10" {
		t.Fatalf("prices after removal = %v", got)
	}
}
