# Tier-1 verification and CI entry points.

GO ?= go

.PHONY: check vet build test race bench-smoke bench

check: vet build race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration per benchmark: catches bit-rot without burning CI time.
# Also emits BENCH_treesize.json (substrate parse/materialize/select
# ns-per-node at 1k/10k nodes in quick mode) so every CI run archives
# a perf trajectory point.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
	$(GO) run ./cmd/benchtables -quick -treesize BENCH_treesize.json

# Full-size substrate scaling points (1k/10k/100k nodes).
bench-treesize:
	$(GO) run ./cmd/benchtables -treesize BENCH_treesize.json

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...
