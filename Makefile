# Tier-1 verification and CI entry points.

GO ?= go

.PHONY: check vet build test race bench-smoke bench

check: vet build race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration per benchmark: catches bit-rot without burning CI time.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...
