# Tier-1 verification and CI entry points.

GO ?= go

.PHONY: check vet build test race bench-smoke bench bench-treesize bench-service bench-opt bench-queryset bench-incremental bench-subsume bench-span fuzz-smoke docs-gate

check: docs-gate build race fuzz-smoke bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The docs gate: formatting, vet, and the exported-doc-comment check
# on the root package (doccheck_test.go). gofmt -l prints offenders;
# grep inverts that into a pass/fail.
docs-gate: vet
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt -l:"; echo "$$out"; exit 1; fi
	$(GO) test -run TestDocComments .

# One iteration per benchmark: catches bit-rot without burning CI time.
# Also emits BENCH_treesize.json (substrate parse/materialize/select
# ns-per-node at 1k/10k nodes in quick mode), BENCH_optimize.json
# (optimizer rule-count reduction + Select speedup per wrapper),
# BENCH_queryset.json (fused vs sequential N-wrapper evaluation),
# BENCH_incremental.json (incremental vs full revision cost per edit
# fraction), BENCH_service.json (fleet-mode dedup + shard scaling),
# BENCH_subsume.json (containment-aware vs plain fused pipeline) and
# BENCH_span.json (compiled span extraction vs node-select + Go regexp,
# 100k-node point included even in quick mode) so every CI run archives
# a perf trajectory point.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
	$(GO) run ./cmd/benchtables -quick -treesize BENCH_treesize.json
	$(GO) run ./cmd/benchtables -quick -opt BENCH_optimize.json
	$(GO) run ./cmd/benchtables -quick -queryset BENCH_queryset.json
	$(GO) run ./cmd/benchtables -quick -incremental BENCH_incremental.json
	$(GO) run ./cmd/benchtables -quick -service BENCH_service.json
	$(GO) run ./cmd/benchtables -quick -subsume BENCH_subsume.json
	$(GO) run ./cmd/benchtables -quick -span BENCH_span.json

# Full-size optimizer measurement (EXT-OPT).
bench-opt:
	$(GO) run ./cmd/benchtables -opt BENCH_optimize.json

# Full-size QuerySet fusion measurement (EXT-QUERYSET): fused vs
# sequential evaluation for fleets of 2/8/32 wrappers.
bench-queryset:
	$(GO) run ./cmd/benchtables -queryset BENCH_queryset.json

# Bounded run of the cross-engine differential fuzzer: 400 random
# monadic programs × 2 random trees × {linear, bitmap, LIT,
# semi-naive, naive} × {-O0, -O1}, all engines compared on every
# visible relation, plus all-linear and all-bitmap fused QuerySet
# passes against their individual evaluations, plus the random
# edit-script oracle (incremental maintenance ≡ replay from scratch).
# Override the workload with MDLOG_FUZZ_N / MDLOG_FUZZ_SEED.
# The store restart round-trip rides along: persistence must survive a
# kill/reboot byte-identically, and it's fast enough for the quick path.
fuzz-smoke:
	MDLOG_FUZZ_N=$${MDLOG_FUZZ_N:-400} $(GO) test -run 'TestDifferentialEngines|TestIncrementalDifferential' -count=1 .
	$(GO) test -run 'TestStoreRestartRoundTrip|TestStoreCorruptSnapshotFailsBoot' -count=1 ./internal/service

# Full-size substrate scaling points (1k/10k/100k nodes).
bench-treesize:
	$(GO) run ./cmd/benchtables -treesize BENCH_treesize.json

# Full-size incremental maintenance measurement (EXT-INCREMENTAL):
# 10k/100k-node documents, 0.1%/1%/10% edit fractions.
bench-incremental:
	$(GO) run ./cmd/benchtables -incremental BENCH_incremental.json

# Fleet-mode measurement (EXT-SERVICE): dedup-cache sweep (cache on vs
# off across duplicate ratios) and consistent-hash shard scaling at
# N ∈ {1,2,4} workers over real HTTP, written to BENCH_service.json
# (CI artifact). The in-process micro-benchmarks (direct Select vs HTTP
# extract vs batch) still run under bench / bench-smoke.
bench-service:
	$(GO) run ./cmd/benchtables -service BENCH_service.json

# Full-size wrapper-subsumption measurement (EXT-SUBSUME): fleets of
# 8/32/128 near-duplicate wrappers, containment-aware pipeline vs the
# plain fused baseline.
bench-subsume:
	$(GO) run ./cmd/benchtables -subsume BENCH_subsume.json

# Full-size span-extraction measurement (EXT-SPAN): compiled LangSpanner
# vs node-select + Go-regex post-processing at 10k/100k/300k nodes.
bench-span:
	$(GO) run ./cmd/benchtables -span BENCH_span.json

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...
