package mdlog

// LangSpanner: the document-spanner front end. A spanner program
// combines ordinary monadic-datalog rules (node selection) with span
// rules whose regex formulas extract substrings of node text and
// attribute values (internal/span). Compilation splits the program:
// the node part — user rules plus one synthesized candidate predicate
// per span rule — routes through the standard optimize → grounding
// pipeline (linear or bitmap engine) exactly like any datalog query,
// while the span part compiles each regex formula to a variable-set
// automaton run lazily over the matched nodes' character data. The
// node database is memoized per (query, tree) in the TreeCache as
// usual; span enumeration re-runs per call, reading whatever text the
// document currently carries.

import (
	"context"
	"fmt"
	"slices"
	"time"

	"mdlog/internal/eval"
	"mdlog/internal/opt"
	"mdlog/internal/span"
	"mdlog/internal/tmnf"
	"mdlog/internal/tree"
)

// SpannerProgram is a parsed spanner program: monadic-datalog node
// rules plus span rules (see ParseSpanner for the syntax).
type SpannerProgram = span.Program

// Span is one extracted substring: byte offsets into the node's text
// (or attribute value) plus the spanned text itself.
type Span = span.Span

// SpanBinding is one span-relation row: a node id plus one Span per
// head variable.
type SpanBinding = span.Binding

// SpanRelation is the extension of one span rule: its name, head
// variables, and sorted rows.
type SpanRelation = span.Relation

// SpanResult is a spanner run's output, one SpanRelation per span
// rule in program order.
type SpanResult = span.Result

// ParseSpanner parses a spanner program: '.'-terminated statements
// where a rule whose head has one variable is an ordinary
// monadic-datalog rule and a rule whose head has a node variable plus
// span variables is a span rule, e.g.
//
//	cell(X)     :- label_td(Y), firstchild(Y, X), label_#text(X).
//	price(X, A) :- cell(X), text(X, S), match(S, /\$(?<amt>\d+\.\d\d)/, A).
//
// Span-rule bodies use text(X, S), attr(X, "name", S), match(S,
// /re/, V...), within(A, B) and before(A, B); see internal/span for
// the exact semantics and the regex-formula restrictions.
func ParseSpanner(src string) (*SpannerProgram, error) { return span.ParseProgram(src) }

// spannerPlan wraps the node part's grounding plan with the compiled
// span evaluator. The node part runs (and caches) like any grounding
// plan; Spans/SpansIncremental add the span enumeration on top.
type spannerPlan struct {
	inner queryPlan
	eval  *span.Evaluator
}

func (p *spannerPlan) engineName() string { return p.inner.engineName() }

func (p *spannerPlan) run(ctx context.Context, t *Tree, cache *TreeCache) (*Database, Stats, error) {
	return p.inner.run(ctx, t, cache)
}

// CompileSpanner prepares an already-parsed spanner program (the
// AST-level twin of Compile(src, LangSpanner)).
func CompileSpanner(p *SpannerProgram, opts ...Option) (*CompiledQuery, error) {
	cfg := newConfig(opts)
	start := time.Now()
	if err := cfg.checkEngine(); err != nil {
		return nil, err
	}
	np, cands, err := p.NodeProgram()
	if err != nil {
		return nil, err
	}
	ev, err := span.NewEvaluator(p)
	if err != nil {
		return nil, err
	}
	// The node part always routes through the grounding engines (as
	// with XPath): only the linear/bitmap choice applies.
	engine := EngineLinear
	if cfg.engine == EngineBitmap {
		engine = EngineBitmap
	}
	// The candidate predicates must stay visible past the optimizer —
	// they are what the span evaluator reads — alongside whatever the
	// user program exposes.
	extract := np.IntensionalPreds()
	visible := visiblePreds(np, cfg, extract)
	for _, c := range cands {
		if !slices.Contains(visible, c) {
			visible = append(visible, c)
		}
	}
	if eval.SignatureOf(np).Child {
		tp, err := tmnf.Transform(np)
		if err != nil {
			return nil, err
		}
		np = tp
	}
	np, report := opt.Optimize(np, opt.Options{Level: cfg.optLevel, Roots: visible})
	inner, err := groundPlan(np, engine, visible)
	if err != nil {
		return nil, err
	}
	q := cfg.newQuery(LangSpanner, &spannerPlan{inner: inner, eval: ev}, p.Node.Query, extract)
	q.optReport = report
	q.memoKey = newPlanKey(np, engine, visible)
	q.setCompile(time.Since(start))
	return q, nil
}

// spannerOf returns the plan's spanner parts, or an error for queries
// of any other language.
func (q *CompiledQuery) spannerOf() (*spannerPlan, error) {
	if sp, ok := q.plan.(*spannerPlan); ok {
		return sp, nil
	}
	return nil, fmt.Errorf("mdlog: Spans requires a spanner query (this query is %v)", q.lang)
}

// treeSource adapts an immutable Tree to the span evaluator's Source:
// ids are document-order node ids.
type treeSource struct{ t *Tree }

func (s treeSource) NodeText(id int) string {
	if id < 0 || id >= len(s.t.Nodes) {
		return ""
	}
	return s.t.Nodes[id].Text
}

func (s treeSource) NodeAttr(id int, name string) (string, bool) {
	if id < 0 || id >= len(s.t.Nodes) {
		return "", false
	}
	v, ok := s.t.Nodes[id].Attrs[name]
	return v, ok
}

// arenaSource adapts a live arena to the span evaluator's Source: ids
// are arena ids, and text reads through the out-of-line overrides, so
// spans always reflect the current document text.
type arenaSource struct{ a *tree.Arena }

func (s arenaSource) NodeText(id int) string {
	if id < 0 || id >= s.a.Len() {
		return ""
	}
	return s.a.Text(int32(id))
}

func (s arenaSource) NodeAttr(id int, name string) (string, bool) {
	if id < 0 || id >= s.a.Len() {
		return "", false
	}
	v, ok := s.a.Attrs[int32(id)][name]
	return v, ok
}

// Spans runs a spanner query on one document: the node part through
// the (cached) grounding plan, then the span rules' automata over the
// matched nodes' text and attribute values. Rows are sorted by node
// id then span offsets. Errors for non-spanner queries.
func (q *CompiledQuery) Spans(ctx context.Context, t *Tree) (SpanResult, error) {
	res, _, err := q.SpansStats(ctx, t)
	return res, err
}

// SpansStats is Spans returning per-run statistics (Stats.Spans
// counts the extracted rows).
func (q *CompiledQuery) SpansStats(ctx context.Context, t *Tree) (SpanResult, Stats, error) {
	sp, err := q.spannerOf()
	if err != nil {
		return nil, Stats{}, err
	}
	db, rs, err := q.runCached(ctx, t)
	if err != nil {
		return nil, rs, err
	}
	start := time.Now()
	res := sp.eval.Eval(treeSource{t: t}, db.UnarySet)
	rs.Eval += time.Since(start)
	rs.Runs = 1
	rs.Facts = int64(db.Size())
	rs.Spans = int64(res.Tuples())
	q.record(rs)
	return res, rs, nil
}

// SpansIncremental is Spans against a live document: the node part is
// delta-maintained (or falls back to the snapshot path, see
// SelectIncremental), and the automata read the arena's current text
// — including SetText/AppendText edits — so results always reflect
// the live document. Returned node ids are arena ids.
func (q *CompiledQuery) SpansIncremental(ctx context.Context, d *Document) (SpanResult, error) {
	sp, err := q.spannerOf()
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	db, rs, err := q.runIncrementalIn(ctx, d, q.cache)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res := sp.eval.Eval(arenaSource{a: d.arena}, db.UnarySet)
	rs.Eval += time.Since(start)
	rs.Runs = 1
	rs.Facts = int64(db.Size())
	rs.Spans = int64(res.Tuples())
	q.record(rs)
	return res, nil
}
