module mdlog

go 1.24
