package mdlog

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"mdlog/internal/tree"
)

func TestDocumentLifecycle(t *testing.T) {
	ctx := context.Background()
	doc := NewDocument(tree.MustParse("a(b(c),d)"))
	if doc.NumNodes() != 4 || doc.NumAlive() != 4 {
		t.Fatalf("fresh document: %d nodes, %d alive", doc.NumNodes(), doc.NumAlive())
	}
	if _, err := doc.InsertSubtree(99, 0, tree.New("x")); err == nil {
		t.Fatal("insert under a nonexistent parent succeeded")
	}
	if err := doc.RemoveSubtree(0); err == nil {
		t.Fatal("removing the root succeeded")
	}
	id, err := doc.InsertSubtree(1, 0, tree.New("x", tree.New("y")))
	if err != nil {
		t.Fatal(err)
	}
	if err := doc.SetText(id, "hello"); err != nil {
		t.Fatal(err)
	}
	if err := doc.SetAttr(id, "k", "v"); err != nil {
		t.Fatal(err)
	}
	if err := doc.RemoveSubtree(3); err != nil { // the original "d"
		t.Fatal(err)
	}
	ds := doc.Stats()
	if ds.Edits != 4 || ds.Live != 5 || ds.Generation == 0 {
		t.Fatalf("stats after edits: %+v", ds)
	}
	// Mutation through the Document leaves no pending windows while no
	// maintainer exists.
	if ds.PendingWindows != 0 || ds.MaintainedPlans != 0 {
		t.Fatalf("log not pruned without maintainers: %+v", ds)
	}

	q, err := Compile(`q(X) :- label_x(X). ?- q.`, LangDatalog)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := q.SelectIncremental(ctx, doc)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(ids) != fmt.Sprintf("[%d]", id) {
		t.Fatalf("select = %v, want [%d]", ids, id)
	}
	if err := doc.RemoveSubtree(id); err != nil {
		t.Fatal(err)
	}
	ids, err = q.SelectIncremental(ctx, doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Fatalf("select after removal = %v, want empty", ids)
	}
	ds = doc.Stats()
	if ds.MaintainedPlans != 1 || ds.Inc.Applies == 0 {
		t.Fatalf("maintainer stats: %+v", ds)
	}
	// Snapshot is the canonical re-parse: preorder ids, live nodes only.
	snap := doc.Snapshot()
	if snap.Size() != doc.NumAlive() {
		t.Fatalf("snapshot has %d nodes, document %d alive", snap.Size(), doc.NumAlive())
	}
}

// TestDocumentDetectsOutOfBandMutation ensures edits that bypass the
// Document (violating its contract) surface as errors, never as stale
// results.
func TestDocumentDetectsOutOfBandMutation(t *testing.T) {
	ctx := context.Background()
	tr := tree.MustParse("a(b,c)")
	doc := NewDocument(tr)
	q, err := Compile(`q(X) :- leaf(X). ?- q.`, LangDatalog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.SelectIncremental(ctx, doc); err != nil {
		t.Fatal(err)
	}
	a := tr.Arena()
	if _, err := a.InsertSubtree(a.NewDelta(), 0, 0, tree.New("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := q.SelectIncremental(ctx, doc); err == nil {
		t.Fatal("out-of-band mutation went undetected")
	}
}

// TestDocumentIncrementalFallback drives a plan outside the
// delta-maintainable fragment (the MSO automaton) through the
// snapshot fallback: results must equal a from-scratch run on the
// canonical live tree, mapped back to arena ids.
func TestDocumentIncrementalFallback(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))
	labels := []string{"a", "b", "c"}
	q, err := Compile("exists y (child(x,y) & label_b(y))", LangMSO)
	if err != nil {
		t.Fatal(err)
	}
	tr := tree.Random(rng, tree.RandomOptions{Labels: labels, Size: 40, MaxChildren: 4})
	doc := NewDocument(tr)
	for step := 0; step < 8; step++ {
		randomDocEdit(t, rng, doc, labels)
		got, err := q.SelectIncremental(ctx, doc)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		ref, err := q.Select(ctx, doc.Snapshot())
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		pre := doc.Tree().Arena().LivePreorder()
		want := make([]int, len(ref))
		for i, v := range ref {
			want[i] = int(pre[v])
		}
		sort.Ints(want)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("step %d: incremental %v, snapshot oracle %v", step, got, want)
		}
	}
}

// TestDocumentConcurrent hammers one document with concurrent editors
// and incremental readers; run under -race this is the data-race net
// for the session path.
func TestDocumentConcurrent(t *testing.T) {
	ctx := context.Background()
	labels := []string{"a", "b", "c"}
	doc := NewDocument(tree.MustParse("a(b(c),d)"))
	q, err := Compile(`q(X) :- leaf(X). ?- q.`, LangDatalog, WithEngine(EngineBitmap))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 4)
	for w := 0; w < 2; w++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				live := doc.LiveNodes()
				// Racing editors may pick a node the other just removed;
				// those edits fail cleanly and are skipped.
				if len(live) > 1 && rng.Intn(2) == 0 {
					_ = doc.RemoveSubtree(live[1+rng.Intn(len(live)-1)])
				} else {
					_, _ = doc.InsertSubtree(live[rng.Intn(len(live))], rng.Intn(3), tree.New(labels[rng.Intn(3)]))
				}
			}
			done <- nil
		}(int64(w))
	}
	for w := 0; w < 2; w++ {
		go func() {
			for i := 0; i < 50; i++ {
				if _, err := q.SelectIncremental(ctx, doc); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	// The final maintained result must still match replay-from-scratch.
	got, err := q.SelectIncremental(ctx, doc)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ParseProgram(`q(X) :- leaf(X). ?- q.`)
	if err != nil {
		t.Fatal(err)
	}
	want := replayUnary(t, ctx, p, doc, []string{"q"})["q"]
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("after concurrent edits: %v, replay %v", got, want)
	}
}
