package datalog

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseProgram parses a datalog program in conventional textual syntax:
//
//	% comments run to end of line
//	even(X) :- b0(X), label_a(X).
//	b0(X)   :- leaf(X).
//	fact(3).
//
// Variables begin with an uppercase letter; constants are nonnegative
// integers (domain element ids); predicate names begin with a lowercase
// letter, '_' or '#' and may contain letters, digits and  _ # ' - < > .
// A directive "?- pred." sets the program's query predicate.
func ParseProgram(src string) (*Program, error) {
	p := &progParser{src: src, line: 1}
	prog := &Program{}
	for {
		p.skipWS()
		if p.eof() {
			break
		}
		if p.peekStr("?-") {
			p.pos += 2
			p.skipWS()
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			p.skipWS()
			if !p.consume('.') {
				return nil, p.errf("expected '.' after query directive")
			}
			prog.Query = name
			continue
		}
		r, err := p.rule()
		if err != nil {
			return nil, err
		}
		prog.Rules = append(prog.Rules, r)
	}
	if err := prog.Check(); err != nil {
		return nil, err
	}
	return prog, nil
}

// MustParseProgram is ParseProgram, panicking on error.
func MustParseProgram(src string) *Program {
	p, err := ParseProgram(src)
	if err != nil {
		panic(err)
	}
	return p
}

type progParser struct {
	src  string
	pos  int
	line int
}

func (p *progParser) eof() bool { return p.pos >= len(p.src) }

func (p *progParser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("datalog: line %d: %s", p.line, fmt.Sprintf(format, args...))
}

func (p *progParser) skipWS() {
	for !p.eof() {
		c := p.src[p.pos]
		switch {
		case c == '\n':
			p.line++
			p.pos++
		case c == ' ' || c == '\t' || c == '\r':
			p.pos++
		case c == '%':
			for !p.eof() && p.src[p.pos] != '\n' {
				p.pos++
			}
		default:
			return
		}
	}
}

func (p *progParser) peekStr(s string) bool {
	return strings.HasPrefix(p.src[p.pos:], s)
}

func (p *progParser) consume(c byte) bool {
	if !p.eof() && p.src[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c == '_' || c == '#'
}

func isIdentByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
		c == '_' || c == '#' || c == '\'' || c == '-' || c == '<' || c == '>'
}

func (p *progParser) ident() (string, error) {
	if p.eof() || !isIdentStart(p.src[p.pos]) {
		return "", p.errf("expected predicate name")
	}
	start := p.pos
	for !p.eof() && isIdentByte(p.src[p.pos]) {
		p.pos++
	}
	return p.src[start:p.pos], nil
}

func (p *progParser) term() (Term, error) {
	if p.eof() {
		return Term{}, p.errf("expected term")
	}
	c := p.src[p.pos]
	switch {
	case c >= 'A' && c <= 'Z':
		start := p.pos
		for !p.eof() && isIdentByte(p.src[p.pos]) {
			p.pos++
		}
		return V(p.src[start:p.pos]), nil
	case c >= '0' && c <= '9':
		start := p.pos
		for !p.eof() && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
			p.pos++
		}
		n, err := strconv.Atoi(p.src[start:p.pos])
		if err != nil {
			return Term{}, p.errf("bad constant %q", p.src[start:p.pos])
		}
		return C(n), nil
	default:
		return Term{}, p.errf("expected variable or constant, got %q", c)
	}
}

func (p *progParser) atom() (Atom, error) {
	name, err := p.ident()
	if err != nil {
		return Atom{}, err
	}
	a := Atom{Pred: name}
	p.skipWS()
	if !p.consume('(') {
		return a, nil // propositional atom
	}
	for {
		p.skipWS()
		t, err := p.term()
		if err != nil {
			return Atom{}, err
		}
		a.Args = append(a.Args, t)
		p.skipWS()
		if p.consume(')') {
			return a, nil
		}
		if !p.consume(',') {
			return Atom{}, p.errf("expected ',' or ')' in atom %s", name)
		}
	}
}

func (p *progParser) rule() (Rule, error) {
	head, err := p.atom()
	if err != nil {
		return Rule{}, err
	}
	r := Rule{Head: head}
	p.skipWS()
	if p.consume('.') {
		return r, nil
	}
	if !p.peekStr(":-") {
		return Rule{}, p.errf("expected ':-' or '.' after head %s", head)
	}
	p.pos += 2
	for {
		p.skipWS()
		b, err := p.atom()
		if err != nil {
			return Rule{}, err
		}
		r.Body = append(r.Body, b)
		p.skipWS()
		if p.consume('.') {
			return r, nil
		}
		if !p.consume(',') {
			return Rule{}, p.errf("expected ',' or '.' in body of rule for %s", head.Pred)
		}
	}
}
