package datalog

import (
	"encoding/binary"
	"sort"
	"sync"
)

// Database is a finite relational structure: a domain {0,...,Dom-1}
// plus named relations. It serves both as the extensional database
// (input structure) and as the container for computed intensional
// relations after evaluation.
type Database struct {
	Dom  int
	rels map[string]*Relation
}

// NewDatabase returns an empty database over a domain of the given size.
func NewDatabase(dom int) *Database {
	return &Database{Dom: dom, rels: map[string]*Relation{}}
}

// Relation is a set of tuples of fixed arity over the domain.
type Relation struct {
	Arity  int
	tuples [][]int
	set    map[string]bool
	// setOnce guards the lazy construction of set: materialized
	// databases are shared read-only between concurrent queries, so
	// the first Has must not race with another.
	setOnce sync.Once
	// index[i] maps a value to the tuple indices having that value in
	// position i; built lazily.
	index []map[int][]int
}

func newRelation(arity int) *Relation {
	return &Relation{Arity: arity}
}

// ensureSet builds the membership set on first use; it is lazy so
// bulk loads through AddUnchecked/AddUnarySet never pay per-tuple
// hashing unless some later caller actually tests membership, and
// once-guarded so concurrent readers of a shared database can call
// Has safely. (Mutating a shared relation remains illegal, as
// before: writers must own the relation or Clone first.)
func (r *Relation) ensureSet() {
	r.setOnce.Do(func() {
		set := make(map[string]bool, len(r.tuples))
		for _, t := range r.tuples {
			set[tupleKey(t)] = true
		}
		r.set = set
	})
}

func tupleKey(t []int) string {
	buf := make([]byte, 0, len(t)*5)
	var tmp [binary.MaxVarintLen64]byte
	for _, v := range t {
		n := binary.PutUvarint(tmp[:], uint64(v))
		buf = append(buf, tmp[:n]...)
	}
	return string(buf)
}

// Has reports membership of the tuple.
func (r *Relation) Has(t []int) bool {
	r.ensureSet()
	return r.set[tupleKey(t)]
}

// Add inserts a tuple, reporting whether it was new. The tuple is
// copied, so callers may reuse the slice.
func (r *Relation) Add(t []int) bool {
	r.ensureSet()
	k := tupleKey(t)
	if r.set[k] {
		return false
	}
	r.set[k] = true
	tc := append([]int(nil), t...)
	r.tuples = append(r.tuples, tc)
	if r.index != nil {
		for i, v := range tc {
			r.index[i][v] = append(r.index[i][v], len(r.tuples)-1)
		}
	}
	return true
}

// AddUnchecked appends a tuple known to be absent, taking ownership
// of the slice. Bulk loaders with by-construction-unique facts (e.g.
// TreeDB) use it to skip per-tuple key hashing; the membership set is
// rebuilt lazily if someone later calls Has or Add.
func (r *Relation) AddUnchecked(t []int) {
	if r.set != nil {
		r.set[tupleKey(t)] = true
	}
	r.tuples = append(r.tuples, t)
	if r.index != nil {
		for i, v := range t {
			r.index[i][v] = append(r.index[i][v], len(r.tuples)-1)
		}
	}
}

// AddUnarySet bulk-appends distinct unary tuples that are known not
// to be present yet (e.g. values collected from a characteristic
// vector). It allocates two slabs instead of per-tuple copies and
// defers membership hashing until someone calls Has/Add.
func (r *Relation) AddUnarySet(vals []int) {
	if len(vals) == 0 {
		return
	}
	back := make([]int, len(vals))
	copy(back, vals)
	tuples := r.tuples
	if tuples == nil {
		tuples = make([][]int, 0, len(vals))
	}
	for i := range back {
		t := back[i : i+1 : i+1]
		tuples = append(tuples, t)
		if r.set != nil {
			r.set[tupleKey(t)] = true
		}
		if r.index != nil {
			r.index[0][back[i]] = append(r.index[0][back[i]], len(tuples)-1)
		}
	}
	r.tuples = tuples
}

// Tuples returns the underlying tuple list (do not modify).
func (r *Relation) Tuples() [][]int { return r.tuples }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// lookup returns the indices of tuples with value v at position pos.
func (r *Relation) lookup(pos, v int) []int {
	if r.index == nil {
		r.index = make([]map[int][]int, r.Arity)
		for i := range r.index {
			r.index[i] = map[int][]int{}
		}
		for ti, t := range r.tuples {
			for i, val := range t {
				r.index[i][val] = append(r.index[i][val], ti)
			}
		}
	}
	return r.index[pos][v]
}

// Rel returns the named relation, creating it with the given arity if
// absent.
func (db *Database) Rel(name string, arity int) *Relation {
	r, ok := db.rels[name]
	if !ok {
		r = newRelation(arity)
		db.rels[name] = r
	}
	return r
}

// RelOrNil returns the named relation or nil if it does not exist.
func (db *Database) RelOrNil(name string) *Relation { return db.rels[name] }

// Add inserts the fact pred(args...).
func (db *Database) Add(pred string, args ...int) bool {
	return db.Rel(pred, len(args)).Add(args)
}

// Has reports whether the fact pred(args...) holds.
func (db *Database) Has(pred string, args ...int) bool {
	r := db.rels[pred]
	return r != nil && r.Has(args)
}

// Unary returns the extension of a unary predicate as a dense bitmap
// over the domain (nil-safe: unknown predicates yield all-false).
func (db *Database) Unary(pred string) []bool {
	out := make([]bool, db.Dom)
	if r := db.rels[pred]; r != nil && r.Arity == 1 {
		for _, t := range r.tuples {
			if t[0] >= 0 && t[0] < db.Dom {
				out[t[0]] = true
			}
		}
	}
	return out
}

// UnarySet returns the sorted extension of a unary predicate.
func (db *Database) UnarySet(pred string) []int {
	var out []int
	if r := db.rels[pred]; r != nil && r.Arity == 1 {
		for _, t := range r.tuples {
			out = append(out, t[0])
		}
	}
	sort.Ints(out)
	return out
}

// Preds returns the sorted names of all relations present.
func (db *Database) Preds() []string {
	out := make([]string, 0, len(db.rels))
	for n := range db.rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy of the database.
func (db *Database) Clone() *Database {
	c := NewDatabase(db.Dom)
	for name, r := range db.rels {
		nr := newRelation(r.Arity)
		for _, t := range r.tuples {
			nr.Add(t)
		}
		c.rels[name] = nr
	}
	return c
}

// Project returns a new database over the same domain containing only
// the named relations (those that exist).
func (db *Database) Project(preds []string) *Database {
	c := NewDatabase(db.Dom)
	for _, name := range preds {
		r, ok := db.rels[name]
		if !ok {
			continue
		}
		nr := newRelation(r.Arity)
		for _, t := range r.tuples {
			nr.Add(t)
		}
		c.rels[name] = nr
	}
	return c
}

// Size returns the total number of tuples across all relations,
// the |σ| of the paper's complexity statements.
func (db *Database) Size() int {
	n := 0
	for _, r := range db.rels {
		n += len(r.tuples)
	}
	return n
}

func (db *Database) String() string {
	var out string
	for _, name := range db.Preds() {
		r := db.rels[name]
		for _, t := range r.tuples {
			out += Atom{Pred: name, Args: termsOf(t)}.String() + ".\n"
		}
	}
	return out
}

func termsOf(t []int) []Term {
	out := make([]Term, len(t))
	for i, v := range t {
		out[i] = C(v)
	}
	return out
}
