package datalog

import "fmt"

// This file implements the immediate consequence operator T_P of
// Definition 3.1 and bottom-up fixpoint evaluation over arbitrary
// finite structures: a naive evaluator (used as a reference semantics
// in tests) and a semi-naive evaluator (the general-purpose engine).
// Both compute T_P^ω restricted to the intensional predicates; the
// specialized linear-time engines of the paper live in internal/eval.

// compiledRule is a rule preprocessed for join evaluation: variables
// are numbered densely, and arguments are resolved to variable slots
// or constants.
type compiledRule struct {
	src      Rule
	nvars    int
	varNames []string
	head     compiledAtom
	body     []compiledAtom
}

type compiledAtom struct {
	pred string
	// args[i] ≥ 0 is a variable slot; args[i] < 0 encodes constant -args[i]-1.
	args []int
}

func constSlot(c int) int    { return -c - 1 }
func slotConst(s int) int    { return -s - 1 }
func isConstSlot(s int) bool { return s < 0 }

func compileRule(r Rule) compiledRule {
	cr := compiledRule{src: r}
	slot := map[string]int{}
	getSlot := func(t Term) int {
		if !t.IsVar() {
			return constSlot(t.Const)
		}
		s, ok := slot[t.Var]
		if !ok {
			s = cr.nvars
			slot[t.Var] = s
			cr.nvars++
			cr.varNames = append(cr.varNames, t.Var)
		}
		return s
	}
	compileAtom := func(a Atom) compiledAtom {
		ca := compiledAtom{pred: a.Pred, args: make([]int, len(a.Args))}
		for i, t := range a.Args {
			ca.args[i] = getSlot(t)
		}
		return ca
	}
	// Compile the body first so head variables refer to body slots.
	for _, b := range r.Body {
		cr.body = append(cr.body, compileAtom(b))
	}
	cr.head = compileAtom(r.Head)
	return cr
}

const unbound = -1

// matchTuple attempts to extend the binding with atom ca matched
// against tuple t, returning the list of slots newly bound (for
// backtracking) and whether the match succeeded.
func matchTuple(ca compiledAtom, t []int, binding []int, trail []int) ([]int, bool) {
	for i, a := range ca.args {
		if isConstSlot(a) {
			if t[i] != slotConst(a) {
				return trail, false
			}
			continue
		}
		if binding[a] == unbound {
			binding[a] = t[i]
			trail = append(trail, a)
		} else if binding[a] != t[i] {
			return trail, false
		}
	}
	return trail, true
}

func undo(binding []int, trail []int, from int) []int {
	for i := from; i < len(trail); i++ {
		binding[trail[i]] = unbound
	}
	return trail[:from]
}

// candidates returns the tuples of rel possibly matching ca under the
// current binding, using a positional index when some argument is bound.
func candidates(rel *Relation, ca compiledAtom, binding []int) [][]int {
	if rel == nil {
		return nil
	}
	// Prefer an indexed lookup on a bound position.
	for i, a := range ca.args {
		var v int
		if isConstSlot(a) {
			v = slotConst(a)
		} else if binding[a] != unbound {
			v = binding[a]
		} else {
			continue
		}
		idxs := rel.lookup(i, v)
		out := make([][]int, len(idxs))
		for j, ti := range idxs {
			out[j] = rel.tuples[ti]
		}
		return out
	}
	return rel.tuples
}

// joinBody enumerates all bindings satisfying body atoms [from:] and
// calls emit for each complete one. The atom at position pinned (if
// ≥ 0) must match within pinnedTuples instead of its full relation —
// this is the semi-naive delta restriction.
func joinBody(db *Database, body []compiledAtom, from int, pinned int,
	pinnedTuples [][]int, binding []int, trail []int, emit func()) {
	if from == len(body) {
		emit()
		return
	}
	ca := body[from]
	var tuples [][]int
	if from == pinned {
		tuples = pinnedTuples
	} else {
		tuples = candidates(db.RelOrNil(ca.pred), ca, binding)
	}
	mark := len(trail)
	for _, t := range tuples {
		if len(t) != len(ca.args) {
			continue
		}
		var ok bool
		trail, ok = matchTuple(ca, t, binding, trail)
		if ok {
			joinBody(db, body, from+1, pinned, pinnedTuples, binding, trail, emit)
		}
		trail = undo(binding, trail, mark)
	}
}

// fireRule evaluates one rule against db (with optional delta pinning)
// and adds derived head facts to out, returning the number of new facts.
func fireRule(db *Database, cr compiledRule, pinned int, pinnedTuples [][]int,
	out *Database) int {
	binding := make([]int, cr.nvars)
	for i := range binding {
		binding[i] = unbound
	}
	added := 0
	headBuf := make([]int, len(cr.head.args))
	joinBody(db, cr.body, 0, pinned, pinnedTuples, binding, nil, func() {
		for i, a := range cr.head.args {
			if isConstSlot(a) {
				headBuf[i] = slotConst(a)
			} else {
				headBuf[i] = binding[a]
			}
		}
		if out.Rel(cr.head.pred, len(headBuf)).Add(headBuf) {
			added++
		}
	})
	return added
}

// NaiveEval computes T_P^ω by the naive fixpoint iteration of
// Definition 3.1: every round re-derives everything until no new facts
// appear. Returns a database containing the EDB plus all derived IDB
// facts. It is deliberately unoptimized: it serves as the reference
// semantics against which the other engines are verified.
func NaiveEval(p *Program, edb *Database) (*Database, error) {
	if err := p.Check(); err != nil {
		return nil, err
	}
	db := edb.Clone()
	rules := make([]compiledRule, len(p.Rules))
	for i, r := range p.Rules {
		rules[i] = compileRule(r)
	}
	for {
		added := 0
		for _, cr := range rules {
			added += fireRule(db, cr, -1, nil, db)
		}
		if added == 0 {
			return db, nil
		}
	}
}

// SemiNaiveEval computes T_P^ω with semi-naive (delta) iteration: after
// the first round, a rule refires only via at least one newly derived
// body fact. Returns a database containing the EDB plus all derived
// IDB facts.
func SemiNaiveEval(p *Program, edb *Database) (*Database, error) {
	if err := p.Check(); err != nil {
		return nil, err
	}
	db := edb.Clone()
	rules := make([]compiledRule, len(p.Rules))
	for i, r := range p.Rules {
		rules[i] = compileRule(r)
	}
	idb := map[string]bool{}
	for _, r := range p.Rules {
		idb[r.Head.Pred] = true
	}
	// occurrences[pred] lists (rule, bodyAtom) positions of IDB atoms.
	type occ struct{ rule, atom int }
	occurrences := map[string][]occ{}
	for ri, cr := range rules {
		for ai, a := range cr.body {
			if idb[a.pred] {
				occurrences[a.pred] = append(occurrences[a.pred], occ{ri, ai})
			}
		}
	}

	// Round 0: fire every rule against the EDB-only database. Facts
	// derived here seed the delta.
	delta := map[string][][]int{}
	capture := NewDatabase(db.Dom)
	for _, cr := range rules {
		fireRule(db, cr, -1, nil, capture)
	}
	for _, pred := range capture.Preds() {
		for _, t := range capture.RelOrNil(pred).Tuples() {
			if db.Rel(pred, len(t)).Add(t) {
				delta[pred] = append(delta[pred], t)
			}
		}
	}

	for len(delta) > 0 {
		next := NewDatabase(db.Dom)
		for pred, tuples := range delta {
			for _, o := range occurrences[pred] {
				fireRule(db, rules[o.rule], o.atom, tuples, next)
			}
		}
		delta = map[string][][]int{}
		for _, pred := range next.Preds() {
			for _, t := range next.RelOrNil(pred).Tuples() {
				if db.Rel(pred, len(t)).Add(t) {
					delta[pred] = append(delta[pred], t)
				}
			}
		}
	}
	return db, nil
}

// TraceEval runs the naive fixpoint and returns, for each round i ≥ 1,
// the list of new intensional facts in T_P^i \ T_P^{i-1} as ground
// atoms (sorted by predicate, then arguments). Matches the stage-by-
// stage trace of Example 3.2 in the paper. The final database is also
// returned.
func TraceEval(p *Program, edb *Database) ([][]Atom, *Database, error) {
	if err := p.Check(); err != nil {
		return nil, nil, err
	}
	db := edb.Clone()
	rules := make([]compiledRule, len(p.Rules))
	for i, r := range p.Rules {
		rules[i] = compileRule(r)
	}
	var stages [][]Atom
	for {
		capture := NewDatabase(db.Dom)
		for _, cr := range rules {
			fireRule(db, cr, -1, nil, capture)
		}
		var stage []Atom
		for _, pred := range capture.Preds() {
			for _, t := range capture.RelOrNil(pred).Tuples() {
				if db.Rel(pred, len(t)).Add(t) {
					stage = append(stage, Atom{Pred: pred, Args: termsOf(t)})
				}
			}
		}
		if len(stage) == 0 {
			return stages, db, nil
		}
		stages = append(stages, stage)
	}
}

// EvalError annotates evaluation failures with the offending rule.
type EvalError struct {
	Rule Rule
	Msg  string
}

func (e *EvalError) Error() string {
	return fmt.Sprintf("datalog: rule %q: %s", e.Rule.String(), e.Msg)
}
