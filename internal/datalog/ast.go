// Package datalog implements function-free logic programs (datalog) in
// the sense of Section 3 of Gottlob & Koch (PODS 2002): syntax, safety,
// the immediate consequence operator T_P, and bottom-up evaluation over
// finite structures. Monadic datalog is the fragment in which every
// intensional (head) predicate is unary; helpers for recognizing the
// fragments studied in the paper (monadic, guarded, Datalog LIT, TMNF)
// are provided here and in the eval and tmnf packages.
package datalog

import (
	"fmt"
	"sort"
	"strings"
)

// Term is a variable or a constant. Variables are identified by name;
// constants are elements of the finite domain, identified by integer id
// (for tree structures, the document-order node id).
type Term struct {
	// Var is the variable name; empty for constants.
	Var string
	// Const is the domain element when Var is empty.
	Const int
}

// V returns a variable term.
func V(name string) Term { return Term{Var: name} }

// C returns a constant term.
func C(id int) Term { return Term{Const: id} }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Var != "" }

func (t Term) String() string {
	if t.IsVar() {
		return t.Var
	}
	return fmt.Sprintf("%d", t.Const)
}

// Atom is p(t1,...,tm). Propositional atoms have no arguments.
type Atom struct {
	Pred string
	Args []Term
}

// At builds an atom.
func At(pred string, args ...Term) Atom { return Atom{Pred: pred, Args: args} }

func (a Atom) String() string {
	if len(a.Args) == 0 {
		return a.Pred
	}
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Pred + "(" + strings.Join(parts, ",") + ")"
}

// Clone returns a deep copy of the atom.
func (a Atom) Clone() Atom {
	return Atom{Pred: a.Pred, Args: append([]Term(nil), a.Args...)}
}

// Vars appends the variables of a to dst (with duplicates) and returns it.
func (a Atom) Vars(dst []string) []string {
	for _, t := range a.Args {
		if t.IsVar() {
			dst = append(dst, t.Var)
		}
	}
	return dst
}

// Rule is h ← b1,...,bn. A rule with an empty body is a fact.
type Rule struct {
	Head Atom
	Body []Atom
}

// R builds a rule.
func R(head Atom, body ...Atom) Rule { return Rule{Head: head, Body: body} }

func (r Rule) String() string {
	if len(r.Body) == 0 {
		return r.Head.String() + "."
	}
	parts := make([]string, len(r.Body))
	for i, a := range r.Body {
		parts[i] = a.String()
	}
	return r.Head.String() + " :- " + strings.Join(parts, ", ") + "."
}

// Vars returns the set of variables occurring in the rule, in first-
// occurrence order.
func (r Rule) Vars() []string {
	seen := map[string]bool{}
	var out []string
	add := func(a Atom) {
		for _, t := range a.Args {
			if t.IsVar() && !seen[t.Var] {
				seen[t.Var] = true
				out = append(out, t.Var)
			}
		}
	}
	add(r.Head)
	for _, b := range r.Body {
		add(b)
	}
	return out
}

// IsSafe reports whether every head variable occurs in the body
// (the safety condition of Section 3.1).
func (r Rule) IsSafe() bool {
	inBody := map[string]bool{}
	for _, b := range r.Body {
		for _, t := range b.Args {
			if t.IsVar() {
				inBody[t.Var] = true
			}
		}
	}
	for _, t := range r.Head.Args {
		if t.IsVar() && !inBody[t.Var] {
			return false
		}
	}
	return true
}

// IsGround reports whether the rule contains no variables.
func (r Rule) IsGround() bool {
	for _, t := range r.Head.Args {
		if t.IsVar() {
			return false
		}
	}
	for _, b := range r.Body {
		for _, t := range b.Args {
			if t.IsVar() {
				return false
			}
		}
	}
	return true
}

// Clone returns a deep copy of the rule.
func (r Rule) Clone() Rule {
	c := Rule{Head: r.Head}
	c.Head.Args = append([]Term(nil), r.Head.Args...)
	c.Body = make([]Atom, len(r.Body))
	for i, b := range r.Body {
		c.Body[i] = Atom{Pred: b.Pred, Args: append([]Term(nil), b.Args...)}
	}
	return c
}

// Program is a set of datalog rules, optionally with a distinguished
// query predicate (the paper's "monadic datalog query").
type Program struct {
	Rules []Rule
	// Query is the distinguished query predicate; may be empty for
	// programs that define several extraction functions at once.
	Query string
}

// NewProgram builds a program from rules.
func NewProgram(rules ...Rule) *Program { return &Program{Rules: rules} }

// Add appends rules and returns the program for chaining.
func (p *Program) Add(rules ...Rule) *Program {
	p.Rules = append(p.Rules, rules...)
	return p
}

// Clone returns a deep copy.
func (p *Program) Clone() *Program {
	q := &Program{Query: p.Query, Rules: make([]Rule, len(p.Rules))}
	for i, r := range p.Rules {
		q.Rules[i] = r.Clone()
	}
	return q
}

func (p *Program) String() string {
	var b strings.Builder
	for _, r := range p.Rules {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// IntensionalPreds returns the sorted set of predicates that occur in
// some rule head.
func (p *Program) IntensionalPreds() []string {
	set := map[string]bool{}
	for _, r := range p.Rules {
		set[r.Head.Pred] = true
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// ExtensionalPreds returns the sorted set of body predicates that never
// occur in a head.
func (p *Program) ExtensionalPreds() []string {
	idb := map[string]bool{}
	for _, r := range p.Rules {
		idb[r.Head.Pred] = true
	}
	set := map[string]bool{}
	for _, r := range p.Rules {
		for _, b := range r.Body {
			if !idb[b.Pred] {
				set[b.Pred] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// IsMonadic reports whether every intensional predicate is unary or
// propositional (0-ary helper predicates are tolerated: the paper's own
// constructions introduce them when splitting disconnected rules).
func (p *Program) IsMonadic() bool {
	for _, r := range p.Rules {
		if len(r.Head.Args) > 1 {
			return false
		}
	}
	return true
}

// Check validates safety of all rules and consistent predicate arities
// across the program.
func (p *Program) Check() error {
	arity := map[string]int{}
	seeAtom := func(a Atom, where string) error {
		if ar, ok := arity[a.Pred]; ok && ar != len(a.Args) {
			return fmt.Errorf("datalog: predicate %s used with arities %d and %d (%s)",
				a.Pred, ar, len(a.Args), where)
		}
		arity[a.Pred] = len(a.Args)
		return nil
	}
	for i, r := range p.Rules {
		if !r.IsSafe() {
			return fmt.Errorf("datalog: rule %d is unsafe: %s", i, r)
		}
		if err := seeAtom(r.Head, r.String()); err != nil {
			return err
		}
		for _, b := range r.Body {
			if err := seeAtom(b, r.String()); err != nil {
				return err
			}
		}
	}
	return nil
}

// IsConnected reports whether the rule's query graph — vertices are the
// rule's variables, with an edge {x,y} for each binary body atom
// R(x,y) — is connected, counting variables that occur only in unary
// atoms as isolated vertices (Theorem 4.2 of the paper).
func (r Rule) IsConnected() bool {
	vars := r.Vars()
	if len(vars) <= 1 {
		return true
	}
	idx := map[string]int{}
	for i, v := range vars {
		idx[v] = i
	}
	parent := make([]int, len(vars))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(x, y int) { parent[find(x)] = find(y) }
	for _, b := range r.Body {
		var prev = -1
		for _, t := range b.Args {
			if !t.IsVar() {
				continue
			}
			cur := idx[t.Var]
			if prev >= 0 {
				union(prev, cur)
			}
			prev = cur
		}
	}
	root := find(0)
	for i := 1; i < len(vars); i++ {
		if find(i) != root {
			return false
		}
	}
	return true
}
