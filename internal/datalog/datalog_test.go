package datalog

import (
	"strings"
	"testing"
)

func TestTermAtomRuleStrings(t *testing.T) {
	r := R(At("p", V("X")), At("q", V("X"), C(3)), At("b"))
	got := r.String()
	want := "p(X) :- q(X,3), b."
	if got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if f := R(At("p", C(1))); f.String() != "p(1)." {
		t.Errorf("fact String = %q", f.String())
	}
}

func TestParseProgram(t *testing.T) {
	src := `
% Example 3.2 fragment
b0(X) :- leaf(X).
c1(X) :- b0(X), label_a(X).
fact(3).
b :- c1(Y).
?- c1.
`
	p, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 4 {
		t.Fatalf("got %d rules", len(p.Rules))
	}
	if p.Query != "c1" {
		t.Errorf("Query = %q", p.Query)
	}
	if p.Rules[2].Head.Args[0].Const != 3 {
		t.Error("constant parsed wrong")
	}
	if p.Rules[3].Head.Pred != "b" || len(p.Rules[3].Head.Args) != 0 {
		t.Error("propositional head parsed wrong")
	}
	// Round trip.
	p2, err := ParseProgram(p.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if p2.String() != p.String() {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", p.String(), p2.String())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"p(X)",                            // missing period
		"p(X) :- q(X)",                    // missing period
		"p(X) :- .",                       // empty body
		"p(X :- q(X).",                    // bad atom
		"p(X) :- q(X,).",                  // bad term
		"P(X) :- q(X).",                   // uppercase predicate
		"p(X) :- q(Y).",                   // actually safe? no: head var X not in body -> unsafe
		"p(x) :- q(x).",                   // lowercase terms are not variables nor constants
		"?- .",                            // missing pred
		"p(X) :- q(X). p(X,Y) :- r(X,Y).", // arity clash
	}
	for _, src := range bad {
		if _, err := ParseProgram(src); err == nil {
			t.Errorf("ParseProgram(%q): expected error", src)
		}
	}
}

func TestSafety(t *testing.T) {
	if R(At("p", V("X")), At("q", V("Y"))).IsSafe() {
		t.Error("unsafe rule declared safe")
	}
	if !R(At("p", V("X")), At("q", V("X"), V("Y"))).IsSafe() {
		t.Error("safe rule declared unsafe")
	}
	if !R(At("p", C(1))).IsSafe() {
		t.Error("ground fact must be safe")
	}
}

func TestProgramPredicates(t *testing.T) {
	p := MustParseProgram(`
p(X) :- q(X), r(X,Y), s(Y).
q(X) :- t(X).
`)
	if got := p.IntensionalPreds(); len(got) != 2 || got[0] != "p" || got[1] != "q" {
		t.Errorf("IntensionalPreds = %v", got)
	}
	if got := p.ExtensionalPreds(); len(got) != 3 || got[0] != "r" || got[1] != "s" || got[2] != "t" {
		t.Errorf("ExtensionalPreds = %v", got)
	}
	if !p.IsMonadic() {
		t.Error("IsMonadic = false")
	}
	p2 := MustParseProgram(`p(X,Y) :- e(X,Y).`)
	if p2.IsMonadic() {
		t.Error("binary head declared monadic")
	}
}

func TestIsConnected(t *testing.T) {
	conn := MustParseProgram(`p(X) :- q(X,Y), r(Y,Z).`).Rules[0]
	if !conn.IsConnected() {
		t.Error("connected rule declared disconnected")
	}
	disc := MustParseProgram(`p(X) :- q(X), r(Y,Z).`).Rules[0]
	if disc.IsConnected() {
		t.Error("disconnected rule declared connected")
	}
	single := MustParseProgram(`p(X) :- q(X).`).Rules[0]
	if !single.IsConnected() {
		t.Error("single-variable rule must be connected")
	}
}

func TestDatabaseBasics(t *testing.T) {
	db := NewDatabase(5)
	if !db.Add("e", 0, 1) || db.Add("e", 0, 1) {
		t.Error("Add dedup wrong")
	}
	db.Add("e", 1, 2)
	db.Add("u", 3)
	if !db.Has("e", 0, 1) || db.Has("e", 2, 0) {
		t.Error("Has wrong")
	}
	if got := db.UnarySet("u"); len(got) != 1 || got[0] != 3 {
		t.Errorf("UnarySet = %v", got)
	}
	um := db.Unary("u")
	if !um[3] || um[0] {
		t.Error("Unary bitmap wrong")
	}
	if db.Size() != 3 {
		t.Errorf("Size = %d", db.Size())
	}
	preds := db.Preds()
	if len(preds) != 2 || preds[0] != "e" || preds[1] != "u" {
		t.Errorf("Preds = %v", preds)
	}
	cl := db.Clone()
	cl.Add("e", 4, 4)
	if db.Has("e", 4, 4) {
		t.Error("Clone shares state")
	}
	pr := db.Project([]string{"u", "missing"})
	if pr.Has("e", 0, 1) || !pr.Has("u", 3) {
		t.Error("Project wrong")
	}
	if !strings.Contains(db.String(), "e(0,1).") {
		t.Errorf("String = %q", db.String())
	}
}

func TestNaiveEvalTransitiveClosure(t *testing.T) {
	p := MustParseProgram(`
tc(X,Y) :- e(X,Y).
tc(X,Z) :- tc(X,Y), e(Y,Z).
`)
	db := NewDatabase(4)
	db.Add("e", 0, 1)
	db.Add("e", 1, 2)
	db.Add("e", 2, 3)
	res, err := NaiveEval(p, db)
	if err != nil {
		t.Fatal(err)
	}
	wantPairs := [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	for _, w := range wantPairs {
		if !res.Has("tc", w[0], w[1]) {
			t.Errorf("missing tc(%d,%d)", w[0], w[1])
		}
	}
	if res.RelOrNil("tc").Len() != len(wantPairs) {
		t.Errorf("tc has %d tuples, want %d", res.RelOrNil("tc").Len(), len(wantPairs))
	}
}

func TestSemiNaiveMatchesNaive(t *testing.T) {
	p := MustParseProgram(`
tc(X,Y) :- e(X,Y).
tc(X,Z) :- tc(X,Y), tc(Y,Z).
odd(X)  :- start(X).
odd(Y)  :- even(X), e(X,Y).
even(Y) :- odd(X), e(X,Y).
`)
	db := NewDatabase(6)
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {2, 5}}
	for _, e := range edges {
		db.Add("e", e[0], e[1])
	}
	db.Add("start", 0)
	nv, err := NaiveEval(p, db)
	if err != nil {
		t.Fatal(err)
	}
	sn, err := SemiNaiveEval(p, db)
	if err != nil {
		t.Fatal(err)
	}
	for _, pred := range []string{"tc", "odd", "even"} {
		a, b := nv.RelOrNil(pred), sn.RelOrNil(pred)
		if (a == nil) != (b == nil) {
			t.Fatalf("%s presence differs", pred)
		}
		if a == nil {
			continue
		}
		if a.Len() != b.Len() {
			t.Errorf("%s: naive %d vs semi-naive %d tuples", pred, a.Len(), b.Len())
		}
		for _, tu := range a.Tuples() {
			if !b.Has(tu) {
				t.Errorf("%s: semi-naive missing %v", pred, tu)
			}
		}
	}
}

func TestEvalWithConstants(t *testing.T) {
	p := MustParseProgram(`
picked(X) :- e(0,X).
zero(0) :- e(0,1).
`)
	db := NewDatabase(3)
	db.Add("e", 0, 1)
	db.Add("e", 1, 2)
	res, err := SemiNaiveEval(p, db)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.UnarySet("picked"); len(got) != 1 || got[0] != 1 {
		t.Errorf("picked = %v", got)
	}
	if !res.Has("zero", 0) {
		t.Error("zero(0) missing")
	}
}

func TestPropositionalRules(t *testing.T) {
	p := MustParseProgram(`
some_a :- label_a(X).
q(X) :- node(X), some_a.
`)
	db := NewDatabase(3)
	db.Add("node", 0)
	db.Add("node", 1)
	db.Add("node", 2)
	db.Add("label_a", 1)
	res, err := SemiNaiveEval(p, db)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.UnarySet("q"); len(got) != 3 {
		t.Errorf("q = %v", got)
	}
	// Without any a-labeled node q must be empty.
	db2 := NewDatabase(2)
	db2.Add("node", 0)
	db2.Add("node", 1)
	res2, err := SemiNaiveEval(p, db2)
	if err != nil {
		t.Fatal(err)
	}
	if got := res2.UnarySet("q"); len(got) != 0 {
		t.Errorf("q = %v, want empty", got)
	}
}

func TestTraceEval(t *testing.T) {
	p := MustParseProgram(`
a(X) :- base(X).
b(X) :- a(X).
c(X) :- b(X).
`)
	db := NewDatabase(1)
	db.Add("base", 0)
	stages, final, err := TraceEval(p, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 3 {
		t.Fatalf("got %d stages, want 3", len(stages))
	}
	if stages[0][0].Pred != "a" || stages[1][0].Pred != "b" || stages[2][0].Pred != "c" {
		t.Errorf("stage order wrong: %v", stages)
	}
	if !final.Has("c", 0) {
		t.Error("final missing c(0)")
	}
}

func TestCloneProgram(t *testing.T) {
	p := MustParseProgram(`p(X) :- q(X).`)
	c := p.Clone()
	c.Rules[0].Head.Pred = "changed"
	if p.Rules[0].Head.Pred != "p" {
		t.Error("Clone shares rule storage")
	}
}
