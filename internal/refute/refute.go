// Package refute is the shared random-tree refutation harness behind
// the containment checkers (caterpillar word-language containment,
// monadic datalog UCQ containment): a sound "no" half of a decision
// procedure. The checkers prove containment symbolically; when the
// proof fails, Search enumerates small random trees and asks a probe
// for a concrete counterexample node. A returned Witness is a real
// tree on which the claim fails — checkable by re-evaluation — so a
// refutation is never a false alarm, while an exhausted search proves
// nothing (the caller reports Unknown).
package refute

import (
	"math/rand"
	"os"
	"strconv"

	"mdlog/internal/tree"
)

// Options tunes a refutation search.
type Options struct {
	// Trees is the number of random trees to try (default 400).
	Trees int
	// MaxSize bounds the size of candidate trees (default 10).
	MaxSize int
	// MaxChildren bounds the fan-out of candidate trees (default 4).
	MaxChildren int
	// Labels is the label alphabet for candidates (default a, b).
	Labels []string
	// Seed for the search; 0 means DefaultSeed() (the MDLOG_FUZZ_SEED
	// environment override, else 1), so refutation searches are
	// reproducible under the differential fuzzer's seed control.
	Seed int64
}

// Witness is a concrete refutation: a tree and a node on which the
// checked claim fails.
type Witness struct {
	Tree *tree.Tree
	Node int
}

// DefaultSeed returns the seed refutation searches run with when the
// caller does not pin one: MDLOG_FUZZ_SEED when set (the same knob
// that seeds the cross-engine differential fuzzer, so a failing CI
// seed reproduces the whole run including refutation searches), else 1.
func DefaultSeed() int64 {
	if s := os.Getenv("MDLOG_FUZZ_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil && v != 0 {
			return v
		}
	}
	return 1
}

// withDefaults fills the unset fields of o.
func (o Options) withDefaults() Options {
	if o.Trees <= 0 {
		o.Trees = 400
	}
	if o.MaxSize <= 0 {
		o.MaxSize = 10
	}
	if o.MaxChildren <= 0 {
		o.MaxChildren = 4
	}
	if len(o.Labels) == 0 {
		o.Labels = []string{"a", "b"}
	}
	if o.Seed == 0 {
		o.Seed = DefaultSeed()
	}
	return o
}

// Search enumerates random trees (sizes 1..MaxSize, drawn from a
// deterministic local source — never the package-global math/rand
// state) and applies probe to each. A probe that finds the claim
// violated on t returns the witnessing node id and true; Search stops
// and returns the Witness. A nil result means no counterexample was
// found within the budget — which proves nothing.
func Search(o Options, probe func(t *tree.Tree) (node int, refuted bool)) *Witness {
	o = o.withDefaults()
	rng := rand.New(rand.NewSource(o.Seed))
	for i := 0; i < o.Trees; i++ {
		t := tree.Random(rng, tree.RandomOptions{
			Labels:      o.Labels,
			Size:        1 + rng.Intn(o.MaxSize),
			MaxChildren: o.MaxChildren,
		})
		if node, refuted := probe(t); refuted {
			return &Witness{Tree: t, Node: node}
		}
	}
	return nil
}
