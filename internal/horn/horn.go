// Package horn implements linear-time propositional Horn clause
// inference in the style of Dowling–Gallier (1984) and Minoux's LTUR
// (1988), as invoked by Proposition 3.5 of Gottlob & Koch (PODS 2002):
// a ground (propositional) datalog program plus a database of facts can
// be evaluated in time O(|P| + |σ|).
//
// Atoms are dense nonnegative integers; a clause derives its head once
// all body atoms are known true. The solver runs in time linear in the
// total size of the clause set (sum of body lengths plus number of
// clauses).
package horn

// Clause is a definite Horn clause head ← body. Facts have empty bodies.
type Clause struct {
	Head int
	Body []int
}

// Solver computes the least model of a set of definite Horn clauses by
// counter-based unit propagation. The zero value is ready to use.
type Solver struct {
	clauses  []Clause
	numAtoms int
}

// AddClause appends a clause. Atom ids must be nonnegative.
func (s *Solver) AddClause(head int, body ...int) {
	s.clauses = append(s.clauses, Clause{Head: head, Body: body})
	if head >= s.numAtoms {
		s.numAtoms = head + 1
	}
	for _, b := range body {
		if b >= s.numAtoms {
			s.numAtoms = b + 1
		}
	}
}

// AddFact appends a bodyless clause.
func (s *Solver) AddFact(atom int) { s.AddClause(atom) }

// NumClauses returns the number of clauses added.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// Solve returns the characteristic vector of the least model: true[a]
// iff atom a is derivable. The slice has length max(numAtoms, minAtoms).
//
// The watch lists (clauses per body atom) are laid out in one
// compressed-sparse-row array — two counting passes instead of one
// append per literal — so solving costs O(1) allocations regardless
// of clause count.
func (s *Solver) Solve(minAtoms int) []bool {
	n := s.numAtoms
	if minAtoms > n {
		n = minAtoms
	}
	truth := make([]bool, n)

	// remaining[c] counts body atoms of clause c not yet known true.
	remaining := make([]int32, len(s.clauses))
	total := 0
	// starts[a] will hold the CSR offset of atom a's watch list.
	starts := make([]int32, n+1)
	for ci, c := range s.clauses {
		remaining[ci] = int32(len(c.Body))
		total += len(c.Body)
		for _, b := range c.Body {
			starts[b]++
		}
	}
	sum := int32(0)
	for a := 0; a <= n; a++ {
		cnt := starts[a]
		starts[a] = sum
		sum += cnt
	}
	watch := make([]int32, total)
	for ci, c := range s.clauses {
		for _, b := range c.Body {
			watch[starts[b]] = int32(ci)
			starts[b]++
		}
	}
	// starts[a] now marks the END of a's list; its start is starts[a-1]
	// (0 for the first atom).

	queue := make([]int32, 0, n)
	markTrue := func(a int) {
		if !truth[a] {
			truth[a] = true
			queue = append(queue, int32(a))
		}
	}
	for ci, c := range s.clauses {
		if remaining[ci] == 0 {
			markTrue(c.Head)
		}
	}
	for len(queue) > 0 {
		a := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		lo := int32(0)
		if a > 0 {
			lo = starts[a-1]
		}
		for _, ci := range watch[lo:starts[a]] {
			remaining[ci]--
			if remaining[ci] == 0 {
				markTrue(s.clauses[ci].Head)
			}
		}
	}
	return truth
}
