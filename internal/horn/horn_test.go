package horn

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	var s Solver
	truth := s.Solve(3)
	for i, v := range truth {
		if v {
			t.Errorf("atom %d true in empty program", i)
		}
	}
}

func TestFactsAndChains(t *testing.T) {
	var s Solver
	s.AddFact(0)
	s.AddClause(1, 0)
	s.AddClause(2, 1)
	s.AddClause(3, 2, 5) // 5 never true
	s.AddClause(4, 0, 1, 2)
	truth := s.Solve(0)
	want := []bool{true, true, true, false, true, false}
	for i, w := range want {
		if truth[i] != w {
			t.Errorf("atom %d = %v, want %v", i, truth[i], w)
		}
	}
}

func TestCycle(t *testing.T) {
	var s Solver
	// Mutual dependency without base fact: nothing derivable.
	s.AddClause(0, 1)
	s.AddClause(1, 0)
	truth := s.Solve(0)
	if truth[0] || truth[1] {
		t.Error("cycle without facts must stay false")
	}
	// Adding a base fact makes the whole cycle true.
	s.AddFact(0)
	truth = s.Solve(0)
	if !truth[0] || !truth[1] {
		t.Error("cycle with fact must become true")
	}
}

func TestDuplicateBodyAtoms(t *testing.T) {
	var s Solver
	s.AddClause(1, 0, 0, 0)
	s.AddFact(0)
	truth := s.Solve(0)
	if !truth[1] {
		t.Error("duplicate body atoms must not block derivation")
	}
}

func TestMinAtoms(t *testing.T) {
	var s Solver
	s.AddFact(2)
	truth := s.Solve(10)
	if len(truth) != 10 {
		t.Errorf("len = %d, want 10", len(truth))
	}
}

// naiveSolve is the obvious quadratic fixpoint, used as the reference.
func naiveSolve(clauses []Clause, n int) []bool {
	truth := make([]bool, n)
	for changed := true; changed; {
		changed = false
		for _, c := range clauses {
			if truth[c.Head] {
				continue
			}
			ok := true
			for _, b := range c.Body {
				if !truth[b] {
					ok = false
					break
				}
			}
			if ok {
				truth[c.Head] = true
				changed = true
			}
		}
	}
	return truth
}

func TestAgainstNaiveRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		var s Solver
		var clauses []Clause
		for i := 0; i < rng.Intn(80); i++ {
			head := rng.Intn(n)
			body := make([]int, rng.Intn(4))
			for j := range body {
				body[j] = rng.Intn(n)
			}
			s.AddClause(head, body...)
			clauses = append(clauses, Clause{Head: head, Body: body})
		}
		got := s.Solve(n)
		want := naiveSolve(clauses, n)
		for i := 0; i < n; i++ {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNumClauses(t *testing.T) {
	var s Solver
	s.AddFact(0)
	s.AddClause(1, 0)
	if s.NumClauses() != 2 {
		t.Errorf("NumClauses = %d", s.NumClauses())
	}
}
