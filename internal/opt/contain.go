package opt

// Containment of monadic datalog queries over τ_ur — the checker
// behind registry-wide wrapper subsumption. Monadic datalog
// containment on trees is decidable (Frochaux–Grohe–Schweikardt) but
// EXPTIME-hard; what a serving registry needs is a *practical*
// sound-but-incomplete three-valued checker:
//
//   - Contained: proven symbolically. The visible predicate of each
//     side is unfolded (post Tamaki–Sato inlining) into a union of
//     conjunctive queries over the extensional tree vocabulary, and
//     UCQ containment is decided by the classical homomorphism
//     theorem: Q1 ⊆ Q2 iff every disjunct of Q1 admits a homomorphism
//     from some disjunct of Q2 fixing the head variable. The theorem
//     gives containment over ALL structures, which implies containment
//     over the tree structures we evaluate on — sound, incomplete
//     (tree-specific containments, e.g. those forced by the axioms of
//     τ_ur, are missed). The only tree-specific liberty taken is
//     normalization: dom(X) atoms over variables are dropped, because
//     on every tree dom is the full (nonempty) domain, so the atom
//     never constrains — the normalized and original queries agree on
//     trees.
//   - NotContained: witnessed by a concrete counterexample tree from
//     the shared random-tree refutation search (internal/refute), on
//     which both programs are actually evaluated — a "no" is always
//     accompanied by a checkable tree and node.
//   - ContainUnknown: neither side fired — the predicate is recursive
//     (not unfoldable), the unfolding exceeds its budget, or no small
//     counterexample exists. Callers MUST fall back to evaluation:
//     Unknown never changes semantics, it only declines the shortcut.

import (
	"fmt"
	"sort"
	"strings"

	"mdlog/internal/datalog"
	"mdlog/internal/eval"
	"mdlog/internal/refute"
	"mdlog/internal/tree"
)

// ContainResult is the three-valued outcome of CheckContainment.
type ContainResult int

const (
	// Contained: proven by UCQ unfolding + homomorphism (sound for all
	// trees).
	Contained ContainResult = iota
	// NotContained: a concrete tree witnesses non-containment.
	NotContained
	// ContainUnknown: no proof and no counterexample within budget;
	// the caller falls back to evaluation.
	ContainUnknown
)

// String renders the result the way the CLI and /stats spell it.
func (r ContainResult) String() string {
	switch r {
	case Contained:
		return "contained"
	case NotContained:
		return "not-contained"
	case ContainUnknown:
		return "unknown"
	}
	return fmt.Sprintf("ContainResult(%d)", int(r))
}

// DefaultMaxCQs bounds how many disjuncts an unfolding may produce
// before the checker gives up with Unknown.
const DefaultMaxCQs = 64

// DefaultMaxCQAtoms bounds the atom count of a single unfolded
// conjunctive query.
const DefaultMaxCQAtoms = 48

// ContainOptions tunes CheckContainment.
type ContainOptions struct {
	// MaxCQs caps the number of disjuncts per unfolding (default
	// DefaultMaxCQs); MaxAtoms caps the atoms per disjunct (default
	// DefaultMaxCQAtoms). Budget blowouts yield Unknown, never a wrong
	// answer.
	MaxCQs, MaxAtoms int
	// NoRefute disables the random-tree counterexample search, so the
	// checker never evaluates a program (the compile-path setting:
	// fusion only acts on proven equivalence and has no use for "no").
	NoRefute bool
	// Refute tunes the counterexample search (zero value: refute
	// package defaults, seeded from MDLOG_FUZZ_SEED).
	Refute refute.Options
}

func (o ContainOptions) withDefaults() ContainOptions {
	if o.MaxCQs <= 0 {
		o.MaxCQs = DefaultMaxCQs
	}
	if o.MaxAtoms <= 0 {
		o.MaxAtoms = DefaultMaxCQAtoms
	}
	return o
}

// CheckContainment decides (one-sidedly) whether pred1's extension
// under p1 is contained in pred2's under p2 on every document tree.
// The returned witness is non-nil exactly when the result is
// NotContained: a tree plus a node selected by (p1, pred1) but not by
// (p2, pred2). A nil opts uses defaults.
func CheckContainment(p1 *datalog.Program, pred1 string, p2 *datalog.Program, pred2 string, opts *ContainOptions) (ContainResult, *refute.Witness) {
	o := ContainOptions{}
	if opts != nil {
		o = *opts
	}
	o = o.withDefaults()
	u1, ok1 := unfoldUCQ(p1, pred1, o)
	u2, ok2 := unfoldUCQ(p2, pred2, o)
	if ok1 && ok2 && ucqContainedIn(u1, u2) {
		return Contained, nil
	}
	if !o.NoRefute {
		if w := refuteContainment(p1, pred1, p2, pred2, o.Refute); w != nil {
			return NotContained, w
		}
	}
	return ContainUnknown, nil
}

// CheckEquivalence decides whether (p1, pred1) and (p2, pred2) select
// the same nodes on every tree: Contained means proven equivalent
// (mutual containment), NotContained means a witness tree separates
// them (the witness node is in one side's selection only), and
// Unknown falls back to evaluation.
func CheckEquivalence(p1 *datalog.Program, pred1 string, p2 *datalog.Program, pred2 string, opts *ContainOptions) (ContainResult, *refute.Witness) {
	o := ContainOptions{}
	if opts != nil {
		o = *opts
	}
	o = o.withDefaults()
	u1, ok1 := unfoldUCQ(p1, pred1, o)
	u2, ok2 := unfoldUCQ(p2, pred2, o)
	if ok1 && ok2 && ucqContainedIn(u1, u2) && ucqContainedIn(u2, u1) {
		return Contained, nil
	}
	if !o.NoRefute {
		if w := refuteContainment(p1, pred1, p2, pred2, o.Refute); w != nil {
			return NotContained, w
		}
		if w := refuteContainment(p2, pred2, p1, pred1, o.Refute); w != nil {
			return NotContained, w
		}
	}
	return ContainUnknown, nil
}

// UnfoldSignature fingerprints pred's unfolding: the canonical,
// minimized union of conjunctive queries it denotes over the
// extensional tree vocabulary. Two predicates with equal signatures
// have identical extensions on every structure — the transitive,
// pair-free fast path fusion's subsumption pass merges on. ok is
// false when pred is recursive, exceeds the unfolding budget, or uses
// constructs the unfolder does not model.
func UnfoldSignature(p *datalog.Program, pred string, opts *ContainOptions) (sig string, ok bool) {
	o := ContainOptions{}
	if opts != nil {
		o = *opts
	}
	o = o.withDefaults()
	u, ok := unfoldUCQ(p, pred, o)
	if !ok {
		return "", false
	}
	lines := make([]string, len(u))
	for i, q := range u {
		lines[i] = q.canonical()
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n"), true
}

// ---------------------------------------------------------------------
// UCQ unfolding.

// cq is one conjunctive disjunct of an unfolded visible predicate:
// ∃(vars ∖ head) ⋀ atoms, with head as the distinguished (selected)
// variable. head is "" for propositional queries. All atoms range over
// the extensional tree vocabulary.
type cq struct {
	head  string
	atoms []datalog.Atom
}

// canonical renders the cq with atoms sorted and variables renamed by
// first occurrence, reusing the rule canonicalizer with a reserved
// head predicate (NUL-prefixed, outside the parseable name space).
func (q cq) canonical() string {
	h := datalog.Atom{Pred: "\x00q"}
	if q.head != "" {
		h.Args = []datalog.Term{datalog.V(q.head)}
	}
	return canonicalRule(datalog.Rule{Head: h, Body: q.atoms})
}

// unfoldUCQ expands pred under p into its union of conjunctive
// queries: each defining rule contributes the product of its body
// atoms' expansions, recursively, until only extensional atoms remain.
// Fails (ok=false) on recursion through pred's dependency cone, on
// budget blowout, on non-variable rule heads, and on unknown binary
// predicates (the engines disagree about those; the checker stays
// out). Unknown unary/propositional predicates without rules have
// empty extensions, so disjuncts requiring them are dropped. The
// resulting disjuncts are dom-normalized, core-minimized, and
// deduplicated.
func unfoldUCQ(p *datalog.Program, pred string, o ContainOptions) ([]cq, bool) {
	rules := map[string][]datalog.Rule{}
	for _, r := range p.Rules {
		rules[r.Head.Pred] = append(rules[r.Head.Pred], r.Clone())
	}
	if cyclicFrom(pred, rules) {
		return nil, false
	}
	fresh := 0
	// expand returns every extensional-only expansion of the atom's
	// predicate, each as (atoms, headVar) with variables freshly named;
	// the caller unifies headVar with its call-site argument.
	var expandPred func(name string) ([]cq, bool)
	memo := map[string][]cq{}
	expandPred = func(name string) ([]cq, bool) {
		if got, ok := memo[name]; ok {
			return got, true
		}
		var out []cq
		for _, r := range rules[name] {
			// Expansion state: start from the rule body, repeatedly
			// replace the first intensional atom by each of its
			// predicate's expansions.
			var headVar string
			if len(r.Head.Args) == 1 {
				if !r.Head.Args[0].IsVar() {
					return nil, false
				}
				headVar = r.Head.Args[0].Var
			} else if len(r.Head.Args) > 1 {
				return nil, false // not monadic; out of fragment
			}
			work := []cq{{head: headVar, atoms: r.Body}}
			for len(work) > 0 {
				q := work[len(work)-1]
				work = work[:len(work)-1]
				if len(q.atoms) > o.MaxAtoms {
					return nil, false
				}
				i := firstIntensional(q.atoms, rules)
				if i < 0 {
					// Check the leftover vocabulary is modeled.
					okAtoms := true
					for _, a := range q.atoms {
						switch len(a.Args) {
						case 1:
							if !eval.IsUnaryEDB(a.Pred) {
								okAtoms = false // unruled unary: empty, drop disjunct
							}
						case 2:
							if !eval.IsBinaryEDB(a.Pred) {
								return nil, false // unknown binary: engines disagree
							}
						default:
							okAtoms = false // unruled propositional: empty
						}
					}
					if okAtoms {
						out = append(out, q)
						if len(out) > o.MaxCQs {
							return nil, false
						}
					}
					continue
				}
				target := q.atoms[i]
				for _, sub := range rules[target.Pred] {
					nq, ok := spliceRule(q, i, target, sub, &fresh)
					if !ok {
						return nil, false
					}
					if len(nq.atoms) > o.MaxAtoms {
						return nil, false
					}
					work = append(work, nq)
				}
			}
		}
		memo[name] = out
		return out, true
	}
	// Seed with the predicate itself so arity handling is uniform.
	exps, ok := expandPred(pred)
	if !ok {
		return nil, false
	}
	if len(rules[pred]) == 0 {
		return nil, false // nothing to unfold: undefined or extensional
	}
	out := make([]cq, 0, len(exps))
	seen := map[string]bool{}
	for _, q := range exps {
		q = minimizeCQ(normalizeCQ(q))
		key := q.canonical()
		if !seen[key] {
			seen[key] = true
			out = append(out, q)
		}
	}
	return out, true
}

// firstIntensional returns the index of the first body atom whose
// predicate has defining rules, or -1.
func firstIntensional(atoms []datalog.Atom, rules map[string][]datalog.Rule) int {
	for i, a := range atoms {
		if len(rules[a.Pred]) > 0 {
			return i
		}
	}
	return -1
}

// spliceRule replaces q.atoms[i] (an intensional atom) with the body
// of sub, unifying sub's head argument with the call-site argument and
// renaming sub's remaining variables fresh.
func spliceRule(q cq, i int, target datalog.Atom, sub datalog.Rule, fresh *int) (cq, bool) {
	rename := map[string]datalog.Term{}
	switch len(sub.Head.Args) {
	case 0:
		// Propositional: no unification.
	case 1:
		if !sub.Head.Args[0].IsVar() || len(target.Args) != 1 {
			return cq{}, false
		}
		rename[sub.Head.Args[0].Var] = target.Args[0]
	default:
		return cq{}, false
	}
	*fresh++
	tag := fmt.Sprintf("u%d", *fresh)
	mapTerm := func(t datalog.Term) datalog.Term {
		if !t.IsVar() {
			return t
		}
		if got, ok := rename[t.Var]; ok {
			return got
		}
		nt := datalog.V(t.Var + "_" + tag)
		rename[t.Var] = nt
		return nt
	}
	atoms := make([]datalog.Atom, 0, len(q.atoms)-1+len(sub.Body))
	atoms = append(atoms, q.atoms[:i]...)
	for _, b := range sub.Body {
		nb := b.Clone()
		for j, t := range nb.Args {
			nb.Args[j] = mapTerm(t)
		}
		atoms = append(atoms, nb)
	}
	atoms = append(atoms, q.atoms[i+1:]...)
	return cq{head: q.head, atoms: atoms}, true
}

// cyclicFrom reports whether pred's dependency cone contains a cycle
// among intensional predicates (recursion: not unfoldable).
func cyclicFrom(pred string, rules map[string][]datalog.Rule) bool {
	const (
		visiting = 1
		done     = 2
	)
	state := map[string]int{}
	var walk func(name string) bool
	walk = func(name string) bool {
		switch state[name] {
		case visiting:
			return true
		case done:
			return false
		}
		state[name] = visiting
		for _, r := range rules[name] {
			for _, b := range r.Body {
				if len(rules[b.Pred]) > 0 && walk(b.Pred) {
					return true
				}
			}
		}
		state[name] = done
		return false
	}
	return walk(pred)
}

// normalizeCQ drops dom atoms over variables: on every tree, dom is
// the full nonempty domain, so dom(X) never constrains — whether X is
// the head, occurs elsewhere, or is a lone existential (∃X dom(X) is
// true on every nonempty tree, and trees have at least a root). This
// is the one tree-specific rewrite the checker applies; it is exactly
// what lets "defensive dom(X)" variants of a wrapper collide with the
// original.
func normalizeCQ(q cq) cq {
	kept := make([]datalog.Atom, 0, len(q.atoms))
	for _, a := range q.atoms {
		if a.Pred == eval.PredDom && len(a.Args) == 1 && a.Args[0].IsVar() {
			continue
		}
		kept = append(kept, a)
	}
	q.atoms = kept
	return q
}

// minimizeCQ computes the core of q: repeatedly drop any atom a such
// that a homomorphism maps q into q∖{a} fixing the head (then
// q ≡ q∖{a}: the sub-query contains q trivially, and the homomorphism
// proves the converse). Minimization is what makes the canonical form
// catch semantically redundant near-duplicates — duplicated join
// chains under renamed variables collapse onto one copy.
func minimizeCQ(q cq) cq {
	for {
		dropped := false
		for i := range q.atoms {
			reduced := cq{head: q.head, atoms: make([]datalog.Atom, 0, len(q.atoms)-1)}
			reduced.atoms = append(reduced.atoms, q.atoms[:i]...)
			reduced.atoms = append(reduced.atoms, q.atoms[i+1:]...)
			// The head variable must stay covered: a safe query keeps
			// its selected variable bound by some atom.
			if q.head != "" && !coversVar(reduced.atoms, q.head) && coversVar(q.atoms, q.head) {
				continue
			}
			if homInto(q, reduced) {
				q = reduced
				dropped = true
				break
			}
		}
		if !dropped {
			return q
		}
	}
}

// coversVar reports whether v occurs in some atom.
func coversVar(atoms []datalog.Atom, v string) bool {
	for _, a := range atoms {
		for _, t := range a.Args {
			if t.IsVar() && t.Var == v {
				return true
			}
		}
	}
	return false
}

// ---------------------------------------------------------------------
// Homomorphism checking.

// homBudget caps the backtracking nodes of one homomorphism search;
// exhaustion counts as "no homomorphism found", which is always safe
// (the checker just fails to prove).
const homBudget = 200_000

// homInto reports whether a homomorphism maps src into dst: every atom
// of src maps to an atom of dst under a single variable assignment
// that fixes the head variable (head ↦ head) and maps constants to
// themselves.
func homInto(src, dst cq) bool {
	asg := map[string]datalog.Term{}
	if src.head != "" {
		if dst.head == "" {
			return false
		}
		asg[src.head] = datalog.V(dst.head)
	}
	byPred := map[string][]datalog.Atom{}
	for _, a := range dst.atoms {
		byPred[a.Pred] = append(byPred[a.Pred], a)
	}
	budget := homBudget
	var match func(i int) bool
	match = func(i int) bool {
		if budget <= 0 {
			return false
		}
		budget--
		if i == len(src.atoms) {
			return true
		}
		a := src.atoms[i]
		for _, c := range byPred[a.Pred] {
			if len(c.Args) != len(a.Args) {
				continue
			}
			var bound []string
			ok := true
			for j, t := range a.Args {
				want := c.Args[j]
				if !t.IsVar() {
					if want.IsVar() || want.Const != t.Const {
						ok = false
					}
					continue
				}
				if got, has := asg[t.Var]; has {
					if got != want {
						ok = false
					}
					continue
				}
				asg[t.Var] = want
				bound = append(bound, t.Var)
			}
			if ok && match(i+1) {
				return true
			}
			for _, v := range bound {
				delete(asg, v)
			}
		}
		return false
	}
	return match(0)
}

// ucqContainedIn reports U1 ⊆ U2 by the homomorphism theorem lifted to
// unions: every disjunct of U1 must be contained in (i.e. receive a
// homomorphism from) some disjunct of U2. An empty U1 (the predicate
// is everywhere empty) is contained in anything.
func ucqContainedIn(u1, u2 []cq) bool {
	for _, q1 := range u1 {
		ok := false
		for _, q2 := range u2 {
			if homInto(q2, q1) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------
// Refutation.

// refuteContainment searches random trees for a node selected by
// (p1, pred1) but not (p2, pred2), evaluating both programs with the
// semi-naive engine (the most permissive engine: any monadic program
// over the tree vocabulary). Evaluation errors skip the tree — a
// refutation must rest on two successful evaluations.
func refuteContainment(p1 *datalog.Program, pred1 string, p2 *datalog.Program, pred2 string, ro refute.Options) *refute.Witness {
	return refute.Search(ro, func(t *tree.Tree) (int, bool) {
		db1, err := eval.EvalOnTree(p1, t, eval.EngineSemiNaive)
		if err != nil {
			return 0, false
		}
		db2, err := eval.EvalOnTree(p2, t, eval.EngineSemiNaive)
		if err != nil {
			return 0, false
		}
		sel2 := map[int]bool{}
		for _, v := range db2.UnarySet(pred2) {
			sel2[v] = true
		}
		for _, v := range db1.UnarySet(pred1) {
			if !sel2[v] {
				return v, true
			}
		}
		return 0, false
	})
}
