package opt

// Program fusion for QuerySet: N post-optimization member programs —
// any of them the compiled form of a different source language —
// become ONE program that a single linear-engine pass evaluates per
// document, after which each member's visible relations are projected
// back out.
//
// Soundness rests on two facts (see DESIGN.md §QuerySet):
//
//  1. Apex renaming. Every predicate a member defines (and every
//     non-extensional predicate it merely mentions) is prefixed with a
//     member-unique apex tag, so the fused program is a union of
//     programs with pairwise disjoint intensional vocabularies over a
//     shared extensional vocabulary. The least model of such a union
//     is the union of the members' least models: the immediate
//     consequence operator of the union decomposes into the members'
//     operators, which cannot interact through disjoint predicates.
//
//  2. Shared-auxiliary deduplication. Two intensional predicates whose
//     complete defining rule sets are identical — up to variable
//     renaming, body-atom order, self-reference, and the merges
//     already performed — have identical extensions in every least
//     model (induction on fixpoint stages), so the duplicate may be
//     replaced by its representative everywhere. This is what makes
//     fusion pay: the tm_*/conn_* chains that every translation emits
//     for shared document structure are evaluated once for the whole
//     set instead of once per wrapper.

import (
	"sort"
	"strings"

	"mdlog/internal/datalog"
	"mdlog/internal/eval"
)

// FuseMember is one program entering a fused evaluation unit.
type FuseMember struct {
	// Prefix is the member's apex tag (e.g. "s3__"); it must be unique
	// within the fused set and not a prefix of another member's tag.
	Prefix string
	// Program is the member's post-optimization program. It is never
	// mutated.
	Program *datalog.Program
	// Visible are the predicates whose extensions the caller observes
	// for this member; they are protected from deduplication (their
	// prefixed names survive into the fused program, as
	// Prefix+pred), while everything else is fair game for merging.
	Visible []string
}

// FuseReport describes what one Fuse call did.
type FuseReport struct {
	// Members is the number of fused programs.
	Members int
	// RulesIn is the total rule count across all members; RulesOut is
	// the fused program's rule count after deduplication.
	RulesIn, RulesOut int
	// MergedPreds counts auxiliary predicates replaced by an
	// equivalent representative from another (or the same) member.
	MergedPreds int
	// MergedRules counts rules dropped because merging made them
	// duplicates of a surviving rule.
	MergedRules int
}

// Fuse apex-renames each member's program and unions them into one,
// then merges predicates whose definitions coincide across members.
// Each member's visible predicate v appears in the result as
// member.Prefix+v — unless fusion merged it into an equivalent
// predicate, in which case aliases[member.Prefix+v] names the
// surviving predicate carrying the extension (reading that relation
// under the visible name costs nothing per document, whereas keeping
// an alias RULE would ground one clause per node). The fused program
// has no distinguished query predicate.
func Fuse(members []FuseMember) (*datalog.Program, map[string]string, FuseReport) {
	rep := FuseReport{Members: len(members)}
	fused := &datalog.Program{}
	protected := map[string]bool{}
	for _, m := range members {
		rep.RulesIn += len(m.Program.Rules)
		renamed := apexRename(m.Program, m.Prefix)
		fused.Rules = append(fused.Rules, renamed.Rules...)
		for _, v := range m.Visible {
			protected[m.Prefix+v] = true
		}
		if m.Program.Query != "" {
			protected[m.Prefix+m.Program.Query] = true
		}
	}
	aliases := dedupShared(fused, protected, &rep)
	rep.RulesOut = len(fused.Rules)
	return fused, aliases, rep
}

// apexRename clones p with every intensional — and every unknown, i.e.
// neither intensional nor extensional — predicate prefixed. Extensional
// tree predicates (τ_ur and its extensions, label_a, child_k) keep
// their names: they are the shared vocabulary fusion exists to ground
// once. Unknown predicates are renamed too, so a member's unruled
// (never-true) helper can never capture another member's defined
// predicate of the same name.
func apexRename(p *datalog.Program, prefix string) *datalog.Program {
	idb := map[string]bool{}
	for _, r := range p.Rules {
		idb[r.Head.Pred] = true
	}
	mapped := func(a datalog.Atom) string {
		if idb[a.Pred] {
			return prefix + a.Pred
		}
		switch len(a.Args) {
		case 2:
			if eval.IsBinaryEDB(a.Pred) {
				return a.Pred
			}
		case 1:
			if eval.IsUnaryEDB(a.Pred) {
				return a.Pred
			}
		}
		return prefix + a.Pred
	}
	out := p.Clone()
	for i := range out.Rules {
		out.Rules[i].Head.Pred = mapped(out.Rules[i].Head)
		for j := range out.Rules[i].Body {
			out.Rules[i].Body[j].Pred = mapped(out.Rules[i].Body[j])
		}
	}
	if out.Query != "" {
		out.Query = prefix + out.Query
	}
	return out
}

// selfToken stands in for a predicate's own name when canonicalizing
// its definition, so directly-recursive twins still collide. The NUL
// byte keeps it out of the space of parseable predicate names.
const selfToken = "\x00self"

// dedupShared merges intensional predicates with identical definitions
// into one representative, to a fixpoint: merging two leaf auxiliaries
// makes the predicates defined in terms of them collide next round, so
// identical chains collapse bottom-up whatever their length.
//
// A merged-away predicate's occurrences are rewritten to the
// representative everywhere. Protected predicates are part of the
// fused program's output interface, so their extensions must stay
// addressable: when a protected predicate merges — two wrappers asking
// the same question should ground one chain, not two — its name is
// recorded in the returned alias map pointing at the surviving
// predicate, and the caller projects the shared relation under both
// names. (An alias RULE p(X) :- rep(X) would be semantically
// equivalent but grounds one Horn clause per document node, which for
// near-identical wrapper fleets costs more than the merge saves.)
func dedupShared(p *datalog.Program, protected map[string]bool, rep *FuseReport) map[string]string {
	// rename maps a merged-away predicate to its surviving
	// representative; lookups chase the chain so late merges compose.
	rename := map[string]string{}
	resolve := func(pred string) string {
		for {
			next, ok := rename[pred]
			if !ok {
				return pred
			}
			pred = next
		}
	}
	merged := map[string]string{} // protected pred -> representative at merge time
	for {
		// Group every defined predicate by the canonical form of its
		// complete defining rule set under the current renaming.
		defs := map[string][]datalog.Rule{}
		for _, r := range p.Rules {
			head := resolve(r.Head.Pred)
			defs[head] = append(defs[head], r)
		}
		groups := map[string][]string{}
		for pred, rules := range defs {
			key := canonicalDef(pred, rules, resolve)
			groups[key] = append(groups[key], pred)
		}
		progress := false
		for _, preds := range groups {
			if len(preds) < 2 {
				continue
			}
			sort.Strings(preds)
			// Representative: the first protected member if any (a
			// protected representative is never itself merged away
			// later, so alias chains always bottom out), else the
			// lexicographically smallest.
			repPred := preds[0]
			for _, pred := range preds {
				if protected[pred] {
					repPred = pred
					break
				}
			}
			for _, pred := range preds {
				if pred == repPred {
					continue
				}
				rename[pred] = repPred
				rep.MergedPreds++
				progress = true
				if protected[pred] {
					merged[pred] = repPred
				}
			}
		}
		if !progress {
			break
		}
		// Apply the renaming and drop the duplicate definitions it
		// creates (the merged predicate's rules become copies of the
		// representative's).
		for i := range p.Rules {
			p.Rules[i].Head.Pred = resolve(p.Rules[i].Head.Pred)
			for j := range p.Rules[i].Body {
				p.Rules[i].Body[j].Pred = resolve(p.Rules[i].Body[j].Pred)
			}
		}
		var dr Report
		dedupRules(p, &dr)
		rep.MergedRules += dr.DuplicateRules
	}
	// Resolve each merged protected predicate to its final survivor
	// (the representative recorded at merge time may itself have been
	// merged onward in a later round; the survivor at the end of a
	// rename chain always retains its defining rules).
	aliases := make(map[string]string, len(merged))
	for pred, repPred := range merged {
		aliases[pred] = resolve(repPred)
	}
	return aliases
}

// canonicalDef renders a predicate's complete defining rule set in a
// form where two predicates with α-equivalent, order-insensitive,
// self-reference-insensitive definitions (under the current merge
// renaming) collide: each rule is canonicalized like canonicalRule
// with the predicate's own name replaced by selfToken, and the rule
// strings are sorted.
func canonicalDef(pred string, rules []datalog.Rule, resolve func(string) string) string {
	subst := func(p string) string {
		p = resolve(p)
		if p == pred {
			return selfToken
		}
		return p
	}
	lines := make([]string, len(rules))
	for i, r := range rules {
		c := r.Clone()
		c.Head.Pred = subst(c.Head.Pred)
		for j := range c.Body {
			c.Body[j].Pred = subst(c.Body[j].Pred)
		}
		lines[i] = canonicalRule(c)
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
