package opt

// Program fusion for QuerySet: N post-optimization member programs —
// any of them the compiled form of a different source language —
// become ONE program that a single linear-engine pass evaluates per
// document, after which each member's visible relations are projected
// back out.
//
// Soundness rests on two facts (see DESIGN.md §QuerySet):
//
//  1. Apex renaming. Every predicate a member defines (and every
//     non-extensional predicate it merely mentions) is prefixed with a
//     member-unique apex tag, so the fused program is a union of
//     programs with pairwise disjoint intensional vocabularies over a
//     shared extensional vocabulary. The least model of such a union
//     is the union of the members' least models: the immediate
//     consequence operator of the union decomposes into the members'
//     operators, which cannot interact through disjoint predicates.
//
//  2. Shared-auxiliary deduplication. Two intensional predicates whose
//     complete defining rule sets are identical — up to variable
//     renaming, body-atom order, self-reference, and the merges
//     already performed — have identical extensions in every least
//     model (induction on fixpoint stages), so the duplicate may be
//     replaced by its representative everywhere. This is what makes
//     fusion pay: the tm_*/conn_* chains that every translation emits
//     for shared document structure are evaluated once for the whole
//     set instead of once per wrapper.

import (
	"sort"

	"mdlog/internal/datalog"
	"mdlog/internal/eval"
)

// FuseMember is one program entering a fused evaluation unit.
type FuseMember struct {
	// Prefix is the member's apex tag (e.g. "s3__"); it must be unique
	// within the fused set and not a prefix of another member's tag.
	Prefix string
	// Program is the member's post-optimization program. It is never
	// mutated.
	Program *datalog.Program
	// Visible are the predicates whose extensions the caller observes
	// for this member; they are protected from deduplication (their
	// prefixed names survive into the fused program, as
	// Prefix+pred), while everything else is fair game for merging.
	Visible []string
}

// FuseReport describes what one Fuse call did.
type FuseReport struct {
	// Members is the number of fused programs.
	Members int
	// RulesIn is the total rule count across all members; RulesOut is
	// the fused program's rule count after deduplication.
	RulesIn, RulesOut int
	// MergedPreds counts auxiliary predicates replaced by an
	// equivalent representative from another (or the same) member.
	MergedPreds int
	// MergedRules counts rules dropped because merging made them
	// duplicates of a surviving rule.
	MergedRules int
	// CSEPreds counts shared auxiliary predicates the common-
	// subexpression pass extracted; CSERefs counts the body fragment
	// occurrences it rewrote to use them.
	CSEPreds, CSERefs int
	// SubsumeChecked counts visible predicates the containment checker
	// fingerprinted during subsumption; SubsumedPreds counts those
	// proven equivalent to (and merged into) a representative;
	// SubsumeUnknown counts those the checker declined (recursive or
	// over budget — they fall back to evaluation, never to a guess).
	SubsumeChecked, SubsumedPreds, SubsumeUnknown int
	// CheckNs is wall time spent in the containment checker.
	CheckNs int64
}

// FuseOptions selects which structure-sharing passes FuseWith runs on
// top of baseline apex-rename + α-equivalent dedup.
type FuseOptions struct {
	// CSE extracts common connected rule-body fragments that recur
	// across members into shared auxiliary predicates, so near-
	// duplicate wrappers share ground work even when no complete
	// predicate definition coincides.
	CSE bool
	// Subsume runs the containment checker over the visible
	// predicates and merges those proven semantically equivalent, so a
	// wrapper answerable from another's relation costs zero evaluation.
	Subsume bool
	// Contain tunes the subsumption pass's checker (nil: defaults).
	Contain *ContainOptions
}

// DefaultFuseOptions is what Fuse uses: all passes on.
var DefaultFuseOptions = FuseOptions{CSE: true, Subsume: true}

// Fuse apex-renames each member's program and unions them into one,
// then merges predicates whose definitions coincide across members.
// Each member's visible predicate v appears in the result as
// member.Prefix+v — unless fusion merged it into an equivalent
// predicate, in which case aliases[member.Prefix+v] names the
// surviving predicate carrying the extension (reading that relation
// under the visible name costs nothing per document, whereas keeping
// an alias RULE would ground one clause per node). The fused program
// has no distinguished query predicate.
func Fuse(members []FuseMember) (*datalog.Program, map[string]string, FuseReport) {
	return FuseWith(members, DefaultFuseOptions)
}

// FuseWith is Fuse with explicit pass selection. The pipeline is
//
//	apex-rename ∪ → dedup → (CSE → dedup)* → subsume → dedup
//
// where dedup is the α-equivalent definition merge, CSE repeats until
// it stops extracting (each extraction can expose new whole-definition
// collisions, and each merge can make further fragments coincide), and
// subsume is the containment-checker pass over visible predicates.
// Alias maps from successive passes are composed, so the returned map
// always points at surviving predicates.
func FuseWith(members []FuseMember, o FuseOptions) (*datalog.Program, map[string]string, FuseReport) {
	rep := FuseReport{Members: len(members)}
	fused := &datalog.Program{}
	protected := map[string]bool{}
	for _, m := range members {
		rep.RulesIn += len(m.Program.Rules)
		renamed := apexRename(m.Program, m.Prefix)
		fused.Rules = append(fused.Rules, renamed.Rules...)
		for _, v := range m.Visible {
			protected[m.Prefix+v] = true
		}
		if m.Program.Query != "" {
			protected[m.Prefix+m.Program.Query] = true
		}
	}
	aliases := dedupShared(fused, protected, &rep)
	if o.CSE {
		cseCounter := 0
		// The bound is a backstop; extraction normally converges in two
		// or three rounds (fragments are strictly consumed by aux
		// predicates, which are then fair game for whole-def dedup).
		for round := 0; round < 8; round++ {
			if !cseShared(fused, &cseCounter, &rep) {
				break
			}
			aliases = composeAliases(aliases, dedupShared(fused, protected, &rep))
		}
	}
	if o.Subsume {
		aliases = subsumeProtected(fused, protected, aliases, o.Contain, &rep)
	}
	rep.RulesOut = len(fused.Rules)
	return fused, aliases, rep
}

// composeAliases redirects dst entries whose targets next merged away,
// and adopts next's new entries. Both maps' values must be surviving
// predicates of their respective passes, so the composition's values
// survive the later pass.
func composeAliases(dst, next map[string]string) map[string]string {
	if dst == nil {
		dst = map[string]string{}
	}
	for k, v := range dst {
		if nv, ok := next[v]; ok {
			dst[k] = nv
		}
	}
	for k, v := range next {
		if _, ok := dst[k]; !ok {
			dst[k] = v
		}
	}
	return dst
}

// apexRename clones p with every intensional — and every unknown, i.e.
// neither intensional nor extensional — predicate prefixed. Extensional
// tree predicates (τ_ur and its extensions, label_a, child_k) keep
// their names: they are the shared vocabulary fusion exists to ground
// once. Unknown predicates are renamed too, so a member's unruled
// (never-true) helper can never capture another member's defined
// predicate of the same name.
func apexRename(p *datalog.Program, prefix string) *datalog.Program {
	idb := map[string]bool{}
	for _, r := range p.Rules {
		idb[r.Head.Pred] = true
	}
	mapped := func(a datalog.Atom) string {
		if idb[a.Pred] {
			return prefix + a.Pred
		}
		switch len(a.Args) {
		case 2:
			if eval.IsBinaryEDB(a.Pred) {
				return a.Pred
			}
		case 1:
			if eval.IsUnaryEDB(a.Pred) {
				return a.Pred
			}
		}
		return prefix + a.Pred
	}
	out := p.Clone()
	for i := range out.Rules {
		out.Rules[i].Head.Pred = mapped(out.Rules[i].Head)
		for j := range out.Rules[i].Body {
			out.Rules[i].Body[j].Pred = mapped(out.Rules[i].Body[j])
		}
	}
	if out.Query != "" {
		out.Query = prefix + out.Query
	}
	return out
}

// dedupShared merges intensional predicates with identical definitions
// into one representative, to a fixpoint: merging two leaf auxiliaries
// makes the predicates defined in terms of them collide next round, so
// identical chains collapse bottom-up whatever their length.
//
// A merged-away predicate's occurrences are rewritten to the
// representative everywhere. Protected predicates are part of the
// fused program's output interface, so their extensions must stay
// addressable: when a protected predicate merges — two wrappers asking
// the same question should ground one chain, not two — its name is
// recorded in the returned alias map pointing at the surviving
// predicate, and the caller projects the shared relation under both
// names. (An alias RULE p(X) :- rep(X) would be semantically
// equivalent but grounds one Horn clause per document node, which for
// near-identical wrapper fleets costs more than the merge saves.)
func dedupShared(p *datalog.Program, protected map[string]bool, rep *FuseReport) map[string]string {
	// rename maps a merged-away predicate to its surviving
	// representative; lookups chase the chain so late merges compose.
	rename := map[string]string{}
	resolve := func(pred string) string {
		for {
			next, ok := rename[pred]
			if !ok {
				return pred
			}
			pred = next
		}
	}
	merged := map[string]string{} // protected pred -> representative at merge time
	for {
		// Group every defined predicate by the canonical form of its
		// complete defining rule set under the current renaming.
		defs := map[string][]datalog.Rule{}
		for _, r := range p.Rules {
			head := resolve(r.Head.Pred)
			defs[head] = append(defs[head], r)
		}
		groups := map[string][]string{}
		for pred, rules := range defs {
			key := canonicalDef(pred, rules, resolve)
			groups[key] = append(groups[key], pred)
		}
		progress := false
		for _, preds := range groups {
			if len(preds) < 2 {
				continue
			}
			sort.Strings(preds)
			// Representative: the first protected member if any (a
			// protected representative is never itself merged away
			// later, so alias chains always bottom out), else the
			// lexicographically smallest.
			repPred := preds[0]
			for _, pred := range preds {
				if protected[pred] {
					repPred = pred
					break
				}
			}
			for _, pred := range preds {
				if pred == repPred {
					continue
				}
				rename[pred] = repPred
				rep.MergedPreds++
				progress = true
				if protected[pred] {
					merged[pred] = repPred
				}
			}
		}
		if !progress {
			break
		}
		// Apply the renaming and drop the duplicate definitions it
		// creates (the merged predicate's rules become copies of the
		// representative's).
		for i := range p.Rules {
			p.Rules[i].Head.Pred = resolve(p.Rules[i].Head.Pred)
			for j := range p.Rules[i].Body {
				p.Rules[i].Body[j].Pred = resolve(p.Rules[i].Body[j].Pred)
			}
		}
		var dr Report
		dedupRules(p, &dr)
		rep.MergedRules += dr.DuplicateRules
	}
	// Resolve each merged protected predicate to its final survivor
	// (the representative recorded at merge time may itself have been
	// merged onward in a later round; the survivor at the end of a
	// rename chain always retains its defining rules).
	aliases := make(map[string]string, len(merged))
	for pred, repPred := range merged {
		aliases[pred] = resolve(repPred)
	}
	return aliases
}
