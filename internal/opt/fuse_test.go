package opt

import (
	"strings"
	"testing"

	"mdlog/internal/datalog"
	"mdlog/internal/eval"
	"mdlog/internal/tree"
)

func parseTree(s string) (*tree.Tree, error) { return tree.Parse(s) }

// fuseTestDB materializes the full extensional vocabulary for the
// reference naive engine.
func fuseTestDB(t *tree.Tree) *datalog.Database { return eval.FullSignature().TreeDB(t) }

func parse(t *testing.T, src string) *datalog.Program {
	t.Helper()
	p, err := datalog.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestFuseDisjointNamespaces: two members defining the same predicate
// names must not interfere after apex renaming.
func TestFuseDisjointNamespaces(t *testing.T) {
	a := parse(t, `q(X) :- label_a(X). ?- q.`)
	b := parse(t, `q(X) :- label_b(X). ?- q.`)
	fused, _, rep := Fuse([]FuseMember{
		{Prefix: "s0__", Program: a, Visible: []string{"q"}},
		{Prefix: "s1__", Program: b, Visible: []string{"q"}},
	})
	if rep.RulesIn != 2 || rep.RulesOut != 2 || rep.MergedPreds != 0 {
		t.Fatalf("report: %+v", rep)
	}
	text := fused.String()
	if !strings.Contains(text, "s0__q(X) :- label_a(X).") ||
		!strings.Contains(text, "s1__q(X) :- label_b(X).") {
		t.Fatalf("fused program:\n%s", text)
	}
}

// TestFuseUnknownPredsRenamed: a member's unruled (never-true) helper
// must not capture another member's defined predicate of the same
// name.
func TestFuseUnknownPredsRenamed(t *testing.T) {
	a := parse(t, `q(X) :- label_a(X), helper(X). ?- q.`)
	b := parse(t, `helper(X) :- label_b(X). q(X) :- helper(X). ?- q.`)
	fused, _, _ := Fuse([]FuseMember{
		{Prefix: "s0__", Program: a, Visible: []string{"q"}},
		{Prefix: "s1__", Program: b, Visible: []string{"q", "helper"}},
	})
	for _, r := range fused.Rules {
		for _, at := range r.Body {
			if at.Pred == "helper" || at.Pred == "s1__helper" && r.Head.Pred == "s0__q" {
				t.Fatalf("member 0's unruled helper captured member 1's: %s", r)
			}
		}
	}
}

// TestFuseSharedAuxMerged: identical auxiliary chains across members
// collapse to one, bottom-up, however long.
func TestFuseSharedAuxMerged(t *testing.T) {
	src := `
aux1(X) :- firstchild(Y,X), label_a(Y).
aux2(X) :- firstchild(X,Y), aux1(Y).
q(X)    :- aux2(X), label_b(X).
?- q.`
	a, b := parse(t, src), parse(t, src)
	fused, aliases, rep := Fuse([]FuseMember{
		{Prefix: "s0__", Program: a, Visible: []string{"q"}},
		{Prefix: "s1__", Program: b, Visible: []string{"q"}},
	})
	// Both aux chains merge; the duplicate protected q is recorded as
	// an alias of the survivor. 6 rules in → aux1, aux2, one q
	// definition = 3 rules out.
	if rep.RulesOut != 3 {
		t.Fatalf("RulesOut = %d, want 3\n%s\nreport %+v", rep.RulesOut, fused, rep)
	}
	if rep.MergedPreds != 3 {
		t.Fatalf("MergedPreds = %d, want 3 (aux1, aux2, q)", rep.MergedPreds)
	}
	if aliases["s1__q"] != "s0__q" {
		t.Fatalf("aliases = %v, want s1__q -> s0__q", aliases)
	}
}

// TestFuseRecursiveTwins: directly-recursive predicates with identical
// definitions still merge via the self token.
func TestFuseRecursiveTwins(t *testing.T) {
	src := `
reach(X) :- root(X).
reach(X) :- reach(Y), firstchild(Y,X).
reach(X) :- reach(Y), nextsibling(Y,X).
q(X) :- reach(X), label_a(X).
?- q.`
	a, b := parse(t, src), parse(t, src)
	_, aliases, rep := Fuse([]FuseMember{
		{Prefix: "s0__", Program: a, Visible: []string{"q"}},
		{Prefix: "s1__", Program: b, Visible: []string{"q"}},
	})
	// reach merges (recursive twin), q aliases: 8 in, reach(3) + q = 4
	// out.
	if rep.RulesOut != 4 || rep.MergedPreds != 2 {
		t.Fatalf("report: %+v", rep)
	}
	if aliases["s1__q"] != "s0__q" {
		t.Fatalf("aliases = %v", aliases)
	}
}

// TestFuseDistinctDefsKeptApart: predicates with different definitions
// never merge, even when structurally close.
func TestFuseDistinctDefsKeptApart(t *testing.T) {
	a := parse(t, `aux(X) :- firstchild(X,Y), label_a(Y). q(X) :- aux(X). ?- q.`)
	b := parse(t, `aux(X) :- firstchild(X,Y), label_b(Y). q(X) :- aux(X). ?- q.`)
	fused, _, rep := Fuse([]FuseMember{
		{Prefix: "s0__", Program: a, Visible: []string{"q"}},
		{Prefix: "s1__", Program: b, Visible: []string{"q"}},
	})
	if rep.MergedPreds != 0 || rep.RulesOut != 4 {
		t.Fatalf("spurious merge: %+v\n%s", rep, fused)
	}
}

// TestFusePropositionalAlias: 0-ary protected predicates alias with a
// propositional rule.
func TestFusePropositionalAlias(t *testing.T) {
	src := `
seen :- root(X), label_a(X).
q(X) :- seen, label_b(X).
?- q.`
	a, b := parse(t, src), parse(t, src)
	_, aliases, _ := Fuse([]FuseMember{
		{Prefix: "s0__", Program: a, Visible: []string{"q", "seen"}},
		{Prefix: "s1__", Program: b, Visible: []string{"q", "seen"}},
	})
	if aliases["s1__seen"] != "s0__seen" || aliases["s1__q"] != "s0__q" {
		t.Fatalf("aliases = %v", aliases)
	}
}

// TestFuseSemanticsPreserved: the fused program computes, per member,
// exactly the member's own least model on a real tree.
func TestFuseSemanticsPreserved(t *testing.T) {
	srcs := []string{
		`q(X) :- label_b(X), firstchild(Y,X). ?- q.`,
		`aux(X) :- firstchild(X,Y), label_b(Y). q(X) :- aux(X). ?- q.`,
		`q(X) :- label_b(X), firstchild(Y,X). ?- q.`, // duplicate of member 0
	}
	var members []FuseMember
	progs := make([]*datalog.Program, len(srcs))
	for i, src := range srcs {
		progs[i] = parse(t, src)
		members = append(members, FuseMember{
			Prefix:  []string{"s0__", "s1__", "s2__"}[i],
			Program: progs[i],
			Visible: []string{"q"},
		})
	}
	fused, aliases, _ := Fuse(members)
	tr, err := parseTree("a(b(b),c(b))")
	if err != nil {
		t.Fatal(err)
	}
	fullDB, err := datalog.NaiveEval(fused, fuseTestDB(tr))
	if err != nil {
		t.Fatal(err)
	}
	for i, prog := range progs {
		want, err := datalog.NaiveEval(prog, fuseTestDB(tr))
		if err != nil {
			t.Fatal(err)
		}
		pred := members[i].Prefix + "q"
		if target, ok := aliases[pred]; ok {
			pred = target
		}
		got := fullDB.UnarySet(pred)
		if len(got) != len(want.UnarySet("q")) {
			t.Fatalf("member %d: fused %v, individual %v", i, got, want.UnarySet("q"))
		}
		for j, id := range got {
			if want.UnarySet("q")[j] != id {
				t.Fatalf("member %d: fused %v, individual %v", i, got, want.UnarySet("q"))
			}
		}
	}
}

// TestFuseCSEExtractsSharedFragments: two members share a join chain
// embedded in otherwise different rule bodies; CSE must extract it
// into one auxiliary so the fused program grounds it once.
func TestFuseCSEExtractsSharedFragments(t *testing.T) {
	a := parse(t, `q(X) :- firstchild(X,Y), nextsibling(Y,Z), label_a(Z), leaf(X). ?- q.`)
	b := parse(t, `q(X) :- firstchild(X,Y), nextsibling(Y,Z), label_a(Z), label_b(X). ?- q.`)
	members := []FuseMember{
		{Prefix: "s0__", Program: a, Visible: []string{"q"}},
		{Prefix: "s1__", Program: b, Visible: []string{"q"}},
	}
	fused, aliases, rep := FuseWith(members, FuseOptions{CSE: true})
	if rep.CSEPreds != 1 || rep.CSERefs != 2 {
		t.Fatalf("expected one fragment extracted at two sites, report: %+v", rep)
	}
	// Semantics: each member must still answer as if run alone.
	tr, err := parseTree("a(b(a,b,a),a(b,a))")
	if err != nil {
		t.Fatal(err)
	}
	fullDB, err := datalog.NaiveEval(fused, fuseTestDB(tr))
	if err != nil {
		t.Fatal(err)
	}
	for i, prog := range []*datalog.Program{a, b} {
		want, err := datalog.NaiveEval(prog, fuseTestDB(tr))
		if err != nil {
			t.Fatal(err)
		}
		pred := members[i].Prefix + "q"
		if target, ok := aliases[pred]; ok {
			pred = target
		}
		got := fullDB.UnarySet(pred)
		exp := want.UnarySet("q")
		if len(got) != len(exp) {
			t.Fatalf("member %d: fused %v, individual %v", i, got, exp)
		}
	}
}

// TestFuseCSELeavesHeadSharedVarsAlone: a fragment whose internal
// variable is also used by the head or the rest of the body is not
// extractable (folding it would change the join).
func TestFuseCSELeavesHeadSharedVarsAlone(t *testing.T) {
	a := parse(t, `q(X) :- firstchild(X,Y), nextsibling(Y,Z), label_a(Z), leaf(Y). ?- q.`)
	b := parse(t, `q(X) :- firstchild(X,Y), nextsibling(Y,Z), label_a(Z), leaf(Y), label_b(X). ?- q.`)
	_, _, rep := FuseWith([]FuseMember{
		{Prefix: "s0__", Program: a, Visible: []string{"q"}},
		{Prefix: "s1__", Program: b, Visible: []string{"q"}},
	}, FuseOptions{CSE: true})
	// The chain firstchild-nextsibling-label_a has Y shared with
	// leaf(Y) outside it, and Z internal; the extractable component at
	// junction Y is {nextsibling(Y,Z), label_a(Z)} in both rules.
	for _, r := range []int{rep.CSEPreds} {
		if r > 1 {
			t.Fatalf("over-extraction: %+v", rep)
		}
	}
}

// TestFuseSubsumeMergesEquivalentVisible: member 1's visible predicate
// is a semantically equal, syntactically different restatement of
// member 0's; subsumption must serve it by alias with zero rules.
func TestFuseSubsumeMergesEquivalentVisible(t *testing.T) {
	a := parse(t, `q(X) :- firstchild(X,Y), label_a(Y). ?- q.`)
	// Duplicated fragment + defensive dom: not α-equal, not caught by
	// dedup or O1, but UCQ-equal after normalization + minimization.
	b := parse(t, `q(X) :- dom(X), firstchild(X,Z), label_a(Z), firstchild(X,W), label_a(W). ?- q.`)
	members := []FuseMember{
		{Prefix: "s0__", Program: a, Visible: []string{"q"}},
		{Prefix: "s1__", Program: b, Visible: []string{"q"}},
	}
	fused, aliases, rep := FuseWith(members, DefaultFuseOptions)
	if rep.SubsumedPreds != 1 {
		t.Fatalf("expected one subsumed predicate, report: %+v", rep)
	}
	if rep.SubsumeChecked < 2 {
		t.Fatalf("expected both visible preds checked, report: %+v", rep)
	}
	if rep.CheckNs <= 0 {
		t.Fatalf("checker time not recorded: %+v", rep)
	}
	// The subsumed member must have no surviving rules.
	for _, r := range fused.Rules {
		if strings.HasPrefix(r.Head.Pred, "s1__") {
			t.Fatalf("subsumed member still owns rules: %s", r)
		}
	}
	if aliases["s1__q"] != "s0__q" {
		t.Fatalf("alias map: %v", aliases)
	}
	// And projection through the alias answers correctly.
	tr, err := parseTree("a(a(b),b(a),a)")
	if err != nil {
		t.Fatal(err)
	}
	fullDB, err := datalog.NaiveEval(fused, fuseTestDB(tr))
	if err != nil {
		t.Fatal(err)
	}
	want, err := datalog.NaiveEval(b, fuseTestDB(tr))
	if err != nil {
		t.Fatal(err)
	}
	got := fullDB.UnarySet("s0__q")
	exp := want.UnarySet("q")
	if len(got) != len(exp) {
		t.Fatalf("projection mismatch: fused %v, individual %v", got, exp)
	}
	for i := range got {
		if got[i] != exp[i] {
			t.Fatalf("projection mismatch: fused %v, individual %v", got, exp)
		}
	}
}

// TestFuseSubsumeRefusesProperContainment: one-way containment must
// NOT merge — a proper subset cannot be served from the superset.
func TestFuseSubsumeRefusesProperContainment(t *testing.T) {
	a := parse(t, `q(X) :- leaf(X). ?- q.`)
	b := parse(t, `q(X) :- leaf(X), label_a(X). ?- q.`)
	fused, aliases, rep := FuseWith([]FuseMember{
		{Prefix: "s0__", Program: a, Visible: []string{"q"}},
		{Prefix: "s1__", Program: b, Visible: []string{"q"}},
	}, DefaultFuseOptions)
	if rep.SubsumedPreds != 0 {
		t.Fatalf("proper containment wrongly merged: %+v", rep)
	}
	if len(aliases) != 0 {
		t.Fatalf("unexpected aliases: %v", aliases)
	}
	owned := map[string]bool{}
	for _, r := range fused.Rules {
		owned[r.Head.Pred] = true
	}
	if !owned["s0__q"] || !owned["s1__q"] {
		t.Fatalf("both members must keep their rules:\n%s", fused)
	}
}

// TestFuseSubsumeRecursiveFallsBack: recursive visible predicates are
// Unknown to the checker and must be left alone (and counted).
func TestFuseSubsumeRecursiveFallsBack(t *testing.T) {
	rec := `
reach(X) :- root(X).
reach(X) :- reach(Y), firstchild(Y,X).
reach(X) :- reach(Y), nextsibling(Y,X).
?- reach.
`
	a := parse(t, rec)
	b := parse(t, rec)
	fused, aliases, rep := FuseWith([]FuseMember{
		{Prefix: "s0__", Program: a, Visible: []string{"reach"}},
		{Prefix: "s1__", Program: b, Visible: []string{"reach"}},
	}, FuseOptions{Subsume: true})
	// α-equal twins merge in dedupShared before subsumption ever runs;
	// the surviving single definition is recursive, so the checker
	// reports it Unknown and changes nothing.
	if rep.SubsumedPreds != 0 || rep.SubsumeUnknown == 0 {
		t.Fatalf("report: %+v", rep)
	}
	if aliases["s1__reach"] != "s0__reach" {
		t.Fatalf("dedup alias missing: %v", aliases)
	}
	if len(fused.Rules) != 3 {
		t.Fatalf("fused program:\n%s", fused)
	}
}
