package opt

// Registry-wide wrapper subsumption: the fusion pass that turns the
// containment checker into saved evaluation. After dedup and CSE, the
// fused program's visible (protected) predicates are fingerprinted by
// UnfoldSignature; predicates with equal signatures denote the same
// UCQ over the extensional tree vocabulary and therefore have
// identical extensions on every document. All but one representative
// per signature class are deleted — rules dropped, body references
// redirected, alias recorded — so a member whose question another
// member already answers costs zero evaluation per document and is
// served purely by projection.
//
// Signature equality is deliberately the only merge trigger here:
// one-way containment (A ⊆ B, proper) does NOT allow answering A from
// B's relation, and "maybe equal" (Unknown) falls back to evaluation.
// The pass can thus never change observable semantics — it only
// collapses proven-equal work — and its checker runs with refutation
// disabled: a compile pipeline has no use for counterexamples, only
// for proofs.

import (
	"sort"
	"time"

	"mdlog/internal/datalog"
)

// subsumeProtected merges protected predicates with equal unfolding
// signatures, extends aliases with the merges (composing existing
// entries through them), prunes rules reachable only from merged-away
// predicates, and returns the updated alias map.
func subsumeProtected(p *datalog.Program, protected map[string]bool, aliases map[string]string, copts *ContainOptions, rep *FuseReport) map[string]string {
	start := time.Now()
	defer func() { rep.CheckNs += time.Since(start).Nanoseconds() }()
	o := ContainOptions{}
	if copts != nil {
		o = *copts
	}
	o.NoRefute = true
	// The live protected predicates: earlier passes may already have
	// aliased some onto others.
	liveSet := map[string]bool{}
	for pred := range protected {
		if tgt, ok := aliases[pred]; ok {
			pred = tgt
		}
		liveSet[pred] = true
	}
	live := make([]string, 0, len(liveSet))
	for pred := range liveSet {
		live = append(live, pred)
	}
	sort.Strings(live)
	defined := map[string]bool{}
	for _, r := range p.Rules {
		defined[r.Head.Pred] = true
	}
	groups := map[string][]string{}
	for _, pred := range live {
		if !defined[pred] {
			continue // defined nowhere: empty extension, nothing to save
		}
		rep.SubsumeChecked++
		sig, ok := UnfoldSignature(p, pred, &o)
		if !ok {
			rep.SubsumeUnknown++
			continue
		}
		groups[sig] = append(groups[sig], pred)
	}
	merged := map[string]string{}
	sigs := make([]string, 0, len(groups))
	for sig := range groups {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	for _, sig := range sigs {
		preds := groups[sig]
		if len(preds) < 2 {
			continue
		}
		sort.Strings(preds)
		// The representative must not depend on any merged-away class
		// member: dropping w's rules while the representative derives
		// through w would cut the representative's own derivation. A
		// dependency-minimal member always exists — every class member
		// unfolded, so dependency among them is acyclic (mutual
		// dependence would be recursion, which never gets a signature).
		repPred := ""
		for _, cand := range preds {
			c := dependencyCone(p, cand)
			ok := true
			for _, other := range preds {
				if other != cand && c[other] {
					ok = false
					break
				}
			}
			if ok {
				repPred = cand
				break
			}
		}
		if repPred == "" {
			continue // unreachable given acyclicity; refuse rather than break
		}
		for _, pred := range preds {
			if pred == repPred {
				continue
			}
			merged[pred] = repPred
			rep.SubsumedPreds++
		}
	}
	if len(merged) == 0 {
		return aliases
	}
	// Drop the merged-away predicates' defining rules and redirect any
	// body references to the representative.
	kept := p.Rules[:0]
	for _, r := range p.Rules {
		if _, gone := merged[r.Head.Pred]; gone {
			continue
		}
		for j := range r.Body {
			if tgt, ok := merged[r.Body[j].Pred]; ok {
				r.Body[j].Pred = tgt
			}
		}
		kept = append(kept, r)
	}
	p.Rules = kept
	aliases = composeAliases(aliases, merged)
	// Helper chains that only served merged-away predicates are dead
	// now; sweep them so the fused plan grounds nothing for them.
	roots := map[string]bool{}
	for pred := range liveSet {
		if tgt, ok := merged[pred]; ok {
			pred = tgt
		}
		roots[pred] = true
	}
	if p.Query != "" {
		roots[p.Query] = true
	}
	var dr Report
	eliminateDead(p, roots, &dr)
	return aliases
}

// dependencyCone returns the set of intensional predicates reachable
// from pred's defining rules (pred itself excluded unless it is
// reachable through a cycle). The subsumption pass uses it to refuse
// representatives that derive through a predicate being merged away.
func dependencyCone(p *datalog.Program, pred string) map[string]bool {
	byHead := map[string][]int{}
	for i, r := range p.Rules {
		byHead[r.Head.Pred] = append(byHead[r.Head.Pred], i)
	}
	cone := map[string]bool{}
	stack := []string{pred}
	visited := map[string]bool{pred: true}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ri := range byHead[cur] {
			for _, a := range p.Rules[ri].Body {
				if len(byHead[a.Pred]) == 0 {
					continue // extensional or unruled: not in the cone
				}
				if !cone[a.Pred] {
					cone[a.Pred] = true
				}
				if !visited[a.Pred] {
					visited[a.Pred] = true
					stack = append(stack, a.Pred)
				}
			}
		}
	}
	return cone
}

// SubsumeClasses groups the given visible predicates (post-aliasing
// names resolved through aliases) into equivalence classes by final
// target: predicates that share a surviving representative answer from
// the same fused relation. The result maps each input name to a class
// representative (itself if unmerged). Exposed for introspection
// surfaces (/wrappers, -explain) — it performs no checking, only
// reads the alias map.
func SubsumeClasses(visible []string, aliases map[string]string) map[string]string {
	out := make(map[string]string, len(visible))
	for _, v := range visible {
		tgt := v
		if a, ok := aliases[v]; ok {
			tgt = a
		}
		out[v] = tgt
	}
	return out
}
