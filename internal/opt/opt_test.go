package opt

import (
	"fmt"
	"math/rand"
	"testing"

	"mdlog/internal/datalog"
	"mdlog/internal/eval"
	"mdlog/internal/tmnf"
	"mdlog/internal/tree"
)

func mustParse(t *testing.T, src string) *datalog.Program {
	t.Helper()
	p, err := datalog.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// sameOn asserts that p and q derive the same extensions for preds on
// the given tree, via the reference semi-naive engine.
func sameOn(t *testing.T, p, q *datalog.Program, tr *tree.Tree, preds []string) {
	t.Helper()
	dbP, err := eval.EvalOnTree(p, tr, eval.EngineSemiNaive)
	if err != nil {
		t.Fatalf("original: %v", err)
	}
	dbQ, err := eval.EvalOnTree(q, tr, eval.EngineSemiNaive)
	if err != nil {
		t.Fatalf("optimized: %v", err)
	}
	if diff := eval.SameResults(dbP, dbQ, preds); diff != "" {
		t.Fatalf("results differ on %v: %s\noriginal:\n%s\noptimized:\n%s", preds, diff, p, q)
	}
}

func TestO0IsIdentity(t *testing.T) {
	p := mustParse(t, `
q(X) :- label_a(X), label_a(X).
dead(X) :- label_b(X).
?- q.
`)
	out, rep := Optimize(p, Options{Level: O0, Roots: []string{"q"}})
	if len(out.Rules) != len(p.Rules) {
		t.Fatalf("O0 changed the program: %d vs %d rules", len(out.Rules), len(p.Rules))
	}
	if rep.Changed() {
		t.Fatalf("O0 report claims changes: %+v", rep)
	}
	// The clone must be independent of the input.
	out.Rules[0].Body[0].Pred = "label_z"
	if p.Rules[0].Body[0].Pred != "label_a" {
		t.Fatal("Optimize aliased the input program")
	}
}

func TestDeadRuleElimination(t *testing.T) {
	p := mustParse(t, `
q(X) :- label_a(X).
helper(X) :- label_b(X).
unreached(X) :- helper(X).
undef(X) :- ghost(X).
chain(X) :- undef(X).
?- q.
`)
	out, rep := Optimize(p, Options{Level: O1, Roots: []string{"q"}})
	if len(out.Rules) != 1 {
		t.Fatalf("want 1 surviving rule, got:\n%s", out)
	}
	// unreached+helper are unreachable; undef has an unknown unary body
	// atom; chain depends on the underivable undef.
	if rep.DeadRules != 4 {
		t.Errorf("DeadRules = %d, want 4 (%+v)", rep.DeadRules, rep)
	}
}

func TestDeadKeepsUnknownBinary(t *testing.T) {
	p := mustParse(t, `q(X) :- mystery(X,Y), label_a(Y). ?- q.`)
	out, _ := Optimize(p, Options{Level: O1, Roots: []string{"q"}})
	if len(out.Rules) != 1 {
		t.Fatalf("rule with unknown binary predicate must be kept:\n%s", out)
	}

	// The same holds when the offending rule is UNREACHABLE from the
	// roots: dropping it would let the default level compile a program
	// the unoptimized route rejects.
	p = mustParse(t, `
q(X) :- label_a(X).
r(X) :- bogus(X,Y), label_b(Y).
?- q.
`)
	out, _ = Optimize(p, Options{Level: O1, Roots: []string{"q"}})
	kept := false
	for _, r := range out.Rules {
		if r.Head.Pred == "r" {
			kept = true
		}
	}
	if !kept {
		t.Fatalf("unreachable rule with unknown binary predicate was dropped:\n%s", out)
	}
}

func TestDeadKeepsRecursion(t *testing.T) {
	p := mustParse(t, `
q(X) :- root(X).
q(Y) :- q(X), firstchild(X,Y).
q(Y) :- q(X), nextsibling(X,Y).
?- q.
`)
	out, rep := Optimize(p, Options{Level: O1, Roots: []string{"q"}})
	if len(out.Rules) != 3 || rep.Changed() {
		t.Fatalf("recursive reachability program must survive intact:\n%s\n%+v", out, rep)
	}
}

func TestInlineSingleUseChain(t *testing.T) {
	// A TMNF-style chain: q ← a1 ← a2 ← label_b, each auxiliary used
	// exactly once. O1 must collapse the chain into one rule.
	p := mustParse(t, `
q(X) :- aux1(X).
aux1(X) :- aux2(Y), firstchild(Y,X).
aux2(X) :- label_b(X).
?- q.
`)
	out, rep := Optimize(p, Options{Level: O1, Roots: []string{"q"}})
	if len(out.Rules) != 1 {
		t.Fatalf("chain not collapsed:\n%s", out)
	}
	if rep.Inlined != 2 {
		t.Errorf("Inlined = %d, want 2", rep.Inlined)
	}
	tr, err := tree.Parse("a(b,c(b))")
	if err != nil {
		t.Fatal(err)
	}
	sameOn(t, p, out, tr, []string{"q"})
}

func TestInlineRenamesApartAndKeepsSemantics(t *testing.T) {
	// The defining rule reuses variable names of the use site; naive
	// substitution would capture Y.
	p := mustParse(t, `
q(X) :- firstchild(X,Y), aux(Y).
aux(X) :- nextsibling(X,Y), label_b(Y).
?- q.
`)
	out, _ := Optimize(p, Options{Level: O1, Roots: []string{"q"}})
	if len(out.Rules) != 1 {
		t.Fatalf("want 1 rule:\n%s", out)
	}
	tr, err := tree.Parse("a(c(x,b),d)")
	if err != nil {
		t.Fatal(err)
	}
	sameOn(t, p, out, tr, []string{"q"})
}

func TestInlineSkipsRootsMultiUseAndRecursion(t *testing.T) {
	p := mustParse(t, `
q(X) :- aux(X).
r(X) :- aux(X).
aux(X) :- label_a(X).
self(Y) :- self(X), firstchild(X,Y).
self(X) :- root(X).
q(X) :- self(X).
?- q.
`)
	out, _ := Optimize(p, Options{Level: O1, Roots: []string{"q", "r"}})
	heads := map[string]int{}
	for _, r := range out.Rules {
		heads[r.Head.Pred]++
	}
	if heads["aux"] != 1 {
		t.Errorf("aux used twice must not be inlined:\n%s", out)
	}
	if heads["self"] != 2 {
		t.Errorf("recursive self must not be inlined:\n%s", out)
	}
}

func TestKeepShapeSkipsInlining(t *testing.T) {
	p := mustParse(t, `
q(X) :- aux1(X).
aux1(X) :- aux2(Y), firstchild(Y,X).
aux2(X) :- label_b(X).
?- q.
`)
	out, rep := Optimize(p, Options{Level: O1, Roots: []string{"q"}, KeepShape: true})
	if rep.Inlined != 0 || len(out.Rules) != 3 {
		t.Fatalf("KeepShape must not fuse rules:\n%s\n%+v", out, rep)
	}
}

func TestDuplicateRuleAndAtomRemoval(t *testing.T) {
	p := mustParse(t, `
q(X) :- label_a(X), label_a(X).
q(Y) :- label_a(Y).
q(X) :- firstchild(X,Y), label_b(Y), label_b(Y).
?- q.
`)
	out, rep := Optimize(p, Options{Level: O1, Roots: []string{"q"}})
	if len(out.Rules) != 2 {
		t.Fatalf("want 2 rules after dedup:\n%s", out)
	}
	if rep.DuplicateRules != 1 || rep.RedundantAtoms != 2 {
		t.Errorf("report %+v, want 1 duplicate rule and 2 redundant atoms", rep)
	}
	tr, err := tree.Parse("a(b,a(b))")
	if err != nil {
		t.Fatal(err)
	}
	sameOn(t, p, out, tr, []string{"q"})
}

// TestTMNFChainCollapse is the headline scenario: the Theorem 5.2
// transformation emits chains of single-use tm_* predicates; the
// optimizer must shrink the program substantially while preserving the
// query extension.
func TestTMNFChainCollapse(t *testing.T) {
	src := `
q(X) :- label_td(X), child(X,Y), label_b(Y), child(X,Z), label_em(Z).
?- q.
`
	p := mustParse(t, src)
	tp, err := tmnf.Transform(p)
	if err != nil {
		t.Fatal(err)
	}
	out, rep := Optimize(tp, Options{Level: O1, Roots: []string{"q"}})
	if rep.RulesAfter >= rep.RulesBefore {
		t.Fatalf("no reduction: %d -> %d\n%s", rep.RulesBefore, rep.RulesAfter, out)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5; i++ {
		tr := tree.Random(rng, tree.RandomOptions{
			Labels: []string{"td", "b", "em", "x"}, Size: 60 + 13*i, MaxChildren: 4})
		sameOn(t, tp, out, tr, []string{"q"})
		// The linear engine must agree too.
		dbLin, err := eval.LinearTree(out, tr)
		if err != nil {
			t.Fatal(err)
		}
		dbRef, err := eval.LinearTree(tp, tr)
		if err != nil {
			t.Fatal(err)
		}
		if diff := eval.SameResults(dbRef, dbLin, []string{"q"}); diff != "" {
			t.Fatalf("linear engine differs after optimization: %s", diff)
		}
	}
}

// TestOptimizePreservesRandomPrograms drives the pipeline over random
// monadic programs and checks least-model preservation on the roots
// with the reference engine.
func TestOptimizePreservesRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 60; i++ {
		p := randomProgram(rng)
		out, _ := Optimize(p, Options{Level: O1, Roots: []string{"p0"}})
		tr := tree.Random(rng, tree.RandomOptions{
			Labels: []string{"a", "b"}, Size: 20 + rng.Intn(40), MaxChildren: 4})
		sameOn(t, p, out, tr, []string{"p0"})
	}
}

// randomProgram builds a small random monadic program over τ_ur.
func randomProgram(rng *rand.Rand) *datalog.Program {
	V, At, R := datalog.V, datalog.At, datalog.R
	unaryEDB := []string{"root", "leaf", "lastsibling", "label_a", "label_b"}
	binEDB := []string{"firstchild", "nextsibling", "lastchild"}
	preds := []string{"p0", "p1", "p2", "p3"}
	vars := []string{"X", "Y", "Z"}
	p := &datalog.Program{Query: "p0"}
	for r := 0; r < 3+rng.Intn(6); r++ {
		head := At(preds[rng.Intn(len(preds))], V("X"))
		var body []datalog.Atom
		// Guarantee safety: first atom mentions X.
		switch rng.Intn(3) {
		case 0:
			body = append(body, At(unaryEDB[rng.Intn(len(unaryEDB))], V("X")))
		case 1:
			body = append(body, At(binEDB[rng.Intn(len(binEDB))], V("X"), V(vars[rng.Intn(2)+1])))
		default:
			body = append(body, At(preds[rng.Intn(len(preds))], V("X")))
		}
		for extra := rng.Intn(3); extra > 0; extra-- {
			v := vars[rng.Intn(len(vars))]
			switch rng.Intn(3) {
			case 0:
				body = append(body, At(unaryEDB[rng.Intn(len(unaryEDB))], V(v)))
			case 1:
				body = append(body, At(binEDB[rng.Intn(len(binEDB))], V(v), V(vars[rng.Intn(len(vars))])))
			default:
				body = append(body, At(preds[rng.Intn(len(preds))], V(v)))
			}
		}
		// Drop rules left unsafe by free head variables elsewhere (the
		// head variable is always bound by construction).
		rule := R(head, body...)
		if rule.IsSafe() {
			p.Add(rule)
		}
	}
	if len(p.Rules) == 0 {
		p.Add(R(At("p0", V("X")), At("root", V("X"))))
	}
	return p
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{"0": O0, "O0": O0, "1": O1, "O1": O1} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLevel("2"); err == nil {
		t.Error("ParseLevel(2) should fail")
	}
	if O1.String() != "O1" || O0.String() != "O0" {
		t.Error("Level.String mismatch")
	}
	if fmt.Sprint(Level(9)) == "" {
		t.Error("unknown level must still print")
	}
}
