package opt

// α-canonicalization is the shared spine of the compile pipeline's
// structure-aware layers: duplicate-rule removal (Optimize),
// cross-member predicate dedup and CSE (Fuse), the containment
// checker's conjunctive-query normal forms (contain.go), and the
// TreeCache plan keys (mdlog.newPlanKey via Canonicalize). One
// canonical form means one notion of "same program": two plans whose
// rules are α-equivalent up to rule order share a result memo, collide
// in Fuse, and are proven equivalent by the checker for free.

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"mdlog/internal/datalog"
)

// Canon is the α-canonical fingerprint of a program: a canonical
// rendering (rules canonicalized individually and sorted, so rule
// order and per-rule variable naming never matter), its 64-bit FNV-1a
// hash, and the rule count as a collision backstop. Two programs with
// equal Canon.Key have identical least models on every database.
type Canon struct {
	// Key is the canonical rendering.
	Key string
	// Hash is the FNV-1a hash of Key.
	Hash uint64
	// Rules is the program's rule count.
	Rules int
}

// Canonicalize computes the α-canonical fingerprint of p. The extras
// are mixed into the hash (engine name, projection list, ...) so
// callers can scope cache keys by evaluation context without changing
// the canonical program text.
func Canonicalize(p *datalog.Program, extra ...string) Canon {
	lines := make([]string, len(p.Rules))
	for i, r := range p.Rules {
		lines[i] = CanonicalRule(r)
	}
	sort.Strings(lines)
	key := strings.Join(lines, "\n")
	if p.Query != "" {
		key += "\n?- " + p.Query
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	for _, e := range extra {
		h.Write([]byte{0})
		h.Write([]byte(e))
	}
	return Canon{Key: key, Hash: h.Sum64(), Rules: len(p.Rules)}
}

// CanonicalRule renders a rule with body atoms sorted by their literal
// text and variables then renumbered by first occurrence. α-equivalent
// rules with consistently ordered atoms collide; two rules can only
// collide if some variable renaming makes them literally identical, so
// a collision always means semantic equality (the converse is
// best-effort: exotic orderings of same-predicate atoms may escape).
func CanonicalRule(r datalog.Rule) string {
	body := make([]string, len(r.Body))
	for i, b := range r.Body {
		body[i] = b.String()
	}
	sort.Strings(body)
	return renameByFirstOccurrence(r, body)
}

// canonicalRule is the package-internal spelling of CanonicalRule.
func canonicalRule(r datalog.Rule) string { return CanonicalRule(r) }

// renameByFirstOccurrence renders head + sorted body with variables
// renamed v0, v1, ... in order of first occurrence.
func renameByFirstOccurrence(r datalog.Rule, sortedBody []string) string {
	// Map original atom strings back to atoms in sorted order.
	atoms := make([]datalog.Atom, 0, len(r.Body)+1)
	atoms = append(atoms, r.Head)
	byText := map[string][]datalog.Atom{}
	for _, b := range r.Body {
		byText[b.String()] = append(byText[b.String()], b)
	}
	for _, s := range sortedBody {
		bs := byText[s]
		atoms = append(atoms, bs[0])
		byText[s] = bs[1:]
	}
	names := map[string]string{}
	var sb strings.Builder
	for i, a := range atoms {
		if i == 1 {
			sb.WriteString(" :- ")
		} else if i > 1 {
			sb.WriteString(", ")
		}
		sb.WriteString(a.Pred)
		if len(a.Args) > 0 {
			sb.WriteByte('(')
			for j, t := range a.Args {
				if j > 0 {
					sb.WriteByte(',')
				}
				if t.IsVar() {
					n, ok := names[t.Var]
					if !ok {
						n = fmt.Sprintf("v%d", len(names))
						names[t.Var] = n
					}
					sb.WriteString(n)
				} else {
					fmt.Fprintf(&sb, "%d", t.Const)
				}
			}
			sb.WriteByte(')')
		}
	}
	return sb.String()
}

// selfToken stands in for a predicate's own name when canonicalizing
// its definition, so directly-recursive twins still collide. The NUL
// byte keeps it out of the space of parseable predicate names.
const selfToken = "\x00self"

// canonicalDef renders a predicate's complete defining rule set in a
// form where two predicates with α-equivalent, order-insensitive,
// self-reference-insensitive definitions (under the current merge
// renaming) collide: each rule is canonicalized like CanonicalRule
// with the predicate's own name replaced by selfToken, and the rule
// strings are sorted.
func canonicalDef(pred string, rules []datalog.Rule, resolve func(string) string) string {
	subst := func(p string) string {
		p = resolve(p)
		if p == pred {
			return selfToken
		}
		return p
	}
	lines := make([]string, len(rules))
	for i, r := range rules {
		c := r.Clone()
		c.Head.Pred = subst(c.Head.Pred)
		for j := range c.Body {
			c.Body[j].Pred = subst(c.Body[j].Pred)
		}
		lines[i] = canonicalRule(c)
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
