package opt

// Shared-structure common-subexpression elimination for fused
// programs. Whole-definition dedup (dedupShared) only fires when two
// predicates' complete rule sets coincide; real wrapper fleets instead
// share *fragments* — the same firstchild/nextsibling walk embedded in
// otherwise different rule bodies. This pass extracts such fragments
// into fresh shared auxiliary predicates so the fused program grounds
// them once.
//
// A fragment is extractable from a rule body exactly when it is a
// fold in the Tamaki–Sato sense, run in reverse of the inliner:
//
//	h(..) :- rest, C        ⇒   h(..) :- rest, cse_k(X)
//	                            cse_k(X) :- C
//
// requiring that C's variables other than the junction X appear
// nowhere in the head or the rest of the body. Then the rewritten
// rule derives exactly the same head facts: for any binding of X,
// cse_k(X) holds iff C's local variables can be completed, which is
// precisely the condition the original rule imposed. The argument is
// stage-wise on the least fixpoint and works unchanged for recursive
// programs; extraction also preserves range-restriction (X occurs in
// C) and monadicity (every introduced predicate is unary).

import (
	"fmt"
	"sort"

	"mdlog/internal/datalog"
)

// cseOccurrence is one candidate fragment occurrence: atoms (by index)
// of one rule, connected through variables local to the fragment, with
// a single junction variable linking it to the rest of the rule.
type cseOccurrence struct {
	rule     int
	atoms    []int
	junction string
}

// cseShared extracts body fragments occurring (α-equivalently) at
// least twice across p into fresh cse_<n> predicates, rewriting every
// claimed occurrence. Reports whether anything changed. counter
// persists across rounds so names never collide. Fragments are keyed
// by their canonical form with the junction variable distinguished, so
// occurrences match across members and variable namings.
func cseShared(p *datalog.Program, counter *int, rep *FuseReport) bool {
	occ := map[string][]cseOccurrence{}
	for ri, r := range p.Rules {
		headVars := map[string]bool{}
		for _, t := range r.Head.Args {
			if t.IsVar() {
				headVars[t.Var] = true
			}
		}
		seen := map[string]bool{}
		for _, a := range r.Body {
			for _, t := range a.Args {
				if !t.IsVar() || seen[t.Var] {
					continue
				}
				seen[t.Var] = true
				for _, ko := range fragmentsAt(r, ri, t.Var, headVars) {
					occ[ko.key] = append(occ[ko.key], ko.occ)
				}
			}
		}
	}
	keys := make([]string, 0, len(occ))
	for k, os := range occ {
		if len(os) >= 2 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	// Claim occurrences greedily, in deterministic key order: one atom
	// can belong to at most one extraction.
	claimed := map[int]map[int]bool{} // rule -> atom index -> taken
	type extraction struct {
		key  string
		uses []cseOccurrence
	}
	var exts []extraction
	for _, k := range keys {
		var uses []cseOccurrence
		for _, o := range occ[k] {
			free := true
			for _, ai := range o.atoms {
				if claimed[o.rule][ai] {
					free = false
					break
				}
			}
			if free {
				uses = append(uses, o)
			}
		}
		if len(uses) < 2 {
			continue
		}
		for _, o := range uses {
			if claimed[o.rule] == nil {
				claimed[o.rule] = map[int]bool{}
			}
			for _, ai := range o.atoms {
				claimed[o.rule][ai] = true
			}
		}
		exts = append(exts, extraction{key: k, uses: uses})
	}
	if len(exts) == 0 {
		return false
	}
	// Rewrite: rebuild each rule body once, replacing each extraction's
	// claimed atoms with a call to its auxiliary predicate.
	aux := make([]datalog.Rule, 0, len(exts))
	replace := map[int]map[int]datalog.Atom{} // rule -> first claimed atom index -> call atom
	drop := map[int]map[int]bool{}            // rule -> other claimed atom indexes
	for _, e := range exts {
		name := fmt.Sprintf("cse_%d", *counter)
		*counter++
		// Define the auxiliary from the first occurrence's atoms, with
		// its junction variable as the head argument.
		first := e.uses[0]
		def := datalog.Rule{Head: datalog.Atom{Pred: name, Args: []datalog.Term{datalog.V(first.junction)}}}
		for _, ai := range first.atoms {
			def.Body = append(def.Body, p.Rules[first.rule].Body[ai].Clone())
		}
		aux = append(aux, def)
		rep.CSEPreds++
		for _, o := range e.uses {
			rep.CSERefs++
			if replace[o.rule] == nil {
				replace[o.rule] = map[int]datalog.Atom{}
				drop[o.rule] = map[int]bool{}
			}
			call := datalog.Atom{Pred: name, Args: []datalog.Term{datalog.V(o.junction)}}
			replace[o.rule][o.atoms[0]] = call
			for _, ai := range o.atoms[1:] {
				drop[o.rule][ai] = true
			}
		}
	}
	for ri := range p.Rules {
		if replace[ri] == nil {
			continue
		}
		var body []datalog.Atom
		seenCall := map[string]bool{}
		for ai, a := range p.Rules[ri].Body {
			if call, ok := replace[ri][ai]; ok {
				// Identical twin fragments in one body (same key, same
				// junction) collapse to a single call.
				if !seenCall[call.String()] {
					seenCall[call.String()] = true
					body = append(body, call)
				}
				continue
			}
			if drop[ri][ai] {
				continue
			}
			body = append(body, a)
		}
		p.Rules[ri].Body = body
	}
	p.Rules = append(p.Rules, aux...)
	return true
}

// keyedOccurrence pairs a fragment occurrence with its canonical key.
type keyedOccurrence struct {
	key string
	occ cseOccurrence
}

// fragmentsAt enumerates the extractable fragments of rule r (index ri
// in the program) whose junction variable is x: the connected
// components of the body atoms that mention a variable other than x,
// linked by shared non-x variables, filtered to those that (a) touch
// x, (b) have at least two atoms (extracting one atom only adds
// indirection), and (c) keep all their non-junction variables local —
// absent from the head and from the rest of the body. Components equal
// to the entire body of a rule whose head argument is x are skipped:
// extracting them would just α-rename the rule and re-fire forever.
// Twin fragments within one rule (same key, same junction) come back
// as separate occurrences; the rewrite collapses them to one call.
func fragmentsAt(r datalog.Rule, ri int, x string, headVars map[string]bool) []keyedOccurrence {
	n := len(r.Body)
	// Union-find over candidate atoms.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	candidate := make([]bool, n)
	varHome := map[string]int{}
	for i, a := range r.Body {
		hasOther := false
		for _, t := range a.Args {
			if t.IsVar() && t.Var != x {
				hasOther = true
			}
		}
		if !hasOther {
			continue
		}
		candidate[i] = true
		for _, t := range a.Args {
			if !t.IsVar() || t.Var == x {
				continue
			}
			if h, ok := varHome[t.Var]; ok {
				parent[find(i)] = find(h)
			} else {
				varHome[t.Var] = i
			}
		}
	}
	comps := map[int][]int{}
	for i := range r.Body {
		if candidate[i] {
			root := find(i)
			comps[root] = append(comps[root], i)
		}
	}
	var out []keyedOccurrence
	roots := make([]int, 0, len(comps))
	for root := range comps {
		roots = append(roots, root)
	}
	sort.Ints(roots)
	for _, root := range roots {
		atoms := comps[root]
		if len(atoms) < 2 {
			continue
		}
		touchesX := false
		local := map[string]bool{}
		inComp := map[int]bool{}
		for _, ai := range atoms {
			inComp[ai] = true
			for _, t := range r.Body[ai].Args {
				if !t.IsVar() {
					continue
				}
				if t.Var == x {
					touchesX = true
				} else {
					local[t.Var] = true
				}
			}
		}
		if !touchesX {
			continue
		}
		leak := false
		for v := range local {
			if headVars[v] {
				leak = true
				break
			}
		}
		if !leak {
			for ai, a := range r.Body {
				if inComp[ai] {
					continue
				}
				for _, t := range a.Args {
					if t.IsVar() && local[t.Var] {
						leak = true
					}
				}
			}
		}
		if leak {
			continue
		}
		if len(atoms) == n && len(r.Head.Args) == 1 && r.Head.Args[0].IsVar() && r.Head.Args[0].Var == x {
			continue // whole-body self-extraction: pure renaming loop
		}
		out = append(out, keyedOccurrence{
			key: fragmentKey(r, atoms, x),
			occ: cseOccurrence{rule: ri, atoms: atoms, junction: x},
		})
	}
	return out
}

// fragmentKey canonicalizes a fragment with its junction variable
// distinguished, by rendering it as the definition of a reserved
// pseudo-predicate headed by the junction.
func fragmentKey(r datalog.Rule, atoms []int, x string) string {
	pr := datalog.Rule{Head: datalog.Atom{Pred: "\x00frag", Args: []datalog.Term{datalog.V(x)}}}
	for _, ai := range atoms {
		pr.Body = append(pr.Body, r.Body[ai])
	}
	return canonicalRule(pr)
}
