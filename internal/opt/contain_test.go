package opt

import (
	"strings"
	"testing"

	"mdlog/internal/eval"
	"mdlog/internal/refute"
	"mdlog/internal/tree"
)

func TestContainmentEquivalentDuplicatedFragment(t *testing.T) {
	// q2 duplicates q1's join chain under renamed variables and adds a
	// defensive dom atom; core minimization + dom normalization must
	// collapse them onto the same UCQ.
	p1 := mustParse(t, `
q(X) :- firstchild(X, Y), label_a(Y).
?- q.
`)
	p2 := mustParse(t, `
q(X) :- dom(X), firstchild(X, Y), label_a(Y), firstchild(X, Z), label_a(Z).
?- q.
`)
	if r, _ := CheckEquivalence(p1, "q", p2, "q", nil); r != Contained {
		t.Fatalf("expected proven equivalence, got %v", r)
	}
	s1, ok1 := UnfoldSignature(p1, "q", nil)
	s2, ok2 := UnfoldSignature(p2, "q", nil)
	if !ok1 || !ok2 || s1 != s2 {
		t.Fatalf("signatures should match:\n%q (ok=%v)\n%q (ok=%v)", s1, ok1, s2, ok2)
	}
}

func TestContainmentProperSubset(t *testing.T) {
	// p1 selects a-labeled leaves; p2 selects all leaves: p1 ⊆ p2 but
	// not conversely, and the converse has a small witness tree.
	p1 := mustParse(t, `
q(X) :- leaf(X), label_a(X).
?- q.
`)
	p2 := mustParse(t, `
q(X) :- leaf(X).
?- q.
`)
	if r, _ := CheckContainment(p1, "q", p2, "q", nil); r != Contained {
		t.Fatalf("a-leaves ⊆ leaves should be proven, got %v", r)
	}
	r, w := CheckContainment(p2, "q", p1, "q", nil)
	if r != NotContained {
		t.Fatalf("leaves ⊆ a-leaves should be refuted, got %v", r)
	}
	if w == nil || w.Tree == nil {
		t.Fatal("NotContained must carry a witness")
	}
	// Re-check the witness independently.
	db1, err := eval.EvalOnTree(p2, w.Tree, eval.EngineSemiNaive)
	if err != nil {
		t.Fatal(err)
	}
	db2, err := eval.EvalOnTree(p1, w.Tree, eval.EngineSemiNaive)
	if err != nil {
		t.Fatal(err)
	}
	in := func(vs []int, n int) bool {
		for _, v := range vs {
			if v == n {
				return true
			}
		}
		return false
	}
	if !in(db1.UnarySet("q"), w.Node) || in(db2.UnarySet("q"), w.Node) {
		t.Fatalf("witness node %d does not separate the queries", w.Node)
	}
}

func TestContainmentUnionOfCQs(t *testing.T) {
	// Multi-rule (union) visible predicates: each disjunct of p1 must
	// find a containing disjunct of p2, across helper indirection.
	p1 := mustParse(t, `
q(X) :- aleaf(X).
aleaf(X) :- leaf(X), label_a(X).
?- q.
`)
	p2 := mustParse(t, `
q(X) :- label_a(X).
q(X) :- label_b(X), leaf(X).
?- q.
`)
	if r, _ := CheckContainment(p1, "q", p2, "q", nil); r != Contained {
		t.Fatalf("a-leaves ⊆ (a ∪ b-leaves) should be proven, got %v", r)
	}
	if r, _ := CheckContainment(p2, "q", p1, "q", nil); r == Contained {
		t.Fatal("(a ∪ b-leaves) ⊆ a-leaves wrongly proven")
	}
}

func TestContainmentRecursiveIsUnknownNotWrong(t *testing.T) {
	// A recursive program cannot be unfolded; with refutation disabled
	// the checker must answer Unknown, never a wrong Contained.
	rec := mustParse(t, `
reach(X) :- root(X).
reach(X) :- reach(Y), firstchild(Y, X).
reach(X) :- reach(Y), nextsibling(Y, X).
?- reach.
`)
	leafy := mustParse(t, `
q(X) :- leaf(X).
?- q.
`)
	opts := &ContainOptions{NoRefute: true}
	if r, _ := CheckContainment(rec, "reach", leafy, "q", opts); r != ContainUnknown {
		t.Fatalf("recursive side must yield Unknown without refutation, got %v", r)
	}
	// With refutation on, reach ⊆ leaves is refutable (any tree with an
	// internal node).
	if r, w := CheckContainment(rec, "reach", leafy, "q", nil); r != NotContained || w == nil {
		t.Fatalf("reach ⊆ leaves should be refuted on a small tree, got %v", r)
	}
}

func TestContainmentBudgetYieldsUnknown(t *testing.T) {
	// A deliberately tiny atom budget makes the unfolding fail; the
	// checker degrades to Unknown rather than guessing.
	p := mustParse(t, `
q(X) :- firstchild(X, A), nextsibling(A, B), nextsibling(B, C), label_a(C).
?- q.
`)
	opts := &ContainOptions{MaxAtoms: 2, NoRefute: true}
	if r, _ := CheckContainment(p, "q", p, "q", opts); r != ContainUnknown {
		t.Fatalf("budget blowout must yield Unknown, got %v", r)
	}
	// Same program under default budgets is trivially self-contained.
	if r, _ := CheckContainment(p, "q", p, "q", &ContainOptions{NoRefute: true}); r != Contained {
		t.Fatal("self-containment should be proven under default budgets")
	}
}

func TestContainmentSoundOnRandomPrograms(t *testing.T) {
	// Property check riding MDLOG_FUZZ_SEED determinism: for random
	// nonrecursive programs p and an extension p+extra (adding rules can
	// only grow the least model), Contained must hold semantically on
	// random trees. We verify every Contained verdict by evaluation.
	base := mustParse(t, `
q(X) :- firstchild(X, Y), label_a(Y).
q(X) :- leaf(X), label_b(X).
?- q.
`)
	ext := mustParse(t, `
q(X) :- firstchild(X, Y), label_a(Y).
q(X) :- leaf(X), label_b(X).
q(X) :- lastsibling(X), label_a(X).
?- q.
`)
	r, _ := CheckContainment(base, "q", ext, "q", nil)
	if r != Contained {
		t.Fatalf("p ⊆ p+extra should be proven, got %v", r)
	}
	w := refute.Search(refute.Options{Trees: 200}, func(tr *tree.Tree) (int, bool) {
		db1, err := eval.EvalOnTree(base, tr, eval.EngineSemiNaive)
		if err != nil {
			return 0, false
		}
		db2, err := eval.EvalOnTree(ext, tr, eval.EngineSemiNaive)
		if err != nil {
			return 0, false
		}
		sel2 := map[int]bool{}
		for _, v := range db2.UnarySet("q") {
			sel2[v] = true
		}
		for _, v := range db1.UnarySet("q") {
			if !sel2[v] {
				return v, true
			}
		}
		return 0, false
	})
	if w != nil {
		t.Fatalf("checker said Contained but tree refutes it:\n%v", w.Tree)
	}
}

func TestUnfoldSignatureStableUnderRenaming(t *testing.T) {
	// Apex-renamed copies of the same wrapper (the fusion setting) must
	// produce identical signatures.
	src := `
q(X) :- hit(X).
hit(X) :- firstchild(X, Y), step(Y).
step(Y) :- nextsibling(Y, Z), label_b(Z).
?- q.
`
	p := mustParse(t, src)
	renamed := apexRename(p, "s7__")
	s1, ok1 := UnfoldSignature(p, "q", nil)
	s2, ok2 := UnfoldSignature(renamed, "s7__q", nil)
	if !ok1 || !ok2 {
		t.Fatalf("unfolding failed: ok1=%v ok2=%v", ok1, ok2)
	}
	if s1 != s2 {
		t.Fatalf("signatures differ under apex renaming:\n%q\n%q", s1, s2)
	}
	if strings.Contains(s1, "s7__") {
		t.Fatalf("signature leaked apex prefix: %q", s1)
	}
}

func TestUnfoldSignatureUnknownBinary(t *testing.T) {
	// Unknown binary predicates are outside the modeled vocabulary; the
	// unfolder must decline rather than treat them as empty or total.
	p := mustParse(t, `
q(X) :- mystery(X, Y), label_a(Y).
?- q.
`)
	if _, ok := UnfoldSignature(p, "q", nil); ok {
		t.Fatal("unknown binary predicate should not unfold")
	}
	// Unknown unary predicates have empty extensions: disjuncts that
	// need them drop out, leaving the remaining disjuncts.
	p2 := mustParse(t, `
q(X) :- nothing(X).
q(X) :- leaf(X).
?- q.
`)
	leafOnly := mustParse(t, `
q(X) :- leaf(X).
?- q.
`)
	if r, _ := CheckEquivalence(p2, "q", leafOnly, "q", &ContainOptions{NoRefute: true}); r != Contained {
		t.Fatalf("empty-disjunct elimination should prove equivalence, got %v", r)
	}
}
