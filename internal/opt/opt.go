// Package opt is the compile-time optimizer for monadic datalog
// programs: a pipeline of semantics-preserving rewrites run between a
// front-end's translation (MSO, XPath, caterpillar, Elog → datalog /
// TMNF) and plan preparation (eval.NewPlan or the generic engines).
//
// Theorem 4.2's O(|P|·|dom|) bound is linear in the RULE COUNT, and
// every translation in this repository pays for that generality with
// long chains of single-use auxiliary predicates (tm_*, subelem
// expansions, automaton state predicates) that the engine then grounds
// over every node of every document. The optimizer removes that
// overhead before any document is seen:
//
//  1. goal-directed dead-rule elimination — drop rules that cannot
//     contribute to any root predicate (predicate-dependency-graph
//     reachability, combined with a derivability fixpoint that removes
//     rules depending on underivable intensional predicates);
//  2. inlining of single-use intermediate predicates — unfold the
//     unique defining rule of a predicate used exactly once
//     (Tamaki–Sato unfolding, sound for definite programs), collapsing
//     the auxiliary chains the TMNF and Elog/MSO compilers emit;
//  3. duplicate-rule removal — drop rules identical up to variable
//     renaming;
//  4. redundant-body-atom removal — drop exact duplicate atoms within
//     one body (this also deduplicates repeated label tests, so a plan
//     interns and checks each tested label once per rule).
//
// Every pass preserves the least model restricted to the root
// predicates (see DESIGN.md for the pass-by-pass argument); the
// cross-formalism equivalence suite and the cross-engine differential
// fuzzer lock that in at every optimization level.
package opt

import (
	"fmt"
	"sort"

	"mdlog/internal/datalog"
	"mdlog/internal/eval"
)

// Level selects how aggressively Optimize rewrites a program.
type Level int

const (
	// O0 disables the optimizer: Optimize returns the program as-is.
	O0 Level = 0
	// O1 enables the full pipeline (the default).
	O1 Level = 1
)

// String names the level the way the CLI flags spell it.
func (l Level) String() string {
	switch l {
	case O0:
		return "O0"
	case O1:
		return "O1"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// ParseLevel converts a CLI flag value ("0", "1", "O0", "O1") into a
// Level.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "0", "O0", "-O0":
		return O0, nil
	case "1", "O1", "-O1":
		return O1, nil
	}
	return 0, fmt.Errorf("opt: unknown optimization level %q (want 0 or 1)", s)
}

// DefaultMaxBodyAtoms bounds how large an inlined rule body may grow.
// Chains longer than this stay partially folded — the cap only guards
// against degenerate translations, not realistic wrappers.
const DefaultMaxBodyAtoms = 64

// Options configures Optimize.
type Options struct {
	// Level selects the pass set; O0 disables everything.
	Level Level
	// Roots are the predicates whose extensions must be preserved —
	// the distinguished query predicate plus every predicate the
	// caller can observe (Eval/Wrap extraction lists). Empty means
	// "every intensional predicate is observable": goal-directed
	// elimination and inlining then keep all user predicates and only
	// the derivability / duplicate cleanups apply.
	Roots []string
	// KeepShape restricts the pipeline to passes that never change the
	// syntactic shape of a surviving rule (no inlining). The Datalog
	// LIT engine admits programs by rule shape (all-monadic or
	// extensionally guarded, Proposition 3.7), so plans prepared for
	// the generic engines must not fuse rules.
	KeepShape bool
	// MaxBodyAtoms caps the body size inlining may create
	// (0: DefaultMaxBodyAtoms).
	MaxBodyAtoms int
}

// Report describes what one Optimize call did.
type Report struct {
	// Level the pipeline ran at.
	Level Level
	// RulesBefore / RulesAfter are the program sizes around the
	// pipeline.
	RulesBefore, RulesAfter int
	// AtomsBefore / AtomsAfter count body atoms around the pipeline.
	AtomsBefore, AtomsAfter int
	// DeadRules counts rules dropped by goal-directed reachability or
	// the derivability fixpoint.
	DeadRules int
	// Inlined counts single-use predicate definitions folded into
	// their unique use site.
	Inlined int
	// DuplicateRules counts rules dropped as variants of an earlier
	// rule.
	DuplicateRules int
	// RedundantAtoms counts duplicate body atoms (including repeated
	// label tests) removed.
	RedundantAtoms int
}

// Changed reports whether the pipeline altered the program at all.
func (r Report) Changed() bool {
	return r.DeadRules > 0 || r.Inlined > 0 || r.DuplicateRules > 0 || r.RedundantAtoms > 0
}

func bodyAtoms(p *datalog.Program) int {
	n := 0
	for _, r := range p.Rules {
		n += len(r.Body)
	}
	return n
}

// Optimize rewrites p according to o and reports what changed. The
// input program is never mutated; at O0 (or when nothing applies) the
// returned program is a clone with identical rules.
func Optimize(p *datalog.Program, o Options) (*datalog.Program, Report) {
	rep := Report{
		Level:       o.Level,
		RulesBefore: len(p.Rules),
		AtomsBefore: bodyAtoms(p),
	}
	out := p.Clone()
	if o.Level >= O1 {
		maxBody := o.MaxBodyAtoms
		if maxBody <= 0 {
			maxBody = DefaultMaxBodyAtoms
		}
		roots := rootSet(p, o.Roots)
		// The passes enable one another (removing a dead rule can make
		// a predicate single-use; inlining can create duplicates), so
		// iterate to a fixpoint. Each productive iteration strictly
		// shrinks rules+atoms, so the loop terminates; the explicit
		// bound is belt and braces.
		for iter := 0; iter < 64; iter++ {
			changed := false
			changed = dedupAtoms(out, &rep) || changed
			changed = eliminateDead(out, roots, &rep) || changed
			changed = dedupRules(out, &rep) || changed
			if !o.KeepShape {
				changed = inlineSingleUse(out, roots, maxBody, &rep) || changed
			}
			if !changed {
				break
			}
		}
	}
	rep.RulesAfter = len(out.Rules)
	rep.AtomsAfter = bodyAtoms(out)
	return out, rep
}

// rootSet resolves the observable predicates: the caller's roots, or
// every intensional predicate when none are given.
func rootSet(p *datalog.Program, roots []string) map[string]bool {
	set := map[string]bool{}
	if len(roots) == 0 {
		for _, r := range p.Rules {
			set[r.Head.Pred] = true
		}
	} else {
		for _, pred := range roots {
			set[pred] = true
		}
	}
	if p.Query != "" {
		set[p.Query] = true
	}
	return set
}

// ---------------------------------------------------------------------
// Pass 1: goal-directed dead-rule elimination.

// eliminateDead drops rules that cannot contribute to a root
// predicate. A rule is live iff (a) its head reaches a root in the
// predicate dependency graph (head ← body edges walked backward from
// the roots) and (b) every intensional body predicate is derivable
// (defined by at least one live chain of rules bottoming out in
// extensional atoms). Rules with underivable unary or propositional
// body atoms can never fire and are dropped even when reachable.
//
// Rules containing unknown BINARY body predicates (neither intensional
// nor a tree relation) are kept: the engines differ in how they treat
// them (the linear engine rejects them, the set-oriented engines see
// an empty relation), and the optimizer must not turn a diagnosed
// error into silence.
func eliminateDead(p *datalog.Program, roots map[string]bool, rep *Report) bool {
	idb := map[string]bool{}
	for _, r := range p.Rules {
		idb[r.Head.Pred] = true
	}
	// Derivability fixpoint: a predicate is derivable if some rule for
	// it has a body whose intensional unary/propositional atoms are all
	// derivable (extensional atoms and binary atoms are assumed
	// satisfiable — whether they hold is a per-document question).
	derivable := map[string]bool{}
	for changed := true; changed; {
		changed = false
		for _, r := range p.Rules {
			if derivable[r.Head.Pred] {
				continue
			}
			ok := true
			for _, b := range r.Body {
				if !bodyAtomSatisfiable(b, idb, derivable) {
					ok = false
					break
				}
			}
			if ok {
				derivable[r.Head.Pred] = true
				changed = true
			}
		}
	}
	// Reachability from the roots over head ← body edges.
	uses := map[string][]string{} // head pred -> body IDB preds
	for _, r := range p.Rules {
		for _, b := range r.Body {
			if idb[b.Pred] {
				uses[r.Head.Pred] = append(uses[r.Head.Pred], b.Pred)
			}
		}
	}
	reach := map[string]bool{}
	var frontier []string
	add := func(pred string) {
		if !reach[pred] {
			reach[pred] = true
			frontier = append(frontier, pred)
		}
	}
	for pred := range roots {
		add(pred)
	}
	// Rules carrying unknown binary predicates survive this pass so
	// the engine still diagnoses them (see below) — which also means
	// everything they reference must stay defined, or the linear
	// engine would classify them as dead (undefined unary body atom)
	// before ever reaching the typo'd binary atom.
	for _, r := range p.Rules {
		if !hasUnknownBinary(r, idb) {
			continue
		}
		add(r.Head.Pred)
		for _, b := range r.Body {
			if idb[b.Pred] {
				add(b.Pred)
			}
		}
	}
	sort.Strings(frontier) // deterministic walk order
	for len(frontier) > 0 {
		cur := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, dep := range uses[cur] {
			if !reach[dep] {
				reach[dep] = true
				frontier = append(frontier, dep)
			}
		}
	}
	kept := p.Rules[:0]
	for _, r := range p.Rules {
		// A rule carrying an unknown binary predicate is kept whatever
		// its reachability: the linear engine diagnoses it with an
		// error, and dropping the rule would make the default -O1 level
		// compile what -O0 rejects.
		if hasUnknownBinary(r, idb) {
			kept = append(kept, r)
			continue
		}
		live := reach[r.Head.Pred] && derivable[r.Head.Pred]
		if live {
			for _, b := range r.Body {
				if !bodyAtomSatisfiable(b, idb, derivable) {
					live = false
					break
				}
			}
		}
		if live {
			kept = append(kept, r)
		} else {
			rep.DeadRules++
		}
	}
	changed := len(kept) != len(p.Rules)
	p.Rules = kept
	return changed
}

// hasUnknownBinary reports whether some body atom uses a binary
// predicate that is neither intensional nor a known tree relation.
func hasUnknownBinary(r datalog.Rule, idb map[string]bool) bool {
	for _, b := range r.Body {
		if len(b.Args) == 2 && !idb[b.Pred] && !eval.IsBinaryEDB(b.Pred) {
			return true
		}
	}
	return false
}

// bodyAtomSatisfiable reports whether a body atom could ever hold on
// some document: extensional tree atoms always can; intensional atoms
// need a derivable predicate; unknown unary/propositional predicates
// cannot. Unknown binary predicates are conservatively kept (see
// eliminateDead).
func bodyAtomSatisfiable(b datalog.Atom, idb, derivable map[string]bool) bool {
	if idb[b.Pred] {
		return derivable[b.Pred]
	}
	switch len(b.Args) {
	case 0:
		return false // propositional with no rules: never true
	case 1:
		return eval.IsUnaryEDB(b.Pred)
	default:
		return true
	}
}

// ---------------------------------------------------------------------
// Pass 2: single-use predicate inlining.

// inlineSingleUse unfolds predicates that have exactly one defining
// rule and exactly one body occurrence program-wide, are not roots,
// are not recursive, and are unary with a variable head argument. The
// unique use atom is replaced by the defining body (head variable
// unified with the use-site variable, remaining variables freshly
// renamed), and the defining rule — now unused — is dropped. This is
// one unfold step followed by dead-code removal, which preserves the
// least model on every other predicate.
func inlineSingleUse(p *datalog.Program, roots map[string]bool, maxBody int, rep *Report) bool {
	type def struct {
		rule  int // defining rule index, -1 if none or several
		count int
	}
	defs := map[string]*def{}
	for i, r := range p.Rules {
		d := defs[r.Head.Pred]
		if d == nil {
			d = &def{rule: i}
			defs[r.Head.Pred] = d
		} else {
			d.rule = -1
		}
		d.count++
	}
	type use struct {
		rule, atom int
		count      int
	}
	uses := map[string]*use{}
	for i, r := range p.Rules {
		for j, b := range r.Body {
			u := uses[b.Pred]
			if u == nil {
				u = &use{rule: i, atom: j}
				uses[b.Pred] = u
			}
			u.count++
		}
	}

	// Candidate predicates, in deterministic order.
	var cands []string
	for pred, d := range defs {
		if roots[pred] || d.rule == -1 {
			continue
		}
		u := uses[pred]
		if u == nil || u.count != 1 || u.rule == d.rule {
			continue
		}
		cands = append(cands, pred)
	}
	sort.Strings(cands)

	changed := false
	drop := map[int]bool{}
	touched := map[int]bool{} // rules edited this round; re-analyze next iteration
	for _, pred := range cands {
		d, u := defs[pred], uses[pred]
		if drop[d.rule] || drop[u.rule] || touched[d.rule] || touched[u.rule] {
			continue // stale indices; the fixpoint loop retries
		}
		dr := p.Rules[d.rule]
		ur := p.Rules[u.rule]
		if !inlinable(dr, pred) {
			continue
		}
		target := ur.Body[u.atom]
		if len(target.Args) != 1 || !target.Args[0].IsVar() {
			continue
		}
		if len(ur.Body)-1+len(dr.Body) > maxBody {
			continue
		}
		merged, ok := unfold(ur, u.atom, dr, fmt.Sprintf("I%d", rep.Inlined))
		if !ok {
			continue
		}
		p.Rules[u.rule] = merged
		drop[d.rule] = true
		touched[u.rule] = true
		rep.Inlined++
		changed = true
	}
	if len(drop) > 0 {
		kept := p.Rules[:0]
		for i, r := range p.Rules {
			if !drop[i] {
				kept = append(kept, r)
			}
		}
		p.Rules = kept
	}
	return changed
}

// inlinable reports whether dr is a safe defining rule for unfolding
// pred: unary head over a variable, no constants, not self-recursive.
func inlinable(dr datalog.Rule, pred string) bool {
	if len(dr.Head.Args) != 1 || !dr.Head.Args[0].IsVar() {
		return false
	}
	for _, b := range dr.Body {
		if b.Pred == pred {
			return false
		}
		for _, t := range b.Args {
			if !t.IsVar() {
				return false
			}
		}
	}
	return true
}

// unfold replaces ur.Body[atom] with the body of dr, unifying dr's
// head variable with the use-site variable and renaming dr's other
// variables fresh (prefix tag).
func unfold(ur datalog.Rule, atom int, dr datalog.Rule, tag string) (datalog.Rule, bool) {
	useVar := ur.Body[atom].Args[0].Var
	headVar := dr.Head.Args[0].Var
	rename := map[string]string{headVar: useVar}
	taken := map[string]bool{}
	for _, v := range ur.Vars() {
		taken[v] = true
	}
	fresh := func(v string) string {
		name := v + "_" + tag
		for taken[name] {
			name += "x"
		}
		taken[name] = true
		return name
	}
	out := ur.Clone()
	var inlined []datalog.Atom
	for _, b := range dr.Body {
		nb := b.Clone()
		for i, t := range nb.Args {
			if !t.IsVar() {
				return out, false
			}
			nv, ok := rename[t.Var]
			if !ok {
				nv = fresh(t.Var)
				rename[t.Var] = nv
			}
			nb.Args[i] = datalog.V(nv)
		}
		inlined = append(inlined, nb)
	}
	body := make([]datalog.Atom, 0, len(out.Body)-1+len(inlined))
	body = append(body, out.Body[:atom]...)
	body = append(body, inlined...)
	body = append(body, out.Body[atom+1:]...)
	out.Body = body
	return out, true
}

// ---------------------------------------------------------------------
// Passes 3 and 4: duplicate rules and redundant body atoms.

// dedupRules drops rules whose canonical form (variables renamed by
// first occurrence, body atoms sorted) matches an earlier rule.
func dedupRules(p *datalog.Program, rep *Report) bool {
	seen := map[string]bool{}
	kept := p.Rules[:0]
	for _, r := range p.Rules {
		key := canonicalRule(r)
		if seen[key] {
			rep.DuplicateRules++
			continue
		}
		seen[key] = true
		kept = append(kept, r)
	}
	changed := len(kept) != len(p.Rules)
	p.Rules = kept
	return changed
}

// dedupAtoms removes exact duplicate atoms within each rule body —
// including repeated label tests on the same variable, so the plan
// compiles (and a run checks) each label test once.
func dedupAtoms(p *datalog.Program, rep *Report) bool {
	changed := false
	for i, r := range p.Rules {
		seen := map[string]bool{}
		kept := r.Body[:0]
		for _, b := range r.Body {
			key := b.String()
			if seen[key] {
				rep.RedundantAtoms++
				changed = true
				continue
			}
			seen[key] = true
			kept = append(kept, b)
		}
		p.Rules[i].Body = kept
	}
	return changed
}
