package automata

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// buildABStar returns an NFA for (ab)* over symbols {0:a, 1:b}.
func buildABStar() *NFA {
	n := NewNFA(2, 2)
	n.AddTransition(0, 0, 1)
	n.AddTransition(1, 1, 0)
	n.Accept[0] = true
	return n
}

func TestNFAAccepts(t *testing.T) {
	n := buildABStar()
	cases := []struct {
		w    []int
		want bool
	}{
		{nil, true},
		{[]int{0, 1}, true},
		{[]int{0, 1, 0, 1}, true},
		{[]int{0}, false},
		{[]int{1, 0}, false},
		{[]int{0, 0}, false},
	}
	for _, c := range cases {
		if got := n.AcceptsWord(c.w); got != c.want {
			t.Errorf("AcceptsWord(%v) = %v", c.w, got)
		}
	}
}

func TestEpsilonClosure(t *testing.T) {
	// a? b via epsilon: 0 -ε-> 1, 0 -a-> 1, 1 -b-> 2(accept)
	n := NewNFA(3, 2)
	n.AddEps(0, 1)
	n.AddTransition(0, 0, 1)
	n.AddTransition(1, 1, 2)
	n.Accept[2] = true
	if !n.AcceptsWord([]int{1}) || !n.AcceptsWord([]int{0, 1}) {
		t.Error("epsilon handling wrong")
	}
	if n.AcceptsWord([]int{0}) || n.AcceptsWord(nil) {
		t.Error("false accept")
	}
}

func TestDeterminizeAgreesWithNFA(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		states := 2 + rng.Intn(5)
		n := NewNFA(states, 2)
		for i := 0; i < 3+rng.Intn(10); i++ {
			n.AddTransition(rng.Intn(states), rng.Intn(2), rng.Intn(states))
		}
		for i := 0; i < rng.Intn(3); i++ {
			n.AddEps(rng.Intn(states), rng.Intn(states))
		}
		n.Accept[rng.Intn(states)] = true
		d := n.Determinize()
		// Compare on all words up to length 6.
		var word []int
		var rec func(depth int) bool
		rec = func(depth int) bool {
			if n.AcceptsWord(word) != d.AcceptsWord(word) {
				return false
			}
			if depth == 0 {
				return true
			}
			for s := 0; s < 2; s++ {
				word = append(word, s)
				if !rec(depth - 1) {
					return false
				}
				word = word[:len(word)-1]
			}
			return true
		}
		return rec(6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestDFAOps(t *testing.T) {
	ab := buildABStar().Determinize()
	comp := ab.Complement()
	if comp.AcceptsWord([]int{0, 1}) || !comp.AcceptsWord([]int{0}) {
		t.Error("complement wrong")
	}
	// (ab)* ∩ complement((ab)*) = ∅
	if !ab.Intersect(comp).IsEmpty() {
		t.Error("A ∩ ¬A must be empty")
	}
	if ab.IsEmpty() {
		t.Error("(ab)* is nonempty")
	}
	ok, _ := Contained(ab, ab)
	if !ok {
		t.Error("A ⊆ A must hold")
	}
	// (ab)* ⊄ {ab}: counterexample expected (ε or abab).
	single := WordNFAFromString([]int{0, 1}, 2).Determinize()
	ok, cex := Contained(ab, single)
	if ok {
		t.Error("(ab)* ⊆ {ab} must fail")
	}
	if single.AcceptsWord(cex) || !ab.AcceptsWord(cex) {
		t.Errorf("bad counterexample %v", cex)
	}
	ok, _ = Contained(single, ab)
	if !ok {
		t.Error("{ab} ⊆ (ab)* must hold")
	}
}

func TestSomeWordShortest(t *testing.T) {
	// Language {aab}: shortest word is aab itself.
	d := WordNFAFromString([]int{0, 0, 1}, 2).Determinize()
	w, ok := d.SomeWord()
	if !ok || len(w) != 3 || w[0] != 0 || w[1] != 0 || w[2] != 1 {
		t.Errorf("SomeWord = %v, %v", w, ok)
	}
	if _, ok := d.Intersect(d.Complement()).SomeWord(); ok {
		t.Error("empty language yielded a word")
	}
}

func TestUVW(t *testing.T) {
	// (q1 q0)* over symbols q1=1, q0=0 — Example 4.15's L1.
	l1 := UVW{V: []int{1, 0}}
	// (q1 q0)* q1 — Example 4.15's L2.
	l2 := UVW{V: []int{1, 0}, W: []int{1}}
	if !l1.Matches(nil) || !l1.Matches([]int{1, 0, 1, 0}) || l1.Matches([]int{1, 0, 1}) {
		t.Error("l1 wrong")
	}
	if !l2.Matches([]int{1}) || !l2.Matches([]int{1, 0, 1}) || l2.Matches([]int{1, 0}) {
		t.Error("l2 wrong")
	}
	// Example 4.15: four children; only l1 has a word of length 4.
	if w, ok := l1.WordOfLength(4); !ok || len(w) != 4 {
		t.Error("l1 must have a word of length 4")
	} else if w[0] != 1 || w[1] != 0 || w[2] != 1 || w[3] != 0 {
		t.Errorf("l1 word = %v", w)
	}
	if _, ok := l2.WordOfLength(4); ok {
		t.Error("l2 must have no word of length 4")
	}
	if _, ok := l2.WordOfLength(3); !ok {
		t.Error("l2 must have a word of length 3")
	}
	u := UVW{U: []int{0}, W: []int{1}}
	if _, ok := u.WordOfLength(1); ok {
		t.Error("uw with |uw|=2 cannot produce length 1")
	}
	if w, ok := u.WordOfLength(2); !ok || w[0] != 0 || w[1] != 1 {
		t.Error("uw word wrong")
	}
	if _, ok := u.WordOfLength(3); ok {
		t.Error("empty v cannot stretch")
	}
}

// evenA builds a DTA over 1 symbol alphabet, leaf = ⊥, accepting
// binary-encoded trees with an even number of internal nodes.
func evenParityDTA() *DTA {
	d := NewDTA(2, 1, 1)
	d.LeafTrans[0] = 0
	for q1 := 0; q1 < 2; q1++ {
		for q2 := 0; q2 < 2; q2++ {
			d.SetTrans(q1, q2, 0, (q1+q2+1)%2)
		}
	}
	d.Accept[0] = true
	return d
}

// run evaluates a DTA on a shape: nil = leaf, otherwise [left, right].
type shape struct {
	l, r *shape
}

func runDTA(d *DTA, s *shape) int {
	if s == nil {
		return d.LeafState(0)
	}
	return d.Step(runDTA(d, s.l), runDTA(d, s.r), 0)
}

func randShape(rng *rand.Rand, budget int) *shape {
	if budget <= 0 || rng.Intn(3) == 0 {
		return nil
	}
	return &shape{randShape(rng, budget-1), randShape(rng, budget-1)}
}

func countInternal(s *shape) int {
	if s == nil {
		return 0
	}
	return 1 + countInternal(s.l) + countInternal(s.r)
}

func TestDTAParity(t *testing.T) {
	d := evenParityDTA()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		s := randShape(rng, 5)
		got := d.Accept[runDTA(d, s)]
		want := countInternal(s)%2 == 0
		if got != want {
			t.Fatalf("parity wrong for %d internal nodes", countInternal(s))
		}
	}
}

func TestDTAComplementProduct(t *testing.T) {
	d := evenParityDTA()
	c := d.Complement()
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		s := randShape(rng, 5)
		if d.Accept[runDTA(d, s)] == c.Accept[runDTA(c, s)] {
			t.Fatal("complement agrees with original")
		}
	}
	// d ∧ ¬d ≡ false; d ∨ ¬d ≡ true.
	conj := Product(d, c, func(a, b bool) bool { return a && b })
	disj := Product(d, c, func(a, b bool) bool { return a || b })
	for i := 0; i < 100; i++ {
		s := randShape(rng, 5)
		if conj.Accept[runDTA(conj, s)] {
			t.Fatal("contradiction accepted")
		}
		if !disj.Accept[runDTA(disj, s)] {
			t.Fatal("tautology rejected")
		}
	}
}

func TestDTAMinimize(t *testing.T) {
	// Build a redundant automaton: parity with duplicated states.
	d := NewDTA(4, 1, 1)
	d.LeafTrans[0] = 0
	for q1 := 0; q1 < 4; q1++ {
		for q2 := 0; q2 < 4; q2++ {
			d.SetTrans(q1, q2, 0, (q1%2+q2%2+1)%2*2) // lands in {0, 2}
		}
	}
	d.Accept[0] = true
	d.Accept[1] = true // unreachable
	m := d.Minimize()
	if m.NumStates != 2 {
		t.Errorf("minimized to %d states, want 2", m.NumStates)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		s := randShape(rng, 5)
		if d.Accept[runDTA(d, s)] != m.Accept[runDTA(m, s)] {
			t.Fatal("minimization changed the language")
		}
	}
}

func TestDTAEmptiness(t *testing.T) {
	d := evenParityDTA()
	if d.IsEmpty() {
		t.Error("parity automaton is nonempty")
	}
	none := NewDTA(1, 1, 1)
	none.LeafTrans[0] = 0
	none.SetTrans(0, 0, 0, 0)
	if !none.IsEmpty() {
		t.Error("rejecting automaton must be empty")
	}
	// Accepting state unreachable via leaf side only: accept state 1 is
	// never produced.
	unreach := NewDTA(2, 1, 1)
	unreach.LeafTrans[0] = 0
	for q1 := 0; q1 < 2; q1++ {
		for q2 := 0; q2 < 2; q2++ {
			unreach.SetTrans(q1, q2, 0, 0)
		}
	}
	unreach.Accept[1] = true
	if !unreach.IsEmpty() {
		t.Error("unreachable accept state should leave language empty")
	}
}

func TestNTADeterminize(t *testing.T) {
	// NTA: guesses whether a ⊥ leaf is "chosen"; accepts if the root
	// ends in the chosen-propagating state via left spine.
	n := NewNTA(2, 1, 1)
	n.LeafTrans[0] = []int{0, 1} // leaf may be plain(0) or chosen(1)
	for q1 := 0; q1 < 2; q1++ {
		for q2 := 0; q2 < 2; q2++ {
			// Propagate chosen only from the left child.
			n.AddTrans(q1, q2, 0, q1)
		}
	}
	n.Accept[1] = true
	d := n.Determinize()
	// Every tree accepts (the leftmost leaf can always be chosen).
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 50; i++ {
		s := randShape(rng, 4)
		if !d.Accept[runDTA(d, s)] {
			t.Fatal("determinized NTA rejects")
		}
	}
}

func TestProjectSymbols(t *testing.T) {
	// DTA over 2 symbols: accepts iff some node has symbol 1.
	d := NewDTA(2, 2, 1)
	d.LeafTrans[0] = 0
	for q1 := 0; q1 < 2; q1++ {
		for q2 := 0; q2 < 2; q2++ {
			for sym := 0; sym < 2; sym++ {
				r := 0
				if q1 == 1 || q2 == 1 || sym == 1 {
					r = 1
				}
				d.SetTrans(q1, q2, sym, r)
			}
		}
	}
	d.Accept[1] = true
	// Project both symbols onto a single new symbol: now every internal
	// node may be 0 or 1, so any nonempty tree accepts.
	n := ProjectSymbols(d, [][]int{{0, 1}}, [][]int{{0}})
	dd := n.Determinize()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		s := randShape(rng, 4)
		want := s != nil // at least one internal node
		if dd.Accept[runDTA(dd, s)] != want {
			t.Fatal("projection wrong")
		}
	}
}
