// Package automata provides the automata substrates of the paper:
// finite automata on words (used for caterpillar expressions, Lemma
// 5.9, and the regular languages of strong unranked query automata,
// Definition 4.12) and bottom-up tree automata on binary trees in the
// firstchild/nextsibling encoding (used to realize the classical
// MSO-to-automaton translation behind Proposition 2.1 and the
// constructive proof of Theorem 4.4).
//
// Symbols are dense nonnegative integers; callers maintain their own
// alphabet tables.
package automata

// NFA is a nondeterministic finite automaton with ε-transitions over
// symbols 0..NumSymbols-1.
type NFA struct {
	NumStates  int
	NumSymbols int
	Start      int
	Accept     []bool
	eps        [][]int
	trans      []map[int][]int
}

// NewNFA creates an NFA with the given number of states and symbols;
// state 0 is the start state unless changed.
func NewNFA(states, symbols int) *NFA {
	n := &NFA{
		NumStates:  states,
		NumSymbols: symbols,
		Accept:     make([]bool, states),
		eps:        make([][]int, states),
		trans:      make([]map[int][]int, states),
	}
	return n
}

// AddState appends a fresh state and returns its id.
func (n *NFA) AddState() int {
	n.NumStates++
	n.Accept = append(n.Accept, false)
	n.eps = append(n.eps, nil)
	n.trans = append(n.trans, nil)
	return n.NumStates - 1
}

// AddTransition adds q --sym--> r.
func (n *NFA) AddTransition(q, sym, r int) {
	if n.trans[q] == nil {
		n.trans[q] = map[int][]int{}
	}
	n.trans[q][sym] = append(n.trans[q][sym], r)
}

// AddEps adds an ε-transition q --> r.
func (n *NFA) AddEps(q, r int) { n.eps[q] = append(n.eps[q], r) }

// epsClosure expands the set (as a bitmap) with ε-reachability.
func (n *NFA) epsClosure(set []bool) {
	stack := make([]int, 0, n.NumStates)
	for q, in := range set {
		if in {
			stack = append(stack, q)
		}
	}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, r := range n.eps[q] {
			if !set[r] {
				set[r] = true
				stack = append(stack, r)
			}
		}
	}
}

// AcceptsWord runs the NFA on a word.
func (n *NFA) AcceptsWord(word []int) bool {
	cur := make([]bool, n.NumStates)
	cur[n.Start] = true
	n.epsClosure(cur)
	for _, sym := range word {
		next := make([]bool, n.NumStates)
		for q, in := range cur {
			if !in || n.trans[q] == nil {
				continue
			}
			for _, r := range n.trans[q][sym] {
				next[r] = true
			}
		}
		n.epsClosure(next)
		cur = next
	}
	for q, in := range cur {
		if in && n.Accept[q] {
			return true
		}
	}
	return false
}

// Step advances a state bitmap by one symbol in place-free style,
// returning the new bitmap (ε-closed). Useful for product reachability
// over graphs (caterpillar evaluation).
func (n *NFA) Step(cur []bool, sym int) []bool {
	next := make([]bool, n.NumStates)
	for q, in := range cur {
		if !in || n.trans[q] == nil {
			continue
		}
		for _, r := range n.trans[q][sym] {
			next[r] = true
		}
	}
	n.epsClosure(next)
	return next
}

// StartSet returns the ε-closed start bitmap.
func (n *NFA) StartSet() []bool {
	cur := make([]bool, n.NumStates)
	cur[n.Start] = true
	n.epsClosure(cur)
	return cur
}

// Transitions iterates all non-ε transitions, calling f(q, sym, r).
func (n *NFA) Transitions(f func(q, sym, r int)) {
	for q, m := range n.trans {
		for sym, rs := range m {
			for _, r := range rs {
				f(q, sym, r)
			}
		}
	}
}

// EpsTransitions iterates all ε-transitions, calling f(q, r).
func (n *NFA) EpsTransitions(f func(q, r int)) {
	for q, rs := range n.eps {
		for _, r := range rs {
			f(q, r)
		}
	}
}

// DFA is a complete deterministic finite automaton: Trans[q][sym] is
// always a valid state.
type DFA struct {
	NumStates  int
	NumSymbols int
	Start      int
	Accept     []bool
	Trans      [][]int
}

// Determinize performs the subset construction, producing a complete
// DFA (the empty subset is the sink).
func (n *NFA) Determinize() *DFA {
	key := func(set []bool) string {
		b := make([]byte, (n.NumStates+7)/8)
		for q, in := range set {
			if in {
				b[q/8] |= 1 << (q % 8)
			}
		}
		return string(b)
	}
	d := &DFA{NumSymbols: n.NumSymbols}
	ids := map[string]int{}
	var sets [][]bool
	intern := func(set []bool) int {
		k := key(set)
		if id, ok := ids[k]; ok {
			return id
		}
		id := len(sets)
		ids[k] = id
		sets = append(sets, set)
		acc := false
		for q, in := range set {
			if in && n.Accept[q] {
				acc = true
				break
			}
		}
		d.Accept = append(d.Accept, acc)
		d.Trans = append(d.Trans, make([]int, n.NumSymbols))
		return id
	}
	start := intern(n.StartSet())
	d.Start = start
	for work := 0; work < len(sets); work++ {
		for sym := 0; sym < n.NumSymbols; sym++ {
			d.Trans[work][sym] = intern(n.Step(sets[work], sym))
		}
	}
	d.NumStates = len(sets)
	return d
}

// AcceptsWord runs the DFA on a word.
func (d *DFA) AcceptsWord(word []int) bool {
	q := d.Start
	for _, sym := range word {
		q = d.Trans[q][sym]
	}
	return d.Accept[q]
}

// Complement flips acceptance (the DFA is complete by construction).
func (d *DFA) Complement() *DFA {
	c := &DFA{NumStates: d.NumStates, NumSymbols: d.NumSymbols, Start: d.Start,
		Accept: make([]bool, d.NumStates), Trans: d.Trans}
	for i, a := range d.Accept {
		c.Accept[i] = !a
	}
	return c
}

// Intersect builds the product automaton accepting L(d) ∩ L(e).
func (d *DFA) Intersect(e *DFA) *DFA {
	if d.NumSymbols != e.NumSymbols {
		panic("automata: alphabet mismatch")
	}
	p := &DFA{NumSymbols: d.NumSymbols}
	ids := map[[2]int]int{}
	var pairs [][2]int
	intern := func(a, b int) int {
		k := [2]int{a, b}
		if id, ok := ids[k]; ok {
			return id
		}
		id := len(pairs)
		ids[k] = id
		pairs = append(pairs, k)
		p.Accept = append(p.Accept, d.Accept[a] && e.Accept[b])
		p.Trans = append(p.Trans, make([]int, p.NumSymbols))
		return id
	}
	p.Start = intern(d.Start, e.Start)
	for w := 0; w < len(pairs); w++ {
		a, b := pairs[w][0], pairs[w][1]
		for sym := 0; sym < p.NumSymbols; sym++ {
			p.Trans[w][sym] = intern(d.Trans[a][sym], e.Trans[b][sym])
		}
	}
	p.NumStates = len(pairs)
	return p
}

// IsEmpty reports whether no accepting state is reachable.
func (d *DFA) IsEmpty() bool {
	seen := make([]bool, d.NumStates)
	stack := []int{d.Start}
	seen[d.Start] = true
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if d.Accept[q] {
			return false
		}
		for _, r := range d.Trans[q] {
			if !seen[r] {
				seen[r] = true
				stack = append(stack, r)
			}
		}
	}
	return true
}

// SomeWord returns a shortest accepted word, or nil, false if the
// language is empty. Useful for containment counterexamples.
func (d *DFA) SomeWord() ([]int, bool) {
	type pred struct{ state, sym int }
	from := make([]pred, d.NumStates)
	seen := make([]bool, d.NumStates)
	queue := []int{d.Start}
	seen[d.Start] = true
	from[d.Start] = pred{-1, -1}
	for len(queue) > 0 {
		q := queue[0]
		queue = queue[1:]
		if d.Accept[q] {
			var word []int
			for cur := q; from[cur].state != -1; cur = from[cur].state {
				word = append(word, from[cur].sym)
			}
			// reverse
			for i, j := 0, len(word)-1; i < j; i, j = i+1, j-1 {
				word[i], word[j] = word[j], word[i]
			}
			return word, true
		}
		for sym, r := range d.Trans[q] {
			if !seen[r] {
				seen[r] = true
				from[r] = pred{q, sym}
				queue = append(queue, r)
			}
		}
	}
	return nil, false
}

// Contained reports whether L(d) ⊆ L(e), returning a counterexample
// word otherwise.
func Contained(d, e *DFA) (bool, []int) {
	inter := d.Intersect(e.Complement())
	if w, ok := inter.SomeWord(); ok {
		return false, w
	}
	return true, nil
}

// WordNFAFromString builds an NFA accepting exactly the given word
// (used for the uv*w languages of Definition 4.12, Proposition 4.13).
func WordNFAFromString(word []int, symbols int) *NFA {
	n := NewNFA(len(word)+1, symbols)
	for i, sym := range word {
		n.AddTransition(i, sym, i+1)
	}
	n.Accept[len(word)] = true
	return n
}

// UVWLanguage represents a constant-density regular language u v* w
// (Proposition 4.13: every regular language of constant density is a
// finite union of such expressions).
type UVW struct {
	U, V, W []int
}

// Matches reports whether word ∈ u v* w.
func (l UVW) Matches(word []int) bool {
	n := len(word)
	fixed := len(l.U) + len(l.W)
	if n < fixed {
		return false
	}
	rep := n - fixed
	if len(l.V) == 0 {
		if rep != 0 {
			return false
		}
	} else if rep%len(l.V) != 0 {
		return false
	}
	pos := 0
	for _, s := range l.U {
		if word[pos] != s {
			return false
		}
		pos++
	}
	for ; pos < n-len(l.W); pos++ {
		if word[pos] != l.V[(pos-len(l.U))%len(l.V)] {
			return false
		}
	}
	for _, s := range l.W {
		if word[pos] != s {
			return false
		}
		pos++
	}
	return true
}

// WordOfLength returns the unique word of the given length in u v* w,
// if any (constant-density languages have at most d words per length;
// for a single uv*w expression it is unique).
func (l UVW) WordOfLength(n int) ([]int, bool) {
	fixed := len(l.U) + len(l.W)
	if n < fixed {
		return nil, false
	}
	rep := n - fixed
	if len(l.V) == 0 {
		if rep != 0 {
			return nil, false
		}
	} else if rep%len(l.V) != 0 {
		return nil, false
	}
	word := make([]int, 0, n)
	word = append(word, l.U...)
	for len(word) < n-len(l.W) {
		word = append(word, l.V[(len(word)-len(l.U))%len(l.V)])
	}
	word = append(word, l.W...)
	return word, true
}
