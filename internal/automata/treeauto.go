package automata

import (
	"fmt"
	"sort"
)

// Bottom-up tree automata over full binary trees. Internal nodes carry
// symbols 0..NumSymbols-1 and have exactly two children; leaves carry
// leaf symbols 0..NumLeafSymbols-1. This matches the firstchild/
// nextsibling binary encoding of unranked trees (Figure 1 of the
// paper), where every original node becomes an internal node and
// missing pointers become ⊥ leaves.

// transKey packs (q1, q2, sym) into a map key. States and symbols are
// limited to 2^21, ample for the constructions here.
func transKey(q1, q2, sym int) uint64 {
	return uint64(q1)<<42 | uint64(q2)<<21 | uint64(sym)
}

// DTA is a complete deterministic bottom-up tree automaton: for every
// pair of states and every symbol, Step yields a state; for every leaf
// symbol, LeafState yields a state.
type DTA struct {
	NumStates      int
	NumSymbols     int
	NumLeafSymbols int
	Accept         []bool
	LeafTrans      []int
	trans          map[uint64]int
}

// NewDTA allocates a DTA shell; callers must define all transitions
// before use (completeness is checked lazily by Step panicking).
func NewDTA(states, symbols, leafSymbols int) *DTA {
	return &DTA{
		NumStates:      states,
		NumSymbols:     symbols,
		NumLeafSymbols: leafSymbols,
		Accept:         make([]bool, states),
		LeafTrans:      make([]int, leafSymbols),
		trans:          make(map[uint64]int),
	}
}

// SetTrans defines δ(q1, q2, sym) = r.
func (d *DTA) SetTrans(q1, q2, sym, r int) { d.trans[transKey(q1, q2, sym)] = r }

// Step applies δ(q1, q2, sym).
func (d *DTA) Step(q1, q2, sym int) int {
	r, ok := d.trans[transKey(q1, q2, sym)]
	if !ok {
		panic(fmt.Sprintf("automata: incomplete DTA: no transition (%d,%d,%d)", q1, q2, sym))
	}
	return r
}

// LeafState returns the state assigned to a leaf symbol.
func (d *DTA) LeafState(sym int) int { return d.LeafTrans[sym] }

// NumTransitions returns the number of stored internal transitions
// (a size measure for the MSO blow-up experiments).
func (d *DTA) NumTransitions() int { return len(d.trans) }

// Complement flips acceptance. Valid because DTAs are complete.
func (d *DTA) Complement() *DTA {
	c := &DTA{NumStates: d.NumStates, NumSymbols: d.NumSymbols,
		NumLeafSymbols: d.NumLeafSymbols, LeafTrans: d.LeafTrans,
		trans: d.trans, Accept: make([]bool, d.NumStates)}
	for i, a := range d.Accept {
		c.Accept[i] = !a
	}
	return c
}

// Product builds the synchronous product of two DTAs over the same
// alphabet, with acceptance combined by comb (e.g. a && b for ∧,
// a || b for ∨). Only reachable state pairs are materialized.
func Product(d, e *DTA, comb func(a, b bool) bool) *DTA {
	if d.NumSymbols != e.NumSymbols || d.NumLeafSymbols != e.NumLeafSymbols {
		panic("automata: alphabet mismatch in Product")
	}
	p := NewDTA(0, d.NumSymbols, e.NumLeafSymbols)
	ids := map[[2]int]int{}
	var pairs [][2]int
	intern := func(a, b int) int {
		k := [2]int{a, b}
		if id, ok := ids[k]; ok {
			return id
		}
		id := len(pairs)
		ids[k] = id
		pairs = append(pairs, k)
		p.Accept = append(p.Accept, comb(d.Accept[a], e.Accept[b]))
		return id
	}
	for sym := 0; sym < d.NumLeafSymbols; sym++ {
		p.LeafTrans[sym] = intern(d.LeafTrans[sym], e.LeafTrans[sym])
	}
	for w := 0; w < len(pairs); w++ {
		for v := 0; v <= w; v++ {
			for sym := 0; sym < p.NumSymbols; sym++ {
				a1, b1 := pairs[w][0], pairs[w][1]
				a2, b2 := pairs[v][0], pairs[v][1]
				p.SetTrans(w, v, sym, intern(d.Step(a1, a2, sym), e.Step(b1, b2, sym)))
				if v != w {
					p.SetTrans(v, w, sym, intern(d.Step(a2, a1, sym), e.Step(b2, b1, sym)))
				}
			}
		}
	}
	p.NumStates = len(pairs)
	return p
}

// ExpandSymbols re-alphabets a DTA deterministically: new symbol s
// behaves exactly like old symbol oldOf[s] (and new leaf symbol s like
// leafOldOf[s]). Used for cylindrification — adding or dropping
// marking bits that the automaton ignores.
func (d *DTA) ExpandSymbols(oldOf []int, leafOldOf []int) *DTA {
	e := NewDTA(d.NumStates, len(oldOf), len(leafOldOf))
	copy(e.Accept, d.Accept)
	for sym, old := range leafOldOf {
		e.LeafTrans[sym] = d.LeafTrans[old]
	}
	post := make([][]int, d.NumSymbols)
	for sym, old := range oldOf {
		post[old] = append(post[old], sym)
	}
	for k, r := range d.trans {
		q1 := int(k >> 42)
		q2 := int(k >> 21 & (1<<21 - 1))
		old := int(k & (1<<21 - 1))
		for _, sym := range post[old] {
			e.SetTrans(q1, q2, sym, r)
		}
	}
	return e
}

// NTA is a nondeterministic bottom-up tree automaton.
type NTA struct {
	NumStates      int
	NumSymbols     int
	NumLeafSymbols int
	Accept         []bool
	LeafTrans      [][]int
	trans          map[uint64][]int
}

// NewNTA allocates an NTA shell.
func NewNTA(states, symbols, leafSymbols int) *NTA {
	return &NTA{
		NumStates:      states,
		NumSymbols:     symbols,
		NumLeafSymbols: leafSymbols,
		Accept:         make([]bool, states),
		LeafTrans:      make([][]int, leafSymbols),
		trans:          map[uint64][]int{},
	}
}

// AddTrans adds r to δ(q1, q2, sym).
func (n *NTA) AddTrans(q1, q2, sym, r int) {
	k := transKey(q1, q2, sym)
	n.trans[k] = append(n.trans[k], r)
}

// Steps returns δ(q1, q2, sym) (possibly empty).
func (n *NTA) Steps(q1, q2, sym int) []int { return n.trans[transKey(q1, q2, sym)] }

// ProjectSymbols turns a DTA into an NTA over the same alphabet where
// each new symbol behaves as the union over pre[sym] of the old
// transitions. This realizes second-order quantification: projecting
// away a marking bit means pre[sym] = {sym with bit 0, sym with bit 1}.
func ProjectSymbols(d *DTA, pre [][]int, leafPre [][]int) *NTA {
	n := NewNTA(d.NumStates, len(pre), len(leafPre))
	copy(n.Accept, d.Accept)
	for sym, olds := range leafPre {
		seen := map[int]bool{}
		for _, o := range olds {
			q := d.LeafTrans[o]
			if !seen[q] {
				seen[q] = true
				n.LeafTrans[sym] = append(n.LeafTrans[sym], q)
			}
		}
	}
	// Transitions: enumerate the DTA's stored transitions; for each new
	// symbol whose preimage contains the old symbol, add the target.
	post := make([][]int, d.NumSymbols) // old symbol -> new symbols
	for sym, olds := range pre {
		for _, o := range olds {
			post[o] = append(post[o], sym)
		}
	}
	for k, r := range d.trans {
		q1 := int(k >> 42)
		q2 := int(k >> 21 & (1<<21 - 1))
		old := int(k & (1<<21 - 1))
		for _, sym := range post[old] {
			n.AddTrans(q1, q2, sym, r)
		}
	}
	return n
}

// Determinize performs the bottom-up subset construction, producing a
// complete DTA (the empty subset acts as the sink).
func (n *NTA) Determinize() *DTA {
	key := func(set []int) string {
		b := make([]byte, 0, len(set)*3)
		for _, q := range set {
			b = append(b, byte(q), byte(q>>8), byte(q>>16))
		}
		return string(b)
	}
	normalize := func(set []int) []int {
		sort.Ints(set)
		out := set[:0]
		for i, q := range set {
			if i == 0 || q != set[i-1] {
				out = append(out, q)
			}
		}
		return out
	}
	d := NewDTA(0, n.NumSymbols, n.NumLeafSymbols)
	ids := map[string]int{}
	var sets [][]int
	intern := func(set []int) int {
		set = normalize(set)
		k := key(set)
		if id, ok := ids[k]; ok {
			return id
		}
		id := len(sets)
		ids[k] = id
		sets = append(sets, set)
		acc := false
		for _, q := range set {
			if n.Accept[q] {
				acc = true
				break
			}
		}
		d.Accept = append(d.Accept, acc)
		return id
	}
	for sym := 0; sym < n.NumLeafSymbols; sym++ {
		d.LeafTrans[sym] = intern(append([]int(nil), n.LeafTrans[sym]...))
	}
	for w := 0; w < len(sets); w++ {
		for v := 0; v <= w; v++ {
			for sym := 0; sym < n.NumSymbols; sym++ {
				step := func(s1, s2 []int) int {
					var next []int
					for _, q1 := range s1 {
						for _, q2 := range s2 {
							next = append(next, n.Steps(q1, q2, sym)...)
						}
					}
					return intern(next)
				}
				d.SetTrans(w, v, sym, step(sets[w], sets[v]))
				if v != w {
					d.SetTrans(v, w, sym, step(sets[v], sets[w]))
				}
			}
		}
	}
	d.NumStates = len(sets)
	return d
}

// Trim restricts the DTA to states reachable from the leaf states
// (closing under the transition function) and renumbers. Acceptance
// and transitions among reachable states are preserved; the result is
// again complete over its state set.
func (d *DTA) Trim() *DTA {
	reach := map[int]bool{}
	var order []int
	add := func(q int) {
		if !reach[q] {
			reach[q] = true
			order = append(order, q)
		}
	}
	for _, q := range d.LeafTrans {
		add(q)
	}
	for w := 0; w < len(order); w++ {
		for v := 0; v <= w; v++ {
			for sym := 0; sym < d.NumSymbols; sym++ {
				add(d.Step(order[w], order[v], sym))
				add(d.Step(order[v], order[w], sym))
			}
		}
	}
	renum := map[int]int{}
	for i, q := range order {
		renum[q] = i
	}
	t := NewDTA(len(order), d.NumSymbols, d.NumLeafSymbols)
	for i, q := range order {
		t.Accept[i] = d.Accept[q]
	}
	for sym, q := range d.LeafTrans {
		t.LeafTrans[sym] = renum[q]
	}
	for w := 0; w < len(order); w++ {
		for v := 0; v < len(order); v++ {
			for sym := 0; sym < d.NumSymbols; sym++ {
				t.SetTrans(w, v, sym, renum[d.Step(order[w], order[v], sym)])
			}
		}
	}
	return t
}

// Minimize trims and then merges equivalent states by Moore-style
// partition refinement: states p, q are equivalent iff they are both
// accepting or both rejecting and for every symbol and every state r,
// δ(p,r,sym) ≡ δ(q,r,sym) and δ(r,p,sym) ≡ δ(r,q,sym).
func (d *DTA) Minimize() *DTA {
	t := d.Trim()
	block := make([]int, t.NumStates)
	for q := range block {
		if t.Accept[q] {
			block[q] = 1
		}
	}
	numBlocks := 2
	if t.NumStates == 0 {
		return t
	}
	for {
		sig := make([]string, t.NumStates)
		for q := 0; q < t.NumStates; q++ {
			b := make([]byte, 0, 2+t.NumStates*t.NumSymbols*2)
			b = append(b, byte(block[q]), byte(block[q]>>8))
			for r := 0; r < t.NumStates; r++ {
				for sym := 0; sym < t.NumSymbols; sym++ {
					x := block[t.Step(q, r, sym)]
					y := block[t.Step(r, q, sym)]
					b = append(b, byte(x), byte(x>>8), byte(y), byte(y>>8))
				}
			}
			sig[q] = string(b)
		}
		ids := map[string]int{}
		next := make([]int, t.NumStates)
		for q, s := range sig {
			id, ok := ids[s]
			if !ok {
				id = len(ids)
				ids[s] = id
			}
			next[q] = id
		}
		if len(ids) == numBlocks {
			block = next
			break
		}
		numBlocks = len(ids)
		block = next
	}
	m := NewDTA(numBlocks, t.NumSymbols, t.NumLeafSymbols)
	for q := 0; q < t.NumStates; q++ {
		m.Accept[block[q]] = t.Accept[q]
	}
	for sym, q := range t.LeafTrans {
		m.LeafTrans[sym] = block[q]
	}
	rep := make([]int, numBlocks)
	for i := range rep {
		rep[i] = -1
	}
	for q := 0; q < t.NumStates; q++ {
		if rep[block[q]] == -1 {
			rep[block[q]] = q
		}
	}
	for b1 := 0; b1 < numBlocks; b1++ {
		for b2 := 0; b2 < numBlocks; b2++ {
			for sym := 0; sym < t.NumSymbols; sym++ {
				m.SetTrans(b1, b2, sym, block[t.Step(rep[b1], rep[b2], sym)])
			}
		}
	}
	return m
}

// IsEmpty reports whether the DTA accepts no tree: no accepting state
// is reachable from the leaf states.
func (d *DTA) IsEmpty() bool {
	reach := map[int]bool{}
	var order []int
	add := func(q int) {
		if !reach[q] {
			reach[q] = true
			order = append(order, q)
		}
	}
	for _, q := range d.LeafTrans {
		add(q)
	}
	for w := 0; w < len(order); w++ {
		if d.Accept[order[w]] {
			return false
		}
		for v := 0; v <= w; v++ {
			for sym := 0; sym < d.NumSymbols; sym++ {
				add(d.Step(order[w], order[v], sym))
				add(d.Step(order[v], order[w], sym))
			}
		}
	}
	for _, q := range order {
		if d.Accept[q] {
			return false
		}
	}
	return true
}
