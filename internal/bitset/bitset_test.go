package bitset

import (
	"math/rand"
	"testing"
)

// boundarySizes are the domain sizes every property test sweeps: the
// empty arena, a single node, and the word boundaries where tail
// masking bugs live.
var boundarySizes = []int{0, 1, 7, 63, 64, 65, 127, 128, 129, 1000}

// randomSet draws a set with independent P(bit)=p alongside its
// map[int]bool reference model.
func randomSet(rng *rand.Rand, n int, p float64) (*Set, map[int]bool) {
	s := New(n)
	ref := map[int]bool{}
	for i := 0; i < n; i++ {
		if rng.Float64() < p {
			s.Add(i)
			ref[i] = true
		}
	}
	return s, ref
}

// checkAgainst verifies s against the reference model bit by bit plus
// through Count, Any, ForEach and AppendBits.
func checkAgainst(t *testing.T, s *Set, ref map[int]bool, what string) {
	t.Helper()
	for i := 0; i < s.Len(); i++ {
		if s.Has(i) != ref[i] {
			t.Fatalf("%s: bit %d = %v, reference %v", what, i, s.Has(i), ref[i])
		}
	}
	if s.Count() != len(ref) {
		t.Fatalf("%s: Count = %d, reference %d", what, s.Count(), len(ref))
	}
	if s.Any() != (len(ref) > 0) {
		t.Fatalf("%s: Any = %v, reference %v", what, s.Any(), len(ref) > 0)
	}
	prev := -1
	seen := 0
	s.ForEach(func(i int) {
		if i <= prev {
			t.Fatalf("%s: ForEach out of order: %d after %d", what, i, prev)
		}
		if !ref[i] {
			t.Fatalf("%s: ForEach visited %d, not in reference", what, i)
		}
		prev = i
		seen++
	})
	if seen != len(ref) {
		t.Fatalf("%s: ForEach visited %d bits, reference %d", what, seen, len(ref))
	}
	ids := s.AppendBits(nil)
	if len(ids) != len(ref) {
		t.Fatalf("%s: AppendBits returned %d ids, reference %d", what, len(ids), len(ref))
	}
	for _, id := range ids {
		if !ref[id] {
			t.Fatalf("%s: AppendBits returned %d, not in reference", what, id)
		}
	}
}

func TestBinaryOpsAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range boundarySizes {
		for trial := 0; trial < 20; trial++ {
			a, ra := randomSet(rng, n, 0.3)
			b, rb := randomSet(rng, n, 0.3)

			and := a.Clone()
			and.And(b)
			refAnd := map[int]bool{}
			for i := range ra {
				if rb[i] {
					refAnd[i] = true
				}
			}
			checkAgainst(t, and, refAnd, "And")

			andNot := a.Clone()
			andNot.AndNot(b)
			refAndNot := map[int]bool{}
			for i := range ra {
				if !rb[i] {
					refAndNot[i] = true
				}
			}
			checkAgainst(t, andNot, refAndNot, "AndNot")

			or := a.Clone()
			changed := or.Or(b)
			refOr := map[int]bool{}
			for i := range ra {
				refOr[i] = true
			}
			newBits := false
			for i := range rb {
				if !refOr[i] {
					newBits = true
				}
				refOr[i] = true
			}
			checkAgainst(t, or, refOr, "Or")
			if changed != newBits {
				t.Fatalf("Or reported changed=%v, reference %v (n=%d)", changed, newBits, n)
			}

			dst := a.Clone()
			diff := New(n)
			changed = dst.OrDiff(b, diff)
			checkAgainst(t, dst, refOr, "OrDiff union")
			refDiff := map[int]bool{}
			for i := range rb {
				if !ra[i] {
					refDiff[i] = true
				}
			}
			checkAgainst(t, diff, refDiff, "OrDiff delta")
			if changed != (len(refDiff) > 0) {
				t.Fatalf("OrDiff reported changed=%v, reference %v (n=%d)", changed, len(refDiff) > 0, n)
			}

			if !a.Equal(a.Clone()) {
				t.Fatalf("Equal(clone) = false (n=%d)", n)
			}
			if a.Equal(b) != mapsEqual(ra, rb) {
				t.Fatalf("Equal = %v, reference %v (n=%d)", a.Equal(b), mapsEqual(ra, rb), n)
			}
		}
	}
}

func mapsEqual(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !b[i] {
			return false
		}
	}
	return true
}

func TestFillAndTailMasking(t *testing.T) {
	for _, n := range boundarySizes {
		s := New(n)
		s.Fill()
		if s.Count() != n {
			t.Fatalf("Fill(n=%d).Count = %d", n, s.Count())
		}
		ref := map[int]bool{}
		for i := 0; i < n; i++ {
			ref[i] = true
		}
		checkAgainst(t, s, ref, "Fill")
		s.Clear()
		if s.Any() || s.Count() != 0 {
			t.Fatalf("Clear(n=%d) left bits", n)
		}
	}
}

func TestAddRemoveRandomWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range boundarySizes {
		if n == 0 {
			continue
		}
		s := New(n)
		ref := map[int]bool{}
		for step := 0; step < 500; step++ {
			i := rng.Intn(n)
			if rng.Intn(2) == 0 {
				s.Add(i)
				ref[i] = true
			} else {
				s.Remove(i)
				delete(ref, i)
			}
		}
		checkAgainst(t, s, ref, "Add/Remove walk")
	}
}

func TestAndGatherAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range boundarySizes {
		for trial := 0; trial < 20; trial++ {
			s, rs := randomSet(rng, n, 0.5)
			src, rsrc := randomSet(rng, n, 0.4)
			// A column mapping each node to another node or the -1
			// sentinel, like an arena navigation column.
			col := make([]int32, n)
			for i := range col {
				if rng.Float64() < 0.3 {
					col[i] = -1
				} else {
					col[i] = int32(rng.Intn(n))
				}
			}
			s.AndGather(col, src)
			ref := map[int]bool{}
			for i := range rs {
				if c := col[i]; c >= 0 && rsrc[int(c)] {
					ref[i] = true
				}
			}
			checkAgainst(t, s, ref, "AndGather")
		}
	}
}

func TestAddMatches32AgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, n := range boundarySizes {
		for trial := 0; trial < 20; trial++ {
			// Pre-existing bits must survive the OR-in.
			s, ref := randomSet(rng, n, 0.1)
			// A label-like column over a small symbol alphabet, sometimes
			// shorter than the domain.
			cn := n
			if rng.Float64() < 0.3 && n > 0 {
				cn = rng.Intn(n)
			}
			col := make([]int32, cn)
			for i := range col {
				col[i] = int32(rng.Intn(4))
			}
			want := int32(rng.Intn(4))
			s.AddMatches32(col, want)
			for i, v := range col {
				if v == want {
					ref[i] = true
				}
			}
			checkAgainst(t, s, ref, "AddMatches32")
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("column longer than the domain must panic")
		}
	}()
	New(10).AddMatches32(make([]int32, 11), 0)
}

func TestUpdateWordsFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, n := range boundarySizes {
		s, ref := randomSet(rng, n, 0.5)
		// Drop odd elements through the word kernel.
		s.UpdateWords(func(base int, w uint64) uint64 {
			var even uint64 = 0x5555555555555555
			if base%2 != 0 {
				panic("word base must be a multiple of 64")
			}
			return w & even
		})
		want := map[int]bool{}
		for i := range ref {
			if i%2 == 0 {
				want[i] = true
			}
		}
		checkAgainst(t, s, want, "UpdateWords")
	}
}

func TestDomainMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("And over mismatched domains did not panic")
		}
	}()
	New(64).And(New(65))
}

func TestCopyFromAndClear(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, n := range boundarySizes {
		a, ra := randomSet(rng, n, 0.5)
		b := New(n)
		b.CopyFrom(a)
		checkAgainst(t, b, ra, "CopyFrom")
		a.Clear()
		checkAgainst(t, b, ra, "CopyFrom independence")
	}
}
