// Package bitset implements dense bitmaps over a fixed node domain —
// the data representation behind the bitmap evaluation engine. A
// monadic predicate over the arena of n nodes is exactly a subset of
// {0, ..., n-1}, so a Set stores it in ⌈n/64⌉ machine words and the
// per-fact operations of a datalog fixpoint become word-parallel
// AND/OR/AND-NOT sweeps plus popcounts.
//
// All binary operations require both operands to share the same
// domain size; they panic otherwise (mixing domains is a programming
// error, never a data condition). The tail word beyond bit n-1 is kept
// zero by every operation, so Count and iteration never see ghost
// bits.
package bitset

import "math/bits"

const wordBits = 64

// Set is a dense bitmap over the domain {0, ..., n-1}. The zero value
// is an empty set over an empty domain; use New for a real domain.
type Set struct {
	n     int
	words []uint64
}

// New returns an empty set over the domain {0, ..., n-1}.
func New(n int) *Set {
	if n < 0 {
		n = 0
	}
	return &Set{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// Len returns the domain size n (not the number of set bits; see
// Count).
func (s *Set) Len() int { return s.n }

// Grow widens the domain to {0, ..., n-1}, preserving the set bits.
// Shrinking is not supported (n below the current domain is a no-op):
// live-document domains only ever append. It is the resize step of
// incremental maintenance — after a subtree insertion the maintained
// predicate bitmaps grow to the new |dom| with the new bits clear.
func (s *Set) Grow(n int) {
	if n <= s.n {
		return
	}
	words := (n + wordBits - 1) / wordBits
	if words > cap(s.words) {
		w := make([]uint64, words)
		copy(w, s.words)
		s.words = w
	} else {
		for len(s.words) < words {
			s.words = append(s.words, 0)
		}
	}
	s.n = n
}

// Add sets bit i. Out-of-domain indices panic via the slice bound.
func (s *Set) Add(i int) { s.words[i>>6] |= 1 << uint(i&63) }

// Remove clears bit i.
func (s *Set) Remove(i int) { s.words[i>>6] &^= 1 << uint(i&63) }

// Has reports whether bit i is set.
func (s *Set) Has(i int) bool { return s.words[i>>6]&(1<<uint(i&63)) != 0 }

// Clear removes every bit.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Fill sets every bit of the domain (masking the tail word so bits
// beyond n-1 stay zero).
func (s *Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.maskTail()
}

// maskTail zeroes the bits of the last word beyond the domain.
func (s *Set) maskTail() {
	if tail := uint(s.n & 63); tail != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << tail) - 1
	}
}

// Count returns the number of set bits (the cardinality of the set).
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether at least one bit is set.
func (s *Set) Any() bool {
	for _, w := range s.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := &Set{n: s.n, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites s with the contents of o (same domain required).
func (s *Set) CopyFrom(o *Set) {
	s.check(o)
	copy(s.words, o.words)
}

// check panics when o's domain differs from s's.
func (s *Set) check(o *Set) {
	if s.n != o.n {
		panic("bitset: domain size mismatch")
	}
}

// And intersects: s &= o.
func (s *Set) And(o *Set) {
	s.check(o)
	for i, w := range o.words {
		s.words[i] &= w
	}
}

// AndNot subtracts: s &^= o.
func (s *Set) AndNot(o *Set) {
	s.check(o)
	for i, w := range o.words {
		s.words[i] &^= w
	}
}

// Or unions o into s and reports whether s changed — the word-level
// fixpoint test: a semi-naive round that ORs every derived set without
// change has converged.
func (s *Set) Or(o *Set) bool {
	s.check(o)
	changed := false
	for i, w := range o.words {
		old := s.words[i]
		nw := old | w
		if nw != old {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// OrDiff unions o into s, accumulating the genuinely new bits (o minus
// the old s) into diff, and reports whether s changed. It is the delta
// step of semi-naive evaluation: head |= derived, delta |= derived \
// head, all in one word sweep.
func (s *Set) OrDiff(o, diff *Set) bool {
	s.check(o)
	s.check(diff)
	changed := false
	for i, w := range o.words {
		old := s.words[i]
		if nw := w &^ old; nw != 0 {
			s.words[i] = old | nw
			diff.words[i] |= nw
			changed = true
		}
	}
	return changed
}

// Equal reports whether s and o hold exactly the same bits over the
// same domain.
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n {
		return false
	}
	for i, w := range o.words {
		if s.words[i] != w {
			return false
		}
	}
	return true
}

// ForEach calls f for every set bit in increasing order.
func (s *Set) ForEach(f func(i int)) {
	for wi, w := range s.words {
		base := wi << 6
		for ; w != 0; w &= w - 1 {
			f(base + bits.TrailingZeros64(w))
		}
	}
}

// AppendBits appends the set bits in increasing order to ids and
// returns the extended slice — the bulk form of ForEach for result
// extraction.
func (s *Set) AppendBits(ids []int) []int {
	for wi, w := range s.words {
		base := wi << 6
		for ; w != 0; w &= w - 1 {
			ids = append(ids, base+bits.TrailingZeros64(w))
		}
	}
	return ids
}

// UpdateWords visits every nonzero word, replacing it with f's return
// value. base is the domain index of the word's bit 0. It is the
// word-at-a-time filter kernel the evaluation engine builds its
// column-gather operations on: f may clear bits of the word it is
// given (dropping elements) but must not set new ones.
func (s *Set) UpdateWords(f func(base int, w uint64) uint64) {
	for wi, w := range s.words {
		if w != 0 {
			s.words[wi] = f(wi<<6, w)
		}
	}
}

// AddMatches32 sets bit i for every index of col holding want:
// s |= { i : col[i] == want }. It is the bulk builder for per-symbol
// label bitmaps and node-class bitmaps — one pass over an arena
// column, accumulating each word locally so set bits cost no
// read-modify-write of the backing array. len(col) must not exceed
// the domain size.
func (s *Set) AddMatches32(col []int32, want int32) {
	if len(col) > s.n {
		panic("bitset: column longer than domain")
	}
	for base := 0; base < len(col); base += wordBits {
		end := base + wordBits
		if end > len(col) {
			end = len(col)
		}
		var w uint64
		for i, v := range col[base:end] {
			if v == want {
				w |= 1 << uint(i)
			}
		}
		s.words[base>>6] |= w
	}
}

// AndGather intersects s with the preimage of src under the column:
// s &= { v ∈ s : col[v] ≥ 0 and src.Has(col[v]) }. col maps each
// domain element to a target element or a negative sentinel (no
// target). It is the bulk membership test for a condition on a
// non-anchor variable: v survives iff the node it was mapped to
// satisfies the condition.
func (s *Set) AndGather(col []int32, src *Set) {
	s.UpdateWords(func(base int, w uint64) uint64 {
		for m := w; m != 0; m &= m - 1 {
			b := bits.TrailingZeros64(m)
			if c := col[base+b]; c < 0 || !src.Has(int(c)) {
				w &^= 1 << uint(b)
			}
		}
		return w
	})
}
