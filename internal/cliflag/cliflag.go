// Package cliflag holds the flag plumbing shared by the five command
// line tools, so every CLI spells the optimizer and engine options the
// same way: -O takes a level argument, -O0/-O1 are the conventional
// shorthands, and an unknown -engine value surfaces one error naming
// the valid engines.
package cliflag

import (
	"flag"
	"fmt"

	"mdlog/internal/eval"
	"mdlog/internal/opt"
)

// OptLevel registers -O, -O0 and -O1 on fs and returns a resolver to
// call after parsing. -O0/-O1 win over -O; giving both shorthands is
// an error.
func OptLevel(fs *flag.FlagSet) func() (opt.Level, error) {
	level := fs.String("O", "1", "optimizer level: 0 (off) or 1 (full)")
	o0 := fs.Bool("O0", false, "disable the compile-time optimizer (same as -O 0)")
	o1 := fs.Bool("O1", false, "full optimization (same as -O 1; the default)")
	return func() (opt.Level, error) {
		if *o0 && *o1 {
			return 0, fmt.Errorf("-O0 and -O1 are mutually exclusive")
		}
		if *o0 {
			return opt.O0, nil
		}
		if *o1 {
			return opt.O1, nil
		}
		return opt.ParseLevel(*level)
	}
}

// Engine registers -engine on fs and returns a resolver to call after
// parsing; an unknown value yields eval.ParseEngine's error, which
// names the valid options.
func Engine(fs *flag.FlagSet) func() (eval.Engine, error) {
	name := fs.String("engine", "linear", "datalog engine: linear, bitmap, seminaive, naive, lit")
	return func() (eval.Engine, error) { return eval.ParseEngine(*name) }
}
