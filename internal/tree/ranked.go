package tree

import "fmt"

// RankedAlphabet assigns a fixed arity to each symbol of a ranked
// alphabet Σ = Σ_0 ∪ ... ∪ Σ_K (Section 2 of the paper). Symbols of
// rank 0 label leaves.
type RankedAlphabet map[string]int

// MaxRank returns K, the maximum rank in the alphabet.
func (ra RankedAlphabet) MaxRank() int {
	k := 0
	for _, r := range ra {
		if r > k {
			k = r
		}
	}
	return k
}

// Validate checks that t conforms to the ranked alphabet: every node's
// label is in the alphabet and has exactly as many children as its rank.
func (ra RankedAlphabet) Validate(t *Tree) error {
	for _, n := range t.Nodes {
		r, ok := ra[n.Label]
		if !ok {
			return fmt.Errorf("tree: label %q not in ranked alphabet", n.Label)
		}
		if len(n.Children) != r {
			return fmt.Errorf("tree: node %d labeled %q has %d children, rank is %d",
				n.ID, n.Label, len(n.Children), r)
		}
	}
	return nil
}

// ChildK returns the k-th child (1-based, as in the child_k relations
// of τ_rk) of n, or nil if n has fewer than k children.
func ChildK(n *Node, k int) *Node {
	if k < 1 || k > len(n.Children) {
		return nil
	}
	return n.Children[k-1]
}

// BinaryEncoding converts an unranked tree into its binary encoding:
// the firstchild pointer of τ_ur becomes child_1 and the nextsibling
// pointer becomes child_2 (Figure 1 of the paper). Nodes without a
// firstchild (resp. nextsibling) get a leaf labeled BottomLabel in
// that position, so the result is a full binary tree over the ranked
// alphabet {a ↦ 2 for a ∈ Σ} ∪ {BottomLabel ↦ 0}.
func BinaryEncoding(t *Tree) *Tree {
	var enc func(n *Node) *Node
	bot := func() *Node { return &Node{Label: BottomLabel} }
	enc = func(n *Node) *Node {
		m := &Node{Label: n.Label, Text: n.Text}
		if fc := n.FirstChild(); fc != nil {
			m.Add(enc(fc))
		} else {
			m.Add(bot())
		}
		if ns := n.NextSibling(); ns != nil {
			m.Add(enc(ns))
		} else {
			m.Add(bot())
		}
		return m
	}
	return NewTree(enc(t.Root))
}

// BottomLabel is the reserved label of the padding leaves introduced
// by BinaryEncoding. It is assumed not to occur in source alphabets.
const BottomLabel = "#bot"

// DecodeBinary inverts BinaryEncoding: it reads a full binary tree in
// firstchild/nextsibling form and reconstructs the unranked original.
// It returns an error if the input is not a well-formed encoding (for
// example, if the root has a nextsibling).
func DecodeBinary(t *Tree) (*Tree, error) {
	if t.Root.Label == BottomLabel {
		return nil, fmt.Errorf("tree: encoding root is %s", BottomLabel)
	}
	if len(t.Root.Children) != 2 {
		return nil, fmt.Errorf("tree: encoding nodes must have exactly 2 children")
	}
	if t.Root.Children[1].Label != BottomLabel {
		return nil, fmt.Errorf("tree: encoding root has a nextsibling")
	}
	var dec func(n *Node) ([]*Node, error)
	// dec decodes n and its nextsibling chain into a sibling list.
	dec = func(n *Node) ([]*Node, error) {
		if n.Label == BottomLabel {
			if len(n.Children) != 0 {
				return nil, fmt.Errorf("tree: %s node has children", BottomLabel)
			}
			return nil, nil
		}
		if len(n.Children) != 2 {
			return nil, fmt.Errorf("tree: encoding node %q lacks 2 children", n.Label)
		}
		m := &Node{Label: n.Label, Text: n.Text}
		kids, err := dec(n.Children[0])
		if err != nil {
			return nil, err
		}
		m.Add(kids...)
		rest, err := dec(n.Children[1])
		if err != nil {
			return nil, err
		}
		return append([]*Node{m}, rest...), nil
	}
	list, err := dec(t.Root)
	if err != nil {
		return nil, err
	}
	if len(list) != 1 {
		return nil, fmt.Errorf("tree: encoding decodes to %d roots", len(list))
	}
	return NewTree(list[0]), nil
}
