package tree

import (
	"math/rand"
	"testing"
)

func TestSymbols(t *testing.T) {
	s := NewSymbols()
	a := s.Intern("a")
	b := s.Intern("b")
	if a == b {
		t.Fatal("distinct labels share an id")
	}
	if s.Intern("a") != a {
		t.Error("re-intern changed id")
	}
	if s.ID("a") != a || s.ID("zzz") != -1 {
		t.Error("ID lookup wrong")
	}
	if s.Name(a) != "a" || s.Name(b) != "b" {
		t.Error("Name lookup wrong")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
}

// checkArenaMatches verifies every arena column against the pointer view.
func checkArenaMatches(t *testing.T, tr *Tree, a *Arena) {
	t.Helper()
	if a.Len() != tr.Size() {
		t.Fatalf("arena len %d, tree size %d", a.Len(), tr.Size())
	}
	id := func(n *Node) int32 {
		if n == nil {
			return NoNode
		}
		return int32(n.ID)
	}
	for _, n := range tr.Nodes {
		v := int32(n.ID)
		if a.LabelName(v) != n.Label {
			t.Errorf("node %d: label %q vs %q", v, a.LabelName(v), n.Label)
		}
		if a.Text(v) != n.Text {
			t.Errorf("node %d: text %q vs %q", v, a.Text(v), n.Text)
		}
		if a.Parent[v] != id(n.Parent) {
			t.Errorf("node %d: parent %d vs %d", v, a.Parent[v], id(n.Parent))
		}
		if a.FirstChild[v] != id(n.FirstChild()) {
			t.Errorf("node %d: firstchild %d vs %d", v, a.FirstChild[v], id(n.FirstChild()))
		}
		if a.LastChild[v] != id(n.LastChild()) {
			t.Errorf("node %d: lastchild %d vs %d", v, a.LastChild[v], id(n.LastChild()))
		}
		if a.NextSibling[v] != id(n.NextSibling()) {
			t.Errorf("node %d: nextsibling %d vs %d", v, a.NextSibling[v], id(n.NextSibling()))
		}
		if a.PrevSibling[v] != id(n.PrevSibling()) {
			t.Errorf("node %d: prevsibling %d vs %d", v, a.PrevSibling[v], id(n.PrevSibling()))
		}
		if int(a.ChildIdx[v]) != maxInt(n.childIndex(), 0) {
			t.Errorf("node %d: childidx %d vs %d", v, a.ChildIdx[v], n.childIndex())
		}
		if int(a.NumChildren(v)) != len(n.Children) {
			t.Errorf("node %d: numchildren %d vs %d", v, a.NumChildren(v), len(n.Children))
		}
		for k := 1; k <= len(n.Children)+1; k++ {
			want := NoNode
			if k <= len(n.Children) {
				want = int32(n.Children[k-1].ID)
			}
			if got := a.ChildK(v, k); got != want {
				t.Errorf("node %d: childK(%d) = %d, want %d", v, k, got, want)
			}
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestArenaFromNodes(t *testing.T) {
	tr := MustParse("a(b,c(d,e),f)")
	a := tr.Arena()
	checkArenaMatches(t, tr, a)
	if tr.Arena() != a {
		t.Error("arena not memoized")
	}
	// Reindex drops the memoized arena.
	tr.Root.Add(&Node{Label: "g"})
	tr.Reindex()
	b := tr.Arena()
	if b == a {
		t.Error("stale arena after Reindex")
	}
	checkArenaMatches(t, tr, b)
}

func TestArenaBuilderRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, size := range []int{1, 2, 17, 300} {
		tr := Random(rng, RandomOptions{Labels: []string{"a", "b", "c"}, Size: size, MaxChildren: 6})
		// Rebuild via the streaming builder in preorder.
		b := NewArenaBuilder()
		b.Grow(size)
		var walk func(n *Node)
		walk = func(n *Node) {
			b.Open(n.Label)
			for _, c := range n.Children {
				walk(c)
			}
			b.Close()
		}
		walk(tr.Root)
		a := b.Finish()
		checkArenaMatches(t, tr, a)

		// The pointer view materialized from the arena is the same tree.
		view := FromArena(a)
		if !tr.Equal(view) {
			t.Fatalf("size %d: view differs from source", size)
		}
		checkArenaMatches(t, view, view.Arena())
		// View navigation is consistent without Reindex.
		for _, n := range view.Nodes {
			if ns := n.NextSibling(); ns != nil && ns.PrevSibling() != n {
				t.Fatalf("sibling links broken at %d", n.ID)
			}
		}
	}
}

func TestArenaBuilderTextAttrs(t *testing.T) {
	b := NewArenaBuilder()
	b.Open("#document")
	p := b.Open("p")
	b.SetAttrs(p, map[string]string{"class": "x"})
	txt := b.TextNode("hello")
	b.AppendText(txt, " world")
	b.Close()
	a := b.Finish()
	tr := FromArena(a)
	pn := tr.Root.Children[0]
	if pn.Label != "p" || pn.Attrs["class"] != "x" {
		t.Errorf("p = %v %v", pn.Label, pn.Attrs)
	}
	if tn := pn.Children[0]; tn.Label != "#text" || tn.Text != "hello world" {
		t.Errorf("text = %q", tn.Text)
	}
	if b2 := NewArenaBuilder(); b2.Depth() != 0 {
		t.Error("fresh builder depth")
	}
}

func TestArenaBuilderOpenLabel(t *testing.T) {
	b := NewArenaBuilder()
	b.Open("html")
	b.Open("body")
	b.Open("p")
	if b.Depth() != 3 {
		t.Fatalf("depth = %d", b.Depth())
	}
	if b.a.Syms.Name(b.OpenLabel(0)) != "p" || b.a.Syms.Name(b.OpenLabel(2)) != "html" {
		t.Error("OpenLabel wrong")
	}
}

func TestChildIndexWideTree(t *testing.T) {
	// Wide node: sibling navigation must not scan (smoke: correctness;
	// the benchmark suite measures the asymptotics).
	tr := Flat(5000, "a")
	for i, c := range tr.Root.Children {
		if got := c.childIndex(); got != i {
			t.Fatalf("childIndex(%d) = %d", i, got)
		}
	}
	last := tr.Root.Children[len(tr.Root.Children)-1]
	if !last.IsLastSibling() || last.NextSibling() != nil {
		t.Error("last sibling wrong")
	}
}
