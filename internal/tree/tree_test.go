package tree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"a",
		"a(b)",
		"a(b,c)",
		"a(b,c(d,e),f)",
		"html(head(title),body(div(p,p),div))",
	}
	for _, src := range cases {
		tr, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if got := tr.String(); got != src {
			t.Errorf("round trip %q -> %q", src, got)
		}
	}
}

func TestParseWhitespaceAndErrors(t *testing.T) {
	tr, err := Parse(" a ( b , c ) ")
	if err != nil {
		t.Fatalf("Parse with spaces: %v", err)
	}
	if tr.String() != "a(b,c)" {
		t.Errorf("got %q", tr.String())
	}
	for _, bad := range []string{"", "(", "a(", "a(b", "a(b,)", "a)b", "a b"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q): expected error", bad)
		}
	}
}

func TestDocumentOrderIDs(t *testing.T) {
	// The tree of Example 2.5 / Figure 1: six nodes all labeled a.
	tr := MustParse("a(a,a(a,a),a)")
	if tr.Size() != 6 {
		t.Fatalf("size = %d", tr.Size())
	}
	// Preorder: n1=root, n2, n3, n4, n5, n6 per the paper's Figure 1.
	for i, n := range tr.Nodes {
		if n.ID != i {
			t.Errorf("node %d has ID %d", i, n.ID)
		}
	}
	n := tr.Nodes
	if n[0].Parent != nil || n[1].Parent != n[0] || n[2].Parent != n[0] ||
		n[3].Parent != n[2] || n[4].Parent != n[2] || n[5].Parent != n[0] {
		t.Error("parent pointers wrong")
	}
}

func TestNavigation(t *testing.T) {
	tr := MustParse("a(b,c(d,e),f)")
	root := tr.Root
	b, c, f := root.Children[0], root.Children[1], root.Children[2]
	d, e := c.Children[0], c.Children[1]

	if root.FirstChild() != b || c.FirstChild() != d {
		t.Error("FirstChild wrong")
	}
	if root.LastChild() != f || c.LastChild() != e {
		t.Error("LastChild wrong")
	}
	if b.NextSibling() != c || c.NextSibling() != f || f.NextSibling() != nil {
		t.Error("NextSibling wrong")
	}
	if c.PrevSibling() != b || b.PrevSibling() != nil {
		t.Error("PrevSibling wrong")
	}
	if !root.IsRoot() || b.IsRoot() {
		t.Error("IsRoot wrong")
	}
	if !b.IsLeaf() || c.IsLeaf() {
		t.Error("IsLeaf wrong")
	}
	if !f.IsLastSibling() || c.IsLastSibling() || root.IsLastSibling() {
		t.Error("IsLastSibling wrong (root must not be a last sibling)")
	}
	if !b.IsFirstSibling() || c.IsFirstSibling() || root.IsFirstSibling() {
		t.Error("IsFirstSibling wrong")
	}
	if root.Children[1].childIndex() != 1 || root.childIndex() != -1 {
		t.Error("childIndex wrong")
	}
}

func TestTreeStats(t *testing.T) {
	tr := MustParse("a(b,c(d,e),f)")
	if tr.MaxRank() != 3 {
		t.Errorf("MaxRank = %d", tr.MaxRank())
	}
	if tr.Depth() != 2 {
		t.Errorf("Depth = %d", tr.Depth())
	}
	labels := tr.Labels()
	want := []string{"a", "b", "c", "d", "e", "f"}
	if len(labels) != len(want) {
		t.Fatalf("Labels = %v", labels)
	}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("Labels = %v", labels)
		}
	}
}

func TestCloneEqual(t *testing.T) {
	tr := MustParse("a(b,c(d,e),f)")
	cp := tr.Clone()
	if !tr.Equal(cp) {
		t.Error("clone not equal")
	}
	cp.Root.Children[0].Label = "x"
	if tr.Equal(cp) {
		t.Error("mutation should break equality")
	}
	if tr.Root.Children[0].Label != "b" {
		t.Error("clone shares nodes with original")
	}
}

// TestFigure1Encoding reproduces Figure 1: the binary encoding of the
// unranked tree via firstchild (child_1) and nextsibling (child_2),
// and its inverse.
func TestFigure1Encoding(t *testing.T) {
	tr := MustParse("a(a,a(a,a),a)") // the 6-node tree n1..n6 of Fig. 1
	enc := BinaryEncoding(tr)
	// Every original node becomes a rank-2 node; padding leaves are #bot.
	internal, bot := 0, 0
	for _, n := range enc.Nodes {
		if n.Label == BottomLabel {
			bot++
			if len(n.Children) != 0 {
				t.Fatal("bottom node with children")
			}
		} else {
			internal++
			if len(n.Children) != 2 {
				t.Fatal("encoded node without 2 children")
			}
		}
	}
	if internal != 6 || bot != 7 {
		t.Fatalf("internal=%d bot=%d", internal, bot)
	}
	// Figure 1(b): firstchild(n1,n2), nextsibling(n2,n3), etc.
	// Root (n1): child1 = n2's encoding, child2 = #bot.
	if enc.Root.Children[1].Label != BottomLabel {
		t.Error("root has a nextsibling in encoding")
	}
	dec, err := DecodeBinary(enc)
	if err != nil {
		t.Fatalf("DecodeBinary: %v", err)
	}
	if !dec.Equal(tr) {
		t.Errorf("decode(encode(t)) = %s, want %s", dec, tr)
	}
}

func TestBinaryEncodingRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := Random(r, RandomOptions{Labels: []string{"a", "b", "c"}, Size: 1 + r.Intn(60), MaxChildren: 5})
		dec, err := DecodeBinary(BinaryEncoding(tr))
		return err == nil && dec.Equal(tr)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestDecodeBinaryErrors(t *testing.T) {
	bad := []string{
		"#bot",                 // root is bottom
		"a",                    // no children
		"a(#bot,a(#bot,#bot))", // root has a nextsibling
		"a(#bot(#bot),#bot)",   // bottom with children
		"a(b,#bot)",            // child without 2 children
	}
	for _, src := range bad {
		if _, err := DecodeBinary(MustParse(src)); err == nil {
			t.Errorf("DecodeBinary(%q): expected error", src)
		}
	}
}

func TestRankedAlphabet(t *testing.T) {
	ra := RankedAlphabet{"f": 2, "g": 1, "a": 0}
	ok := MustParse("f(g(a),a)")
	if err := ra.Validate(ok); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if err := ra.Validate(MustParse("f(a)")); err == nil {
		t.Error("expected arity error")
	}
	if err := ra.Validate(MustParse("h")); err == nil {
		t.Error("expected unknown-label error")
	}
	if ra.MaxRank() != 2 {
		t.Errorf("MaxRank = %d", ra.MaxRank())
	}
	if ChildK(ok.Root, 1).Label != "g" || ChildK(ok.Root, 2).Label != "a" || ChildK(ok.Root, 3) != nil || ChildK(ok.Root, 0) != nil {
		t.Error("ChildK wrong")
	}
}

func TestGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, size := range []int{1, 2, 17, 100} {
		tr := Random(rng, RandomOptions{Labels: []string{"a", "b"}, Size: size, MaxChildren: 3})
		if tr.Size() != size {
			t.Errorf("Random size %d got %d", size, tr.Size())
		}
		for _, n := range tr.Nodes {
			if len(n.Children) > 3 {
				t.Error("MaxChildren violated")
			}
		}
	}
	cb := CompleteBinary(3, "a")
	if cb.Size() != 15 || cb.Depth() != 3 {
		t.Errorf("CompleteBinary: size=%d depth=%d", cb.Size(), cb.Depth())
	}
	ch := Chain(5, "x")
	if ch.Size() != 5 || ch.Depth() != 4 {
		t.Errorf("Chain: size=%d depth=%d", ch.Size(), ch.Depth())
	}
	fl := Flat(6, "x")
	if fl.Size() != 6 || fl.Depth() != 1 || len(fl.Root.Children) != 5 {
		t.Errorf("Flat wrong")
	}
	rb := RandomBinary(rng, 21, []string{"f"}, []string{"a"})
	ra := RankedAlphabet{"f": 2, "a": 0}
	if err := ra.Validate(rb); err != nil {
		t.Errorf("RandomBinary not full binary: %v", err)
	}
}

func TestPretty(t *testing.T) {
	got := MustParse("a(b)").Pretty()
	want := "a [0]\n  b [1]\n"
	if got != want {
		t.Errorf("Pretty = %q, want %q", got, want)
	}
}
