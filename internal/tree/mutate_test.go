package tree

import (
	"fmt"
	"math/rand"
	"testing"
)

// checkLive walks the live structure and verifies every invariant the
// mutation layer promises: link symmetry, ChildIdx density, the
// live-never-references-dead rule, and agreement with want (term
// syntax) via the canonical LiveTree view.
func checkLive(t *testing.T, a *Arena, want string) {
	t.Helper()
	alive := 0
	for v := int32(0); int(v) < a.Len(); v++ {
		if !a.Alive(v) {
			continue
		}
		alive++
		for _, ref := range []int32{a.Parent[v], a.FirstChild[v], a.NextSibling[v], a.PrevSibling[v], a.LastChild[v]} {
			if ref != NoNode && !a.Alive(ref) {
				t.Fatalf("live node %d references dead node %d", v, ref)
			}
		}
		if fc := a.FirstChild[v]; fc != NoNode {
			if a.Parent[fc] != v || a.PrevSibling[fc] != NoNode || a.ChildIdx[fc] != 0 {
				t.Fatalf("first child %d of %d mislinked", fc, v)
			}
		}
		if lc := a.LastChild[v]; lc != NoNode && (a.Parent[lc] != v || a.NextSibling[lc] != NoNode) {
			t.Fatalf("last child %d of %d mislinked", lc, v)
		}
		if ns := a.NextSibling[v]; ns != NoNode {
			if a.PrevSibling[ns] != v || a.ChildIdx[ns] != a.ChildIdx[v]+1 {
				t.Fatalf("sibling link %d -> %d broken", v, ns)
			}
		}
	}
	if alive != a.NumAlive() {
		t.Fatalf("NumAlive = %d, counted %d", a.NumAlive(), alive)
	}
	if got := len(a.LivePreorder()); got != alive {
		t.Fatalf("LivePreorder length %d, want %d", got, alive)
	}
	if got := a.LiveTree().String(); got != want {
		t.Fatalf("live tree = %s, want %s", got, want)
	}
}

func TestArenaMutation(t *testing.T) {
	tr := MustParse("a(b(c,d),e)")
	a := tr.Arena()
	if a.Gen() != 0 || a.Mutated() {
		t.Fatalf("fresh arena has gen %d", a.Gen())
	}

	// Insert f as the middle child of a (between b and e).
	d := a.NewDelta()
	f, err := a.InsertSubtree(d, 0, 1, New("f", New("g")))
	if err != nil {
		t.Fatal(err)
	}
	if int(f) != 5 {
		t.Fatalf("inserted root id = %d, want 5 (appended)", f)
	}
	checkLive(t, a, "a(b(c,d),f(g),e)")
	if len(d.Added) != 2 || d.OldLen != 5 || d.NewLen != 7 {
		t.Fatalf("delta after insert: %+v", d)
	}
	// b (nextsibling rewired), e (prev + childidx) and a (parent) must
	// carry old values; first-write-wins means b's old nextsibling is e.
	if old, ok := d.OldOf(1); !ok || old.OldNextSibling != 4 {
		t.Fatalf("old of b: %+v ok=%v", old, ok)
	}

	// Remove b's subtree.
	if err := a.RemoveSubtree(d, 1); err != nil {
		t.Fatal(err)
	}
	checkLive(t, a, "a(f(g),e)")
	if len(d.Removed) != 3 {
		t.Fatalf("removed %v, want b,c,d", d.Removed)
	}
	if !a.Alive(f) || a.Alive(1) || a.Alive(2) || a.Alive(3) {
		t.Fatal("tombstones wrong")
	}
	// Dead rows keep their pre-removal columns.
	if a.FirstChild[1] != 2 || a.Parent[1] != 0 {
		t.Fatal("dead node columns were cleared")
	}

	// Retext and attrs.
	if err := a.SetText(d, f, "hello"); err != nil {
		t.Fatal(err)
	}
	if a.Text(f) != "hello" {
		t.Fatalf("text = %q", a.Text(f))
	}
	if err := a.SetAttr(d, f, "k", "v"); err != nil {
		t.Fatal(err)
	}
	if a.Attrs[f]["k"] != "v" {
		t.Fatal("attr not set")
	}
	if a.Gen() != 4 || d.Gen != 4 {
		t.Fatalf("gen = %d, delta gen = %d, want 4", a.Gen(), d.Gen)
	}

	// Errors: root removal, dead targets, bad ids.
	if err := a.RemoveSubtree(d, 0); err == nil {
		t.Fatal("removed the root")
	}
	if err := a.RemoveSubtree(d, 1); err == nil {
		t.Fatal("removed a dead node")
	}
	if _, err := a.InsertSubtree(d, 99, 0, New("x")); err == nil {
		t.Fatal("inserted under a nonexistent node")
	}
	if err := a.SetText(d, 2, "x"); err == nil {
		t.Fatal("retexted a dead node")
	}
}

func TestArenaInsertPositions(t *testing.T) {
	for pos, want := range map[int]string{
		0:  "a(x,b,c)",
		1:  "a(b,x,c)",
		2:  "a(b,c,x)",
		9:  "a(b,c,x)", // clamped
		-1: "a(x,b,c)", // clamped
	} {
		a := MustParse("a(b,c)").Arena()
		if _, err := a.InsertSubtree(a.NewDelta(), 0, pos, New("x")); err != nil {
			t.Fatal(err)
		}
		checkLive(t, a, want)
	}
	// Insert under a leaf.
	a := MustParse("a(b)").Arena()
	if _, err := a.InsertSubtree(a.NewDelta(), 1, 0, New("x")); err != nil {
		t.Fatal(err)
	}
	checkLive(t, a, "a(b(x))")
}

func TestTreeGeneration(t *testing.T) {
	tr := MustParse("a(b,c)")
	g0 := tr.Generation()
	a := tr.Arena()
	if tr.Generation() != g0 {
		t.Fatal("building the arena moved the generation")
	}
	if _, err := a.InsertSubtree(a.NewDelta(), 0, 0, New("x")); err != nil {
		t.Fatal(err)
	}
	g1 := tr.Generation()
	if g1 <= g0 {
		t.Fatalf("arena mutation did not advance generation: %d -> %d", g0, g1)
	}
	// Reindex after pointer-level mutation must advance past anything
	// the dropped arena reached.
	tr.Root.Add(New("y"))
	tr.Reindex()
	if g2 := tr.Generation(); g2 <= g1 {
		t.Fatalf("Reindex did not advance generation: %d -> %d", g1, g2)
	}
}

func TestComposeDeltas(t *testing.T) {
	a := MustParse("a(b,c)").Arena()
	d1 := a.NewDelta()
	x, err := a.InsertSubtree(d1, 0, 2, New("x"))
	if err != nil {
		t.Fatal(err)
	}
	d2 := a.NewDelta()
	if err := a.RemoveSubtree(d2, 1); err != nil {
		t.Fatal(err)
	}
	d3 := a.NewDelta()
	if err := a.RemoveSubtree(d3, x); err != nil {
		t.Fatal(err)
	}
	d := ComposeDeltas([]*ArenaDelta{d1, d2, d3})
	if d.OldLen != 3 || d.NewLen != 4 || d.Gen != a.Gen() {
		t.Fatalf("composed bounds: %+v", d)
	}
	if len(d.Added) != 1 || len(d.Removed) != 2 {
		t.Fatalf("composed sets: added %v removed %v", d.Added, d.Removed)
	}
	// b was touched by the insert (nextsibling b -> x spliced after c?
	// no: c was; but b is c's neighbor only via c). c's first recorded
	// old value must predate both edits: OldNextSibling == NoNode.
	if old, ok := d.OldOf(2); !ok || old.OldNextSibling != NoNode {
		t.Fatalf("old of c: %+v ok=%v", old, ok)
	}
	// x was added inside the window, so its touched entries are elided.
	if _, ok := d.OldOf(x); ok {
		t.Fatal("added node has a touched entry in the composed delta")
	}
	if ComposeDeltas(nil) != nil {
		t.Fatal("composing nothing")
	}
}

// TestArenaMutationRandom runs random edit scripts and checks the
// invariants plus agreement with a mirrored pointer-tree replay.
func TestArenaMutationRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		tr := Random(rng, RandomOptions{Labels: []string{"a", "b", "c"}, Size: 20 + rng.Intn(40), MaxChildren: 4})
		a := tr.Clone().Arena()
		mirror := tr.Clone() // pointer-level replay of the same edits
		for step := 0; step < 15; step++ {
			live := a.LivePreorder()
			d := a.NewDelta()
			switch op := rng.Intn(3); {
			case op == 0 && len(live) > 1:
				v := live[1+rng.Intn(len(live)-1)]
				pre := a.LivePreorder()
				idx := -1
				for i, u := range pre {
					if u == v {
						idx = i
					}
				}
				if err := a.RemoveSubtree(d, v); err != nil {
					t.Fatal(err)
				}
				m := mirror.Nodes[idx]
				mc := m.Parent.Children
				for i, c := range mc {
					if c == m {
						m.Parent.Children = append(mc[:i:i], mc[i+1:]...)
						break
					}
				}
				mirror.Reindex()
			case op == 1:
				v := live[rng.Intn(len(live))]
				pre := a.LivePreorder()
				idx := -1
				for i, u := range pre {
					if u == v {
						idx = i
					}
				}
				sub := New(fmt.Sprintf("s%d", step), New("t"))
				pos := rng.Intn(3)
				if _, err := a.InsertSubtree(d, v, pos, sub); err != nil {
					t.Fatal(err)
				}
				m := mirror.Nodes[idx]
				p := pos
				if p > len(m.Children) {
					p = len(m.Children)
				}
				msub := New(fmt.Sprintf("s%d", step), New("t"))
				m.Children = append(m.Children[:p:p], append([]*Node{msub}, m.Children[p:]...)...)
				mirror.Reindex()
			default:
				v := live[rng.Intn(len(live))]
				if err := a.SetText(d, v, fmt.Sprintf("txt%d", step)); err != nil {
					t.Fatal(err)
				}
				pre := a.LivePreorder()
				for i, u := range pre {
					if u == v {
						mirror.Nodes[i].Text = fmt.Sprintf("txt%d", step)
					}
				}
			}
			checkLive(t, a, mirror.String())
		}
		lt := a.LiveTree()
		if !lt.Equal(mirror) {
			t.Fatalf("trial %d: live tree diverged from mirror:\n%s\n%s", trial, lt, mirror)
		}
	}
}
