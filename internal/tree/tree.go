// Package tree implements the ordered labeled trees of Gottlob & Koch
// (PODS 2002), both unranked and ranked, together with the relational
// views τ_ur and τ_rk of Section 2 of the paper.
//
// An unranked ordered tree is exposed as the relational structure
//
//	τ_ur = ⟨dom, root, leaf, (label_a)_{a∈Σ}, firstchild, nextsibling, lastsibling⟩
//
// and a ranked tree (with maximum rank K) as
//
//	τ_rk = ⟨dom, root, leaf, (child_k)_{k≤K}, (label_a)_{a∈Σ}⟩.
//
// Nodes are identified by their document-order (preorder) index, which
// coincides with the document order relation ≺ of Example 2.5.
package tree

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Node is a node of an ordered, labeled, unranked tree. Children are
// ordered left to right. The zero value is not useful; construct trees
// with New and (*Node).Add, or via Parse.
type Node struct {
	// Label is the node's symbol from the (conceptually finite) alphabet Σ.
	Label string
	// Text carries optional character data (used by the HTML substrate
	// for #text nodes). It is not part of the τ_ur signature.
	Text string
	// Attrs carries optional attributes (HTML substrate). Not part of τ_ur.
	Attrs map[string]string

	// ID is the document-order (preorder) index of the node, assigned by
	// Tree.index. IDs are dense in [0, |dom|).
	ID int

	Parent   *Node
	Children []*Node

	// pos caches the node's 0-based position among its siblings, so
	// NextSibling/PrevSibling are O(1) instead of scanning the parent's
	// child list (quadratic on wide nodes). It is maintained by Add,
	// Reindex and FromArena; childIndex validates it before trusting it,
	// so hand-mutated trees degrade to the scan instead of misbehaving.
	pos int
}

// New returns a fresh node with the given label and children,
// setting parent pointers.
func New(label string, children ...*Node) *Node {
	n := &Node{Label: label, Children: children}
	for i, c := range children {
		c.Parent = n
		c.pos = i
	}
	return n
}

// Text returns a fresh #text node carrying the given character data.
// The label "#text" is the reserved text-node symbol of the HTML substrate.
func NewText(text string) *Node {
	return &Node{Label: "#text", Text: text}
}

// Add appends children to n, setting their parent pointers, and
// returns n for chaining.
func (n *Node) Add(children ...*Node) *Node {
	for i, c := range children {
		c.Parent = n
		c.pos = len(n.Children) + i
	}
	n.Children = append(n.Children, children...)
	return n
}

// FirstChild returns the leftmost child of n, or nil.
func (n *Node) FirstChild() *Node {
	if len(n.Children) == 0 {
		return nil
	}
	return n.Children[0]
}

// LastChild returns the rightmost child of n, or nil.
func (n *Node) LastChild() *Node {
	if len(n.Children) == 0 {
		return nil
	}
	return n.Children[len(n.Children)-1]
}

// childIndex returns i such that n is the i-th child (0-based) of its
// parent, or -1 if n has no parent. The cached position makes this
// O(1) on trees built through the package constructors; the scan is
// the fallback for hand-rewired trees whose cache is stale.
func (n *Node) childIndex() int {
	if n.Parent == nil {
		return -1
	}
	if n.pos < len(n.Parent.Children) && n.Parent.Children[n.pos] == n {
		return n.pos
	}
	for i, c := range n.Parent.Children {
		if c == n {
			n.pos = i
			return i
		}
	}
	return -1
}

// NextSibling returns the sibling immediately to the right of n, or nil.
func (n *Node) NextSibling() *Node {
	i := n.childIndex()
	if i < 0 || i+1 >= len(n.Parent.Children) {
		return nil
	}
	return n.Parent.Children[i+1]
}

// PrevSibling returns the sibling immediately to the left of n, or nil.
func (n *Node) PrevSibling() *Node {
	i := n.childIndex()
	if i <= 0 {
		return nil
	}
	return n.Parent.Children[i-1]
}

// IsLeaf reports whether n has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// IsRoot reports whether n has no parent.
func (n *Node) IsRoot() bool { return n.Parent == nil }

// IsLastSibling reports whether n is the rightmost child of its parent.
// Following the paper, the root is NOT a last sibling (it has no parent).
func (n *Node) IsLastSibling() bool {
	return n.Parent != nil && n.Parent.Children[len(n.Parent.Children)-1] == n
}

// IsFirstSibling reports whether n is the leftmost child of its parent.
// Symmetrically to IsLastSibling, the root is not a first sibling.
func (n *Node) IsFirstSibling() bool {
	return n.Parent != nil && n.Parent.Children[0] == n
}

// Tree is an indexed unranked ordered tree: a root plus the node list
// in document order. Node IDs index into Nodes.
type Tree struct {
	Root *Node
	// Nodes lists all nodes in document order; Nodes[i].ID == i.
	Nodes []*Node

	// arena memoizes the struct-of-arrays representation (see Arena).
	arena atomic.Pointer[Arena]
	// gen accumulates the generations of dropped arenas plus one per
	// Reindex, so Generation stays monotonic across arena rebuilds.
	gen atomic.Uint64
}

// Generation identifies the tree's current shape: it changes whenever
// the tree is reindexed after pointer-level mutation or its arena is
// mutated in place, and never repeats a previous value for a previous
// shape. Caches key memos by (tree, generation) so post-mutation reads
// can never observe a pre-mutation memo.
func (t *Tree) Generation() uint64 {
	g := t.gen.Load()
	if a := t.arena.Load(); a != nil {
		g += a.Gen()
	}
	return g
}

// NewTree indexes the tree rooted at root and returns it. It assigns
// document-order IDs and fixes parent pointers (so hand-built trees
// need not set them).
func NewTree(root *Node) *Tree {
	t := &Tree{Root: root}
	t.Reindex()
	return t
}

// Reindex reassigns document-order IDs after structural modification
// and drops any memoized arena (it would describe the old shape).
// It advances Generation past anything the dropped arena reached, so
// generation-keyed memos of the old shape can never be served again.
func (t *Tree) Reindex() {
	bump := uint64(1)
	if a := t.arena.Load(); a != nil {
		bump += a.Gen()
	}
	t.gen.Add(bump)
	t.Nodes = t.Nodes[:0]
	var walk func(n, parent *Node)
	walk = func(n, parent *Node) {
		n.Parent = parent
		n.ID = len(t.Nodes)
		t.Nodes = append(t.Nodes, n)
		for i, c := range n.Children {
			c.pos = i
			walk(c, n)
		}
	}
	walk(t.Root, nil)
	t.arena.Store(nil)
}

// Size returns |dom|, the number of nodes.
func (t *Tree) Size() int { return len(t.Nodes) }

// Labels returns the sorted set of labels occurring in the tree.
func (t *Tree) Labels() []string {
	set := map[string]bool{}
	for _, n := range t.Nodes {
		set[n.Label] = true
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// MaxRank returns the maximum number of children of any node.
func (t *Tree) MaxRank() int {
	k := 0
	for _, n := range t.Nodes {
		if len(n.Children) > k {
			k = len(n.Children)
		}
	}
	return k
}

// Depth returns the length of the longest root-to-leaf path, counted
// in edges (a single-node tree has depth 0).
func (t *Tree) Depth() int {
	var rec func(n *Node) int
	rec = func(n *Node) int {
		d := -1
		for _, c := range n.Children {
			if cd := rec(c); cd > d {
				d = cd
			}
		}
		return d + 1
	}
	return rec(t.Root)
}

// DocBefore reports n1 ≺ n2 in document order (Example 2.5). With
// preorder IDs this is simply ID comparison; the caterpillar package
// proves the equivalence with the paper's expression.
func (t *Tree) DocBefore(n1, n2 *Node) bool { return n1.ID < n2.ID }

// Clone returns a deep copy of the tree (Attrs maps are copied).
func (t *Tree) Clone() *Tree {
	var cp func(n *Node) *Node
	cp = func(n *Node) *Node {
		m := &Node{Label: n.Label, Text: n.Text}
		if n.Attrs != nil {
			m.Attrs = make(map[string]string, len(n.Attrs))
			for k, v := range n.Attrs {
				m.Attrs[k] = v
			}
		}
		for _, c := range n.Children {
			m.Add(cp(c))
		}
		return m
	}
	return NewTree(cp(t.Root))
}

// Equal reports structural equality of labels, shapes and text.
func (t *Tree) Equal(u *Tree) bool {
	var eq func(a, b *Node) bool
	eq = func(a, b *Node) bool {
		if a.Label != b.Label || a.Text != b.Text || len(a.Children) != len(b.Children) {
			return false
		}
		for i := range a.Children {
			if !eq(a.Children[i], b.Children[i]) {
				return false
			}
		}
		return true
	}
	return eq(t.Root, u.Root)
}

// String renders the tree in the term syntax accepted by Parse,
// e.g. "a(b,c(d))".
func (t *Tree) String() string {
	var b strings.Builder
	writeTerm(&b, t.Root)
	return b.String()
}

func writeTerm(b *strings.Builder, n *Node) {
	b.WriteString(n.Label)
	if len(n.Children) == 0 {
		return
	}
	b.WriteByte('(')
	for i, c := range n.Children {
		if i > 0 {
			b.WriteByte(',')
		}
		writeTerm(b, c)
	}
	b.WriteByte(')')
}

// Pretty renders the tree with one node per line, indented by depth,
// annotating each node with its document-order ID.
func (t *Tree) Pretty() string {
	var b strings.Builder
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		fmt.Fprintf(&b, "%s%s [%d]\n", strings.Repeat("  ", depth), n.Label, n.ID)
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	rec(t.Root, 0)
	return b.String()
}

// Parse reads a tree in term syntax: label, optionally followed by a
// parenthesized comma-separated list of subtrees. Labels consist of
// letters, digits, '_', '#', and '-'. Whitespace is ignored.
//
//	a(b, c(d, e), f)
func Parse(s string) (*Tree, error) {
	p := &termParser{src: s}
	n, err := p.parseNode()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("tree: trailing input at offset %d in %q", p.pos, s)
	}
	return NewTree(n), nil
}

// MustParse is Parse, panicking on error. Intended for tests and examples.
func MustParse(s string) *Tree {
	t, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return t
}

type termParser struct {
	src string
	pos int
}

func (p *termParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n' || p.src[p.pos] == '\r') {
		p.pos++
	}
}

func isLabelByte(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9' ||
		b == '_' || b == '#' || b == '-'
}

func (p *termParser) parseNode() (*Node, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && isLabelByte(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return nil, fmt.Errorf("tree: expected label at offset %d in %q", p.pos, p.src)
	}
	n := &Node{Label: p.src[start:p.pos]}
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == '(' {
		p.pos++
		for {
			c, err := p.parseNode()
			if err != nil {
				return nil, err
			}
			n.Add(c)
			p.skipSpace()
			if p.pos >= len(p.src) {
				return nil, fmt.Errorf("tree: unclosed '(' in %q", p.src)
			}
			switch p.src[p.pos] {
			case ',':
				p.pos++
			case ')':
				p.pos++
				return n, nil
			default:
				return nil, fmt.Errorf("tree: unexpected %q at offset %d in %q", p.src[p.pos], p.pos, p.src)
			}
		}
	}
	return n, nil
}
