package tree

import "math/rand"

// RandomOptions controls the shape of randomly generated trees.
type RandomOptions struct {
	// Labels is the alphabet to draw node labels from. Must be nonempty.
	Labels []string
	// MaxChildren bounds the number of children of any node (≥ 0).
	MaxChildren int
	// Size is the target number of nodes (the result has exactly this
	// many nodes when Size ≥ 1).
	Size int
}

// Random generates a uniformly-shaped random unranked tree with exactly
// opts.Size nodes using the given source of randomness. Shapes are
// produced by attaching each new node to a random existing node whose
// child count is below MaxChildren, which yields a good mix of deep
// and bushy trees for property testing.
func Random(rng *rand.Rand, opts RandomOptions) *Tree {
	if opts.Size < 1 {
		opts.Size = 1
	}
	if opts.MaxChildren < 1 {
		opts.MaxChildren = 4
	}
	if len(opts.Labels) == 0 {
		opts.Labels = []string{"a", "b"}
	}
	pick := func() string { return opts.Labels[rng.Intn(len(opts.Labels))] }
	root := &Node{Label: pick()}
	open := []*Node{root}
	total := 1
	for total < opts.Size {
		i := rng.Intn(len(open))
		parent := open[i]
		child := &Node{Label: pick()}
		parent.Add(child)
		total++
		open = append(open, child)
		if len(parent.Children) >= opts.MaxChildren {
			open[i] = open[len(open)-1]
			open = open[:len(open)-1]
		}
	}
	return NewTree(root)
}

// RandomBinary generates a random full binary tree (every internal node
// has exactly two children) with at least size nodes, over the given
// internal/leaf alphabets. Useful for ranked-tree tests with K = 2.
func RandomBinary(rng *rand.Rand, size int, internalLabels, leafLabels []string) *Tree {
	if len(internalLabels) == 0 {
		internalLabels = []string{"a"}
	}
	if len(leafLabels) == 0 {
		leafLabels = internalLabels
	}
	var build func(budget int) *Node
	build = func(budget int) *Node {
		if budget <= 1 {
			return &Node{Label: leafLabels[rng.Intn(len(leafLabels))]}
		}
		left := 1 + rng.Intn(budget-1)
		n := &Node{Label: internalLabels[rng.Intn(len(internalLabels))]}
		n.Add(build(left), build(budget-1-left))
		return n
	}
	if size < 3 {
		size = 3
	}
	if size%2 == 0 {
		size++ // full binary trees have an odd number of nodes
	}
	return NewTree(build(size))
}

// CompleteBinary builds the complete binary tree of the given depth
// (depth 0 is a single node), all nodes labeled label. Used by the
// Example 4.21 benchmarks.
func CompleteBinary(depth int, label string) *Tree {
	var build func(d int) *Node
	build = func(d int) *Node {
		n := &Node{Label: label}
		if d > 0 {
			n.Add(build(d-1), build(d-1))
		}
		return n
	}
	return NewTree(build(depth))
}

// Chain builds a degenerate tree that is a single path of the given
// length (number of nodes), all labeled label. Worst case for depth.
func Chain(length int, label string) *Tree {
	if length < 1 {
		length = 1
	}
	root := &Node{Label: label}
	cur := root
	for i := 1; i < length; i++ {
		next := &Node{Label: label}
		cur.Add(next)
		cur = next
	}
	return NewTree(root)
}

// Flat builds a tree of the given total size where the root has
// size-1 children (maximal fan-out), all labeled label.
func Flat(size int, label string) *Tree {
	root := &Node{Label: label}
	for i := 1; i < size; i++ {
		root.Add(&Node{Label: label})
	}
	return NewTree(root)
}
