package tree

// This file implements the arena-backed, struct-of-arrays tree
// representation: the "appropriately represented" trees of Theorem 4.2
// made concrete as dense preorder arrays. Each node is a row index;
// labels are interned symbols; the navigation relations of τ_ur
// (firstchild, nextsibling, lastsibling, parent, ...) are flat int32
// columns, so the evaluation hot path indexes arrays instead of
// chasing *Node pointers, and an entire 100k-node document costs a
// handful of allocations instead of one per node.
//
// The pointer-per-node *Node API remains the compatibility view:
// FromArena materializes it from slabs, and Tree.Arena() converts a
// hand-built pointer tree into its arena on first use.

// NoNode is the sentinel for "no such node" in arena columns.
const NoNode int32 = -1

// Symbols interns label strings as dense int32 ids, so label
// comparisons in the evaluation hot path are integer compares and each
// distinct label is stored once per document (or once per corpus when
// a table is shared between documents).
//
// Intern must not be called concurrently; lookups (ID, Name) are safe
// once interning is done. The zero value is not ready; use NewSymbols.
type Symbols struct {
	names []string
	ids   map[string]int32
}

// NewSymbols returns an empty symbol table.
func NewSymbols() *Symbols {
	return &Symbols{ids: make(map[string]int32, 16)}
}

// Intern returns the id of name, assigning the next free id on first
// sight.
func (s *Symbols) Intern(name string) int32 {
	if id, ok := s.ids[name]; ok {
		return id
	}
	id := int32(len(s.names))
	s.names = append(s.names, name)
	s.ids[name] = id
	return id
}

// InternBytes is Intern for a byte slice; it allocates only when the
// label is seen for the first time (the map lookup itself is
// allocation-free).
func (s *Symbols) InternBytes(name []byte) int32 {
	if id, ok := s.ids[string(name)]; ok {
		return id
	}
	return s.Intern(string(name))
}

// ID returns the id of name, or -1 if name was never interned.
func (s *Symbols) ID(name string) int32 {
	if id, ok := s.ids[name]; ok {
		return id
	}
	return -1
}

// IDBytes is ID for a byte slice, without allocating.
func (s *Symbols) IDBytes(name []byte) int32 {
	if id, ok := s.ids[string(name)]; ok {
		return id
	}
	return -1
}

// Name returns the string for an interned id.
func (s *Symbols) Name(id int32) string { return s.names[id] }

// Len returns the number of interned symbols.
func (s *Symbols) Len() int { return len(s.names) }

// Arena is an ordered labeled tree in struct-of-arrays form. Rows are
// document-order (preorder) node ids, so Arena indexes agree with
// Node.ID and with the document order ≺ of Example 2.5. All navigation
// columns hold node ids or NoNode.
//
// An Arena is safe for concurrent reads. Mutation (see mutate.go) is
// append-and-tombstone, must be serialized by the caller, and must not
// race with readers — long-lived documents wrap the arena in a
// Document that provides that serialization. Trees are limited to
// 2^31-1 nodes.
type Arena struct {
	// Syms interns the labels appearing in Label.
	Syms *Symbols
	// Label[v] is the symbol id of node v's label.
	Label []int32
	// Parent[v], FirstChild[v], NextSibling[v], PrevSibling[v],
	// LastChild[v] are the navigation partial functions of
	// Proposition 4.1.
	Parent, FirstChild, NextSibling, PrevSibling, LastChild []int32
	// ChildIdx[v] is v's 0-based position among its siblings (0 for
	// the root).
	ChildIdx []int32
	// Blob concatenates all character data; TextStart/TextEnd[v] span
	// node v's text within it. One string for the whole document means
	// text storage costs one allocation and no per-node pointers for
	// the garbage collector to scan; Text returns zero-copy substrings.
	Blob               string
	TextStart, TextEnd []int32
	// Attrs holds the attribute maps of the (typically few) nodes that
	// have any. Builders may share one map between nodes with
	// identical attribute sets; treat the maps as read-only. FromArena
	// gives each Node a private copy.
	Attrs map[int32]map[string]string

	// Mutation state (see mutate.go). A freshly built arena has gen 0,
	// no tombstones and no text overrides; the mutation API bumps gen,
	// fills dead lazily on the first removal, and stores replaced text
	// out of line (Blob itself stays immutable).
	gen      uint64 // accessed atomically
	dead     []bool // dead[v] reports node v tombstoned; nil when none
	numDead  int
	textOver map[int32]string // retexts and inserted-node text, by id
}

// Len returns |dom|, the number of nodes.
func (a *Arena) Len() int { return len(a.Label) }

// LabelName returns node v's label as a string.
func (a *Arena) LabelName(v int32) string { return a.Syms.Name(a.Label[v]) }

// Text returns node v's character data as a zero-copy substring of
// the document blob ("" for nodes without text). Replaced text (and
// the text of nodes inserted after construction) lives out of line and
// shadows the blob span.
func (a *Arena) Text(v int32) string {
	if a.textOver != nil {
		if s, ok := a.textOver[v]; ok {
			return s
		}
	}
	return a.Blob[a.TextStart[v]:a.TextEnd[v]]
}

// NumChildren returns the number of children of v in O(1).
func (a *Arena) NumChildren(v int32) int32 {
	lc := a.LastChild[v]
	if lc == NoNode {
		return 0
	}
	return a.ChildIdx[lc] + 1
}

// ChildK returns the k-th (1-based) child of v, or NoNode. It walks
// the sibling chain, so it costs O(k); the τ_rk arities k in real
// programs are small constants.
func (a *Arena) ChildK(v int32, k int) int32 {
	if k < 1 {
		return NoNode
	}
	c := a.FirstChild[v]
	for k > 1 && c != NoNode {
		c = a.NextSibling[c]
		k--
	}
	return c
}

// ArenaBuilder constructs an Arena in a single preorder pass: Open
// starts a node as the next child of the currently open node, Close
// ends it. The builder maintains sibling/parent links incrementally,
// so construction is O(1) per node with no per-node allocations.
type ArenaBuilder struct {
	a     Arena
	blob  []byte // character data under construction (Arena.Blob)
	stack []int32
}

// NewArenaBuilder returns a builder with a fresh symbol table.
func NewArenaBuilder() *ArenaBuilder {
	return &ArenaBuilder{a: Arena{Syms: NewSymbols()}}
}

// Syms exposes the builder's symbol table, so callers can pre-intern
// the labels they emit frequently and use OpenSym directly.
func (b *ArenaBuilder) Syms() *Symbols { return b.a.Syms }

// Grow pre-sizes the arrays for n expected nodes.
func (b *ArenaBuilder) Grow(n int) {
	grow := func(s *[]int32) {
		if cap(*s) < n {
			t := make([]int32, len(*s), n)
			copy(t, *s)
			*s = t
		}
	}
	grow(&b.a.Label)
	grow(&b.a.Parent)
	grow(&b.a.FirstChild)
	grow(&b.a.NextSibling)
	grow(&b.a.PrevSibling)
	grow(&b.a.LastChild)
	grow(&b.a.ChildIdx)
	grow(&b.a.TextStart)
	grow(&b.a.TextEnd)
}

// Open appends a new node labeled label as the next child of the
// currently open node (or as the root) and makes it the open node.
// It returns the new node's id.
func (b *ArenaBuilder) Open(label string) int32 {
	return b.OpenSym(b.a.Syms.Intern(label))
}

// OpenSym is Open for a pre-interned label symbol.
func (b *ArenaBuilder) OpenSym(sym int32) int32 {
	a := &b.a
	id := int32(len(a.Label))
	a.Label = append(a.Label, sym)
	a.FirstChild = append(a.FirstChild, NoNode)
	a.NextSibling = append(a.NextSibling, NoNode)
	a.PrevSibling = append(a.PrevSibling, NoNode)
	a.LastChild = append(a.LastChild, NoNode)
	a.TextStart = append(a.TextStart, int32(len(b.blob)))
	a.TextEnd = append(a.TextEnd, int32(len(b.blob)))
	if len(b.stack) == 0 {
		a.Parent = append(a.Parent, NoNode)
		a.ChildIdx = append(a.ChildIdx, 0)
	} else {
		p := b.stack[len(b.stack)-1]
		a.Parent = append(a.Parent, p)
		if prev := a.LastChild[p]; prev != NoNode {
			a.NextSibling[prev] = id
			a.PrevSibling[id] = prev
			a.ChildIdx = append(a.ChildIdx, a.ChildIdx[prev]+1)
		} else {
			a.FirstChild[p] = id
			a.ChildIdx = append(a.ChildIdx, 0)
		}
		a.LastChild[p] = id
	}
	b.stack = append(b.stack, id)
	return id
}

// Close ends the currently open node.
func (b *ArenaBuilder) Close() { b.stack = b.stack[:len(b.stack)-1] }

// Depth returns the number of currently open nodes.
func (b *ArenaBuilder) Depth() int { return len(b.stack) }

// Top returns the id of the currently open node.
func (b *ArenaBuilder) Top() int32 { return b.stack[len(b.stack)-1] }

// HasChildren reports whether node id has at least one child so far.
func (b *ArenaBuilder) HasChildren(id int32) bool { return b.a.LastChild[id] != NoNode }

// OpenLabel returns the label symbol of the k-th open node from the
// top (0 = innermost). Callers use it for HTML implied-end decisions.
func (b *ArenaBuilder) OpenLabel(k int) int32 {
	return b.a.Label[b.stack[len(b.stack)-1-k]]
}

// TextNode appends a #text leaf carrying text to the open node and
// returns its id.
func (b *ArenaBuilder) TextNode(text string) int32 {
	id := b.Open("#text")
	b.AppendText(id, text)
	b.Close()
	return id
}

// toBlobTail ensures node id's text span is the blob tail, relocating
// the content to the end if later text was appended in between. (The
// most recent text node is always already at the tail.)
func (b *ArenaBuilder) toBlobTail(id int32) {
	a := &b.a
	if int(a.TextEnd[id]) != len(b.blob) {
		start := int32(len(b.blob))
		b.blob = append(b.blob, b.blob[a.TextStart[id]:a.TextEnd[id]]...)
		a.TextStart[id] = start
		a.TextEnd[id] = int32(len(b.blob))
	}
}

// AppendText appends s to node id's character data (used to restore
// boundary whitespace once the next sibling is known).
func (b *ArenaBuilder) AppendText(id int32, s string) {
	b.toBlobTail(id)
	b.blob = append(b.blob, s...)
	b.a.TextEnd[id] = int32(len(b.blob))
}

// AppendTextBytes is AppendText for a byte slice, copying straight
// into the blob without an intermediate string.
func (b *ArenaBuilder) AppendTextBytes(id int32, s []byte) {
	b.toBlobTail(id)
	b.blob = append(b.blob, s...)
	b.a.TextEnd[id] = int32(len(b.blob))
}

// SetAttrs records the attribute map of node id (nil is a no-op).
func (b *ArenaBuilder) SetAttrs(id int32, attrs map[string]string) {
	if len(attrs) == 0 {
		return
	}
	if b.a.Attrs == nil {
		b.a.Attrs = make(map[int32]map[string]string)
	}
	b.a.Attrs[id] = attrs
}

// Finish closes any still-open nodes, seals the text blob and returns
// the arena. The builder must not be reused afterwards.
func (b *ArenaBuilder) Finish() *Arena {
	b.stack = b.stack[:0]
	b.a.Blob = string(b.blob)
	b.blob = nil
	return &b.a
}

// FromArena materializes the compatibility *Node view of an arena as a
// fully indexed Tree sharing the arena: nodes come from one slab, all
// child-pointer slices from a second, so the view costs O(1)
// allocations. The arena must be nonempty. A mutated arena (tombstones
// or stable non-preorder ids) routes through LiveTree instead — its
// canonical preorder view, which does not share the arena.
func FromArena(a *Arena) *Tree {
	if a.Mutated() {
		return a.LiveTree()
	}
	n := a.Len()
	slab := make([]Node, n)
	nodes := make([]*Node, n)
	childPtrs := make([]*Node, 0, max(n-1, 0))
	// Children of v occupy a contiguous run of childPtrs because the
	// run is carved when v's subtree is entered; fill by walking each
	// node's sibling chain once (O(n) total).
	for v := 0; v < n; v++ {
		nd := &slab[v]
		nodes[v] = nd
		nd.Label = a.Syms.Name(a.Label[v])
		nd.Text = a.Text(int32(v))
		nd.ID = v
		nd.pos = int(a.ChildIdx[v])
		if p := a.Parent[v]; p != NoNode {
			nd.Parent = &slab[p]
		}
		if kids := int(a.NumChildren(int32(v))); kids > 0 {
			start := len(childPtrs)
			for c := a.FirstChild[v]; c != NoNode; c = a.NextSibling[c] {
				childPtrs = append(childPtrs, &slab[c])
			}
			nd.Children = childPtrs[start:len(childPtrs):len(childPtrs)]
		}
	}
	for id, attrs := range a.Attrs {
		// Private copy per node: arena builders share attribute maps
		// between nodes with identical sections, but Node.Attrs has
		// always been independently mutable.
		m := make(map[string]string, len(attrs))
		for k, v := range attrs {
			m[k] = v
		}
		slab[id].Attrs = m
	}
	t := &Tree{Root: &slab[0], Nodes: nodes}
	t.arena.Store(a)
	return t
}

// arenaFromNodes converts an indexed pointer tree into its arena in
// one pass over t.Nodes. Labels are interned into a fresh table.
func arenaFromNodes(t *Tree) *Arena {
	n := t.Size()
	a := &Arena{
		Syms:        NewSymbols(),
		Label:       make([]int32, n),
		Parent:      make([]int32, n),
		FirstChild:  make([]int32, n),
		NextSibling: make([]int32, n),
		PrevSibling: make([]int32, n),
		LastChild:   make([]int32, n),
		ChildIdx:    make([]int32, n),
		TextStart:   make([]int32, n),
		TextEnd:     make([]int32, n),
	}
	for i := range a.Parent {
		a.Parent[i], a.FirstChild[i], a.LastChild[i] = NoNode, NoNode, NoNode
		a.NextSibling[i], a.PrevSibling[i] = NoNode, NoNode
	}
	var blob []byte
	for _, nd := range t.Nodes {
		v := int32(nd.ID)
		a.Label[v] = a.Syms.Intern(nd.Label)
		if nd.Text != "" {
			a.TextStart[v] = int32(len(blob))
			blob = append(blob, nd.Text...)
			a.TextEnd[v] = int32(len(blob))
		}
		if len(nd.Children) > 0 {
			a.FirstChild[v] = int32(nd.Children[0].ID)
			a.LastChild[v] = int32(nd.Children[len(nd.Children)-1].ID)
		}
		for i, c := range nd.Children {
			cv := int32(c.ID)
			a.Parent[cv] = v
			a.ChildIdx[cv] = int32(i)
			if i > 0 {
				a.PrevSibling[cv] = int32(nd.Children[i-1].ID)
			}
			if i+1 < len(nd.Children) {
				a.NextSibling[cv] = int32(nd.Children[i+1].ID)
			}
		}
		if len(nd.Attrs) > 0 {
			if a.Attrs == nil {
				a.Attrs = make(map[int32]map[string]string)
			}
			a.Attrs[v] = nd.Attrs
		}
	}
	a.Blob = string(blob)
	return a
}

// Arena returns the struct-of-arrays representation of the tree,
// building and memoizing it on first use (trees parsed through the
// arena path carry it from the start). The arena reflects the tree at
// conversion time: call Reindex after structural modification, which
// also drops the stale arena.
//
// Concurrent callers may race to build the first arena; both builds
// are equivalent and one wins, so the method is safe for concurrent
// use on an otherwise-immutable tree.
func (t *Tree) Arena() *Arena {
	if a := t.arena.Load(); a != nil {
		return a
	}
	a := arenaFromNodes(t)
	t.arena.Store(a)
	return a
}
