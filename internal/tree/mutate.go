package tree

// This file is the live-document mutation layer of the arena: instead
// of rebuilding the whole struct-of-arrays representation on every
// edit (Reindex), an Arena accepts in-place subtree insertions and
// removals, retexting and attribute updates, each recorded in an
// ArenaDelta and stamped with a monotonically increasing generation.
//
// The representation is append-only with tombstones:
//
//   - Inserted nodes are appended at the column tails, so existing
//     node ids are stable handles across edits (they are no longer
//     globally preorder; LivePreorder recovers the document order).
//   - Removed subtrees are tombstoned, not cleared: a removed node
//     keeps its own column values, and only its *live* neighbors
//     (parent, adjacent siblings, following siblings' ChildIdx) are
//     rewired — with their pre-edit values saved in the delta, so the
//     pre-edit structure stays reconstructible for delete-rederive
//     maintenance (see eval/incremental.go).
//
// Invariant: the navigation columns of a live node never reference a
// dead node, so any walk that starts from a live node stays within
// live nodes. Dead nodes may keep stale references to live ones.

import (
	"fmt"
	"sync/atomic"
)

// TouchedNode records the pre-edit navigation columns of one live node
// whose structure an edit batch rewired.
type TouchedNode struct {
	// ID is the touched node.
	ID int32
	// OldParent .. OldChildIdx are the node's column values before the
	// first edit of the batch touched it.
	OldParent, OldFirstChild, OldNextSibling, OldPrevSibling, OldLastChild, OldChildIdx int32
}

// ArenaDelta records one batch of arena mutations: which rows were
// appended, which were tombstoned, which live rows had navigation
// columns rewired (with their old values), and which nodes had text or
// attributes replaced. Deltas are what the incremental evaluator
// consumes (the τ_ur EDB fact delta is computable from one), and they
// compose with ComposeDeltas.
type ArenaDelta struct {
	// OldLen is |dom| before the batch: ids ≥ OldLen did not exist in
	// the pre-edit arena.
	OldLen int
	// NewLen is |dom| after the batch.
	NewLen int
	// Gen is the arena generation after the batch.
	Gen uint64
	// Added lists appended node ids (all ≥ OldLen), in insertion order.
	Added []int32
	// Removed lists tombstoned node ids (whole subtrees, preorder per
	// removal).
	Removed []int32
	// Touched lists live nodes whose navigation columns were rewired,
	// with their pre-batch values (first write wins within the batch).
	Touched []TouchedNode
	// Retexted lists nodes whose character data was replaced. Text is
	// outside the τ_ur signature, so retexts never change query
	// results — they matter to extraction output and cache freshness.
	Retexted []int32
	// Reattred lists nodes whose attributes were updated (also outside
	// τ_ur).
	Reattred []int32

	touched map[int32]int // id → index in Touched
}

// NewDelta opens an empty mutation batch against the arena's current
// state. Pass it to InsertSubtree / RemoveSubtree / SetText / SetAttr.
func (a *Arena) NewDelta() *ArenaDelta {
	return &ArenaDelta{OldLen: a.Len(), NewLen: a.Len(), Gen: a.Gen()}
}

// Empty reports whether the delta records no mutations.
func (d *ArenaDelta) Empty() bool {
	return len(d.Added) == 0 && len(d.Removed) == 0 && len(d.Touched) == 0 &&
		len(d.Retexted) == 0 && len(d.Reattred) == 0
}

// OldOf returns the pre-batch navigation columns of v if the batch
// rewired them.
func (d *ArenaDelta) OldOf(v int32) (TouchedNode, bool) {
	if d.touched == nil {
		return TouchedNode{}, false
	}
	i, ok := d.touched[v]
	if !ok {
		return TouchedNode{}, false
	}
	return d.Touched[i], true
}

// touch saves v's current columns into the delta unless the batch
// already touched v (first write wins) or v was appended by the batch
// itself (no pre-batch row to save).
func (d *ArenaDelta) touch(a *Arena, v int32) {
	if int(v) >= d.OldLen {
		return
	}
	if d.touched == nil {
		d.touched = make(map[int32]int)
	}
	if _, ok := d.touched[v]; ok {
		return
	}
	d.touched[v] = len(d.Touched)
	d.Touched = append(d.Touched, TouchedNode{
		ID:             v,
		OldParent:      a.Parent[v],
		OldFirstChild:  a.FirstChild[v],
		OldNextSibling: a.NextSibling[v],
		OldPrevSibling: a.PrevSibling[v],
		OldLastChild:   a.LastChild[v],
		OldChildIdx:    a.ChildIdx[v],
	})
}

// ComposeDeltas flattens a sequence of deltas (oldest first) into one
// batch-equivalent delta: OldLen from the first, NewLen/Gen from the
// last, unions of the row sets, and first-write-wins old column
// values. Composing an empty sequence returns nil.
func ComposeDeltas(ds []*ArenaDelta) *ArenaDelta {
	if len(ds) == 0 {
		return nil
	}
	if len(ds) == 1 {
		return ds[0]
	}
	out := &ArenaDelta{OldLen: ds[0].OldLen, NewLen: ds[len(ds)-1].NewLen, Gen: ds[len(ds)-1].Gen}
	for _, d := range ds {
		out.Added = append(out.Added, d.Added...)
		out.Removed = append(out.Removed, d.Removed...)
		out.Retexted = append(out.Retexted, d.Retexted...)
		out.Reattred = append(out.Reattred, d.Reattred...)
		for _, t := range d.Touched {
			if int(t.ID) >= out.OldLen {
				continue // appended earlier in the sequence: no pre-sequence row
			}
			if out.touched == nil {
				out.touched = make(map[int32]int)
			}
			if _, ok := out.touched[t.ID]; ok {
				continue
			}
			out.touched[t.ID] = len(out.Touched)
			out.Touched = append(out.Touched, t)
		}
	}
	return out
}

// Gen returns the arena's mutation generation: 0 for a freshly built
// arena, incremented by every mutation. Safe for concurrent reads.
func (a *Arena) Gen() uint64 { return atomic.LoadUint64(&a.gen) }

// Mutated reports whether the arena has ever been mutated.
func (a *Arena) Mutated() bool { return a.Gen() != 0 }

// Alive reports whether node v exists in the current document (i.e.
// was not tombstoned by RemoveSubtree).
func (a *Arena) Alive(v int32) bool { return a.dead == nil || !a.dead[v] }

// Dead exposes the tombstone column (nil when nothing was removed);
// callers must treat it as read-only.
func (a *Arena) Dead() []bool { return a.dead }

// NumDead returns the number of tombstoned rows.
func (a *Arena) NumDead() int { return a.numDead }

// NumAlive returns the number of live nodes.
func (a *Arena) NumAlive() int { return a.Len() - a.numDead }

// bump stamps the arena and the delta with the next generation.
func (a *Arena) bump(d *ArenaDelta) {
	d.Gen = atomic.AddUint64(&a.gen, 1)
	d.NewLen = a.Len()
}

// appendRow appends one fresh, unlinked row for a node with the given
// label spec and returns its id.
func (a *Arena) appendRow(d *ArenaDelta, n *Node) int32 {
	id := int32(len(a.Label))
	a.Label = append(a.Label, a.Syms.Intern(n.Label))
	a.Parent = append(a.Parent, NoNode)
	a.FirstChild = append(a.FirstChild, NoNode)
	a.NextSibling = append(a.NextSibling, NoNode)
	a.PrevSibling = append(a.PrevSibling, NoNode)
	a.LastChild = append(a.LastChild, NoNode)
	a.ChildIdx = append(a.ChildIdx, 0)
	a.TextStart = append(a.TextStart, 0)
	a.TextEnd = append(a.TextEnd, 0)
	if a.dead != nil {
		a.dead = append(a.dead, false)
	}
	if n.Text != "" {
		a.setTextOver(id, n.Text)
	}
	if len(n.Attrs) > 0 {
		if a.Attrs == nil {
			a.Attrs = make(map[int32]map[string]string)
		}
		m := make(map[string]string, len(n.Attrs))
		for k, v := range n.Attrs {
			m[k] = v
		}
		a.Attrs[id] = m
	}
	d.Added = append(d.Added, id)
	return id
}

// appendSubtree appends the subtree rooted at n in preorder, wiring
// the copy's internal links, and returns the id of its root row.
func (a *Arena) appendSubtree(d *ArenaDelta, n *Node) int32 {
	id := a.appendRow(d, n)
	prev := NoNode
	for i, c := range n.Children {
		cid := a.appendSubtree(d, c)
		a.Parent[cid] = id
		a.ChildIdx[cid] = int32(i)
		if prev == NoNode {
			a.FirstChild[id] = cid
		} else {
			a.NextSibling[prev] = cid
			a.PrevSibling[cid] = prev
		}
		a.LastChild[id] = cid
		prev = cid
	}
	return id
}

// InsertSubtree appends a copy of the subtree rooted at sub and
// splices it in as the pos-th child (0-based; clamped to the child
// count) of parent, recording the mutation in d. It returns the arena
// id of the inserted subtree's root. sub is copied — the caller keeps
// ownership of the nodes.
func (a *Arena) InsertSubtree(d *ArenaDelta, parent int32, pos int, sub *Node) (int32, error) {
	if parent < 0 || int(parent) >= a.Len() || !a.Alive(parent) {
		return NoNode, fmt.Errorf("tree: insert under nonexistent node %d", parent)
	}
	if sub == nil {
		return NoNode, fmt.Errorf("tree: insert of a nil subtree")
	}
	v := a.appendSubtree(d, sub)
	if n := int(a.NumChildren(parent)); pos < 0 {
		pos = 0
	} else if pos > n {
		pos = n
	}
	d.touch(a, parent)
	a.Parent[v] = parent
	var before int32 = NoNode // current occupant of position pos (NoNode: append)
	if pos < int(a.NumChildren(parent)) {
		before = a.ChildK(parent, pos+1)
	}
	if before == NoNode {
		if last := a.LastChild[parent]; last == NoNode {
			a.FirstChild[parent] = v
		} else {
			d.touch(a, last)
			a.NextSibling[last] = v
			a.PrevSibling[v] = last
			a.ChildIdx[v] = a.ChildIdx[last] + 1
		}
		a.LastChild[parent] = v
	} else {
		a.ChildIdx[v] = a.ChildIdx[before]
		if prev := a.PrevSibling[before]; prev == NoNode {
			a.FirstChild[parent] = v
		} else {
			d.touch(a, prev)
			a.NextSibling[prev] = v
			a.PrevSibling[v] = prev
		}
		d.touch(a, before)
		a.NextSibling[v] = before
		a.PrevSibling[before] = v
		for c := before; c != NoNode; c = a.NextSibling[c] {
			d.touch(a, c)
			a.ChildIdx[c]++
		}
	}
	a.bump(d)
	return v, nil
}

// RemoveSubtree tombstones the subtree rooted at v and unsplices it
// from its live neighbors, recording the mutation in d. The root
// cannot be removed. Removed rows keep their column values (the
// pre-edit structure stays walkable from them), but live nodes no
// longer reference them.
func (a *Arena) RemoveSubtree(d *ArenaDelta, v int32) error {
	if v == 0 && a.Len() > 0 {
		return fmt.Errorf("tree: cannot remove the root")
	}
	if v < 0 || int(v) >= a.Len() || !a.Alive(v) {
		return fmt.Errorf("tree: remove of nonexistent node %d", v)
	}
	p, prev, next := a.Parent[v], a.PrevSibling[v], a.NextSibling[v]
	d.touch(a, p)
	if prev != NoNode {
		d.touch(a, prev)
		a.NextSibling[prev] = next
	}
	if next != NoNode {
		d.touch(a, next)
		a.PrevSibling[next] = prev
	}
	if a.FirstChild[p] == v {
		a.FirstChild[p] = next
	}
	if a.LastChild[p] == v {
		a.LastChild[p] = prev
	}
	for c := next; c != NoNode; c = a.NextSibling[c] {
		d.touch(a, c)
		a.ChildIdx[c]--
	}
	if a.dead == nil {
		a.dead = make([]bool, a.Len())
	}
	a.markDead(d, v)
	a.bump(d)
	return nil
}

// markDead tombstones v's subtree. Live columns reference only live
// nodes, so the walk visits exactly the live descendants.
func (a *Arena) markDead(d *ArenaDelta, v int32) {
	a.dead[v] = true
	a.numDead++
	d.Removed = append(d.Removed, v)
	for c := a.FirstChild[v]; c != NoNode; c = a.NextSibling[c] {
		a.markDead(d, c)
	}
}

// SetText replaces node v's character data, recording the retext in d.
// Text is outside τ_ur, so the edit never changes query results.
func (a *Arena) SetText(d *ArenaDelta, v int32, text string) error {
	if v < 0 || int(v) >= a.Len() || !a.Alive(v) {
		return fmt.Errorf("tree: settext of nonexistent node %d", v)
	}
	a.setTextOver(v, text)
	d.Retexted = append(d.Retexted, v)
	a.bump(d)
	return nil
}

// AppendText appends suffix to node v's character data — a SetText of
// the concatenation, so the same retext bookkeeping applies.
func (a *Arena) AppendText(d *ArenaDelta, v int32, suffix string) error {
	if v < 0 || int(v) >= a.Len() || !a.Alive(v) {
		return fmt.Errorf("tree: appendtext of nonexistent node %d", v)
	}
	return a.SetText(d, v, a.Text(v)+suffix)
}

func (a *Arena) setTextOver(v int32, text string) {
	if a.textOver == nil {
		a.textOver = make(map[int32]string)
	}
	a.textOver[v] = text
}

// SetAttr sets one attribute of node v, recording the update in d.
// Attributes are outside τ_ur, so the edit never changes query
// results. The node's attribute map is copied on first write — arena
// builders share maps between nodes with identical attribute sets.
func (a *Arena) SetAttr(d *ArenaDelta, v int32, key, val string) error {
	if v < 0 || int(v) >= a.Len() || !a.Alive(v) {
		return fmt.Errorf("tree: setattr of nonexistent node %d", v)
	}
	if a.Attrs == nil {
		a.Attrs = make(map[int32]map[string]string)
	}
	m := make(map[string]string, len(a.Attrs[v])+1)
	for k, x := range a.Attrs[v] {
		m[k] = x
	}
	m[key] = val
	a.Attrs[v] = m
	d.Reattred = append(d.Reattred, v)
	a.bump(d)
	return nil
}

// LivePreorder enumerates the live nodes in document (preorder) order.
// Position i of the result is the document-order index the arena id
// LivePreorder()[i] would receive in a from-scratch rebuild — the
// bridge between stable arena ids and canonical preorder ids.
func (a *Arena) LivePreorder() []int32 {
	out := make([]int32, 0, a.NumAlive())
	if a.Len() == 0 || !a.Alive(0) {
		return out
	}
	v := int32(0)
	for v != NoNode {
		out = append(out, v)
		if fc := a.FirstChild[v]; fc != NoNode {
			v = fc
			continue
		}
		for v != NoNode && a.NextSibling[v] == NoNode {
			v = a.Parent[v]
		}
		if v != NoNode {
			v = a.NextSibling[v]
		}
	}
	return out
}

// LiveTree materializes the live nodes as a fresh, canonically
// preorder-indexed pointer tree — the document a from-scratch reparse
// of the current content would produce. The result does not share the
// arena (its ids are dense preorder ids, not arena handles).
func (a *Arena) LiveTree() *Tree {
	if a.Len() == 0 {
		return nil
	}
	var build func(v int32) *Node
	build = func(v int32) *Node {
		n := &Node{Label: a.LabelName(v), Text: a.Text(v)}
		if attrs := a.Attrs[v]; len(attrs) > 0 {
			n.Attrs = make(map[string]string, len(attrs))
			for k, x := range attrs {
				n.Attrs[k] = x
			}
		}
		for c := a.FirstChild[v]; c != NoNode; c = a.NextSibling[c] {
			n.Add(build(c))
		}
		return n
	}
	return NewTree(build(0))
}
