package wrap

import (
	"fmt"
	"strings"
	"testing"

	"mdlog/internal/datalog"
	"mdlog/internal/elog"
	"mdlog/internal/tree"
)

func TestBuildOutput(t *testing.T) {
	doc := tree.MustParse("html(body(table(tr(td,td),tr(td))))")
	// ids: html0 body1 table2 tr3 td4 td5 tr6 td7
	a := Assignment{
		"row":  {3, 6},
		"cell": {4, 5, 7},
	}
	out := BuildOutput(doc, a, Options{})
	want := "result(row(cell,cell),row(cell))"
	if out.String() != want {
		t.Errorf("output = %s, want %s", out, want)
	}
}

func TestBuildOutputMultiPattern(t *testing.T) {
	doc := tree.MustParse("a(b)")
	a := Assignment{"x": {1}, "y": {1}}
	out := BuildOutput(doc, a, Options{})
	if out.String() != "result(x+y)" {
		t.Errorf("output = %s", out)
	}
	out2 := BuildOutput(doc, a, Options{LabelSep: "_"})
	if out2.String() != "result(x_y)" {
		t.Errorf("output = %s", out2)
	}
}

func TestBuildOutputKeepsDocumentOrder(t *testing.T) {
	doc := tree.MustParse("r(a,b,c,d)")
	a := Assignment{"pick": {4, 2, 1}} // d, b, a — ids out of order
	out := BuildOutput(doc, a, Options{RootLabel: "picked"})
	if out.String() != "picked(pick,pick,pick)" {
		t.Errorf("output = %s", out)
	}
	if out.Root.Label != "picked" {
		t.Errorf("root label = %s", out.Root.Label)
	}
}

func TestBuildOutputText(t *testing.T) {
	doc := tree.NewTree(tree.New("p", tree.NewText("hello")))
	a := Assignment{"t": {1}}
	out := BuildOutput(doc, a, Options{KeepText: true})
	if out.Root.Children[0].Text != "hello" {
		t.Error("text lost")
	}
	out2 := BuildOutput(doc, a, Options{})
	if out2.Root.Children[0].Text != "" {
		t.Error("text kept without KeepText")
	}
}

func TestWrapperRun(t *testing.T) {
	p := datalog.MustParseProgram(`
row(X)  :- label_tr(X).
cell(X) :- row(Y), firstchild(Y,X).
`)
	doc := tree.MustParse("html(table(tr(td,td),tr(td)))")
	w := &Wrapper{Program: p}
	out, a, err := w.Run(doc)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(a["row"]) != "[2 5]" || fmt.Sprint(a["cell"]) != "[3 6]" {
		t.Errorf("assignment = %v", a)
	}
	if out.String() != "result(row(cell),row(cell))" {
		t.Errorf("output = %s", out)
	}
	// Restricting Extract drops the other pattern.
	w2 := &Wrapper{Program: p, Extract: []string{"cell"}}
	out2, _, err := w2.Run(doc)
	if err != nil {
		t.Fatal(err)
	}
	if out2.String() != "result(cell,cell)" {
		t.Errorf("output = %s", out2)
	}
}

func TestElogWrapperRun(t *testing.T) {
	ep := elog.MustParseProgram(`
row(x)  :- root(x0), subelem("tr", x0, x).
cell(x) :- row(x0), subelem("td", x0, x).
`)
	doc := tree.MustParse("html(tr(td,td),tr(td))")
	w := &ElogWrapper{Program: ep}
	out, a, err := w.Run(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(a["row"]) != 2 || len(a["cell"]) != 3 {
		t.Errorf("assignment = %v", a)
	}
	if out.String() != "result(row(cell,cell),row(cell))" {
		t.Errorf("output = %s", out)
	}
}

func TestWriteXML(t *testing.T) {
	doc := tree.NewTree(tree.New("result",
		tree.New("item", &tree.Node{Label: "name", Text: "a <b> & c"}),
		tree.New("empty")))
	var b strings.Builder
	if err := WriteXML(&b, doc); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, frag := range []string{"<result>", "<item>", "<name>a &lt;b&gt; &amp; c</name>", "<empty/>", "</result>"} {
		if !strings.Contains(out, frag) {
			t.Errorf("XML missing %q:\n%s", frag, out)
		}
	}
}
