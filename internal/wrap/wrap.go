// Package wrap implements wrapping proper, as described at the start
// of Section 6 of Gottlob & Koch (PODS 2002): a wrapper is a set of
// information extraction functions (unary queries) computed over a
// document tree; the output tree is obtained by keeping exactly the
// nodes selected by at least one function, relabeling them with their
// pattern names, and connecting them through the transitive closure of
// the original edge relation, preserving document order.
package wrap

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"mdlog/internal/datalog"
	"mdlog/internal/elog"
	"mdlog/internal/eval"
	"mdlog/internal/tree"
)

// Assignment maps pattern names to the selected node ids.
type Assignment map[string][]int

// Options controls output tree construction.
type Options struct {
	// RootLabel labels the synthetic output root (default "result").
	RootLabel string
	// KeepText copies the Text of extracted #text nodes.
	KeepText bool
	// LabelSep joins multiple pattern names selecting the same node
	// (default "+").
	LabelSep string
}

func (o *Options) defaults() {
	if o.RootLabel == "" {
		o.RootLabel = "result"
	}
	if o.LabelSep == "" {
		o.LabelSep = "+"
	}
}

// BuildOutput computes the output tree: extracted nodes keep their
// relative ancestor structure (a node's parent in the output is its
// closest extracted proper ancestor, or the synthetic root) and their
// document order.
func BuildOutput(t *tree.Tree, a Assignment, opts Options) *tree.Tree {
	opts.defaults()
	labels := map[int][]string{}
	for pat, ids := range a {
		for _, id := range ids {
			labels[id] = append(labels[id], pat)
		}
	}
	root := tree.New(opts.RootLabel)
	out := map[int]*tree.Node{}
	// Document order guarantees parents are processed before children.
	var ids []int
	for id := range labels {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		pats := labels[id]
		sort.Strings(pats)
		n := &tree.Node{Label: strings.Join(pats, opts.LabelSep)}
		if opts.KeepText {
			n.Text = t.Nodes[id].Text
		}
		// Closest extracted proper ancestor.
		parent := root
		for anc := t.Nodes[id].Parent; anc != nil; anc = anc.Parent {
			if p, ok := out[anc.ID]; ok {
				parent = p
				break
			}
		}
		parent.Add(n)
		out[id] = n
	}
	return tree.NewTree(root)
}

// Wrapper bundles a monadic datalog program with the patterns it
// extracts; Run produces the output tree of the extraction.
type Wrapper struct {
	Program *datalog.Program
	// Extract lists the information extraction functions (intensional
	// predicates) forming the wrapper; empty means every intensional
	// predicate.
	Extract []string
	Options Options
}

// Run evaluates the wrapper on a document with the linear-time engine
// and builds the output tree.
func (w *Wrapper) Run(t *tree.Tree) (*tree.Tree, Assignment, error) {
	res, err := eval.LinearTree(w.Program, t)
	if err != nil {
		return nil, nil, err
	}
	pats := w.Extract
	if len(pats) == 0 {
		pats = w.Program.IntensionalPreds()
	}
	a := Assignment{}
	for _, pat := range pats {
		if ids := res.UnarySet(pat); len(ids) > 0 {
			a[pat] = ids
		}
	}
	return BuildOutput(t, a, w.Options), a, nil
}

// ElogWrapper runs an Elog⁻ / Elog⁻Δ program as a wrapper.
type ElogWrapper struct {
	Program *elog.Program
	// Extract lists the patterns to keep (empty: the program's Extract
	// list, or all patterns).
	Extract []string
	Options Options
}

// Run evaluates the Elog program and builds the output tree.
func (w *ElogWrapper) Run(t *tree.Tree) (*tree.Tree, Assignment, error) {
	res, err := w.Program.Evaluate(t)
	if err != nil {
		return nil, nil, err
	}
	pats := w.Extract
	if len(pats) == 0 {
		pats = w.Program.Extract
	}
	if len(pats) == 0 {
		pats = w.Program.Patterns()
	}
	a := Assignment{}
	for _, pat := range pats {
		if ids := res[pat]; len(ids) > 0 {
			a[pat] = ids
		}
	}
	return BuildOutput(t, a, w.Options), a, nil
}

// WriteXML serializes a tree in XML-ish form with indentation; Text
// content is escaped and emitted inside the element.
func WriteXML(w io.Writer, t *tree.Tree) error {
	var rec func(n *tree.Node, depth int) error
	rec = func(n *tree.Node, depth int) error {
		ind := strings.Repeat("  ", depth)
		if len(n.Children) == 0 {
			if n.Text != "" {
				_, err := fmt.Fprintf(w, "%s<%s>%s</%s>\n", ind, n.Label, escape(n.Text), n.Label)
				return err
			}
			_, err := fmt.Fprintf(w, "%s<%s/>\n", ind, n.Label)
			return err
		}
		if _, err := fmt.Fprintf(w, "%s<%s>\n", ind, n.Label); err != nil {
			return err
		}
		if n.Text != "" {
			if _, err := fmt.Fprintf(w, "%s  %s\n", ind, escape(n.Text)); err != nil {
				return err
			}
		}
		for _, c := range n.Children {
			if err := rec(c, depth+1); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintf(w, "%s</%s>\n", ind, n.Label)
		return err
	}
	return rec(t.Root, 0)
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
