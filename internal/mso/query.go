package mso

import (
	"fmt"

	"mdlog/internal/tree"
)

// Linear-time evaluation of compiled MSO queries on trees: one
// bottom-up pass assigns every node its (unmarked) automaton state,
// one top-down pass computes the set of "accepting context" states,
// and a node is selected iff its marked transition lands in its
// context — the automaton-level image of combining the Θ↑ and Θ↓
// types in part (3) of the Theorem 4.4 proof.

// UnaryQuery is a compiled MSO formula with exactly one free
// first-order variable, ready for repeated evaluation.
type UnaryQuery struct {
	C       *Compiled
	FreeVar Var
	freeBit int
}

// CompileQuery compiles φ(x) with exactly one free first-order variable.
func CompileQuery(f Formula) (*UnaryQuery, error) {
	fv := FreeVars(f)
	if len(fv) != 1 || fv[0].IsSet() {
		return nil, fmt.Errorf("mso: unary query needs exactly one free first-order variable, has %v", fv)
	}
	c, err := Compile(f)
	if err != nil {
		return nil, err
	}
	return &UnaryQuery{C: c, FreeVar: fv[0], freeBit: c.FreeBits[fv[0]]}, nil
}

// MustCompileQuery panics on error (tests and examples).
func MustCompileQuery(src string) *UnaryQuery {
	q, err := CompileQuery(MustParse(src))
	if err != nil {
		panic(err)
	}
	return q
}

// Select returns the sorted document-order ids of the nodes selected
// by the query on t, in time O(|t| · |Q|).
func (q *UnaryQuery) Select(t *tree.Tree) []int {
	d := q.C.DTA
	n := t.Size()
	bot := d.LeafState(0)

	// Encoding children per original node: left = firstchild, right =
	// nextsibling (state bot if absent).
	up := make([]int, n)
	// Bottom-up in reverse document order: children and next siblings
	// have larger preorder ids than... careful: a node's nextsibling has a
	// LARGER id; its firstchild too. So iterating ids in decreasing order
	// guarantees both are already computed.
	for id := n - 1; id >= 0; id-- {
		nd := t.Nodes[id]
		l, r := bot, bot
		if fc := nd.FirstChild(); fc != nil {
			l = up[fc.ID]
		}
		if ns := nd.NextSibling(); ns != nil {
			r = up[ns.ID]
		}
		up[id] = d.Step(l, r, q.C.Sym(nd.Label, 0))
	}

	// Top-down context sets: ctx[id][s] == true iff the tree would be
	// accepted when the encoding subtree at id evaluates to s.
	ctx := make([][]bool, n)
	for i := range ctx {
		ctx[i] = make([]bool, d.NumStates)
	}
	copy(ctx[t.Root.ID], d.Accept)
	for id := 0; id < n; id++ {
		nd := t.Nodes[id]
		sym := q.C.Sym(nd.Label, 0)
		l, r := bot, bot
		var fcID, nsID = -1, -1
		if fc := nd.FirstChild(); fc != nil {
			fcID = fc.ID
			l = up[fcID]
		}
		if ns := nd.NextSibling(); ns != nil {
			nsID = ns.ID
			r = up[nsID]
		}
		for s := 0; s < d.NumStates; s++ {
			if fcID >= 0 && ctx[id][d.Step(s, r, sym)] {
				ctx[fcID][s] = true
			}
			if nsID >= 0 && ctx[id][d.Step(l, s, sym)] {
				ctx[nsID][s] = true
			}
		}
	}

	// Selection: replace the node's own symbol by its marked variant.
	var out []int
	mark := 1 << uint(q.freeBit)
	for id := 0; id < n; id++ {
		nd := t.Nodes[id]
		l, r := bot, bot
		if fc := nd.FirstChild(); fc != nil {
			l = up[fc.ID]
		}
		if ns := nd.NextSibling(); ns != nil {
			r = up[ns.ID]
		}
		if ctx[id][d.Step(l, r, q.C.Sym(nd.Label, mark))] {
			out = append(out, id)
		}
	}
	return out
}

// Sentence is a compiled MSO sentence (no free variables) deciding a
// regular tree language (Proposition 2.1).
type Sentence struct {
	C *Compiled
}

// CompileSentence compiles a sentence.
func CompileSentence(f Formula) (*Sentence, error) {
	if fv := FreeVars(f); len(fv) != 0 {
		return nil, fmt.Errorf("mso: sentence has free variables %v", fv)
	}
	c, err := Compile(f)
	if err != nil {
		return nil, err
	}
	return &Sentence{C: c}, nil
}

// Accepts decides t ⊨ φ in time O(|t|).
func (s *Sentence) Accepts(t *tree.Tree) bool {
	d := s.C.DTA
	bot := d.LeafState(0)
	n := t.Size()
	up := make([]int, n)
	for id := n - 1; id >= 0; id-- {
		nd := t.Nodes[id]
		l, r := bot, bot
		if fc := nd.FirstChild(); fc != nil {
			l = up[fc.ID]
		}
		if ns := nd.NextSibling(); ns != nil {
			r = up[ns.ID]
		}
		up[id] = d.Step(l, r, s.C.Sym(nd.Label, 0))
	}
	return d.Accept[up[t.Root.ID]]
}
