package mso

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"mdlog/internal/eval"
	"mdlog/internal/tree"
)

// TestMSODatalogEquivalence is the constructive Theorem 4.4 check:
// for every query in the battery, the generated monadic datalog
// program — evaluated with the linear-time engine of Theorem 4.2 —
// agrees with the automaton evaluation and with the direct MSO
// semantics.
func TestMSODatalogEquivalence(t *testing.T) {
	alphabet := []string{"a", "b", "c"}
	rng := rand.New(rand.NewSource(17))
	for _, src := range queriesUnderTest {
		f := MustParse(src)
		q, err := CompileQuery(f)
		if err != nil {
			t.Fatalf("compile %q: %v", src, err)
		}
		prog, err := q.ToDatalog(alphabet, "mso_select")
		if err != nil {
			t.Fatalf("ToDatalog %q: %v", src, err)
		}
		if !prog.IsMonadic() {
			t.Fatalf("%q: generated program is not monadic", src)
		}
		for i := 0; i < 15; i++ {
			tr := tree.Random(rng, tree.RandomOptions{
				Labels: alphabet, Size: 1 + rng.Intn(12), MaxChildren: 3})
			want := q.Select(tr)
			res, err := eval.LinearTree(prog, tr)
			if err != nil {
				t.Fatalf("%q: linear eval: %v", src, err)
			}
			got := res.UnarySet("mso_select")
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Errorf("%q on %s: datalog %v, automaton %v", src, tr, got, want)
			}
			naive, err := NaiveSelect(f, "x", tr)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(got) != fmt.Sprint(naive) {
				t.Errorf("%q on %s: datalog %v, naive %v", src, tr, got, naive)
			}
		}
	}
}

// TestMSODatalogQuick drives random trees through one fixed nontrivial
// query across the three evaluation routes.
func TestMSODatalogQuick(t *testing.T) {
	src := "exists y (child(x,y) & label_b(y)) & ~root(x)"
	f := MustParse(src)
	q, err := CompileQuery(f)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := q.ToDatalog([]string{"a", "b"}, "sel")
	if err != nil {
		t.Fatal(err)
	}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := tree.Random(rng, tree.RandomOptions{
			Labels: []string{"a", "b"}, Size: 1 + rng.Intn(30), MaxChildren: 4})
		res, err := eval.LinearTree(prog, tr)
		if err != nil {
			return false
		}
		return fmt.Sprint(res.UnarySet("sel")) == fmt.Sprint(q.Select(tr))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestMSODatalogAlphabetCollapse checks Remark 2.2 / OtherLabel: trees
// may contain labels the formula never mentions; both routes must
// collapse them consistently, provided the program was generated for
// the full document alphabet.
func TestMSODatalogAlphabetCollapse(t *testing.T) {
	q := MustCompileQuery("exists y (firstchild(x,y) & ~label_a(y))")
	alphabet := []string{"a", "z", "w"}
	prog, err := q.ToDatalog(alphabet, "sel")
	if err != nil {
		t.Fatal(err)
	}
	tr := tree.MustParse("z(a(w),z(a))")
	res, err := eval.LinearTree(prog, tr)
	if err != nil {
		t.Fatal(err)
	}
	want := q.Select(tr)
	if fmt.Sprint(res.UnarySet("sel")) != fmt.Sprint(want) {
		t.Errorf("datalog %v, automaton %v", res.UnarySet("sel"), want)
	}
	// Reference: nodes whose first child is not labeled a: z(root, fc=a?
	// no: first child of root is a -> not selected)... compute naively.
	naive, err := NaiveSelect(MustParse("exists y (firstchild(x,y) & ~label_a(y))"), "x", tr)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(want) != fmt.Sprint(naive) {
		t.Errorf("automaton %v, naive %v", want, naive)
	}
}

func TestToDatalogErrors(t *testing.T) {
	q := MustCompileQuery("root(x)")
	if _, err := q.ToDatalog([]string{"a", "a"}, "sel"); err == nil {
		t.Error("duplicate alphabet labels accepted")
	}
	p, err := q.ToDatalog([]string{"a"}, "")
	if err != nil {
		t.Fatal(err)
	}
	if p.Query != "mso_select" {
		t.Errorf("default query pred = %q", p.Query)
	}
}

// TestDatalogProgramSize sanity-checks the O(|Σ|·|Q|²) size bound of
// the generated program.
func TestDatalogProgramSize(t *testing.T) {
	q := MustCompileQuery("leaf(x)")
	states := q.C.DTA.NumStates
	p, err := q.ToDatalog([]string{"a", "b"}, "sel")
	if err != nil {
		t.Fatal(err)
	}
	bound := 2*(4*(states+1)*(states+1)+2*states+4) + states + 2 + 8
	if len(p.Rules) > bound {
		t.Errorf("program has %d rules, loose bound %d (states=%d)", len(p.Rules), bound, states)
	}
}
