package mso

import (
	"fmt"

	"mdlog/internal/tree"
)

// This file implements the direct (textbook) semantics of MSO over
// trees. It enumerates set assignments explicitly and is therefore
// exponential; it exists as the reference point against which the
// automaton-based evaluator and the Theorem 4.4 datalog translation
// are verified on small trees, and as the baseline that motivates the
// paper's complexity argument (MSO evaluation is PSPACE-complete in
// combined complexity).

// maxNaiveDom bounds the domain for the naive evaluator: set variables
// are represented as uint64 bitmasks.
const maxNaiveDom = 64

// Env assigns first-order variables to node ids and second-order
// variables to node sets (bitmasks over document-order ids).
type Env struct {
	FO map[Var]int
	SO map[Var]uint64
}

// NewEnv returns an empty assignment.
func NewEnv() *Env { return &Env{FO: map[Var]int{}, SO: map[Var]uint64{}} }

// NaiveEval decides t ⊨ f under the given environment by direct
// recursion. The tree must have at most 64 nodes.
func NaiveEval(f Formula, t *tree.Tree, env *Env) (bool, error) {
	if t.Size() > maxNaiveDom {
		return false, fmt.Errorf("mso: naive evaluation supports at most %d nodes, got %d", maxNaiveDom, t.Size())
	}
	if env == nil {
		env = NewEnv()
	}
	if err := Validate(f); err != nil {
		return false, err
	}
	return naiveEval(f, t, env)
}

func naiveEval(f Formula, t *tree.Tree, env *Env) (bool, error) {
	lookupFO := func(v Var) (*tree.Node, error) {
		id, ok := env.FO[v]
		if !ok {
			return nil, fmt.Errorf("mso: unbound first-order variable %s", v)
		}
		if id < 0 || id >= t.Size() {
			return nil, fmt.Errorf("mso: variable %s bound to invalid node %d", v, id)
		}
		return t.Nodes[id], nil
	}
	switch g := f.(type) {
	case True:
		return true, nil
	case False:
		return false, nil
	case Label:
		n, err := lookupFO(g.X)
		if err != nil {
			return false, err
		}
		return n.Label == g.Label, nil
	case Un:
		n, err := lookupFO(g.X)
		if err != nil {
			return false, err
		}
		switch g.Kind {
		case UnRoot:
			return n.IsRoot(), nil
		case UnLeaf:
			return n.IsLeaf(), nil
		case UnLastSibling:
			return n.IsLastSibling(), nil
		}
	case Bin:
		x, err := lookupFO(g.X)
		if err != nil {
			return false, err
		}
		y, err := lookupFO(g.Y)
		if err != nil {
			return false, err
		}
		switch g.Kind {
		case BinFirstChild:
			return x.FirstChild() == y && y != nil, nil
		case BinNextSibling:
			return x.NextSibling() == y && y != nil, nil
		case BinChild:
			return y.Parent == x, nil
		case BinBefore:
			return x.ID < y.ID, nil
		case BinEq:
			return x == y, nil
		}
	case In:
		n, err := lookupFO(g.X)
		if err != nil {
			return false, err
		}
		set, ok := env.SO[g.S]
		if !ok {
			return false, fmt.Errorf("mso: unbound second-order variable %s", g.S)
		}
		return set&(1<<uint(n.ID)) != 0, nil
	case Subset:
		s, ok := env.SO[g.S]
		if !ok {
			return false, fmt.Errorf("mso: unbound second-order variable %s", g.S)
		}
		u, ok := env.SO[g.T]
		if !ok {
			return false, fmt.Errorf("mso: unbound second-order variable %s", g.T)
		}
		return s&^u == 0, nil
	case Not:
		v, err := naiveEval(g.F, t, env)
		return !v, err
	case And:
		l, err := naiveEval(g.L, t, env)
		if err != nil || !l {
			return false, err
		}
		return naiveEval(g.R, t, env)
	case Or:
		l, err := naiveEval(g.L, t, env)
		if err != nil || l {
			return l, err
		}
		return naiveEval(g.R, t, env)
	case Exists:
		return naiveQuant(g.V, g.Body, t, env, false)
	case Forall:
		return naiveQuant(g.V, g.Body, t, env, true)
	}
	return false, fmt.Errorf("mso: unknown formula %T", f)
}

func naiveQuant(v Var, body Formula, t *tree.Tree, env *Env, universal bool) (bool, error) {
	if v.IsSet() {
		old, had := env.SO[v]
		defer restoreSO(env, v, old, had)
		n := uint(t.Size())
		var limit uint64 = 1 << n
		for set := uint64(0); ; set++ {
			if n < 64 && set >= limit {
				break
			}
			env.SO[v] = set
			ok, err := naiveEval(body, t, env)
			if err != nil {
				return false, err
			}
			if universal && !ok {
				return false, nil
			}
			if !universal && ok {
				return true, nil
			}
			if n == 64 && set == ^uint64(0) {
				break
			}
		}
		return universal, nil
	}
	old, had := env.FO[v]
	defer restoreFO(env, v, old, had)
	for id := 0; id < t.Size(); id++ {
		env.FO[v] = id
		ok, err := naiveEval(body, t, env)
		if err != nil {
			return false, err
		}
		if universal && !ok {
			return false, nil
		}
		if !universal && ok {
			return true, nil
		}
	}
	return universal, nil
}

func restoreSO(env *Env, v Var, old uint64, had bool) {
	if had {
		env.SO[v] = old
	} else {
		delete(env.SO, v)
	}
}

func restoreFO(env *Env, v Var, old int, had bool) {
	if had {
		env.FO[v] = old
	} else {
		delete(env.FO, v)
	}
}

// NaiveSelect evaluates the unary query f(freeVar) on t by direct
// enumeration of candidate nodes (reference semantics for Theorem 4.4
// tests). The formula must have exactly freeVar free.
func NaiveSelect(f Formula, freeVar Var, t *tree.Tree) ([]int, error) {
	fv := FreeVars(f)
	if len(fv) != 1 || fv[0] != freeVar {
		return nil, fmt.Errorf("mso: formula must have exactly %s free, has %v", freeVar, fv)
	}
	var out []int
	env := NewEnv()
	for id := 0; id < t.Size(); id++ {
		env.FO[freeVar] = id
		ok, err := naiveEval(f, t, env)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, id)
		}
	}
	return out, nil
}

// NaiveSentence decides t ⊨ f for a sentence (no free variables).
func NaiveSentence(f Formula, t *tree.Tree) (bool, error) {
	if fv := FreeVars(f); len(fv) != 0 {
		return false, fmt.Errorf("mso: sentence has free variables %v", fv)
	}
	return NaiveEval(f, t, nil)
}
