package mso

import (
	"fmt"

	"mdlog/internal/datalog"
)

// ToDatalog realizes Theorem 4.4 constructively: every unary
// MSO-definable query over τ_ur is definable in monadic datalog. The
// ≡-types Θ↑ / Θ↓ of the paper's proof are represented by the states
// of the compiled deterministic bottom-up automaton:
//
//   - up_q(x): the binary-encoding subtree rooted at x (x's subtree
//     plus its right siblings' subtrees), read unmarked, evaluates to
//     state q — the TMSO,↑ types of part (1);
//   - ctx_q(x): if that subtree evaluated to q, the whole tree would be
//     accepted — the TMSO,↓ envelope types of part (2);
//   - the selection rules combine both, exactly as part (3) combines
//     Θ↑ and Θ↓ via witnesses.
//
// The generated program is monadic datalog over τ_ur (plus a helper
// nons(x) := lastsibling(x) ∨ root(x) for "no next sibling") and can
// be evaluated with the linear-time engine of Theorem 4.2.
//
// alphabet is the full finite label alphabet Σ of the target documents
// (the paper fixes a finite Σ; labels the formula does not mention are
// handled by the compiled automaton's catch-all symbol). The query
// predicate of the result is queryPred.
func (q *UnaryQuery) ToDatalog(alphabet []string, queryPred string) (*datalog.Program, error) {
	if queryPred == "" {
		queryPred = "mso_select"
	}
	d := q.C.DTA
	bot := d.LeafState(0)
	p := &datalog.Program{Query: queryPred}
	V, At, R := datalog.V, datalog.At, datalog.R

	up := func(s int) string { return fmt.Sprintf("up_%d", s) }
	ctx := func(s int) string { return fmt.Sprintf("ctx_%d", s) }

	// Alphabet sanity: the automaton collapses unmentioned labels into
	// its catch-all symbol, so every label of Σ must be covered.
	seen := map[string]bool{}
	for _, a := range alphabet {
		if seen[a] {
			return nil, fmt.Errorf("mso: duplicate label %q in alphabet", a)
		}
		seen[a] = true
	}

	// nons(x): x has no next sibling in the encoding.
	p.Add(
		R(At("nons", V("X")), At("lastsibling", V("X"))),
		R(At("nons", V("X")), At("root", V("X"))),
	)

	for _, a := range alphabet {
		s0 := q.C.Sym(a, 0)
		labelAtom := At("label_"+a, V("X"))

		// Part (1): bottom-up state rules, one per (q1, q2) ∈ (Q∪{⊥})².
		p.Add(R(At(up(d.Step(bot, bot, s0)), V("X")),
			labelAtom, At("leaf", V("X")), At("nons", V("X"))))
		for q2 := 0; q2 < d.NumStates; q2++ {
			p.Add(R(At(up(d.Step(bot, q2, s0)), V("X")),
				labelAtom, At("leaf", V("X")),
				At("nextsibling", V("X"), V("Y")), At(up(q2), V("Y"))))
		}
		for q1 := 0; q1 < d.NumStates; q1++ {
			p.Add(R(At(up(d.Step(q1, bot, s0)), V("X")),
				labelAtom, At("firstchild", V("X"), V("Y")), At(up(q1), V("Y")),
				At("nons", V("X"))))
			for q2 := 0; q2 < d.NumStates; q2++ {
				p.Add(R(At(up(d.Step(q1, q2, s0)), V("X")),
					labelAtom,
					At("firstchild", V("X"), V("Y1")), At(up(q1), V("Y1")),
					At("nextsibling", V("X"), V("Y2")), At(up(q2), V("Y2"))))
			}
		}

		// Part (2): top-down context rules. For a node x with state
		// q = δ(q1,q2,sym(a)), context q at x propagates context q1 to the
		// firstchild and q2 to the nextsibling.
		for q1 := 0; q1 < d.NumStates; q1++ {
			for q2 := 0; q2 < d.NumStates; q2++ {
				qq := d.Step(q1, q2, s0)
				p.Add(R(At(ctx(q1), V("Y1")),
					At(ctx(qq), V("X")), labelAtom,
					At("firstchild", V("X"), V("Y1")),
					At("nextsibling", V("X"), V("Y2")), At(up(q2), V("Y2"))))
				p.Add(R(At(ctx(q2), V("Y2")),
					At(ctx(qq), V("X")), labelAtom,
					At("nextsibling", V("X"), V("Y2")),
					At("firstchild", V("X"), V("Y1")), At(up(q1), V("Y1"))))
			}
			// q2 = ⊥ (no next sibling).
			qq := d.Step(q1, bot, s0)
			p.Add(R(At(ctx(q1), V("Y1")),
				At(ctx(qq), V("X")), labelAtom,
				At("firstchild", V("X"), V("Y1")), At("nons", V("X"))))
		}
		for q2 := 0; q2 < d.NumStates; q2++ {
			// q1 = ⊥ (leaf).
			qq := d.Step(bot, q2, s0)
			p.Add(R(At(ctx(q2), V("Y2")),
				At(ctx(qq), V("X")), labelAtom,
				At("nextsibling", V("X"), V("Y2")), At("leaf", V("X"))))
		}

		// Part (3): selection — the node's own symbol switches to its
		// marked variant; select iff the resulting state lies in the
		// node's context.
		s1 := q.C.Sym(a, 1<<uint(q.freeBit))
		p.Add(R(At(queryPred, V("X")),
			labelAtom, At("leaf", V("X")), At("nons", V("X")),
			At(ctx(d.Step(bot, bot, s1)), V("X"))))
		for q2 := 0; q2 < d.NumStates; q2++ {
			p.Add(R(At(queryPred, V("X")),
				labelAtom, At("leaf", V("X")),
				At("nextsibling", V("X"), V("Y")), At(up(q2), V("Y")),
				At(ctx(d.Step(bot, q2, s1)), V("X"))))
		}
		for q1 := 0; q1 < d.NumStates; q1++ {
			p.Add(R(At(queryPred, V("X")),
				labelAtom, At("firstchild", V("X"), V("Y")), At(up(q1), V("Y")),
				At("nons", V("X")),
				At(ctx(d.Step(q1, bot, s1)), V("X"))))
			for q2 := 0; q2 < d.NumStates; q2++ {
				p.Add(R(At(queryPred, V("X")),
					labelAtom,
					At("firstchild", V("X"), V("Y1")), At(up(q1), V("Y1")),
					At("nextsibling", V("X"), V("Y2")), At(up(q2), V("Y2")),
					At(ctx(d.Step(q1, q2, s1)), V("X"))))
			}
		}
	}

	// Context seed: accepting states hold at the root.
	for s := 0; s < d.NumStates; s++ {
		if d.Accept[s] {
			p.Add(R(At(ctx(s), V("X")), At("root", V("X"))))
		}
	}
	return p, nil
}
