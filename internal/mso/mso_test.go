package mso

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"mdlog/internal/tree"
)

func TestParseAndString(t *testing.T) {
	cases := []string{
		"root(x)",
		"label_a(x) & ~leaf(x)",
		"exists y (firstchild(x,y) | nextsibling(x,y))",
		"forall X (x in X -> x in X)",
		"X sub Y",
		"x = y",
		"before(x,y)",
		"child(x,y)",
		"true | false",
	}
	for _, src := range cases {
		f, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		// Reparse the printed form.
		if _, err := Parse(f.String()); err != nil {
			t.Errorf("reparse of %q (printed %q): %v", src, f.String(), err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"label_(x)",
		"root(x",
		"root()",
		"x",
		"x =",
		"exists (root(x))",
		"x in y",  // y is first-order
		"x sub Y", // x is first-order
		"root(X)", // X is second-order
		"firstchild(X,y)",
		"root(x) )",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestFreeVarsAndRank(t *testing.T) {
	f := MustParse("exists y (firstchild(x,y) & forall Z (y in Z -> x in Z))")
	fv := FreeVars(f)
	if len(fv) != 1 || fv[0] != "x" {
		t.Errorf("FreeVars = %v", fv)
	}
	if QuantifierRank(f) != 2 {
		t.Errorf("QuantifierRank = %d", QuantifierRank(f))
	}
	s := MustParse("forall x (leaf(x) | label_a(x))")
	if len(FreeVars(s)) != 0 {
		t.Errorf("sentence has free vars: %v", FreeVars(s))
	}
}

func TestNaiveEvalBasics(t *testing.T) {
	tr := tree.MustParse("a(b,c(d,e),f)")
	cases := []struct {
		src  string
		want []int
	}{
		{"root(x)", []int{0}},
		{"leaf(x)", []int{1, 3, 4, 5}},
		{"lastsibling(x)", []int{4, 5}},
		{"label_c(x)", []int{2}},
		{"exists y firstchild(x,y)", []int{0, 2}},
		{"exists y nextsibling(y,x)", []int{2, 4, 5}},
		{"exists y child(y,x)", []int{1, 2, 3, 4, 5}},
		{"exists y (child(x,y) & label_d(y))", []int{2}},
		{"exists y (before(x,y) & label_f(y))", []int{0, 1, 2, 3, 4}},
		{"x = x", []int{0, 1, 2, 3, 4, 5}},
		{"~leaf(x) & ~root(x)", []int{2}},
		// Second-order: x is in every set containing the root and closed
		// under child — i.e. every node (all reachable from the root).
		{"forall X ((forall r (root(r) -> r in X)) & (forall u (forall v ((u in X & child(u,v)) -> v in X))) -> x in X)", []int{0, 1, 2, 3, 4, 5}},
	}
	for _, c := range cases {
		got, err := NaiveSelect(MustParse(c.src), "x", tr)
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Errorf("%q: got %v, want %v", c.src, got, c.want)
		}
	}
}

func TestNaiveSentence(t *testing.T) {
	tr := tree.MustParse("a(b,b)")
	ok, err := NaiveSentence(MustParse("forall x (leaf(x) -> label_b(x))"), tr)
	if err != nil || !ok {
		t.Errorf("sentence eval: %v %v", ok, err)
	}
	ok, err = NaiveSentence(MustParse("exists x label_c(x)"), tr)
	if err != nil || ok {
		t.Errorf("sentence eval: %v %v", ok, err)
	}
	if _, err := NaiveSentence(MustParse("label_a(x)"), tr); err == nil {
		t.Error("free variable in sentence must error")
	}
}

// queriesUnderTest is a shared battery of unary MSO queries exercising
// every atom and both quantifier sorts.
var queriesUnderTest = []string{
	"root(x)",
	"leaf(x)",
	"lastsibling(x)",
	"label_a(x)",
	"label_a(x) | label_b(x)",
	"~label_a(x)",
	"exists y firstchild(x,y)",
	"exists y (nextsibling(x,y) & label_a(y))",
	"exists y (child(x,y) & leaf(y))",
	"forall y (child(x,y) -> label_a(y))",
	"exists y (child(y,x) & label_b(y))",
	"exists y (before(y,x) & label_b(y))",
	"exists y (firstchild(x,y) & exists z (nextsibling(y,z) & label_a(z)))",
	// x has an ancestor labeled b: via sets closed under parent.
	"exists Y (x in Y & (forall u (forall v ((v in Y & child(u,v)) -> u in Y))) & exists r (r in Y & label_b(r) & ~(r = x)))",
	// every leaf below x (in x's "descendant-closed" sets) — tests ∀ SO.
	"forall y (y = x | ~(y = x))", // trivially all nodes
	"exists y (y = x & leaf(y))",
}

// TestCompiledMatchesNaive is the central Theorem 4.4 premise check:
// the automaton evaluation agrees with the direct MSO semantics.
func TestCompiledMatchesNaive(t *testing.T) {
	for _, src := range queriesUnderTest {
		f := MustParse(src)
		q, err := CompileQuery(f)
		if err != nil {
			t.Fatalf("compile %q: %v", src, err)
		}
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < 25; i++ {
			tr := tree.Random(rng, tree.RandomOptions{
				Labels: []string{"a", "b", "c"}, Size: 1 + rng.Intn(10), MaxChildren: 3})
			want, err := NaiveSelect(f, "x", tr)
			if err != nil {
				t.Fatalf("naive %q: %v", src, err)
			}
			got := q.Select(tr)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Errorf("%q on %s: automaton %v, naive %v", src, tr, got, want)
			}
		}
	}
}

func TestCompiledSentences(t *testing.T) {
	sentences := []string{
		"forall x (leaf(x) -> label_a(x))",
		"exists x (root(x) & label_b(x))",
		"forall x (label_a(x) | label_b(x))",
		"exists X (forall x (x in X <-> label_a(x)))", // always true
	}
	rng := rand.New(rand.NewSource(13))
	for _, src := range sentences {
		f := MustParse(src)
		s, err := CompileSentence(f)
		if err != nil {
			t.Fatalf("compile %q: %v", src, err)
		}
		for i := 0; i < 25; i++ {
			tr := tree.Random(rng, tree.RandomOptions{
				Labels: []string{"a", "b"}, Size: 1 + rng.Intn(9), MaxChildren: 3})
			want, err := NaiveSentence(f, tr)
			if err != nil {
				t.Fatal(err)
			}
			if got := s.Accepts(tr); got != want {
				t.Errorf("%q on %s: automaton %v, naive %v", src, tr, got, want)
			}
		}
	}
}

func TestCompiledQuickRandomTrees(t *testing.T) {
	// Property test over random trees for a nontrivial query: "x roots a
	// subtree that contains a b-labeled leaf".
	q := MustCompileQuery("exists Y (x in Y & (forall u (forall v ((u in Y & child(u,v)) -> v in Y))) & exists l (l in Y & leaf(l) & label_b(l)))")
	f := MustParse(q.C.Formula.String())
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := tree.Random(rng, tree.RandomOptions{
			Labels: []string{"a", "b"}, Size: 1 + rng.Intn(8), MaxChildren: 3})
		want, err := NaiveSelect(f, "x", tr)
		if err != nil {
			return false
		}
		return fmt.Sprint(q.Select(tr)) == fmt.Sprint(want)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCompileQueryErrors(t *testing.T) {
	if _, err := CompileQuery(MustParse("forall x (leaf(x) -> leaf(x))")); err == nil {
		t.Error("sentence accepted as unary query")
	}
	if _, err := CompileQuery(MustParse("firstchild(x,y)")); err == nil {
		t.Error("two free variables accepted")
	}
	if _, err := CompileSentence(MustParse("root(x)")); err == nil {
		t.Error("free variable accepted in sentence")
	}
}

func TestValidateSorts(t *testing.T) {
	bad := []Formula{
		Label{"X", "a"},
		Un{UnRoot, "X"},
		Bin{BinFirstChild, "x", "Y"},
		In{"X", "Y"},
		In{"x", "y"},
		Subset{"x", "Y"},
	}
	for _, f := range bad {
		if err := Validate(f); err == nil {
			t.Errorf("Validate(%s): expected error", f)
		}
	}
}

func TestRenameApart(t *testing.T) {
	f := MustParse("exists y (firstchild(x,y) & exists y nextsibling(x,y))")
	r := renameApart(f)
	// The two y binders must now bind distinct names, x untouched.
	outer := r.(Exists)
	inner := outer.Body.(And).R.(Exists)
	if outer.V == inner.V {
		t.Error("binders not renamed apart")
	}
	if FreeVars(r)[0] != "x" {
		t.Error("free variable renamed")
	}
}
