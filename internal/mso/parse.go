package mso

import (
	"fmt"
	"strings"
)

// Parse reads an MSO formula. Grammar (loosest binding first):
//
//	iff    := imp ('<->' imp)*
//	imp    := or ('->' imp)?                  (right associative)
//	or     := and ('|' and)*
//	and    := unary ('&' unary)*
//	unary  := '~' unary | 'exists' var unary | 'forall' var unary
//	        | '(' iff ')' | atom
//	atom   := 'true' | 'false'
//	        | ('root'|'leaf'|'lastsibling') '(' var ')'
//	        | 'label_'NAME '(' var ')'
//	        | ('firstchild'|'nextsibling'|'child'|'before') '(' var ',' var ')'
//	        | var '=' var | var 'in' VAR | VAR 'sub' VAR
//
// Lower-case variables are first-order, upper-case second-order.
func Parse(src string) (Formula, error) {
	p := &msoParser{toks: tokenizeMSO(src)}
	f, err := p.iff()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("mso: trailing input %q", p.toks[p.pos])
	}
	if err := Validate(f); err != nil {
		return nil, err
	}
	return f, nil
}

// MustParse is Parse, panicking on error.
func MustParse(src string) Formula {
	f, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return f
}

func tokenizeMSO(src string) []string {
	var toks []string
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(' || c == ')' || c == ',' || c == '~' || c == '&' || c == '|' || c == '=':
			toks = append(toks, string(c))
			i++
		case strings.HasPrefix(src[i:], "<->"):
			toks = append(toks, "<->")
			i += 3
		case strings.HasPrefix(src[i:], "->"):
			toks = append(toks, "->")
			i += 2
		default:
			j := i
			for j < len(src) && (isWordByte(src[j])) {
				j++
			}
			if j == i {
				toks = append(toks, string(c))
				i++
			} else {
				toks = append(toks, src[i:j])
				i = j
			}
		}
	}
	return toks
}

func isWordByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
		c == '_' || c == '#' || c == '-'
}

type msoParser struct {
	toks []string
	pos  int
}

func (p *msoParser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *msoParser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *msoParser) expect(t string) error {
	if p.peek() != t {
		return fmt.Errorf("mso: expected %q, got %q", t, p.peek())
	}
	p.pos++
	return nil
}

func (p *msoParser) iff() (Formula, error) {
	l, err := p.imp()
	if err != nil {
		return nil, err
	}
	for p.peek() == "<->" {
		p.pos++
		r, err := p.imp()
		if err != nil {
			return nil, err
		}
		l = Iff(l, r)
	}
	return l, nil
}

func (p *msoParser) imp() (Formula, error) {
	l, err := p.or()
	if err != nil {
		return nil, err
	}
	if p.peek() == "->" {
		p.pos++
		r, err := p.imp()
		if err != nil {
			return nil, err
		}
		return Impl(l, r), nil
	}
	return l, nil
}

func (p *msoParser) or() (Formula, error) {
	l, err := p.and()
	if err != nil {
		return nil, err
	}
	for p.peek() == "|" {
		p.pos++
		r, err := p.and()
		if err != nil {
			return nil, err
		}
		l = Or{l, r}
	}
	return l, nil
}

func (p *msoParser) and() (Formula, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.peek() == "&" {
		p.pos++
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = And{l, r}
	}
	return l, nil
}

func isVarName(t string) bool {
	if t == "" {
		return false
	}
	c := t[0]
	if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z') {
		return false
	}
	switch t {
	case "exists", "forall", "true", "false", "in", "sub",
		"root", "leaf", "lastsibling", "firstchild", "nextsibling", "child", "before":
		return false
	}
	return !strings.HasPrefix(t, "label_")
}

func (p *msoParser) unary() (Formula, error) {
	switch t := p.peek(); {
	case t == "~":
		p.pos++
		f, err := p.unary()
		if err != nil {
			return nil, err
		}
		return Not{f}, nil
	case t == "exists" || t == "forall":
		p.pos++
		v := p.next()
		if !isVarName(v) {
			return nil, fmt.Errorf("mso: expected variable after %s, got %q", t, v)
		}
		body, err := p.unary()
		if err != nil {
			return nil, err
		}
		if t == "exists" {
			return Exists{Var(v), body}, nil
		}
		return Forall{Var(v), body}, nil
	case t == "(":
		p.pos++
		f, err := p.iff()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return f, nil
	default:
		return p.atom()
	}
}

func (p *msoParser) varToken() (Var, error) {
	t := p.next()
	if !isVarName(t) {
		return "", fmt.Errorf("mso: expected variable, got %q", t)
	}
	return Var(t), nil
}

func (p *msoParser) atom() (Formula, error) {
	t := p.next()
	switch t {
	case "true":
		return True{}, nil
	case "false":
		return False{}, nil
	case "root", "leaf", "lastsibling":
		if err := p.expect("("); err != nil {
			return nil, err
		}
		v, err := p.varToken()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		kind := map[string]UnKind{"root": UnRoot, "leaf": UnLeaf, "lastsibling": UnLastSibling}[t]
		return Un{kind, v}, nil
	case "firstchild", "nextsibling", "child", "before":
		if err := p.expect("("); err != nil {
			return nil, err
		}
		x, err := p.varToken()
		if err != nil {
			return nil, err
		}
		if err := p.expect(","); err != nil {
			return nil, err
		}
		y, err := p.varToken()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		kind := map[string]BinKind{
			"firstchild": BinFirstChild, "nextsibling": BinNextSibling,
			"child": BinChild, "before": BinBefore}[t]
		return Bin{kind, x, y}, nil
	}
	if strings.HasPrefix(t, "label_") {
		label := t[len("label_"):]
		if label == "" {
			return nil, fmt.Errorf("mso: empty label in %q", t)
		}
		if err := p.expect("("); err != nil {
			return nil, err
		}
		v, err := p.varToken()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return Label{v, label}, nil
	}
	if isVarName(t) {
		switch p.peek() {
		case "=":
			p.pos++
			y, err := p.varToken()
			if err != nil {
				return nil, err
			}
			return Bin{BinEq, Var(t), y}, nil
		case "in":
			p.pos++
			s, err := p.varToken()
			if err != nil {
				return nil, err
			}
			return In{Var(t), s}, nil
		case "sub":
			p.pos++
			s, err := p.varToken()
			if err != nil {
				return nil, err
			}
			return Subset{Var(t), s}, nil
		}
		return nil, fmt.Errorf("mso: lone variable %q (expected =, in or sub)", t)
	}
	return nil, fmt.Errorf("mso: unexpected token %q", t)
}
