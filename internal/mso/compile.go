package mso

import (
	"fmt"

	"mdlog/internal/automata"
)

// Compilation of MSO formulas into complete deterministic bottom-up
// tree automata over the firstchild/nextsibling binary encoding — the
// classical Thatcher–Wright/Doner construction behind Proposition 2.1,
// and the machine realizing the ≡-types of the Theorem 4.4 proof.
//
// Encoding: every node of the original unranked tree becomes an
// internal (rank-2) node whose left child encodes its first child and
// whose right child encodes its next sibling; missing pointers become
// ⊥ leaves. Each subformula is compiled over the alphabet
// Σ_eff × {0,1}^k where k is the number of its FREE variables only
// (one marking bit each); connectives cylindrify their operands to the
// union of the free variables, and quantifiers project a bit away and
// drop it from the alphabet. Keeping alphabets minimal per subformula
// is what makes the construction practical.
//
// First-order variables are handled via the standard MSO₀ reduction:
// every variable is compiled as a set (marking bit); atoms are given
// existential set semantics (e.g. firstchild(x,y) becomes "some node
// marked x has a first child marked y"), which coincides with the
// first-order semantics on singleton markings; and each first-order
// quantifier conjoins a singleton automaton before projecting its bit.
//
// Negation is complementation (flip acceptance of a complete DTA),
// conjunction/disjunction are products, quantification is projection
// followed by determinization and minimization — the paper's
// nonelementary worst case lives exactly in those determinizations,
// which the MSO blow-up benchmark measures.

// maxCompileBits bounds the number of free variables of any
// subformula; each costs a marking bit in that subformula's alphabet.
const maxCompileBits = 20

// OtherLabel is the catch-all alphabet symbol for labels not mentioned
// in the formula (Remark 2.2's finitely-many-labels argument).
const OtherLabel = "#other"

// Compiled is a compiled MSO formula: a complete minimal DTA plus the
// symbol table.
type Compiled struct {
	Formula Formula
	DTA     *automata.DTA
	// LabelIdx maps a label mentioned in the formula to its index;
	// unmentioned labels map to OtherLabel's index.
	LabelIdx map[string]int
	// LabelList lists labels by index (the last entry is OtherLabel).
	LabelList []string
	// FreeBits maps each free variable to its marking-bit index.
	FreeBits map[Var]int
	// Bits is the number of marking bits (= number of free variables).
	Bits int
}

// Sym returns the symbol for a node with the given label and marking bits.
func (c *Compiled) Sym(label string, bits int) int {
	li, ok := c.LabelIdx[label]
	if !ok {
		li = c.LabelIdx[OtherLabel]
	}
	return li<<uint(c.Bits) | bits
}

// aut is a DTA together with the ordered list of variables its marking
// bits refer to: symbol = labelIdx << len(vars) | bits, where bit i
// marks membership of vars[i].
type aut struct {
	d    *automata.DTA
	vars []Var
}

// Compile translates an MSO formula into a Compiled automaton. All
// labels beyond those mentioned in the formula are collapsed into
// OtherLabel.
func Compile(f Formula) (*Compiled, error) {
	if err := Validate(f); err != nil {
		return nil, err
	}
	rf := renameApart(f)
	labels := append(Labels(rf), OtherLabel)
	c := &compiler{labels: labels}
	a, err := c.compile(rf)
	if err != nil {
		return nil, err
	}
	// Order bits by FreeVars order for a stable public interface.
	free := FreeVars(rf)
	a, err = c.lift(a, free)
	if err != nil {
		return nil, err
	}
	out := &Compiled{
		Formula:   f,
		DTA:       shrink(a.d),
		LabelIdx:  map[string]int{},
		LabelList: labels,
		FreeBits:  map[Var]int{},
		Bits:      len(a.vars),
	}
	for i, l := range labels {
		out.LabelIdx[l] = i
	}
	for i, v := range a.vars {
		out.FreeBits[v] = i
	}
	return out, nil
}

type compiler struct {
	labels []string
}

// numSyms is the alphabet size for k marking bits.
func (c *compiler) numSyms(k int) int { return len(c.labels) << uint(k) }

// shrink reduces an automaton after a construction step: full
// minimization while affordable, reachability trimming beyond (Moore
// refinement costs Θ(states² · symbols) per round).
func shrink(d *automata.DTA) *automata.DTA {
	if cost := int64(d.NumStates) * int64(d.NumStates) * int64(d.NumSymbols); cost <= 1e8 {
		return d.Minimize()
	}
	return d.Trim()
}

// lift cylindrifies a onto the variable list newVars (a superset of
// a.vars, possibly reordered): the new automaton reads the extra bits
// and ignores them.
func (c *compiler) lift(a aut, newVars []Var) (aut, error) {
	if len(newVars) > maxCompileBits {
		return aut{}, fmt.Errorf("mso: subformula exceeds %d free variables", maxCompileBits)
	}
	if varsEqual(a.vars, newVars) {
		return a, nil
	}
	pos := map[Var]int{}
	for i, v := range newVars {
		pos[v] = i
	}
	oldPos := make([]int, len(a.vars))
	for i, v := range a.vars {
		p, ok := pos[v]
		if !ok {
			return aut{}, fmt.Errorf("mso: internal lift error: %s missing", v)
		}
		oldPos[i] = p
	}
	kNew, kOld := len(newVars), len(a.vars)
	oldOf := make([]int, c.numSyms(kNew))
	for sym := range oldOf {
		label := sym >> uint(kNew)
		bits := sym & (1<<uint(kNew) - 1)
		oldBits := 0
		for i := 0; i < kOld; i++ {
			if bits>>uint(oldPos[i])&1 == 1 {
				oldBits |= 1 << uint(i)
			}
		}
		oldOf[sym] = label<<uint(kOld) | oldBits
	}
	return aut{d: a.d.ExpandSymbols(oldOf, []int{0}), vars: newVars}, nil
}

// mergeVars unions two variable lists, keeping the order of the first.
func mergeVars(a, b []Var) []Var {
	out := append([]Var(nil), a...)
	seen := map[Var]bool{}
	for _, v := range a {
		seen[v] = true
	}
	for _, v := range b {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

func varsEqual(a, b []Var) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (c *compiler) compile(f Formula) (aut, error) {
	switch g := f.(type) {
	case True:
		return c.constant(true), nil
	case False:
		return c.constant(false), nil
	case Label:
		li := c.labelIdx(g.Label)
		return c.foundAtom([]Var{g.X}, func(label, bits int) bool {
			return bits&1 == 1 && label == li
		}), nil
	case Un:
		switch g.Kind {
		case UnRoot:
			return c.rootAtom(g.X), nil
		case UnLeaf:
			return c.leafAtom(g.X), nil
		case UnLastSibling:
			return c.lastSiblingAtom(g.X), nil
		}
	case Bin:
		switch g.Kind {
		case BinEq:
			return c.pairFoundAtom(g.X, g.Y), nil
		case BinFirstChild:
			return c.edgeAtom(g.X, g.Y, true), nil
		case BinNextSibling:
			return c.edgeAtom(g.X, g.Y, false), nil
		case BinChild:
			return c.childAtom(g.X, g.Y), nil
		case BinBefore:
			return c.beforeAtom(g.X, g.Y), nil
		}
	case In:
		return c.pairFoundAtom(g.X, g.S), nil
	case Subset:
		return c.subsetAtom(g.S, g.T), nil
	case Not:
		a, err := c.compile(g.F)
		if err != nil {
			return aut{}, err
		}
		return aut{d: a.d.Complement(), vars: a.vars}, nil
	case And:
		return c.binop(g.L, g.R, func(a, b bool) bool { return a && b })
	case Or:
		return c.binop(g.L, g.R, func(a, b bool) bool { return a || b })
	case Exists:
		body, err := c.compile(g.Body)
		if err != nil {
			return aut{}, err
		}
		vi := varIndex(body.vars, g.V)
		if vi == -1 {
			// The variable does not occur: ∃v φ ≡ φ (trees are nonempty,
			// so a witness node/set always exists).
			return body, nil
		}
		if !g.V.IsSet() {
			sing := c.singleton(g.V)
			body, err = c.productAut(body, sing, func(a, b bool) bool { return a && b })
			if err != nil {
				return aut{}, err
			}
			vi = varIndex(body.vars, g.V)
		}
		return c.projectVar(body, vi), nil
	case Forall:
		// ∀v φ ≡ ¬∃v ¬φ (the singleton guard for first-order v is added
		// inside the Exists case).
		return c.compile(Not{Exists{g.V, Not{g.Body}}})
	}
	return aut{}, fmt.Errorf("mso: cannot compile %T", f)
}

func varIndex(vars []Var, v Var) int {
	for i, w := range vars {
		if w == v {
			return i
		}
	}
	return -1
}

func (c *compiler) labelIdx(label string) int {
	for i, l := range c.labels {
		if l == label {
			return i
		}
	}
	return len(c.labels) - 1 // OtherLabel
}

func (c *compiler) binop(l, r Formula, comb func(a, b bool) bool) (aut, error) {
	al, err := c.compile(l)
	if err != nil {
		return aut{}, err
	}
	ar, err := c.compile(r)
	if err != nil {
		return aut{}, err
	}
	return c.productAut(al, ar, comb)
}

func (c *compiler) productAut(al, ar aut, comb func(a, b bool) bool) (aut, error) {
	vars := mergeVars(al.vars, ar.vars)
	al, err := c.lift(al, vars)
	if err != nil {
		return aut{}, err
	}
	ar, err = c.lift(ar, vars)
	if err != nil {
		return aut{}, err
	}
	return aut{d: shrink(automata.Product(al.d, ar.d, comb)), vars: vars}, nil
}

// projectVar existentially quantifies the bit of vars[vi] and removes
// it from the alphabet.
func (c *compiler) projectVar(a aut, vi int) aut {
	k := len(a.vars)
	// Step 1: nondeterministically guess the bit.
	pre := make([][]int, c.numSyms(k))
	for sym := range pre {
		pre[sym] = []int{sym &^ (1 << uint(vi)), sym | 1<<uint(vi)}
	}
	d := automata.ProjectSymbols(a.d, pre, [][]int{{0}}).Determinize()
	// Step 2: drop the now-ignored bit from the alphabet.
	newVars := make([]Var, 0, k-1)
	for i, v := range a.vars {
		if i != vi {
			newVars = append(newVars, v)
		}
	}
	oldOf := make([]int, c.numSyms(k-1))
	for sym := range oldOf {
		label := sym >> uint(k-1)
		bits := sym & (1<<uint(k-1) - 1)
		low := bits & (1<<uint(vi) - 1)
		high := bits >> uint(vi) << uint(vi+1)
		oldOf[sym] = label<<uint(k) | high | low
	}
	return aut{d: shrink(d.ExpandSymbols(oldOf, []int{0})), vars: newVars}
}

// tabulate builds a complete DTA over the alphabet for the given
// variable list from a transition function on (q1, q2, label, bits).
func (c *compiler) tabulate(vars []Var, states, leafState int, accept []bool,
	delta func(q1, q2, label, bits int) int) aut {
	k := len(vars)
	d := automata.NewDTA(states, c.numSyms(k), 1)
	copy(d.Accept, accept)
	d.LeafTrans[0] = leafState
	mask := 1<<uint(k) - 1
	for q1 := 0; q1 < states; q1++ {
		for q2 := 0; q2 < states; q2++ {
			for sym := 0; sym < d.NumSymbols; sym++ {
				d.SetTrans(q1, q2, sym, delta(q1, q2, sym>>uint(k), sym&mask))
			}
		}
	}
	return aut{d: d, vars: vars}
}

// constant accepts every tree (or none).
func (c *compiler) constant(value bool) aut {
	return c.tabulate(nil, 1, 0, []bool{value}, func(q1, q2, label, bits int) int { return 0 })
}

// foundAtom is the generic "∃ node satisfying a (label, bits)
// predicate" automaton over one variable.
func (c *compiler) foundAtom(vars []Var, cond func(label, bits int) bool) aut {
	return c.tabulate(vars, 2, 0, []bool{false, true}, func(q1, q2, label, bits int) int {
		if q1 == 1 || q2 == 1 || cond(label, bits) {
			return 1
		}
		return 0
	})
}

// pairFoundAtom accepts iff some node carries both marks (x = y and
// x ∈ S).
func (c *compiler) pairFoundAtom(x, y Var) aut {
	return c.foundAtom([]Var{x, y}, func(label, bits int) bool { return bits == 3 })
}

// subsetAtom accepts iff NO node is marked S but not T.
func (c *compiler) subsetAtom(s, t Var) aut {
	return c.tabulate([]Var{s, t}, 2, 0, []bool{true, false}, func(q1, q2, label, bits int) int {
		if q1 == 1 || q2 == 1 || bits&1 == 1 && bits&2 == 0 {
			return 1
		}
		return 0
	})
}

// singleton accepts iff exactly one node carries the mark.
func (c *compiler) singleton(v Var) aut {
	return c.tabulate([]Var{v}, 3, 0, []bool{false, true, false}, func(q1, q2, label, bits int) int {
		n := q1 + q2 + bits&1
		if n > 2 {
			n = 2
		}
		return n
	})
}

// rootAtom accepts iff the root carries the mark: the state is the bit
// of the current node.
func (c *compiler) rootAtom(v Var) aut {
	return c.tabulate([]Var{v}, 2, 0, []bool{false, true}, func(q1, q2, label, bits int) int {
		return bits & 1
	})
}

// edgeAtom accepts iff some node marked x (bit 0) has its
// encoding-left child (first = true: the original firstchild) or
// encoding-right child (first = false: nextsibling) marked y (bit 1).
// State bits: bit0 = "this subtree's root is marked y", bit1 = found.
func (c *compiler) edgeAtom(x, y Var, first bool) aut {
	return c.tabulate([]Var{x, y}, 4, 0, []bool{false, false, true, true},
		func(q1, q2, label, bits int) int {
			childMark := q1
			if !first {
				childMark = q2
			}
			state := 0
			if bits&2 == 2 {
				state = 1
			}
			if q1 >= 2 || q2 >= 2 || (bits&1 == 1 && childMark&1 == 1) {
				state |= 2
			}
			return state
		})
}

// leafAtom accepts iff some marked node is a leaf of the ORIGINAL tree
// (encoding-left child is ⊥). States: 0 plain, 1 found, 2 = ⊥ leaf.
func (c *compiler) leafAtom(v Var) aut {
	return c.tabulate([]Var{v}, 3, 2, []bool{false, true, false},
		func(q1, q2, label, bits int) int {
			if q1 == 1 || q2 == 1 || (bits&1 == 1 && q1 == 2) {
				return 1
			}
			return 0
		})
}

// lastSiblingAtom accepts iff some marked node is a last sibling: its
// encoding-right child is ⊥ and it is not the root. "Pending" state 3
// marks a node that qualifies provided it has a parent; it counts as
// found one level up and is not accepting at the root.
func (c *compiler) lastSiblingAtom(v Var) aut {
	return c.tabulate([]Var{v}, 4, 2, []bool{false, true, false, false},
		func(q1, q2, label, bits int) int {
			if q1 == 1 || q1 == 3 || q2 == 1 || q2 == 3 {
				return 1
			}
			if bits&1 == 1 && q2 == 2 {
				return 3
			}
			return 0
		})
}

// childAtom accepts iff some node marked x (bit 0) has an original
// child marked y (bit 1): the left encoding child starts the sibling
// chain, tracked via "ychain" = chain starting here contains a y-mark.
// State bits: bit0 = ychain, bit1 = found; ⊥ = 0.
func (c *compiler) childAtom(x, y Var) aut {
	return c.tabulate([]Var{x, y}, 4, 0, []bool{false, false, true, true},
		func(q1, q2, label, bits int) int {
			state := 0
			if bits&2 == 2 || q2&1 == 1 {
				state = 1
			}
			if q1 >= 2 || q2 >= 2 || (bits&1 == 1 && q1&1 == 1) {
				state |= 2
			}
			return state
		})
}

// beforeAtom accepts iff some node marked x (bit 0) precedes some node
// marked y (bit 1) in document order. Document order of the original
// tree equals preorder of the encoding. State bits: bit0 = hasX,
// bit1 = hasY, bit2 = found; ⊥ = 0.
func (c *compiler) beforeAtom(x, y Var) aut {
	accept := make([]bool, 8)
	for s := 4; s < 8; s++ {
		accept[s] = true
	}
	return c.tabulate([]Var{x, y}, 8, 0, accept,
		func(q1, q2, label, bits int) int {
			state := 0
			if bits&1 == 1 || q1&1 == 1 || q2&1 == 1 {
				state |= 1
			}
			if bits&2 == 2 || q1&2 == 2 || q2&2 == 2 {
				state |= 2
			}
			if q1&4 == 4 || q2&4 == 4 ||
				(bits&1 == 1 && (q1&2 == 2 || q2&2 == 2)) ||
				(q1&1 == 1 && q2&2 == 2) {
				state |= 4
			}
			return state
		})
}
