// Package mso implements monadic second-order logic over the unranked
// tree signature τ_ur of Gottlob & Koch (PODS 2002): formulas, a
// reference (direct-semantics) evaluator, compilation to deterministic
// bottom-up tree automata over the firstchild/nextsibling binary
// encoding (the classical construction behind Proposition 2.1), linear
// unary-query evaluation, and the constructive translation of unary
// MSO queries into monadic datalog (Theorem 4.4 / Corollary 4.17).
//
// Variable sorts follow the paper: lower-case names (x, y, ...) are
// first-order node variables; upper-case names (P, Q, ...) are
// second-order set variables.
package mso

import (
	"fmt"
	"unicode"
)

// Var is a variable name. First-order iff the first rune is lower case.
type Var string

// IsSet reports whether the variable is second-order.
func (v Var) IsSet() bool {
	if v == "" {
		return false
	}
	return unicode.IsUpper(rune(v[0]))
}

// Formula is an MSO formula over τ_ur.
type Formula interface {
	fmt.Stringer
	isFormula()
}

// UnKind enumerates the unary relations of τ_ur.
type UnKind int

const (
	UnRoot UnKind = iota
	UnLeaf
	UnLastSibling
)

func (k UnKind) String() string {
	switch k {
	case UnRoot:
		return "root"
	case UnLeaf:
		return "leaf"
	case UnLastSibling:
		return "lastsibling"
	}
	return "?"
}

// BinKind enumerates binary atoms: the τ_ur relations plus the
// MSO-definable conveniences child and before (document order ≺),
// which are provided as built-ins.
type BinKind int

const (
	BinFirstChild BinKind = iota
	BinNextSibling
	BinChild
	BinBefore
	BinEq
)

func (k BinKind) String() string {
	switch k {
	case BinFirstChild:
		return "firstchild"
	case BinNextSibling:
		return "nextsibling"
	case BinChild:
		return "child"
	case BinBefore:
		return "before"
	case BinEq:
		return "="
	}
	return "?"
}

// The formula constructors.
type (
	// True and False are the boolean constants.
	True  struct{}
	False struct{}

	// Label is label_a(x).
	Label struct {
		X     Var
		Label string
	}

	// Un is root(x), leaf(x) or lastsibling(x).
	Un struct {
		Kind UnKind
		X    Var
	}

	// Bin is firstchild(x,y), nextsibling(x,y), child(x,y),
	// before(x,y) or x = y. Both variables are first-order.
	Bin struct {
		Kind BinKind
		X, Y Var
	}

	// In is x ∈ X.
	In struct {
		X Var // first-order
		S Var // second-order
	}

	// Subset is X ⊆ Y.
	Subset struct{ S, T Var }

	// Not is ¬φ.
	Not struct{ F Formula }

	// And is φ ∧ ψ.
	And struct{ L, R Formula }

	// Or is φ ∨ ψ.
	Or struct{ L, R Formula }

	// Exists is ∃v φ (first- or second-order, by the sort of V).
	Exists struct {
		V    Var
		Body Formula
	}

	// Forall is ∀v φ.
	Forall struct {
		V    Var
		Body Formula
	}
)

func (True) isFormula()   {}
func (False) isFormula()  {}
func (Label) isFormula()  {}
func (Un) isFormula()     {}
func (Bin) isFormula()    {}
func (In) isFormula()     {}
func (Subset) isFormula() {}
func (Not) isFormula()    {}
func (And) isFormula()    {}
func (Or) isFormula()     {}
func (Exists) isFormula() {}
func (Forall) isFormula() {}

func (True) String() string  { return "true" }
func (False) String() string { return "false" }
func (f Label) String() string {
	return fmt.Sprintf("label_%s(%s)", f.Label, f.X)
}
func (f Un) String() string { return fmt.Sprintf("%s(%s)", f.Kind, f.X) }
func (f Bin) String() string {
	if f.Kind == BinEq {
		return fmt.Sprintf("%s = %s", f.X, f.Y)
	}
	return fmt.Sprintf("%s(%s,%s)", f.Kind, f.X, f.Y)
}
func (f In) String() string     { return fmt.Sprintf("%s in %s", f.X, f.S) }
func (f Subset) String() string { return fmt.Sprintf("%s sub %s", f.S, f.T) }
func (f Not) String() string    { return fmt.Sprintf("~%s", paren(f.F)) }
func (f And) String() string    { return fmt.Sprintf("%s & %s", paren(f.L), paren(f.R)) }
func (f Or) String() string     { return fmt.Sprintf("%s | %s", paren(f.L), paren(f.R)) }
func (f Exists) String() string { return fmt.Sprintf("exists %s %s", f.V, paren(f.Body)) }
func (f Forall) String() string { return fmt.Sprintf("forall %s %s", f.V, paren(f.Body)) }

func paren(f Formula) string {
	switch f.(type) {
	case True, False, Label, Un, In, Subset, Not:
		return f.String()
	case Bin:
		if f.(Bin).Kind == BinEq {
			return "(" + f.String() + ")"
		}
		return f.String()
	default:
		return "(" + f.String() + ")"
	}
}

// Sugar constructors.

// Impl builds φ → ψ as ¬φ ∨ ψ.
func Impl(l, r Formula) Formula { return Or{Not{l}, r} }

// Iff builds φ ↔ ψ.
func Iff(l, r Formula) Formula { return And{Impl(l, r), Impl(r, l)} }

// FreeVars returns the free variables of f in first-occurrence order.
func FreeVars(f Formula) []Var {
	var out []Var
	seen := map[Var]bool{}
	bound := map[Var]int{}
	var walk func(f Formula)
	add := func(v Var) {
		if bound[v] == 0 && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	walk = func(f Formula) {
		switch g := f.(type) {
		case Label:
			add(g.X)
		case Un:
			add(g.X)
		case Bin:
			add(g.X)
			add(g.Y)
		case In:
			add(g.X)
			add(g.S)
		case Subset:
			add(g.S)
			add(g.T)
		case Not:
			walk(g.F)
		case And:
			walk(g.L)
			walk(g.R)
		case Or:
			walk(g.L)
			walk(g.R)
		case Exists:
			bound[g.V]++
			walk(g.Body)
			bound[g.V]--
		case Forall:
			bound[g.V]++
			walk(g.Body)
			bound[g.V]--
		}
	}
	walk(f)
	return out
}

// Labels returns the sorted set of labels mentioned in f.
func Labels(f Formula) []string {
	set := map[string]bool{}
	var walk func(f Formula)
	walk = func(f Formula) {
		switch g := f.(type) {
		case Label:
			set[g.Label] = true
		case Not:
			walk(g.F)
		case And:
			walk(g.L)
			walk(g.R)
		case Or:
			walk(g.L)
			walk(g.R)
		case Exists:
			walk(g.Body)
		case Forall:
			walk(g.Body)
		}
	}
	walk(f)
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Validate checks variable sorts: unary/binary atoms take first-order
// variables, In takes (first-order, second-order), Subset two
// second-order variables.
func Validate(f Formula) error {
	switch g := f.(type) {
	case True, False:
		return nil
	case Label:
		if g.X.IsSet() {
			return fmt.Errorf("mso: label atom needs a first-order variable, got %s", g.X)
		}
	case Un:
		if g.X.IsSet() {
			return fmt.Errorf("mso: %s needs a first-order variable, got %s", g.Kind, g.X)
		}
	case Bin:
		if g.X.IsSet() || g.Y.IsSet() {
			return fmt.Errorf("mso: %s needs first-order variables, got %s, %s", g.Kind, g.X, g.Y)
		}
	case In:
		if g.X.IsSet() || !g.S.IsSet() {
			return fmt.Errorf("mso: 'in' needs x in X (first-order in second-order), got %s in %s", g.X, g.S)
		}
	case Subset:
		if !g.S.IsSet() || !g.T.IsSet() {
			return fmt.Errorf("mso: 'sub' needs second-order variables, got %s sub %s", g.S, g.T)
		}
	case Not:
		return Validate(g.F)
	case And:
		if err := Validate(g.L); err != nil {
			return err
		}
		return Validate(g.R)
	case Or:
		if err := Validate(g.L); err != nil {
			return err
		}
		return Validate(g.R)
	case Exists:
		return Validate(g.Body)
	case Forall:
		return Validate(g.Body)
	}
	return nil
}

// QuantifierRank returns the maximum nesting depth of quantifiers,
// the paper's quantifier rank k (Section 2).
func QuantifierRank(f Formula) int {
	switch g := f.(type) {
	case Not:
		return QuantifierRank(g.F)
	case And:
		return max(QuantifierRank(g.L), QuantifierRank(g.R))
	case Or:
		return max(QuantifierRank(g.L), QuantifierRank(g.R))
	case Exists:
		return 1 + QuantifierRank(g.Body)
	case Forall:
		return 1 + QuantifierRank(g.Body)
	default:
		return 0
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// rename returns f with all bound variables renamed apart (fresh names
// v<N> / V<N> preserving sorts), so that every variable has a unique
// binding site. Free variables are untouched.
func renameApart(f Formula) Formula {
	counter := 0
	fresh := func(v Var) Var {
		counter++
		if v.IsSet() {
			return Var(fmt.Sprintf("V%d", counter))
		}
		return Var(fmt.Sprintf("v%d", counter))
	}
	var walk func(f Formula, env map[Var]Var) Formula
	sub := func(v Var, env map[Var]Var) Var {
		if w, ok := env[v]; ok {
			return w
		}
		return v
	}
	walk = func(f Formula, env map[Var]Var) Formula {
		switch g := f.(type) {
		case Label:
			return Label{sub(g.X, env), g.Label}
		case Un:
			return Un{g.Kind, sub(g.X, env)}
		case Bin:
			return Bin{g.Kind, sub(g.X, env), sub(g.Y, env)}
		case In:
			return In{sub(g.X, env), sub(g.S, env)}
		case Subset:
			return Subset{sub(g.S, env), sub(g.T, env)}
		case Not:
			return Not{walk(g.F, env)}
		case And:
			return And{walk(g.L, env), walk(g.R, env)}
		case Or:
			return Or{walk(g.L, env), walk(g.R, env)}
		case Exists:
			nv := fresh(g.V)
			inner := extend(env, g.V, nv)
			return Exists{nv, walk(g.Body, inner)}
		case Forall:
			nv := fresh(g.V)
			inner := extend(env, g.V, nv)
			return Forall{nv, walk(g.Body, inner)}
		default:
			return f
		}
	}
	return walk(f, map[Var]Var{})
}

func extend(env map[Var]Var, k, v Var) map[Var]Var {
	out := make(map[Var]Var, len(env)+1)
	for a, b := range env {
		out[a] = b
	}
	out[k] = v
	return out
}
