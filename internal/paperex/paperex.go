// Package paperex constructs the worked examples of Gottlob & Koch
// (PODS 2002) — programs, automata and trees from Examples 3.2, 4.9,
// 4.15, 4.21, 5.10 and Theorem 6.6 — shared by tests, benchmarks and
// the runnable examples.
package paperex

import (
	"fmt"

	"mdlog/internal/datalog"
	"mdlog/internal/tree"
)

// EvenAProgram builds the monadic datalog program of Example 3.2: over
// τ_ur it selects all nodes that root a subtree containing an even
// number of nodes labeled "a". otherLabels is Σ − {a}, the remaining
// labels of the alphabet (rule (4) needs one instance per such label).
// The query predicate is c0 ("even").
//
// Predicates (i ∈ {0,1}): bi — count mod 2 of a-labeled nodes strictly
// below x; ci — count mod 2 including x; ri — count mod 2 over the
// subtrees of x and its right siblings.
func EvenAProgram(otherLabels ...string) *datalog.Program {
	p := &datalog.Program{Query: "c0"}
	V, At, R := datalog.V, datalog.At, datalog.R
	num := func(pfx string, i int) string { return fmt.Sprintf("%s%d", pfx, i) }
	// (1) B0(x) ← leaf(x).
	p.Add(R(At("b0", V("X")), At("leaf", V("X"))))
	for i := 0; i <= 1; i++ {
		// (2) Bi(x0) ← firstchild(x0,x), Ri(x).
		p.Add(R(At(num("b", i), V("X0")),
			At("firstchild", V("X0"), V("X")), At(num("r", i), V("X"))))
		// (3) C(i+1 mod 2)(x) ← Bi(x), label_a(x).
		p.Add(R(At(num("c", (i+1)%2), V("X")),
			At(num("b", i), V("X")), At("label_a", V("X"))))
		// (4) Ci(x) ← Bi(x), label_l(x)  for each l ∈ Σ−{a}.
		for _, l := range otherLabels {
			p.Add(R(At(num("c", i), V("X")),
				At(num("b", i), V("X")), At("label_"+l, V("X"))))
		}
		// (5) Ri(x) ← lastsibling(x), Ci(x).
		p.Add(R(At(num("r", i), V("X")),
			At("lastsibling", V("X")), At(num("c", i), V("X"))))
		for j := 0; j <= 1; j++ {
			// (6) R(i+j mod 2)(x0) ← Cj(x0), nextsibling(x0,x), Ri(x).
			p.Add(R(At(num("r", (i+j)%2), V("X0")),
				At(num("c", j), V("X0")),
				At("nextsibling", V("X0"), V("X")),
				At(num("r", i), V("X"))))
		}
	}
	return p
}

// Example32Tree returns the 4-node tree of Example 3.2: a root n1 with
// three children n2, n3, n4, all labeled "a". Node ids follow document
// order (n1 = 0, ..., n4 = 3).
func Example32Tree() *tree.Tree {
	return tree.MustParse("a(a,a,a)")
}

// EvenASpec is the reference semantics of the Example 3.2 query: the
// set of nodes whose subtree contains an even number of "a" nodes,
// computed directly on the tree.
func EvenASpec(t *tree.Tree) []int {
	var out []int
	var count func(n *tree.Node) int
	count = func(n *tree.Node) int {
		c := 0
		if n.Label == "a" {
			c = 1
		}
		for _, ch := range n.Children {
			c += count(ch)
		}
		return c
	}
	for _, n := range t.Nodes {
		if count(n)%2 == 0 {
			out = append(out, n.ID)
		}
	}
	return out
}
