package paperex

import (
	"fmt"
	"testing"

	"mdlog/internal/tree"
)

func mustParse(s string) *tree.Tree { return tree.MustParse(s) }

func TestExample32Tree(t *testing.T) {
	tr := Example32Tree()
	if tr.Size() != 4 || tr.Root.Label != "a" || len(tr.Root.Children) != 3 {
		t.Errorf("tree = %s", tr)
	}
}

func TestEvenASpec(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"a", "[]"},         // 1 a: odd
		{"b", "[0]"},        // 0 a's: even
		{"a(a)", "[1]"},     // root has 2 (even? root subtree = 2 a's -> even!) — wait
		{"a(a,a,a)", "[0]"}, // the paper's tree: root subtree has 4 a's
		{"b(a,a)", "[0]"},   // 2 a's below b
	}
	// Recompute expectations carefully: subtree counts.
	// a(a): root subtree = 2 (even) -> root selected; child subtree = 1 (odd).
	cases[2].want = "[0]"
	for _, c := range cases {
		tr := mustParse(c.src)
		if got := fmt.Sprint(intsOrEmpty(EvenASpec(tr))); got != c.want {
			t.Errorf("EvenASpec(%s) = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestEvenAProgramStructure(t *testing.T) {
	p := EvenAProgram()
	if p.Query != "c0" {
		t.Errorf("query = %q", p.Query)
	}
	// Σ = {a}: 1 + 2·(1 + 1 + 0 + 1 + 2) = 11 rules (rule (4) absent).
	if len(p.Rules) != 11 {
		t.Errorf("rules = %d", len(p.Rules))
	}
	p2 := EvenAProgram("b", "c")
	// Adds rule (4) twice per parity: 11 + 4 = 15.
	if len(p2.Rules) != 15 {
		t.Errorf("rules = %d", len(p2.Rules))
	}
	if err := p2.Check(); err != nil {
		t.Errorf("Check: %v", err)
	}
	if !p2.IsMonadic() {
		t.Error("not monadic")
	}
}

func intsOrEmpty(xs []int) []int {
	if xs == nil {
		return []int{}
	}
	return xs
}
