package eval

import (
	"fmt"

	"mdlog/internal/datalog"
	"mdlog/internal/tree"
)

// This file implements Theorem 4.2: monadic datalog over τ_rk / τ_ur
// has O(|P| · |dom|) combined complexity. The algorithm follows the
// paper's proof:
//
//  1. split every rule into connected rules (introducing propositional
//     helper predicates);
//  2. ground each connected rule in O(|dom|) instantiations, using the
//     bidirectional functional dependencies of the binary tree
//     relations (Proposition 4.1) to propagate a single anchor binding
//     to all variables;
//  3. evaluate the resulting ground program with linear-time
//     propositional Horn inference (Proposition 3.5).
//
// Beyond τ_ur and τ_rk the engine also accepts lastchild/2, which
// enjoys the same two functional dependencies (each node has at most
// one last child and is last child of at most one node); the natural
// child/2 relation does NOT (a node has many children) and is rejected
// — eliminate it first via tmnf.Transform, as in Theorem 5.2.

// SplitConnected rewrites p so that every rule is connected, exactly as
// in the first step of the proof of Theorem 4.2: each connected
// component of a rule's query graph that does not contain the head
// variable is split into a fresh rule with a propositional head.
// Helper predicates are named conn_<rule>_<component>.
func SplitConnected(p *datalog.Program) *datalog.Program {
	out := &datalog.Program{Query: p.Query}
	for ri, r := range p.Rules {
		vars := r.Vars()
		if len(vars) <= 1 {
			out.Rules = append(out.Rules, r.Clone())
			continue
		}
		idx := map[string]int{}
		for i, v := range vars {
			idx[v] = i
		}
		parent := make([]int, len(vars))
		for i := range parent {
			parent[i] = i
		}
		var find func(int) int
		find = func(x int) int {
			for parent[x] != x {
				parent[x] = parent[parent[x]]
				x = parent[x]
			}
			return x
		}
		union := func(x, y int) { parent[find(x)] = find(y) }
		for _, b := range r.Body {
			prev := -1
			for _, t := range b.Args {
				if !t.IsVar() {
					continue
				}
				cur := idx[t.Var]
				if prev >= 0 {
					union(prev, cur)
				}
				prev = cur
			}
		}
		// Component of the head variable (or -1 for propositional heads).
		headComp := -1
		if len(r.Head.Args) == 1 && r.Head.Args[0].IsVar() {
			headComp = find(idx[r.Head.Args[0].Var])
		}
		// Group body atoms by component; variable-free atoms stay in the
		// main rule.
		groups := map[int][]datalog.Atom{}
		var mainBody []datalog.Atom
		for _, b := range r.Body {
			comp := -1
			for _, t := range b.Args {
				if t.IsVar() {
					comp = find(idx[t.Var])
					break
				}
			}
			if comp == -1 || comp == headComp {
				mainBody = append(mainBody, b)
			} else {
				groups[comp] = append(groups[comp], b)
			}
		}
		if len(groups) == 0 {
			out.Rules = append(out.Rules, r.Clone())
			continue
		}
		ci := 0
		for comp := range vars { // deterministic order: iterate var index
			atoms, ok := groups[find(comp)]
			if !ok || len(atoms) == 0 {
				continue
			}
			delete(groups, find(comp))
			helper := fmt.Sprintf("conn_%d_%d", ri, ci)
			ci++
			out.Rules = append(out.Rules, datalog.Rule{
				Head: datalog.Atom{Pred: helper},
				Body: atoms,
			})
			mainBody = append(mainBody, datalog.Atom{Pred: helper})
		}
		out.Rules = append(out.Rules, datalog.Rule{Head: r.Head.Clone(), Body: mainBody})
	}
	return out
}

// binEdge is a binary EDB atom compiled for propagation.
type binEdge struct {
	pred string
	kind binKind
	k    int // for child_k
	x, y int // variable slots
}

type binKind int

const (
	binFirstChild binKind = iota
	binNextSibling
	binLastChild
	binChildK
)

// forward returns R(v) for the partial function underlying the relation.
func (e binEdge) forward(nav *Nav, v int) int {
	switch e.kind {
	case binFirstChild:
		return int(nav.FC[v])
	case binNextSibling:
		return int(nav.NS[v])
	case binLastChild:
		return int(nav.LastChild[v])
	case binChildK:
		return nav.ChildK(v, e.k)
	}
	return -1
}

// backward returns R⁻¹(v).
func (e binEdge) backward(nav *Nav, v int) int {
	switch e.kind {
	case binFirstChild:
		if nav.Prev[v] == -1 {
			return int(nav.Parent[v])
		}
	case binNextSibling:
		return int(nav.Prev[v])
	case binLastChild:
		if nav.NS[v] == -1 {
			return int(nav.Parent[v])
		}
	case binChildK:
		if int(nav.ChildIdx[v]) == e.k-1 {
			return int(nav.Parent[v])
		}
	}
	return -1
}

// planStep propagates a binding along a spanning-tree edge.
type planStep struct {
	edge    binEdge
	forward bool // bind edge.y from edge.x (else x from y)
}

// unaryCheck is a unary EDB body atom compiled to its kind; label
// predicates carry an index into the plan's label list, resolved to a
// per-tree symbol id once per Run, so the per-node test is an integer
// compare.
type unaryCheck struct {
	kind     unaryKind
	labelIdx int32 // index into Plan.labels (kind == uLabel)
	v        int   // variable slot
}

// idbUnaryRef is a unary IDB body atom with its predicate pre-resolved
// to the plan's dense unary-predicate index.
type idbUnaryRef struct {
	pid int // index into Plan.unaryPreds
	v   int // variable slot
}

type linearRule struct {
	src      datalog.Rule
	nvars    int
	headPred string
	headID   int // index into Plan.unaryPreds or Plan.propPreds
	headVar  int // slot of the head variable, or -1 for propositional heads
	anchor   int // slot grounded by the outer loop, or -1 if nvars == 0
	steps    []planStep
	checks   []binEdge // non-spanning-tree binary atoms, verified post hoc
	unary    []unaryCheck
	idbUnary []idbUnaryRef
	idbProp  []int // indices into Plan.propPreds
}

// compileLinear builds the grounding plan for a connected rule. It is
// tree-independent: the plan can be prepared once and run against any
// number of documents. It runs on the builder because it interns
// labels — the only Plan mutation, confined to construction.
func (bld planBuilder) compileLinear(r datalog.Rule, idb map[string]bool) (*linearRule, error) {
	pl := bld.pl
	lr := &linearRule{src: r, headVar: -1, anchor: -1, headPred: r.Head.Pred}
	slot := map[string]int{}
	getSlot := func(t datalog.Term) (int, error) {
		if !t.IsVar() {
			return 0, fmt.Errorf("eval: constants are not supported by the linear tree engine (rule %s)", r)
		}
		s, ok := slot[t.Var]
		if !ok {
			s = lr.nvars
			slot[t.Var] = s
			lr.nvars++
		}
		return s, nil
	}
	var edges []binEdge
	for _, b := range r.Body {
		switch len(b.Args) {
		case 0:
			if !idb[b.Pred] {
				return nil, nil // propositional atom with no rules: dead rule
			}
			lr.idbProp = append(lr.idbProp, pl.propID[b.Pred])
		case 1:
			v, err := getSlot(b.Args[0])
			if err != nil {
				return nil, err
			}
			if idb[b.Pred] {
				lr.idbUnary = append(lr.idbUnary, idbUnaryRef{pl.unaryID[b.Pred], v})
			} else if kind, label, ok := classifyUnary(b.Pred); ok {
				lr.unary = append(lr.unary, unaryCheck{kind: kind, labelIdx: bld.labelIdx(label), v: v})
			} else {
				// Neither extensional nor the head of any rule: the body
				// atom can never be satisfied, so the rule is dead.
				return nil, nil
			}
		case 2:
			if idb[b.Pred] {
				return nil, fmt.Errorf("eval: binary intensional predicate %s is not monadic", b.Pred)
			}
			e := binEdge{pred: b.Pred}
			switch b.Pred {
			case PredFirstChild:
				e.kind = binFirstChild
			case PredNextSibling:
				e.kind = binNextSibling
			case PredLastChild:
				e.kind = binLastChild
			case PredChild:
				return nil, fmt.Errorf("eval: child/2 lacks the functional dependency $1→$2 required by Theorem 4.2; eliminate it with tmnf.Transform first")
			default:
				if k, ok := IsChildKPred(b.Pred); ok {
					e.kind, e.k = binChildK, k
				} else {
					return nil, fmt.Errorf("eval: unknown binary predicate %s", b.Pred)
				}
			}
			var err error
			if e.x, err = getSlot(b.Args[0]); err != nil {
				return nil, err
			}
			if e.y, err = getSlot(b.Args[1]); err != nil {
				return nil, err
			}
			edges = append(edges, e)
		default:
			return nil, fmt.Errorf("eval: atom %s has arity > 2", b)
		}
	}
	if len(r.Head.Args) == 1 {
		hv, err := getSlot(r.Head.Args[0])
		if err != nil {
			return nil, err
		}
		lr.headVar = hv
		lr.headID = pl.unaryID[r.Head.Pred]
	} else if len(r.Head.Args) > 1 {
		return nil, fmt.Errorf("eval: non-monadic head %s", r.Head)
	} else {
		lr.headID = pl.propID[r.Head.Pred]
	}

	// Build the spanning traversal from the anchor over the variable graph.
	if lr.nvars > 0 {
		if lr.headVar >= 0 {
			lr.anchor = lr.headVar
		} else {
			lr.anchor = 0
		}
		visited := make([]bool, lr.nvars)
		used := make([]bool, len(edges))
		visited[lr.anchor] = true
		frontier := []int{lr.anchor}
		for len(frontier) > 0 {
			v := frontier[0]
			frontier = frontier[1:]
			for ei, e := range edges {
				if used[ei] {
					continue
				}
				switch {
				case e.x == v && !visited[e.y]:
					used[ei] = true
					visited[e.y] = true
					lr.steps = append(lr.steps, planStep{edge: e, forward: true})
					frontier = append(frontier, e.y)
				case e.y == v && !visited[e.x]:
					used[ei] = true
					visited[e.x] = true
					lr.steps = append(lr.steps, planStep{edge: e, forward: false})
					frontier = append(frontier, e.x)
				case (e.x == v || e.y == v) && visited[e.x] && visited[e.y]:
					used[ei] = true
					lr.checks = append(lr.checks, e)
				}
			}
		}
		for s := 0; s < lr.nvars; s++ {
			if !visited[s] {
				return nil, fmt.Errorf("eval: rule is not connected (SplitConnected must run first): %s", r)
			}
		}
		for ei, e := range edges {
			if !used[ei] {
				lr.checks = append(lr.checks, e)
			}
		}
	}
	return lr, nil
}

// LinearTree evaluates a monadic datalog program over the τ_ur / τ_rk
// representation of t in time O(|P| · |dom|) (Theorem 4.2). The result
// contains only the intensional relations.
//
// LinearTree prepares the grounding plan anew on every call; use
// NewPlan + Plan.Run (or Plan.RunTree) to amortize that work across
// many documents.
func LinearTree(p *datalog.Program, t *tree.Tree) (*datalog.Database, error) {
	pl, err := NewPlan(p)
	if err != nil {
		return nil, err
	}
	return pl.Run(NewNav(t))
}
