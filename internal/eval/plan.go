package eval

import (
	"fmt"

	"mdlog/internal/datalog"
	"mdlog/internal/horn"
	"mdlog/internal/tree"
)

// Plan is a monadic datalog program prepared once for the linear-time
// engine of Theorem 4.2 and runnable against any number of documents:
// connected-rule splitting, atom numbering, and per-rule grounding
// plans are computed at construction; Run only grounds the plan over
// one tree and solves the resulting propositional Horn program.
//
// A Plan is immutable after NewPlan returns and safe for concurrent
// use by multiple goroutines.
type Plan struct {
	src   *datalog.Program
	split *datalog.Program
	rules []*linearRule

	// Atom numbering: unary IDB pred i at node v ↦ i*dom+v, then
	// propositional predicates in a trailing block.
	unaryID, propID       map[string]int
	unaryPreds, propPreds []string
}

// NewPlan validates and prepares p for repeated linear-time
// evaluation. The returned Plan never mutates p.
func NewPlan(p *datalog.Program) (*Plan, error) {
	if err := p.Check(); err != nil {
		return nil, err
	}
	if !p.IsMonadic() {
		return nil, fmt.Errorf("eval: program is not monadic")
	}
	pl := &Plan{
		src:     p,
		split:   SplitConnected(p),
		unaryID: map[string]int{},
		propID:  map[string]int{},
	}
	idb := map[string]bool{}
	for _, r := range pl.split.Rules {
		idb[r.Head.Pred] = true
	}
	for _, r := range pl.split.Rules {
		pred := r.Head.Pred
		if len(r.Head.Args) == 1 {
			if _, ok := pl.unaryID[pred]; !ok {
				pl.unaryID[pred] = len(pl.unaryPreds)
				pl.unaryPreds = append(pl.unaryPreds, pred)
			}
		} else {
			if _, ok := pl.propID[pred]; !ok {
				pl.propID[pred] = len(pl.propPreds)
				pl.propPreds = append(pl.propPreds, pred)
			}
		}
	}
	// Predicates may appear in bodies as IDB without having rules; the
	// maps above cover all head predicates, which is sufficient: body
	// IDB atoms of unruled predicates can never hold, so rules
	// containing them can be skipped (compileLinear returns nil).
	for _, r := range pl.split.Rules {
		lr, err := compileLinear(r, idb)
		if err != nil {
			return nil, err
		}
		if lr != nil {
			pl.rules = append(pl.rules, lr)
		}
	}
	return pl, nil
}

// Program returns the source program the plan was built from.
func (pl *Plan) Program() *datalog.Program { return pl.src }

// QueryPred returns the program's distinguished query predicate.
func (pl *Plan) QueryPred() string { return pl.src.Query }

// Run grounds the plan over the tree behind nav and solves it,
// returning the intensional relations (the T_P^ω restriction computed
// by LinearTree). It allocates all mutable state locally and may be
// called concurrently.
func (pl *Plan) Run(nav *Nav) (*datalog.Database, error) {
	dom := nav.Tree.Size()
	atomUnary := func(pred string, v int) int { return pl.unaryID[pred]*dom + v }
	propBase := len(pl.unaryPreds) * dom
	atomProp := func(pred string) int { return propBase + pl.propID[pred] }

	var solver horn.Solver
	binding := make([]int, 32)
	for _, lr := range pl.rules {
		if lr.nvars > len(binding) {
			binding = make([]int, lr.nvars)
		}
		ground := func(anchorVal int) {
			if lr.nvars > 0 {
				for i := 0; i < lr.nvars; i++ {
					binding[i] = -1
				}
				binding[lr.anchor] = anchorVal
				for _, st := range lr.steps {
					if st.forward {
						w := st.edge.forward(nav, binding[st.edge.x])
						if w == -1 {
							return
						}
						binding[st.edge.y] = w
					} else {
						w := st.edge.backward(nav, binding[st.edge.y])
						if w == -1 {
							return
						}
						binding[st.edge.x] = w
					}
				}
				for _, e := range lr.checks {
					if st := e.forward(nav, binding[e.x]); st != binding[e.y] {
						return
					}
				}
				for _, u := range lr.unary {
					holds, _ := nav.unaryHolds(u.pred, binding[u.v])
					if !holds {
						return
					}
				}
			}
			var head int
			if lr.headVar >= 0 {
				head = atomUnary(lr.headPred, binding[lr.headVar])
			} else {
				head = atomProp(lr.headPred)
			}
			body := make([]int, 0, len(lr.idbUnary)+len(lr.idbProp))
			for _, u := range lr.idbUnary {
				body = append(body, atomUnary(u.pred, binding[u.v]))
			}
			for _, pr := range lr.idbProp {
				body = append(body, atomProp(pr))
			}
			solver.AddClause(head, body...)
		}
		if lr.nvars == 0 {
			ground(0)
		} else {
			for v := 0; v < dom; v++ {
				ground(v)
			}
		}
	}

	truth := solver.Solve(propBase + len(pl.propPreds))
	out := datalog.NewDatabase(dom)
	for pi, pred := range pl.unaryPreds {
		rel := out.Rel(pred, 1)
		for v := 0; v < dom; v++ {
			if truth[pi*dom+v] {
				rel.Add([]int{v})
			}
		}
	}
	for _, pred := range pl.propPreds {
		if truth[atomProp(pred)] {
			out.Rel(pred, 0).Add(nil)
		}
	}
	return out, nil
}

// RunTree is Run over a bare tree, building (or fetching from cache,
// when cache is non-nil) the navigation arrays.
func (pl *Plan) RunTree(t *tree.Tree, cache *TreeCache) (*datalog.Database, error) {
	if cache != nil {
		return pl.Run(cache.Nav(t))
	}
	return pl.Run(NewNav(t))
}
