package eval

import (
	"fmt"

	"mdlog/internal/datalog"
	"mdlog/internal/horn"
	"mdlog/internal/tree"
)

// Plan is a monadic datalog program prepared once for the linear-time
// engine of Theorem 4.2 and runnable against any number of documents:
// connected-rule splitting, atom numbering, and per-rule grounding
// plans are computed at construction; Run only grounds the plan over
// one tree and solves the resulting propositional Horn program.
//
// A Plan is immutable after NewPlan returns and safe for concurrent
// use by multiple goroutines.
type Plan struct {
	src   *datalog.Program
	split *datalog.Program
	rules []*linearRule

	// Atom numbering: unary IDB pred i at node v ↦ i*dom+v, then
	// propositional predicates in a trailing block.
	unaryID, propID       map[string]int
	unaryPreds, propPreds []string

	// labels lists the distinct label_a labels the program tests;
	// unaryCheck.labelIdx indexes it. Run resolves each to the
	// document's interned symbol id once, so the per-node label test
	// is an integer compare against the tree's label column. The list
	// is interned exclusively during NewPlan (via planBuilder); after
	// construction nothing mutates it, which is what makes Run safe to
	// call from many goroutines without synchronization.
	labels   []string
	labelIDs map[string]int32
}

// planBuilder is the only handle through which a Plan may be mutated.
// It exists purely during NewPlan: once NewPlan returns, no code path
// can reach label interning (or any other write) on the Plan, so the
// "immutable after NewPlan" contract holds by construction rather than
// by convention.
type planBuilder struct{ pl *Plan }

// labelIdx interns a label into the plan's label list, returning the
// index of its single occurrence (each tested label is stored once,
// however many rules test it).
func (b planBuilder) labelIdx(label string) int32 {
	pl := b.pl
	if id, ok := pl.labelIDs[label]; ok {
		return id
	}
	id := int32(len(pl.labels))
	pl.labels = append(pl.labels, label)
	pl.labelIDs[label] = id
	return id
}

// NewPlan validates and prepares p for repeated linear-time
// evaluation. The returned Plan never mutates p.
func NewPlan(p *datalog.Program) (*Plan, error) {
	if err := p.Check(); err != nil {
		return nil, err
	}
	if !p.IsMonadic() {
		return nil, fmt.Errorf("eval: program is not monadic")
	}
	pl := &Plan{
		src:      p,
		split:    SplitConnected(p),
		unaryID:  map[string]int{},
		propID:   map[string]int{},
		labelIDs: map[string]int32{},
	}
	idb := map[string]bool{}
	for _, r := range pl.split.Rules {
		idb[r.Head.Pred] = true
	}
	for _, r := range pl.split.Rules {
		pred := r.Head.Pred
		if len(r.Head.Args) == 1 {
			if _, ok := pl.unaryID[pred]; !ok {
				pl.unaryID[pred] = len(pl.unaryPreds)
				pl.unaryPreds = append(pl.unaryPreds, pred)
			}
		} else {
			if _, ok := pl.propID[pred]; !ok {
				pl.propID[pred] = len(pl.propPreds)
				pl.propPreds = append(pl.propPreds, pred)
			}
		}
	}
	// Predicates may appear in bodies as IDB without having rules; the
	// maps above cover all head predicates, which is sufficient: body
	// IDB atoms of unruled predicates can never hold, so rules
	// containing them can be skipped (compileLinear returns nil).
	b := planBuilder{pl: pl}
	for _, r := range pl.split.Rules {
		lr, err := b.compileLinear(r, idb)
		if err != nil {
			return nil, err
		}
		if lr != nil {
			pl.rules = append(pl.rules, lr)
		}
	}
	return pl, nil
}

// Program returns the source program the plan was built from.
func (pl *Plan) Program() *datalog.Program { return pl.src }

// QueryPred returns the program's distinguished query predicate.
func (pl *Plan) QueryPred() string { return pl.src.Query }

// Run grounds the plan over the tree behind nav and solves it,
// returning the intensional relations (the T_P^ω restriction computed
// by LinearTree). It allocates all mutable state locally and may be
// called concurrently.
func (pl *Plan) Run(nav *Nav) (*datalog.Database, error) {
	dom := nav.Dom()
	propBase := len(pl.unaryPreds) * dom

	// Resolve the program's label tests against this document's symbol
	// table once; absent labels resolve to -1, which matches no node.
	var labelSyms []int32
	if len(pl.labels) > 0 {
		labelSyms = make([]int32, len(pl.labels))
		for i, l := range pl.labels {
			labelSyms[i] = nav.LabelID(l)
		}
	}

	var solver horn.Solver
	binding := make([]int, 32)
	// bodyBuf backs every clause body: clauses are carved out of one
	// growing slice (the solver aliases them read-only), replacing one
	// allocation per grounded clause with amortized appends.
	var bodyBuf []int
	for _, lr := range pl.rules {
		if lr.nvars > len(binding) {
			binding = make([]int, lr.nvars)
		}
		ground := func(anchorVal int) {
			if lr.nvars > 0 {
				for i := 0; i < lr.nvars; i++ {
					binding[i] = -1
				}
				binding[lr.anchor] = anchorVal
				for _, st := range lr.steps {
					if st.forward {
						w := st.edge.forward(nav, binding[st.edge.x])
						if w == -1 {
							return
						}
						binding[st.edge.y] = w
					} else {
						w := st.edge.backward(nav, binding[st.edge.y])
						if w == -1 {
							return
						}
						binding[st.edge.x] = w
					}
				}
				for _, e := range lr.checks {
					if st := e.forward(nav, binding[e.x]); st != binding[e.y] {
						return
					}
				}
				for _, u := range lr.unary {
					w := binding[u.v]
					holds := false
					switch u.kind {
					case uLabel:
						holds = nav.Label[w] == labelSyms[u.labelIdx]
					case uRoot:
						holds = nav.Parent[w] == -1
					case uLeaf:
						holds = nav.FC[w] == -1
					case uLastSibling:
						holds = nav.NS[w] == -1 && nav.Parent[w] != -1
					case uFirstSibling:
						holds = nav.Prev[w] == -1 && nav.Parent[w] != -1
					case uDom:
						holds = true
					}
					if !holds {
						return
					}
				}
			}
			var head int
			if lr.headVar >= 0 {
				head = lr.headID*dom + binding[lr.headVar]
			} else {
				head = propBase + lr.headID
			}
			start := len(bodyBuf)
			for _, u := range lr.idbUnary {
				bodyBuf = append(bodyBuf, u.pid*dom+binding[u.v])
			}
			for _, pid := range lr.idbProp {
				bodyBuf = append(bodyBuf, propBase+pid)
			}
			solver.AddClause(head, bodyBuf[start:len(bodyBuf):len(bodyBuf)]...)
		}
		if lr.nvars == 0 {
			ground(0)
		} else if dead := nav.Dead; dead != nil {
			// Mutated arena: dead rows carry no facts and cannot anchor
			// a derivation. All non-anchor slots are reached from the
			// anchor along live columns, so this one skip suffices.
			for v := 0; v < dom; v++ {
				if !dead[v] {
					ground(v)
				}
			}
		} else {
			for v := 0; v < dom; v++ {
				ground(v)
			}
		}
	}

	truth := solver.Solve(propBase + len(pl.propPreds))
	out := datalog.NewDatabase(dom)
	var ids []int
	for pi, pred := range pl.unaryPreds {
		ids = ids[:0]
		for v := 0; v < dom; v++ {
			if truth[pi*dom+v] {
				ids = append(ids, v)
			}
		}
		out.Rel(pred, 1).AddUnarySet(ids)
	}
	for pi, pred := range pl.propPreds {
		if truth[propBase+pi] {
			out.Rel(pred, 0).Add(nil)
		}
	}
	return out, nil
}

// RunTree is Run over a bare tree, building (or fetching from cache,
// when cache is non-nil) the navigation arrays.
func (pl *Plan) RunTree(t *tree.Tree, cache *TreeCache) (*datalog.Database, error) {
	if cache != nil {
		return pl.Run(cache.Nav(t))
	}
	return pl.Run(NewNav(t))
}
