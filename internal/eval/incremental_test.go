package eval

import (
	"fmt"
	"math/rand"
	"testing"

	"mdlog/internal/datalog"
	"mdlog/internal/tree"
)

// incrementalPrograms covers the delta-maintainable fragment: label
// tests, every node class, every binary relation (including a child_k
// and a non-spanning-tree check atom), downward and upward recursion —
// plus one disconnected program that must take the fallback path.
var incrementalPrograms = []struct {
	name     string
	src      string
	fallback bool
}{
	{"descendant", `
		q(X) :- label_a(X).
		q(X) :- firstchild(Y, X), q(Y).
		q(X) :- nextsibling(Y, X), q(Y).
		?- q.`, false},
	{"classes-childk", `
		q(X) :- child_2(Y, X), label_b(Y).
		q(X) :- leaf(X), lastsibling(X).
		q(X) :- firstsibling(X), label_c(X).
		?- q.`, false},
	{"upward", `
		p(X) :- lastchild(X, Y), label_c(Y).
		p(X) :- firstchild(X, Y), p(Y).
		q(X) :- p(X), firstsibling(X).
		?- q.`, false},
	{"check-edge", `
		q(X) :- firstchild(X, Y), nextsibling(Y, Z), lastchild(X, Z).
		q(X) :- root(X), leaf(X).
		?- q.`, false},
	{"disconnected-fallback", `
		q(X) :- label_a(X), label_b(Y), leaf(Y).
		?- q.`, true},
}

// headPreds returns the program's IDB predicates, the relations the
// oracles compare.
func headPreds(p *datalog.Program) []string {
	seen := map[string]bool{}
	var preds []string
	for _, r := range p.Rules {
		if len(r.Head.Args) == 1 && !seen[r.Head.Pred] {
			seen[r.Head.Pred] = true
			preds = append(preds, r.Head.Pred)
		}
	}
	return preds
}

// TestIncrementalEval mutates random documents step by step and checks
// the maintained model after every delta against three oracles: a full
// linear-engine run and a full bitmap-engine run over the mutated
// arena (dead-aware evaluation), and a from-scratch run over the
// canonical re-parsed live tree, mapped back to arena ids through the
// live preorder.
func TestIncrementalEval(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	labels := []string{"a", "b", "c"}
	for _, tc := range incrementalPrograms {
		t.Run(tc.name, func(t *testing.T) {
			prog := datalog.MustParseProgram(tc.src)
			pl, err := NewPlan(prog)
			if err != nil {
				t.Fatal(err)
			}
			preds := headPreds(prog)
			for trial := 0; trial < 6; trial++ {
				tr := tree.Random(rng, tree.RandomOptions{Labels: labels, Size: 40 + rng.Intn(80), MaxChildren: 5})
				a := tr.Arena()
				inc := pl.NewIncState(a)
				if inc.Fallback() != tc.fallback {
					t.Fatalf("fallback = %v, want %v", inc.Fallback(), tc.fallback)
				}
				for step := 0; step < 12; step++ {
					d := a.NewDelta()
					for op := 0; op < 1+rng.Intn(3); op++ {
						randomEdit(t, rng, a, d, labels)
					}
					if err := inc.Apply(d); err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
					got, err := inc.Database()
					if err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
					full, err := pl.Run(NavOf(a))
					if err != nil {
						t.Fatal(err)
					}
					if diff := SameResults(got, full, preds); diff != "" {
						t.Fatalf("%s trial %d step %d: incremental vs full linear: %s", tc.name, trial, step, diff)
					}
					fullBm, err := bitmapPlanOf(pl).Run(NavOf(a))
					if err != nil {
						t.Fatal(err)
					}
					if diff := SameResults(got, fullBm, preds); diff != "" {
						t.Fatalf("%s trial %d step %d: incremental vs full bitmap: %s", tc.name, trial, step, diff)
					}
					checkAgainstLiveTree(t, pl, a, got, preds)
				}
			}
		})
	}
}

// randomEdit applies one random structural or text edit, recording it
// in d.
func randomEdit(t *testing.T, rng *rand.Rand, a *tree.Arena, d *tree.ArenaDelta, labels []string) {
	t.Helper()
	live := a.LivePreorder()
	switch op := rng.Intn(4); {
	case op == 0 && len(live) > 1: // remove a non-root subtree
		if err := a.RemoveSubtree(d, live[1+rng.Intn(len(live)-1)]); err != nil {
			t.Fatal(err)
		}
	case op <= 2: // insert a small subtree
		sub := tree.New(labels[rng.Intn(len(labels))])
		for i := rng.Intn(3); i > 0; i-- {
			sub.Add(tree.New(labels[rng.Intn(len(labels))]))
		}
		parent := live[rng.Intn(len(live))]
		if _, err := a.InsertSubtree(d, parent, rng.Intn(4), sub); err != nil {
			t.Fatal(err)
		}
	default: // retext (no τ_ur fact changes)
		if err := a.SetText(d, live[rng.Intn(len(live))], fmt.Sprintf("t%d", rng.Int())); err != nil {
			t.Fatal(err)
		}
	}
}

// checkAgainstLiveTree evaluates the plan from scratch on the
// canonical re-parsed live tree and compares with the incremental
// result through the preorder ↔ arena-id mapping.
func checkAgainstLiveTree(t *testing.T, pl *Plan, a *tree.Arena, got *datalog.Database, preds []string) {
	t.Helper()
	lt := a.LiveTree()
	ref, err := pl.Run(NewNav(lt))
	if err != nil {
		t.Fatal(err)
	}
	pre := a.LivePreorder() // preorder position -> arena id
	for _, pred := range preds {
		refSet := ref.UnarySet(pred)
		want := make(map[int]bool, len(refSet))
		for _, i := range refSet {
			want[int(pre[i])] = true
		}
		gotSet := got.UnarySet(pred)
		if len(gotSet) != len(want) {
			t.Fatalf("%s: live-tree oracle has %d facts, incremental %d (%v vs %v via %v)", pred, len(want), len(gotSet), refSet, gotSet, pre)
		}
		for _, v := range gotSet {
			if !want[v] {
				t.Fatalf("%s: incremental fact at arena id %d not justified by live-tree oracle", pred, v)
			}
		}
	}
}

// TestIncStateBehind ensures a skipped delta is detected rather than
// served stale.
func TestIncStateBehind(t *testing.T) {
	a := tree.MustParse("a(b(c),d)").Arena()
	prog := datalog.MustParseProgram(`q(X) :- leaf(X). ?- q.`)
	pl, err := NewPlan(prog)
	if err != nil {
		t.Fatal(err)
	}
	inc := pl.NewIncState(a)
	if _, err := inc.Database(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.InsertSubtree(a.NewDelta(), 0, 0, tree.New("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Database(); err == nil {
		t.Fatal("Database served a stale generation without error")
	}
}

// TestIncStateComposedWindows applies several edits as one composed
// window and as separate windows, expecting identical models.
func TestIncStateComposedWindows(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	prog := datalog.MustParseProgram(`
		q(X) :- label_a(X).
		q(X) :- firstchild(Y, X), q(Y).
		q(X) :- nextsibling(Y, X), q(Y).
		?- q.`)
	pl, err := NewPlan(prog)
	if err != nil {
		t.Fatal(err)
	}
	labels := []string{"a", "b"}
	for trial := 0; trial < 10; trial++ {
		tr := tree.Random(rng, tree.RandomOptions{Labels: labels, Size: 30, MaxChildren: 4})
		a := tr.Arena()
		inc := pl.NewIncState(a)
		var ds []*tree.ArenaDelta
		for i := 0; i < 4; i++ {
			d := a.NewDelta()
			randomEdit(t, rng, a, d, labels)
			ds = append(ds, d)
		}
		if err := inc.Apply(tree.ComposeDeltas(ds)); err != nil {
			t.Fatal(err)
		}
		got, err := inc.Database()
		if err != nil {
			t.Fatal(err)
		}
		full, err := pl.Run(NavOf(a))
		if err != nil {
			t.Fatal(err)
		}
		if diff := SameResults(got, full, []string{"q"}); diff != "" {
			t.Fatalf("trial %d: composed window diverged: %s", trial, diff)
		}
	}
}
