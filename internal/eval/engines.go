package eval

import (
	"fmt"
	"strings"

	"mdlog/internal/datalog"
	"mdlog/internal/tree"
)

// Engine selects an evaluation algorithm.
type Engine int

const (
	// EngineLinear is the Theorem 4.2 engine: O(|P|·|dom|) over τ_ur/τ_rk.
	EngineLinear Engine = iota
	// EngineSemiNaive is generic semi-naive evaluation over τ_ur ∪
	// {child, lastchild, firstsibling, dom, child_k}.
	EngineSemiNaive
	// EngineNaive is the reference naive fixpoint (Definition 3.1).
	EngineNaive
	// EngineLIT is the monadic Datalog LIT engine (Proposition 3.7).
	EngineLIT
	// EngineBitmap evaluates the Theorem 4.2 fragment as bulk bitset
	// algebra over the arena columns (bitmap.go): monadic predicates
	// are dense node bitmaps, body atoms are column-gather kernels,
	// recursion is semi-naive on delta bitmaps.
	EngineBitmap
)

// EngineNames lists the valid engine flag names, in the order flags
// and error messages present them.
func EngineNames() []string {
	return []string{"linear", "bitmap", "seminaive", "naive", "lit"}
}

// ValidEngine reports whether e is one of the defined engines — the
// compile-time guard that keeps an out-of-range Engine value from
// silently deferring its failure to the first run.
func ValidEngine(e Engine) bool {
	switch e {
	case EngineLinear, EngineSemiNaive, EngineNaive, EngineLIT, EngineBitmap:
		return true
	}
	return false
}

// String names the engine for CLI flags and error messages.
func (e Engine) String() string {
	switch e {
	case EngineLinear:
		return "linear"
	case EngineSemiNaive:
		return "seminaive"
	case EngineNaive:
		return "naive"
	case EngineLIT:
		return "lit"
	case EngineBitmap:
		return "bitmap"
	}
	return fmt.Sprintf("Engine(%d)", int(e))
}

// ParseEngine converts a CLI flag value into an Engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "linear":
		return EngineLinear, nil
	case "seminaive":
		return EngineSemiNaive, nil
	case "naive":
		return EngineNaive, nil
	case "lit":
		return EngineLIT, nil
	case "bitmap":
		return EngineBitmap, nil
	}
	return 0, fmt.Errorf("eval: unknown engine %q (valid engines: %s)", s, strings.Join(EngineNames(), ", "))
}

// fullTreeDB materializes every relation a generic engine might need
// for the given program.
func fullTreeDB(p *datalog.Program, t *tree.Tree) *datalog.Database {
	return GenericSignature(p).TreeDB(t)
}

// EvalOnTree evaluates a monadic datalog program on a tree using the
// selected engine and returns the intensional relations only, so the
// engines are interchangeable and comparable.
func EvalOnTree(p *datalog.Program, t *tree.Tree, engine Engine) (*datalog.Database, error) {
	switch engine {
	case EngineLinear:
		return LinearTree(p, t)
	case EngineBitmap:
		return BitmapTree(p, t)
	case EngineSemiNaive:
		full, err := datalog.SemiNaiveEval(p, fullTreeDB(p, t))
		if err != nil {
			return nil, err
		}
		return full.Project(p.IntensionalPreds()), nil
	case EngineNaive:
		full, err := datalog.NaiveEval(p, fullTreeDB(p, t))
		if err != nil {
			return nil, err
		}
		return full.Project(p.IntensionalPreds()), nil
	case EngineLIT:
		full, err := LITEval(p, fullTreeDB(p, t))
		if err != nil {
			return nil, err
		}
		// LITEval works on the connected-split program, whose conn_*
		// helper predicates must not leak into the comparable result.
		return full.Project(p.IntensionalPreds()), nil
	}
	return nil, fmt.Errorf("eval: unknown engine %v", engine)
}

// Query evaluates the program's distinguished query predicate on t with
// the linear engine and returns the sorted selected node ids — the
// paper's "unary query" interface.
func Query(p *datalog.Program, t *tree.Tree) ([]int, error) {
	if p.Query == "" {
		return nil, fmt.Errorf("eval: program has no distinguished query predicate")
	}
	res, err := LinearTree(p, t)
	if err != nil {
		return nil, err
	}
	return res.UnarySet(p.Query), nil
}

// Accepts implements the tree-language acceptance of Corollary 4.7: a
// monadic datalog program with an "accept" predicate accepts a tree
// iff accept(root) ∈ T_P^ω. A tree language is definable this way
// exactly if it is regular / MSO-definable.
func Accepts(p *datalog.Program, t *tree.Tree, acceptPred string) (bool, error) {
	if acceptPred == "" {
		acceptPred = "accept"
	}
	res, err := LinearTree(p, t)
	if err != nil {
		return false, err
	}
	return res.Has(acceptPred, t.Root.ID), nil
}

// SameResults compares the extensions of the given predicates in two
// result databases; it returns a description of the first difference,
// or "" if they agree.
func SameResults(a, b *datalog.Database, preds []string) string {
	for _, pred := range preds {
		as, bs := a.UnarySet(pred), b.UnarySet(pred)
		if len(as) != len(bs) {
			return fmt.Sprintf("%s: %v vs %v", pred, as, bs)
		}
		for i := range as {
			if as[i] != bs[i] {
				return fmt.Sprintf("%s: %v vs %v", pred, as, bs)
			}
		}
		// Propositional predicates: compare presence of the empty tuple.
		ra, rb := a.RelOrNil(pred), b.RelOrNil(pred)
		pa := ra != nil && ra.Arity == 0 && ra.Len() > 0
		pb := rb != nil && rb.Arity == 0 && rb.Len() > 0
		if pa != pb {
			return fmt.Sprintf("%s (propositional): %v vs %v", pred, pa, pb)
		}
	}
	return ""
}
