package eval

import (
	"hash/fnv"

	"mdlog/internal/datalog"
)

// ProgramHash fingerprints a datalog program — rules in order, the
// distinguished query predicate, and any extra context strings the
// caller mixes in (engine name, projection list, optimization level).
//
// The unified query layer keys TreeCache result memos by this hash of
// the POST-optimization program: the source text alone must never be
// the key, because one source string compiles to semantically
// different plans depending on optimization level, engine, query
// predicate and extraction list. Hashing what will actually run (plus
// the visible-predicate projection) guarantees optimized and
// unoptimized variants of the same source never alias a memo entry.
func ProgramHash(p *datalog.Program, extra ...string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(p.String()))
	_, _ = h.Write([]byte{0, '?', '-'})
	_, _ = h.Write([]byte(p.Query))
	for _, s := range extra {
		_, _ = h.Write([]byte{0})
		_, _ = h.Write([]byte(s))
	}
	return h.Sum64()
}
