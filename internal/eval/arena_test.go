package eval

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"mdlog/internal/datalog"
	"mdlog/internal/paperex"
	"mdlog/internal/tree"
)

// referenceTreeDB materializes the full τ_ur extension by walking the
// pointer API node by node — the pre-arena implementation, kept inline
// here as an independent reference for the round-trip check.
func referenceTreeDB(t *tree.Tree, childK int) *datalog.Database {
	db := datalog.NewDatabase(t.Size())
	for _, n := range t.Nodes {
		db.Add(LabelPred(n.Label), n.ID)
		if n.IsRoot() {
			db.Add(PredRoot, n.ID)
		}
		if n.IsLeaf() {
			db.Add(PredLeaf, n.ID)
		}
		if n.IsLastSibling() {
			db.Add(PredLastSibling, n.ID)
		}
		if n.IsFirstSibling() {
			db.Add(PredFirstSibling, n.ID)
		}
		if fc := n.FirstChild(); fc != nil {
			db.Add(PredFirstChild, n.ID, fc.ID)
		}
		if ns := n.NextSibling(); ns != nil {
			db.Add(PredNextSibling, n.ID, ns.ID)
		}
		for _, c := range n.Children {
			db.Add(PredChild, n.ID, c.ID)
		}
		if lc := n.LastChild(); lc != nil {
			db.Add(PredLastChild, n.ID, lc.ID)
		}
		for k := 1; k <= childK && k <= len(n.Children); k++ {
			db.Add(ChildKPred(k), n.ID, n.Children[k-1].ID)
		}
		db.Add(PredDom, n.ID)
	}
	return db
}

// dbDiff compares two databases tuple-for-tuple over every predicate.
func dbDiff(a, b *datalog.Database) string {
	dump := func(db *datalog.Database) []string {
		var out []string
		for _, pred := range db.Preds() {
			for _, tup := range db.RelOrNil(pred).Tuples() {
				out = append(out, fmt.Sprintf("%s%v", pred, tup))
			}
		}
		sort.Strings(out)
		return out
	}
	da, dbb := dump(a), dump(b)
	if len(da) != len(dbb) {
		return fmt.Sprintf("fact counts differ: %d vs %d", len(da), len(dbb))
	}
	for i := range da {
		if da[i] != dbb[i] {
			return fmt.Sprintf("fact %d: %s vs %s", i, da[i], dbb[i])
		}
	}
	return ""
}

// TestArenaTreeDBRoundTrip checks that TreeDB over the arena columns
// produces exactly the τ_ur relations the pointer-API reference
// produces, on randomized documents of several shapes.
func TestArenaTreeDBRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	trees := []*tree.Tree{
		tree.MustParse("a"),
		tree.MustParse("a(b,c(d,e),f)"),
		tree.Flat(400, "a"),
		tree.Chain(100, "b"),
	}
	for i := 0; i < 8; i++ {
		trees = append(trees, tree.Random(rng, tree.RandomOptions{
			Labels:      []string{"a", "b", "c"},
			Size:        1 + rng.Intn(400),
			MaxChildren: 1 + rng.Intn(8),
		}))
	}
	const childK = 4
	opts := []TreeDBOption{WithChild(), WithLastChild(), WithFirstSibling(), WithDom(), WithChildK(childK)}
	for i, tr := range trees {
		got := TreeDB(tr, opts...)
		want := referenceTreeDB(tr, childK)
		if d := dbDiff(got, want); d != "" {
			t.Errorf("tree %d (size %d): %s", i, tr.Size(), d)
		}
	}
}

// TestArenaNavRoundTrip checks that a Plan produces identical results
// over the arena-aliased Nav and the pointer-walk baseline Nav, on
// randomized documents.
func TestArenaNavRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	progs := []*datalog.Program{
		paperex.EvenAProgram("b"),
		datalog.MustParseProgram(`
q(X) :- firstchild(X,Y), label_a(Y).
q(X) :- nextsibling(X,Y), q(Y).
r(X) :- lastsibling(X), leaf(X).
?- q.
`),
		datalog.MustParseProgram(`
deep(X) :- root(X).
deep(Y) :- deep(X), firstchild(X,Y).
deep(Y) :- deep(X), nextsibling(X,Y).
?- deep.
`),
	}
	for pi, p := range progs {
		pl, err := NewPlan(p)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			tr := tree.Random(rng, tree.RandomOptions{
				Labels:      []string{"a", "b"},
				Size:        1 + rng.Intn(300),
				MaxChildren: 1 + rng.Intn(6),
			})
			arena, err := pl.Run(NewNav(tr))
			if err != nil {
				t.Fatal(err)
			}
			baseline, err := pl.Run(NewNavFromNodes(tr))
			if err != nil {
				t.Fatal(err)
			}
			if d := dbDiff(arena, baseline); d != "" {
				t.Errorf("program %d tree %d (size %d): %s", pi, i, tr.Size(), d)
			}
		}
	}
}

// TestNavAliasesArena pins the zero-copy property: the Nav of an
// arena-backed tree shares the arena columns instead of copying them.
func TestNavAliasesArena(t *testing.T) {
	tr := tree.MustParse("a(b,c)")
	a := tr.Arena()
	nav := NewNav(tr)
	if nav.A != a {
		t.Fatal("nav built a different arena")
	}
	if &nav.FC[0] != &a.FirstChild[0] || &nav.Label[0] != &a.Label[0] {
		t.Error("nav copied the arena columns")
	}
}
