package eval

import (
	"math/rand"
	"strings"
	"testing"

	"mdlog/internal/datalog"
	"mdlog/internal/html"
)

// BenchmarkBitmapSelectLarge runs the EXT-TREESIZE select program on a
// ~100k-node product listing with a prepared bitmap plan over a
// pre-built Nav — the engine-only measurement behind the
// bitmap_select_ns_per_node column of BENCH_treesize.json.
func BenchmarkBitmapSelectLarge(b *testing.B) {
	p := datalog.MustParseProgram(`
q(X) :- label_td(X), firstchild(X,Y), label_b(Y).
?- q.
`)
	bp, err := NewBitmapPlan(p)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(52))
	src := html.ProductListing(rng, 100000/9)
	a, err := html.ParseArena(strings.NewReader(src))
	if err != nil {
		b.Fatal(err)
	}
	nav := NavOf(a)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db, err := bp.Run(nav)
		if err != nil {
			b.Fatal(err)
		}
		db.UnarySet("q")
	}
}
