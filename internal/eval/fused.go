package eval

// The fused-plan path: one prepared Plan evaluates the union of many
// wrappers' programs (apex-renamed and deduplicated by opt.Fuse), and
// FusedPlan splits the single result database back into per-member
// visible relations. This is the evaluation side of QuerySet — the
// grounding, the Horn solve, and the result construction all happen
// once per document for the whole wrapper set.

import (
	"fmt"
	"time"

	"mdlog/internal/datalog"
	"mdlog/internal/tree"
)

// FusedMember is one wrapper's slice of a fused plan: its display name
// and the mapping from the caller-facing predicate names to the
// apex-renamed predicates the fused program actually derives.
type FusedMember struct {
	// Name labels the member in results and diagnostics.
	Name string
	// Project maps each visible (caller-facing) predicate to its
	// predicate in the fused program.
	Project map[string]string
	// Subsumed marks a member the compile pipeline proved equivalent
	// to another member: none of its own rules survive in the fused
	// program and its results come purely from projecting the
	// representative's relations. Diagnostic — Split treats subsumed
	// members like any other.
	Subsumed bool
}

// FusedPlan is a Plan for a fused program plus the per-member
// projections that recover each wrapper's visible relations from the
// shared result. Immutable after NewFusedPlan; safe for concurrent
// use.
type FusedPlan struct {
	plan    *Plan
	bitmap  *BitmapPlan // non-nil iff engine == EngineBitmap
	engine  Engine
	members []FusedMember
}

// NewFusedPlan prepares the fused program for the linear engine and
// attaches the member projections.
func NewFusedPlan(p *datalog.Program, members []FusedMember) (*FusedPlan, error) {
	return NewFusedPlanEngine(p, members, EngineLinear)
}

// NewFusedPlanEngine is NewFusedPlan with an explicit grounding
// engine for the shared pass: EngineLinear or EngineBitmap (the two
// engines that execute prepared Theorem 4.2 plans; anything else is
// rejected).
func NewFusedPlanEngine(p *datalog.Program, members []FusedMember, engine Engine) (*FusedPlan, error) {
	if engine != EngineLinear && engine != EngineBitmap {
		return nil, fmt.Errorf("eval: fused plans run on the linear or bitmap engine, not %v", engine)
	}
	pl, err := NewPlan(p)
	if err != nil {
		return nil, err
	}
	f := &FusedPlan{plan: pl, engine: engine, members: members}
	if engine == EngineBitmap {
		f.bitmap = bitmapPlanOf(pl)
	}
	return f, nil
}

// Plan returns the underlying prepared plan (e.g. for its program).
func (f *FusedPlan) Plan() *Plan { return f.plan }

// Engine returns the engine the shared pass runs on.
func (f *FusedPlan) Engine() Engine { return f.engine }

// RunFull executes the fused plan once over nav and returns the
// shared (unsplit) result database — the memoizable unit; Split
// recovers the per-member views.
func (f *FusedPlan) RunFull(nav *Nav) (*datalog.Database, error) {
	if f.bitmap != nil {
		return f.bitmap.Run(nav)
	}
	return f.plan.Run(nav)
}

// NewIncState builds an incremental maintainer for the fused program
// over a (reusing the already-prepared bitmap plan when the shared
// pass runs on the bitmap engine). Split the maintained Database to
// recover per-member views.
func (f *FusedPlan) NewIncState(a *tree.Arena) *IncState {
	if f.bitmap != nil {
		return f.bitmap.NewIncState(a)
	}
	return f.plan.NewIncState(a)
}

// Members returns the number of fused members.
func (f *FusedPlan) Members() int { return len(f.members) }

// SubsumedMembers returns how many members are served purely by
// projection from an equivalent member's relations.
func (f *FusedPlan) SubsumedMembers() int {
	n := 0
	for _, m := range f.members {
		if m.Subsumed {
			n++
		}
	}
	return n
}

// MemberSubsumed reports whether member i is subsumed.
func (f *FusedPlan) MemberSubsumed(i int) bool {
	return i >= 0 && i < len(f.members) && f.members[i].Subsumed
}

// Run executes the fused plan once over nav and splits the result into
// one database per member, carrying the member's visible predicate
// names. The returned databases are freshly built and independent.
func (f *FusedPlan) Run(nav *Nav) ([]*datalog.Database, error) {
	full, err := f.RunFull(nav)
	if err != nil {
		return nil, err
	}
	return f.Split(full), nil
}

// Split projects an already-computed fused result database into the
// per-member visible databases (same order as the members given to
// NewFusedPlan). It is what makes memoizing the fused database safe:
// the memo stores the shared result once, and every later run re-slices
// it without re-evaluating.
func (f *FusedPlan) Split(full *datalog.Database) []*datalog.Database {
	out := make([]*datalog.Database, len(f.members))
	for i, m := range f.members {
		db := datalog.NewDatabase(full.Dom)
		for vis, fusedPred := range m.Project {
			r := full.RelOrNil(fusedPred)
			if r == nil {
				continue
			}
			switch r.Arity {
			case 1:
				db.Rel(vis, 1).AddUnarySet(full.UnarySet(fusedPred))
			case 0:
				if r.Len() > 0 {
					db.Rel(vis, 0).Add(nil)
				}
			}
		}
		out[i] = db
	}
	return out
}

// AttributeShared converts the cost of one shared fused pass into one
// member's attributed per-run stats: the timing fields are divided
// evenly across the n members (the pass is a joint product; an even
// split keeps per-wrapper rollups summing to the actual wall time),
// cache hits are carried through (a memoized shared pass served every
// member from cache), and the count fields (Runs, Facts, FusedRuns)
// are left for the caller to fill per member.
func AttributeShared(shared Stats, n int) Stats {
	if n <= 0 {
		n = 1
	}
	return Stats{
		Materialize: time.Duration(int64(shared.Materialize) / int64(n)),
		Eval:        time.Duration(int64(shared.Eval) / int64(n)),
		CacheHits:   shared.CacheHits,
		Engine:      shared.Engine,
	}
}
