package eval

import "time"

// Stats records where time went for one compiled query: the one-time
// parse/compile phases and the per-run (or, when aggregated,
// cumulative) materialization and evaluation phases.
type Stats struct {
	// Parse is the time spent turning source text into an AST.
	Parse time.Duration
	// Compile is the time spent normalizing and preparing the plan
	// (datalog translation, TMNF rewriting, automaton construction,
	// grounding-plan compilation).
	Compile time.Duration
	// Materialize is the time spent building navigation arrays or
	// TreeDB relations; zero when a cache supplied them.
	Materialize time.Duration
	// Eval is the time spent in the engine proper.
	Eval time.Duration
	// Facts is the number of result facts (selected nodes for Select,
	// tuples over all intensional relations for Eval).
	Facts int64
	// Runs is the number of executions aggregated into this Stats (1
	// for a per-run value).
	Runs int64
	// CacheHits counts runs whose per-tree state came out of a
	// TreeCache without materialization.
	CacheHits int64
	// FusedRuns counts runs served by a fused QuerySet pass (one
	// shared evaluation for many wrappers) rather than an individual
	// evaluation; always ≤ Runs.
	FusedRuns int64
	// SubsumedRuns counts runs answered purely by projection from an
	// equivalent member's fused relation — the containment checker
	// proved this member's rules redundant, so zero evaluation work
	// was attributable to them; always ≤ FusedRuns.
	SubsumedRuns int64
	// Spans is the number of span tuples extracted (spanner queries
	// only; the span-rule result rows, not the node facts in Facts).
	Spans int64
	// Engine names the engine that served the runs ("linear",
	// "bitmap", "automaton", ...). Aggregating runs served by
	// different engines yields "mixed".
	Engine string
}

// mergeEngine combines two engine attributions: an unset side defers
// to the other, agreement is kept, and disagreement becomes "mixed".
func mergeEngine(a, b string) string {
	switch {
	case a == "" || a == b:
		return b
	case b == "":
		return a
	}
	return "mixed"
}

// Add accumulates o into s (compile-phase fields are kept from s
// unless unset, so aggregating per-run stats into a query-lifetime
// total preserves the one-time costs).
func (s *Stats) Add(o Stats) {
	if s.Parse == 0 {
		s.Parse = o.Parse
	}
	if s.Compile == 0 {
		s.Compile = o.Compile
	}
	s.Materialize += o.Materialize
	s.Eval += o.Eval
	s.Facts += o.Facts
	s.Runs += o.Runs
	s.CacheHits += o.CacheHits
	s.FusedRuns += o.FusedRuns
	s.SubsumedRuns += o.SubsumedRuns
	s.Spans += o.Spans
	s.Engine = mergeEngine(s.Engine, o.Engine)
}

// Merge sums every field of o into s, including the one-time
// parse/compile costs. Use it to roll the lifetime totals of several
// independent queries into one figure (e.g. a service-wide aggregate
// over a wrapper registry); use Add to fold per-run stats into a
// single query's lifetime total.
func (s *Stats) Merge(o Stats) {
	s.Parse += o.Parse
	s.Compile += o.Compile
	s.Materialize += o.Materialize
	s.Eval += o.Eval
	s.Facts += o.Facts
	s.Runs += o.Runs
	s.CacheHits += o.CacheHits
	s.FusedRuns += o.FusedRuns
	s.SubsumedRuns += o.SubsumedRuns
	s.Spans += o.Spans
	s.Engine = mergeEngine(s.Engine, o.Engine)
}
