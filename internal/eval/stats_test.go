package eval

import (
	"testing"
	"time"
)

func TestStatsAddKeepsOneTimeCosts(t *testing.T) {
	s := Stats{Parse: time.Millisecond, Compile: 2 * time.Millisecond}
	s.Add(Stats{Parse: time.Hour, Compile: time.Hour, Eval: time.Second, Runs: 1, Facts: 3, FusedRuns: 1})
	if s.Parse != time.Millisecond || s.Compile != 2*time.Millisecond {
		t.Errorf("Add overwrote one-time costs: %+v", s)
	}
	if s.Eval != time.Second || s.Runs != 1 || s.Facts != 3 || s.FusedRuns != 1 {
		t.Errorf("Add dropped per-run fields: %+v", s)
	}
}

func TestStatsMergeSumsEverything(t *testing.T) {
	a := Stats{Parse: 1, Compile: 2, Materialize: 3, Eval: 4, Facts: 5, Runs: 6, CacheHits: 7, FusedRuns: 8}
	b := Stats{Parse: 10, Compile: 20, Materialize: 30, Eval: 40, Facts: 50, Runs: 60, CacheHits: 70, FusedRuns: 80}
	a.Merge(b)
	want := Stats{Parse: 11, Compile: 22, Materialize: 33, Eval: 44, Facts: 55, Runs: 66, CacheHits: 77, FusedRuns: 88}
	if a != want {
		t.Errorf("Merge = %+v, want %+v", a, want)
	}
}
