package eval

// The bitmap engine: monadic datalog as bulk bitset algebra over the
// arena columns. A monadic predicate over a document of n nodes is a
// subset of {0..n-1}, so instead of grounding every rule into
// propositional Horn clauses and propagating facts node-at-a-time
// (plan.go), this engine evaluates each connected rule as a short
// pipeline of word-parallel bitmap kernels:
//
//   - the anchor variable's conditions seed a "live" bitmap (label
//     tests become per-symbol bitmaps, built once per run and shared
//     across rules);
//   - each τ_ur body atom (firstchild, nextsibling, lastchild,
//     child_k — all injective partial functions, Proposition 4.1)
//     becomes a column gather: for every live anchor, the bound
//     variable's node id is read straight out of the arena column and
//     anchors whose binding is undefined drop out of the word;
//   - conditions on non-anchor variables filter the live words through
//     the gathered columns; non-spanning-tree atoms are verified the
//     same way;
//   - the surviving live bitmap IS the head predicate's new extension
//     (compileLinear anchors unary-headed rules at the head variable),
//     OR-ed in with the word-level delta tracked for semi-naive.
//
// Recursion runs semi-naive on delta bitmaps: a fact derived in round
// k can only enable rule bodies whose IDB atom binds to it, and since
// every binary step is an injective partial function, the unique
// candidate anchor is recovered by walking the rule's spanning-tree
// path backwards from the delta node (invPaths). Dense deltas fall
// back to re-running the whole columnar pipeline; either way each
// round ends with a word-level fixpoint test (bitset.Set.OrDiff), and
// the engine computes the same least model T_P^ω as the Theorem 4.2
// engine — see DESIGN.md § engine comparison for the soundness
// argument.

import (
	"math/bits"
	"sync"
	"weak"

	"mdlog/internal/bitset"
	"mdlog/internal/datalog"
	"mdlog/internal/tree"
)

// BitmapPlan is a monadic datalog program prepared once for the
// bitmap engine and runnable against any number of documents. It
// reuses the Theorem 4.2 grounding plans (connected splitting, anchor
// selection, spanning-tree steps) and adds the per-rule analyses the
// bitmap kernels need: conditions grouped by variable slot and the
// inverse step paths for semi-naive delta propagation.
//
// A BitmapPlan is immutable after NewBitmapPlan and safe for
// concurrent use by multiple goroutines.
type BitmapPlan struct {
	pl      *Plan
	rules   []bitmapRule
	maxVars int
	// unaryDeps[pid] / propDeps[pid] list the rules whose bodies read
	// the predicate — the semi-naive wake-up lists.
	unaryDeps [][]int
	propDeps  [][]int

	// pool recycles per-run state between Run calls. A pooled state
	// that comes back for the same document (same Nav) also keeps its
	// per-document condition bitmaps, so repeat evaluations skip the
	// label and node-class column scans — the engine-level analogue of
	// TreeCache reusing navigation arrays.
	pool sync.Pool
}

// bitmapRule is one connected rule with its conditions regrouped for
// columnar evaluation.
type bitmapRule struct {
	lr *linearRule
	// slotConds / slotIDB group the rule's unary EDB checks and unary
	// IDB atoms by the variable slot they constrain, so each can be
	// applied as soon as the slot's column is gathered.
	slotConds [][]unaryCheck
	slotIDB   [][]idbUnaryRef
	// invPaths[ai] walks from the slot of lr.idbUnary[ai] back to the
	// anchor, inverting each spanning-tree step; empty when the atom
	// sits on the anchor itself.
	invPaths [][]invStep
}

// invStep is one spanning-tree step to undo: the original step bound
// its target in the direction recorded by forward, so the inverse
// applies the opposite direction of the same injective partial
// function.
type invStep struct {
	edge    binEdge
	forward bool
}

// NewBitmapPlan validates and prepares p for repeated bitmap-engine
// evaluation. It accepts exactly the programs NewPlan accepts (the
// linear fragment of Theorem 4.2: monadic, τ_ur ∪ {lastchild,
// child_k}, no child/2 — eliminate that with tmnf.Transform first).
func NewBitmapPlan(p *datalog.Program) (*BitmapPlan, error) {
	pl, err := NewPlan(p)
	if err != nil {
		return nil, err
	}
	return bitmapPlanOf(pl), nil
}

// bitmapPlanOf derives the bitmap-engine analyses from a prepared
// linear plan.
func bitmapPlanOf(pl *Plan) *BitmapPlan {
	bp := &BitmapPlan{
		pl:        pl,
		unaryDeps: make([][]int, len(pl.unaryPreds)),
		propDeps:  make([][]int, len(pl.propPreds)),
	}
	for ri, lr := range pl.rules {
		br := bitmapRule{
			lr:        lr,
			slotConds: make([][]unaryCheck, lr.nvars),
			slotIDB:   make([][]idbUnaryRef, lr.nvars),
			invPaths:  make([][]invStep, len(lr.idbUnary)),
		}
		if lr.nvars > bp.maxVars {
			bp.maxVars = lr.nvars
		}
		for _, u := range lr.unary {
			br.slotConds[u.v] = append(br.slotConds[u.v], u)
		}
		for _, u := range lr.idbUnary {
			br.slotIDB[u.v] = append(br.slotIDB[u.v], u)
		}
		// Which step bound each slot (the anchor has none).
		boundBy := make([]int, lr.nvars)
		for i := range boundBy {
			boundBy[i] = -1
		}
		for si, st := range lr.steps {
			if st.forward {
				boundBy[st.edge.y] = si
			} else {
				boundBy[st.edge.x] = si
			}
		}
		for ai, u := range lr.idbUnary {
			var path []invStep
			for s := u.v; s != lr.anchor; {
				st := lr.steps[boundBy[s]]
				path = append(path, invStep{edge: st.edge, forward: st.forward})
				if st.forward {
					s = st.edge.x
				} else {
					s = st.edge.y
				}
			}
			br.invPaths[ai] = path
		}
		seen := map[int]bool{}
		for _, u := range lr.idbUnary {
			if !seen[u.pid] {
				seen[u.pid] = true
				bp.unaryDeps[u.pid] = append(bp.unaryDeps[u.pid], ri)
			}
		}
		seenP := map[int]bool{}
		for _, pid := range lr.idbProp {
			if !seenP[pid] {
				seenP[pid] = true
				bp.propDeps[pid] = append(bp.propDeps[pid], ri)
			}
		}
		bp.rules = append(bp.rules, br)
	}
	return bp
}

// Program returns the source program the plan was built from.
func (bp *BitmapPlan) Program() *datalog.Program { return bp.pl.Program() }

// QueryPred returns the program's distinguished query predicate.
func (bp *BitmapPlan) QueryPred() string { return bp.pl.QueryPred() }

// bitmapRun is the mutable state of one Run call, owned exclusively by
// that call between the pool Get and Put — which is what keeps Run
// safe to call concurrently on a shared BitmapPlan.
type bitmapRun struct {
	bp  *BitmapPlan
	nav *Nav
	// weakNav remembers which Nav the per-document bitmaps were built
	// for while the state sits in the pool. It is weak on purpose: a
	// pooled run state must not pin a closed document session's arena
	// in memory (the navigation arrays alias every arena column).
	weakNav   weak.Pointer[Nav]
	dom       int
	labelSyms []int32

	// unary[pid] is the predicate's current extension; delta / nextDelta
	// double-buffer the semi-naive deltas, with the dirty lists naming
	// the predicates whose current buffer is nonempty (so clearing
	// between rounds touches only what a round actually wrote).
	unary     []*bitset.Set
	delta     []*bitset.Set
	nextDelta []*bitset.Set
	dirty     []int
	nextDirty []int
	props     []bool
	propDirty []int

	// Lazily built per-condition bitmaps shared by every rule that
	// seeds its live set from the same label test or node class.
	// deadBm masks the tombstoned rows of a mutated arena out of every
	// condition bitmap (nil while the document has no dead rows).
	labelBm []*bitset.Set
	kindBm  [uDom + 1]*bitset.Set
	deadBm  *bitset.Set

	// Scratch: live is the pipeline bitmap, cols the gathered binding
	// columns (one per non-anchor slot), binding the scalar-evaluation
	// buffer, ruleStamp the per-round rule dedup marks.
	live      *bitset.Set
	cols      [][]int32
	binding   []int
	ruleStamp []int
	round     int
}

// acquire returns run state for nav: a pooled state when one is
// available (keeping its per-document condition bitmaps if it served
// the same Nav), a freshly allocated one otherwise. The gather columns
// are never cleared — every read of a column entry is preceded by a
// write for the same live bit within the same pass.
func (bp *BitmapPlan) acquire(nav *Nav) *bitmapRun {
	dom := nav.Dom()
	if v := bp.pool.Get(); v != nil {
		st := v.(*bitmapRun)
		if st.dom == dom {
			if st.weakNav.Value() != nav {
				// Different document of the same size: the sized
				// allocations are reusable, the per-document bitmaps
				// and symbol table are not.
				for i := range st.labelBm {
					st.labelBm[i] = nil
				}
				for i := range st.kindBm {
					st.kindBm[i] = nil
				}
				st.deadBm = nil
				for i, l := range bp.pl.labels {
					st.labelSyms[i] = nav.LabelID(l)
				}
			}
			st.nav = nav
			for i := range st.unary {
				st.unary[i].Clear()
				st.delta[i].Clear()
				st.nextDelta[i].Clear()
			}
			for i := range st.props {
				st.props[i] = false
			}
			for i := range st.ruleStamp {
				st.ruleStamp[i] = 0
			}
			st.dirty = st.dirty[:0]
			st.nextDirty = st.nextDirty[:0]
			st.propDirty = nil
			st.round = 0
			return st
		}
	}
	pl := bp.pl
	st := &bitmapRun{
		bp:        bp,
		nav:       nav,
		dom:       dom,
		unary:     make([]*bitset.Set, len(pl.unaryPreds)),
		delta:     make([]*bitset.Set, len(pl.unaryPreds)),
		nextDelta: make([]*bitset.Set, len(pl.unaryPreds)),
		props:     make([]bool, len(pl.propPreds)),
		labelBm:   make([]*bitset.Set, len(pl.labels)),
		live:      bitset.New(dom),
		cols:      make([][]int32, bp.maxVars),
		binding:   make([]int, bp.maxVars),
		ruleStamp: make([]int, len(bp.rules)),
	}
	for i := range st.unary {
		st.unary[i] = bitset.New(dom)
		st.delta[i] = bitset.New(dom)
		st.nextDelta[i] = bitset.New(dom)
	}
	if len(pl.labels) > 0 {
		st.labelSyms = make([]int32, len(pl.labels))
		for i, l := range pl.labels {
			st.labelSyms[i] = nav.LabelID(l)
		}
	}
	return st
}

// Run evaluates the program on the document behind nav, returning the
// intensional relations — the same T_P^ω restriction Plan.Run
// computes, by bulk bitmap algebra instead of Horn propagation.
func (bp *BitmapPlan) Run(nav *Nav) (*datalog.Database, error) {
	st := bp.acquire(nav)

	// Round 0: full columnar evaluation of every rule; derivations land
	// in the delta buffers. Then run semi-naive rounds to fixpoint.
	for ri := range bp.rules {
		st.evalColumnar(ri)
	}
	st.fixpoint()

	out := materialize(bp.pl, st.unary, st.props, st.dom)
	bp.release(st)
	return out, nil
}

// release parks run state in the pool. The strong Nav reference is
// dropped (pooled state must not keep a document alive — see weakNav);
// if the same Nav comes back before it is collected, acquire still
// reuses the per-document condition bitmaps.
func (bp *BitmapPlan) release(st *bitmapRun) {
	st.weakNav = weak.Make(st.nav)
	st.nav = nil
	bp.pool.Put(st)
}

// fixpoint runs semi-naive rounds until nothing new is derived: wake
// exactly the rules that read a predicate whose extension grew, until
// a round derives nothing (the word-level fixpoint — OrDiff reported
// no fresh bits anywhere). On entry st.delta / st.dirty hold the seed
// round's derivations; it is shared between full evaluation (seeded by
// the round-0 columnar pass) and incremental maintenance (seeded by
// the rederivation frontier of an arena delta).
func (st *bitmapRun) fixpoint() {
	bp := st.bp
	for len(st.dirty) > 0 || len(st.propDirty) > 0 {
		st.round++
		woken := st.wokenRules()
		dirty, propDirty := st.dirty, st.propDirty
		st.dirty, st.nextDirty = st.nextDirty, st.dirty[:0]
		st.delta, st.nextDelta = st.nextDelta, st.delta
		st.propDirty = nil

		for _, ri := range woken {
			br := &bp.rules[ri]
			if br.lr.headVar < 0 && st.props[br.lr.headID] {
				continue // propositional head already derived
			}
			if st.propTriggered(br, propDirty) || st.denseDelta(br) {
				st.evalColumnar(ri)
			} else {
				st.evalSparse(ri)
			}
		}

		// The processed buffers become next round's write targets.
		for _, pid := range dirty {
			st.nextDelta[pid].Clear()
		}
	}
}

// materialize converts extension bitmaps into the Database shape the
// engines return.
func materialize(pl *Plan, unary []*bitset.Set, props []bool, dom int) *datalog.Database {
	out := datalog.NewDatabase(dom)
	var ids []int
	for pi, pred := range pl.unaryPreds {
		ids = unary[pi].AppendBits(ids[:0])
		out.Rel(pred, 1).AddUnarySet(ids)
	}
	for pi, pred := range pl.propPreds {
		if props[pi] {
			out.Rel(pred, 0).Add(nil)
		}
	}
	return out
}

// wokenRules collects, deduplicated and in index order, the rules
// reading a predicate that changed last round. st.delta/st.dirty still
// hold last round's deltas when it runs.
func (st *bitmapRun) wokenRules() []int {
	var woken []int
	wake := func(ri int) {
		if st.ruleStamp[ri] != st.round {
			st.ruleStamp[ri] = st.round
			woken = append(woken, ri)
		}
	}
	for _, pid := range st.dirty {
		for _, ri := range st.bp.unaryDeps[pid] {
			wake(ri)
		}
	}
	for _, pid := range st.propDirty {
		for _, ri := range st.bp.propDeps[pid] {
			wake(ri)
		}
	}
	return woken
}

// propTriggered reports whether one of the rule's propositional body
// atoms became true last round — such a flip can enable anchors
// anywhere, so only a full columnar re-evaluation is complete.
func (st *bitmapRun) propTriggered(br *bitmapRule, propDirty []int) bool {
	for _, pid := range br.lr.idbProp {
		for _, p := range propDirty {
			if p == pid {
				return true
			}
		}
	}
	return false
}

// denseDelta reports whether the rule's incoming deltas are so large
// that per-bit inverse walking would cost more than one bulk columnar
// pass over the whole domain.
func (st *bitmapRun) denseDelta(br *bitmapRule) bool {
	total := 0
	for _, u := range br.lr.idbUnary {
		// Pre-swap naming: nextDelta holds last round's deltas here.
		total += st.nextDelta[u.pid].Count()
	}
	return total*8 > st.dom
}

// aliveMask subtracts the tombstoned rows of a mutated arena from bm.
// On never-mutated documents (nav.Dead == nil) it is a no-op; the dead
// bitmap itself is built once per document and shared.
func (st *bitmapRun) aliveMask(bm *bitset.Set) {
	if st.nav.Dead == nil {
		return
	}
	if st.deadBm == nil {
		d := bitset.New(st.dom)
		for v, dead := range st.nav.Dead {
			if dead {
				d.Add(v)
			}
		}
		st.deadBm = d
	}
	bm.AndNot(st.deadBm)
}

// condBitmap returns (building lazily) the bitmap of nodes satisfying
// a unary EDB condition — the precomputed per-symbol label bitmaps and
// node-class bitmaps shared across all rules of a run. Tombstoned rows
// of a mutated arena never satisfy any condition: their columns still
// hold pre-removal values (so the column scans would admit them), and
// the alive mask subtracts them.
func (st *bitmapRun) condBitmap(u unaryCheck) *bitset.Set {
	if u.kind == uLabel {
		if bm := st.labelBm[u.labelIdx]; bm != nil {
			return bm
		}
		bm := bitset.New(st.dom)
		if sym := st.labelSyms[u.labelIdx]; sym >= 0 {
			bm.AddMatches32(st.nav.Label, sym)
		}
		st.aliveMask(bm)
		st.labelBm[u.labelIdx] = bm
		return bm
	}
	if bm := st.kindBm[u.kind]; bm != nil {
		return bm
	}
	bm := bitset.New(st.dom)
	nav := st.nav
	switch u.kind {
	case uRoot:
		bm.AddMatches32(nav.Parent, -1)
	case uLeaf:
		bm.AddMatches32(nav.FC, -1)
	case uLastSibling:
		for v, ns := range nav.NS {
			if ns == -1 && nav.Parent[v] != -1 {
				bm.Add(v)
			}
		}
	case uFirstSibling:
		for v, pr := range nav.Prev {
			if pr == -1 && nav.Parent[v] != -1 {
				bm.Add(v)
			}
		}
	case uDom:
		bm.Fill()
	}
	st.aliveMask(bm)
	st.kindBm[u.kind] = bm
	return bm
}

// holdsUnary is the scalar form of a unary EDB condition, read
// directly off the arena columns (identical to the linear engine's
// ground() tests).
func (st *bitmapRun) holdsUnary(u unaryCheck, w int) bool {
	nav := st.nav
	switch u.kind {
	case uLabel:
		return nav.Label[w] == st.labelSyms[u.labelIdx]
	case uRoot:
		return nav.Parent[w] == -1
	case uLeaf:
		return nav.FC[w] == -1
	case uLastSibling:
		return nav.NS[w] == -1 && nav.Parent[w] != -1
	case uFirstSibling:
		return nav.Prev[w] == -1 && nav.Parent[w] != -1
	case uDom:
		return true
	}
	return false
}

// col returns the gathered binding column of a slot, or nil for the
// anchor (whose binding is the node id itself).
func (st *bitmapRun) col(slot, anchor int) []int32 {
	if slot == anchor {
		return nil
	}
	if st.cols[slot] == nil {
		st.cols[slot] = make([]int32, st.dom)
	}
	return st.cols[slot]
}

// evalColumnar runs one rule's full bitmap pipeline over the whole
// domain, OR-ing any new head facts into the extension and the
// current write deltas.
func (st *bitmapRun) evalColumnar(ri int) {
	br := &st.bp.rules[ri]
	lr := br.lr
	for _, pid := range lr.idbProp {
		if !st.props[pid] {
			return
		}
	}
	if lr.nvars == 0 {
		st.setProp(lr.headID)
		return
	}
	// A body IDB atom over an empty extension can never be satisfied;
	// skip the bulk pass (the semi-naive rounds re-wake the rule the
	// moment the predicate gains its first fact).
	for _, u := range lr.idbUnary {
		if !st.unary[u.pid].Any() {
			return
		}
	}
	live := st.live
	st.seedAnchor(br, live)
	if !live.Any() {
		return
	}
	for _, ps := range lr.steps {
		st.applyStep(br, live, ps)
		if !live.Any() {
			return
		}
	}
	for _, e := range lr.checks {
		st.applyCheck(live, e, lr.anchor)
		if !live.Any() {
			return
		}
	}
	if lr.headVar >= 0 {
		// compileLinear anchors unary-headed rules at the head variable,
		// so live is the set of newly justified head nodes directly.
		if st.unary[lr.headID].OrDiff(live, st.delta[lr.headID]) {
			st.markDirty(lr.headID)
		}
	} else {
		st.setProp(lr.headID)
	}
}

// seedAnchor initializes live to the set of anchors satisfying every
// condition on the anchor slot: copied from the cheapest available
// bitmap (an IDB extension, then a cached condition bitmap, then the
// full domain) and intersected with the rest by word-level ANDs.
func (st *bitmapRun) seedAnchor(br *bitmapRule, live *bitset.Set) {
	lr := br.lr
	idb := br.slotIDB[lr.anchor]
	conds := br.slotConds[lr.anchor]
	switch {
	case len(idb) > 0:
		live.CopyFrom(st.unary[idb[0].pid])
		idb = idb[1:]
	case len(conds) > 0:
		live.CopyFrom(st.condBitmap(conds[0]))
		conds = conds[1:]
	default:
		// Unconditioned anchor: every live node. Dead rows cannot anchor
		// a derivation (they carry no facts), so mask them out here; the
		// non-anchor slots are then reached along live columns only.
		live.Fill()
		st.aliveMask(live)
	}
	for _, u := range idb {
		live.And(st.unary[u.pid])
	}
	for _, u := range conds {
		live.And(st.condBitmap(u))
	}
}

// applyStep gathers one spanning-tree step: for every live anchor the
// newly bound slot's node id is computed from the already-bound source
// slot's column, and the bound slot's conditions are applied in the
// same sweep — anchors whose binding is undefined or fails a condition
// drop out of the live word, survivors land in the bound slot's
// column.
func (st *bitmapRun) applyStep(br *bitmapRule, live *bitset.Set, ps planStep) {
	lr := br.lr
	var srcSlot, dstSlot int
	if ps.forward {
		srcSlot, dstSlot = ps.edge.x, ps.edge.y
	} else {
		srcSlot, dstSlot = ps.edge.y, ps.edge.x
	}
	src := st.col(srcSlot, lr.anchor)
	dst := st.col(dstSlot, lr.anchor)
	nav := st.nav
	// Every non-anchor slot is bound by exactly one step, so the bound
	// slot's conditions are checked here, fused into the gather —
	// scalar against the arena columns and extension bitmaps, no
	// second pass over live.
	conds := br.slotConds[dstSlot]
	idbs := br.slotIDB[dstSlot]
	passes := func(y int) bool {
		for _, u := range conds {
			if !st.holdsUnary(u, y) {
				return false
			}
		}
		for _, u := range idbs {
			if !st.unary[u.pid].Has(y) {
				return false
			}
		}
		return true
	}

	// Steps that are plain arena-column reads use a direct gather; the
	// guarded inverses (firstchild⁻¹, lastchild⁻¹, child_k) go through
	// the shared edge functions.
	var col []int32
	if ps.forward {
		switch ps.edge.kind {
		case binFirstChild:
			col = nav.FC
		case binNextSibling:
			col = nav.NS
		case binLastChild:
			col = nav.LastChild
		}
	} else if ps.edge.kind == binNextSibling {
		col = nav.Prev
	}
	if col != nil {
		live.UpdateWords(func(base int, w uint64) uint64 {
			for m := w; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m)
				v := base + b
				x := v
				if src != nil {
					x = int(src[v])
				}
				y := col[x]
				dst[v] = y
				if y < 0 || !passes(int(y)) {
					w &^= 1 << uint(b)
				}
			}
			return w
		})
		return
	}
	edge, fw := ps.edge, ps.forward
	live.UpdateWords(func(base int, w uint64) uint64 {
		for m := w; m != 0; m &= m - 1 {
			b := bits.TrailingZeros64(m)
			v := base + b
			x := v
			if src != nil {
				x = int(src[v])
			}
			var y int
			if fw {
				y = edge.forward(nav, x)
			} else {
				y = edge.backward(nav, x)
			}
			dst[v] = int32(y)
			if y < 0 || !passes(y) {
				w &^= 1 << uint(b)
			}
		}
		return w
	})
}

// applyCheck verifies a non-spanning-tree binary atom over the
// gathered columns, dropping anchors whose bindings fail it.
func (st *bitmapRun) applyCheck(live *bitset.Set, e binEdge, anchor int) {
	xcol := st.col(e.x, anchor)
	ycol := st.col(e.y, anchor)
	nav := st.nav
	live.UpdateWords(func(base int, w uint64) uint64 {
		for m := w; m != 0; m &= m - 1 {
			b := bits.TrailingZeros64(m)
			v := base + b
			x, y := v, v
			if xcol != nil {
				x = int(xcol[v])
			}
			if ycol != nil {
				y = int(ycol[v])
			}
			if e.forward(nav, x) != y {
				w &^= 1 << uint(b)
			}
		}
		return w
	})
}

// evalSparse propagates last round's deltas through one rule without
// touching the rest of the domain: every delta node determines (via
// the inverse spanning-tree path — each τ_ur step is an injective
// partial function, so the walk is exact) the unique candidate anchor
// it could justify, and each candidate is checked scalar against the
// full body.
func (st *bitmapRun) evalSparse(ri int) {
	br := &st.bp.rules[ri]
	lr := br.lr
	nav := st.nav
	var head *bitset.Set
	if lr.headVar >= 0 {
		head = st.unary[lr.headID]
	}
	for ai, u := range lr.idbUnary {
		d := st.nextDelta[u.pid] // pre-swap naming: last round's delta
		if !d.Any() {
			continue
		}
		path := br.invPaths[ai]
		done := false
		d.ForEach(func(w int) {
			if done {
				return
			}
			v := w
			for _, is := range path {
				if is.forward {
					v = is.edge.backward(nav, v)
				} else {
					v = is.edge.forward(nav, v)
				}
				if v < 0 {
					return
				}
			}
			if head != nil && head.Has(v) {
				return
			}
			if !st.evalAnchor(lr, v) {
				return
			}
			if head != nil {
				head.Add(v)
				st.delta[lr.headID].Add(v)
				st.markDirty(lr.headID)
			} else {
				st.setProp(lr.headID)
				done = true
			}
		})
		if done {
			return
		}
	}
}

// evalAnchor checks the full rule body for one anchor binding — the
// scalar mirror of the columnar pipeline, with IDB atoms tested
// against the current extension bitmaps.
func (st *bitmapRun) evalAnchor(lr *linearRule, anchorVal int) bool {
	nav := st.nav
	binding := st.binding
	binding[lr.anchor] = anchorVal
	for _, s := range lr.steps {
		if s.forward {
			w := s.edge.forward(nav, binding[s.edge.x])
			if w == -1 {
				return false
			}
			binding[s.edge.y] = w
		} else {
			w := s.edge.backward(nav, binding[s.edge.y])
			if w == -1 {
				return false
			}
			binding[s.edge.x] = w
		}
	}
	for _, e := range lr.checks {
		if e.forward(nav, binding[e.x]) != binding[e.y] {
			return false
		}
	}
	for _, u := range lr.unary {
		if !st.holdsUnary(u, binding[u.v]) {
			return false
		}
	}
	for _, u := range lr.idbUnary {
		if !st.unary[u.pid].Has(binding[u.v]) {
			return false
		}
	}
	for _, pid := range lr.idbProp {
		if !st.props[pid] {
			return false
		}
	}
	return true
}

// markDirty records that a unary predicate's current write delta is
// nonempty (idempotent per round via the dirty list scan — the list
// stays tiny: one entry per predicate).
func (st *bitmapRun) markDirty(pid int) {
	for _, d := range st.dirty {
		if d == pid {
			return
		}
	}
	st.dirty = append(st.dirty, pid)
}

// setProp derives a propositional predicate, recording the flip for
// next round's wake-ups (each prop flips at most once per run).
func (st *bitmapRun) setProp(pid int) {
	if !st.props[pid] {
		st.props[pid] = true
		st.propDirty = append(st.propDirty, pid)
	}
}

// RunTree is Run over a bare tree, building (or fetching from cache,
// when cache is non-nil) the navigation arrays.
func (bp *BitmapPlan) RunTree(t *tree.Tree, cache *TreeCache) (*datalog.Database, error) {
	if cache != nil {
		return bp.Run(cache.Nav(t))
	}
	return bp.Run(NewNav(t))
}

// BitmapTree evaluates a monadic datalog program on one tree with the
// bitmap engine, returning the intensional relations. Single-shot: it
// prepares the plan anew on every call; use NewBitmapPlan + Run to
// amortize preparation across documents.
func BitmapTree(p *datalog.Program, t *tree.Tree) (*datalog.Database, error) {
	bp, err := NewBitmapPlan(p)
	if err != nil {
		return nil, err
	}
	return bp.Run(NewNav(t))
}
