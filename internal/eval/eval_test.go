package eval

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"mdlog/internal/datalog"
	"mdlog/internal/paperex"
	"mdlog/internal/tree"
)

func TestTreeDB(t *testing.T) {
	tr := tree.MustParse("a(b,c(d,e),f)")
	db := TreeDB(tr, WithChild(), WithLastChild(), WithFirstSibling(), WithDom(), WithChildK(3))
	if got := db.UnarySet(PredRoot); len(got) != 1 || got[0] != 0 {
		t.Errorf("root = %v", got)
	}
	if got := db.UnarySet(PredLeaf); len(got) != 4 {
		t.Errorf("leaf = %v", got)
	}
	// lastsibling: f (id 5) and e (id 4); the root is not a last sibling.
	ls := db.UnarySet(PredLastSibling)
	if len(ls) != 2 || ls[0] != 4 || ls[1] != 5 {
		t.Errorf("lastsibling = %v", ls)
	}
	fs := db.UnarySet(PredFirstSibling)
	if len(fs) != 2 || fs[0] != 1 || fs[1] != 3 {
		t.Errorf("firstsibling = %v", fs)
	}
	if !db.Has(PredFirstChild, 0, 1) || !db.Has(PredFirstChild, 2, 3) {
		t.Error("firstchild wrong")
	}
	if !db.Has(PredNextSibling, 1, 2) || !db.Has(PredNextSibling, 2, 5) || !db.Has(PredNextSibling, 3, 4) {
		t.Error("nextsibling wrong")
	}
	if !db.Has(PredChild, 0, 5) || !db.Has(PredChild, 2, 4) {
		t.Error("child wrong")
	}
	if !db.Has(PredLastChild, 0, 5) || !db.Has(PredLastChild, 2, 4) || db.Has(PredLastChild, 0, 1) {
		t.Error("lastchild wrong")
	}
	if !db.Has("child_1", 0, 1) || !db.Has("child_2", 0, 2) || !db.Has("child_3", 0, 5) {
		t.Error("child_k wrong")
	}
	if len(db.UnarySet(PredDom)) != 6 {
		t.Error("dom wrong")
	}
	if !db.Has(LabelPred("c"), 2) {
		t.Error("label wrong")
	}
}

func TestLabelAndChildKPredNames(t *testing.T) {
	if LabelPred("a") != "label_a" {
		t.Error("LabelPred wrong")
	}
	if l, ok := IsLabelPred("label_div"); !ok || l != "div" {
		t.Error("IsLabelPred wrong")
	}
	if _, ok := IsLabelPred("leaf"); ok {
		t.Error("IsLabelPred false positive")
	}
	if ChildKPred(12) != "child_12" {
		t.Errorf("ChildKPred = %q", ChildKPred(12))
	}
	if k, ok := IsChildKPred("child_7"); !ok || k != 7 {
		t.Error("IsChildKPred wrong")
	}
	for _, s := range []string{"child_", "child_x", "child", "firstchild"} {
		if _, ok := IsChildKPred(s); ok {
			t.Errorf("IsChildKPred(%q) false positive", s)
		}
	}
}

// TestExample32Trace reproduces the exact T_P stages of Example 3.2.
func TestExample32Trace(t *testing.T) {
	tr := paperex.Example32Tree()
	p := paperex.EvenAProgram() // alphabet Σ = {a}
	db := TreeDB(tr)
	stages, final, err := datalog.TraceEval(p, db)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: T1 adds B0(n2),B0(n3),B0(n4); T2 C1(n2..n4); T3 R1(n4);
	// T4 R0(n3); T5 R1(n2); T6 B1(n1); T7 C0(n1). Node ni has id i-1.
	want := [][]string{
		{"b0(1)", "b0(2)", "b0(3)"},
		{"c1(1)", "c1(2)", "c1(3)"},
		{"r1(3)"},
		{"r0(2)"},
		{"r1(1)"},
		{"b1(0)"},
		{"c0(0)"},
	}
	if len(stages) != len(want) {
		t.Fatalf("got %d stages, want %d:\n%v", len(stages), len(want), stages)
	}
	for i, ws := range want {
		if len(stages[i]) != len(ws) {
			t.Fatalf("stage %d: got %v, want %v", i+1, stages[i], ws)
		}
		got := map[string]bool{}
		for _, a := range stages[i] {
			got[a.String()] = true
		}
		for _, w := range ws {
			if !got[w] {
				t.Errorf("stage %d: missing %s (got %v)", i+1, stages[i], w)
			}
		}
	}
	// Query result: exactly the root n1 (id 0).
	if got := final.UnarySet("c0"); len(got) != 1 || got[0] != 0 {
		t.Errorf("c0 = %v, want [0]", got)
	}
}

// TestExample32AllEngines checks the Example 3.2 query on assorted
// trees across every engine against the reference count semantics.
func TestExample32AllEngines(t *testing.T) {
	p := paperex.EvenAProgram("b", "c")
	trees := []*tree.Tree{
		paperex.Example32Tree(),
		tree.MustParse("a"),
		tree.MustParse("b"),
		tree.MustParse("a(a)"),
		tree.MustParse("b(a,b(a,a),c(a,b))"),
		tree.MustParse("c(a(a(a)),b,a)"),
		tree.Chain(9, "a"),
		tree.Flat(8, "a"),
	}
	for ti, tr := range trees {
		want := evenANodes(tr)
		for _, eng := range []Engine{EngineLinear, EngineSemiNaive, EngineNaive, EngineLIT, EngineBitmap} {
			res, err := EvalOnTree(p, tr, eng)
			if err != nil {
				t.Fatalf("tree %d engine %v: %v", ti, eng, err)
			}
			got := res.UnarySet("c0")
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Errorf("tree %d engine %v: got %v, want %v", ti, eng, got, want)
			}
		}
	}
}

func evenANodes(tr *tree.Tree) []int {
	return paperex.EvenASpec(tr)
}

// TestEnginesAgreeRandom is the cross-engine property test: on random
// trees and the Example 3.2 program, all four engines agree on every
// intensional predicate.
func TestEnginesAgreeRandom(t *testing.T) {
	p := paperex.EvenAProgram("b")
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := tree.Random(rng, tree.RandomOptions{
			Labels: []string{"a", "b"}, Size: 1 + rng.Intn(40), MaxChildren: 4})
		ref, err := EvalOnTree(p, tr, EngineNaive)
		if err != nil {
			return false
		}
		for _, eng := range []Engine{EngineLinear, EngineSemiNaive, EngineLIT, EngineBitmap} {
			res, err := EvalOnTree(p, tr, eng)
			if err != nil {
				t.Logf("engine %v: %v", eng, err)
				return false
			}
			if diff := SameResults(ref, res, p.IntensionalPreds()); diff != "" {
				t.Logf("engine %v differs on %s (tree %s)", eng, diff, tr)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSplitConnected(t *testing.T) {
	p := datalog.MustParseProgram(`
p(X) :- q(X), r(Y), s(Y), u(Z).
`)
	sp := SplitConnected(p)
	// Expect: two helper rules (one for {Y}, one for {Z}) + main rule.
	if len(sp.Rules) != 3 {
		t.Fatalf("got %d rules:\n%s", len(sp.Rules), sp)
	}
	for _, r := range sp.Rules {
		if !r.IsConnected() {
			t.Errorf("rule not connected: %s", r)
		}
	}
	main := sp.Rules[len(sp.Rules)-1]
	if main.Head.Pred != "p" || len(main.Body) != 3 {
		t.Errorf("main rule wrong: %s", main)
	}
}

func TestSplitConnectedPreservesSemantics(t *testing.T) {
	p := datalog.MustParseProgram(`
q(X) :- label_a(X), label_b(Y), firstchild(Y,Z).
`)
	sp := SplitConnected(p)
	tr := tree.MustParse("b(a,b(a))")
	db := TreeDB(tr)
	r1, err := datalog.NaiveEval(p, db)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := datalog.NaiveEval(sp, db)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(r1.UnarySet("q")) != fmt.Sprint(r2.UnarySet("q")) {
		t.Errorf("split changed semantics: %v vs %v", r1.UnarySet("q"), r2.UnarySet("q"))
	}
}

func TestLinearTreeRejects(t *testing.T) {
	tr := tree.MustParse("a(b)")
	cases := []string{
		`p(X) :- child(X,Y), label_b(Y).`,                      // child lacks the FD
		`p(X,Y) :- firstchild(X,Y).`,                           // non-monadic
		`p(X) :- mystery(X,Y), label_b(Y).`,                    // unknown binary predicate
		`p(X) :- firstchild(X,Y), label_b(Y), weird_unary(X).`, // dead rule is fine; see below
	}
	for i, src := range cases[:3] {
		p := datalog.MustParseProgram(src)
		if _, err := LinearTree(p, tr); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	// Unknown unary predicates make the rule dead rather than an error
	// (they are simply underivable intensional predicates).
	p := datalog.MustParseProgram(cases[3])
	res, err := LinearTree(p, tr)
	if err != nil {
		t.Fatalf("dead rule: %v", err)
	}
	if len(res.UnarySet("p")) != 0 {
		t.Error("dead rule derived facts")
	}
}

func TestLinearTreeChildK(t *testing.T) {
	// Ranked-tree signature: select nodes whose 2nd child is a leaf.
	p := datalog.MustParseProgram(`q(X) :- child_2(X,Y), leaf(Y).`)
	tr := tree.MustParse("f(g(a,b),h)")
	res, err := LinearTree(p, tr)
	if err != nil {
		t.Fatal(err)
	}
	// f's 2nd child h is a leaf (id 0 selected); g's 2nd child b is a
	// leaf (id 1 selected).
	if got := fmt.Sprint(res.UnarySet("q")); got != "[0 1]" {
		t.Errorf("q = %s", got)
	}
}

func TestLinearTreeLastChild(t *testing.T) {
	p := datalog.MustParseProgram(`q(X) :- lastchild(X,Y), label_c(Y).`)
	tr := tree.MustParse("a(b,c(b,c))")
	res, err := LinearTree(p, tr)
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(res.UnarySet("q")); got != "[0 2]" {
		t.Errorf("q = %s", got)
	}
}

func TestLinearTreeSelfLoopEdge(t *testing.T) {
	// firstchild(X,X) is unsatisfiable on trees; the rule must derive nothing.
	p := datalog.MustParseProgram(`q(X) :- firstchild(X,X).`)
	tr := tree.MustParse("a(b)")
	res, err := LinearTree(p, tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.UnarySet("q")) != 0 {
		t.Error("self-loop rule derived facts")
	}
}

func TestLinearTreeMultiEdge(t *testing.T) {
	// Two distinct relations between the same variables: both must hold.
	p := datalog.MustParseProgram(`q(X) :- firstchild(X,Y), lastchild(X,Y).`)
	tr := tree.MustParse("a(b,c)") // first ≠ last child at the root
	res, err := LinearTree(p, tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.UnarySet("q")) != 0 {
		t.Errorf("q = %v, want empty", res.UnarySet("q"))
	}
	tr2 := tree.MustParse("a(b)") // only child: first = last
	res2, err := LinearTree(p, tr2)
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(res2.UnarySet("q")); got != "[0]" {
		t.Errorf("q = %s, want [0]", got)
	}
}

func TestGroundEval(t *testing.T) {
	p := datalog.MustParseProgram(`
p(0) :- e(0,1).
p(1) :- p(0).
q(2) :- p(0), p(1), missing(2).
`)
	db := datalog.NewDatabase(3)
	db.Add("e", 0, 1)
	res, err := GroundEval(p, db)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Has("p", 0) || !res.Has("p", 1) {
		t.Error("p incomplete")
	}
	if res.Has("q", 2) {
		t.Error("q derived despite missing premise")
	}
	if _, err := GroundEval(datalog.MustParseProgram(`p(X) :- e(X,X).`), db); err == nil {
		t.Error("non-ground program accepted")
	}
}

func TestGuardedEval(t *testing.T) {
	// Reachability with edge guards: tc(X,Y) is guarded by e(X,Y) only
	// for single steps; we use a bounded 2-step variant that stays guarded.
	p := datalog.MustParseProgram(`
sel(X) :- e(X,Y), good(Y).
pair(X,Y) :- e(X,Y), sel(X).
`)
	db := datalog.NewDatabase(4)
	db.Add("e", 0, 1)
	db.Add("e", 1, 2)
	db.Add("good", 1)
	res, err := GuardedEval(p, db)
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(res.UnarySet("sel")); got != "[0]" {
		t.Errorf("sel = %s", got)
	}
	if !res.Has("pair", 0, 1) || res.Has("pair", 1, 2) {
		t.Error("pair wrong")
	}
	// A rule without a guard must be rejected.
	bad := datalog.MustParseProgram(`p(X) :- q(X), r(Y).`)
	if _, err := GuardedEval(bad, db); err == nil {
		t.Error("unguarded rule accepted")
	}
}

func TestLITEval(t *testing.T) {
	// Mixed LIT program: monadic-body rules + guarded rule.
	p := datalog.MustParseProgram(`
has_a :- label_a(X).
q(X) :- dom(X), has_a.
r(X) :- firstchild(X,Y), q(Y).
`)
	tr := tree.MustParse("b(a,b)")
	db := TreeDB(tr, WithDom())
	res, err := LITEval(p, db)
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(res.UnarySet("q")); got != "[0 1 2]" {
		t.Errorf("q = %s", got)
	}
	if got := fmt.Sprint(res.UnarySet("r")); got != "[0]" {
		t.Errorf("r = %s", got)
	}
	if _, err := LITEval(datalog.MustParseProgram(`p(X,Y) :- e(X,Y).`), db); err == nil {
		t.Error("non-monadic program accepted by LIT engine")
	}
}

func TestQueryHelper(t *testing.T) {
	p := paperex.EvenAProgram()
	tr := paperex.Example32Tree()
	got, err := Query(p, tr)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[0]" {
		t.Errorf("Query = %v", got)
	}
	p2 := p.Clone()
	p2.Query = ""
	if _, err := Query(p2, tr); err == nil {
		t.Error("expected error without query predicate")
	}
}

func TestParseEngine(t *testing.T) {
	for _, name := range []string{"linear", "seminaive", "naive", "lit"} {
		e, err := ParseEngine(name)
		if err != nil {
			t.Fatal(err)
		}
		if e.String() != name {
			t.Errorf("round trip %q -> %q", name, e.String())
		}
	}
	if _, err := ParseEngine("magic"); err == nil {
		t.Error("expected error")
	}
}

func TestNavArrays(t *testing.T) {
	tr := tree.MustParse("a(b,c(d,e),f)")
	nav := NewNav(tr)
	if nav.FC[0] != 1 || nav.FC[1] != -1 || nav.FC[2] != 3 {
		t.Error("FC wrong")
	}
	if nav.NS[1] != 2 || nav.NS[2] != 5 || nav.NS[5] != -1 {
		t.Error("NS wrong")
	}
	if nav.Parent[0] != -1 || nav.Parent[3] != 2 {
		t.Error("Parent wrong")
	}
	if nav.Prev[2] != 1 || nav.Prev[1] != -1 {
		t.Error("Prev wrong")
	}
	if nav.LastChild[0] != 5 || nav.LastChild[2] != 4 || nav.LastChild[1] != -1 {
		t.Error("LastChild wrong")
	}
	if nav.ChildK(0, 2) != 2 || nav.ChildK(0, 4) != -1 {
		t.Error("ChildK wrong")
	}
}
