package eval

// Incremental maintenance of the least model under live-document
// edits. An arena mutation (tree.InsertSubtree / RemoveSubtree)
// changes the τ_ur EDB in a precisely bounded way: every added,
// removed, or relinked row is named by the recorded ArenaDelta, and a
// τ_ur fact can appear or disappear only at a node whose row changed —
// firstchild, nextsibling, lastchild, child_k are all stored (or
// derived) per-row, and the node-class predicates (root, leaf,
// lastsibling, firstsibling) read only a node's own row. Text and
// attribute edits are invisible here: they are outside the τ_ur
// signature, so no fact changes.
//
// IncState exploits that bound with delete-rederive (DRed) on top of
// the bitmap engine's semi-naive machinery:
//
//  1. Overdelete, entirely under the OLD structure: walk from every
//     affected row backwards to the unique candidate anchor of each
//     rule slot (the spanning-tree steps are injective partial
//     functions, Proposition 4.1 — so the walk is exact, not a
//     search), check the rule body under the old edges and the
//     pre-edit extensions, and delete every head fact with a
//     derivation that may have used a changed fact. Deletions
//     propagate through rule bodies by the same inverse walk until
//     the worklist drains. This over-approximates: a fact with an
//     independent surviving derivation is deleted too —
//  2. Rederive, under the NEW structure: seed the bitmap engine's
//     semi-naive loop (bitmapRun.fixpoint) with every candidate
//     anchor reachable from an affected or overdeleted node and let
//     the ordinary delta rounds run to fixpoint. A new derivation
//     must use a changed EDB fact or a rederived IDB fact, and both
//     kinds of node are in the seed frontier, so the loop reaches
//     exactly the least model of the new document — the same T_P^ω a
//     from-scratch evaluation computes (DESIGN.md § Incremental
//     maintenance gives the argument in full).
//
// Programs whose connected-rule split introduced propositional helper
// predicates fall back to full re-evaluation per generation: a helper
// flip can enable or disable rule instances at every node at once, so
// there is no local frontier to seed from. The fallback is still
// generation-correct — only the delta-locality optimization is lost.

import (
	"fmt"

	"mdlog/internal/bitset"
	"mdlog/internal/datalog"
	"mdlog/internal/tree"
)

// IncState maintains the intensional relations of one program over one
// live document across arena mutations. It is built at some generation
// by a full evaluation, then advanced by Apply with the ArenaDelta of
// each edit batch; Database returns the current least model without
// re-running the program over the whole document.
//
// An IncState is single-writer: Apply and Database must be serialized
// by the caller (the mdlog.Document wrapper provides that), matching
// the arena's own mutation contract.
type IncState struct {
	bp    *BitmapPlan
	arena *tree.Arena
	gen   uint64
	dom   int

	// fallback marks programs outside the delta-maintainable fragment
	// (their connected-rule split has propositional helpers); Database
	// then re-runs the full engine per generation — never stale, just
	// not delta-local.
	fallback bool

	// unary[pid] is the maintained extension of each unary IDB
	// predicate at generation gen.
	unary []*bitset.Set

	// slotPaths[ri][slot] walks from a rule slot back to its anchor,
	// inverting each spanning-tree step (empty at the anchor itself) —
	// the frontier → candidate-anchor map of both DRed passes.
	slotPaths [][][]invStep

	// run is the persistent scratch state the rederivation fixpoint
	// executes in; its unary slice aliases the maintained extensions.
	run *bitmapRun

	stats IncStats
}

// IncStats counts the work an IncState has done, for diagnostics and
// the service layer's session stats.
type IncStats struct {
	// Applies counts non-empty deltas applied; Fallbacks counts the
	// applies handled by the full-re-evaluation fallback.
	Applies, Fallbacks int
	// Overdeleted and Rederived count facts removed by DRed pass 1 and
	// facts among them restored by pass 2.
	Overdeleted, Rederived int
}

// incFact is one (predicate, node) pair on the overdelete worklist.
type incFact struct{ pid, v int }

// NewIncState builds incremental maintenance state for the plan over
// the document behind a, at the arena's current generation, by one
// full evaluation. Both grounding engines (linear and bitmap) compute
// the same least model, so one IncState serves queries compiled for
// either.
func (pl *Plan) NewIncState(a *tree.Arena) *IncState {
	return newIncState(bitmapPlanOf(pl), a)
}

// NewIncState is Plan.NewIncState for an already-prepared bitmap plan.
func (bp *BitmapPlan) NewIncState(a *tree.Arena) *IncState {
	return newIncState(bp, a)
}

func newIncState(bp *BitmapPlan, a *tree.Arena) *IncState {
	s := &IncState{bp: bp, arena: a, gen: a.Gen(), dom: a.Len()}
	pl := bp.pl
	if len(pl.propPreds) > 0 {
		s.fallback = true
		return s
	}
	// With no propositional predicates every rule is anchored at its
	// head variable (nvars ≥ 1) and has no propositional body atoms.
	s.slotPaths = make([][][]invStep, len(bp.rules))
	for ri := range bp.rules {
		lr := bp.rules[ri].lr
		boundBy := make([]int, lr.nvars)
		for i := range boundBy {
			boundBy[i] = -1
		}
		for si, st := range lr.steps {
			if st.forward {
				boundBy[st.edge.y] = si
			} else {
				boundBy[st.edge.x] = si
			}
		}
		paths := make([][]invStep, lr.nvars)
		for slot := 0; slot < lr.nvars; slot++ {
			var path []invStep
			for v := slot; v != lr.anchor; {
				st := lr.steps[boundBy[v]]
				path = append(path, invStep{edge: st.edge, forward: st.forward})
				if st.forward {
					v = st.edge.x
				} else {
					v = st.edge.y
				}
			}
			paths[slot] = path
		}
		s.slotPaths[ri] = paths
	}
	s.unary = make([]*bitset.Set, len(pl.unaryPreds))
	for i := range s.unary {
		s.unary[i] = bitset.New(s.dom)
	}
	// Full initial evaluation, retaining the extension bitmaps.
	st := s.freshRun()
	for ri := range bp.rules {
		st.evalColumnar(ri)
	}
	st.fixpoint()
	return s
}

// Gen returns the arena generation the maintained extensions are
// current for.
func (s *IncState) Gen() uint64 { return s.gen }

// Fallback reports whether the program is maintained by full
// re-evaluation per generation rather than delta propagation.
func (s *IncState) Fallback() bool { return s.fallback }

// Stats returns the cumulative maintenance counters.
func (s *IncState) Stats() IncStats { return s.stats }

// freshRun readies the persistent scratch run state for the arena's
// current width: grows the maintained extensions and delta buffers,
// re-resolves labels, and invalidates the per-document condition
// bitmaps (the previous generation's are stale).
func (s *IncState) freshRun() *bitmapRun {
	bp := s.bp
	pl := bp.pl
	dom := s.arena.Len()
	nav := NavOf(s.arena)
	st := s.run
	if st == nil {
		st = &bitmapRun{
			bp:        bp,
			delta:     make([]*bitset.Set, len(pl.unaryPreds)),
			nextDelta: make([]*bitset.Set, len(pl.unaryPreds)),
			props:     make([]bool, len(pl.propPreds)),
			labelBm:   make([]*bitset.Set, len(pl.labels)),
			live:      bitset.New(dom),
			cols:      make([][]int32, bp.maxVars),
			binding:   make([]int, bp.maxVars),
			ruleStamp: make([]int, len(bp.rules)),
		}
		for i := range st.delta {
			st.delta[i] = bitset.New(dom)
			st.nextDelta[i] = bitset.New(dom)
		}
		if len(pl.labels) > 0 {
			st.labelSyms = make([]int32, len(pl.labels))
		}
		s.run = st
	}
	st.nav, st.dom = nav, dom
	st.unary = s.unary
	for i := range s.unary {
		s.unary[i].Grow(dom)
	}
	for i := range st.delta {
		st.delta[i].Grow(dom)
		st.delta[i].Clear()
		st.nextDelta[i].Grow(dom)
		st.nextDelta[i].Clear()
	}
	st.live.Grow(dom)
	for i, c := range st.cols {
		if c != nil && len(c) < dom {
			st.cols[i] = nil
		}
	}
	for i := range st.labelBm {
		st.labelBm[i] = nil
	}
	for i := range st.kindBm {
		st.kindBm[i] = nil
	}
	st.deadBm = nil
	for i, l := range pl.labels {
		st.labelSyms[i] = nav.LabelID(l)
	}
	for i := range st.ruleStamp {
		st.ruleStamp[i] = 0
	}
	st.dirty = st.dirty[:0]
	st.nextDirty = st.nextDirty[:0]
	st.propDirty = nil
	st.round = 0
	return st
}

// Apply advances the maintained extensions across one delta window
// (one edit or a ComposeDeltas batch). The window must start exactly
// where the state left off; mdlog.Document tracks that bookkeeping.
func (s *IncState) Apply(d *tree.ArenaDelta) error {
	if d == nil || (d.Empty() && d.Gen <= s.gen) {
		return nil
	}
	if d.OldLen != s.dom {
		return fmt.Errorf("eval: delta window [%d → %d] does not start at the maintained domain %d", d.OldLen, d.NewLen, s.dom)
	}
	if s.fallback {
		s.stats.Applies++
		s.stats.Fallbacks++
		s.dom, s.gen = d.NewLen, d.Gen
		return nil
	}
	if len(d.Added) == 0 && len(d.Removed) == 0 && len(d.Touched) == 0 {
		// Text/attr-only window: outside the τ_ur signature, no EDB
		// fact changed, so the model is untouched.
		s.dom, s.gen = d.NewLen, d.Gen
		return nil
	}
	s.stats.Applies++
	bp := s.bp

	// Ready the scratch state first: it grows the maintained bitmaps to
	// the new width (overdelete only touches old ids; rederive needs
	// the full width) and re-resolves the label symbols.
	st := s.freshRun()
	nav := st.nav
	o := newOldView(nav, d)

	// --- DRed pass 1: overdelete under the OLD structure. -----------
	// Affected old rows: every row that changed or disappeared. Every
	// EDB fact that changed has all its argument nodes among them.
	affOld := make(map[int]struct{}, len(d.Touched)+len(d.Removed))
	for _, tn := range d.Touched {
		affOld[int(tn.ID)] = struct{}{}
	}
	for _, v := range d.Removed {
		if int(v) < d.OldLen {
			affOld[int(v)] = struct{}{}
		}
	}
	od := make([]*bitset.Set, len(s.unary))
	var queue []incFact
	overdelete := func(pid, v int) {
		if od[pid] == nil {
			od[pid] = bitset.New(st.dom)
		} else if od[pid].Has(v) {
			return
		}
		od[pid].Add(v)
		queue = append(queue, incFact{pid, v})
	}
	// A derivation that used a changed fact binds an affected node at
	// some slot; the inverse walk from that slot names its anchor.
	tryOld := func(ri int, path []invStep, u int) {
		lr := bp.rules[ri].lr
		w := o.walkInv(path, u)
		if w < 0 || !o.exists(w) {
			return
		}
		if !s.unary[lr.headID].Has(w) || (od[lr.headID] != nil && od[lr.headID].Has(w)) {
			return
		}
		if s.oldBody(o, lr, st, w) {
			overdelete(lr.headID, w)
		}
	}
	for ri := range bp.rules {
		for _, path := range s.slotPaths[ri] {
			for u := range affOld {
				tryOld(ri, path, u)
			}
		}
	}
	for len(queue) > 0 {
		f := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, ri := range bp.unaryDeps[f.pid] {
			br := &bp.rules[ri]
			for ai, u := range br.lr.idbUnary {
				if u.pid == f.pid {
					tryOld(ri, br.invPaths[ai], f.v)
				}
			}
		}
	}
	// Subtract the overdeletions; removed rows lose all facts outright
	// (their every derivation was anchored at a now-dead node, so they
	// are all in od already — this is the cheap belt over suspenders).
	overdeleted := 0
	for pid, b := range od {
		if b != nil && b.Any() {
			overdeleted += b.Count()
			s.unary[pid].AndNot(b)
		}
	}
	for _, v := range d.Removed {
		if int(v) < d.OldLen {
			for _, u := range s.unary {
				u.Remove(int(v))
			}
		}
	}
	s.stats.Overdeleted += overdeleted

	// --- DRed pass 2: rederive under the NEW structure. -------------
	// Seed frontier: affected rows (old and new) plus everything
	// overdeleted. A new derivation uses a changed EDB fact (its node
	// is affected) or a rederived IDB fact (reached by the semi-naive
	// rounds); an overdeleted fact with a surviving derivation is
	// rediscovered from its own anchor seed.
	affNew := affOld
	for _, v := range d.Added {
		affNew[int(v)] = struct{}{}
	}
	for _, v := range d.Removed {
		affNew[int(v)] = struct{}{}
	}
	for _, b := range od {
		if b != nil {
			b.ForEach(func(v int) { affNew[v] = struct{}{} })
		}
	}
	for ri := range bp.rules {
		lr := bp.rules[ri].lr
		head := st.unary[lr.headID]
		for _, path := range s.slotPaths[ri] {
			for u := range affNew {
				v := u
				ok := true
				for _, is := range path {
					if is.forward {
						v = is.edge.backward(nav, v)
					} else {
						v = is.edge.forward(nav, v)
					}
					if v < 0 {
						ok = false
						break
					}
				}
				if !ok || !nav.Alive(v) || head.Has(v) {
					continue
				}
				if st.evalAnchor(lr, v) {
					head.Add(v)
					st.delta[lr.headID].Add(v)
					st.markDirty(lr.headID)
				}
			}
		}
	}
	st.fixpoint()

	rederived := 0
	for pid, b := range od {
		if b != nil {
			b.ForEach(func(v int) {
				if s.unary[pid].Has(v) {
					rederived++
				}
			})
		}
	}
	s.stats.Rederived += rederived
	s.dom, s.gen = d.NewLen, d.Gen
	return nil
}

// Database returns the intensional relations at the arena's current
// generation — the result of the maintained model, or a full run in
// fallback mode. It errors when Apply has not caught up with the
// arena (the caller skipped a delta).
func (s *IncState) Database() (*datalog.Database, error) {
	if g := s.arena.Gen(); g != s.gen {
		return nil, fmt.Errorf("eval: incremental state at generation %d is behind the arena (generation %d); apply the missing deltas first", s.gen, g)
	}
	if s.fallback {
		return s.bp.Run(NavOf(s.arena))
	}
	return materialize(s.bp.pl, s.unary, nil, s.dom), nil
}

// oldView reconstructs the pre-edit structure of one delta window on
// top of the post-edit arena columns: dead rows keep their pre-removal
// columns verbatim, and every surviving row whose columns changed has
// its old row snapshotted in the delta (first write wins, so composed
// windows see the values from before the whole window).
type oldView struct {
	nav     *Nav
	old     map[int32]tree.TouchedNode
	oldLen  int
	removed map[int32]bool
}

func newOldView(nav *Nav, d *tree.ArenaDelta) *oldView {
	o := &oldView{
		nav:     nav,
		oldLen:  d.OldLen,
		old:     make(map[int32]tree.TouchedNode, len(d.Touched)),
		removed: make(map[int32]bool, len(d.Removed)),
	}
	for _, tn := range d.Touched {
		o.old[tn.ID] = tn
	}
	for _, v := range d.Removed {
		if int(v) < d.OldLen {
			o.removed[v] = true
		}
	}
	return o
}

// exists reports whether v was a live node before the window: inside
// the old width and either still alive or removed by this window.
// (Rows dead before the window are not in removed, so they stay dead.)
func (o *oldView) exists(v int) bool {
	return v >= 0 && v < o.oldLen && (o.nav.Alive(v) || o.removed[int32(v)])
}

func (o *oldView) parent(v int) int {
	if t, ok := o.old[int32(v)]; ok {
		return int(t.OldParent)
	}
	return int(o.nav.Parent[v])
}

func (o *oldView) fc(v int) int {
	if t, ok := o.old[int32(v)]; ok {
		return int(t.OldFirstChild)
	}
	return int(o.nav.FC[v])
}

func (o *oldView) ns(v int) int {
	if t, ok := o.old[int32(v)]; ok {
		return int(t.OldNextSibling)
	}
	return int(o.nav.NS[v])
}

func (o *oldView) prev(v int) int {
	if t, ok := o.old[int32(v)]; ok {
		return int(t.OldPrevSibling)
	}
	return int(o.nav.Prev[v])
}

func (o *oldView) lastChild(v int) int {
	if t, ok := o.old[int32(v)]; ok {
		return int(t.OldLastChild)
	}
	return int(o.nav.LastChild[v])
}

func (o *oldView) childIdx(v int) int {
	if t, ok := o.old[int32(v)]; ok {
		return int(t.OldChildIdx)
	}
	return int(o.nav.ChildIdx[v])
}

// edgeForward is binEdge.forward under the old structure.
func (o *oldView) edgeForward(e binEdge, v int) int {
	switch e.kind {
	case binFirstChild:
		return o.fc(v)
	case binNextSibling:
		return o.ns(v)
	case binLastChild:
		return o.lastChild(v)
	case binChildK:
		if e.k < 1 {
			return -1
		}
		c := o.fc(v)
		for i := 1; i < e.k && c >= 0; i++ {
			c = o.ns(c)
		}
		return c
	}
	return -1
}

// edgeBackward is binEdge.backward under the old structure.
func (o *oldView) edgeBackward(e binEdge, v int) int {
	switch e.kind {
	case binFirstChild:
		if o.prev(v) == -1 {
			return o.parent(v)
		}
	case binNextSibling:
		return o.prev(v)
	case binLastChild:
		if o.ns(v) == -1 {
			return o.parent(v)
		}
	case binChildK:
		if o.childIdx(v) == e.k-1 {
			return o.parent(v)
		}
	}
	return -1
}

// walkInv follows an inverse spanning-tree path under the old
// structure, returning the candidate anchor or -1.
func (o *oldView) walkInv(path []invStep, v int) int {
	for _, is := range path {
		if is.forward {
			v = o.edgeBackward(is.edge, v)
		} else {
			v = o.edgeForward(is.edge, v)
		}
		if v < 0 {
			return -1
		}
	}
	return v
}

// oldBody checks a full rule body at one anchor under the old
// structure and the pre-deletion extensions — the overdelete mirror of
// bitmapRun.evalAnchor. (Propositional atoms cannot occur: programs
// with them take the fallback path.)
func (s *IncState) oldBody(o *oldView, lr *linearRule, st *bitmapRun, anchorVal int) bool {
	binding := st.binding
	binding[lr.anchor] = anchorVal
	for _, ps := range lr.steps {
		if ps.forward {
			w := o.edgeForward(ps.edge, binding[ps.edge.x])
			if w == -1 {
				return false
			}
			binding[ps.edge.y] = w
		} else {
			w := o.edgeBackward(ps.edge, binding[ps.edge.y])
			if w == -1 {
				return false
			}
			binding[ps.edge.x] = w
		}
	}
	for _, e := range lr.checks {
		if o.edgeForward(e, binding[e.x]) != binding[e.y] {
			return false
		}
	}
	for _, u := range lr.unary {
		w := binding[u.v]
		holds := false
		switch u.kind {
		case uLabel:
			holds = o.nav.Label[w] == st.labelSyms[u.labelIdx]
		case uRoot:
			holds = o.parent(w) == -1
		case uLeaf:
			holds = o.fc(w) == -1
		case uLastSibling:
			holds = o.ns(w) == -1 && o.parent(w) != -1
		case uFirstSibling:
			holds = o.prev(w) == -1 && o.parent(w) != -1
		case uDom:
			holds = true
		}
		if !holds {
			return false
		}
	}
	for _, u := range lr.idbUnary {
		if !s.unary[u.pid].Has(binding[u.v]) {
			return false
		}
	}
	return true
}
