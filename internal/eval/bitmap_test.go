package eval

import (
	"math/rand"
	"testing"

	"mdlog/internal/datalog"
	"mdlog/internal/tree"
)

// bitmapVsLinear evaluates p on tr with both grounding engines and
// fails on any visible difference.
func bitmapVsLinear(t *testing.T, p *datalog.Program, tr *tree.Tree, what string) {
	t.Helper()
	want, err := LinearTree(p, tr)
	if err != nil {
		t.Fatalf("%s: linear: %v", what, err)
	}
	got, err := BitmapTree(p, tr)
	if err != nil {
		t.Fatalf("%s: bitmap: %v", what, err)
	}
	if diff := SameResults(want, got, p.IntensionalPreds()); diff != "" {
		t.Fatalf("%s: bitmap differs from linear on %s (tree %s)", what, diff, tr)
	}
}

func TestBitmapMatchesLinearHandPicked(t *testing.T) {
	programs := map[string]string{
		// Non-recursive select with a gather step and label tests.
		"select": `
q(X) :- label_a(X), firstchild(X,Y), label_b(Y).
?- q.`,
		// Downward recursion (firstchild/nextsibling closure).
		"mark-down": `
m(X) :- root(X).
m(Y) :- m(X), firstchild(X,Y).
m(Y) :- m(X), nextsibling(X,Y).
q(X) :- m(X), label_b(X).
?- q.`,
		// Upward recursion through inverse steps.
		"mark-up": `
u(X) :- leaf(X), label_a(X).
u(X) :- firstchild(X,Y), u(Y).
u(X) :- nextsibling(X,Y), u(Y).
?- u.`,
		// Propositional helpers: disconnected body components split by
		// SplitConnected into conn_* prop rules.
		"disconnected": `
q(X) :- label_a(X), label_b(Y), firstchild(Y,Z).
?- q.`,
		// Mutual recursion plus lastchild and node classes.
		"mutual": `
p(X) :- lastsibling(X), label_b(X).
r(Y) :- p(X), lastchild(Y,X).
p(Y) :- r(X), firstchild(X,Y).
?- p.`,
		// Non-spanning-tree check atom (a cycle in the query graph).
		"cycle-check": `
q(X) :- firstchild(X,Y), nextsibling(Y,Z), firstchild(X,W), nextsibling(W,Z).
?- q.`,
		// child_2 of the ranked signature.
		"child-k": `
q(X) :- child_2(Y,X), label_a(Y).
?- q.`,
	}
	trees := []string{
		"a",
		"b",
		"a(b)",
		"b(a,b(a,a),c(a,b))",
		"c(a(a(a)),b,a)",
		"a(b(c,a,b),b(a),a(a,b,c,a))",
	}
	for name, src := range programs {
		p := datalog.MustParseProgram(src)
		for _, ts := range trees {
			bitmapVsLinear(t, p, tree.MustParse(ts), name+" on "+ts)
		}
	}
}

func TestBitmapMatchesLinearRandomTrees(t *testing.T) {
	p := datalog.MustParseProgram(`
m(X) :- root(X).
m(Y) :- m(X), firstchild(X,Y).
m(Y) :- m(X), nextsibling(X,Y).
deep(X) :- m(X), leaf(X), lastsibling(X).
q(X) :- deep(X), label_a(X).
?- q.`)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		tr := tree.Random(rng, tree.RandomOptions{
			Labels: []string{"a", "b", "c"}, Size: 1 + rng.Intn(80), MaxChildren: 5})
		bitmapVsLinear(t, p, tr, "random tree")
	}
}

// TestBitmapWordBoundaries pins the domain sizes where tail-masking
// bugs would hide: chains and flats of 63, 64 and 65 nodes.
func TestBitmapWordBoundaries(t *testing.T) {
	p := datalog.MustParseProgram(`
m(X) :- root(X).
m(Y) :- m(X), firstchild(X,Y).
m(Y) :- m(X), nextsibling(X,Y).
?- m.`)
	for _, n := range []int{1, 63, 64, 65, 127, 128, 129} {
		bitmapVsLinear(t, p, tree.Chain(n, "a"), "chain")
		bitmapVsLinear(t, p, tree.Flat(n, "a"), "flat")
	}
	// Every node must be marked on both shapes — a direct check on top
	// of the differential one.
	for _, n := range []int{63, 64, 65} {
		res, err := BitmapTree(p, tree.Chain(n, "a"))
		if err != nil {
			t.Fatal(err)
		}
		if got := len(res.UnarySet("m")); got != n {
			t.Fatalf("chain(%d): marked %d nodes", n, got)
		}
	}
}

func TestBitmapPlanReusableAcrossDocuments(t *testing.T) {
	p := datalog.MustParseProgram(`
q(X) :- label_a(X), firstchild(X,Y), label_b(Y).
?- q.`)
	bp, err := NewBitmapPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	if bp.Program() != p || bp.QueryPred() != "q" {
		t.Fatalf("accessors: program %v pred %q", bp.Program() == p, bp.QueryPred())
	}
	for _, ts := range []string{"a(b)", "b(a(b),a(c))", "a"} {
		tr := tree.MustParse(ts)
		got, err := bp.RunTree(tr, nil)
		if err != nil {
			t.Fatal(err)
		}
		want, err := LinearTree(p, tr)
		if err != nil {
			t.Fatal(err)
		}
		if diff := SameResults(want, got, p.IntensionalPreds()); diff != "" {
			t.Fatalf("reuse on %s: %s", ts, diff)
		}
	}
}

func TestBitmapRejectsNonLinearFragment(t *testing.T) {
	p := datalog.MustParseProgram(`
q(X) :- child(X,Y), label_b(Y).
?- q.`)
	if _, err := NewBitmapPlan(p); err == nil {
		t.Fatalf("child/2 accepted; want the Theorem 5.2 guidance error")
	}
}

func TestEngineNamesAndValidity(t *testing.T) {
	for _, name := range EngineNames() {
		e, err := ParseEngine(name)
		if err != nil {
			t.Fatalf("ParseEngine(%q): %v", name, err)
		}
		if e.String() != name {
			t.Fatalf("round trip %q -> %v", name, e)
		}
		if !ValidEngine(e) {
			t.Fatalf("ValidEngine(%v) = false", e)
		}
	}
	if ValidEngine(Engine(99)) {
		t.Fatalf("ValidEngine(99) = true")
	}
	if _, err := ParseEngine("bitmask"); err == nil {
		t.Fatalf("ParseEngine accepted an unknown name")
	}
}
