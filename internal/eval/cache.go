package eval

import (
	"sync"

	"mdlog/internal/datalog"
	"mdlog/internal/tree"
)

// Signature describes which extensional relations beyond the τ_ur core
// a program reads, i.e. what a TreeDB materialization must contain for
// the generic engines to be complete on it. Two programs with the same
// Signature can share one materialized database per tree.
type Signature struct {
	Child, LastChild, FirstSibling, Dom bool
	// ChildK is the largest k of any child_k atom (τ_rk), 0 if none.
	ChildK int
}

// FullSignature requests every optional relation (what the legacy
// EvalOnTree path materialized unconditionally, minus child_k).
func FullSignature() Signature {
	return Signature{Child: true, LastChild: true, FirstSibling: true, Dom: true}
}

// GenericSignature is the materialization the generic (set-oriented)
// engines use for p: every optional relation plus p's child_k arity.
func GenericSignature(p *datalog.Program) Signature {
	s := FullSignature()
	s.ChildK = SignatureOf(p).ChildK
	return s
}

// SignatureOf scans the program's atoms for the extensional relations
// it can read. Unknown predicates are ignored: they are either IDB or
// will be rejected by the engine itself.
func SignatureOf(p *datalog.Program) Signature {
	var s Signature
	see := func(a datalog.Atom) {
		switch a.Pred {
		case PredChild:
			s.Child = true
		case PredLastChild:
			s.LastChild = true
		case PredFirstSibling:
			s.FirstSibling = true
		case PredDom:
			s.Dom = true
		default:
			if k, ok := IsChildKPred(a.Pred); ok && k > s.ChildK {
				s.ChildK = k
			}
		}
	}
	for _, r := range p.Rules {
		see(r.Head)
		for _, b := range r.Body {
			see(b)
		}
	}
	return s
}

// Options converts the signature into TreeDB options.
func (s Signature) Options() []TreeDBOption {
	var opts []TreeDBOption
	if s.Child {
		opts = append(opts, WithChild())
	}
	if s.LastChild {
		opts = append(opts, WithLastChild())
	}
	if s.FirstSibling {
		opts = append(opts, WithFirstSibling())
	}
	if s.Dom {
		opts = append(opts, WithDom())
	}
	if s.ChildK > 0 {
		opts = append(opts, WithChildK(s.ChildK))
	}
	return opts
}

// TreeDB materializes the τ_ur extension the signature requires.
func (s Signature) TreeDB(t *tree.Tree) *datalog.Database {
	return TreeDB(t, s.Options()...)
}

// TreeCache memoizes per-document evaluation state — the navigation
// arrays of the linear engine and the materialized TreeDB per
// Signature — so a compiled query (or many queries sharing one cache)
// pays the O(|dom|) materialization once per (tree, signature) instead
// of once per call.
//
// Entries are keyed by (tree identity, generation): every mutation —
// pointer-level edits followed by Reindex, or the arena mutation API —
// advances tree.Tree.Generation, so post-mutation lookups can never be
// served a pre-mutation memo; the stale entry simply becomes
// unreachable and ages out under MaxTrees (or is dropped by Forget).
// The cached databases are shared: callers must treat them as
// read-only (the generic engines do: they Clone before writing).
//
// A TreeCache is safe for concurrent use. The zero value is NOT ready;
// use NewTreeCache.
type TreeCache struct {
	mu      sync.Mutex
	entries map[treeKey]*treeCacheEntry

	// MaxTrees bounds the number of retained entries — one per (tree,
	// generation) pair (0 = unbounded). When full, inserting a new one
	// evicts an arbitrary old entry — the cache targets "same document
	// queried many times", not LRU-precise scan workloads.
	MaxTrees int

	// MaxResults bounds the per-tree result memo: how many distinct
	// (query, tree) results one entry retains (≤ 0 = unbounded). Many
	// compiled queries sharing one cache otherwise grow every entry
	// without bound. NewTreeCache sets DefaultMaxResults; override
	// before first use.
	MaxResults int

	hits, misses, resultEvictions int64
}

// DefaultMaxResults is the per-tree result-memo bound NewTreeCache
// installs: ample for realistic query fleets sharing a cache, small
// enough that a tree entry cannot grow without bound.
const DefaultMaxResults = 64

// CacheStats is a point-in-time snapshot of a TreeCache's contents and
// traffic.
type CacheStats struct {
	// Trees is the number of documents with cached state.
	Trees int
	// Results is the total number of memoized (query, tree) results
	// across all entries.
	Results int
	// Hits and Misses count Nav/DB lookups served from memo vs
	// materialized (as HitsMisses reports).
	Hits, Misses int64
	// ResultEvictions counts memoized results dropped to enforce
	// MaxResults.
	ResultEvictions int64
}

// treeKey identifies one generation of one document: the staleness
// guard that makes mutation safe against every memo layer at once.
type treeKey struct {
	t   *tree.Tree
	gen uint64
}

func keyOf(t *tree.Tree) treeKey { return treeKey{t: t, gen: t.Generation()} }

type treeCacheEntry struct {
	mu      sync.Mutex
	nav     *Nav
	dbs     map[Signature]*datalog.Database
	results map[any]*datalog.Database
}

// NewTreeCache builds an empty cache; maxTrees ≤ 0 means unbounded.
// The per-tree result memo starts bounded at DefaultMaxResults; set
// MaxResults before first use to change it.
func NewTreeCache(maxTrees int) *TreeCache {
	return &TreeCache{
		entries:    map[treeKey]*treeCacheEntry{},
		MaxTrees:   maxTrees,
		MaxResults: DefaultMaxResults,
	}
}

func (c *TreeCache) entry(t *tree.Tree) *treeCacheEntry {
	key := keyOf(t)
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		if c.MaxTrees > 0 && len(c.entries) >= c.MaxTrees {
			for k := range c.entries {
				delete(c.entries, k)
				break
			}
		}
		e = &treeCacheEntry{dbs: map[Signature]*datalog.Database{}}
		c.entries[key] = e
	}
	return e
}

func (c *TreeCache) count(hit bool) {
	c.mu.Lock()
	if hit {
		c.hits++
	} else {
		c.misses++
	}
	c.mu.Unlock()
}

// Nav returns the memoized navigation arrays for t.
func (c *TreeCache) Nav(t *tree.Tree) *Nav {
	nav, _ := c.NavCached(t)
	return nav
}

// NavCached is Nav also reporting whether the arrays were already
// built (a true cache hit, as opposed to a first materialization).
func (c *TreeCache) NavCached(t *tree.Tree) (*Nav, bool) {
	e := c.entry(t)
	e.mu.Lock()
	defer e.mu.Unlock()
	hit := e.nav != nil
	if !hit {
		e.nav = NewNav(t)
	}
	c.count(hit)
	return e.nav, hit
}

// DB returns the memoized TreeDB of t for the signature, materializing
// it on first use. The returned database is shared and must be treated
// as read-only.
func (c *TreeCache) DB(t *tree.Tree, sig Signature) *datalog.Database {
	db, _ := c.DBCached(t, sig)
	return db
}

// DBCached is DB also reporting whether the database for this exact
// signature was already materialized.
func (c *TreeCache) DBCached(t *tree.Tree, sig Signature) (*datalog.Database, bool) {
	e := c.entry(t)
	e.mu.Lock()
	defer e.mu.Unlock()
	db, hit := e.dbs[sig]
	if !hit {
		db = sig.TreeDB(t)
		e.dbs[sig] = db
	}
	c.count(hit)
	return db, hit
}

// peek returns t's current-generation entry without creating one (and
// without touching the hit/miss counters).
func (c *TreeCache) peek(t *tree.Tree) *treeCacheEntry {
	key := keyOf(t)
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.entries[key]
}

// Result returns the memoized evaluation result for (t, key), if any.
// key identifies the computation — typically the compiled query or
// plan pointer — so distinct queries sharing one cache never collide.
// The returned database is shared and must be treated as read-only.
func (c *TreeCache) Result(t *tree.Tree, key any) (*datalog.Database, bool) {
	e := c.peek(t)
	if e == nil {
		return nil, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	db, ok := e.results[key]
	return db, ok
}

// SetResult memoizes an evaluation result for (t, key). Results live
// exactly as long as the tree's cache entry: Forget, Purge, or an
// eviction drops them together with the materialized state. When the
// entry already holds MaxResults results for other keys, an arbitrary
// one is evicted first (same policy as MaxTrees).
func (c *TreeCache) SetResult(t *tree.Tree, key any, db *datalog.Database) {
	maxResults := c.maxResults()
	e := c.entry(t)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.results == nil {
		e.results = map[any]*datalog.Database{}
	}
	if maxResults > 0 && len(e.results) >= maxResults {
		if _, present := e.results[key]; !present {
			for k := range e.results {
				delete(e.results, k)
				break
			}
			c.mu.Lock()
			c.resultEvictions++
			c.mu.Unlock()
		}
	}
	e.results[key] = db
}

func (c *TreeCache) maxResults() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.MaxResults
}

// Contains reports whether t already has cached state (navigation
// arrays or databases) at its current generation. Purely advisory: a
// concurrent Forget or eviction can invalidate the answer immediately.
func (c *TreeCache) Contains(t *tree.Tree) bool {
	key := keyOf(t)
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// Forget drops all cached state for t, across every generation — the
// release hook for closing document sessions (superseded-generation
// entries would otherwise linger until evicted).
func (c *TreeCache) Forget(t *tree.Tree) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k := range c.entries {
		if k.t == t {
			delete(c.entries, k)
		}
	}
}

// Purge empties the cache.
func (c *TreeCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[treeKey]*treeCacheEntry{}
}

// Len returns the number of (tree, generation) entries with cached
// state.
func (c *TreeCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// HitsMisses reports how many Nav/DB lookups were served from memo
// (hits) vs had to materialize (misses). Result-memo lookups are not
// counted here; CompiledQuery.Stats tracks those.
func (c *TreeCache) HitsMisses() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Stats snapshots the cache contents and traffic, including the total
// number of memoized per-(query, tree) results — the figure MaxResults
// bounds per entry. Entries are visited outside the cache lock, so a
// concurrent writer can skew the totals slightly; the snapshot is
// advisory, like Contains.
func (c *TreeCache) Stats() CacheStats {
	c.mu.Lock()
	s := CacheStats{
		Trees:           len(c.entries),
		Hits:            c.hits,
		Misses:          c.misses,
		ResultEvictions: c.resultEvictions,
	}
	es := make([]*treeCacheEntry, 0, len(c.entries))
	for _, e := range c.entries {
		es = append(es, e)
	}
	c.mu.Unlock()
	for _, e := range es {
		e.mu.Lock()
		s.Results += len(e.results)
		e.mu.Unlock()
	}
	return s
}
