package eval

import (
	"fmt"

	"mdlog/internal/datalog"
	"mdlog/internal/horn"
)

// This file implements the efficiently evaluable datalog fragments of
// Section 3.2:
//
//   - GroundEval (Proposition 3.5): ground programs in O(|P| + |σ|) via
//     propositional Horn inference;
//   - GuardedEval (Proposition 3.6): programs in which every non-ground
//     rule has an extensional guard containing all rule variables, in
//     O(|P| · |σ|);
//   - LITEval (Proposition 3.7): monadic Datalog LIT — every rule body
//     either consists solely of monadic atoms or contains an extensional
//     guard — in O(|P| · |σ|).

// atomInterner numbers ground atoms densely for the Horn solver.
type atomInterner struct {
	ids  map[string]int
	back []datalog.Atom
}

func newAtomInterner() *atomInterner { return &atomInterner{ids: map[string]int{}} }

func (in *atomInterner) id(pred string, args []int) int {
	key := pred
	for _, a := range args {
		key += "," + itoa(a)
	}
	if id, ok := in.ids[key]; ok {
		return id
	}
	id := len(in.back)
	in.ids[key] = id
	terms := make([]datalog.Term, len(args))
	for i, a := range args {
		terms[i] = datalog.C(a)
	}
	in.back = append(in.back, datalog.Atom{Pred: pred, Args: terms})
	return id
}

// GroundEval evaluates a ground (variable-free) program against a
// database in time O(|P| + |σ|) (Proposition 3.5). The result contains
// only intensional relations.
func GroundEval(p *datalog.Program, db *datalog.Database) (*datalog.Database, error) {
	in := newAtomInterner()
	var solver horn.Solver
	argsOf := func(a datalog.Atom) ([]int, error) {
		args := make([]int, len(a.Args))
		for i, t := range a.Args {
			if t.IsVar() {
				return nil, fmt.Errorf("eval: program is not ground: %s", a)
			}
			args[i] = t.Const
		}
		return args, nil
	}
	for _, r := range p.Rules {
		h, err := argsOf(r.Head)
		if err != nil {
			return nil, err
		}
		body := make([]int, 0, len(r.Body))
		for _, b := range r.Body {
			args, err := argsOf(b)
			if err != nil {
				return nil, err
			}
			// Body atoms already true in the database are resolved
			// immediately; the rest become Horn literals (if such an atom
			// is never derived, the clause simply never fires).
			if db.Has(b.Pred, args...) {
				continue
			}
			body = append(body, in.id(b.Pred, args))
		}
		solver.AddClause(in.id(r.Head.Pred, h), body...)
	}
	return hornToDB(&solver, in, p, db.Dom)
}

// hornToDB runs the solver and converts true intensional atoms back to
// relations.
func hornToDB(solver *horn.Solver, in *atomInterner, p *datalog.Program, dom int) (*datalog.Database, error) {
	idb := map[string]bool{}
	for _, r := range p.Rules {
		idb[r.Head.Pred] = true
	}
	truth := solver.Solve(len(in.back))
	out := datalog.NewDatabase(dom)
	for id, a := range in.back {
		if id < len(truth) && truth[id] && idb[a.Pred] {
			args := make([]int, len(a.Args))
			for i, t := range a.Args {
				args[i] = t.Const
			}
			out.Rel(a.Pred, len(args)).Add(args)
		}
	}
	return out, nil
}

// GuardedEval evaluates a program in which every rule with variables is
// guarded by an extensional atom containing all variables of the rule
// (Proposition 3.6): each guard tuple yields one ground rule, so the
// ground program has size O(|P| · |σ|) and is solved by GroundEval's
// machinery. Intensional predicates may have any arity.
func GuardedEval(p *datalog.Program, db *datalog.Database) (*datalog.Database, error) {
	if err := p.Check(); err != nil {
		return nil, err
	}
	idb := map[string]bool{}
	for _, r := range p.Rules {
		idb[r.Head.Pred] = true
	}
	in := newAtomInterner()
	var solver horn.Solver
	for _, r := range p.Rules {
		if err := groundGuarded(r, db, idb, in, &solver); err != nil {
			return nil, err
		}
	}
	return hornToDB(&solver, in, p, db.Dom)
}

// findGuard returns the index of an extensional body atom containing
// all variables of r, or -1.
func findGuard(r datalog.Rule, idb map[string]bool) int {
	vars := map[string]bool{}
	for _, v := range r.Vars() {
		vars[v] = true
	}
	for i, b := range r.Body {
		if idb[b.Pred] {
			continue
		}
		have := map[string]bool{}
		for _, t := range b.Args {
			if t.IsVar() {
				have[t.Var] = true
			}
		}
		if len(have) == len(vars) {
			return i
		}
	}
	return -1
}

func groundGuarded(r datalog.Rule, db *datalog.Database, idb map[string]bool,
	in *atomInterner, solver *horn.Solver) error {
	if r.IsGround() {
		return addGroundRule(r, db, idb, in, solver)
	}
	gi := findGuard(r, idb)
	if gi == -1 {
		return fmt.Errorf("eval: rule has no extensional guard: %s", r)
	}
	guard := r.Body[gi]
	rel := db.RelOrNil(guard.Pred)
	if rel == nil {
		return nil // empty guard relation: rule never fires
	}
	for _, tuple := range rel.Tuples() {
		if len(tuple) != len(guard.Args) {
			continue
		}
		binding := map[string]int{}
		ok := true
		for i, t := range guard.Args {
			if t.IsVar() {
				if prev, bound := binding[t.Var]; bound && prev != tuple[i] {
					ok = false
					break
				}
				binding[t.Var] = tuple[i]
			} else if t.Const != tuple[i] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		gr, err := substitute(r, binding)
		if err != nil {
			return err
		}
		if err := addGroundRule(gr, db, idb, in, solver); err != nil {
			return err
		}
	}
	return nil
}

// substitute applies a total variable binding to a rule.
func substitute(r datalog.Rule, binding map[string]int) (datalog.Rule, error) {
	sub := func(a datalog.Atom) (datalog.Atom, error) {
		out := datalog.Atom{Pred: a.Pred, Args: make([]datalog.Term, len(a.Args))}
		for i, t := range a.Args {
			if t.IsVar() {
				v, ok := binding[t.Var]
				if !ok {
					return out, fmt.Errorf("eval: variable %s not bound by guard in %s", t.Var, r)
				}
				out.Args[i] = datalog.C(v)
			} else {
				out.Args[i] = t
			}
		}
		return out, nil
	}
	var err error
	out := datalog.Rule{}
	if out.Head, err = sub(r.Head); err != nil {
		return out, err
	}
	out.Body = make([]datalog.Atom, len(r.Body))
	for i, b := range r.Body {
		if out.Body[i], err = sub(b); err != nil {
			return out, err
		}
	}
	return out, nil
}

// addGroundRule converts a ground rule to a Horn clause, resolving
// extensional atoms against the database.
func addGroundRule(r datalog.Rule, db *datalog.Database, idb map[string]bool,
	in *atomInterner, solver *horn.Solver) error {
	head := make([]int, len(r.Head.Args))
	for i, t := range r.Head.Args {
		head[i] = t.Const
	}
	var body []int
	for _, b := range r.Body {
		args := make([]int, len(b.Args))
		for i, t := range b.Args {
			args[i] = t.Const
		}
		if idb[b.Pred] {
			body = append(body, in.id(b.Pred, args))
			continue
		}
		if !db.Has(b.Pred, args...) {
			return nil // extensional atom false: drop the ground rule
		}
	}
	solver.AddClause(in.id(r.Head.Pred, head), body...)
	return nil
}

// LITEval evaluates a monadic Datalog LIT program (Proposition 3.7):
// every rule body either (i) consists exclusively of monadic atoms or
// (ii) contains an extensional guard in which all rule variables occur.
// Case (ii) rules are grounded per guard tuple; case (i) rules are
// grounded in O(|dom|) per variable after connected splitting (each
// variable of an all-monadic body is independent). Heads must be
// monadic.
func LITEval(p *datalog.Program, db *datalog.Database) (*datalog.Database, error) {
	if err := p.Check(); err != nil {
		return nil, err
	}
	if !p.IsMonadic() {
		return nil, fmt.Errorf("eval: LIT engine requires a monadic program")
	}
	sp := SplitConnected(p)
	idb := map[string]bool{}
	for _, r := range sp.Rules {
		idb[r.Head.Pred] = true
	}
	in := newAtomInterner()
	var solver horn.Solver
	for _, r := range sp.Rules {
		if allMonadic(r) {
			if err := groundAllMonadic(r, db, idb, in, &solver); err != nil {
				return nil, err
			}
			continue
		}
		if err := groundGuarded(r, db, idb, in, &solver); err != nil {
			return nil, fmt.Errorf("eval: rule is neither all-monadic nor guarded (not in Datalog LIT): %s", r)
		}
	}
	return hornToDB(&solver, in, sp, db.Dom)
}

func allMonadic(r datalog.Rule) bool {
	for _, b := range r.Body {
		if len(b.Args) > 1 {
			return false
		}
	}
	return true
}

// groundAllMonadic grounds a connected rule whose body atoms are all
// monadic. After SplitConnected such a rule has at most one variable.
func groundAllMonadic(r datalog.Rule, db *datalog.Database, idb map[string]bool,
	in *atomInterner, solver *horn.Solver) error {
	vars := r.Vars()
	switch len(vars) {
	case 0:
		return addGroundRule(r, db, idb, in, solver)
	case 1:
		for v := 0; v < db.Dom; v++ {
			gr, err := substitute(r, map[string]int{vars[0]: v})
			if err != nil {
				return err
			}
			if err := addGroundRule(gr, db, idb, in, solver); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("eval: all-monadic rule still has %d variables after splitting: %s", len(vars), r)
	}
}
