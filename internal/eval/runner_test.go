package eval

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"mdlog/internal/datalog"
	"mdlog/internal/tree"
)

func TestPlanMatchesLinearTree(t *testing.T) {
	p := datalog.MustParseProgram(`
even(X) :- leaf(X).
odd(X)  :- firstchild(X,Y), even(Y), lastsibling(Y).
?- even.
`)
	pl, err := NewPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10; i++ {
		tr := tree.Random(rng, tree.RandomOptions{Labels: []string{"a", "b"}, Size: 30 + i*17, MaxChildren: 4})
		want, err := LinearTree(p, tr)
		if err != nil {
			t.Fatal(err)
		}
		got, err := pl.Run(NewNav(tr))
		if err != nil {
			t.Fatal(err)
		}
		if d := SameResults(want, got, p.IntensionalPreds()); d != "" {
			t.Fatalf("tree %d: plan differs from LinearTree: %s", i, d)
		}
	}
}

func TestPlanRejectsBadPrograms(t *testing.T) {
	if _, err := NewPlan(datalog.MustParseProgram(`q(X) :- child(X,Y), label_a(Y).`)); err == nil {
		t.Error("child/2 must be rejected by the linear plan")
	}
	if _, err := NewPlan(datalog.MustParseProgram(`e(X,Y) :- firstchild(X,Y).`)); err == nil {
		t.Error("non-monadic program must be rejected")
	}
}

func TestSignatureOf(t *testing.T) {
	p := datalog.MustParseProgram(`
q(X) :- child(X,Y), label_a(Y), dom(X).
r(X) :- child_3(Y,X), lastchild(Y,X).
`)
	sig := SignatureOf(p)
	want := Signature{Child: true, LastChild: true, Dom: true, ChildK: 3}
	if sig != want {
		t.Errorf("SignatureOf = %+v, want %+v", sig, want)
	}
	if len(Signature{}.Options()) != 0 {
		t.Error("empty signature should need no options")
	}
}

func TestTreeCache(t *testing.T) {
	tr := tree.MustParse("a(b,c(d))")
	c := NewTreeCache(0)
	n1, n2 := c.Nav(tr), c.Nav(tr)
	if n1 != n2 {
		t.Error("Nav not memoized")
	}
	sig := Signature{Child: true}
	d1, d2 := c.DB(tr, sig), c.DB(tr, sig)
	if d1 != d2 {
		t.Error("DB not memoized per signature")
	}
	if d3 := c.DB(tr, Signature{Dom: true}); d3 == d1 {
		t.Error("distinct signatures must not share a database")
	}
	if !c.Contains(tr) || c.Len() != 1 {
		t.Error("cache bookkeeping wrong")
	}
	c.Forget(tr)
	if c.Contains(tr) {
		t.Error("Forget did not drop the entry")
	}

	// Bounded cache evicts.
	b := NewTreeCache(2)
	for i := 0; i < 5; i++ {
		b.Nav(tree.MustParse("a(b)"))
	}
	if b.Len() > 2 {
		t.Errorf("bounded cache holds %d entries", b.Len())
	}
}

func TestTreeCacheConcurrent(t *testing.T) {
	tr := tree.MustParse("a(b(c),d,e(f(g)))")
	c := NewTreeCache(0)
	var wg sync.WaitGroup
	navs := make([]*Nav, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			navs[i] = c.Nav(tr)
			c.DB(tr, Signature{Child: true})
		}(i)
	}
	wg.Wait()
	for i := 1; i < 32; i++ {
		if navs[i] != navs[0] {
			t.Fatal("concurrent Nav returned distinct values")
		}
	}
}

func TestMapAllOrderAndErrors(t *testing.T) {
	docs := make([]*tree.Tree, 20)
	for i := range docs {
		docs[i] = tree.MustParse("a(b)")
	}
	boom := errors.New("boom")
	res := MapAll(context.Background(), Runner{Workers: 4}, docs,
		func(_ context.Context, d *tree.Tree) (int, error) {
			return d.Size(), nil
		})
	for i, r := range res {
		if r.Index != i || r.Err != nil || r.Value != 2 {
			t.Fatalf("result %d = %+v", i, r)
		}
	}
	resE := MapAll(context.Background(), Runner{Workers: 4}, docs,
		func(_ context.Context, _ *tree.Tree) (int, error) { return 0, boom })
	for _, r := range resE {
		if !errors.Is(r.Err, boom) {
			t.Fatalf("error not propagated: %+v", r)
		}
	}
}

func TestMapStreamOrderAndCancel(t *testing.T) {
	in := make(chan *tree.Tree)
	go func() {
		defer close(in)
		for i := 0; i < 30; i++ {
			in <- tree.MustParse(fmt.Sprintf("a(%s)", label(i)))
		}
	}()
	i := 0
	for r := range MapStream(context.Background(), Runner{Workers: 5}, in,
		func(_ context.Context, d *tree.Tree) (string, error) {
			return d.Nodes[1].Label, nil
		}) {
		if r.Index != i {
			t.Fatalf("stream out of order: got index %d at position %d", r.Index, i)
		}
		if r.Err != nil || r.Value != label(i) {
			t.Fatalf("result %d = %+v", i, r)
		}
		i++
	}
	if i != 30 {
		t.Fatalf("yielded %d of 30", i)
	}

	// Cancellation: the output must close even when the producer
	// abandons the input channel without closing it (the documented
	// select-on-ctx producer pattern).
	ctx, cancel := context.WithCancel(context.Background())
	in2 := make(chan *tree.Tree)
	go func() {
		// Never closes in2.
		for i := 0; i < 100; i++ {
			select {
			case in2 <- tree.MustParse("a"):
			case <-ctx.Done():
				return
			}
		}
	}()
	out := MapStream(ctx, Runner{Workers: 2}, in2,
		func(ctx context.Context, _ *tree.Tree) (int, error) {
			cancel()
			return 0, ctx.Err()
		})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range out {
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("stream did not close after cancellation")
	}
}

func label(i int) string { return string(rune('a' + i%26)) }
