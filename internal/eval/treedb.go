// Package eval implements the evaluation algorithms of Gottlob & Koch
// (PODS 2002) for (monadic) datalog:
//
//   - the linear-time combined-complexity engine for monadic datalog
//     over τ_rk / τ_ur (Theorem 4.2): connected-rule splitting, grounding
//     driven by the functional dependencies of Proposition 4.1, and
//     propositional Horn inference (Proposition 3.5);
//   - the O(|P|·|σ|) engine for extensionally guarded programs
//     (Proposition 3.6);
//   - the O(|P|·|σ|) engine for monadic Datalog LIT (Proposition 3.7);
//   - ground program evaluation in O(|P|+|σ|) (Proposition 3.5);
//   - generic naive/semi-naive evaluation (re-exported baselines).
//
// It also converts trees into the relational structures τ_ur and τ_rk
// of Section 2.
package eval

import (
	"strings"

	"mdlog/internal/datalog"
	"mdlog/internal/tree"
)

// LabelPred returns the predicate name used for label_a relations.
func LabelPred(label string) string { return "label_" + label }

// IsLabelPred reports whether the predicate is a label predicate and,
// if so, returns the label.
func IsLabelPred(pred string) (string, bool) {
	if strings.HasPrefix(pred, "label_") {
		return pred[len("label_"):], true
	}
	return "", false
}

// Names of the relations of τ_ur and its extensions.
const (
	PredRoot         = "root"
	PredLeaf         = "leaf"
	PredLastSibling  = "lastsibling"
	PredFirstSibling = "firstsibling"
	PredFirstChild   = "firstchild"
	PredNextSibling  = "nextsibling"
	PredChild        = "child"
	PredLastChild    = "lastchild"
	PredDom          = "dom"
)

// ChildKPred returns the predicate name of the child_k relation of τ_rk.
func ChildKPred(k int) string {
	// child_1, child_2, ...
	return "child_" + itoa(k)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// IsChildKPred reports whether pred is child_k, returning k.
func IsChildKPred(pred string) (int, bool) {
	if !strings.HasPrefix(pred, "child_") {
		return 0, false
	}
	s := pred[len("child_"):]
	if s == "" {
		return 0, false
	}
	k := 0
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, false
		}
		k = k*10 + int(s[i]-'0')
	}
	return k, k >= 1
}

// TreeDBOption configures TreeDB.
type TreeDBOption func(*treeDBConfig)

type treeDBConfig struct {
	child, lastChild, firstSibling, dom bool
	childK                              int
}

// WithChild adds the natural child/2 relation (not part of τ_ur; see
// Theorem 5.2 for its elimination).
func WithChild() TreeDBOption { return func(c *treeDBConfig) { c.child = true } }

// WithLastChild adds the lastchild/2 relation.
func WithLastChild() TreeDBOption { return func(c *treeDBConfig) { c.lastChild = true } }

// WithFirstSibling adds the firstsibling/1 relation used by Elog⁻.
func WithFirstSibling() TreeDBOption { return func(c *treeDBConfig) { c.firstSibling = true } }

// WithDom adds the trivially-true dom/1 relation over all nodes.
func WithDom() TreeDBOption { return func(c *treeDBConfig) { c.dom = true } }

// WithChildK adds the ranked child_1 ... child_k relations of τ_rk.
func WithChildK(k int) TreeDBOption { return func(c *treeDBConfig) { c.childK = k } }

// TreeDB materializes the relational structure τ_ur (optionally
// extended) of the given tree as a datalog database, for use with the
// generic evaluators. The specialized engines work on the tree
// directly and do not need this.
func TreeDB(t *tree.Tree, opts ...TreeDBOption) *datalog.Database {
	var cfg treeDBConfig
	for _, o := range opts {
		o(&cfg)
	}
	db := datalog.NewDatabase(t.Size())
	for _, n := range t.Nodes {
		db.Add(LabelPred(n.Label), n.ID)
		if n.IsRoot() {
			db.Add(PredRoot, n.ID)
		}
		if n.IsLeaf() {
			db.Add(PredLeaf, n.ID)
		}
		if n.IsLastSibling() {
			db.Add(PredLastSibling, n.ID)
		}
		if cfg.firstSibling && n.IsFirstSibling() {
			db.Add(PredFirstSibling, n.ID)
		}
		if fc := n.FirstChild(); fc != nil {
			db.Add(PredFirstChild, n.ID, fc.ID)
		}
		if ns := n.NextSibling(); ns != nil {
			db.Add(PredNextSibling, n.ID, ns.ID)
		}
		if cfg.child {
			for _, c := range n.Children {
				db.Add(PredChild, n.ID, c.ID)
			}
		}
		if cfg.lastChild {
			if lc := n.LastChild(); lc != nil {
				db.Add(PredLastChild, n.ID, lc.ID)
			}
		}
		for k := 1; k <= cfg.childK && k <= len(n.Children); k++ {
			db.Add(ChildKPred(k), n.ID, n.Children[k-1].ID)
		}
		if cfg.dom {
			db.Add(PredDom, n.ID)
		}
	}
	return db
}

// Nav holds O(1) navigation arrays for a tree, the representation on
// which the linear-time engine realizes the functional dependencies of
// Proposition 4.1 ("appropriately represented" trees, Theorem 4.2).
type Nav struct {
	Tree *tree.Tree
	// fc, ns, parent, prev, lastChild map node id → node id or -1.
	FC, NS, Parent, Prev, LastChild []int
	// ChildIdx is the 0-based position of a node among its siblings.
	ChildIdx []int
	Labels   []string
}

// NewNav builds the navigation arrays in O(|dom|).
func NewNav(t *tree.Tree) *Nav {
	n := t.Size()
	nav := &Nav{
		Tree:      t,
		FC:        make([]int, n),
		NS:        make([]int, n),
		Parent:    make([]int, n),
		Prev:      make([]int, n),
		LastChild: make([]int, n),
		ChildIdx:  make([]int, n),
		Labels:    make([]string, n),
	}
	for i := range nav.FC {
		nav.FC[i], nav.NS[i], nav.Parent[i], nav.Prev[i], nav.LastChild[i] = -1, -1, -1, -1, -1
	}
	for _, nd := range t.Nodes {
		nav.Labels[nd.ID] = nd.Label
		if len(nd.Children) > 0 {
			nav.FC[nd.ID] = nd.Children[0].ID
			nav.LastChild[nd.ID] = nd.Children[len(nd.Children)-1].ID
		}
		for i, c := range nd.Children {
			nav.Parent[c.ID] = nd.ID
			nav.ChildIdx[c.ID] = i
			if i > 0 {
				nav.Prev[c.ID] = nd.Children[i-1].ID
			}
			if i+1 < len(nd.Children) {
				nav.NS[c.ID] = nd.Children[i+1].ID
			}
		}
	}
	return nav
}

// ChildK returns the k-th (1-based) child of v, or -1.
func (nav *Nav) ChildK(v, k int) int {
	nd := nav.Tree.Nodes[v]
	if k < 1 || k > len(nd.Children) {
		return -1
	}
	return nd.Children[k-1].ID
}

// IsUnaryEDB reports whether pred names a unary extensional relation
// of τ_ur or one of its extensions (root, leaf, lastsibling,
// firstsibling, dom, label_a). The classification depends only on the
// predicate name, so rule compilation can happen before any tree is
// seen.
func IsUnaryEDB(pred string) bool {
	switch pred {
	case PredRoot, PredLeaf, PredLastSibling, PredFirstSibling, PredDom:
		return true
	}
	_, isLabel := IsLabelPred(pred)
	return isLabel
}

// unaryHolds evaluates the extensional unary predicates of τ_ur and
// its extensions on node v; ok=false if pred is not a known unary EDB
// predicate.
func (nav *Nav) unaryHolds(pred string, v int) (holds, ok bool) {
	switch pred {
	case PredRoot:
		return nav.Parent[v] == -1, true
	case PredLeaf:
		return nav.FC[v] == -1, true
	case PredLastSibling:
		return nav.NS[v] == -1 && nav.Parent[v] != -1, true
	case PredFirstSibling:
		return nav.Prev[v] == -1 && nav.Parent[v] != -1, true
	case PredDom:
		return true, true
	}
	if label, isLabel := IsLabelPred(pred); isLabel {
		return nav.Labels[v] == label, true
	}
	return false, false
}
