// Package eval implements the evaluation algorithms of Gottlob & Koch
// (PODS 2002) for (monadic) datalog:
//
//   - the linear-time combined-complexity engine for monadic datalog
//     over τ_rk / τ_ur (Theorem 4.2): connected-rule splitting, grounding
//     driven by the functional dependencies of Proposition 4.1, and
//     propositional Horn inference (Proposition 3.5);
//   - the O(|P|·|σ|) engine for extensionally guarded programs
//     (Proposition 3.6);
//   - the O(|P|·|σ|) engine for monadic Datalog LIT (Proposition 3.7);
//   - ground program evaluation in O(|P|+|σ|) (Proposition 3.5);
//   - generic naive/semi-naive evaluation (re-exported baselines).
//
// It also converts trees into the relational structures τ_ur and τ_rk
// of Section 2.
package eval

import (
	"strings"

	"mdlog/internal/datalog"
	"mdlog/internal/tree"
)

// LabelPred returns the predicate name used for label_a relations.
func LabelPred(label string) string { return "label_" + label }

// IsLabelPred reports whether the predicate is a label predicate and,
// if so, returns the label.
func IsLabelPred(pred string) (string, bool) {
	if strings.HasPrefix(pred, "label_") {
		return pred[len("label_"):], true
	}
	return "", false
}

// Names of the relations of τ_ur and its extensions.
const (
	PredRoot         = "root"
	PredLeaf         = "leaf"
	PredLastSibling  = "lastsibling"
	PredFirstSibling = "firstsibling"
	PredFirstChild   = "firstchild"
	PredNextSibling  = "nextsibling"
	PredChild        = "child"
	PredLastChild    = "lastchild"
	PredDom          = "dom"
)

// ChildKPred returns the predicate name of the child_k relation of τ_rk.
func ChildKPred(k int) string {
	// child_1, child_2, ...
	return "child_" + itoa(k)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// IsChildKPred reports whether pred is child_k, returning k.
func IsChildKPred(pred string) (int, bool) {
	if !strings.HasPrefix(pred, "child_") {
		return 0, false
	}
	s := pred[len("child_"):]
	if s == "" {
		return 0, false
	}
	k := 0
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, false
		}
		k = k*10 + int(s[i]-'0')
	}
	return k, k >= 1
}

// TreeDBOption configures TreeDB.
type TreeDBOption func(*treeDBConfig)

type treeDBConfig struct {
	child, lastChild, firstSibling, dom bool
	childK                              int
}

// WithChild adds the natural child/2 relation (not part of τ_ur; see
// Theorem 5.2 for its elimination).
func WithChild() TreeDBOption { return func(c *treeDBConfig) { c.child = true } }

// WithLastChild adds the lastchild/2 relation.
func WithLastChild() TreeDBOption { return func(c *treeDBConfig) { c.lastChild = true } }

// WithFirstSibling adds the firstsibling/1 relation used by Elog⁻.
func WithFirstSibling() TreeDBOption { return func(c *treeDBConfig) { c.firstSibling = true } }

// WithDom adds the trivially-true dom/1 relation over all nodes.
func WithDom() TreeDBOption { return func(c *treeDBConfig) { c.dom = true } }

// WithChildK adds the ranked child_1 ... child_k relations of τ_rk.
func WithChildK(k int) TreeDBOption { return func(c *treeDBConfig) { c.childK = k } }

// TreeDB materializes the relational structure τ_ur (optionally
// extended) of the given tree as a datalog database, for use with the
// generic evaluators. The specialized engines work on the tree
// directly and do not need this. It iterates the tree's arena columns,
// so materialization is O(|dom|) even on very wide nodes (the pointer
// API's sibling scan made it quadratic there).
func TreeDB(t *tree.Tree, opts ...TreeDBOption) *datalog.Database {
	var cfg treeDBConfig
	for _, o := range opts {
		o(&cfg)
	}
	a := t.Arena()
	n := a.Len()
	db := datalog.NewDatabase(n)
	// Pre-resolve every relation handle; facts are unique by
	// construction, so they bulk-load without membership hashing.
	// Label relations materialize on first occurrence — the symbol
	// table may hold pre-interned labels the document never uses.
	labelRels := make([]*datalog.Relation, a.Syms.Len())
	labelRel := func(sym int32) *datalog.Relation {
		rel := labelRels[sym]
		if rel == nil {
			rel = db.Rel(LabelPred(a.Syms.Name(sym)), 1)
			labelRels[sym] = rel
		}
		return rel
	}
	relRoot := db.Rel(PredRoot, 1)
	relLeaf := db.Rel(PredLeaf, 1)
	relLast := db.Rel(PredLastSibling, 1)
	relFC := db.Rel(PredFirstChild, 2)
	relNS := db.Rel(PredNextSibling, 2)
	var relFirst, relDom, relChild, relLastChild *datalog.Relation
	if cfg.firstSibling {
		relFirst = db.Rel(PredFirstSibling, 1)
	}
	if cfg.dom {
		relDom = db.Rel(PredDom, 1)
	}
	if cfg.child {
		relChild = db.Rel(PredChild, 2)
	}
	if cfg.lastChild {
		relLastChild = db.Rel(PredLastChild, 2)
	}
	childKRels := make([]*datalog.Relation, cfg.childK)
	for k := range childKRels {
		childKRels[k] = db.Rel(ChildKPred(k+1), 2)
	}
	// Tuples are carved from growing slabs: previously returned
	// sub-slices stay valid when the slab reallocates.
	var slab1, slab2 []int
	unary := func(v int) []int {
		slab1 = append(slab1, v)
		return slab1[len(slab1)-1 : len(slab1) : len(slab1)]
	}
	binary := func(v, w int) []int {
		slab2 = append(slab2, v, w)
		return slab2[len(slab2)-2 : len(slab2) : len(slab2)]
	}
	for v := 0; v < n; v++ {
		// Tombstoned rows of a mutated arena carry no facts: the
		// document is its live nodes. Live columns never reference dead
		// nodes, so every emitted tuple stays within the live set.
		if !a.Alive(int32(v)) {
			continue
		}
		labelRel(a.Label[v]).AddUnchecked(unary(v))
		if a.Parent[v] == tree.NoNode {
			relRoot.AddUnchecked(unary(v))
		} else if a.NextSibling[v] == tree.NoNode {
			relLast.AddUnchecked(unary(v))
		}
		if a.FirstChild[v] == tree.NoNode {
			relLeaf.AddUnchecked(unary(v))
		} else {
			relFC.AddUnchecked(binary(v, int(a.FirstChild[v])))
		}
		if ns := a.NextSibling[v]; ns != tree.NoNode {
			relNS.AddUnchecked(binary(v, int(ns)))
		}
		if relFirst != nil && a.PrevSibling[v] == tree.NoNode && a.Parent[v] != tree.NoNode {
			relFirst.AddUnchecked(unary(v))
		}
		if relChild != nil {
			for c := a.FirstChild[v]; c != tree.NoNode; c = a.NextSibling[c] {
				relChild.AddUnchecked(binary(v, int(c)))
			}
		}
		if relLastChild != nil {
			if lc := a.LastChild[v]; lc != tree.NoNode {
				relLastChild.AddUnchecked(binary(v, int(lc)))
			}
		}
		if len(childKRels) > 0 {
			k := 0
			for c := a.FirstChild[v]; c != tree.NoNode && k < len(childKRels); c = a.NextSibling[c] {
				childKRels[k].AddUnchecked(binary(v, int(c)))
				k++
			}
		}
		if relDom != nil {
			relDom.AddUnchecked(unary(v))
		}
	}
	return db
}

// Nav exposes the O(1) navigation arrays of a tree, the representation
// on which the linear-time engine realizes the functional dependencies
// of Proposition 4.1 ("appropriately represented" trees, Theorem 4.2).
// Since the arena IS that representation, a Nav over an arena-backed
// tree aliases the arena columns with no copying; labels are interned
// symbol ids, so the engine's label tests are integer compares.
type Nav struct {
	Tree *tree.Tree
	// A is the backing arena (nil for NewNavFromNodes baselines).
	A *tree.Arena
	// FC, NS, Parent, Prev, LastChild map node id → node id or -1.
	FC, NS, Parent, Prev, LastChild []int32
	// ChildIdx is the 0-based position of a node among its siblings.
	ChildIdx []int32
	// Label holds per-node symbol ids resolved against Syms.
	Label []int32
	Syms  *tree.Symbols
	// Dead marks tombstoned rows of a mutated arena (nil when every row
	// is live). Engines skip dead anchors; since live columns never
	// reference dead nodes, non-anchor slots are live for free.
	Dead []bool
}

// Alive reports whether node v exists in the current document.
func (nav *Nav) Alive(v int) bool { return nav.Dead == nil || !nav.Dead[v] }

// NewNav returns the navigation view of t, aliasing its arena (built
// on first use, O(|dom|), and memoized on the tree).
func NewNav(t *tree.Tree) *Nav {
	nav := NavOf(t.Arena())
	nav.Tree = t
	return nav
}

// NavOf wraps a bare arena — the zero-copy path for pipelines that
// parse straight into an arena and never materialize the *Node view
// (e.g. html.ParseArena → Plan.Run).
func NavOf(a *tree.Arena) *Nav {
	return &Nav{
		A:  a,
		FC: a.FirstChild, NS: a.NextSibling, Parent: a.Parent,
		Prev: a.PrevSibling, LastChild: a.LastChild, ChildIdx: a.ChildIdx,
		Label: a.Label, Syms: a.Syms, Dead: a.Dead(),
	}
}

// NewNavFromNodes builds the navigation arrays by walking the pointer
// view, without consulting or creating the tree's arena. It is the
// pre-arena construction path, retained as the baseline for the
// substrate benchmarks and for differential tests.
func NewNavFromNodes(t *tree.Tree) *Nav {
	n := t.Size()
	nav := &Nav{
		Tree:      t,
		FC:        make([]int32, n),
		NS:        make([]int32, n),
		Parent:    make([]int32, n),
		Prev:      make([]int32, n),
		LastChild: make([]int32, n),
		ChildIdx:  make([]int32, n),
		Label:     make([]int32, n),
		Syms:      tree.NewSymbols(),
	}
	for i := range nav.FC {
		nav.FC[i], nav.NS[i], nav.Parent[i], nav.Prev[i], nav.LastChild[i] = -1, -1, -1, -1, -1
	}
	for _, nd := range t.Nodes {
		nav.Label[nd.ID] = nav.Syms.Intern(nd.Label)
		if len(nd.Children) > 0 {
			nav.FC[nd.ID] = int32(nd.Children[0].ID)
			nav.LastChild[nd.ID] = int32(nd.Children[len(nd.Children)-1].ID)
		}
		for i, c := range nd.Children {
			nav.Parent[c.ID] = int32(nd.ID)
			nav.ChildIdx[c.ID] = int32(i)
			if i > 0 {
				nav.Prev[c.ID] = int32(nd.Children[i-1].ID)
			}
			if i+1 < len(nd.Children) {
				nav.NS[c.ID] = int32(nd.Children[i+1].ID)
			}
		}
	}
	return nav
}

// Dom returns |dom|, the number of nodes.
func (nav *Nav) Dom() int { return len(nav.Parent) }

// ChildK returns the k-th (1-based) child of v, or -1.
func (nav *Nav) ChildK(v, k int) int {
	if nav.A != nil {
		return int(nav.A.ChildK(int32(v), k))
	}
	nd := nav.Tree.Nodes[v]
	if k < 1 || k > len(nd.Children) {
		return -1
	}
	return nd.Children[k-1].ID
}

// LabelID resolves a label string against the nav's symbol table; -1
// if the label does not occur in the tree (so it matches no node).
func (nav *Nav) LabelID(label string) int32 { return nav.Syms.ID(label) }

// unaryKind enumerates the unary extensional predicates of τ_ur and
// its extensions, pre-classified at plan-compile time so the per-node
// test in the grounding hot loop is a switch on an int plus at most
// two array reads.
type unaryKind uint8

const (
	uLabel unaryKind = iota
	uRoot
	uLeaf
	uLastSibling
	uFirstSibling
	uDom
)

// classifyUnary maps a predicate name to its kind (and label, for
// label_a); ok=false if pred is not a known unary EDB predicate.
func classifyUnary(pred string) (kind unaryKind, label string, ok bool) {
	switch pred {
	case PredRoot:
		return uRoot, "", true
	case PredLeaf:
		return uLeaf, "", true
	case PredLastSibling:
		return uLastSibling, "", true
	case PredFirstSibling:
		return uFirstSibling, "", true
	case PredDom:
		return uDom, "", true
	}
	if label, isLabel := IsLabelPred(pred); isLabel {
		return uLabel, label, true
	}
	return 0, "", false
}

// IsUnaryEDB reports whether pred names a unary extensional relation
// of τ_ur or one of its extensions (root, leaf, lastsibling,
// firstsibling, dom, label_a). The classification depends only on the
// predicate name, so rule compilation can happen before any tree is
// seen.
func IsUnaryEDB(pred string) bool {
	_, _, ok := classifyUnary(pred)
	return ok
}

// IsBinaryEDB reports whether pred names a binary extensional tree
// relation some engine can materialize or navigate (firstchild,
// nextsibling, child, lastchild, child_k). A binary body atom outside
// this set is a diagnosable mistake — the linear engine rejects it —
// so rewrites must not remove the rules that carry one.
func IsBinaryEDB(pred string) bool {
	switch pred {
	case PredFirstChild, PredNextSibling, PredChild, PredLastChild:
		return true
	}
	_, ok := IsChildKPred(pred)
	return ok
}
