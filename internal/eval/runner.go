package eval

import (
	"context"
	"runtime"

	"mdlog/internal/tree"
)

// Runner fans one prepared task over a stream of documents with a
// bounded worker pool, yielding results in submission order. It is the
// execution half of the compile-once/run-many contract: the task
// (typically a Plan.Run or a CompiledQuery method) is assumed safe for
// concurrent use; each document is processed exactly once.
type Runner struct {
	// Workers bounds concurrent task invocations; ≤ 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
}

func (r Runner) workers() int {
	if r.Workers > 0 {
		return r.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Result is one document's outcome. Index is the document's position
// in the input order.
type Result[R any] struct {
	Index int
	Doc   *tree.Tree
	Value R
	Err   error
}

// MapAll runs f over docs with r's worker pool and returns one Result
// per document, in input order. A canceled context marks the remaining
// documents with ctx.Err() without invoking f on them.
func MapAll[R any](ctx context.Context, r Runner, docs []*tree.Tree, f func(context.Context, *tree.Tree) (R, error)) []Result[R] {
	out := make([]Result[R], len(docs))
	if len(docs) == 0 {
		return out
	}
	workers := r.workers()
	if workers > len(docs) {
		workers = len(docs)
	}
	next := make(chan int)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := range next {
				res := Result[R]{Index: i, Doc: docs[i]}
				if err := ctx.Err(); err != nil {
					res.Err = err
				} else {
					res.Value, res.Err = f(ctx, docs[i])
				}
				out[i] = res
			}
		}()
	}
	for i := range docs {
		next <- i
	}
	close(next)
	for w := 0; w < workers; w++ {
		<-done
	}
	return out
}

// MapStream runs f over a stream of documents and yields results on
// the returned channel in input order, with backpressure: at most
// r.Workers documents are in flight and at most r.Workers finished
// results are buffered ahead of the consumer. The output channel is
// closed after the input channel closes and every accepted document
// has been yielded. On context cancellation the already-accepted
// documents are still yielded (unprocessed ones carry ctx.Err()) and
// the channel is closed without waiting for docs to close — the
// consumer must drain the returned channel, and the producer must
// guard its sends with the same ctx (or close docs), else its own
// goroutine blocks on the abandoned channel.
func MapStream[R any](ctx context.Context, r Runner, docs <-chan *tree.Tree, f func(context.Context, *tree.Tree) (R, error)) <-chan Result[R] {
	return MapStreamFrom(ctx, r, docs, f, func(t *tree.Tree) *tree.Tree { return t })
}

// MapStreamFrom is MapStream over an arbitrary input stream — e.g.
// io.Readers whose documents are parsed inside the worker pool. doc
// extracts the Result.Doc from an input item for reporting; pass nil
// to leave it unset (f can carry the parsed tree in R instead).
func MapStreamFrom[T, R any](ctx context.Context, r Runner, in <-chan T, f func(context.Context, T) (R, error), doc func(T) *tree.Tree) <-chan Result[R] {
	workers := r.workers()
	out := make(chan Result[R])
	type job struct {
		index int
		item  T
		res   chan Result[R]
	}
	jobs := make(chan job)
	// pending preserves submission order; its capacity bounds how far
	// the dispatcher can run ahead of the consumer.
	pending := make(chan chan Result[R], workers)

	for w := 0; w < workers; w++ {
		go func() {
			for j := range jobs {
				res := Result[R]{Index: j.index}
				if doc != nil {
					res.Doc = doc(j.item)
				}
				if err := ctx.Err(); err != nil {
					res.Err = err
				} else {
					res.Value, res.Err = f(ctx, j.item)
				}
				j.res <- res
			}
		}()
	}

	// Dispatcher: assign indices and per-document result slots.
	go func() {
		defer close(jobs)
		defer close(pending)
		i := 0
		for {
			select {
			case <-ctx.Done():
				// Stop accepting. Returning closes pending, so the
				// emitter yields the already-accepted documents and
				// closes the output — the consumer never hangs, even
				// if the producer abandons docs without closing it.
				// Producers must guard their sends with the same ctx
				// (or close docs); an unguarded sender blocks in its
				// own goroutine, which is its bug to fix — draining it
				// here would leak a receiver forever instead.
				return
			case item, ok := <-in:
				if !ok {
					return
				}
				slot := make(chan Result[R], 1)
				pending <- slot
				jobs <- job{index: i, item: item, res: slot}
				i++
			}
		}
	}()

	// Emitter: forward per-document slots in order.
	go func() {
		defer close(out)
		for slot := range pending {
			out <- <-slot
		}
	}()
	return out
}
