package eval

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"mdlog/internal/datalog"
	"mdlog/internal/tree"
)

// TestPlanConcurrentRuns pins the "immutable after NewPlan, safe for
// concurrent use" contract: one Plan hammered from many goroutines
// over many documents (run under -race in CI). The program tests
// labels that exist in some documents and not in others, so every
// label-resolution path in Run executes; the plan's interned label
// list must never change after construction.
func TestPlanConcurrentRuns(t *testing.T) {
	p, err := datalog.ParseProgram(`
q(X) :- label_td(X), firstchild(X,Y), label_b(Y).
q(X) :- label_ghost(X).
r(X) :- q(X), lastsibling(X).
?- q.
`)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := NewPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	labelsBefore := len(pl.labels)

	rng := rand.New(rand.NewSource(21))
	docs := make([]*tree.Tree, 8)
	want := make([]string, len(docs))
	for i := range docs {
		docs[i] = tree.Random(rng, tree.RandomOptions{
			Labels: []string{"td", "b", "x"}, Size: 40 + 11*i, MaxChildren: 4})
		db, err := pl.Run(NewNav(docs[i]))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = fmt.Sprint(db.UnarySet("q"), db.UnarySet("r"))
	}

	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < 25; k++ {
				i := (w + k) % len(docs)
				db, err := pl.Run(NewNav(docs[i]))
				if err != nil {
					t.Error(err)
					return
				}
				if got := fmt.Sprint(db.UnarySet("q"), db.UnarySet("r")); got != want[i] {
					t.Errorf("doc %d: %s, want %s", i, got, want[i])
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if len(pl.labels) != labelsBefore {
		t.Fatalf("plan label list grew after construction: %d -> %d", labelsBefore, len(pl.labels))
	}
}
