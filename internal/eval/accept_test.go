package eval

import (
	"math/rand"
	"testing"

	"mdlog/internal/datalog"
	"mdlog/internal/mso"
	"mdlog/internal/paperex"
	"mdlog/internal/tree"
)

// TestCorollary47Acceptance: monadic datalog defines the same tree
// languages as MSO sentences (Corollary 4.7). We check one concrete
// language — "every leaf is labeled a" — via both formalisms on random
// trees, and the Example 3.2 language "the whole tree has an even
// number of a's" against its reference semantics.
func TestCorollary47Acceptance(t *testing.T) {
	prog := datalog.MustParseProgram(`
ok(X) :- leaf(X), label_a(X).
ok(X) :- firstchild(X,Y), allok(Y).
allok(X) :- ok(X), lastsibling(X).
allok(X) :- ok(X), nextsibling(X,Y), allok(Y).
accept(X) :- root(X), ok(X).
`)
	sentence, err := mso.CompileSentence(mso.MustParse("forall x (leaf(x) -> label_a(x))"))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(61))
	sawTrue, sawFalse := false, false
	for i := 0; i < 120; i++ {
		tr := tree.Random(rng, tree.RandomOptions{
			Labels: []string{"a", "b"}, Size: 1 + rng.Intn(15), MaxChildren: 3})
		got, err := Accepts(prog, tr, "accept")
		if err != nil {
			t.Fatal(err)
		}
		want := sentence.Accepts(tr)
		if got != want {
			t.Fatalf("on %s: datalog %v, MSO %v", tr, got, want)
		}
		sawTrue = sawTrue || got
		sawFalse = sawFalse || !got
	}
	if !sawTrue || !sawFalse {
		t.Error("test corpus did not cover both outcomes")
	}
}

func TestAcceptsEvenALanguage(t *testing.T) {
	p := paperex.EvenAProgram("b")
	// Rename the query predicate into an accept predicate.
	p.Query = "c0"
	rng := rand.New(rand.NewSource(62))
	for i := 0; i < 60; i++ {
		tr := tree.Random(rng, tree.RandomOptions{
			Labels: []string{"a", "b"}, Size: 1 + rng.Intn(20), MaxChildren: 4})
		got, err := Accepts(p, tr, "c0")
		if err != nil {
			t.Fatal(err)
		}
		want := false
		for _, id := range paperex.EvenASpec(tr) {
			if id == tr.Root.ID {
				want = true
			}
		}
		if got != want {
			t.Fatalf("on %s: got %v, want %v", tr, got, want)
		}
	}
}

func TestAcceptsDefaultPred(t *testing.T) {
	p := datalog.MustParseProgram(`accept(X) :- root(X), label_a(X).`)
	ok, err := Accepts(p, tree.MustParse("a(b)"), "")
	if err != nil || !ok {
		t.Errorf("got %v %v", ok, err)
	}
	ok, err = Accepts(p, tree.MustParse("b(a)"), "")
	if err != nil || ok {
		t.Errorf("got %v %v", ok, err)
	}
}
