package eval

import (
	"testing"

	"mdlog/internal/datalog"
	"mdlog/internal/tree"
)

func TestResultMemoBound(t *testing.T) {
	c := NewTreeCache(0)
	c.MaxResults = 4
	tr := tree.MustParse("a(b)")
	db := datalog.NewDatabase(2)
	for i := 0; i < 10; i++ {
		c.SetResult(tr, i, db)
	}
	s := c.Stats()
	if s.Results != 4 {
		t.Errorf("results = %d, want 4", s.Results)
	}
	if s.ResultEvictions != 6 {
		t.Errorf("evictions = %d, want 6", s.ResultEvictions)
	}
	// Overwriting a surviving key evicts nothing.
	var kept any
	for i := 0; i < 10; i++ {
		if _, ok := c.Result(tr, i); ok {
			kept = i
			break
		}
	}
	c.SetResult(tr, kept, db)
	if got := c.Stats(); got.ResultEvictions != 6 || got.Results != 4 {
		t.Errorf("after overwrite: %+v", got)
	}
	// A second tree gets its own budget.
	tr2 := tree.MustParse("c")
	c.SetResult(tr2, "q", db)
	if got := c.Stats(); got.Trees != 2 || got.Results != 5 {
		t.Errorf("two trees: %+v", got)
	}
	// Forget drops the entry's results with it.
	c.Forget(tr)
	if got := c.Stats(); got.Trees != 1 || got.Results != 1 {
		t.Errorf("after forget: %+v", got)
	}
}

func TestResultMemoUnbounded(t *testing.T) {
	c := NewTreeCache(0)
	c.MaxResults = 0 // explicit opt-out
	tr := tree.MustParse("a")
	db := datalog.NewDatabase(1)
	for i := 0; i < 2*DefaultMaxResults; i++ {
		c.SetResult(tr, i, db)
	}
	if s := c.Stats(); s.Results != 2*DefaultMaxResults || s.ResultEvictions != 0 {
		t.Errorf("unbounded memo: %+v", s)
	}
}

func TestDefaultMaxResults(t *testing.T) {
	c := NewTreeCache(3)
	if c.MaxResults != DefaultMaxResults {
		t.Errorf("MaxResults = %d, want %d", c.MaxResults, DefaultMaxResults)
	}
	tr := tree.MustParse("a")
	db := datalog.NewDatabase(1)
	for i := 0; i < DefaultMaxResults+5; i++ {
		c.SetResult(tr, i, db)
	}
	if s := c.Stats(); s.Results != DefaultMaxResults {
		t.Errorf("results = %d, want %d", s.Results, DefaultMaxResults)
	}
	// Stats also reflects Nav/DB traffic.
	c.Nav(tr)
	c.Nav(tr)
	if s := c.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Errorf("traffic: %+v", s)
	}
}

// TestSharedDBConcurrentHas pins the read-only contract of cached
// databases: concurrent Has on a shared TreeDB (as the generic
// engines issue through DBCached) must be race-free even though the
// membership set is built lazily.
func TestSharedDBConcurrentHas(t *testing.T) {
	tr := tree.MustParse("a(b,c(d,e),f)")
	db := TreeDB(tr, WithChild(), WithDom())
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				db.Has(PredChild, 0, 1)
				db.Has(PredDom, i%6)
				db.Has(PredLeaf, i%6)
			}
		}()
	}
	for w := 0; w < 8; w++ {
		<-done
	}
}

// TestTreeDBNoPhantomLabels: stream-parsed documents pre-intern
// policy tag symbols; TreeDB must not materialize empty label_*
// relations for labels the document never uses.
func TestTreeDBNoPhantomLabels(t *testing.T) {
	tr := tree.MustParse("a(b)")
	db := TreeDB(tr)
	for _, pred := range db.Preds() {
		switch pred {
		case "label_a", "label_b", PredRoot, PredLeaf, PredLastSibling, PredFirstChild, PredNextSibling:
		default:
			t.Errorf("unexpected relation %q", pred)
		}
	}
}
