// Package caterpillar implements the caterpillar expressions of
// Section 2 of Gottlob & Koch (PODS 2002) — regular path expressions
// over the binary relations of τ_ur extended with inversion and unary
// relation tests — together with:
//
//   - inversion pushdown (Propositions 2.3 / 2.4),
//   - evaluation over trees (the binary relation [[E]]),
//   - the document order expression of Example 2.5,
//   - compilation into monadic datalog (Lemma 5.9, Example 5.10),
//   - containment of unary caterpillar queries (Corollary 5.12).
package caterpillar

import (
	"fmt"
	"strings"
)

// Expr is a caterpillar expression.
type Expr interface {
	fmt.Stringer
	isExpr()
}

type (
	// Rel is an atomic binary relation of τ_ur: "firstchild",
	// "nextsibling", or the derived "child" (Example 5.10).
	Rel struct{ Name string }

	// Test is a unary relation used as an identity filter:
	// [[P]] = {⟨x,x⟩ | P(x)} — "root", "leaf", "lastsibling",
	// "firstsibling", or "label_<a>".
	Test struct{ Name string }

	// Concat is E1.E2.
	Concat struct{ L, R Expr }

	// Union is E1 ∪ E2.
	Union struct{ L, R Expr }

	// Star is E*.
	Star struct{ E Expr }

	// Inv is E⁻¹.
	Inv struct{ E Expr }
)

func (Rel) isExpr()    {}
func (Test) isExpr()   {}
func (Concat) isExpr() {}
func (Union) isExpr()  {}
func (Star) isExpr()   {}
func (Inv) isExpr()    {}

func (e Rel) String() string  { return e.Name }
func (e Test) String() string { return e.Name }
func (e Concat) String() string {
	return fmt.Sprintf("%s.%s", parenFor(e.L, 2), parenFor(e.R, 2))
}
func (e Union) String() string {
	return fmt.Sprintf("%s | %s", parenFor(e.L, 1), parenFor(e.R, 1))
}
func (e Star) String() string { return parenFor(e.E, 3) + "*" }
func (e Inv) String() string  { return parenFor(e.E, 3) + "^-1" }

// precedence: union 1 < concat 2 < postfix 3.
func prec(e Expr) int {
	switch e.(type) {
	case Union:
		return 1
	case Concat:
		return 2
	default:
		return 4
	}
}

func parenFor(e Expr, ctx int) string {
	if prec(e) < ctx {
		return "(" + e.String() + ")"
	}
	return e.String()
}

// Plus builds E⁺ = E.E*.
func Plus(e Expr) Expr { return Concat{e, Star{e}} }

// Child is the derived child relation firstchild.nextsibling*
// (Example 5.10).
func Child() Expr { return Concat{Rel{"firstchild"}, Star{Rel{"nextsibling"}}} }

// DocumentOrder is the caterpillar expression for ≺ from Example 2.5:
//
//	child⁺ ∪ (child⁻¹)*.nextsibling⁺.child*
func DocumentOrder() Expr {
	child := Child()
	return Union{
		Plus(child),
		Concat{Star{Inv{child}},
			Concat{Plus(Rel{"nextsibling"}), Star{child}}},
	}
}

// PushInversions rewrites E into an equivalent expression whose
// inversions apply only to atomic relations (Propositions 2.3 / 2.4),
// in time O(|E|).
func PushInversions(e Expr) Expr {
	return push(e, false)
}

func push(e Expr, inv bool) Expr {
	switch g := e.(type) {
	case Rel:
		if inv {
			return Inv{g}
		}
		return g
	case Test:
		// [[P]]⁻¹ = [[P]] (a subset of the identity).
		return g
	case Concat:
		if inv {
			// (E.F)⁻¹ = F⁻¹.E⁻¹
			return Concat{push(g.R, true), push(g.L, true)}
		}
		return Concat{push(g.L, false), push(g.R, false)}
	case Union:
		return Union{push(g.L, inv), push(g.R, inv)}
	case Star:
		return Star{push(g.E, inv)}
	case Inv:
		// (E⁻¹)⁻¹ = E
		return push(g.E, !inv)
	}
	return e
}

// Size returns the number of AST nodes.
func Size(e Expr) int {
	switch g := e.(type) {
	case Rel, Test:
		return 1
	case Concat:
		return 1 + Size(g.L) + Size(g.R)
	case Union:
		return 1 + Size(g.L) + Size(g.R)
	case Star:
		return 1 + Size(g.E)
	case Inv:
		return 1 + Size(g.E)
	}
	return 1
}

// Parse reads a caterpillar expression. Syntax: names are relation or
// unary-test identifiers; postfix '*', '+', '^-1'; '.' concatenation;
// '|' union; parentheses. Example:
//
//	child+ | (child^-1)*.nextsibling+.child*
//
// where child is accepted as a primitive name (it denotes
// firstchild.nextsibling* but is kept atomic here; ToDatalog and Eval
// understand it).
func Parse(src string) (Expr, error) {
	p := &catParser{src: src}
	e, err := p.union()
	if err != nil {
		return nil, err
	}
	p.skip()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("caterpillar: trailing input at %d in %q", p.pos, src)
	}
	return e, nil
}

// MustParse panics on error.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type catParser struct {
	src string
	pos int
}

func (p *catParser) skip() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n') {
		p.pos++
	}
}

func (p *catParser) union() (Expr, error) {
	l, err := p.concat()
	if err != nil {
		return nil, err
	}
	for {
		p.skip()
		if p.pos < len(p.src) && p.src[p.pos] == '|' {
			p.pos++
			r, err := p.concat()
			if err != nil {
				return nil, err
			}
			l = Union{l, r}
		} else {
			return l, nil
		}
	}
}

func (p *catParser) concat() (Expr, error) {
	l, err := p.postfix()
	if err != nil {
		return nil, err
	}
	for {
		p.skip()
		if p.pos < len(p.src) && p.src[p.pos] == '.' {
			p.pos++
			r, err := p.postfix()
			if err != nil {
				return nil, err
			}
			l = Concat{l, r}
		} else {
			return l, nil
		}
	}
}

func (p *catParser) postfix() (Expr, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		p.skip()
		switch {
		case p.pos < len(p.src) && p.src[p.pos] == '*':
			p.pos++
			e = Star{e}
		case p.pos < len(p.src) && p.src[p.pos] == '+':
			p.pos++
			e = Plus(e)
		case strings.HasPrefix(p.src[p.pos:], "^-1"):
			p.pos += 3
			e = Inv{e}
		default:
			return e, nil
		}
	}
}

// knownTests are the unary relations usable as tests.
func isTestName(name string) bool {
	switch name {
	case "root", "leaf", "lastsibling", "firstsibling", "dom":
		return true
	}
	return strings.HasPrefix(name, "label_")
}

// knownRels are the binary relations.
func isRelName(name string) bool {
	switch name {
	case "firstchild", "nextsibling", "child", "lastchild":
		return true
	}
	return false
}

func (p *catParser) primary() (Expr, error) {
	p.skip()
	if p.pos >= len(p.src) {
		return nil, fmt.Errorf("caterpillar: unexpected end of input")
	}
	if p.src[p.pos] == '(' {
		p.pos++
		e, err := p.union()
		if err != nil {
			return nil, err
		}
		p.skip()
		if p.pos >= len(p.src) || p.src[p.pos] != ')' {
			return nil, fmt.Errorf("caterpillar: expected ')' at %d", p.pos)
		}
		p.pos++
		return e, nil
	}
	start := p.pos
	for p.pos < len(p.src) && (isWord(p.src[p.pos])) {
		p.pos++
	}
	name := p.src[start:p.pos]
	if name == "" {
		return nil, fmt.Errorf("caterpillar: expected name at %d in %q", p.pos, p.src)
	}
	switch {
	case isRelName(name):
		return Rel{name}, nil
	case isTestName(name):
		return Test{name}, nil
	default:
		return nil, fmt.Errorf("caterpillar: unknown relation or test %q", name)
	}
}

func isWord(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '#'
}
