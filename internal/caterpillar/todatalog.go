package caterpillar

import (
	"fmt"

	"mdlog/internal/datalog"
)

// ToDatalog implements Lemma 5.9: given a caterpillar expression E
// over τ_ur and a unary predicate p, it emits a monadic datalog
// program (in TMNF shape) defining
//
//	out := p.E = {x | ∃x₀: p(x₀) ∧ ⟨x₀,x⟩ ∈ [[E]]}
//
// in time O(|E|), via the Thompson NFA of E: one predicate per
// automaton state, one rule per transition (cf. Example 5.10).
//
// The derived relations child and lastchild are expanded into τ_ur
// first (child = firstchild.nextsibling*, lastchild =
// child.lastsibling), so the output is strictly over τ_ur. Generated
// predicates are prefixed to stay collision-free.
func ToDatalog(e Expr, p string, out string, prefix string) []datalog.Rule {
	if prefix == "" {
		prefix = out
	}
	e = expandDerived(PushInversions(e))
	c := Compile(e)
	st := func(q int) string { return fmt.Sprintf("%s_s%d", prefix, q) }
	V, At, R := datalog.V, datalog.At, datalog.R

	var rules []datalog.Rule
	// Start state: s(x) ← p(x).
	rules = append(rules, R(At(st(c.nfa.Start), V("X")), At(p, V("X"))))
	// ε-transitions: q2(x) ← q1(x).
	c.nfa.EpsTransitions(func(q, r int) {
		rules = append(rules, R(At(st(r), V("X")), At(st(q), V("X"))))
	})
	// Symbol transitions.
	c.nfa.Transitions(func(q, sym, r int) {
		s := c.steps[sym]
		switch {
		case s.test:
			rules = append(rules, R(At(st(r), V("X")),
				At(st(q), V("X")), At(s.name, V("X"))))
		case s.inv:
			rules = append(rules, R(At(st(r), V("X")),
				At(st(q), V("X0")), At(s.name, V("X"), V("X0"))))
		default:
			rules = append(rules, R(At(st(r), V("X")),
				At(st(q), V("X0")), At(s.name, V("X0"), V("X"))))
		}
	})
	// Accepting states feed the output predicate.
	for q, acc := range c.nfa.Accept {
		if acc {
			rules = append(rules, R(At(out, V("X")), At(st(q), V("X"))))
		}
	}
	return rules
}

// expandDerived replaces the derived relations child and lastchild by
// their τ_ur caterpillar definitions. Inversions must already be
// atomic (PushInversions).
func expandDerived(e Expr) Expr {
	switch g := e.(type) {
	case Rel:
		switch g.Name {
		case "child":
			return Child()
		case "lastchild":
			return Concat{Child(), Test{"lastsibling"}}
		}
		return g
	case Inv:
		r := g.E.(Rel)
		switch r.Name {
		case "child":
			// child⁻¹ = (nextsibling⁻¹)*.firstchild⁻¹ (Example 2.5).
			return Concat{Star{Inv{Rel{"nextsibling"}}}, Inv{Rel{"firstchild"}}}
		case "lastchild":
			// lastchild⁻¹ = lastsibling.child⁻¹.
			return Concat{Test{"lastsibling"},
				Concat{Star{Inv{Rel{"nextsibling"}}}, Inv{Rel{"firstchild"}}}}
		}
		return g
	case Concat:
		return Concat{expandDerived(g.L), expandDerived(g.R)}
	case Union:
		return Union{expandDerived(g.L), expandDerived(g.R)}
	case Star:
		return Star{expandDerived(g.E)}
	case Test:
		return g
	}
	return e
}

// QueryProgram builds the single-predicate unary caterpillar query
// Q(x) ← root.E(x) of Corollary 5.12 as a monadic datalog program
// with query predicate out.
func QueryProgram(e Expr, out string) *datalog.Program {
	p := &datalog.Program{Query: out}
	p.Add(datalog.R(datalog.At("cat_src", datalog.V("X")), datalog.At("root", datalog.V("X"))))
	p.Add(ToDatalog(e, "cat_src", out, out)...)
	return p
}
