package caterpillar

import (
	"fmt"
	"sort"

	"mdlog/internal/automata"
	"mdlog/internal/tree"
)

// Evaluation of caterpillar expressions over trees. An expression is
// compiled (after inversion pushdown, Proposition 2.4) into an NFA
// over "atomic step" symbols; [[E]] is then computed by product-graph
// reachability between tree nodes and automaton states.

// step is an atomic navigation: a binary relation, possibly inverted,
// or a unary test.
type step struct {
	name string
	inv  bool
	test bool
}

func (s step) String() string {
	if s.test {
		return s.name
	}
	if s.inv {
		return s.name + "^-1"
	}
	return s.name
}

// compiled is a caterpillar expression compiled to an NFA over steps.
type compiled struct {
	nfa   *automata.NFA
	steps []step
}

// Compile translates E (inversions pushed down) into an NFA via the
// Thompson construction, in time O(|E|).
func Compile(e Expr) *compiled {
	e = PushInversions(e)
	c := &compiled{}
	symOf := map[step]int{}
	var collect func(e Expr)
	collect = func(e Expr) {
		switch g := e.(type) {
		case Rel:
			s := step{name: g.Name}
			if _, ok := symOf[s]; !ok {
				symOf[s] = len(c.steps)
				c.steps = append(c.steps, s)
			}
		case Inv:
			r := g.E.(Rel) // guaranteed atomic by PushInversions
			s := step{name: r.Name, inv: true}
			if _, ok := symOf[s]; !ok {
				symOf[s] = len(c.steps)
				c.steps = append(c.steps, s)
			}
		case Test:
			s := step{name: g.Name, test: true}
			if _, ok := symOf[s]; !ok {
				symOf[s] = len(c.steps)
				c.steps = append(c.steps, s)
			}
		case Concat:
			collect(g.L)
			collect(g.R)
		case Union:
			collect(g.L)
			collect(g.R)
		case Star:
			collect(g.E)
		}
	}
	collect(e)
	nfa := automata.NewNFA(0, len(c.steps))
	// Thompson: build returns (start, end); end has no outgoing edges.
	var build func(e Expr) (int, int)
	build = func(e Expr) (int, int) {
		switch g := e.(type) {
		case Rel:
			s, t := nfa.AddState(), nfa.AddState()
			nfa.AddTransition(s, symOf[step{name: g.Name}], t)
			return s, t
		case Inv:
			r := g.E.(Rel)
			s, t := nfa.AddState(), nfa.AddState()
			nfa.AddTransition(s, symOf[step{name: r.Name, inv: true}], t)
			return s, t
		case Test:
			s, t := nfa.AddState(), nfa.AddState()
			nfa.AddTransition(s, symOf[step{name: g.Name, test: true}], t)
			return s, t
		case Concat:
			s1, t1 := build(g.L)
			s2, t2 := build(g.R)
			nfa.AddEps(t1, s2)
			return s1, t2
		case Union:
			s, t := nfa.AddState(), nfa.AddState()
			s1, t1 := build(g.L)
			s2, t2 := build(g.R)
			nfa.AddEps(s, s1)
			nfa.AddEps(s, s2)
			nfa.AddEps(t1, t)
			nfa.AddEps(t2, t)
			return s, t
		case Star:
			s, t := nfa.AddState(), nfa.AddState()
			s1, t1 := build(g.E)
			nfa.AddEps(s, s1)
			nfa.AddEps(t1, s)
			nfa.AddEps(s, t)
			return s, t
		}
		panic(fmt.Sprintf("caterpillar: unexpected node %T", e))
	}
	start, end := build(e)
	nfa.Start = start
	nfa.Accept[end] = true
	c.nfa = nfa
	return c
}

// applyStep returns the nodes reachable from node v by one atomic step.
func applyStep(t *tree.Tree, s step, v int) []int {
	n := t.Nodes[v]
	single := func(m *tree.Node) []int {
		if m == nil {
			return nil
		}
		return []int{m.ID}
	}
	if s.test {
		holds := false
		switch s.name {
		case "root":
			holds = n.IsRoot()
		case "leaf":
			holds = n.IsLeaf()
		case "lastsibling":
			holds = n.IsLastSibling()
		case "firstsibling":
			holds = n.IsFirstSibling()
		case "dom":
			holds = true
		default: // label_<a>
			holds = "label_"+n.Label == s.name
		}
		if holds {
			return []int{v}
		}
		return nil
	}
	switch s.name {
	case "firstchild":
		if !s.inv {
			return single(n.FirstChild())
		}
		if n.Parent != nil && n.Parent.Children[0] == n {
			return single(n.Parent)
		}
		return nil
	case "nextsibling":
		if !s.inv {
			return single(n.NextSibling())
		}
		return single(n.PrevSibling())
	case "child":
		if !s.inv {
			out := make([]int, len(n.Children))
			for i, c := range n.Children {
				out[i] = c.ID
			}
			return out
		}
		return single(n.Parent)
	case "lastchild":
		if !s.inv {
			return single(n.LastChild())
		}
		if n.IsLastSibling() {
			return single(n.Parent)
		}
		return nil
	}
	return nil
}

// ImageFrom computes {y | ∃x ∈ from: ⟨x,y⟩ ∈ [[E]]} by product-graph
// BFS, in time O(|E| · |t|) for fixed alphabet.
func ImageFrom(e Expr, t *tree.Tree, from []int) []int {
	c := Compile(e)
	n := t.Size()
	ns := c.nfa.NumStates
	seen := make([]bool, n*ns)
	var queue []int
	push := func(v, q int) {
		id := v*ns + q
		if !seen[id] {
			seen[id] = true
			queue = append(queue, id)
		}
	}
	startSet := c.nfa.StartSet()
	for _, v := range from {
		for q, in := range startSet {
			if in {
				push(v, q)
			}
		}
	}
	// Precompute per-state symbol edges: (sym, target).
	type edge struct{ sym, to int }
	edges := make([][]edge, ns)
	c.nfa.Transitions(func(q, sym, r int) {
		edges[q] = append(edges[q], edge{sym, r})
	})
	eps := make([][]int, ns)
	c.nfa.EpsTransitions(func(q, r int) { eps[q] = append(eps[q], r) })

	resultSet := make([]bool, n)
	for len(queue) > 0 {
		id := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		v, q := id/ns, id%ns
		if c.nfa.Accept[q] {
			resultSet[v] = true
		}
		for _, r := range eps[q] {
			push(v, r)
		}
		for _, ed := range edges[q] {
			for _, w := range applyStep(t, c.steps[ed.sym], v) {
				push(w, ed.to)
			}
		}
	}
	var out []int
	for v, in := range resultSet {
		if in {
			out = append(out, v)
		}
	}
	return out
}

// Pairs computes the full relation [[E]] ⊆ dom × dom (quadratic; for
// tests and small trees).
func Pairs(e Expr, t *tree.Tree) [][2]int {
	var out [][2]int
	for v := 0; v < t.Size(); v++ {
		for _, w := range ImageFrom(e, t, []int{v}) {
			out = append(out, [2]int{v, w})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// SelectFromRoot evaluates the unary caterpillar query
// Q(x) ← root.E(x) of Corollary 5.12.
func SelectFromRoot(e Expr, t *tree.Tree) []int {
	return ImageFrom(e, t, []int{t.Root.ID})
}
