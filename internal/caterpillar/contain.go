package caterpillar

import (
	"fmt"

	"mdlog/internal/automata"
	"mdlog/internal/refute"
	"mdlog/internal/tree"
)

// Containment of unary caterpillar queries (Corollary 5.12). The
// problem is PSPACE-complete; we provide the two practical halves of
// a decision procedure:
//
//   - a sound word-level proof: if the path language L(E1) ⊆ L(E2)
//     over atomic navigation steps, then [[E1]] ⊆ [[E2]] on every tree
//     (each word denotes a fixed relation, and [[E]] is the union over
//     the words of L(E)); this is the PSPACE regular-expression
//     containment the paper's hardness proof reduces from;
//   - a refutation search over randomly enumerated small trees, which
//     produces concrete counterexamples.
//
// When neither side fires the result is Unknown (word-level inclusion
// is sufficient but not necessary: syntactically different paths can
// denote overlapping relations on trees).

// ContainmentResult is the outcome of CheckContainment.
type ContainmentResult int

const (
	// ContainedYes: proven at the word level (sound for all trees).
	ContainedYes ContainmentResult = iota
	// ContainedNo: a concrete tree witnesses non-containment.
	ContainedNo
	// ContainedUnknown: no word-level proof and no small counterexample.
	ContainedUnknown
)

func (r ContainmentResult) String() string {
	switch r {
	case ContainedYes:
		return "contained"
	case ContainedNo:
		return "not-contained"
	case ContainedUnknown:
		return "unknown"
	}
	return fmt.Sprintf("ContainmentResult(%d)", int(r))
}

// Counterexample witnesses non-containment of Q1 in Q2.
type Counterexample struct {
	Tree *tree.Tree
	Node int // selected by Q1 but not by Q2
}

// CheckOptions tunes the refutation search.
type CheckOptions struct {
	// Trees is the number of random trees to try (default 400).
	Trees int
	// MaxSize bounds the size of candidate trees (default 10).
	MaxSize int
	// Labels is the label alphabet for candidates (default a, b).
	Labels []string
	// Seed for the search (default refute.DefaultSeed(): the
	// MDLOG_FUZZ_SEED environment override, else 1).
	Seed int64
}

// CheckContainment decides (one-sidedly) whether the unary caterpillar
// query root.E1 is contained in root.E2.
func CheckContainment(e1, e2 Expr, opts *CheckOptions) (ContainmentResult, *Counterexample) {
	if wordContained(e1, e2) {
		return ContainedYes, nil
	}
	var ro refute.Options
	if opts != nil {
		ro = refute.Options{Trees: opts.Trees, MaxSize: opts.MaxSize, Labels: opts.Labels, Seed: opts.Seed}
	}
	w := refute.Search(ro, func(t *tree.Tree) (int, bool) {
		sel2 := map[int]bool{}
		for _, v := range SelectFromRoot(e2, t) {
			sel2[v] = true
		}
		for _, v := range SelectFromRoot(e1, t) {
			if !sel2[v] {
				return v, true
			}
		}
		return 0, false
	})
	if w != nil {
		return ContainedNo, &Counterexample{Tree: w.Tree, Node: w.Node}
	}
	return ContainedUnknown, nil
}

// wordContained checks L(E1) ⊆ L(E2) over a shared atomic-step
// alphabet.
func wordContained(e1, e2 Expr) bool {
	c1 := Compile(expandDerived(PushInversions(e1)))
	c2 := Compile(expandDerived(PushInversions(e2)))
	// Re-map both automata onto the union alphabet.
	symOf := map[step]int{}
	var steps []step
	intern := func(s step) int {
		if id, ok := symOf[s]; ok {
			return id
		}
		symOf[s] = len(steps)
		steps = append(steps, s)
		return symOf[s]
	}
	remap := func(c *compiled) *automata.NFA {
		n := automata.NewNFA(c.nfa.NumStates, 0)
		n.Start = c.nfa.Start
		copy(n.Accept, c.nfa.Accept)
		c.nfa.EpsTransitions(func(q, r int) { n.AddEps(q, r) })
		c.nfa.Transitions(func(q, sym, r int) {
			n.AddTransition(q, intern(c.steps[sym]), r)
		})
		return n
	}
	n1 := remap(c1)
	n2 := remap(c2)
	n1.NumSymbols = len(steps)
	n2.NumSymbols = len(steps)
	ok, _ := automata.Contained(n1.Determinize(), n2.Determinize())
	return ok
}
