package caterpillar

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"mdlog/internal/datalog"
	"mdlog/internal/eval"
	"mdlog/internal/tree"
)

func TestParsePrintRoundTrip(t *testing.T) {
	cases := []string{
		"firstchild",
		"firstchild.nextsibling*",
		"child+ | (child^-1)*.nextsibling+.child*",
		"leaf",
		"label_a.child",
		"(firstchild | nextsibling)*",
		"nextsibling^-1",
	}
	for _, src := range cases {
		e, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		e2, err := Parse(e.String())
		if err != nil {
			t.Fatalf("reparse of %q -> %q: %v", src, e.String(), err)
		}
		if e2.String() != e.String() {
			t.Errorf("print not stable: %q -> %q", e.String(), e2.String())
		}
	}
	for _, bad := range []string{"", "unknownrel", "firstchild.", "(firstchild", "firstchild |"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q): expected error", bad)
		}
	}
}

func TestPushInversions(t *testing.T) {
	// (E.F)^-1 = F^-1.E^-1 etc. (Proposition 2.3): check that the
	// result has inversions only on atoms and denotes the same relation.
	exprs := []string{
		"(firstchild.nextsibling)^-1",
		"((firstchild | nextsibling)*)^-1",
		"(firstchild^-1)^-1",
		"(leaf.firstchild^-1)^-1",
		"((child^-1)*.nextsibling+)^-1",
	}
	rng := rand.New(rand.NewSource(2))
	for _, src := range exprs {
		e := MustParse(src)
		p := PushInversions(e)
		if !atomicInversionsOnly(p) {
			t.Errorf("%q: inversions not pushed to atoms: %s", src, p)
		}
		for i := 0; i < 10; i++ {
			tr := tree.Random(rng, tree.RandomOptions{
				Labels: []string{"a", "b"}, Size: 1 + rng.Intn(12), MaxChildren: 3})
			if fmt.Sprint(Pairs(e, tr)) != fmt.Sprint(Pairs(p, tr)) {
				t.Errorf("%q: pushdown changed semantics on %s", src, tr)
			}
		}
	}
}

func atomicInversionsOnly(e Expr) bool {
	switch g := e.(type) {
	case Rel, Test:
		return true
	case Inv:
		_, ok := g.E.(Rel)
		return ok
	case Concat:
		return atomicInversionsOnly(g.L) && atomicInversionsOnly(g.R)
	case Union:
		return atomicInversionsOnly(g.L) && atomicInversionsOnly(g.R)
	case Star:
		return atomicInversionsOnly(g.E)
	}
	return false
}

func TestBasicRelations(t *testing.T) {
	tr := tree.MustParse("a(b,c(d,e),f)")
	cases := []struct {
		src  string
		want string // Pairs
	}{
		{"firstchild", "[[0 1] [2 3]]"},
		{"nextsibling", "[[1 2] [2 5] [3 4]]"},
		{"child", "[[0 1] [0 2] [0 5] [2 3] [2 4]]"},
		{"lastchild", "[[0 5] [2 4]]"},
		{"firstchild^-1", "[[1 0] [3 2]]"},
		{"child^-1", "[[1 0] [2 0] [3 2] [4 2] [5 0]]"},
		{"lastchild^-1", "[[4 2] [5 0]]"},
		{"leaf", "[[1 1] [3 3] [4 4] [5 5]]"},
		{"label_c", "[[2 2]]"},
		{"root", "[[0 0]]"},
	}
	for _, c := range cases {
		if got := fmt.Sprint(Pairs(MustParse(c.src), tr)); got != c.want {
			t.Errorf("%q: got %s, want %s", c.src, got, c.want)
		}
	}
}

// TestDocumentOrderCaterpillar verifies Example 2.5: the caterpillar
// expression for ≺ coincides with preorder-id comparison.
func TestDocumentOrderCaterpillar(t *testing.T) {
	// The paper's own 6-node example first.
	tr := tree.MustParse("a(a,a(a,a),a)")
	checkDocOrder(t, tr)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := tree.Random(rng, tree.RandomOptions{
			Labels: []string{"a", "b"}, Size: 1 + rng.Intn(25), MaxChildren: 4})
		return docOrderOK(tr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func checkDocOrder(t *testing.T, tr *tree.Tree) {
	t.Helper()
	if !docOrderOK(tr) {
		t.Errorf("document order caterpillar wrong on %s", tr)
	}
}

func docOrderOK(tr *tree.Tree) bool {
	got := map[[2]int]bool{}
	for _, p := range Pairs(DocumentOrder(), tr) {
		got[p] = true
	}
	for i := 0; i < tr.Size(); i++ {
		for j := 0; j < tr.Size(); j++ {
			want := i < j
			if got[[2]int{i, j}] != want {
				return false
			}
		}
	}
	return true
}

func TestImageFrom(t *testing.T) {
	tr := tree.MustParse("a(b,c(d,e),f)")
	// Descendants of the root via child+.
	got := ImageFrom(MustParse("child+"), tr, []int{0})
	if fmt.Sprint(got) != "[1 2 3 4 5]" {
		t.Errorf("child+ from root = %v", got)
	}
	// Leaves of the subtree of node 2.
	got = ImageFrom(MustParse("child*.leaf"), tr, []int{2})
	if fmt.Sprint(got) != "[3 4]" {
		t.Errorf("child*.leaf from 2 = %v", got)
	}
	if got := SelectFromRoot(MustParse("firstchild"), tr); fmt.Sprint(got) != "[1]" {
		t.Errorf("SelectFromRoot = %v", got)
	}
}

// TestExample510ChildProgram reproduces Example 5.10: the datalog
// rendering of p.child via the two-state automaton.
func TestExample510ChildProgram(t *testing.T) {
	rules := ToDatalog(MustParse("child"), "p", "p_child", "pc")
	prog := datalog.NewProgram(rules...)
	prog.Add(datalog.MustParseProgram(`p(X) :- label_c(X).`).Rules...)
	prog.Query = "p_child"
	tr := tree.MustParse("a(b,c(d,e),f)")
	res, err := eval.LinearTree(prog, tr)
	if err != nil {
		t.Fatal(err)
	}
	// children of the c node (id 2): 3, 4.
	if got := fmt.Sprint(res.UnarySet("p_child")); got != "[3 4]" {
		t.Errorf("p.child = %s", got)
	}
	// The generated rules must be TMNF-shaped: ≤ 2 body atoms, heads unary.
	for _, r := range rules {
		if len(r.Body) > 2 || len(r.Head.Args) != 1 {
			t.Errorf("rule not TMNF-shaped: %s", r)
		}
	}
}

// TestToDatalogEquivalence is the Lemma 5.9 property test: for random
// expressions, the generated program computes exactly p.E.
func TestToDatalogEquivalence(t *testing.T) {
	exprs := []string{
		"firstchild",
		"nextsibling*",
		"child",
		"child+",
		"child*.leaf",
		"firstchild.nextsibling*.lastsibling",
		"(firstchild | nextsibling)+",
		"child^-1",
		"(child^-1)*.label_a",
		"lastchild",
		"lastchild^-1",
		"leaf.(nextsibling^-1)*",
		"child+ | (child^-1)*.nextsibling+.child*", // document order
	}
	rng := rand.New(rand.NewSource(9))
	for _, src := range exprs {
		e := MustParse(src)
		prog := datalog.NewProgram(ToDatalog(e, "start_here", "got_out", "g")...)
		prog.Add(datalog.R(datalog.At("start_here", datalog.V("X")), datalog.At("label_s", datalog.V("X"))))
		for i := 0; i < 12; i++ {
			tr := tree.Random(rng, tree.RandomOptions{
				Labels: []string{"a", "b", "s"}, Size: 1 + rng.Intn(14), MaxChildren: 3})
			var from []int
			for _, n := range tr.Nodes {
				if n.Label == "s" {
					from = append(from, n.ID)
				}
			}
			want := ImageFrom(e, tr, from)
			res, err := eval.LinearTree(prog, tr)
			if err != nil {
				t.Fatalf("%q: %v", src, err)
			}
			if got := res.UnarySet("got_out"); fmt.Sprint(got) != fmt.Sprint(want) {
				t.Errorf("%q on %s: datalog %v, direct %v", src, tr, got, want)
			}
		}
	}
}

func TestContainment(t *testing.T) {
	cases := []struct {
		e1, e2 string
		want   ContainmentResult
	}{
		{"firstchild", "child", ContainedYes},
		{"nextsibling", "nextsibling*", ContainedYes},
		{"child", "child | firstchild", ContainedYes},
		{"child+", "child*", ContainedYes},
		{"child", "firstchild", ContainedNo},
		{"child*", "child+", ContainedNo},
		{"nextsibling*", "nextsibling", ContainedNo},
		// lastchild ⊆ child holds semantically but not at the word level
		// (the expansion of lastchild carries a lastsibling test symbol
		// that child's words lack) — the checker must stay on the sound
		// side and answer Unknown.
		{"lastchild", "child", ContainedUnknown},
	}
	for _, c := range cases {
		got, cex := CheckContainment(MustParse(c.e1), MustParse(c.e2), nil)
		if got != c.want {
			t.Errorf("Contained(%q, %q) = %v, want %v", c.e1, c.e2, got, c.want)
		}
		if got == ContainedNo {
			if cex == nil {
				t.Errorf("Contained(%q, %q): missing counterexample", c.e1, c.e2)
				continue
			}
			// Verify the counterexample.
			sel1 := SelectFromRoot(MustParse(c.e1), cex.Tree)
			sel2 := SelectFromRoot(MustParse(c.e2), cex.Tree)
			in1, in2 := false, false
			for _, v := range sel1 {
				in1 = in1 || v == cex.Node
			}
			for _, v := range sel2 {
				in2 = in2 || v == cex.Node
			}
			if !in1 || in2 {
				t.Errorf("Contained(%q, %q): bogus counterexample", c.e1, c.e2)
			}
		}
	}
}

func TestQueryProgram(t *testing.T) {
	tr := tree.MustParse("a(b,c(d,e),f)")
	p := QueryProgram(MustParse("child.child"), "grandchild")
	res, err := eval.LinearTree(p, tr)
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(res.UnarySet("grandchild")); got != "[3 4]" {
		t.Errorf("grandchildren = %s", got)
	}
}

func TestSizeAndPlus(t *testing.T) {
	e := MustParse("child+")
	// child+ = child.child*
	if Size(e) != 4 {
		t.Errorf("Size = %d", Size(e))
	}
	if Size(MustParse("firstchild")) != 1 {
		t.Error("atomic size wrong")
	}
}

func TestContainmentResultString(t *testing.T) {
	if ContainedYes.String() != "contained" || ContainedNo.String() != "not-contained" ||
		ContainedUnknown.String() != "unknown" {
		t.Error("String() wrong")
	}
}
