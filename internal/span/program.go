package span

// The spanner language surface (LangSpanner). A program mixes ordinary
// monadic-datalog rules — which select candidate nodes and compile
// through the standard TMNF/optimizer/grounding pipeline — with span
// rules that extract strings from those nodes:
//
//	% node part: plain monadic datalog over τ_ur
//	cell(X)  :- label_td(Y), firstchild(Y, X), label_#text(X).
//	?- cell.
//
//	% span rules: head has the node variable plus ≥1 span variables
//	price(X, A) :- cell(X), text(X, S), match(S, /\$(?<amt>\d+\.\d\d)/, A).
//	link(X, U)  :- label_a(X), attr(X, "href", U).
//
// Span primitives (evaluated left to right; a span variable must be
// bound before use — the safety condition that keeps enumeration
// finite):
//
//	text(X, S)            binds S to X's character data (whole span)
//	attr(X, "name", S)    binds S to the value of attribute name on X
//	match(S, /re/, V...)  binds V1..Vk to the regex formula's capture
//	                      variables (positionally) for EVERY match of
//	                      the formula inside S
//	within(S1, S2)        filter: S1 lies inside S2 (same source)
//	before(S1, S2)        filter: S1 ends before S2 starts (same source)
//
// Any other body atom must be unary over the rule's node variable and
// names a τ_ur / datalog predicate; the conjunction of those node
// atoms becomes a synthesized candidate predicate evaluated by the
// node engine (NodeProgram).

import (
	"fmt"
	"strings"

	"mdlog/internal/datalog"
)

// StepKind enumerates the span-atom primitives.
type StepKind int

const (
	// StepText binds Out to the node's character data.
	StepText StepKind = iota
	// StepAttr binds Out to the value of attribute Attr on the node.
	StepAttr
	// StepMatch runs formula Re over the span Src, binding Outs.
	StepMatch
	// StepWithin filters: Src lies within Arg2.
	StepWithin
	// StepBefore filters: Src ends at or before Arg2's start.
	StepBefore
)

// Step is one span atom of a rule body, in evaluation order.
type Step struct {
	// Kind selects the primitive.
	Kind StepKind
	// Out is the span variable bound by text/attr.
	Out string
	// Attr is the attribute name (StepAttr).
	Attr string
	// Src is the input span variable (match/within/before).
	Src string
	// Arg2 is the second span variable (within/before).
	Arg2 string
	// Re is the parsed formula (StepMatch).
	Re *Formula
	// Outs are the capture output variables (StepMatch), positionally
	// bound to Re.Vars.
	Outs []string
}

// Rule is one span rule: head name(NodeVar, HeadVars...) with a body
// of node atoms plus span steps.
type Rule struct {
	// Name is the span relation the rule defines.
	Name string
	// NodeVar is the head's first argument — the node the spans hang off.
	NodeVar string
	// HeadVars are the span variables the head emits, in head order.
	HeadVars []string
	// NodeAtoms are the unary node predicates applied to NodeVar; their
	// conjunction selects the rule's candidate nodes ("dom" when empty).
	NodeAtoms []string
	// Steps are the span atoms in body (= evaluation) order.
	Steps []Step
}

// Program is a parsed spanner program: the monadic-datalog node part
// plus the span rules.
type Program struct {
	// Node is the node-level program (user rules and ?- directive only;
	// see NodeProgram for the synthesized candidate predicates).
	Node *datalog.Program
	// Rules are the span rules in source order.
	Rules []Rule

	src string
}

// Source returns the program's source text.
func (p *Program) Source() string { return p.src }

// RuleNames returns the span relation names in source order.
func (p *Program) RuleNames() []string {
	out := make([]string, len(p.Rules))
	for i, r := range p.Rules {
		out[i] = r.Name
	}
	return out
}

// candPred names rule i's synthesized candidate predicate in the node
// program (NodeProgram rejects the pathological source that defines
// the same name itself).
func candPred(i int) string { return fmt.Sprintf("spn%d<nodes>", i) }

// candidate names rule i's candidate predicate. A node part that is a
// single intensional predicate serves as its own candidate — a
// synthesized copy rule would double the linear engine's grounding
// time for nothing (EXT-SPAN). Every other shape (conjunction, bare
// EDB atom, empty ⇒ dom) gets the reserved spn<i>⟨nodes⟩ rule.
func (p *Program) candidate(i int) string {
	r := &p.Rules[i]
	if len(r.NodeAtoms) == 1 {
		for _, ur := range p.Node.Rules {
			if ur.Head.Pred == r.NodeAtoms[0] {
				return r.NodeAtoms[0]
			}
		}
	}
	return candPred(i)
}

// NodeProgram returns the monadic-datalog node part ready for the
// compile pipeline: the user's rules plus one synthesized rule
//
//	spn<i>⟨nodes⟩(X) :- <node atoms of rule i>.
//
// per span rule, and the candidate predicate names in rule order. The
// caller compiles it like any datalog program (TMNF, optimizer,
// grounding engine) with the candidate predicates among the visible
// roots; the Evaluator then reads their extensions back.
func (p *Program) NodeProgram() (*datalog.Program, []string, error) {
	np := &datalog.Program{Query: p.Node.Query}
	np.Rules = append(np.Rules, p.Node.Rules...)
	cands := make([]string, len(p.Rules))
	for i, r := range p.Rules {
		for _, ur := range p.Node.Rules {
			if ur.Head.Pred == candPred(i) {
				return nil, nil, fmt.Errorf("span: predicate %q is reserved for the compiler", candPred(i))
			}
		}
		cands[i] = p.candidate(i)
		if cands[i] != candPred(i) {
			continue // an existing intensional predicate serves directly
		}
		rule := datalog.Rule{Head: datalog.At(cands[i], datalog.V("X"))}
		if len(r.NodeAtoms) == 0 {
			rule.Body = append(rule.Body, datalog.At("dom", datalog.V("X")))
		}
		for _, pred := range r.NodeAtoms {
			rule.Body = append(rule.Body, datalog.At(pred, datalog.V("X")))
		}
		np.Rules = append(np.Rules, rule)
	}
	if err := np.Check(); err != nil {
		return nil, nil, fmt.Errorf("span: node program: %w", err)
	}
	return np, cands, nil
}

// ParseProgram parses a spanner program: '.'-terminated statements
// where any rule whose head has two or more arguments is a span rule
// and everything else (facts, unary rules, the ?- directive) is the
// monadic-datalog node part. Regex literals /.../ and quoted strings
// are opaque to statement splitting; % comments run to end of line.
func ParseProgram(src string) (*Program, error) {
	stmts, err := splitStatements(src)
	if err != nil {
		return nil, err
	}
	p := &Program{src: src}
	var dl []string
	for _, st := range stmts {
		span, err := maybeSpanRule(st)
		if err != nil {
			return nil, err
		}
		if span == nil {
			dl = append(dl, st.text)
			continue
		}
		for _, prev := range p.Rules {
			if prev.Name == span.Name {
				return nil, fmt.Errorf("span: line %d: duplicate span rule %q (one rule per span relation)", st.line, span.Name)
			}
		}
		p.Rules = append(p.Rules, *span)
	}
	if len(p.Rules) == 0 {
		return nil, fmt.Errorf("span: program has no span rules (a head needs a node variable plus at least one span variable; use lang datalog for node-only queries)")
	}
	node, err := datalog.ParseProgram(strings.Join(dl, "\n"))
	if err != nil {
		return nil, err
	}
	p.Node = node
	for _, r := range p.Rules {
		for _, ip := range node.Rules {
			if ip.Head.Pred == r.Name {
				return nil, fmt.Errorf("span: %q names both a span relation and a node predicate", r.Name)
			}
		}
	}
	return p, nil
}

// MustParseProgram is ParseProgram, panicking on error.
func MustParseProgram(src string) *Program {
	p, err := ParseProgram(src)
	if err != nil {
		panic(err)
	}
	return p
}

type stmt struct {
	text string
	line int
}

// splitStatements splits src into '.'-terminated statements. '%'
// comments, "..." strings and /.../ regex literals (recognized where a
// term may start: after '(' or ',') are opaque, so the '.' inside
// /\d+\.\d\d/ never terminates a statement.
func splitStatements(src string) ([]stmt, error) {
	var out []stmt
	line, start := 1, 0
	startLine := 1
	lastSig := byte(0) // last significant byte seen (term-start context)
	for i := 0; i < len(src); i++ {
		c := src[i]
		switch {
		case c == '\n':
			line++
		case c == '%':
			for i < len(src) && src[i] != '\n' {
				i++
			}
			line++
		case c == '"':
			i++
			for i < len(src) && src[i] != '"' {
				if src[i] == '\\' {
					i++
				}
				if i < len(src) && src[i] == '\n' {
					line++
				}
				i++
			}
			if i >= len(src) {
				return nil, fmt.Errorf("span: line %d: unterminated string", line)
			}
			lastSig = '"'
		case c == '/' && (lastSig == '(' || lastSig == ','):
			i++
			for i < len(src) && src[i] != '/' {
				if src[i] == '\\' {
					i++
				}
				if i < len(src) && src[i] == '\n' {
					line++
				}
				i++
			}
			if i >= len(src) {
				return nil, fmt.Errorf("span: line %d: unterminated regex literal", line)
			}
			lastSig = '/'
		case c == '.':
			text := strings.TrimSpace(src[start : i+1])
			if text != "." {
				out = append(out, stmt{text: text, line: startLine})
			}
			start = i + 1
			startLine = line
			lastSig = 0
		case c == ' ' || c == '\t' || c == '\r':
			// insignificant
		default:
			if strings.TrimSpace(src[start:i]) == "" {
				startLine = line
			}
			lastSig = c
		}
	}
	if rest := strings.TrimSpace(src[start:]); rest != "" {
		return nil, fmt.Errorf("span: line %d: statement missing terminating '.'", startLine)
	}
	return out, nil
}

// ---------------------------------------------------------------------
// Span-rule parsing.

type ruleParser struct {
	src  string
	pos  int
	line int
}

func (p *ruleParser) errf(format string, args ...any) error {
	return fmt.Errorf("span: line %d: %s", p.line, fmt.Sprintf(format, args...))
}

func (p *ruleParser) ws() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ' ' || c == '\t' || c == '\r' || c == '\n' {
			p.pos++
			continue
		}
		break
	}
}

func (p *ruleParser) eof() bool { p.ws(); return p.pos >= len(p.src) }

func (p *ruleParser) consume(c byte) bool {
	p.ws()
	if p.pos < len(p.src) && p.src[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

func isPredStart(c byte) bool { return c >= 'a' && c <= 'z' || c == '_' || c == '#' }
func isPredByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
		c == '_' || c == '#' || c == '\'' || c == '-' || c == '<' || c == '>'
}

func (p *ruleParser) ident() (string, bool) {
	p.ws()
	if p.pos >= len(p.src) || !isPredStart(p.src[p.pos]) {
		return "", false
	}
	start := p.pos
	for p.pos < len(p.src) && isPredByte(p.src[p.pos]) {
		p.pos++
	}
	return p.src[start:p.pos], true
}

// arg is one span-atom argument.
type arg struct {
	kind byte // 'V' variable, 'S' string, 'R' regex
	text string
}

func (p *ruleParser) arg() (arg, error) {
	p.ws()
	if p.pos >= len(p.src) {
		return arg{}, p.errf("expected an argument")
	}
	c := p.src[p.pos]
	switch {
	case c >= 'A' && c <= 'Z':
		start := p.pos
		for p.pos < len(p.src) && isPredByte(p.src[p.pos]) {
			p.pos++
		}
		return arg{kind: 'V', text: p.src[start:p.pos]}, nil
	case c == '"':
		p.pos++
		var sb strings.Builder
		for p.pos < len(p.src) && p.src[p.pos] != '"' {
			if p.src[p.pos] == '\\' && p.pos+1 < len(p.src) {
				p.pos++
			}
			sb.WriteByte(p.src[p.pos])
			p.pos++
		}
		if p.pos >= len(p.src) {
			return arg{}, p.errf("unterminated string")
		}
		p.pos++
		return arg{kind: 'S', text: sb.String()}, nil
	case c == '/':
		p.pos++
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] != '/' {
			if p.src[p.pos] == '\\' {
				p.pos++
			}
			p.pos++
		}
		if p.pos >= len(p.src) {
			return arg{}, p.errf("unterminated regex literal")
		}
		re := p.src[start:p.pos]
		p.pos++
		return arg{kind: 'R', text: re}, nil
	}
	return arg{}, p.errf("expected a variable, string or /regex/, got %q", c)
}

// atom parses name(args...).
func (p *ruleParser) atom() (string, []arg, error) {
	name, ok := p.ident()
	if !ok {
		return "", nil, p.errf("expected a predicate name")
	}
	if !p.consume('(') {
		return "", nil, p.errf("expected '(' after %s", name)
	}
	var args []arg
	for {
		a, err := p.arg()
		if err != nil {
			return "", nil, err
		}
		args = append(args, a)
		if p.consume(')') {
			return name, args, nil
		}
		if !p.consume(',') {
			return "", nil, p.errf("expected ',' or ')' in atom %s", name)
		}
	}
}

// maybeSpanRule parses st as a span rule, returning nil (no error)
// when its head is unary or it is a directive — those belong to the
// datalog node part.
func maybeSpanRule(st stmt) (*Rule, error) {
	p := &ruleParser{src: st.text, line: st.line}
	if p.eof() || !isPredStart(p.src[p.pos]) {
		return nil, nil // "?-" directive etc.
	}
	name, args, err := p.atom()
	if err != nil {
		// Not parseable as an atom head here; let the datalog parser
		// produce its own error for the statement.
		return nil, nil
	}
	if len(args) < 2 {
		return nil, nil
	}
	r := &Rule{Name: name}
	for i, a := range args {
		if a.kind != 'V' {
			return nil, p.errf("span rule %s: head arguments must be variables", name)
		}
		if i == 0 {
			r.NodeVar = a.text
		} else {
			r.HeadVars = append(r.HeadVars, a.text)
		}
	}
	if !p.consume(':') || !p.consume('-') {
		return nil, p.errf("span rule %s: expected ':-' after the head (span relations need a body)", name)
	}
	bound := map[string]bool{}
	needBound := func(an string, v string) error {
		if v == r.NodeVar {
			return p.errf("%s: %s is the node variable, not a span variable", an, v)
		}
		if !bound[v] {
			return p.errf("%s: span variable %s is used before it is bound (atoms evaluate left to right)", an, v)
		}
		return nil
	}
	bind := func(an, v string) error {
		if v == r.NodeVar {
			return p.errf("%s: cannot bind the node variable %s as a span", an, v)
		}
		if bound[v] {
			return p.errf("%s: span variable %s is bound twice", an, v)
		}
		bound[v] = true
		return nil
	}
	for {
		an, aargs, err := p.atom()
		if err != nil {
			return nil, err
		}
		switch an {
		case "text":
			if len(aargs) != 2 || aargs[0].kind != 'V' || aargs[1].kind != 'V' {
				return nil, p.errf("text takes (NodeVar, SpanVar)")
			}
			if aargs[0].text != r.NodeVar {
				return nil, p.errf("text: first argument must be the node variable %s", r.NodeVar)
			}
			if err := bind("text", aargs[1].text); err != nil {
				return nil, err
			}
			r.Steps = append(r.Steps, Step{Kind: StepText, Out: aargs[1].text})
		case "attr":
			if len(aargs) != 3 || aargs[0].kind != 'V' || aargs[1].kind != 'S' || aargs[2].kind != 'V' {
				return nil, p.errf(`attr takes (NodeVar, "name", SpanVar)`)
			}
			if aargs[0].text != r.NodeVar {
				return nil, p.errf("attr: first argument must be the node variable %s", r.NodeVar)
			}
			if err := bind("attr", aargs[2].text); err != nil {
				return nil, err
			}
			r.Steps = append(r.Steps, Step{Kind: StepAttr, Attr: aargs[1].text, Out: aargs[2].text})
		case "match":
			if len(aargs) < 2 || aargs[0].kind != 'V' || aargs[1].kind != 'R' {
				return nil, p.errf("match takes (SpanVar, /regex/, OutVar...)")
			}
			if err := needBound("match", aargs[0].text); err != nil {
				return nil, err
			}
			f, err := ParseFormula(aargs[1].text)
			if err != nil {
				return nil, fmt.Errorf("span: line %d: %w", st.line, err)
			}
			step := Step{Kind: StepMatch, Src: aargs[0].text, Re: f}
			for _, oa := range aargs[2:] {
				if oa.kind != 'V' {
					return nil, p.errf("match: capture outputs must be variables")
				}
				if err := bind("match", oa.text); err != nil {
					return nil, err
				}
				step.Outs = append(step.Outs, oa.text)
			}
			if len(step.Outs) != len(f.Vars) {
				return nil, p.errf("match: formula /%s/ has %d capture variables but %d output variables were given",
					f.Source(), len(f.Vars), len(step.Outs))
			}
			r.Steps = append(r.Steps, step)
		case "within", "before":
			if len(aargs) != 2 || aargs[0].kind != 'V' || aargs[1].kind != 'V' {
				return nil, p.errf("%s takes (SpanVar, SpanVar)", an)
			}
			for _, a := range aargs {
				if err := needBound(an, a.text); err != nil {
					return nil, err
				}
			}
			kind := StepWithin
			if an == "before" {
				kind = StepBefore
			}
			r.Steps = append(r.Steps, Step{Kind: kind, Src: aargs[0].text, Arg2: aargs[1].text})
		default:
			if len(aargs) != 1 || aargs[0].kind != 'V' {
				return nil, p.errf("node atom %s must be unary over the node variable", an)
			}
			if aargs[0].text != r.NodeVar {
				return nil, p.errf("node atom %s must apply to the node variable %s (one node per span rule)", an, r.NodeVar)
			}
			r.NodeAtoms = append(r.NodeAtoms, an)
		}
		if p.consume('.') {
			break
		}
		if !p.consume(',') {
			return nil, p.errf("expected ',' or '.' in the body of span rule %s", name)
		}
	}
	for _, hv := range r.HeadVars {
		if !bound[hv] {
			return nil, p.errf("span rule %s: head variable %s is never bound in the body", name, hv)
		}
	}
	if !p.eof() {
		return nil, p.errf("trailing input after span rule %s", name)
	}
	return r, nil
}
