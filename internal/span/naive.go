package span

// The reference matcher: a direct structural interpretation of the
// regex-formula AST, sharing no code with the Thompson construction or
// the feasibility-pruned DFS of vset.go. The differential fuzzer
// (TestDifferentialEngines' spanner arm) checks Auto.Enumerate against
// NaiveEnumerate on random formulas × random texts; RandomFormula
// generates the formulas.

import (
	"fmt"
	"math/rand"
	"sort"
)

// nres is one partial reference match: the end position reached and
// the capture marks bound so far (copy-on-bind, -1 = unbound).
type nres struct {
	end   int
	marks []int32
}

// NaiveEnumerate returns every distinct capture tuple over all
// substrings of text the formula matches — the reference semantics
// Auto.Enumerate must agree with. Tuples are [open0, close0, ...] in
// Vars order, sorted lexicographically. Exponential in the worst case;
// for tests only.
func (f *Formula) NaiveEnumerate(text string) [][]int32 {
	nm := 2 * len(f.Vars)
	seen := map[string]bool{}
	var out [][]int32
	base := make([]int32, nm)
	for i := range base {
		base[i] = -1
	}
	for pos := 0; pos <= len(text); pos++ {
		for _, r := range naiveFrom(f.root, text, pos, base) {
			key := fmt.Sprint(r.marks)
			if !seen[key] {
				seen[key] = true
				out = append(out, r.marks)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}

func naiveFrom(n reNode, text string, pos int, marks []int32) []nres {
	switch x := n.(type) {
	case reEmpty:
		return []nres{{end: pos, marks: marks}}
	case reClass:
		if pos < len(text) && x.cls.has(text[pos]) {
			return []nres{{end: pos + 1, marks: marks}}
		}
		return nil
	case reCat:
		frontier := []nres{{end: pos, marks: marks}}
		for _, sub := range x.subs {
			var next []nres
			for _, r := range frontier {
				next = append(next, naiveFrom(sub, text, r.end, r.marks)...)
			}
			frontier = dedupRes(next)
		}
		return frontier
	case reAlt:
		var out []nres
		for _, sub := range x.subs {
			out = append(out, naiveFrom(sub, text, pos, marks)...)
		}
		return dedupRes(out)
	case reStar:
		var out []nres
		if x.min == 0 {
			out = append(out, nres{end: pos, marks: marks})
		}
		frontier := []nres{{end: pos, marks: marks}}
		for len(frontier) > 0 {
			var next []nres
			for _, r := range frontier {
				// The body is non-nullable (checked at parse), so every
				// iteration strictly advances and this terminates.
				next = append(next, naiveFrom(x.sub, text, r.end, r.marks)...)
			}
			next = dedupRes(next)
			out = dedupRes(append(out, next...))
			frontier = next
		}
		return out
	case reCap:
		var out []nres
		for _, r := range naiveFrom(x.sub, text, pos, marks) {
			m := append([]int32(nil), r.marks...)
			m[2*x.v] = int32(pos)
			m[2*x.v+1] = int32(r.end)
			out = append(out, nres{end: r.end, marks: m})
		}
		return out
	}
	return nil
}

func dedupRes(rs []nres) []nres {
	seen := map[string]bool{}
	out := rs[:0]
	for _, r := range rs {
		key := fmt.Sprint(r.end, r.marks)
		if !seen[key] {
			seen[key] = true
			out = append(out, r)
		}
	}
	return out
}

// RandomFormula generates the source of a random valid regex formula
// with up to maxVars capture variables, for differential fuzzing. The
// result always parses: quantified subexpressions are generated
// variable-free and non-nullable, alternation branches variable-free,
// so the functional restrictions hold by construction.
func RandomFormula(rng *rand.Rand, maxVars int) string {
	g := &fgen{rng: rng, maxVars: maxVars}
	src := g.concat(2, true)
	if src == "" {
		src = g.atom(false)
	}
	return src
}

type fgen struct {
	rng     *rand.Rand
	maxVars int
	vars    int
	depth   int
}

// fgenMaxDepth bounds atom/concat recursion so generation terminates.
const fgenMaxDepth = 4

var fgenLits = []string{"a", "b", "0", "1", "\\$", "x", " "}
var fgenClasses = []string{"[ab]", "[01]", "\\d", "[a-z]", ".", "[^a]"}

// atom emits one quantifiable unit; nullable reports ε-matching.
func (g *fgen) atom(allowNullable bool) string {
	if g.depth >= fgenMaxDepth {
		return fgenLits[g.rng.Intn(len(fgenLits))]
	}
	g.depth++
	defer func() { g.depth-- }()
	switch g.rng.Intn(6) {
	case 0, 1:
		return fgenLits[g.rng.Intn(len(fgenLits))]
	case 2:
		return fgenClasses[g.rng.Intn(len(fgenClasses))]
	case 3: // alternation of two var-free branches
		return "(" + g.concat(1, false) + "|" + g.concat(1, false) + ")"
	case 4: // quantified var-free non-nullable body (lit/class only, so
		// no nested quantifier and no nullable star body)
		body := fgenLits[g.rng.Intn(len(fgenLits))]
		if g.rng.Intn(2) == 0 {
			body = fgenClasses[g.rng.Intn(len(fgenClasses))]
		}
		switch g.rng.Intn(3) {
		case 0:
			return body + "*"
		case 1:
			return body + "+"
		default:
			return body + "?"
		}
	default:
		return "(" + g.concat(1, false) + ")"
	}
}

// concat emits 1..depth+1 units; withVars may wrap units in captures.
func (g *fgen) concat(depth int, withVars bool) string {
	n := 1 + g.rng.Intn(depth+2)
	out := ""
	for i := 0; i < n; i++ {
		unit := g.atom(false)
		if withVars && g.vars < g.maxVars && g.rng.Intn(3) == 0 {
			unit = fmt.Sprintf("(?<v%d>%s)", g.vars, unit)
			g.vars++
		}
		out += unit
	}
	return out
}

// RandomText generates a short random text over the alphabet the
// random formulas use, so matches actually occur.
func RandomText(rng *rand.Rand, maxLen int) string {
	alpha := "ab01$x .z"
	n := rng.Intn(maxLen + 1)
	b := make([]byte, n)
	for i := range b {
		b[i] = alpha[rng.Intn(len(alpha))]
	}
	return string(b)
}
