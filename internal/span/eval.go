package span

// The span evaluator: given the node part's result relations (the
// candidate nodes per span rule, computed by the linear/bitmap engine)
// and a Source of per-node character data, run each rule's span steps
// over each candidate node and emit the span relations. Automata are
// compiled once per program (NewEvaluator); per-run scratch buffers
// are reused across nodes, so the hot loop is allocation-light.

import (
	"fmt"
	"sort"
)

// Source supplies per-node character data. Implementations exist for
// the immutable tree (document-order ids) and the live arena (arena
// ids), so span evaluation is representation-independent.
type Source interface {
	// NodeText returns the node's character data ("" when none).
	NodeText(id int) string
	// NodeAttr returns the value of attribute name on the node.
	NodeAttr(id int, name string) (string, bool)
}

// Span is one extracted string span. Start/End are byte offsets into
// the node's character data (for text-derived spans) or the attribute
// value (for attr-derived spans) — node-relative, so they survive
// arena Blob relocation under edits; Text is the spanned substring.
type Span struct {
	// Start and End delimit the span, half-open [Start, End).
	Start int `json:"start"`
	End   int `json:"end"`
	// Text is the spanned substring.
	Text string `json:"text"`
}

// Binding is one result row of a span relation: a node plus one span
// per head variable.
type Binding struct {
	// Node is the candidate node's id (document-order for tree runs,
	// arena id for live-document runs).
	Node int `json:"node"`
	// Spans holds one span per head variable, in Relation.Vars order.
	Spans []Span `json:"spans"`
}

// Relation is the extension of one span rule.
type Relation struct {
	// Name is the span relation's name (the rule head).
	Name string `json:"name"`
	// Vars names the head's span variables, aligning Binding.Spans.
	Vars []string `json:"vars"`
	// Rows are the result rows, sorted by node then span offsets.
	Rows []Binding `json:"rows"`
}

// Result is a spanner query's output: one Relation per span rule, in
// program order.
type Result []Relation

// Tuples counts the result rows across all relations.
func (r Result) Tuples() int {
	n := 0
	for _, rel := range r {
		n += len(rel.Rows)
	}
	return n
}

// Rel returns the relation with the given name, or nil.
func (r Result) Rel(name string) *Relation {
	for i := range r {
		if r[i].Name == name {
			return &r[i]
		}
	}
	return nil
}

// crule is one compiled span rule: slot-allocated variables and
// pre-compiled automata.
type crule struct {
	rule      Rule
	cand      string // candidate predicate in the node program
	nslots    int
	headSlots []int
	steps     []cstep
}

type cstep struct {
	kind StepKind
	out  int // slot bound by text/attr
	a, b int // input slots (match src / filter args)
	attr string
	auto *Auto
	outs []int // capture output slots (match)
}

// sval is one bound span variable: which source string it points into
// plus its offsets there.
type sval struct {
	src        int32 // index into the per-node source list
	start, end int32
}

// Evaluator is a prepared spanner program: compiled automata plus the
// node-candidate predicate names. Immutable and safe for concurrent
// use; Eval allocates its own scratch.
type Evaluator struct {
	rules []crule
}

// NewEvaluator compiles every span rule of p (slot allocation, vset
// automata for each match atom).
func NewEvaluator(p *Program) (*Evaluator, error) {
	e := &Evaluator{}
	for i, r := range p.Rules {
		cr := crule{rule: r, cand: p.candidate(i)}
		slots := map[string]int{}
		slot := func(v string) int {
			s, ok := slots[v]
			if !ok {
				s = len(slots)
				slots[v] = s
			}
			return s
		}
		for _, st := range r.Steps {
			cs := cstep{kind: st.Kind, attr: st.Attr}
			switch st.Kind {
			case StepText, StepAttr:
				cs.out = slot(st.Out)
			case StepMatch:
				cs.a = slots[st.Src]
				cs.auto = st.Re.Compile()
				for _, o := range st.Outs {
					cs.outs = append(cs.outs, slot(o))
				}
			case StepWithin, StepBefore:
				cs.a, cs.b = slots[st.Src], slots[st.Arg2]
			}
			cr.steps = append(cr.steps, cs)
		}
		for _, hv := range r.HeadVars {
			s, ok := slots[hv]
			if !ok {
				return nil, fmt.Errorf("span: rule %s: head variable %s has no slot", r.Name, hv)
			}
			cr.headSlots = append(cr.headSlots, s)
		}
		cr.nslots = len(slots)
		e.rules = append(e.rules, cr)
	}
	return e, nil
}

// CandidatePreds returns the node-program predicates whose extensions
// carry each rule's candidate nodes, in rule order (see
// Program.NodeProgram).
func (e *Evaluator) CandidatePreds() []string {
	out := make([]string, len(e.rules))
	for i := range e.rules {
		out[i] = e.rules[i].cand
	}
	return out
}

// Eval runs every span rule over its candidate nodes. nodes maps a
// candidate predicate name to its sorted node ids (typically
// db.UnarySet); src supplies the character data. The result has one
// relation per rule in program order, rows sorted and deduplicated.
func (e *Evaluator) Eval(src Source, nodes func(pred string) []int) Result {
	out := make(Result, len(e.rules))
	st := &evalState{}
	for i := range e.rules {
		cr := &e.rules[i]
		rel := Relation{Name: cr.rule.Name, Vars: cr.rule.HeadVars}
		cands := nodes(cr.cand)
		if len(cands) > 0 {
			// Most candidates yield at least one row; presizing saves
			// the doubling-growth copies on large extractions.
			rel.Rows = make([]Binding, 0, len(cands))
		}
		for _, id := range cands {
			st.reset(cr, id)
			st.step(src, 0, func() {
				rel.Rows = append(rel.Rows, st.row())
			})
		}
		rel.Rows = dedupRows(rel.Rows)
		out[i] = rel
	}
	return out
}

// evalState is the per-run walker for one rule instantiation.
type evalState struct {
	cr   *crule
	node int
	vals []sval
	srcs []string
	// scs holds one Scratch per step index: match atoms nest (the
	// outer Enumerate's DFS is live while the inner runs), so they
	// must not share buffers.
	scs []*Scratch
	// arena chunk-allocates Binding.Spans backing arrays: result rows
	// are numerous and tiny, so one make per row is pure GC pressure.
	// Chunks are never appended to after rows point into them.
	arena []Span
}

func (st *evalState) scratch(i int) *Scratch {
	for len(st.scs) <= i {
		st.scs = append(st.scs, NewScratch())
	}
	return st.scs[i]
}

func (st *evalState) reset(cr *crule, node int) {
	st.cr, st.node = cr, node
	if cap(st.vals) < cr.nslots {
		st.vals = make([]sval, cr.nslots)
	}
	st.vals = st.vals[:cr.nslots]
	st.srcs = st.srcs[:0]
}

// step evaluates the rule's steps from index i on, calling done for
// every complete instantiation (match atoms branch per tuple).
func (st *evalState) step(src Source, i int, done func()) {
	if i == len(st.cr.steps) {
		done()
		return
	}
	cs := &st.cr.steps[i]
	switch cs.kind {
	case StepText:
		s := src.NodeText(st.node)
		if s == "" {
			return
		}
		st.srcs = append(st.srcs, s)
		st.vals[cs.out] = sval{src: int32(len(st.srcs) - 1), end: int32(len(s))}
		st.step(src, i+1, done)
		st.srcs = st.srcs[:len(st.srcs)-1]
	case StepAttr:
		s, ok := src.NodeAttr(st.node, cs.attr)
		if !ok {
			return
		}
		st.srcs = append(st.srcs, s)
		st.vals[cs.out] = sval{src: int32(len(st.srcs) - 1), end: int32(len(s))}
		st.step(src, i+1, done)
		st.srcs = st.srcs[:len(st.srcs)-1]
	case StepMatch:
		in := st.vals[cs.a]
		content := st.srcs[in.src][in.start:in.end]
		cs.auto.Enumerate(content, st.scratch(i), func(marks []int32) {
			for j, o := range cs.outs {
				st.vals[o] = sval{src: in.src, start: in.start + marks[2*j], end: in.start + marks[2*j+1]}
			}
			st.step(src, i+1, done)
		})
	case StepWithin:
		a, b := st.vals[cs.a], st.vals[cs.b]
		if a.src == b.src && a.start >= b.start && a.end <= b.end {
			st.step(src, i+1, done)
		}
	case StepBefore:
		a, b := st.vals[cs.a], st.vals[cs.b]
		if a.src == b.src && a.end <= b.start {
			st.step(src, i+1, done)
		}
	}
}

func (st *evalState) row() Binding {
	k := len(st.cr.headSlots)
	if len(st.arena)+k > cap(st.arena) {
		c := 2 * cap(st.arena)
		if c < 64 {
			c = 64
		}
		if c > 4096 {
			c = 4096
		}
		if c < k {
			c = k
		}
		st.arena = make([]Span, 0, c)
	}
	m := len(st.arena)
	st.arena = st.arena[: m+k : cap(st.arena)]
	spans := st.arena[m : m+k : m+k]
	for i, s := range st.cr.headSlots {
		v := st.vals[s]
		spans[i] = Span{Start: int(v.start), End: int(v.end), Text: st.srcs[v.src][v.start:v.end]}
	}
	return Binding{Node: st.node, Spans: spans}
}

// dedupRows sorts rows by (node, spans) and removes duplicates —
// distinct step instantiations can project to the same head tuple.
// Candidates arrive node-ascending and the automaton scans starts left
// to right, so single-match-step rules usually emit in order already;
// the strictly-sorted prepass skips the sort (and the rebuild) then.
func dedupRows(rows []Binding) []Binding {
	sorted := true
	for i := 1; i < len(rows); i++ {
		if cmpRows(rows[i-1], rows[i]) >= 0 {
			sorted = false
			break
		}
	}
	if sorted {
		return rows
	}
	sort.Slice(rows, func(i, j int) bool { return cmpRows(rows[i], rows[j]) < 0 })
	out := rows[:0]
	for i, r := range rows {
		if i > 0 && cmpRows(rows[i-1], r) == 0 {
			continue
		}
		out = append(out, r)
	}
	return out
}

func cmpRows(a, b Binding) int {
	if a.Node != b.Node {
		if a.Node < b.Node {
			return -1
		}
		return 1
	}
	for i := range a.Spans {
		x, y := a.Spans[i], b.Spans[i]
		if x.Start != y.Start {
			if x.Start < y.Start {
				return -1
			}
			return 1
		}
		if x.End != y.End {
			if x.End < y.End {
				return -1
			}
			return 1
		}
		// Same offsets in different sources (text vs attr) can carry
		// different text.
		if x.Text != y.Text {
			if x.Text < y.Text {
				return -1
			}
			return 1
		}
	}
	return 0
}
