package span

// The variable-set automaton (vset automaton): a Thompson NFA whose
// ε-like edges include variable-open / variable-close markers. One
// accepting run over a substring yields one tuple of capture spans;
// Enumerate produces EVERY tuple for EVERY matching substring — the
// all-matches semantics of document spanners, not leftmost-longest.
//
// Enumeration is a DFS over (state, position) configurations pruned by
// a backward feasibility pass: useful[pos] is the bitset of states from
// which some accepting configuration is reachable using the remaining
// text, computed right-to-left in O(len · edges) before the DFS starts,
// so the DFS never walks a doomed branch. Two literal prefilters —
// a mandatory substring every match contains and a literal prefix
// every match starts with — skip non-matching sources without touching
// the DP at all, which is what makes the compiled path beat per-node
// Go-regex post-processing on selective extractions (EXT-SPAN).

import (
	"fmt"
	"math/bits"
	"strings"
)

const (
	eEps uint8 = iota
	eOpen
	eClose
	eByte
)

type edge struct {
	kind uint8
	v    int32 // variable index (eOpen / eClose)
	cls  int32 // class index (eByte)
	to   int32
}

type charEdge struct{ from, to, cls int32 }

// Auto is a compiled variable-set automaton. Immutable and safe for
// concurrent use; per-run state lives in a Scratch.
type Auto struct {
	edges   [][]edge
	classes []class
	revEps  [][]int32 // reverse ε/open/close adjacency (for the DP)
	chars   []charEdge
	start   int32
	accept  int32
	nvars   int

	// backClosure[s] is the bitset of states with a non-consuming path
	// to s (s included), so the DP's backward ε-closure is a single
	// union pass instead of a worklist fixpoint.
	backClosure [][]uint64

	// startLit is a literal prefix every match starts with ("" if
	// none): candidate start positions are found by substring scan.
	startLit string
	// mustLit is a literal substring every match contains ("" if
	// none): sources without it are skipped in O(len) with no DP.
	mustLit string
}

// NumStates returns the automaton's state count (for tests and
// explain output).
func (a *Auto) NumStates() int { return len(a.edges) }

// Compile builds (and memoizes) the formula's vset automaton.
func (f *Formula) Compile() *Auto {
	if f.auto == nil {
		f.auto = compileAuto(f)
	}
	return f.auto
}

type autoBuilder struct {
	edges   [][]edge
	classes []class
	clsIdx  map[class]int32
}

func (b *autoBuilder) state() int32 {
	b.edges = append(b.edges, nil)
	return int32(len(b.edges) - 1)
}

func (b *autoBuilder) add(from int32, e edge) { b.edges[from] = append(b.edges[from], e) }

func (b *autoBuilder) classIdx(c class) int32 {
	if i, ok := b.clsIdx[c]; ok {
		return i
	}
	i := int32(len(b.classes))
	b.classes = append(b.classes, c)
	b.clsIdx[c] = i
	return i
}

// build returns the fragment's (start, end) states; end has no
// outgoing edges yet (standard Thompson shape).
func (b *autoBuilder) build(n reNode) (int32, int32) {
	switch x := n.(type) {
	case reEmpty:
		s, e := b.state(), b.state()
		b.add(s, edge{kind: eEps, to: e})
		return s, e
	case reClass:
		s, e := b.state(), b.state()
		b.add(s, edge{kind: eByte, cls: b.classIdx(x.cls), to: e})
		return s, e
	case reCat:
		s, e := b.build(x.subs[0])
		for _, sub := range x.subs[1:] {
			s2, e2 := b.build(sub)
			b.add(e, edge{kind: eEps, to: s2})
			e = e2
		}
		return s, e
	case reAlt:
		s, e := b.state(), b.state()
		for _, sub := range x.subs {
			si, ei := b.build(sub)
			b.add(s, edge{kind: eEps, to: si})
			b.add(ei, edge{kind: eEps, to: e})
		}
		return s, e
	case reStar:
		s, e := b.state(), b.state()
		si, ei := b.build(x.sub)
		b.add(s, edge{kind: eEps, to: si})
		b.add(ei, edge{kind: eEps, to: si}) // loop (body is non-nullable, so no ε-cycle)
		b.add(ei, edge{kind: eEps, to: e})
		if x.min == 0 {
			b.add(s, edge{kind: eEps, to: e})
		}
		return s, e
	case reCap:
		s, e := b.state(), b.state()
		si, ei := b.build(x.sub)
		b.add(s, edge{kind: eOpen, v: int32(x.v), to: si})
		b.add(ei, edge{kind: eClose, v: int32(x.v), to: e})
		return s, e
	}
	panic("span: unknown regex node")
}

func compileAuto(f *Formula) *Auto {
	b := &autoBuilder{clsIdx: map[class]int32{}}
	start, accept := b.build(f.root)
	a := &Auto{
		edges:   b.edges,
		classes: b.classes,
		start:   start,
		accept:  accept,
		nvars:   len(f.Vars),
	}
	a.revEps = make([][]int32, len(a.edges))
	for from, es := range a.edges {
		for _, e := range es {
			if e.kind == eByte {
				a.chars = append(a.chars, charEdge{from: int32(from), to: e.to, cls: e.cls})
			} else {
				a.revEps[e.to] = append(a.revEps[e.to], int32(from))
			}
		}
	}
	if cyclicEps(a) {
		// Unreachable after checkStars; a defensive panic beats silent
		// non-termination in the DFS.
		panic(fmt.Sprintf("span: ε-cycle in automaton for /%s/", f.src))
	}
	a.buildBackClosure()
	pfx, _ := litPrefix(f.root)
	a.startLit = pfx
	a.mustLit = mustLit(f.root)
	if a.mustLit == "" {
		a.mustLit = a.startLit
	}
	return a
}

// buildBackClosure computes the transitive backward closure of the
// non-consuming edge graph as per-state bitmasks (compile-time
// fixpoint; the graph is a DAG, so it converges in depth passes).
func (a *Auto) buildBackClosure() {
	words := (len(a.edges) + 63) / 64
	a.backClosure = make([][]uint64, len(a.edges))
	for s := range a.backClosure {
		m := make([]uint64, words)
		m[s>>6] |= 1 << (s & 63)
		a.backClosure[s] = m
	}
	for changed := true; changed; {
		changed = false
		for s, preds := range a.revEps {
			m := a.backClosure[s]
			for _, p := range preds {
				for w, word := range a.backClosure[p] {
					if m[w]|word != m[w] {
						m[w] |= word
						changed = true
					}
				}
			}
		}
	}
}

// cyclicEps reports whether the non-consuming edge graph has a cycle
// (DFS three-coloring).
func cyclicEps(a *Auto) bool {
	color := make([]byte, len(a.edges))
	var visit func(s int32) bool
	visit = func(s int32) bool {
		color[s] = 1
		for _, e := range a.edges[s] {
			if e.kind == eByte {
				continue
			}
			switch color[e.to] {
			case 1:
				return true
			case 0:
				if visit(e.to) {
					return true
				}
			}
		}
		color[s] = 2
		return false
	}
	for s := range a.edges {
		if color[s] == 0 && visit(int32(s)) {
			return true
		}
	}
	return false
}

// litPrefix returns a literal string every match of n starts with, and
// whether n matches exactly that string and nothing else.
func litPrefix(n reNode) (string, bool) {
	switch x := n.(type) {
	case reEmpty:
		return "", true
	case reClass:
		if b := x.cls.single(); b >= 0 {
			return string([]byte{byte(b)}), true
		}
		return "", false
	case reCat:
		var sb strings.Builder
		for _, sub := range x.subs {
			p, exact := litPrefix(sub)
			sb.WriteString(p)
			if !exact {
				return sb.String(), false
			}
		}
		return sb.String(), true
	case reAlt:
		p0, e0 := litPrefix(x.subs[0])
		for _, sub := range x.subs[1:] {
			p, e := litPrefix(sub)
			if !e || !e0 || p != p0 {
				// Fall back to the longest common prefix of the branch
				// prefixes (still a valid start-literal).
				n := 0
				for n < len(p) && n < len(p0) && p[n] == p0[n] {
					n++
				}
				p0, e0 = p0[:n], false
			}
		}
		return p0, e0
	case reStar:
		if x.min >= 1 {
			p, _ := litPrefix(x.sub)
			return p, false
		}
		return "", false
	case reCap:
		return litPrefix(x.sub)
	}
	return "", false
}

// mustLit returns the longest literal substring every match of n is
// guaranteed to contain ("" when there is none).
func mustLit(n reNode) string {
	switch x := n.(type) {
	case reEmpty:
		return ""
	case reClass:
		if b := x.cls.single(); b >= 0 {
			return string([]byte{byte(b)})
		}
		return ""
	case reCat:
		// Merge maximal runs of exact-literal children; a non-exact
		// child breaks the run but contributes its own mandatory
		// substring.
		best, run := "", ""
		flush := func() {
			if len(run) > len(best) {
				best = run
			}
			run = ""
		}
		for _, sub := range x.subs {
			p, exact := litPrefix(sub)
			if exact {
				run += p
				continue
			}
			flush()
			if m := mustLit(sub); len(m) > len(best) {
				best = m
			}
		}
		flush()
		return best
	case reAlt:
		m0 := mustLit(x.subs[0])
		for _, sub := range x.subs[1:] {
			if m0 == "" || mustLit(sub) != m0 {
				return ""
			}
		}
		return m0
	case reStar:
		if x.min >= 1 {
			return mustLit(x.sub)
		}
		return ""
	case reCap:
		return mustLit(x.sub)
	}
	return ""
}

// ---------------------------------------------------------------------
// Enumeration.

// Scratch holds the per-run buffers of Enumerate so a caller scanning
// many sources (one per node) allocates them once. Not safe for
// concurrent use; one Scratch per goroutine.
type Scratch struct {
	useful []uint64 // (len+1) rows × words bitset
	words  int
	marks  []int32
	// seen dedups emitted tuples. Small runs use the flat list
	// (zero-alloc linear scan); past seenFlatMax it spills into the map.
	seenFlat []int32
	seenMap  map[string]struct{}
	keyBuf   []byte
}

const seenFlatMax = 32

// NewScratch returns an empty scratch buffer.
func NewScratch() *Scratch { return &Scratch{} }

func (sc *Scratch) bit(pos int, st int32) bool {
	w := pos*sc.words + int(st>>6)
	return sc.useful[w]&(1<<(st&63)) != 0
}

func (sc *Scratch) setBit(row []uint64, st int32) { row[st>>6] |= 1 << (st & 63) }

// seenTuple records marks and reports whether they were already
// emitted this run. nm = len(marks).
func (sc *Scratch) seenTuple(marks []int32) bool {
	nm := len(marks)
	if sc.seenMap == nil {
		n := len(sc.seenFlat) / max(nm, 1)
		if nm == 0 {
			// A variable-free formula has exactly one (empty) tuple.
			if n == 0 || len(sc.seenFlat) == 0 {
				sc.seenFlat = append(sc.seenFlat, -1)
				return false
			}
			return true
		}
	outer:
		for i := 0; i < n; i++ {
			row := sc.seenFlat[i*nm : (i+1)*nm]
			for j, m := range marks {
				if row[j] != m {
					continue outer
				}
			}
			return true
		}
		if n < seenFlatMax {
			sc.seenFlat = append(sc.seenFlat, marks...)
			return false
		}
		// Spill to the map.
		sc.seenMap = make(map[string]struct{}, n*2)
		for i := 0; i < n; i++ {
			sc.seenMap[sc.tupleKey(sc.seenFlat[i*nm:(i+1)*nm])] = struct{}{}
		}
	}
	k := sc.tupleKey(marks)
	if _, ok := sc.seenMap[k]; ok {
		return true
	}
	sc.seenMap[k] = struct{}{}
	return false
}

func (sc *Scratch) tupleKey(marks []int32) string {
	sc.keyBuf = sc.keyBuf[:0]
	for _, m := range marks {
		sc.keyBuf = append(sc.keyBuf, byte(m), byte(m>>8), byte(m>>16), byte(m>>24))
	}
	return string(sc.keyBuf)
}

// Enumerate calls emit once per distinct capture tuple over all
// substrings of text the automaton matches. marks holds byte offsets
// into text as [open0, close0, open1, close1, ...] in Formula.Vars
// order; it is reused across calls — copy before retaining. A
// variable-free automaton emits at most one empty tuple (match
// existence). sc may be nil (a fresh scratch is allocated).
func (a *Auto) Enumerate(text string, sc *Scratch, emit func(marks []int32)) {
	if a.mustLit != "" && !strings.Contains(text, a.mustLit) {
		return
	}
	if sc == nil {
		sc = NewScratch()
	}
	sc.seenFlat = sc.seenFlat[:0]
	sc.seenMap = nil
	if cap(sc.marks) < 2*a.nvars {
		sc.marks = make([]int32, 2*a.nvars)
	}
	sc.marks = sc.marks[:2*a.nvars]

	// Backward feasibility: useful[pos] = states from which an
	// accepting configuration is reachable with text[pos:].
	n := len(text)
	words := (len(a.edges) + 63) / 64
	sc.words = words
	need := (n + 1) * words
	if cap(sc.useful) < need {
		sc.useful = make([]uint64, need)
	} else {
		sc.useful = sc.useful[:need]
	}
	if words == 1 {
		// Single-word fast path: each row is computed into a register
		// and stored whole, so the reused buffer needs no clearing and
		// the ε-closure is a popcount-bounded mask union.
		acceptBit := uint64(1) << (a.accept & 63)
		sc.useful[n] = a.closeWord(acceptBit)
		for pos := n - 1; pos >= 0; pos-- {
			r := acceptBit
			next := sc.useful[pos+1]
			c := text[pos]
			for _, ce := range a.chars {
				if next&(1<<(ce.to&63)) != 0 && a.classes[ce.cls].has(c) {
					r |= 1 << (ce.from & 63)
				}
			}
			sc.useful[pos] = a.closeWord(r)
		}
	} else {
		clear(sc.useful)
		row := sc.useful[n*words : (n+1)*words]
		sc.setBit(row, a.accept)
		a.epsBack(row)
		for pos := n - 1; pos >= 0; pos-- {
			row := sc.useful[pos*words : (pos+1)*words]
			next := sc.useful[(pos+1)*words : (pos+2)*words]
			sc.setBit(row, a.accept)
			c := text[pos]
			for _, ce := range a.chars {
				if next[ce.to>>6]&(1<<(ce.to&63)) != 0 && a.classes[ce.cls].has(c) {
					row[ce.from>>6] |= 1 << (ce.from & 63)
				}
			}
			a.epsBack(row)
		}
	}

	// Candidate starts: occurrences of the literal prefix, or every
	// position (n inclusive: the empty suffix can still match ε-only
	// formulas — excluded by construction but harmless).
	if a.startLit != "" {
		for from := 0; from <= n-len(a.startLit); {
			i := strings.Index(text[from:], a.startLit)
			if i < 0 {
				break
			}
			a.dfs(text, a.start, from+i, sc, emit)
			from += i + 1
		}
		return
	}
	for pos := 0; pos <= n; pos++ {
		a.dfs(text, a.start, pos, sc, emit)
	}
}

// epsBack closes row backward over the non-consuming edges (if s is in
// the set, every ε/open/close predecessor of s joins it). One pass
// over the set bits suffices: backClosure is transitive, so any bit a
// union adds already carries its own closure.
func (a *Auto) epsBack(row []uint64) {
	for w := range row {
		word := row[w]
		base := w << 6
		for word != 0 {
			s := base + bits.TrailingZeros64(word)
			word &= word - 1
			for i, m := range a.backClosure[s] {
				row[i] |= m
			}
		}
	}
}

// closeWord is epsBack for automata that fit in one word (≤64 states,
// the common case) — branch-free enough to sit in the DP's inner loop.
func (a *Auto) closeWord(r uint64) uint64 {
	acc := r
	for r != 0 {
		s := bits.TrailingZeros64(r)
		r &= r - 1
		acc |= a.backClosure[s][0]
	}
	return acc
}

func (a *Auto) dfs(text string, st int32, pos int, sc *Scratch, emit func([]int32)) {
	if !sc.bit(pos, st) {
		return
	}
	if st == a.accept {
		if !sc.seenTuple(sc.marks) {
			emit(sc.marks)
		}
	}
	for _, e := range a.edges[st] {
		switch e.kind {
		case eEps:
			a.dfs(text, e.to, pos, sc, emit)
		case eOpen:
			old := sc.marks[2*e.v]
			sc.marks[2*e.v] = int32(pos)
			a.dfs(text, e.to, pos, sc, emit)
			sc.marks[2*e.v] = old
		case eClose:
			old := sc.marks[2*e.v+1]
			sc.marks[2*e.v+1] = int32(pos)
			a.dfs(text, e.to, pos, sc, emit)
			sc.marks[2*e.v+1] = old
		case eByte:
			if pos < len(text) && a.classes[e.cls].has(text[pos]) {
				a.dfs(text, e.to, pos+1, sc, emit)
			}
		}
	}
}
