package span

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func tuples(f *Formula, text string) [][]int32 {
	a := f.Compile()
	sc := NewScratch()
	var out [][]int32
	a.Enumerate(text, sc, func(marks []int32) {
		cp := make([]int32, len(marks))
		copy(cp, marks)
		out = append(out, cp)
	})
	return sortTuples(out)
}

func sortTuples(ts [][]int32) [][]int32 {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && lessTuple(ts[j], ts[j-1]); j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
	return ts
}

func lessTuple(a, b []int32) bool {
	for k := range a {
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return false
}

func TestFormulaBasic(t *testing.T) {
	f := MustParseFormula(`\$(?<amt>\d+\.\d\d)`)
	if got := f.Vars; !reflect.DeepEqual(got, []string{"amt"}) {
		t.Fatalf("vars = %v", got)
	}
	got := tuples(f, "price $3.50 or $10.25")
	want := [][]int32{{7, 11}, {16, 21}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tuples = %v, want %v", got, want)
	}
}

func TestFormulaAllMatches(t *testing.T) {
	// All-matches semantics: every substring match counts, not just
	// leftmost-longest. a+ over "aaa" yields all 6 nonempty spans.
	f := MustParseFormula(`(?<x>a+)`)
	got := tuples(f, "aaa")
	want := [][]int32{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tuples = %v, want %v", got, want)
	}
}

func TestFormulaNoVars(t *testing.T) {
	// A var-free formula acts as a boolean filter: one empty tuple if
	// any substring matches, none otherwise.
	f := MustParseFormula(`ab`)
	if got := tuples(f, "xxabyy"); len(got) != 1 || len(got[0]) != 0 {
		t.Fatalf("tuples = %v, want one empty tuple", got)
	}
	if got := tuples(f, "xxayy"); len(got) != 0 {
		t.Fatalf("tuples = %v, want none", got)
	}
}

func TestFormulaTwoVars(t *testing.T) {
	f := MustParseFormula(`(?<k>[a-z]+)=(?<v>\d+)`)
	got := f.NaiveEnumerate("a=1 bc=23")
	auto := tuples(f, "a=1 bc=23")
	if !reflect.DeepEqual(got, auto) {
		t.Fatalf("naive %v != auto %v", got, auto)
	}
	// The maximal matches must be present.
	found := false
	for _, tu := range auto {
		if reflect.DeepEqual(tu, []int32{4, 6, 7, 9}) {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing bc=23 tuple in %v", auto)
	}
}

func TestFormulaErrors(t *testing.T) {
	cases := []string{
		`(?<x>a)(?<x>b)`, // duplicate variable
		`((?<x>a)|b)`,    // variable in one alternation branch only
		`((?<x>a))*`,     // variable under a star
		`(a?)*`,          // nullable star body
		`(?<x>a`,         // unterminated group
		`[a-`,            // unterminated class
		`a{3,1}`,         // inverted bound
		`(?<x>a){2}`,     // variable under a bound
	}
	for _, src := range cases {
		if _, err := ParseFormula(src); err == nil {
			t.Errorf("ParseFormula(%q): want error", src)
		}
	}
}

func TestFormulaQuantifiers(t *testing.T) {
	for _, tc := range []struct {
		src, text string
		want      int // distinct tuples
	}{
		{`(?<x>ab{2,3}c)`, "abbc abbbc abc", 2},
		{`(?<x>a?b)`, "ab", 2},     // "ab" and "b"
		{`(?<x>(ab)+)`, "abab", 3}, // ab(0,2), ab(2,4), abab(0,4)
		{`(?<x>\d{3})`, "12345", 3},
	} {
		got := tuples(MustParseFormula(tc.src), tc.text)
		if len(got) != tc.want {
			t.Errorf("%s over %q: %d tuples %v, want %d", tc.src, tc.text, len(got), got, tc.want)
		}
	}
}

func TestAutoAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 300; i++ {
		src := RandomFormula(rng, 3)
		f, err := ParseFormula(src)
		if err != nil {
			t.Fatalf("RandomFormula produced invalid %q: %v", src, err)
		}
		text := RandomText(rng, 12)
		naive := f.NaiveEnumerate(text)
		auto := tuples(f, text)
		if len(naive) == 0 && len(auto) == 0 {
			continue
		}
		if !reflect.DeepEqual(naive, auto) {
			t.Fatalf("formula %q text %q: naive %v != auto %v", src, text, naive, auto)
		}
	}
}

func TestLiteralPrefilters(t *testing.T) {
	f := MustParseFormula(`\$(?<amt>\d+)`)
	a := f.Compile()
	if a.startLit == "" || !strings.HasPrefix(a.startLit, "$") {
		t.Errorf("startLit = %q, want $-prefix", a.startLit)
	}
	// mustLit lets Enumerate skip texts without the literal entirely.
	if got := tuples(f, strings.Repeat("no dollars here ", 10)); len(got) != 0 {
		t.Fatalf("unexpected matches %v", got)
	}
}

func TestProgramParse(t *testing.T) {
	p := MustParseProgram(`
		% find prices in table cells
		cell(X) :- label_td(Y), firstchild(Y, X), label_#text(X).
		price(X, A) :- cell(X), text(X, S), match(S, /\$(?<amt>\d+\.\d\d)/, A).
	`)
	if got := p.RuleNames(); !reflect.DeepEqual(got, []string{"price"}) {
		t.Fatalf("rules = %v", got)
	}
	np, cands, err := p.NodeProgram()
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 {
		t.Fatalf("cands = %v", cands)
	}
	if !strings.Contains(np.String(), "cell(") {
		t.Fatalf("node program lost user rules:\n%s", np.String())
	}
}

func TestProgramParseErrors(t *testing.T) {
	cases := []struct{ src, frag string }{
		{`p(X, A) :- text(X, S).`, "head variable"},
		{`p(X, A) :- text(X, S), match(S, /(?<a>\d)(?<b>\d)/, A).`, "capture variables"},
		{`p(X, A) :- match(S, /(?<a>\d)/, A).`, "before it is bound"},
		{`p(X, A) :- text(X, S), match(S, /(?<a>[/, A).`, "unterminated character class"},
		{`q(X) :- dom(X).`, "span rule"},
		{`p(X, A) :- text(X, S), match(S, /(?<a>\d)/, A). p(X, B) :- text(X, S), match(S, /(?<b>\w)/, B).`, "duplicate"},
	}
	for _, tc := range cases {
		_, err := ParseProgram(tc.src)
		if err == nil {
			t.Errorf("ParseProgram(%q): want error containing %q", tc.src, tc.frag)
			continue
		}
		if !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("ParseProgram(%q): error %q, want substring %q", tc.src, err, tc.frag)
		}
	}
}

// mapSource backs evaluator tests with explicit per-node data.
type mapSource struct {
	text  map[int]string
	attrs map[int]map[string]string
}

func (m mapSource) NodeText(id int) string { return m.text[id] }
func (m mapSource) NodeAttr(id int, name string) (string, bool) {
	v, ok := m.attrs[id][name]
	return v, ok
}

func TestEvaluator(t *testing.T) {
	p := MustParseProgram(`
		price(X, A) :- text(X, S), match(S, /\$(?<amt>\d+\.\d\d)/, A).
		link(X, U) :- attr(X, "href", S), match(S, /(?<u>.+)/, U).
	`)
	ev, err := NewEvaluator(p)
	if err != nil {
		t.Fatal(err)
	}
	src := mapSource{
		text: map[int]string{1: "price $3.50", 2: "free", 3: ""},
		attrs: map[int]map[string]string{
			2: {"href": "http://x"},
		},
	}
	res := ev.Eval(src, func(pred string) []int { return []int{1, 2, 3} })
	price := res.Rel("price")
	if price == nil || len(price.Rows) != 1 {
		t.Fatalf("price rows = %+v", res)
	}
	row := price.Rows[0]
	if row.Node != 1 || row.Spans[0].Text != "3.50" || row.Spans[0].Start != 7 {
		t.Fatalf("price row = %+v", row)
	}
	link := res.Rel("link")
	if link == nil || len(link.Rows) == 0 || link.Rows[0].Node != 2 {
		t.Fatalf("link rows = %+v", link)
	}
	// .+ is all-matches: every nonempty substring of "http://x".
	full := false
	for _, r := range link.Rows {
		if r.Spans[0].Text == "http://x" {
			full = true
		}
	}
	if !full {
		t.Fatalf("missing full-value span in %+v", link.Rows)
	}
	if res.Tuples() != len(price.Rows)+len(link.Rows) {
		t.Fatalf("Tuples = %d", res.Tuples())
	}
}

func TestEvaluatorFilters(t *testing.T) {
	p := MustParseProgram(`
		pair(X, K, V) :- text(X, S), match(S, /(?<k>[a-z]+)=(?<v>\d+)/, K, V),
			match(S, /(?<w>[a-z]+=\d+)/, W), within(K, W), before(K, V).
	`)
	ev, err := NewEvaluator(p)
	if err != nil {
		t.Fatal(err)
	}
	src := mapSource{text: map[int]string{1: "ab=12"}}
	res := ev.Eval(src, func(string) []int { return []int{1} })
	rows := res.Rel("pair").Rows
	want := Binding{Node: 1, Spans: []Span{{0, 2, "ab"}, {3, 5, "12"}}}
	found := false
	for _, r := range rows {
		if reflect.DeepEqual(r, want) {
			found = true
		}
	}
	if !found {
		t.Fatalf("rows = %+v, want to contain %+v", rows, want)
	}
	for _, r := range rows {
		if r.Spans[0].End > r.Spans[1].Start {
			t.Fatalf("before() violated in %+v", r)
		}
	}
}

func TestEvaluatorDedup(t *testing.T) {
	// Two distinct W instantiations project to the same (K) tuple; rows
	// must dedup.
	p := MustParseProgram(`
		k(X, K) :- text(X, S), match(S, /(?<k>ab)/, K), match(S, /(?<w>.)/, W).
	`)
	ev, err := NewEvaluator(p)
	if err != nil {
		t.Fatal(err)
	}
	src := mapSource{text: map[int]string{1: "xaby"}}
	res := ev.Eval(src, func(string) []int { return []int{1} })
	if rows := res.Rel("k").Rows; len(rows) != 1 {
		t.Fatalf("rows = %+v, want 1 after dedup", rows)
	}
}

func TestRandomFormulaAlwaysParses(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		src := RandomFormula(rng, 4)
		if _, err := ParseFormula(src); err != nil {
			t.Fatalf("RandomFormula #%d %q: %v", i, src, err)
		}
	}
}

func BenchmarkEnumerate(b *testing.B) {
	f := MustParseFormula(`\$(?<amt>[0-9]+\.[0-9][0-9])`)
	a := f.Compile()
	sc := NewScratch()
	text := strings.Repeat("filler text without prices ", 20) + "total $123.45 due"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		a.Enumerate(text, sc, func([]int32) { n++ })
		if n != 1 {
			b.Fatal(n)
		}
	}
}

func ExampleFormula() {
	f := MustParseFormula(`\$(?<amt>\d+\.\d\d)`)
	sc := NewScratch()
	f.Compile().Enumerate("pay $9.99 now", sc, func(marks []int32) {
		fmt.Println(marks[0], marks[1])
	})
	// Output: 5 9
}
