// Package span implements document spanners: regex formulas (regular
// expressions with capture variables, Maturana–Riveros–Vrgoč) compiled
// to variable-set automata and run over the per-node character data of
// a tree — the text and attribute values the PR 2 arena already stores
// as offset spans into one immutable Blob string. A spanner program
// (see ParseProgram) combines ordinary monadic datalog over τ_ur,
// which selects the candidate nodes, with span rules whose primitives
// (text, attr, match, within, before) produce span relations
// (start, end) — logically an EDB extension of τ_ur, operationally
// evaluated lazily per matched node.
//
// Soundness restrictions (all checked at parse time, see DESIGN.md
// §Spanners): formulas are functional — every capture variable is
// bound exactly once on every accepting path, so capture variables may
// not occur under *, +, ? or {m,n}, and every branch of an alternation
// must bind the same variable set — and starred subexpressions must
// not match the empty string, which keeps the Thompson construction
// free of ε-cycles and match enumeration finite.
package span

import (
	"fmt"
	"strings"
)

// class is a 256-bit byte-class bitmap. Formulas match byte-wise:
// multi-byte UTF-8 sequences are matched as their literal bytes, and
// '.' matches any byte except '\n'.
type class [4]uint64

func (c *class) set(b byte)      { c[b>>6] |= 1 << (b & 63) }
func (c *class) has(b byte) bool { return c[b>>6]&(1<<(b&63)) != 0 }

func (c *class) negate() {
	for i := range c {
		c[i] = ^c[i]
	}
}

func (c *class) union(o class) {
	for i := range c {
		c[i] |= o[i]
	}
}

// single returns the unique byte of a singleton class, or -1.
func (c *class) single() int {
	found := -1
	for b := 0; b < 256; b++ {
		if c.has(byte(b)) {
			if found >= 0 {
				return -1
			}
			found = b
		}
	}
	return found
}

// reNode is one regex-formula AST node.
type reNode interface{ isRE() }

type reEmpty struct{}            // ε
type reClass struct{ cls class } // one byte from a class
type reCat struct{ subs []reNode }
type reAlt struct{ subs []reNode }
type reStar struct {
	sub reNode
	min int // 0 for e*, 1 for e+
}
type reCap struct {
	v   int // index into Formula.Vars
	sub reNode
}

func (reEmpty) isRE() {}
func (reClass) isRE() {}
func (reCat) isRE()   {}
func (reAlt) isRE()   {}
func (reStar) isRE()  {}
func (reCap) isRE()   {}

// Formula is a parsed, validated regex formula ready for compilation
// to a variable-set automaton (Compile) or reference evaluation
// (NaiveEnumerate). Immutable after ParseFormula.
type Formula struct {
	// Vars lists the capture-variable names in order of appearance —
	// the positional binding order of a match(...) span atom.
	Vars []string

	src  string
	root reNode
	auto *Auto // compiled on demand by Compile, memoized
}

// Source returns the formula's source text.
func (f *Formula) Source() string { return f.src }

// ParseFormula parses and validates one regex formula. The syntax is
// the usual byte-oriented regex core — literals, '.', escapes
// (\d \w \s \D \W \S and \<metachar>), classes [a-z0-9] / [^...],
// alternation '|', grouping '(...)' (non-capturing), quantifiers
// * + ? {m} {m,n} {m,} — plus named capture variables '(?<name>...)'.
// There are no anchors: a spanner enumerates every substring of its
// input that the whole formula matches. Violations of the functional
// restrictions (see the package comment) are parse errors.
func ParseFormula(src string) (*Formula, error) {
	p := &reParser{src: src, f: &Formula{src: src}}
	root, err := p.alt()
	if err != nil {
		return nil, err
	}
	if p.pos < len(src) {
		return nil, fmt.Errorf("span: regex /%s/: unexpected %q at offset %d", src, src[p.pos], p.pos)
	}
	p.f.root = root
	if _, err := checkVars(root, src); err != nil {
		return nil, err
	}
	if err := checkStars(root, src); err != nil {
		return nil, err
	}
	return p.f, nil
}

// MustParseFormula is ParseFormula, panicking on error (for tests and
// fixed program fragments).
func MustParseFormula(src string) *Formula {
	f, err := ParseFormula(src)
	if err != nil {
		panic(err)
	}
	return f
}

// nullable reports whether n matches the empty string.
func nullable(n reNode) bool {
	switch x := n.(type) {
	case reEmpty:
		return true
	case reClass:
		return false
	case reCat:
		for _, s := range x.subs {
			if !nullable(s) {
				return false
			}
		}
		return true
	case reAlt:
		for _, s := range x.subs {
			if nullable(s) {
				return true
			}
		}
		return false
	case reStar:
		return x.min == 0 || nullable(x.sub)
	case reCap:
		return nullable(x.sub)
	}
	return false
}

// checkVars enforces the functional restriction, returning the set of
// variables n binds on every accepting path.
func checkVars(n reNode, src string) (map[int]bool, error) {
	switch x := n.(type) {
	case reEmpty, reClass:
		return nil, nil
	case reCat:
		all := map[int]bool{}
		for _, s := range x.subs {
			vs, err := checkVars(s, src)
			if err != nil {
				return nil, err
			}
			for v := range vs {
				if all[v] {
					return nil, fmt.Errorf("span: regex /%s/: capture variable bound twice on one path", src)
				}
				all[v] = true
			}
		}
		return all, nil
	case reAlt:
		var first map[int]bool
		for i, s := range x.subs {
			vs, err := checkVars(s, src)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				first = vs
				continue
			}
			if len(vs) != len(first) {
				return nil, fmt.Errorf("span: regex /%s/: alternation branches bind different capture variables (a formula must bind every variable on every path)", src)
			}
			for v := range vs {
				if !first[v] {
					return nil, fmt.Errorf("span: regex /%s/: alternation branches bind different capture variables (a formula must bind every variable on every path)", src)
				}
			}
		}
		return first, nil
	case reStar:
		vs, err := checkVars(x.sub, src)
		if err != nil {
			return nil, err
		}
		if len(vs) > 0 {
			return nil, fmt.Errorf("span: regex /%s/: capture variables may not occur under *, +, ? or {m,n} (each variable must be bound exactly once)", src)
		}
		return nil, nil
	case reCap:
		vs, err := checkVars(x.sub, src)
		if err != nil {
			return nil, err
		}
		out := map[int]bool{x.v: true}
		for v := range vs {
			if out[v] {
				return nil, fmt.Errorf("span: regex /%s/: capture variable bound twice on one path", src)
			}
			out[v] = true
		}
		return out, nil
	}
	return nil, nil
}

// checkStars rejects starred subexpressions that match ε (they would
// make match enumeration non-terminating and put ε-cycles in the
// automaton).
func checkStars(n reNode, src string) error {
	switch x := n.(type) {
	case reCat:
		for _, s := range x.subs {
			if err := checkStars(s, src); err != nil {
				return err
			}
		}
	case reAlt:
		for _, s := range x.subs {
			if err := checkStars(s, src); err != nil {
				return err
			}
		}
	case reStar:
		if nullable(x.sub) {
			return fmt.Errorf("span: regex /%s/: the body of * / + / {m,n} must not match the empty string", src)
		}
		return checkStars(x.sub, src)
	case reCap:
		return checkStars(x.sub, src)
	}
	return nil
}

// ---------------------------------------------------------------------
// Parser.

type reParser struct {
	src string
	pos int
	f   *Formula
}

func (p *reParser) errf(format string, args ...any) error {
	return fmt.Errorf("span: regex /%s/: %s (offset %d)", p.src, fmt.Sprintf(format, args...), p.pos)
}

func (p *reParser) eof() bool { return p.pos >= len(p.src) }

func (p *reParser) alt() (reNode, error) {
	first, err := p.cat()
	if err != nil {
		return nil, err
	}
	subs := []reNode{first}
	for !p.eof() && p.src[p.pos] == '|' {
		p.pos++
		next, err := p.cat()
		if err != nil {
			return nil, err
		}
		subs = append(subs, next)
	}
	if len(subs) == 1 {
		return first, nil
	}
	return reAlt{subs: subs}, nil
}

func (p *reParser) cat() (reNode, error) {
	var subs []reNode
	for !p.eof() && p.src[p.pos] != '|' && p.src[p.pos] != ')' {
		n, err := p.rep()
		if err != nil {
			return nil, err
		}
		subs = append(subs, n)
	}
	switch len(subs) {
	case 0:
		return reEmpty{}, nil
	case 1:
		return subs[0], nil
	}
	return reCat{subs: subs}, nil
}

// maxBound caps {m,n} repetition counts: bounds expand by AST copying,
// so unbounded counts would let a short source explode the automaton.
const maxBound = 64

func (p *reParser) rep() (reNode, error) {
	atom, err := p.atom()
	if err != nil {
		return nil, err
	}
	if p.eof() {
		return atom, nil
	}
	switch p.src[p.pos] {
	case '*':
		p.pos++
		return reStar{sub: atom, min: 0}, nil
	case '+':
		p.pos++
		return reStar{sub: atom, min: 1}, nil
	case '?':
		p.pos++
		return reAlt{subs: []reNode{atom, reEmpty{}}}, nil
	case '{':
		return p.bound(atom)
	}
	return atom, nil
}

// bound parses {m}, {m,} or {m,n} and desugars it to m copies plus
// optionals / a star. The copies share the same immutable AST subtree.
func (p *reParser) bound(atom reNode) (reNode, error) {
	p.pos++ // '{'
	m, ok := p.int()
	if !ok {
		return nil, p.errf("expected a count after '{' (write \\{ for a literal brace)")
	}
	n, unbounded := m, false
	if !p.eof() && p.src[p.pos] == ',' {
		p.pos++
		if v, ok := p.int(); ok {
			n = v
		} else {
			unbounded = true
		}
	}
	if p.eof() || p.src[p.pos] != '}' {
		return nil, p.errf("expected '}' closing the repetition bound")
	}
	p.pos++
	if n < m || m > maxBound || n > maxBound {
		return nil, p.errf("bad repetition bound {%d,%d} (max %d)", m, n, maxBound)
	}
	var subs []reNode
	for i := 0; i < m; i++ {
		subs = append(subs, atom)
	}
	if unbounded {
		subs = append(subs, reStar{sub: atom, min: 0})
	} else {
		for i := m; i < n; i++ {
			subs = append(subs, reAlt{subs: []reNode{atom, reEmpty{}}})
		}
	}
	switch len(subs) {
	case 0:
		return reEmpty{}, nil
	case 1:
		return subs[0], nil
	}
	return reCat{subs: subs}, nil
}

func (p *reParser) int() (int, bool) {
	start := p.pos
	for !p.eof() && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		p.pos++
	}
	if p.pos == start || p.pos-start > 3 {
		return 0, false
	}
	v := 0
	for _, c := range []byte(p.src[start:p.pos]) {
		v = v*10 + int(c-'0')
	}
	return v, true
}

func (p *reParser) atom() (reNode, error) {
	c := p.src[p.pos]
	switch c {
	case '(':
		p.pos++
		if strings.HasPrefix(p.src[p.pos:], "?<") {
			p.pos += 2
			name, err := p.capName()
			if err != nil {
				return nil, err
			}
			sub, err := p.alt()
			if err != nil {
				return nil, err
			}
			if p.eof() || p.src[p.pos] != ')' {
				return nil, p.errf("expected ')' closing capture (?<%s>", name)
			}
			p.pos++
			for _, v := range p.f.Vars {
				if v == name {
					return nil, p.errf("duplicate capture variable %q", name)
				}
			}
			p.f.Vars = append(p.f.Vars, name)
			return reCap{v: len(p.f.Vars) - 1, sub: sub}, nil
		}
		sub, err := p.alt()
		if err != nil {
			return nil, err
		}
		if p.eof() || p.src[p.pos] != ')' {
			return nil, p.errf("expected ')'")
		}
		p.pos++
		return sub, nil
	case '[':
		return p.charClass()
	case '\\':
		p.pos++
		if p.eof() {
			return nil, p.errf("trailing backslash")
		}
		cls, err := p.escape()
		if err != nil {
			return nil, err
		}
		return reClass{cls: cls}, nil
	case '.':
		p.pos++
		var cls class
		cls.negate()
		cls[0] &^= 1 << '\n' // any byte but newline
		return reClass{cls: cls}, nil
	case '*', '+', '?', '{':
		return nil, p.errf("quantifier %q has nothing to repeat", c)
	case ')', '|':
		return nil, p.errf("unexpected %q", c)
	default:
		p.pos++
		var cls class
		cls.set(c)
		return reClass{cls: cls}, nil
	}
}

func (p *reParser) capName() (string, error) {
	start := p.pos
	for !p.eof() {
		c := p.src[p.pos]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || (p.pos > start && c >= '0' && c <= '9') {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return "", p.errf("expected a capture-variable name after (?<")
	}
	if p.eof() || p.src[p.pos] != '>' {
		return "", p.errf("expected '>' after capture-variable name")
	}
	name := p.src[start:p.pos]
	p.pos++
	return name, nil
}

// escape consumes the byte after a backslash, returning its class.
func (p *reParser) escape() (class, error) {
	c := p.src[p.pos]
	p.pos++
	var cls class
	switch c {
	case 'd', 'D':
		for b := '0'; b <= '9'; b++ {
			cls.set(byte(b))
		}
	case 'w', 'W':
		for b := '0'; b <= '9'; b++ {
			cls.set(byte(b))
		}
		for b := 'a'; b <= 'z'; b++ {
			cls.set(byte(b))
		}
		for b := 'A'; b <= 'Z'; b++ {
			cls.set(byte(b))
		}
		cls.set('_')
	case 's', 'S':
		for _, b := range []byte{' ', '\t', '\n', '\r', '\f', '\v'} {
			cls.set(b)
		}
	case 'n':
		cls.set('\n')
	case 't':
		cls.set('\t')
	case 'r':
		cls.set('\r')
	default:
		cls.set(c) // \$ \. \\ \/ \[ ... : the literal byte
	}
	if c == 'D' || c == 'W' || c == 'S' {
		cls.negate()
	}
	return cls, nil
}

func (p *reParser) charClass() (reNode, error) {
	p.pos++ // '['
	var cls class
	neg := false
	if !p.eof() && p.src[p.pos] == '^' {
		neg = true
		p.pos++
	}
	first := true
	for {
		if p.eof() {
			return nil, p.errf("unterminated character class")
		}
		c := p.src[p.pos]
		if c == ']' && !first {
			p.pos++
			break
		}
		first = false
		var lo class
		if c == '\\' {
			p.pos++
			if p.eof() {
				return nil, p.errf("trailing backslash in character class")
			}
			e, err := p.escape()
			if err != nil {
				return nil, err
			}
			lo = e
		} else {
			p.pos++
			lo.set(c)
		}
		// A range a-z needs single-byte endpoints; '-' at the end of the
		// class is a literal.
		if b := lo.single(); b >= 0 && !p.eof() && p.src[p.pos] == '-' && p.pos+1 < len(p.src) && p.src[p.pos+1] != ']' {
			p.pos++
			hi := p.src[p.pos]
			if hi == '\\' {
				p.pos++
				if p.eof() {
					return nil, p.errf("trailing backslash in character class")
				}
				e, err := p.escape()
				if err != nil {
					return nil, err
				}
				h := e.single()
				if h < 0 {
					return nil, p.errf("bad range endpoint in character class")
				}
				hi = byte(h)
			} else {
				p.pos++
			}
			if byte(b) > hi {
				return nil, p.errf("inverted range %c-%c in character class", byte(b), hi)
			}
			for x := byte(b); ; x++ {
				cls.set(x)
				if x == hi {
					break
				}
			}
			continue
		}
		cls.union(lo)
	}
	if neg {
		cls.negate()
	}
	return reClass{cls: cls}, nil
}
