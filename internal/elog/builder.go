package elog

import (
	"fmt"

	"mdlog/internal/tree"
)

// Builder simulates the visual wrapper specification process of
// Section 6.2: the user works on an example document, names a new
// pattern, selects a parent pattern, and "clicks" example nodes; the
// system infers the subelem path from the parent instance to the
// clicked node and generalizes across examples (wildcarding positions
// where labels differ, adding alternative rules where lengths differ).
// Conditions can then be attached visually as well. The generated
// program is ordinary Elog⁻.
type Builder struct {
	doc  *tree.Tree
	prog *Program
}

// NewBuilder starts a visual session on an example document.
func NewBuilder(doc *tree.Tree) *Builder {
	return &Builder{doc: doc, prog: &Program{}}
}

// Program returns the program built so far.
func (b *Builder) Program() *Program { return b.prog }

// Instances returns the current extension of a pattern on the example
// document — what the GUI would highlight (Section 6.2: "the system
// can then display the document and highlight those regions").
func (b *Builder) Instances(pattern string) ([]int, error) {
	if pattern == RootPattern {
		return []int{b.doc.Root.ID}, nil
	}
	res, err := b.prog.EvalDirect(b.doc)
	if err != nil {
		return nil, err
	}
	return res[pattern], nil
}

// PatternBuilder accumulates example clicks for one new rule.
type PatternBuilder struct {
	b      *Builder
	name   string
	parent string
	rules  []Rule // one rule per path shape
}

// DefinePattern names a destination pattern and its parent pattern
// (the first step of the visual process).
func (b *Builder) DefinePattern(name, parent string) *PatternBuilder {
	return &PatternBuilder{b: b, name: name, parent: parent}
}

// Click selects an example node. The node must lie strictly below (or
// on, for specializations) an instance of the parent pattern; the
// closest enclosing instance is used and the label path from it to the
// node becomes the subelem path. Repeated clicks generalize.
func (pb *PatternBuilder) Click(n *tree.Node) error {
	inst, err := pb.b.Instances(pb.parent)
	if err != nil {
		return err
	}
	instSet := map[int]bool{}
	for _, v := range inst {
		instSet[v] = true
	}
	// Find the closest ancestor-or-self that is a parent instance.
	var path Path
	cur := n
	for cur != nil && !instSet[cur.ID] {
		path = append(Path{cur.Label}, path...)
		cur = cur.Parent
	}
	if cur == nil {
		return fmt.Errorf("elog: node %d has no enclosing instance of pattern %q", n.ID, pb.parent)
	}
	newRule := Rule{Head: pb.name, HeadVar: "x", Parent: pb.parent, ParentVar: "x0", Path: path}
	if len(path) == 0 {
		newRule.HeadVar = "x0" // specialization
	}
	// Generalize against an existing rule of the same path length.
	for i, r := range pb.rules {
		if len(r.Path) != len(path) {
			continue
		}
		for j := range r.Path {
			if r.Path[j] != path[j] {
				pb.rules[i].Path[j] = Wildcard
			}
		}
		return nil
	}
	pb.rules = append(pb.rules, newRule)
	return nil
}

// Refine adds a condition to every rule of the pattern under
// construction (the "refined by ... adding conditions" step).
func (pb *PatternBuilder) Refine(c Condition) *PatternBuilder {
	for i := range pb.rules {
		pb.rules[i].Conds = append(pb.rules[i].Conds, c)
	}
	return pb
}

// Commit adds the accumulated rules to the program and returns the
// updated builder for chaining.
func (pb *PatternBuilder) Commit() (*Builder, error) {
	if len(pb.rules) == 0 {
		return nil, fmt.Errorf("elog: pattern %q has no example clicks", pb.name)
	}
	pb.b.prog.Rules = append(pb.b.prog.Rules, pb.rules...)
	if err := pb.b.prog.Validate(); err != nil {
		return nil, err
	}
	return pb.b, nil
}

// AnBnProgram is the Elog⁻Δ program of Theorem 6.6, which classifies
// the root as "anbn" iff its children read aⁿbⁿ (n ≥ 1) — a non-
// regular tree language, proving Elog⁻Δ strictly more expressive than
// MSO:
//
//	a0(x)   ← root(x0), subelem_a(x0, x), notafter_a(x0, x).
//	b0(x)   ← root(x0), subelem_b(x0, x), notafter_b(x0, x), notbefore_a(x0, x).
//	anbn(x) ← root(x), contains_a(x, y), a0(y), before_{b,50%−50%}(x, y, z), b0(z).
func AnBnProgram() *Program {
	return MustParseProgram(`
a0(x)   :- root(x0), subelem("a", x0, x), notafter("a", x0, x).
b0(x)   :- root(x0), subelem("b", x0, x), notafter("b", x0, x), notbefore("a", x0, x).
anbn(x) :- root(x), contains("a", x, y), a0(y), before("b", 50, 50, x, y, z), b0(z).
`)
}
