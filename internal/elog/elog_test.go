package elog

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mdlog/internal/datalog"
	"mdlog/internal/eval"
	"mdlog/internal/tree"
)

func TestParseAndPrint(t *testing.T) {
	src := `
% a small wrapper
item(x)  :- root(x0), subelem("table._.tr", x0, x).
price(x) :- item(x0), subelem("td", x0, x), lastsibling(x).
cheap(x) :- price(x), leaf(x).
pair(x)  :- item(x0), subelem("td", x0, x), nextsibling(x, y), price(y).
`
	p, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 4 {
		t.Fatalf("got %d rules", len(p.Rules))
	}
	if got := p.Rules[0].Path.String(); got != "table._.tr" {
		t.Errorf("path = %q", got)
	}
	if !p.Rules[2].IsSpecialization() {
		t.Error("cheap rule must be a specialization")
	}
	// Print and reparse.
	p2, err := ParseProgram(p.String())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, p.String())
	}
	if p2.String() != p.String() {
		t.Errorf("round trip:\n%s\nvs\n%s", p.String(), p2.String())
	}
	pats := p.Patterns()
	if fmt.Sprint(pats) != "[cheap item pair price]" {
		t.Errorf("Patterns = %v", pats)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`item(x) :- root(x0).`,                      // no subelem, different vars
		`item(x) :- root(x0), subelem("a", x, x0).`, // wrong direction
		`item(x) :- root(x0), subelem("a", x0, x), subelem("b", x0, x).`,
		`item(x) :- root(x0), contains("", x0, x).`, // ε contains
		`item(x) :- root(x0), subelem("a", x0, x), before("b", 70, 30, x0, x, y).`,
		`root(x) :- item(x0), subelem("a", x0, x).`, // reserved head
		`item(x) :- root(x0), subelem("a", x0, x), stray(y, z).`,
	}
	for _, src := range bad {
		if _, err := ParseProgram(src); err == nil {
			t.Errorf("accepted: %s", src)
		}
	}
}

// listingDoc is a small product-listing document tree.
func listingDoc() *tree.Tree {
	return tree.MustParse("html(body(table(tr(td,td),tr(td,td(b)),tr(td))))")
}

func TestEvalDirectBasics(t *testing.T) {
	p := MustParseProgram(`
row(x)  :- root(x0), subelem("_.table.tr", x0, x).
cell(x) :- row(x0), subelem("td", x0, x).
last(x) :- cell(x), lastsibling(x).
`)
	tr := listingDoc()
	res, err := p.EvalDirect(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Document order: html=0 body=1 table=2 tr=3 td=4 td=5 tr=6 td=7
	// td=8 b=9 tr=10 td=11.
	if got := fmt.Sprint(res["row"]); got != "[3 6 10]" {
		t.Errorf("row = %s", got)
	}
	if got := fmt.Sprint(res["cell"]); got != "[4 5 7 8 11]" {
		t.Errorf("cell = %s", got)
	}
	if got := fmt.Sprint(res["last"]); got != "[5 8 11]" {
		t.Errorf("last = %s", got)
	}
}

// TestCorollary64 checks that the compiled (ToDatalog → TMNF → linear)
// route agrees with the direct evaluator on a battery of wrappers.
func TestCorollary64(t *testing.T) {
	programs := []string{
		`row(x) :- root(x0), subelem("_.table.tr", x0, x).
cell(x) :- row(x0), subelem("td", x0, x).`,
		`deep(x) :- root(x0), subelem("_._._._", x0, x).`,
		`first(x) :- root(x0), subelem("_._", x0, x), firstsibling(x).
markedfirst(x) :- first(x), leaf(x).`,
		`hasb(x) :- root(x0), subelem("_.table.tr.td", x0, x), contains("b", x, y).`,
		`pairleft(x) :- root(x0), subelem("_.table.tr.td", x0, x), nextsibling(x, y), leaf(y).`,
		`lastrow(x) :- root(x0), subelem("_.table.tr", x0, x), lastsibling(x).
lastcell(x) :- lastrow(x0), subelem("td", x0, x), leaf(x).`,
	}
	docs := []*tree.Tree{
		listingDoc(),
		tree.MustParse("html(body(table(tr(td),tr(td,td,td)),table(tr)))"),
		tree.MustParse("html(body)"),
	}
	for _, src := range programs {
		p := MustParseProgram(src)
		for di, doc := range docs {
			direct, err := p.EvalDirect(doc)
			if err != nil {
				t.Fatalf("%s: direct: %v", src, err)
			}
			compiled, err := p.Evaluate(doc)
			if err != nil {
				t.Fatalf("%s: compiled: %v", src, err)
			}
			for _, pat := range p.Patterns() {
				if fmt.Sprint(direct[pat]) != fmt.Sprint(compiled[pat]) {
					t.Errorf("doc %d pattern %s: direct %v, compiled %v\n%s",
						di, pat, direct[pat], compiled[pat], src)
				}
			}
		}
	}
}

// TestCorollary64Quick drives random documents through a fixed wrapper
// via both routes.
func TestCorollary64Quick(t *testing.T) {
	p := MustParseProgram(`
sec(x)  :- root(x0), subelem("_", x0, x).
item(x) :- sec(x0), subelem("_.b", x0, x).
note(x) :- item(x), leaf(x).
`)
	compiled, err := p.CompileLinear()
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		doc := tree.Random(rng, tree.RandomOptions{
			Labels: []string{"a", "b", "c"}, Size: 1 + rng.Intn(30), MaxChildren: 4})
		direct, err := p.EvalDirect(doc)
		if err != nil {
			return false
		}
		res, err := eval.LinearTree(compiled, doc)
		if err != nil {
			return false
		}
		for _, pat := range p.Patterns() {
			if fmt.Sprint(direct[pat]) != fmt.Sprint(res.UnarySet(pat)) {
				t.Logf("pattern %s: %v vs %v on %s", pat, direct[pat], res.UnarySet(pat), doc)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestTheorem65Backward: monadic datalog → Elog⁻ preserves the query
// on documents with a synthetic root label (see the FromDatalog
// caveat).
func TestTheorem65Backward(t *testing.T) {
	programs := []string{
		`q(X) :- child(X,Y), label_b(Y).`,
		`q(X) :- leaf(X), child(Y,X), label_a(Y).`,
		`q(X) :- root(X).`,
		`q(X) :- lastsibling(X), label_b(X).`,
		`q(X) :- firstchild(X,Y), label_a(Y).
q(X) :- q(X0), child(X0,X).`,
		`q(X) :- nextsibling(Y,X), label_a(Y).`,
	}
	rng := rand.New(rand.NewSource(41))
	for _, src := range programs {
		dp := datalog.MustParseProgram(src)
		dp.Query = "q"
		ep, err := FromDatalog(dp)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		for i := 0; i < 10; i++ {
			// Documents with a dedicated root label never used in rules.
			body := tree.Random(rng, tree.RandomOptions{
				Labels: []string{"a", "b"}, Size: 1 + rng.Intn(12), MaxChildren: 3})
			doc := tree.NewTree(tree.New("#doc", body.Root))
			db := eval.TreeDB(doc, eval.WithChild(), eval.WithLastChild())
			full, err := datalog.SemiNaiveEval(dp, db)
			if err != nil {
				t.Fatal(err)
			}
			want := full.UnarySet("q")
			res, err := ep.EvalDirect(doc)
			if err != nil {
				t.Fatalf("%s: %v", src, err)
			}
			if fmt.Sprint(res["q"]) != fmt.Sprint(want) {
				t.Errorf("%s on %s: elog %v, datalog %v\n%s", src, doc, res["q"], want, ep)
			}
		}
	}
}

// TestTheorem66AnBn: the Elog⁻Δ program accepts exactly aⁿbⁿ child
// words (over Σ = {a, b}), a non-regular language.
func TestTheorem66AnBn(t *testing.T) {
	p := AnBnProgram()
	if !p.UsesDelta() {
		t.Fatal("program must use Δ conditions")
	}
	if _, err := p.ToDatalog(); err == nil {
		t.Fatal("Δ program must be rejected by the MSO-equivalent translation")
	}
	mk := func(word string) *tree.Tree {
		root := tree.New("r")
		for _, c := range word {
			root.Add(tree.New(string(c)))
		}
		return tree.NewTree(root)
	}
	cases := []struct {
		word string
		want bool
	}{
		{"ab", true},
		{"aabb", true},
		{"aaabbb", true},
		{"aaaabbbb", true},
		{"", false},
		{"a", false},
		{"b", false},
		{"ba", false},
		{"aab", false},
		{"abb", false},
		{"abab", false},
		{"bbaa", false},
		{"aabba", false},
		{"bab", false},
	}
	for _, c := range cases {
		res, err := p.EvalDirect(mk(c.word))
		if err != nil {
			t.Fatalf("%q: %v", c.word, err)
		}
		got := len(res["anbn"]) == 1 && res["anbn"][0] == 0
		if got != c.want {
			t.Errorf("word %q: anbn = %v (%v), want %v", c.word, res["anbn"], got, c.want)
		}
	}
}

func TestBuilderVisualSession(t *testing.T) {
	doc := listingDoc()
	b := NewBuilder(doc)
	pb := b.DefinePattern("row", RootPattern)
	// Click the first tr (id 3): path from root = body? No: from root
	// html: html is the instance? The root pattern instance is html (id
	// 0); the path to tr id 3 is body.table.tr.
	if err := pb.Click(doc.Nodes[3]); err != nil {
		t.Fatal(err)
	}
	b2, err := pb.Commit()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := b2.Instances("row")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(rows) != "[3 6 10]" {
		t.Errorf("rows = %v", rows)
	}
	// Second pattern: cells within rows.
	pb2 := b2.DefinePattern("cell", "row")
	if err := pb2.Click(doc.Nodes[4]); err != nil {
		t.Fatal(err)
	}
	b3, err := pb2.Commit()
	if err != nil {
		t.Fatal(err)
	}
	cells, err := b3.Instances("cell")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(cells) != "[4 5 7 8 11]" {
		t.Errorf("cells = %v", cells)
	}
	// The program must be valid Elog⁻ and print/parse.
	if _, err := ParseProgram(b3.Program().String()); err != nil {
		t.Errorf("generated program does not reparse: %v\n%s", err, b3.Program())
	}
}

func TestBuilderGeneralization(t *testing.T) {
	doc := tree.MustParse("r(s(a(x)),s(b(x)))")
	b := NewBuilder(doc)
	pb := b.DefinePattern("hit", RootPattern)
	// Click both x nodes: paths s.a.x and s.b.x generalize to s._.x.
	if err := pb.Click(doc.Nodes[3]); err != nil { // r s a x -> ids 0 1 2 3
		t.Fatal(err)
	}
	if err := pb.Click(doc.Nodes[6]); err != nil { // second x
		t.Fatal(err)
	}
	b2, err := pb.Commit()
	if err != nil {
		t.Fatal(err)
	}
	prog := b2.Program()
	if len(prog.Rules) != 1 {
		t.Fatalf("expected one generalized rule, got\n%s", prog)
	}
	if got := prog.Rules[0].Path.String(); got != "s._.x" {
		t.Errorf("generalized path = %q", got)
	}
	hits, err := b2.Instances("hit")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(hits) != "[3 6]" {
		t.Errorf("hits = %v", hits)
	}
}

func TestBuilderErrors(t *testing.T) {
	doc := listingDoc()
	b := NewBuilder(doc)
	pb := b.DefinePattern("p", "undefined_pattern")
	if err := pb.Click(doc.Nodes[1]); err == nil {
		t.Error("click with undefined parent must fail")
	}
	pb2 := b.DefinePattern("q", RootPattern)
	if _, err := pb2.Commit(); err == nil {
		t.Error("commit without clicks must fail")
	}
}

func TestUsesDeltaAndValidate(t *testing.T) {
	p := MustParseProgram(`item(x) :- root(x0), subelem("a", x0, x).`)
	if p.UsesDelta() {
		t.Error("plain program flagged as Δ")
	}
	// Hand-build invalid rules to exercise Validate.
	bad := &Program{Rules: []Rule{{Head: "p", HeadVar: "x", Parent: RootPattern, ParentVar: "y"}}}
	if bad.Validate() == nil {
		t.Error("ε-path with distinct vars accepted")
	}
	bad2 := &Program{Rules: []Rule{{Head: "p", HeadVar: "x", Parent: RootPattern,
		ParentVar: "x", Conds: []Condition{{Kind: CondBefore, Path: Path{"a", "b"},
			Alpha: 0, Beta: 100, Vars: []string{"x", "x", "y"}}}}}}
	if bad2.Validate() == nil {
		t.Error("long before path accepted")
	}
}

func TestElogStringForms(t *testing.T) {
	p := AnBnProgram()
	s := p.String()
	for _, frag := range []string{"notafter(", "notbefore(", "before(", "subelem("} {
		if !strings.Contains(s, frag) {
			t.Errorf("String missing %q:\n%s", frag, s)
		}
	}
}
