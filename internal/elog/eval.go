package elog

import (
	"fmt"
	"sort"

	"mdlog/internal/tree"
)

// EvalDirect evaluates an Elog⁻ or Elog⁻Δ program directly on a tree:
// a monotone fixpoint over pattern extensions, with conditions
// (including the non-MSO Δ conditions) evaluated natively on the tree.
// It is the reference semantics against which the Corollary 6.4
// compilation route is tested, and the only route for Elog⁻Δ.
func (p *Program) EvalDirect(t *tree.Tree) (map[string][]int, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ext := map[string][]bool{}
	for _, pat := range p.Patterns() {
		ext[pat] = make([]bool, t.Size())
	}
	rootExt := make([]bool, t.Size())
	rootExt[t.Root.ID] = true
	lookup := func(pat string) []bool {
		if pat == RootPattern {
			return rootExt
		}
		return ext[pat]
	}

	for changed := true; changed; {
		changed = false
		for _, r := range p.Rules {
			parentExt := lookup(r.Parent)
			if parentExt == nil {
				return nil, fmt.Errorf("elog: undefined parent pattern %q in %s", r.Parent, r)
			}
			headExt := ext[r.Head]
			for x0 := 0; x0 < t.Size(); x0++ {
				if !parentExt[x0] {
					continue
				}
				for _, x := range pathTargets(t, x0, r.Path) {
					if headExt[x] {
						continue
					}
					ok, err := r.satisfied(p, t, lookup, x0, x)
					if err != nil {
						return nil, err
					}
					if ok {
						headExt[x] = true
						changed = true
					}
				}
			}
		}
	}

	out := map[string][]int{}
	for pat, bits := range ext {
		var ids []int
		for v, in := range bits {
			if in {
				ids = append(ids, v)
			}
		}
		out[pat] = ids
	}
	return out, nil
}

// pathTargets returns the nodes reachable from x0 via the subelem path
// (ε yields x0 itself).
func pathTargets(t *tree.Tree, x0 int, path Path) []int {
	cur := []int{x0}
	for _, el := range path {
		var next []int
		for _, v := range cur {
			for _, c := range t.Nodes[v].Children {
				if el == Wildcard || c.Label == el {
					next = append(next, c.ID)
				}
			}
		}
		cur = next
		if len(cur) == 0 {
			return nil
		}
	}
	sort.Ints(cur)
	return dedupInts(cur)
}

func dedupInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// satisfied checks the rule's conditions and references under the
// binding {ParentVar → x0, HeadVar → x}, generating bindings for
// further variables as needed.
func (r Rule) satisfied(p *Program, t *tree.Tree, lookup func(string) []bool, x0, x int) (bool, error) {
	binding := map[string]int{r.ParentVar: x0, r.HeadVar: x}
	return r.solve(p, t, lookup, binding, append([]Condition(nil), r.Conds...), append([]Ref(nil), r.Refs...))
}

// solve processes conditions and references by repeatedly picking one
// whose input variables are bound, enumerating candidates for unbound
// output variables.
func (r Rule) solve(p *Program, t *tree.Tree, lookup func(string) []bool,
	binding map[string]int, conds []Condition, refs []Ref) (bool, error) {
	// Pick a processable condition.
	for i, c := range conds {
		ready, err := c.inputsBound(binding)
		if err != nil {
			return false, err
		}
		if !ready {
			continue
		}
		rest := append(append([]Condition(nil), conds[:i]...), conds[i+1:]...)
		cands, err := c.candidates(t, binding)
		if err != nil {
			return false, err
		}
		outVar := c.outputVar(binding)
		if outVar == "" || bound(binding, outVar) {
			// Pure test.
			if len(cands) == 0 {
				return false, nil
			}
			return r.solve(p, t, lookup, binding, rest, refs)
		}
		for _, v := range cands {
			binding[outVar] = v
			ok, err := r.solve(p, t, lookup, binding, rest, refs)
			if err != nil {
				return false, err
			}
			if ok {
				delete(binding, outVar)
				return true, nil
			}
		}
		delete(binding, outVar)
		return false, nil
	}
	// No condition is ready: process a reference (it may bind variables
	// that unblock the remaining conditions).
	if len(refs) > 0 {
		ref, rest := refs[0], refs[1:]
		extb := lookup(ref.Pattern)
		if extb == nil {
			return false, fmt.Errorf("elog: undefined pattern %q referenced in %s", ref.Pattern, r)
		}
		if v, ok := binding[ref.Var]; ok {
			if !extb[v] {
				return false, nil
			}
			return r.solve(p, t, lookup, binding, conds, rest)
		}
		for v, in := range extb {
			if !in {
				continue
			}
			binding[ref.Var] = v
			ok, err := r.solve(p, t, lookup, binding, conds, rest)
			if err != nil {
				return false, err
			}
			if ok {
				delete(binding, ref.Var)
				return true, nil
			}
		}
		delete(binding, ref.Var)
		return false, nil
	}
	if len(conds) > 0 {
		return false, fmt.Errorf("elog: conditions %v cannot be ordered (unbound inputs) in %s", conds, r)
	}
	return true, nil
}

func bound(b map[string]int, v string) bool {
	_, ok := b[v]
	return ok
}

// inputsBound reports whether the condition's required input variables
// are bound.
func (c Condition) inputsBound(b map[string]int) (bool, error) {
	switch c.Kind {
	case CondLeaf, CondFirstSibling, CondLastSibling:
		return bound(b, c.Vars[0]), nil
	case CondNextSibling:
		return bound(b, c.Vars[0]) || bound(b, c.Vars[1]), nil
	case CondContains:
		return bound(b, c.Vars[0]), nil
	case CondBefore:
		return bound(b, c.Vars[0]) && bound(b, c.Vars[1]), nil
	case CondNotAfter, CondNotBefore:
		return bound(b, c.Vars[0]) && bound(b, c.Vars[1]), nil
	}
	return false, fmt.Errorf("elog: unknown condition kind %d", c.Kind)
}

// outputVar names the variable the condition can generate under the
// current binding (possibly already bound), or "".
func (c Condition) outputVar(b map[string]int) string {
	switch c.Kind {
	case CondNextSibling:
		if !bound(b, c.Vars[0]) {
			return c.Vars[0]
		}
		return c.Vars[1]
	case CondContains:
		return c.Vars[1]
	case CondBefore:
		return c.Vars[2]
	}
	return ""
}

// candidates returns the values for the condition's output variable
// consistent with the binding; for pure tests it returns a nonempty
// slice iff the condition holds.
func (c Condition) candidates(t *tree.Tree, b map[string]int) ([]int, error) {
	node := func(v string) *tree.Node { return t.Nodes[b[v]] }
	switch c.Kind {
	case CondLeaf:
		if node(c.Vars[0]).IsLeaf() {
			return []int{b[c.Vars[0]]}, nil
		}
		return nil, nil
	case CondFirstSibling:
		if node(c.Vars[0]).IsFirstSibling() {
			return []int{b[c.Vars[0]]}, nil
		}
		return nil, nil
	case CondLastSibling:
		if node(c.Vars[0]).IsLastSibling() {
			return []int{b[c.Vars[0]]}, nil
		}
		return nil, nil
	case CondNextSibling:
		x, xOK := b[c.Vars[0]]
		y, yOK := b[c.Vars[1]]
		switch {
		case xOK && yOK:
			ns := t.Nodes[x].NextSibling()
			if ns != nil && ns.ID == y {
				return []int{y}, nil
			}
			return nil, nil
		case xOK:
			if ns := t.Nodes[x].NextSibling(); ns != nil {
				return []int{ns.ID}, nil
			}
			return nil, nil
		default:
			// Only Vars[1] bound: generate Vars[0] via the previous sibling.
			if ps := t.Nodes[y].PrevSibling(); ps != nil {
				return []int{ps.ID}, nil
			}
			return nil, nil
		}
	case CondContains:
		targets := pathTargets(t, b[c.Vars[0]], c.Path)
		if y, ok := b[c.Vars[1]]; ok {
			for _, v := range targets {
				if v == y {
					return []int{y}, nil
				}
			}
			return nil, nil
		}
		return targets, nil
	case CondBefore:
		x0n := node(c.Vars[0])
		k := len(x0n.Children)
		if k == 0 {
			return nil, nil
		}
		// Positions among the children of x0.
		pos := map[int]int{}
		for i, ch := range x0n.Children {
			pos[ch.ID] = i
		}
		xPos, ok := pos[b[c.Vars[1]]]
		if !ok {
			return nil, nil // x must be a child of x0
		}
		lo := (k*c.Alpha + 99) / 100 // ⌈kα/100⌉
		hi := k * c.Beta / 100       // ⌊kβ/100⌋
		var out []int
		for i, ch := range x0n.Children {
			d := i - xPos
			if d < lo || d > hi {
				continue
			}
			if c.Path[0] != Wildcard && ch.Label != c.Path[0] {
				continue
			}
			out = append(out, ch.ID)
		}
		if y, bnd := b[c.Vars[2]]; bnd {
			for _, v := range out {
				if v == y {
					return []int{y}, nil
				}
			}
			return nil, nil
		}
		return out, nil
	case CondNotAfter:
		// No node reachable from x via π lies strictly before y.
		y := b[c.Vars[1]]
		for _, z := range pathTargets(t, b[c.Vars[0]], c.Path) {
			if z < y {
				return nil, nil
			}
		}
		return []int{y}, nil
	case CondNotBefore:
		// No node reachable from x via π lies strictly after y.
		y := b[c.Vars[1]]
		for _, z := range pathTargets(t, b[c.Vars[0]], c.Path) {
			if z > y {
				return nil, nil
			}
		}
		return []int{y}, nil
	}
	return nil, fmt.Errorf("elog: unknown condition kind %d", c.Kind)
}
