package elog

import (
	"fmt"
	"testing"

	"mdlog/internal/datalog"
	"mdlog/internal/tree"
)

// TestBuilderRefine exercises the condition-refinement step of the
// visual process.
func TestBuilderRefine(t *testing.T) {
	doc := tree.MustParse("r(s(x),s(x,x))")
	b := NewBuilder(doc)
	pb := b.DefinePattern("lastx", RootPattern)
	if err := pb.Click(doc.Nodes[2]); err != nil { // r s x -> path s.x
		t.Fatal(err)
	}
	pb.Refine(Condition{Kind: CondLastSibling, Vars: []string{"x"}})
	b2, err := pb.Commit()
	if err != nil {
		t.Fatal(err)
	}
	got, err := b2.Instances("lastx")
	if err != nil {
		t.Fatal(err)
	}
	// x nodes: ids 2 (only child: last), 4, 5 (5 is last). Node 2 and 5.
	if fmt.Sprint(got) != "[2 5]" {
		t.Errorf("lastx = %v", got)
	}
}

// TestEvaluateRoutesDelta: Evaluate dispatches Δ programs to the
// direct evaluator transparently.
func TestEvaluateRoutesDelta(t *testing.T) {
	p := AnBnProgram()
	root := tree.New("r", tree.New("a"), tree.New("b"))
	doc := tree.NewTree(root)
	res, err := p.Evaluate(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res["anbn"]) != 1 {
		t.Errorf("anbn = %v", res["anbn"])
	}
}

// TestBuilderSpecializationClick: clicking a parent instance itself
// yields a specialization rule.
func TestBuilderSpecializationClick(t *testing.T) {
	doc := tree.MustParse("r(a)")
	b := NewBuilder(doc)
	pb := b.DefinePattern("self", RootPattern)
	if err := pb.Click(doc.Root); err != nil {
		t.Fatal(err)
	}
	b2, err := pb.Commit()
	if err != nil {
		t.Fatal(err)
	}
	r := b2.Program().Rules[0]
	if !r.IsSpecialization() {
		t.Errorf("expected specialization, got %s", r)
	}
	got, err := b2.Instances("self")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[0]" {
		t.Errorf("self = %v", got)
	}
}

// TestBuilderTwoRuleShapes: clicks at different depths yield separate
// rules rather than a broken generalization.
func TestBuilderTwoRuleShapes(t *testing.T) {
	doc := tree.MustParse("r(a(x),b(c(x)))")
	b := NewBuilder(doc)
	pb := b.DefinePattern("hit", RootPattern)
	if err := pb.Click(doc.Nodes[2]); err != nil { // a/x: depth 2
		t.Fatal(err)
	}
	if err := pb.Click(doc.Nodes[5]); err != nil { // b/c/x: depth 3
		t.Fatal(err)
	}
	b2, err := pb.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if len(b2.Program().Rules) != 2 {
		t.Fatalf("expected 2 rules:\n%s", b2.Program())
	}
	got, err := b2.Instances("hit")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[2 5]" {
		t.Errorf("hit = %v", got)
	}
}

// TestCondStrings covers the printers used in error paths.
func TestCondStrings(t *testing.T) {
	conds := []Condition{
		{Kind: CondLeaf, Vars: []string{"x"}},
		{Kind: CondFirstSibling, Vars: []string{"x"}},
		{Kind: CondLastSibling, Vars: []string{"x"}},
		{Kind: CondNextSibling, Vars: []string{"x", "y"}},
		{Kind: CondContains, Path: Path{"a"}, Vars: []string{"x", "y"}},
		{Kind: CondBefore, Path: Path{"b"}, Alpha: 10, Beta: 90, Vars: []string{"x", "y", "z"}},
		{Kind: CondNotAfter, Path: Path{"a"}, Vars: []string{"x", "y"}},
		{Kind: CondNotBefore, Path: Path{"a"}, Vars: []string{"x", "y"}},
	}
	for _, c := range conds {
		if c.String() == "?" || c.String() == "" {
			t.Errorf("bad String for kind %d", c.Kind)
		}
	}
	if (Ref{Pattern: "p", Var: "x"}).String() != "p(x)" {
		t.Error("Ref.String wrong")
	}
}

// TestFromDatalogRejects: programs outside the supported signature.
func TestFromDatalogRejects(t *testing.T) {
	if _, err := FromDatalog(datalog.MustParseProgram(`q(X,Y) :- child(X,Y).`)); err == nil {
		t.Error("non-monadic accepted")
	}
}
