package elog

import (
	"fmt"

	"mdlog/internal/datalog"
	"mdlog/internal/eval"
	"mdlog/internal/tmnf"
)

// FromDatalog implements the interesting direction of Theorem 6.5:
// every monadic datalog program over τ_ur defines a set of extraction
// functions expressible in Elog⁻. The input is first normalized to
// TMNF (Theorem 5.2); each normal-form rule then maps to an Elog⁻
// rule as in the paper's proof:
//
//   - p(x) ← p0(x) becomes a specialization rule;
//   - p(x) ← label_a(x) becomes p(x) ← dom(x0), subelem_a(x0, x);
//   - p(x) ← p0(x0), nextsibling(x0, x) becomes a specialization rule
//     of dom with a nextsibling condition and a pattern reference;
//   - p(x) ← p0(y), firstchild(x, y) (upward inference) becomes
//     p(x) ← dom(x), contains__(x, y), firstsibling(y), p0(y);
//
// plus the recursive two-rule dom pattern matching every node.
//
// Caveat (inherited from the paper's construction): label atoms are
// translated through subelem, which reaches only nodes that are a
// child of some node. The translation is exact on trees whose root's
// label is never tested by the program — in Web wrapping the root is
// the synthetic document node, so this is vacuous; tests use a
// dedicated root label.
func FromDatalog(p *datalog.Program) (*Program, error) {
	tp, err := tmnf.Transform(p)
	if err != nil {
		return nil, err
	}
	return fromTMNF(tp)
}

// domPatternName is the universal pattern of the Theorem 6.5 proof.
const domPatternName = "dom_el"

func domPatternRules() []Rule {
	return []Rule{
		// dom(x) ← root(x): specialization of the root pattern.
		{Head: domPatternName, HeadVar: "x", Parent: RootPattern, ParentVar: "x"},
		// dom(x) ← dom(x0), subelem__(x0, x): children of dom nodes.
		{Head: domPatternName, HeadVar: "x", Parent: domPatternName, ParentVar: "x0",
			Path: Path{Wildcard}},
	}
}

func fromTMNF(p *datalog.Program) (*Program, error) {
	if err := tmnf.IsTMNF(p); err != nil {
		return nil, fmt.Errorf("elog: FromDatalog needs a TMNF program: %v", err)
	}
	out := &Program{}
	idb := map[string]bool{}
	for _, r := range p.Rules {
		idb[r.Head.Pred] = true
	}
	// classify translates a unary body predicate to Elog⁻ building
	// blocks: a parent pattern, a condition, or a subelem label hop.
	for _, r := range p.Rules {
		hv := r.Head.Args[0].Var
		er := Rule{Head: r.Head.Pred, HeadVar: vnLower(hv)}
		switch len(r.Body) {
		case 1:
			// Form (1): p(x) ← p0(x).
			if err := specializeWith(&er, r.Body[0].Pred, idb); err != nil {
				return nil, fmt.Errorf("elog: %v in %s", err, r)
			}
		case 2:
			a1, a2 := r.Body[0], r.Body[1]
			if len(a1.Args) == 2 {
				a1, a2 = a2, a1
			}
			if len(a2.Args) == 1 {
				// Form (3): p(x) ← p0(x), p1(x).
				if err := specializeWith(&er, a1.Pred, idb); err != nil {
					return nil, fmt.Errorf("elog: %v in %s", err, r)
				}
				if err := addUnary(&er, a2.Pred, er.HeadVar, idb); err != nil {
					return nil, fmt.Errorf("elog: %v in %s", err, r)
				}
			} else {
				// Form (2): p(x) ← p0(x0), B(x0, x) with B ∈ {firstchild,
				// nextsibling} in either orientation.
				x0 := a1.Args[0].Var
				v0 := vnLower(x0)
				er.Parent = domPatternName
				er.ParentVar = er.HeadVar // specialization of dom
				fwd := a2.Args[0].Var == x0
				switch {
				case a2.Pred == "nextsibling" && fwd:
					er.Conds = append(er.Conds, Condition{Kind: CondNextSibling, Vars: []string{v0, er.HeadVar}})
				case a2.Pred == "nextsibling" && !fwd:
					er.Conds = append(er.Conds, Condition{Kind: CondNextSibling, Vars: []string{er.HeadVar, v0}})
				case a2.Pred == "firstchild" && fwd:
					// x is the first child of x0: x0 contains x; x firstsibling.
					er.Conds = append(er.Conds,
						Condition{Kind: CondContains, Path: Path{Wildcard}, Vars: []string{v0, er.HeadVar}},
						Condition{Kind: CondFirstSibling, Vars: []string{er.HeadVar}})
					// The containment runs downward from x0, so reference x0
					// via the pattern and let contains link them.
				case a2.Pred == "firstchild" && !fwd:
					// firstchild(x, x0): infer upward — x contains x0, x0 first.
					er.Conds = append(er.Conds,
						Condition{Kind: CondContains, Path: Path{Wildcard}, Vars: []string{er.HeadVar, v0}},
						Condition{Kind: CondFirstSibling, Vars: []string{v0}})
				default:
					return nil, fmt.Errorf("elog: unexpected binary atom in TMNF rule %s", r)
				}
				if err := addUnary(&er, a1.Pred, v0, idb); err != nil {
					return nil, fmt.Errorf("elog: %v in %s", err, r)
				}
			}
		default:
			return nil, fmt.Errorf("elog: unexpected TMNF rule %s", r)
		}
		out.Rules = append(out.Rules, er)
	}
	out.Rules = append(out.Rules, domPatternRules()...)
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// specializeWith makes er a specialization rule whose parent reflects
// the given unary predicate.
func specializeWith(er *Rule, pred string, idb map[string]bool) error {
	er.ParentVar = er.HeadVar
	switch {
	case idb[pred]:
		er.Parent = pred
	case pred == eval.PredRoot:
		er.Parent = RootPattern
	case pred == eval.PredLeaf:
		er.Parent = domPatternName
		er.Conds = append(er.Conds, Condition{Kind: CondLeaf, Vars: []string{er.HeadVar}})
	case pred == eval.PredLastSibling:
		er.Parent = domPatternName
		er.Conds = append(er.Conds, Condition{Kind: CondLastSibling, Vars: []string{er.HeadVar}})
	default:
		if label, ok := eval.IsLabelPred(pred); ok {
			// p(x) ← dom(x0), subelem_label(x0, x).
			er.Parent = domPatternName
			er.ParentVar = "x0el"
			er.Path = Path{label}
			return nil
		}
		return fmt.Errorf("untranslatable unary predicate %s", pred)
	}
	return nil
}

// addUnary attaches a unary predicate on the given variable to er, as
// a pattern reference or a condition.
func addUnary(er *Rule, pred, v string, idb map[string]bool) error {
	switch {
	case idb[pred]:
		er.Refs = append(er.Refs, Ref{Pattern: pred, Var: v})
	case pred == eval.PredRoot:
		er.Refs = append(er.Refs, Ref{Pattern: RootPattern, Var: v})
	case pred == eval.PredLeaf:
		er.Conds = append(er.Conds, Condition{Kind: CondLeaf, Vars: []string{v}})
	case pred == eval.PredLastSibling:
		er.Conds = append(er.Conds, Condition{Kind: CondLastSibling, Vars: []string{v}})
	default:
		if label, ok := eval.IsLabelPred(pred); ok {
			// label_a(v): v is reachable from some dom node by an a-step.
			// Inline as contains from a referenced dom ancestor: v must be
			// a child of its parent with label a — expressed upward is not
			// available, so use contains from a fresh dom reference.
			er.Refs = append(er.Refs, Ref{Pattern: domPatternName, Var: "zel_" + v})
			er.Conds = append(er.Conds, Condition{Kind: CondContains, Path: Path{label},
				Vars: []string{"zel_" + v, v}})
			return nil
		}
		return fmt.Errorf("untranslatable unary predicate %s", pred)
	}
	return nil
}

// vnLower lowercases a datalog variable for the Elog convention.
func vnLower(v string) string {
	if v == "" {
		return v
	}
	if v[0] >= 'A' && v[0] <= 'Z' {
		return string(v[0]-'A'+'a') + v[1:]
	}
	return v
}
