package elog

import (
	"fmt"

	"mdlog/internal/datalog"
	"mdlog/internal/eval"
	"mdlog/internal/tmnf"
	"mdlog/internal/tree"
)

// ToDatalog translates an Elog⁻ program into monadic datalog over
// τ_ur ∪ {child} by expanding the subelem and contains shortcuts of
// Definition 6.1:
//
//	subelem_ε(x, y)   := x = y
//	subelem__.π(x, y) := child(x, z), subelem_π(z, y)
//	subelem_a.π(x, y) := child(x, z), label_a(z), subelem_π(z, y)
//
// contains is identical but with ε disallowed. firstsibling(x) is
// expanded to firstchild(y, x) to stay within the signature. Δ
// conditions are rejected (use EvalDirect for Elog⁻Δ).
func (p *Program) ToDatalog() (*datalog.Program, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.UsesDelta() {
		return nil, fmt.Errorf("elog: Δ conditions are not MSO-expressible; use EvalDirect")
	}
	out := &datalog.Program{}
	for ri, r := range p.Rules {
		fresh := 0
		newVar := func() string {
			fresh++
			return fmt.Sprintf("Z%d_%d", ri, fresh)
		}
		var body []datalog.Atom
		// Parent pattern atom (RootPattern maps to the extensional root).
		body = append(body, datalog.At(r.Parent, datalog.V(vn(r.ParentVar))))
		// subelem path.
		body = append(body, expandPath(r.Path, vn(r.ParentVar), vn(r.HeadVar), newVar)...)
		for _, c := range r.Conds {
			switch c.Kind {
			case CondLeaf:
				body = append(body, datalog.At("leaf", datalog.V(vn(c.Vars[0]))))
			case CondFirstSibling:
				body = append(body, datalog.At("firstchild", datalog.V(newVar()), datalog.V(vn(c.Vars[0]))))
			case CondLastSibling:
				body = append(body, datalog.At("lastsibling", datalog.V(vn(c.Vars[0]))))
			case CondNextSibling:
				body = append(body, datalog.At("nextsibling", datalog.V(vn(c.Vars[0])), datalog.V(vn(c.Vars[1]))))
			case CondContains:
				body = append(body, expandPath(c.Path, vn(c.Vars[0]), vn(c.Vars[1]), newVar)...)
			default:
				return nil, fmt.Errorf("elog: unexpected Δ condition %s", c)
			}
		}
		for _, ref := range r.Refs {
			body = append(body, datalog.At(ref.Pattern, datalog.V(vn(ref.Var))))
		}
		out.Rules = append(out.Rules, datalog.Rule{
			Head: datalog.At(r.Head, datalog.V(vn(r.HeadVar))),
			Body: body,
		})
	}
	if err := out.Check(); err != nil {
		return nil, err
	}
	return out, nil
}

// vn uppercases an Elog variable for the datalog syntax.
func vn(v string) string {
	if v == "" {
		return v
	}
	if v[0] >= 'a' && v[0] <= 'z' {
		return string(v[0]-'a'+'A') + v[1:]
	}
	return v
}

// expandPath emits the child/label chain for subelem_π(from, to).
func expandPath(path Path, from, to string, newVar func() string) []datalog.Atom {
	var atoms []datalog.Atom
	cur := from
	for i, el := range path {
		next := to
		if i+1 < len(path) {
			next = newVar()
		}
		atoms = append(atoms, datalog.At("child", datalog.V(cur), datalog.V(next)))
		if el != Wildcard {
			atoms = append(atoms, datalog.At("label_"+el, datalog.V(next)))
		}
		cur = next
	}
	return atoms
}

// CompileLinear compiles an Elog⁻ program for repeated linear-time
// evaluation (Corollary 6.4): translation to monadic datalog followed
// by the Theorem 5.2 TMNF pipeline.
func (p *Program) CompileLinear() (*datalog.Program, error) {
	dp, err := p.ToDatalog()
	if err != nil {
		return nil, err
	}
	return tmnf.Transform(dp)
}

// Evaluate runs the program on a tree via Corollary 6.4 (Elog⁻) or the
// direct evaluator (Elog⁻Δ) and returns the extension of every
// pattern.
func (p *Program) Evaluate(t *tree.Tree) (map[string][]int, error) {
	if p.UsesDelta() {
		return p.EvalDirect(t)
	}
	tp, err := p.CompileLinear()
	if err != nil {
		return nil, err
	}
	res, err := eval.LinearTree(tp, t)
	if err != nil {
		return nil, err
	}
	out := map[string][]int{}
	for _, pat := range p.Patterns() {
		out[pat] = res.UnarySet(pat)
	}
	return out, nil
}

// ε-path subelem handling note: expandPath returns no atoms for an
// empty path, in which case the rule's head variable coincides with
// the parent variable (validated), realizing subelem_ε(x, y) := x = y.
