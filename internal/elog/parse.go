package elog

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseProgram reads an Elog⁻ / Elog⁻Δ program in textual syntax:
//
//	% price extraction
//	item(x)  :- root(x0), subelem("table._.tr", x0, x).
//	price(x) :- item(x0), subelem("td.#text", x0, x), lastsibling(x).
//	cheap(x) :- price(x), leaf(x).
//	anbn(x)  :- root(x), contains("a", x, y), a0(y),
//	            before("b", 50, 50, x, y, z), b0(z).
//
// The first body atom must be the parent pattern; a subelem atom (if
// present) must name the parent variable and the head variable. The
// remaining atoms are conditions (leaf, firstsibling, lastsibling,
// nextsibling, contains, before, notafter, notbefore) and pattern
// references. Paths are dot-separated quoted strings with "_"
// wildcards; "" is ε (specialization via shared variable is also
// accepted). Variables are lower-case identifiers.
func ParseProgram(src string) (*Program, error) {
	p := &elogParser{src: src, line: 1}
	prog := &Program{}
	for {
		p.skipWS()
		if p.eof() {
			break
		}
		r, err := p.rule()
		if err != nil {
			return nil, err
		}
		prog.Rules = append(prog.Rules, r)
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

// MustParseProgram panics on error.
func MustParseProgram(src string) *Program {
	p, err := ParseProgram(src)
	if err != nil {
		panic(err)
	}
	return p
}

type elogParser struct {
	src  string
	pos  int
	line int
}

func (p *elogParser) eof() bool { return p.pos >= len(p.src) }

func (p *elogParser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("elog: line %d: %s", p.line, fmt.Sprintf(format, args...))
}

func (p *elogParser) skipWS() {
	for !p.eof() {
		c := p.src[p.pos]
		switch {
		case c == '\n':
			p.line++
			p.pos++
		case c == ' ' || c == '\t' || c == '\r':
			p.pos++
		case c == '%':
			for !p.eof() && p.src[p.pos] != '\n' {
				p.pos++
			}
		default:
			return
		}
	}
}

func (p *elogParser) consume(c byte) bool {
	if !p.eof() && p.src[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

func (p *elogParser) ident() (string, error) {
	p.skipWS()
	start := p.pos
	for !p.eof() {
		c := p.src[p.pos]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '#' {
			p.pos++
		} else {
			break
		}
	}
	if p.pos == start {
		return "", p.errf("expected identifier")
	}
	return p.src[start:p.pos], nil
}

func (p *elogParser) quoted() (string, error) {
	p.skipWS()
	if !p.consume('"') {
		return "", p.errf("expected quoted path")
	}
	start := p.pos
	for !p.eof() && p.src[p.pos] != '"' {
		p.pos++
	}
	if p.eof() {
		return "", p.errf("unterminated string")
	}
	s := p.src[start:p.pos]
	p.pos++
	return s, nil
}

func (p *elogParser) number() (int, error) {
	p.skipWS()
	start := p.pos
	for !p.eof() && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		p.pos++
	}
	if p.pos == start {
		return 0, p.errf("expected number")
	}
	return strconv.Atoi(p.src[start:p.pos])
}

// genericAtom is a parsed body atom before classification.
type genericAtom struct {
	name    string
	path    string
	nums    []int
	vars    []string
	hasPath bool
}

func (p *elogParser) atom() (genericAtom, error) {
	var a genericAtom
	name, err := p.ident()
	if err != nil {
		return a, err
	}
	a.name = name
	p.skipWS()
	if !p.consume('(') {
		return a, p.errf("expected '(' after %s", name)
	}
	first := true
	for {
		p.skipWS()
		if p.consume(')') {
			return a, nil
		}
		if !first {
			// already consumed comma below
		}
		first = false
		switch {
		case !p.eof() && p.src[p.pos] == '"':
			s, err := p.quoted()
			if err != nil {
				return a, err
			}
			a.path = s
			a.hasPath = true
		case !p.eof() && p.src[p.pos] >= '0' && p.src[p.pos] <= '9':
			n, err := p.number()
			if err != nil {
				return a, err
			}
			a.nums = append(a.nums, n)
		default:
			v, err := p.ident()
			if err != nil {
				return a, err
			}
			a.vars = append(a.vars, v)
		}
		p.skipWS()
		if p.consume(')') {
			return a, nil
		}
		if !p.consume(',') {
			return a, p.errf("expected ',' or ')' in %s", name)
		}
	}
}

func (p *elogParser) rule() (Rule, error) {
	var r Rule
	head, err := p.atom()
	if err != nil {
		return r, err
	}
	if len(head.vars) != 1 || head.hasPath || len(head.nums) != 0 {
		return r, p.errf("head must be pattern(var)")
	}
	r.Head, r.HeadVar = head.name, head.vars[0]
	p.skipWS()
	if !strings.HasPrefix(p.src[p.pos:], ":-") {
		return r, p.errf("expected ':-'")
	}
	p.pos += 2

	// First atom: the parent pattern.
	parent, err := p.atom()
	if err != nil {
		return r, err
	}
	if len(parent.vars) != 1 || parent.hasPath {
		return r, p.errf("parent atom must be pattern(var)")
	}
	r.Parent, r.ParentVar = parent.name, parent.vars[0]

	haveSubelem := false
	for {
		p.skipWS()
		if p.consume('.') {
			break
		}
		if !p.consume(',') {
			return r, p.errf("expected ',' or '.'")
		}
		a, err := p.atom()
		if err != nil {
			return r, err
		}
		switch a.name {
		case "subelem":
			if haveSubelem {
				return r, p.errf("duplicate subelem")
			}
			if !a.hasPath || len(a.vars) != 2 {
				return r, p.errf("subelem needs (\"path\", from, to)")
			}
			if a.vars[0] != r.ParentVar || a.vars[1] != r.HeadVar {
				return r, p.errf("subelem must go from the parent variable to the head variable")
			}
			r.Path = ParsePath(a.path)
			haveSubelem = true
		case "leaf", "firstsibling", "lastsibling":
			if len(a.vars) != 1 {
				return r, p.errf("%s needs one variable", a.name)
			}
			kind := map[string]CondKind{
				"leaf": CondLeaf, "firstsibling": CondFirstSibling, "lastsibling": CondLastSibling,
			}[a.name]
			r.Conds = append(r.Conds, Condition{Kind: kind, Vars: a.vars})
		case "nextsibling":
			if len(a.vars) != 2 {
				return r, p.errf("nextsibling needs two variables")
			}
			r.Conds = append(r.Conds, Condition{Kind: CondNextSibling, Vars: a.vars})
		case "contains":
			if !a.hasPath || len(a.vars) != 2 {
				return r, p.errf("contains needs (\"path\", from, to)")
			}
			r.Conds = append(r.Conds, Condition{Kind: CondContains, Path: ParsePath(a.path), Vars: a.vars})
		case "before":
			if !a.hasPath || len(a.nums) != 2 || len(a.vars) != 3 {
				return r, p.errf("before needs (\"path\", alpha, beta, x0, x, y)")
			}
			r.Conds = append(r.Conds, Condition{Kind: CondBefore, Path: ParsePath(a.path),
				Alpha: a.nums[0], Beta: a.nums[1], Vars: a.vars})
		case "notafter", "notbefore":
			if !a.hasPath || len(a.vars) != 2 {
				return r, p.errf("%s needs (\"path\", x, y)", a.name)
			}
			kind := CondNotAfter
			if a.name == "notbefore" {
				kind = CondNotBefore
			}
			r.Conds = append(r.Conds, Condition{Kind: kind, Path: ParsePath(a.path), Vars: a.vars})
		default:
			if len(a.vars) != 1 || a.hasPath || len(a.nums) != 0 {
				return r, p.errf("pattern reference %s needs one variable", a.name)
			}
			r.Refs = append(r.Refs, Ref{Pattern: a.name, Var: a.vars[0]})
		}
	}
	if !haveSubelem && r.HeadVar != r.ParentVar {
		return r, p.errf("rule without subelem must reuse the parent variable")
	}
	return r, nil
}
