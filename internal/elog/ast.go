// Package elog implements the Elog⁻ wrapping language of Section 6 of
// Gottlob & Koch (PODS 2002) — the MSO-complete kernel of the Lixto
// system's Elog — together with:
//
//   - translation to monadic datalog over τ_ur ∪ {child}
//     (Definition 6.1) and back (Theorem 6.5);
//   - linear-time evaluation via the TMNF pipeline (Corollary 6.4);
//   - the Elog⁻Δ extension with distance tolerances and
//     notbefore/notafter conditions, which exceeds MSO
//     (Theorem 6.6: aⁿbⁿ);
//   - a programmatic "visual specification" builder in the style of
//     Section 6.2 (click an example node, infer the subelem path).
package elog

import (
	"fmt"
	"strings"
)

// Wildcard is the path element matching any label (the '_' of
// Definition 6.1).
const Wildcard = "_"

// RootPattern is the reserved parent-pattern name denoting the
// extensional root relation.
const RootPattern = "root"

// Path is a fixed path π ∈ (Σ ∪ {_})* for subelem and contains.
type Path []string

// ParsePath reads "a._.b" (empty string = ε).
func ParsePath(s string) Path {
	if s == "" {
		return nil
	}
	return Path(strings.Split(s, "."))
}

func (p Path) String() string { return strings.Join(p, ".") }

// CondKind enumerates the condition predicates of Definition 6.2 and
// the Elog⁻Δ extensions.
type CondKind int

const (
	// CondLeaf is leaf(x).
	CondLeaf CondKind = iota
	// CondFirstSibling is firstsibling(x).
	CondFirstSibling
	// CondLastSibling is lastsibling(x).
	CondLastSibling
	// CondNextSibling is nextsibling(x, y).
	CondNextSibling
	// CondContains is contains_π(x, y), π nonempty.
	CondContains
	// CondBefore is before_{π,α%−β%}(x0, x, y): Elog⁻Δ only. With x0
	// having k children, y must be a child of x0 reachable via the
	// (length-1) path π, and pos(y) − pos(x) ∈ [⌈kα/100⌉, ⌊kβ/100⌋].
	CondBefore
	// CondNotAfter is notafter_π(x, y): no node reachable from x via π
	// lies strictly before y in document order (Elog⁻Δ).
	CondNotAfter
	// CondNotBefore is notbefore_π(x, y): no node reachable from x via
	// π lies strictly after y (Elog⁻Δ).
	CondNotBefore
)

// Condition is one condition atom.
type Condition struct {
	Kind CondKind
	Path Path
	// Vars: 1 for unary kinds, 2 for nextsibling/contains/notafter/
	// notbefore, 3 for before (x0, x, y).
	Vars []string
	// Alpha, Beta are the percentage bounds of CondBefore.
	Alpha, Beta int
}

func (c Condition) String() string {
	switch c.Kind {
	case CondLeaf:
		return fmt.Sprintf("leaf(%s)", c.Vars[0])
	case CondFirstSibling:
		return fmt.Sprintf("firstsibling(%s)", c.Vars[0])
	case CondLastSibling:
		return fmt.Sprintf("lastsibling(%s)", c.Vars[0])
	case CondNextSibling:
		return fmt.Sprintf("nextsibling(%s,%s)", c.Vars[0], c.Vars[1])
	case CondContains:
		return fmt.Sprintf("contains(%q,%s,%s)", c.Path.String(), c.Vars[0], c.Vars[1])
	case CondBefore:
		return fmt.Sprintf("before(%q,%d,%d,%s,%s,%s)", c.Path.String(), c.Alpha, c.Beta,
			c.Vars[0], c.Vars[1], c.Vars[2])
	case CondNotAfter:
		return fmt.Sprintf("notafter(%q,%s,%s)", c.Path.String(), c.Vars[0], c.Vars[1])
	case CondNotBefore:
		return fmt.Sprintf("notbefore(%q,%s,%s)", c.Path.String(), c.Vars[0], c.Vars[1])
	}
	return "?"
}

// Ref is a pattern reference atom p(v).
type Ref struct {
	Pattern string
	Var     string
}

func (r Ref) String() string { return fmt.Sprintf("%s(%s)", r.Pattern, r.Var) }

// Rule is an Elog⁻ rule
//
//	p(x) ← p0(x0), subelem_π(x0, x), C, R.
//
// A specialization rule has an ε path and HeadVar == ParentVar.
type Rule struct {
	Head      string
	HeadVar   string
	Parent    string
	ParentVar string
	Path      Path // ε allowed (specialization)
	Conds     []Condition
	Refs      []Ref
}

func (r Rule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%s) :- %s(%s)", r.Head, r.HeadVar, r.Parent, r.ParentVar)
	if !(len(r.Path) == 0 && r.HeadVar == r.ParentVar) {
		fmt.Fprintf(&b, ", subelem(%q,%s,%s)", r.Path.String(), r.ParentVar, r.HeadVar)
	}
	for _, c := range r.Conds {
		b.WriteString(", ")
		b.WriteString(c.String())
	}
	for _, ref := range r.Refs {
		b.WriteString(", ")
		b.WriteString(ref.String())
	}
	b.WriteString(".")
	return b.String()
}

// IsSpecialization reports whether the rule is a specialization rule
// (ε path re-using the parent variable).
func (r Rule) IsSpecialization() bool {
	return len(r.Path) == 0 && r.HeadVar == r.ParentVar
}

// Program is an Elog⁻ (or Elog⁻Δ) program: a set of rules with
// distinguished extraction patterns.
type Program struct {
	Rules []Rule
	// Extract lists the patterns whose extensions form the wrapper's
	// information extraction functions (default: all head patterns).
	Extract []string
}

func (p *Program) String() string {
	var b strings.Builder
	for _, r := range p.Rules {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Patterns returns the sorted set of pattern predicates defined by the
// program (rule heads).
func (p *Program) Patterns() []string {
	set := map[string]bool{}
	for _, r := range p.Rules {
		set[r.Head] = true
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// UsesDelta reports whether the program uses Elog⁻Δ conditions
// (before with distance tolerance, notafter, notbefore).
func (p *Program) UsesDelta() bool {
	for _, r := range p.Rules {
		for _, c := range r.Conds {
			switch c.Kind {
			case CondBefore, CondNotAfter, CondNotBefore:
				return true
			}
		}
	}
	return false
}

// Validate checks Definition 6.2: head patterns must not be RootPattern,
// variables must form a connected query graph, condition arities match,
// and contains paths are nonempty.
func (p *Program) Validate() error {
	heads := map[string]bool{}
	for _, r := range p.Rules {
		heads[r.Head] = true
	}
	if heads[RootPattern] {
		return fmt.Errorf("elog: %q is reserved", RootPattern)
	}
	for _, r := range p.Rules {
		if r.Head == "" || r.HeadVar == "" || r.Parent == "" || r.ParentVar == "" {
			return fmt.Errorf("elog: incomplete rule %s", r)
		}
		if len(r.Path) == 0 && r.HeadVar != r.ParentVar {
			return fmt.Errorf("elog: ε-path rule must reuse the parent variable: %s", r)
		}
		if len(r.Path) > 0 && r.HeadVar == r.ParentVar {
			return fmt.Errorf("elog: non-ε subelem cannot be reflexive: %s", r)
		}
		arity := map[CondKind]int{
			CondLeaf: 1, CondFirstSibling: 1, CondLastSibling: 1,
			CondNextSibling: 2, CondContains: 2,
			CondBefore: 3, CondNotAfter: 2, CondNotBefore: 2,
		}
		for _, c := range r.Conds {
			if len(c.Vars) != arity[c.Kind] {
				return fmt.Errorf("elog: condition arity mismatch in %s", r)
			}
			switch c.Kind {
			case CondContains, CondNotAfter, CondNotBefore:
				if len(c.Path) == 0 {
					return fmt.Errorf("elog: %s requires a nonempty path: %s", c, r)
				}
			case CondBefore:
				if len(c.Path) != 1 {
					return fmt.Errorf("elog: before supports length-1 paths, got %q in %s", c.Path, r)
				}
				if c.Alpha < 0 || c.Beta > 100 || c.Alpha > c.Beta {
					return fmt.Errorf("elog: bad tolerance %d%%-%d%% in %s", c.Alpha, c.Beta, r)
				}
			}
		}
		if err := r.checkConnected(); err != nil {
			return err
		}
	}
	return nil
}

// checkConnected verifies the connected-query-graph requirement of
// Definition 6.2.
func (r Rule) checkConnected() error {
	parent := map[string]string{}
	var find func(string) string
	find = func(x string) string {
		if p, ok := parent[x]; ok && p != x {
			root := find(p)
			parent[x] = root
			return root
		}
		return x
	}
	union := func(x, y string) { parent[find(x)] = find(y) }
	vars := map[string]bool{r.HeadVar: true, r.ParentVar: true}
	union(r.HeadVar, r.ParentVar) // the subelem atom (or shared var) links them
	link := func(vs []string) {
		for i := 1; i < len(vs); i++ {
			union(vs[0], vs[i])
		}
		for _, v := range vs {
			vars[v] = true
		}
	}
	for _, c := range r.Conds {
		link(c.Vars)
	}
	for _, ref := range r.Refs {
		vars[ref.Var] = true
	}
	root := find(r.HeadVar)
	for v := range vars {
		if find(v) != root {
			return fmt.Errorf("elog: query graph of rule not connected (variable %s): %s", v, r)
		}
	}
	return nil
}
