package html

import (
	"fmt"
	"math/rand"
	"strings"
)

// Synthetic document generators for examples and benchmarks: the
// paper's motivating workloads are product listings and index pages;
// these produce realistic structures at controlled sizes (the
// substitution for live Web pages documented in DESIGN.md).

// ProductListing generates an HTML page with a header, a table of
// rows product rows (name, price, availability), and a footer. The
// rng controls names and prices (pass a seeded source for
// reproducibility).
func ProductListing(rng *rand.Rand, rows int) string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html><html><head><title>Catalog</title></head><body>\n")
	b.WriteString("<h1>Product catalog</h1>\n<table class=\"items\">\n")
	b.WriteString("<tr><th>Item</th><th>Price</th><th>Stock</th></tr>\n")
	adjectives := []string{"Red", "Blue", "Large", "Small", "Deluxe", "Basic", "Pro", "Mini"}
	nouns := []string{"Widget", "Gadget", "Sprocket", "Gizmo", "Doodad", "Contraption"}
	for i := 0; i < rows; i++ {
		name := fmt.Sprintf("%s %s %d",
			adjectives[rng.Intn(len(adjectives))], nouns[rng.Intn(len(nouns))], i+1)
		price := fmt.Sprintf("%d.%02d", 1+rng.Intn(500), rng.Intn(100))
		stock := "in stock"
		if rng.Intn(4) == 0 {
			stock = "sold out"
		}
		fmt.Fprintf(&b, "<tr class=\"item\"><td>%s</td><td><b>$%s</b></td><td><em>%s</em></td></tr>\n",
			name, price, stock)
	}
	b.WriteString("</table>\n<p>Contact us for bulk orders.</p>\n</body></html>")
	return b.String()
}

// NewsIndex generates a nested index page: sections containing lists
// of headline links with summaries.
func NewsIndex(rng *rand.Rand, sections, itemsPer int) string {
	var b strings.Builder
	b.WriteString("<html><body><div id=\"main\">\n")
	topics := []string{"World", "Tech", "Sports", "Science", "Culture", "Finance"}
	for s := 0; s < sections; s++ {
		topic := topics[s%len(topics)]
		fmt.Fprintf(&b, "<div class=\"section\"><h2>%s</h2><ul>\n", topic)
		for i := 0; i < itemsPer; i++ {
			fmt.Fprintf(&b,
				"<li><a href=\"/story/%d-%d\">%s story %d</a><span>summary %d</span></li>\n",
				s, i, topic, i+1, rng.Intn(1000))
		}
		b.WriteString("</ul></div>\n")
	}
	b.WriteString("</div></body></html>")
	return b.String()
}
