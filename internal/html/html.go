// Package html is the document substrate of the reproduction: a
// from-scratch HTML tokenizer and tree builder sufficient for the Web
// wrapping scenarios of Gottlob & Koch (PODS 2002). The paper assumes
// "an existing HTML parser as a front end" producing unranked document
// trees; offline we provide our own for a practical HTML subset:
//
//   - start/end/self-closing tags with quoted, unquoted and bare
//     attributes; case-insensitive tag and attribute names;
//   - void elements (br, img, hr, ...) that never take children;
//   - implied end tags for li, p, td, th, tr, option, dt, dd;
//   - raw-text elements (script, style) whose content is opaque;
//   - comments, doctype, and character entities (named, decimal and
//     hexadecimal).
//
// Text becomes #text-labeled leaves (with the character data in
// Node.Text); element labels are lower-case tag names, so the label
// predicates of τ_ur are label_div, label_td, ..., plus label_#text.
//
// The primary entry point is ParseReader, a streaming tokenizer that
// builds the arena (struct-of-arrays) representation directly from an
// io.Reader in one pass. Parse wraps it for in-memory strings, and
// ParseNodes is the original pointer-per-node builder, retained as an
// independently implemented reference for differential testing and as
// the pointer-tree baseline in benchmarks.
package html

import (
	"strings"

	"mdlog/internal/tree"
)

// voidElements never have children.
var voidElements = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

// impliedEnd[tag] lists open tags that an opening <tag> implicitly
// closes (a pragmatic subset of the HTML5 rules).
var impliedEnd = map[string][]string{
	"li":     {"li"},
	"p":      {"p"},
	"td":     {"td", "th"},
	"th":     {"td", "th"},
	"tr":     {"tr", "td", "th"},
	"option": {"option"},
	"dt":     {"dt", "dd"},
	"dd":     {"dt", "dd"},
}

// rawText elements swallow everything until their end tag.
var rawText = map[string]bool{"script": true, "style": true}

var entities = map[string]string{
	"amp": "&", "lt": "<", "gt": ">", "quot": `"`, "apos": "'",
	"nbsp": " ", "copy": "©", "mdash": "—", "ndash": "–", "hellip": "…",
	"eur": "€", "euro": "€", "pound": "£", "yen": "¥",
}

// Parse builds a document tree from in-memory HTML source via the
// streaming arena parser. The result is rooted at a synthetic
// #document node (as in real DOM trees), so the HTML root element is
// never the τ_ur root — which also sidesteps the root-label caveat of
// the Theorem 6.5 translation.
func Parse(src string) *tree.Tree {
	t, err := ParseReader(strings.NewReader(src))
	if err != nil {
		// strings.Reader cannot fail; parsing itself never errors.
		panic("html: " + err.Error())
	}
	return t
}

// ParseNodes is the legacy pointer-per-node tree builder. It
// implements exactly the same parsing policy as ParseReader over a
// different representation, which makes it the differential-testing
// twin of the streaming parser and the pointer-tree baseline of the
// substrate benchmarks. New code should use Parse or ParseReader.
func ParseNodes(src string) *tree.Tree {
	doc := tree.New("#document")
	stack := []*tree.Node{doc}
	top := func() *tree.Node { return stack[len(stack)-1] }

	// Boundary-whitespace bookkeeping (see textContent): the last
	// emitted text node gains a trailing space when an element follows
	// it under the same parent.
	var lastText *tree.Node
	var lastTextOwner *tree.Node
	lastTextTrail := false

	var pending strings.Builder
	flushText := func() {
		if pending.Len() == 0 {
			return
		}
		raw := pending.String()
		pending.Reset()
		content, trail := textContent(raw, len(top().Children) > 0)
		if content == "" {
			return
		}
		n := tree.NewText(content)
		top().Add(n)
		lastText, lastTextOwner, lastTextTrail = n, top(), trail
	}
	elementBoundary := func() {
		if lastText != nil && lastTextOwner == top() && lastTextTrail {
			lastText.Text += " "
		}
		lastText = nil
	}
	openTag := func(name string, attrs map[string]string, selfClose bool) {
		// Pop every open element the new tag implicitly closes (e.g. a
		// <tr> closes an open td and then the open tr).
		for len(stack) > 1 {
			closed := false
			for _, closes := range impliedEnd[name] {
				if top().Label == closes {
					stack = stack[:len(stack)-1]
					closed = true
					break
				}
			}
			if !closed {
				break
			}
		}
		elementBoundary()
		n := tree.New(name)
		if len(attrs) > 0 {
			n.Attrs = attrs
		}
		top().Add(n)
		if !voidElements[name] && !selfClose {
			stack = append(stack, n)
		}
	}
	closeTag := func(name string) {
		for i := len(stack) - 1; i >= 1; i-- {
			if stack[i].Label == name {
				stack = stack[:i]
				return
			}
		}
		// Unmatched end tag: ignored.
	}

	i := 0
	for i < len(src) {
		lt := strings.IndexByte(src[i:], '<')
		if lt < 0 {
			pending.WriteString(src[i:])
			break
		}
		if lt > 0 {
			pending.WriteString(src[i : i+lt])
		}
		i += lt
		switch {
		case strings.HasPrefix(src[i:], "<!--"):
			flushText()
			end := strings.Index(src[i+4:], "-->")
			if end < 0 {
				i = len(src)
			} else {
				i += 4 + end + 3
			}
		case strings.HasPrefix(src[i:], "<!") || strings.HasPrefix(src[i:], "<?"):
			flushText()
			end := strings.IndexByte(src[i:], '>')
			if end < 0 {
				i = len(src)
			} else {
				i += end + 1
			}
		case strings.HasPrefix(src[i:], "</"):
			flushText()
			end := strings.IndexByte(src[i:], '>')
			if end < 0 {
				i = len(src)
				break
			}
			name := strings.ToLower(strings.TrimSpace(src[i+2 : i+end]))
			closeTag(name)
			i += end + 1
		default:
			end := findTagEnd(src, i)
			if end < 0 {
				// Stray '<' that does not start a tag: literal text.
				pending.WriteByte('<')
				i++
				break
			}
			flushText()
			name, attrs, selfClose := scanTag(src[i+1 : end])
			if end < len(src) {
				i = end + 1
			} else {
				i = len(src)
			}
			openTag(name, attrs, selfClose)
			if rawText[name] && !selfClose {
				endTag := "</" + name
				idx := strings.Index(strings.ToLower(src[i:]), endTag)
				if idx < 0 {
					i = len(src)
					closeTag(name)
				} else {
					raw := src[i : i+idx]
					if strings.TrimSpace(raw) != "" {
						top().Add(tree.NewText(raw))
					}
					i += idx
					gt := strings.IndexByte(src[i:], '>')
					if gt < 0 {
						i = len(src)
					} else {
						i += gt + 1
					}
					closeTag(name)
				}
			}
		}
	}
	flushText()
	return tree.NewTree(doc)
}

// findTagEnd returns the index of the '>' closing the start tag that
// begins at src[i] == '<', skipping over quoted attribute values, or
// len(src) if the tag never closes, or -1 if src[i+1] does not start a
// tag name.
func findTagEnd(src string, i int) int {
	j := i + 1
	if j >= len(src) || !isNameByte(src[j]) {
		return -1
	}
	var quote byte
	for ; j < len(src); j++ {
		c := src[j]
		if quote != 0 {
			if c == quote {
				quote = 0
			}
			continue
		}
		switch c {
		case '"', '\'':
			quote = c
		case '>':
			return j
		}
	}
	return len(src)
}

// scanTag parses the inside of a start tag (between '<' and '>'):
// the lower-cased name, the attributes (entity-decoded values), and
// whether the tag self-closes.
func scanTag(s string) (string, map[string]string, bool) {
	j := 0
	for j < len(s) && isNameByte(s[j]) {
		j++
	}
	name := strings.ToLower(s[:j])
	var attrs map[string]string
	selfClose := false
	for j < len(s) {
		for j < len(s) && isSpace(s[j]) {
			j++
		}
		if j >= len(s) {
			break
		}
		if s[j] == '/' {
			selfClose = true
			j++
			continue
		}
		// Attribute.
		aStart := j
		for j < len(s) && s[j] != '=' && s[j] != '/' && !isSpace(s[j]) {
			j++
		}
		aName := strings.ToLower(s[aStart:j])
		aVal := ""
		if j < len(s) && s[j] == '=' {
			j++
			for j < len(s) && isSpace(s[j]) {
				j++
			}
			if j < len(s) && (s[j] == '"' || s[j] == '\'') {
				q := s[j]
				j++
				vStart := j
				for j < len(s) && s[j] != q {
					j++
				}
				aVal = s[vStart:j]
				if j < len(s) {
					j++
				}
			} else {
				vStart := j
				for j < len(s) && !isSpace(s[j]) {
					j++
				}
				aVal = s[vStart:j]
			}
		}
		if aName != "" {
			if attrs == nil {
				attrs = map[string]string{}
			}
			attrs[aName] = decodeEntities(aVal)
		}
	}
	return name, attrs, selfClose
}

func isNameByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-' || c == ':'
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

// isTextSpace is the ASCII whitespace set of the HTML spec (TAB, LF,
// FF, CR, SPACE), used for character-data normalization.
func isTextSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f'
}

// textContent computes the stored character data for one raw text
// chunk: character references decoded, whitespace collapsed, and — the
// boundary-space rule — a single leading space preserved when the
// chunk began with whitespace and follows an existing sibling, so
// "<b>Price:</b> 9 EUR" extracts as "Price:" + " 9 EUR" rather than
// the concatenation "Price:9 EUR". It also reports whether the chunk
// ended in whitespace; the caller restores that trailing boundary
// space if (and only if) an element sibling follows. Whitespace-only
// chunks collapse to "" and produce no node.
func textContent(raw string, hasPrevSibling bool) (text string, trailing bool) {
	decoded := decodeCharRefs(raw)
	collapsed := collapseSpace(decoded)
	if collapsed == "" {
		return "", false
	}
	if hasPrevSibling && isTextSpace(decoded[0]) {
		collapsed = " " + collapsed
	}
	return collapsed, isTextSpace(decoded[len(decoded)-1])
}

// decodeCharRefs resolves &name;, &#NN; and &#xHH; references;
// invalid or unknown references are left intact.
func decodeCharRefs(s string) string {
	amp := strings.IndexByte(s, '&')
	if amp < 0 {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	b.WriteString(s[:amp])
	i := amp
	for i < len(s) {
		if s[i] != '&' {
			b.WriteByte(s[i])
			i++
			continue
		}
		semi := strings.IndexByte(s[i:], ';')
		if semi < 0 || semi > 10 {
			b.WriteByte(s[i])
			i++
			continue
		}
		name := s[i+1 : i+semi]
		if strings.HasPrefix(name, "#") {
			if r, ok := parseCharCode(name[1:]); ok {
				b.WriteRune(r)
				i += semi + 1
				continue
			}
		} else if rep, ok := entities[strings.ToLower(name)]; ok {
			b.WriteString(rep)
			i += semi + 1
			continue
		}
		b.WriteByte(s[i])
		i++
	}
	return b.String()
}

// parseCharCode parses the digits of a numeric character reference
// (after the '#'): decimal, or hexadecimal with an x/X prefix.
func parseCharCode(digits string) (rune, bool) {
	base := 10
	if len(digits) > 0 && (digits[0] == 'x' || digits[0] == 'X') {
		base = 16
		digits = digits[1:]
	}
	if digits == "" {
		return 0, false
	}
	code := 0
	for i := 0; i < len(digits); i++ {
		c := digits[i]
		var d int
		switch {
		case c >= '0' && c <= '9':
			d = int(c - '0')
		case base == 16 && c >= 'a' && c <= 'f':
			d = int(c-'a') + 10
		case base == 16 && c >= 'A' && c <= 'F':
			d = int(c-'A') + 10
		default:
			return 0, false
		}
		code = code*base + d
	}
	// Exclude NUL, out-of-range code points and surrogates.
	if code <= 0 || code >= 0x110000 || (code >= 0xD800 && code <= 0xDFFF) {
		return 0, false
	}
	return rune(code), true
}

// decodeEntities resolves character references and normalizes
// whitespace (the attribute-value pipeline; text nodes go through
// textContent for the boundary-space rule).
func decodeEntities(s string) string {
	return collapseSpace(decodeCharRefs(s))
}

// collapseSpace normalizes runs of ASCII whitespace to single spaces
// and trims, matching how browsers render character data. Already-
// normalized strings are returned as-is without allocating — the
// common case for real text.
func collapseSpace(s string) string {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !isTextSpace(c) {
			continue
		}
		if c == ' ' && i > 0 && i+1 < len(s) && !isTextSpace(s[i+1]) {
			continue // single interior space: fine
		}
		// Needs normalization.
		var b strings.Builder
		b.Grow(len(s))
		i, n, first := 0, len(s), true
		for i < n {
			for i < n && isTextSpace(s[i]) {
				i++
			}
			if i >= n {
				break
			}
			start := i
			for i < n && !isTextSpace(s[i]) {
				i++
			}
			if !first {
				b.WriteByte(' ')
			}
			first = false
			b.WriteString(s[start:i])
		}
		return b.String()
	}
	return s
}
