// Package html is the document substrate of the reproduction: a
// from-scratch HTML tokenizer and tree builder sufficient for the Web
// wrapping scenarios of Gottlob & Koch (PODS 2002). The paper assumes
// "an existing HTML parser as a front end" producing unranked document
// trees; offline we provide our own for a practical HTML subset:
//
//   - start/end/self-closing tags with quoted, unquoted and bare
//     attributes; case-insensitive tag and attribute names;
//   - void elements (br, img, hr, ...) that never take children;
//   - implied end tags for li, p, td, th, tr, option, dt, dd;
//   - raw-text elements (script, style) whose content is opaque;
//   - comments, doctype, and character entities (a practical set).
//
// Text becomes #text-labeled leaves (with the character data in
// Node.Text); element labels are lower-case tag names, so the label
// predicates of τ_ur are label_div, label_td, ..., plus label_#text.
package html

import (
	"strings"

	"mdlog/internal/tree"
)

// voidElements never have children.
var voidElements = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

// impliedEnd[tag] lists open tags that an opening <tag> implicitly
// closes (a pragmatic subset of the HTML5 rules).
var impliedEnd = map[string][]string{
	"li":     {"li"},
	"p":      {"p"},
	"td":     {"td", "th"},
	"th":     {"td", "th"},
	"tr":     {"tr", "td", "th"},
	"option": {"option"},
	"dt":     {"dt", "dd"},
	"dd":     {"dt", "dd"},
}

// rawText elements swallow everything until their end tag.
var rawText = map[string]bool{"script": true, "style": true}

var entities = map[string]string{
	"amp": "&", "lt": "<", "gt": ">", "quot": `"`, "apos": "'",
	"nbsp": " ", "copy": "©", "mdash": "—", "ndash": "–", "hellip": "…",
	"eur": "€", "euro": "€", "pound": "£", "yen": "¥",
}

// Parse builds a document tree from HTML source. The result is rooted
// at a synthetic #document node (as in real DOM trees), so the HTML
// root element is never the τ_ur root — which also sidesteps the
// root-label caveat of the Theorem 6.5 translation.
func Parse(src string) *tree.Tree {
	doc := tree.New("#document")
	stack := []*tree.Node{doc}
	top := func() *tree.Node { return stack[len(stack)-1] }

	appendText := func(text string) {
		if strings.TrimSpace(text) == "" {
			return
		}
		n := tree.NewText(decodeEntities(text))
		top().Add(n)
	}
	openTag := func(name string, attrs map[string]string, selfClose bool) {
		// Pop every open element the new tag implicitly closes (e.g. a
		// <tr> closes an open td and then the open tr).
		for len(stack) > 1 {
			closed := false
			for _, closes := range impliedEnd[name] {
				if top().Label == closes {
					stack = stack[:len(stack)-1]
					closed = true
					break
				}
			}
			if !closed {
				break
			}
		}
		n := tree.New(name)
		if len(attrs) > 0 {
			n.Attrs = attrs
		}
		top().Add(n)
		if !voidElements[name] && !selfClose {
			stack = append(stack, n)
		}
	}
	closeTag := func(name string) {
		for i := len(stack) - 1; i >= 1; i-- {
			if stack[i].Label == name {
				stack = stack[:i]
				return
			}
		}
		// Unmatched end tag: ignored.
	}

	i := 0
	for i < len(src) {
		lt := strings.IndexByte(src[i:], '<')
		if lt < 0 {
			appendText(src[i:])
			break
		}
		if lt > 0 {
			appendText(src[i : i+lt])
		}
		i += lt
		switch {
		case strings.HasPrefix(src[i:], "<!--"):
			end := strings.Index(src[i+4:], "-->")
			if end < 0 {
				i = len(src)
			} else {
				i += 4 + end + 3
			}
		case strings.HasPrefix(src[i:], "<!") || strings.HasPrefix(src[i:], "<?"):
			end := strings.IndexByte(src[i:], '>')
			if end < 0 {
				i = len(src)
			} else {
				i += end + 1
			}
		case strings.HasPrefix(src[i:], "</"):
			end := strings.IndexByte(src[i:], '>')
			if end < 0 {
				i = len(src)
				break
			}
			name := strings.ToLower(strings.TrimSpace(src[i+2 : i+end]))
			closeTag(name)
			i += end + 1
		default:
			name, attrs, selfClose, next := parseTag(src, i)
			if name == "" {
				appendText("<")
				i++
				break
			}
			i = next
			openTag(name, attrs, selfClose)
			if rawText[name] && !selfClose {
				endTag := "</" + name
				idx := strings.Index(strings.ToLower(src[i:]), endTag)
				if idx < 0 {
					i = len(src)
					closeTag(name)
				} else {
					raw := src[i : i+idx]
					if strings.TrimSpace(raw) != "" {
						top().Add(tree.NewText(raw))
					}
					i += idx
					gt := strings.IndexByte(src[i:], '>')
					if gt < 0 {
						i = len(src)
					} else {
						i += gt + 1
					}
					closeTag(name)
				}
			}
		}
	}
	return tree.NewTree(doc)
}

// parseTag parses a start tag beginning at src[i] == '<'. Returns the
// lower-cased name (empty if not a valid tag), attributes, whether the
// tag self-closes, and the index after '>'.
func parseTag(src string, i int) (string, map[string]string, bool, int) {
	j := i + 1
	start := j
	for j < len(src) && isNameByte(src[j]) {
		j++
	}
	if j == start {
		return "", nil, false, i
	}
	name := strings.ToLower(src[start:j])
	var attrs map[string]string
	selfClose := false
	for j < len(src) {
		for j < len(src) && isSpace(src[j]) {
			j++
		}
		if j >= len(src) {
			break
		}
		if src[j] == '>' {
			return name, attrs, selfClose, j + 1
		}
		if src[j] == '/' {
			selfClose = true
			j++
			continue
		}
		// Attribute.
		aStart := j
		for j < len(src) && src[j] != '=' && src[j] != '>' && src[j] != '/' && !isSpace(src[j]) {
			j++
		}
		aName := strings.ToLower(src[aStart:j])
		aVal := ""
		if j < len(src) && src[j] == '=' {
			j++
			for j < len(src) && isSpace(src[j]) {
				j++
			}
			if j < len(src) && (src[j] == '"' || src[j] == '\'') {
				q := src[j]
				j++
				vStart := j
				for j < len(src) && src[j] != q {
					j++
				}
				aVal = src[vStart:j]
				if j < len(src) {
					j++
				}
			} else {
				vStart := j
				for j < len(src) && !isSpace(src[j]) && src[j] != '>' {
					j++
				}
				aVal = src[vStart:j]
			}
		}
		if aName != "" {
			if attrs == nil {
				attrs = map[string]string{}
			}
			attrs[aName] = decodeEntities(aVal)
		}
	}
	return name, attrs, selfClose, len(src)
}

func isNameByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-' || c == ':'
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

// decodeEntities resolves &name; and &#NN; references; unknown
// entities are left intact.
func decodeEntities(s string) string {
	if !strings.ContainsRune(s, '&') {
		return collapseSpace(s)
	}
	var b strings.Builder
	i := 0
	for i < len(s) {
		if s[i] != '&' {
			b.WriteByte(s[i])
			i++
			continue
		}
		semi := strings.IndexByte(s[i:], ';')
		if semi < 0 || semi > 10 {
			b.WriteByte(s[i])
			i++
			continue
		}
		name := s[i+1 : i+semi]
		if strings.HasPrefix(name, "#") {
			code := 0
			ok := len(name) > 1
			for _, c := range name[1:] {
				if c < '0' || c > '9' {
					ok = false
					break
				}
				code = code*10 + int(c-'0')
			}
			if ok && code > 0 && code < 0x110000 {
				b.WriteRune(rune(code))
				i += semi + 1
				continue
			}
		}
		if rep, ok := entities[strings.ToLower(name)]; ok {
			b.WriteString(rep)
			i += semi + 1
			continue
		}
		b.WriteByte(s[i])
		i++
	}
	return collapseSpace(b.String())
}

// collapseSpace normalizes runs of whitespace to single spaces and
// trims, matching how browsers render character data.
func collapseSpace(s string) string {
	return strings.Join(strings.Fields(s), " ")
}
