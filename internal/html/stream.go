package html

import (
	"bytes"
	"io"

	"mdlog/internal/tree"
)

// ParseReader tokenizes HTML from r in a single streaming pass and
// builds the arena (struct-of-arrays) document tree directly — no
// intermediate string of the whole document and no per-node pointer
// allocations. The only possible error is a read error from r; malformed
// HTML never fails (the parser applies the same recovery policy as
// ParseNodes).
func ParseReader(r io.Reader) (*tree.Tree, error) {
	a, err := ParseArena(r)
	if err != nil {
		return nil, err
	}
	return tree.FromArena(a), nil
}

// ParseArena is ParseReader returning the bare arena, for callers that
// drive evaluation off the arrays and never need the *Node view.
func ParseArena(r io.Reader) (*tree.Arena, error) {
	p := newStreamParser(r)
	if err := p.run(); err != nil {
		return nil, err
	}
	return p.b.Finish(), nil
}

// policyTags are the tag names with structural side conditions. They
// are interned first, so their symbol ids fit in the uint64 masks the
// hot path tests (any document label beyond them simply has no
// structural rule).
var policyTags = []string{
	"#document", "#text",
	// void
	"area", "base", "br", "col", "embed", "hr", "img", "input", "link",
	"meta", "param", "source", "track", "wbr",
	// implied-end participants
	"li", "p", "td", "th", "tr", "option", "dt", "dd",
	// raw text
	"script", "style",
}

// streamParser drives the scanner and applies the tree-construction
// policy (element stack, implied ends, raw text, boundary whitespace)
// to an ArenaBuilder. All structural decisions happen on interned
// symbol ids and bitmasks; strings are only allocated for first-seen
// labels, attribute maps, and text content. It mirrors ParseNodes
// exactly; the two are differential-tested against each other.
type streamParser struct {
	sc *scanner
	b  *tree.ArenaBuilder

	text    []byte // pending raw text, flushed at the next tag
	scratch []byte // reusable token buffer
	cbuf    []byte // reusable collapsed-text buffer
	dbuf    []byte // reusable entity-decoded buffer

	textSym  int32
	voidMask uint64
	rawMask  uint64
	implied  [64]uint64 // opener symbol → mask of symbols it closes

	lastText      int32 // last emitted #text node, or NoNode
	lastTextOwner int32 // its parent at emission time
	lastTextTrail bool  // raw chunk ended in whitespace

	// strs dedups attribute names and values: real pages repeat the
	// same handful of attributes on thousands of nodes.
	strs map[string]string
	// attrCache memoizes parsed attribute sections by their raw bytes
	// — product rows carry byte-identical ` class="item"` sections, so
	// each distinct section is tokenized (and its map allocated) once
	// and shared across the arena's Attrs entries. tree.FromArena
	// copies per node, preserving the pre-arena contract that
	// Node.Attrs maps are independently mutable.
	attrCache map[string]attrEntry
	// lastTag memoizes the previous tag name → symbol (runs of <td>,
	// <tr>, ... dominate real markup).
	lastTag    []byte
	lastTagSym int32
}

type attrEntry struct {
	attrs     map[string]string
	selfClose bool
}

// str returns b as a string, reusing a previously allocated copy when
// the same bytes were seen before.
func (p *streamParser) str(b []byte) string {
	if s, ok := p.strs[string(b)]; ok {
		return s
	}
	s := string(b)
	if p.strs == nil {
		p.strs = make(map[string]string, 8)
	}
	p.strs[s] = s
	return s
}

func newStreamParser(r io.Reader) *streamParser {
	p := &streamParser{
		sc:       newScanner(r),
		b:        tree.NewArenaBuilder(),
		lastText: tree.NoNode,
	}
	// Pre-size the arena when the reader knows its length (strings
	// and bytes readers do): HTML runs roughly one node per dozen
	// bytes, and overshoot is cheap int32 columns.
	if sized, ok := r.(interface{ Len() int }); ok {
		p.b.Grow(sized.Len()/10 + 64)
	} else {
		p.b.Grow(512)
	}
	syms := p.b.Syms()
	for _, tag := range policyTags {
		syms.Intern(tag)
	}
	p.textSym = syms.ID("#text")
	for tag := range voidElements {
		p.voidMask |= 1 << uint(syms.ID(tag))
	}
	for tag := range rawText {
		p.rawMask |= 1 << uint(syms.ID(tag))
	}
	for opener, closers := range impliedEnd {
		var m uint64
		for _, c := range closers {
			m |= 1 << uint(syms.ID(c))
		}
		p.implied[syms.ID(opener)] = m
	}
	p.b.OpenSym(syms.ID("#document"))
	return p
}

func (p *streamParser) flushText() {
	if len(p.text) == 0 {
		return
	}
	raw := p.text
	if bytes.IndexByte(raw, '&') >= 0 {
		// Slow path: resolve character references first.
		p.dbuf = append(p.dbuf[:0], decodeCharRefs(string(raw))...)
		raw = p.dbuf
	}
	lead := len(raw) > 0 && isTextSpace(raw[0])
	trail := len(raw) > 0 && isTextSpace(raw[len(raw)-1])
	// Collapse after a sentinel space, so a preserved leading boundary
	// space is already in place.
	buf := append(p.cbuf[:0], ' ')
	buf = collapseBytes(buf, raw)
	p.cbuf = buf
	p.text = p.text[:0]
	if len(buf) == 1 {
		return // whitespace-only: no node
	}
	top := p.b.Top()
	body := buf[1:]
	if lead && p.b.HasChildren(top) {
		body = buf
	}
	id := p.b.OpenSym(p.textSym)
	p.b.AppendTextBytes(id, body)
	p.b.Close()
	p.lastText, p.lastTextOwner, p.lastTextTrail = id, top, trail
}

// elementBoundary restores the trailing boundary space of the
// preceding text node when an element is appended right after it.
func (p *streamParser) elementBoundary() {
	if p.lastText != tree.NoNode && p.lastTextOwner == p.b.Top() && p.lastTextTrail {
		p.b.AppendText(p.lastText, " ")
	}
	p.lastText = tree.NoNode
}

func (p *streamParser) openTag(sym int32, attrs map[string]string, selfClose bool) {
	if sym < 64 {
		if closers := p.implied[sym]; closers != 0 {
			for p.b.Depth() > 1 {
				ts := p.b.OpenLabel(0)
				if ts < 64 && closers&(1<<uint(ts)) != 0 {
					p.b.Close()
				} else {
					break
				}
			}
		}
	}
	p.elementBoundary()
	id := p.b.OpenSym(sym)
	p.b.SetAttrs(id, attrs)
	if selfClose || (sym < 64 && p.voidMask&(1<<uint(sym)) != 0) {
		p.b.Close()
	}
}

func (p *streamParser) closeTag(sym int32) {
	if sym < 0 {
		return // label never seen: cannot be open
	}
	for k := 0; k < p.b.Depth()-1; k++ {
		if p.b.OpenLabel(k) == sym {
			for j := 0; j <= k; j++ {
				p.b.Close()
			}
			return
		}
	}
	// Unmatched end tag: ignored.
}

func (p *streamParser) run() error {
	sc := p.sc
	syms := p.b.Syms()
	for {
		// Accumulate text up to the next '<' (left unconsumed).
		var found bool
		p.text, found = sc.appendUntilByte(p.text, '<')
		if !found {
			p.flushText()
			return sc.err
		}
		c1, ok := sc.peekAt(1)
		if !ok {
			// Lone '<' at EOF: literal text.
			p.text = append(p.text, '<')
			sc.skip(1)
			p.flushText()
			return sc.err
		}
		switch {
		case c1 == '!' || c1 == '?':
			p.flushText()
			c2, _ := sc.peekAt(2)
			c3, _ := sc.peekAt(3)
			if c1 == '!' && c2 == '-' && c3 == '-' {
				sc.skip(4)
				p.scratch, _ = sc.appendUntilString(p.scratch[:0], "-->", false)
			} else {
				sc.skip(1)
				p.scratch, found = sc.appendUntilByte(p.scratch[:0], '>')
				if found {
					sc.skip(1)
				}
			}
		case c1 == '/':
			p.flushText()
			sc.skip(2)
			p.scratch, found = sc.appendUntilByte(p.scratch[:0], '>')
			if !found {
				// Unterminated end tag at EOF: discarded.
				return sc.err
			}
			sc.skip(1)
			name := lowerASCII(trimSpaceBytes(p.scratch))
			p.closeTag(syms.IDBytes(name))
		case isNameByte(c1):
			p.flushText()
			sc.skip(1)
			p.scratch = sc.readTag(p.scratch[:0])
			nameEnd := 0
			for nameEnd < len(p.scratch) && isNameByte(p.scratch[nameEnd]) {
				nameEnd++
			}
			name := lowerASCII(p.scratch[:nameEnd])
			var sym int32
			if bytes.Equal(name, p.lastTag) {
				sym = p.lastTagSym
			} else {
				sym = syms.InternBytes(name)
				p.lastTag = append(p.lastTag[:0], name...)
				p.lastTagSym = sym
			}
			attrs, selfClose := p.scanAttrs(p.scratch[nameEnd:])
			p.openTag(sym, attrs, selfClose)
			if !selfClose && sym < 64 && p.rawMask&(1<<uint(sym)) != 0 {
				var content []byte
				content, found = sc.appendUntilString(nil, "</"+string(name), true)
				if !found {
					// Unterminated raw text: content discarded, element closed.
					p.closeTag(sym)
					return sc.err
				}
				if len(trimSpaceBytes(content)) > 0 {
					id := p.b.OpenSym(p.textSym)
					p.b.AppendTextBytes(id, content)
					p.b.Close()
				}
				p.scratch, found = sc.appendUntilByte(p.scratch[:0], '>')
				if found {
					sc.skip(1)
				}
				p.closeTag(sym)
			}
		default:
			// Stray '<' that does not start a tag: literal text.
			p.text = append(p.text, '<')
			sc.skip(1)
		}
	}
}

// scanAttrs parses the attribute section of a start tag, memoizing by
// the raw section bytes (see attrCache).
func (p *streamParser) scanAttrs(s []byte) (map[string]string, bool) {
	empty := true
	for _, c := range s {
		if !isSpace(c) {
			empty = false
			break
		}
	}
	if empty {
		return nil, false
	}
	if e, ok := p.attrCache[string(s)]; ok {
		return e.attrs, e.selfClose
	}
	key := string(s) // copy before scanAttrsBytes lowercases s in place
	attrs, selfClose := p.scanAttrsBytes(s)
	if p.attrCache == nil {
		p.attrCache = make(map[string]attrEntry, 8)
	}
	p.attrCache[key] = attrEntry{attrs, selfClose}
	return attrs, selfClose
}

// scanAttrsBytes parses the attribute section of a start tag (the
// bytes after the name, '>' excluded) with exactly the rules of
// scanTag, allocating only when attributes are present.
func (p *streamParser) scanAttrsBytes(s []byte) (map[string]string, bool) {
	var attrs map[string]string
	selfClose := false
	j := 0
	for j < len(s) {
		for j < len(s) && isSpace(s[j]) {
			j++
		}
		if j >= len(s) {
			break
		}
		if s[j] == '/' {
			selfClose = true
			j++
			continue
		}
		aStart := j
		for j < len(s) && s[j] != '=' && s[j] != '/' && !isSpace(s[j]) {
			j++
		}
		aName := lowerASCII(s[aStart:j])
		vStart, vEnd := -1, -1
		if j < len(s) && s[j] == '=' {
			j++
			for j < len(s) && isSpace(s[j]) {
				j++
			}
			if j < len(s) && (s[j] == '"' || s[j] == '\'') {
				q := s[j]
				j++
				vStart = j
				for j < len(s) && s[j] != q {
					j++
				}
				vEnd = j
				if j < len(s) {
					j++
				}
			} else {
				vStart = j
				for j < len(s) && !isSpace(s[j]) {
					j++
				}
				vEnd = j
			}
		}
		if len(aName) > 0 {
			if attrs == nil {
				attrs = map[string]string{}
			}
			val := ""
			if vStart >= 0 {
				// The cache holds the raw value; decodeEntities returns
				// its input unchanged (no alloc) unless references or
				// uncollapsed whitespace are present.
				val = decodeEntities(p.str(s[vStart:vEnd]))
			}
			attrs[p.str(aName)] = val
		}
	}
	return attrs, selfClose
}

// lowerASCII lowercases b in place (the caller owns the buffer) and
// returns it.
func lowerASCII(b []byte) []byte {
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + ('a' - 'A')
		}
	}
	return b
}

func trimSpaceBytes(b []byte) []byte {
	for len(b) > 0 && isSpace(b[0]) {
		b = b[1:]
	}
	for len(b) > 0 && isSpace(b[len(b)-1]) {
		b = b[:len(b)-1]
	}
	return b
}

// collapseBytes appends src to dst with runs of ASCII whitespace
// collapsed to single spaces and leading/trailing whitespace dropped
// (the byte-level twin of collapseSpace). src must not alias dst's
// free capacity.
func collapseBytes(dst, src []byte) []byte {
	i, n := 0, len(src)
	first := true
	for i < n {
		for i < n && isTextSpace(src[i]) {
			i++
		}
		if i >= n {
			break
		}
		start := i
		for i < n && !isTextSpace(src[i]) {
			i++
		}
		if !first {
			dst = append(dst, ' ')
		}
		first = false
		dst = append(dst, src[start:i]...)
	}
	return dst
}

// scanner is a buffered window over an io.Reader supporting the
// tokenizer's access patterns — bounded lookahead, run-until-delimiter
// and run-until-substring — while touching each input byte O(1) times.
type scanner struct {
	r        io.Reader
	buf      []byte
	pos, end int
	eof      bool
	err      error // first non-EOF read error, reported at the end
	// zeroReads counts consecutive (0, nil) reads; like bufio, the
	// scanner gives up with io.ErrNoProgress instead of spinning on a
	// misbehaving reader.
	zeroReads int
}

const (
	scannerBufSize = 64 * 1024
	maxEmptyReads  = 100
)

func newScanner(r io.Reader) *scanner {
	return &scanner{r: r, buf: make([]byte, scannerBufSize)}
}

// refill compacts the unread tail to the front of the window and
// reads once into the free space, updating eof/err (the single
// progress-guarded read path every refill loop goes through).
func (s *scanner) refill() {
	copy(s.buf, s.buf[s.pos:s.end])
	s.end -= s.pos
	s.pos = 0
	n, err := s.r.Read(s.buf[s.end:])
	s.end += n
	if n > 0 {
		s.zeroReads = 0
	} else if err == nil {
		s.zeroReads++
		if s.zeroReads >= maxEmptyReads {
			err = io.ErrNoProgress
		}
	}
	if err != nil {
		s.eof = true
		if err != io.EOF {
			s.err = err
		}
	}
}

// more refills the window if needed; it reports whether any unread
// bytes are available.
func (s *scanner) more() bool {
	for s.pos >= s.end {
		if s.eof {
			return false
		}
		s.refill()
	}
	return true
}

// peekAt returns the k-th unread byte without consuming it, growing
// the window as needed (k must be far below the buffer size).
func (s *scanner) peekAt(k int) (byte, bool) {
	for s.end-s.pos <= k {
		if s.eof {
			return 0, false
		}
		s.refill()
	}
	return s.buf[s.pos+k], true
}

// skip consumes n bytes (which must be available in the window).
func (s *scanner) skip(n int) { s.pos += n }

// appendUntilByte appends unread bytes to dst up to (not including)
// the first occurrence of delim, consuming them. It reports whether
// delim was found; on false the input is exhausted.
func (s *scanner) appendUntilByte(dst []byte, delim byte) ([]byte, bool) {
	for {
		if !s.more() {
			return dst, false
		}
		w := s.buf[s.pos:s.end]
		if idx := bytes.IndexByte(w, delim); idx >= 0 {
			dst = append(dst, w[:idx]...)
			s.pos += idx
			return dst, true
		}
		dst = append(dst, w...)
		s.pos = s.end
	}
}

// appendUntilString appends unread bytes to dst up to the first
// occurrence of pat (ASCII, lowercase when fold is set), consuming
// them and pat itself. It reports whether pat was found.
func (s *scanner) appendUntilString(dst []byte, pat string, fold bool) ([]byte, bool) {
	for {
		if !s.more() {
			return dst, false
		}
		w := s.buf[s.pos:s.end]
		if idx := indexPat(w, pat, fold); idx >= 0 {
			dst = append(dst, w[:idx]...)
			s.pos += idx + len(pat)
			return dst, true
		}
		// Keep a pattern-sized tail in the window: the match may
		// straddle the refill boundary.
		safe := len(w) - (len(pat) - 1)
		if safe > 0 {
			dst = append(dst, w[:safe]...)
			s.pos += safe
		}
		if s.eof {
			dst = append(dst, s.buf[s.pos:s.end]...)
			s.pos = s.end
			return dst, false
		}
		// Refill so the window grows past the kept tail.
		s.refill()
	}
}

// readTag consumes a start tag's content through its closing '>'
// (skipping quoted attribute values) and returns the content without
// the '>'. At EOF the remaining input is the content, as in ParseNodes.
func (s *scanner) readTag(dst []byte) []byte {
	var quote byte
	for {
		if !s.more() {
			return dst
		}
		w := s.buf[s.pos:s.end]
		for i := 0; i < len(w); i++ {
			c := w[i]
			if quote != 0 {
				if c == quote {
					quote = 0
				}
				continue
			}
			switch c {
			case '"', '\'':
				quote = c
			case '>':
				dst = append(dst, w[:i]...)
				s.pos += i + 1
				return dst
			}
		}
		dst = append(dst, w...)
		s.pos = s.end
	}
}

// indexPat finds pat in w; with fold set the comparison is
// ASCII-case-insensitive (pat must be lowercase).
func indexPat(w []byte, pat string, fold bool) int {
	if len(pat) == 0 || len(w) < len(pat) {
		return -1
	}
	if !fold {
		return bytes.Index(w, []byte(pat))
	}
	for i := 0; i+len(pat) <= len(w); i++ {
		ok := true
		for j := 0; j < len(pat); j++ {
			c := w[i+j]
			if c >= 'A' && c <= 'Z' {
				c += 'a' - 'A'
			}
			if c != pat[j] {
				ok = false
				break
			}
		}
		if ok {
			return i
		}
	}
	return -1
}
