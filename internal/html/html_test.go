package html

import (
	"math/rand"
	"strings"
	"testing"
)

func TestParseBasic(t *testing.T) {
	doc := Parse(`<html><body><p>Hello <b>world</b></p></body></html>`)
	if doc.Root.Label != "#document" {
		t.Fatalf("root = %q", doc.Root.Label)
	}
	if doc.Root.Children[0].Label != "html" {
		t.Fatalf("first = %q", doc.Root.Children[0].Label)
	}
	s := doc.String()
	want := "#document(html(body(p(#text,b(#text)))))"
	if s != want {
		t.Errorf("tree = %s, want %s", s, want)
	}
	// Text content.
	var texts []string
	for _, n := range doc.Nodes {
		if n.Label == "#text" {
			texts = append(texts, n.Text)
		}
	}
	if len(texts) != 2 || texts[0] != "Hello" || texts[1] != "world" {
		t.Errorf("texts = %q", texts)
	}
}

func TestVoidAndSelfClosing(t *testing.T) {
	doc := Parse(`<div><br><img src="x.png"><hr/><span/>text</div>`)
	div := doc.Root.Children[0]
	labels := []string{}
	for _, c := range div.Children {
		labels = append(labels, c.Label)
	}
	if strings.Join(labels, ",") != "br,img,hr,span,#text" {
		t.Errorf("children = %v", labels)
	}
	if img := div.Children[1]; img.Attrs["src"] != "x.png" {
		t.Errorf("img attrs = %v", img.Attrs)
	}
}

func TestImpliedEndTags(t *testing.T) {
	doc := Parse(`<table><tr><td>a<td>b<tr><td>c</table>`)
	table := doc.Root.Children[0]
	if table.Label != "table" || len(table.Children) != 2 {
		t.Fatalf("table children = %d (%s)", len(table.Children), doc)
	}
	tr1 := table.Children[0]
	if len(tr1.Children) != 2 || tr1.Children[0].Label != "td" {
		t.Errorf("tr1 = %s", doc)
	}
	doc2 := Parse(`<ul><li>one<li>two<li>three</ul>`)
	ul := doc2.Root.Children[0]
	if len(ul.Children) != 3 {
		t.Errorf("ul children = %d (%s)", len(ul.Children), doc2)
	}
}

func TestCommentsDoctypeEntities(t *testing.T) {
	doc := Parse(`<!DOCTYPE html><!-- a comment --><p>x &amp; y &lt;z&gt; &#65;&euro;</p>`)
	p := doc.Root.Children[0]
	if p.Label != "p" || len(p.Children) != 1 {
		t.Fatalf("doc = %s", doc)
	}
	if got := p.Children[0].Text; got != "x & y <z> A€" {
		t.Errorf("text = %q", got)
	}
	// Unknown entity survives.
	doc2 := Parse(`<p>&unknown; &#xbad;</p>`)
	if got := doc2.Root.Children[0].Children[0].Text; got != "&unknown; &#xbad;" {
		t.Errorf("unknown entity text = %q", got)
	}
}

func TestRawTextElements(t *testing.T) {
	doc := Parse(`<div><script>if (a < b) { x(); }</script><p>after</p></div>`)
	div := doc.Root.Children[0]
	if len(div.Children) != 2 {
		t.Fatalf("div = %s", doc)
	}
	script := div.Children[0]
	if script.Label != "script" || len(script.Children) != 1 {
		t.Fatalf("script = %s", doc)
	}
	if !strings.Contains(script.Children[0].Text, "a < b") {
		t.Errorf("script text = %q", script.Children[0].Text)
	}
}

func TestAttributes(t *testing.T) {
	doc := Parse(`<a href="/x" class='big' data-n=5 checked>link</a>`)
	a := doc.Root.Children[0]
	if a.Attrs["href"] != "/x" || a.Attrs["class"] != "big" ||
		a.Attrs["data-n"] != "5" || a.Attrs["checked"] != "" {
		t.Errorf("attrs = %v", a.Attrs)
	}
	if _, ok := a.Attrs["nope"]; ok {
		t.Error("phantom attribute")
	}
}

func TestUnmatchedAndStray(t *testing.T) {
	doc := Parse(`</div><p>a</b></p>2 < 3`)
	if doc.Size() < 3 {
		t.Errorf("doc = %s", doc)
	}
	// Stray '<' becomes text, parser must not panic or loop.
	doc2 := Parse(`a < b`)
	_ = doc2
}

func TestWhitespaceCollapsing(t *testing.T) {
	doc := Parse("<p>  hello\n\t world  </p>")
	if got := doc.Root.Children[0].Children[0].Text; got != "hello world" {
		t.Errorf("text = %q", got)
	}
	// Whitespace-only text nodes are dropped.
	doc2 := Parse("<div> \n <p>x</p> \n </div>")
	div := doc2.Root.Children[0]
	if len(div.Children) != 1 {
		t.Errorf("div children = %d", len(div.Children))
	}
}

func TestGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	page := ProductListing(rng, 10)
	doc := Parse(page)
	// 1 header row + 10 item rows.
	trs := 0
	for _, n := range doc.Nodes {
		if n.Label == "tr" {
			trs++
		}
	}
	if trs != 11 {
		t.Errorf("tr count = %d", trs)
	}
	idx := Parse(NewsIndex(rng, 3, 4))
	lis := 0
	for _, n := range idx.Nodes {
		if n.Label == "li" {
			lis++
		}
	}
	if lis != 12 {
		t.Errorf("li count = %d", lis)
	}
	// Deterministic for a fixed seed.
	if ProductListing(rand.New(rand.NewSource(7)), 5) != ProductListing(rand.New(rand.NewSource(7)), 5) {
		t.Error("generator not deterministic")
	}
}
