package html

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"
	"time"

	"mdlog/internal/tree"
)

func TestParseBasic(t *testing.T) {
	doc := Parse(`<html><body><p>Hello <b>world</b></p></body></html>`)
	if doc.Root.Label != "#document" {
		t.Fatalf("root = %q", doc.Root.Label)
	}
	if doc.Root.Children[0].Label != "html" {
		t.Fatalf("first = %q", doc.Root.Children[0].Label)
	}
	s := doc.String()
	want := "#document(html(body(p(#text,b(#text)))))"
	if s != want {
		t.Errorf("tree = %s, want %s", s, want)
	}
	// Text content: the boundary space before <b> survives.
	var texts []string
	for _, n := range doc.Nodes {
		if n.Label == "#text" {
			texts = append(texts, n.Text)
		}
	}
	if len(texts) != 2 || texts[0] != "Hello " || texts[1] != "world" {
		t.Errorf("texts = %q", texts)
	}
}

func TestVoidAndSelfClosing(t *testing.T) {
	doc := Parse(`<div><br><img src="x.png"><hr/><span/>text</div>`)
	div := doc.Root.Children[0]
	labels := []string{}
	for _, c := range div.Children {
		labels = append(labels, c.Label)
	}
	if strings.Join(labels, ",") != "br,img,hr,span,#text" {
		t.Errorf("children = %v", labels)
	}
	if img := div.Children[1]; img.Attrs["src"] != "x.png" {
		t.Errorf("img attrs = %v", img.Attrs)
	}
}

func TestImpliedEndTags(t *testing.T) {
	doc := Parse(`<table><tr><td>a<td>b<tr><td>c</table>`)
	table := doc.Root.Children[0]
	if table.Label != "table" || len(table.Children) != 2 {
		t.Fatalf("table children = %d (%s)", len(table.Children), doc)
	}
	tr1 := table.Children[0]
	if len(tr1.Children) != 2 || tr1.Children[0].Label != "td" {
		t.Errorf("tr1 = %s", doc)
	}
	doc2 := Parse(`<ul><li>one<li>two<li>three</ul>`)
	ul := doc2.Root.Children[0]
	if len(ul.Children) != 3 {
		t.Errorf("ul children = %d (%s)", len(ul.Children), doc2)
	}
}

func TestNestedTables(t *testing.T) {
	// A <table> inside a <td> must not trigger the td/tr implied-end
	// rules of the outer table.
	doc := Parse(`<table><tr><td><table><tr><td>inner</td></tr></table></td><td>x</td></tr></table>`)
	want := "#document(table(tr(td(table(tr(td(#text)))),td(#text))))"
	if got := doc.String(); got != want {
		t.Errorf("tree = %s, want %s", got, want)
	}
	// Nested lists: an inner <ul> keeps its <li>s; a following sibling
	// <li> still implicitly closes the open one.
	doc2 := Parse(`<ul><li>a<ul><li>a1<li>a2</ul></li><li>b</ul>`)
	want2 := "#document(ul(li(#text,ul(li(#text),li(#text))),li(#text)))"
	if got := doc2.String(); got != want2 {
		t.Errorf("tree = %s, want %s", got, want2)
	}
}

func TestCommentsDoctypeEntities(t *testing.T) {
	doc := Parse(`<!DOCTYPE html><!-- a comment --><p>x &amp; y &lt;z&gt; &#65;&euro;</p>`)
	p := doc.Root.Children[0]
	if p.Label != "p" || len(p.Children) != 1 {
		t.Fatalf("doc = %s", doc)
	}
	if got := p.Children[0].Text; got != "x & y <z> A€" {
		t.Errorf("text = %q", got)
	}
	// Unknown and invalid references survive verbatim.
	doc2 := Parse(`<p>&unknown; &#xZZ; &#; &#x; &#xD800;</p>`)
	if got := doc2.Root.Children[0].Children[0].Text; got != "&unknown; &#xZZ; &#; &#x; &#xD800;" {
		t.Errorf("unknown entity text = %q", got)
	}
}

func TestHexEntities(t *testing.T) {
	// Hexadecimal character references, both cases, decode like their
	// decimal equivalents.
	doc := Parse(`<p>&#x27;&#X2019;&#x41;&#65;</p>`)
	if got := doc.Root.Children[0].Children[0].Text; got != "'’AA" {
		t.Errorf("text = %q", got)
	}
	// In attribute values too.
	doc2 := Parse(`<a title="it&#x27;s">x</a>`)
	if got := doc2.Root.Children[0].Attrs["title"]; got != "it's" {
		t.Errorf("attr = %q", got)
	}
}

func TestRawTextElements(t *testing.T) {
	doc := Parse(`<div><script>if (a < b) { x(); }</script><p>after</p></div>`)
	div := doc.Root.Children[0]
	if len(div.Children) != 2 {
		t.Fatalf("div = %s", doc)
	}
	script := div.Children[0]
	if script.Label != "script" || len(script.Children) != 1 {
		t.Fatalf("script = %s", doc)
	}
	if !strings.Contains(script.Children[0].Text, "a < b") {
		t.Errorf("script text = %q", script.Children[0].Text)
	}
	// Entities stay opaque in raw text; the end tag match is
	// case-insensitive.
	doc2 := Parse(`<style>td &gt; b { color: red }</STYLE><p>x</p>`)
	style := doc2.Root.Children[0]
	if style.Label != "style" || !strings.Contains(style.Children[0].Text, "&gt;") {
		t.Fatalf("style = %s (%q)", doc2, style.Children[0].Text)
	}
	if doc2.Root.Children[1].Label != "p" {
		t.Errorf("after style = %s", doc2)
	}
}

func TestAttributes(t *testing.T) {
	doc := Parse(`<a href="/x" class='big' data-n=5 checked>link</a>`)
	a := doc.Root.Children[0]
	if a.Attrs["href"] != "/x" || a.Attrs["class"] != "big" ||
		a.Attrs["data-n"] != "5" || a.Attrs["checked"] != "" {
		t.Errorf("attrs = %v", a.Attrs)
	}
	if _, ok := a.Attrs["nope"]; ok {
		t.Error("phantom attribute")
	}
	// Quoted values may contain '>'.
	doc2 := Parse(`<a title="a>b">x</a>`)
	if got := doc2.Root.Children[0].Attrs["title"]; got != "a>b" {
		t.Errorf("title = %q", got)
	}
}

func TestUnmatchedAndStray(t *testing.T) {
	doc := Parse(`</div><p>a</b></p>2 < 3`)
	if doc.Size() < 3 {
		t.Errorf("doc = %s", doc)
	}
	// Stray '<' becomes text, parser must not panic or loop.
	doc2 := Parse(`a < b`)
	if got := doc2.Root.Children[0].Text; got != "a < b" {
		t.Errorf("text = %q", got)
	}
}

func TestWhitespaceCollapsing(t *testing.T) {
	doc := Parse("<p>  hello\n\t world  </p>")
	if got := doc.Root.Children[0].Children[0].Text; got != "hello world" {
		t.Errorf("text = %q", got)
	}
	// Whitespace-only text nodes are dropped.
	doc2 := Parse("<div> \n <p>x</p> \n </div>")
	div := doc2.Root.Children[0]
	if len(div.Children) != 1 {
		t.Errorf("div children = %d", len(div.Children))
	}
}

// TestBoundarySpaces pins the inline-boundary rule: a text node
// keeps one space where it abuts element siblings, so concatenating a
// row's text preserves word boundaries.
func TestBoundarySpaces(t *testing.T) {
	cases := []struct {
		src  string
		want []string
	}{
		{`<td><b>Price:</b> 9 EUR</td>`, []string{"Price:", " 9 EUR"}},
		{`<td>from <b>9</b> EUR</td>`, []string{"from ", "9", " EUR"}},
		{`<p>a <i>b</i></p>`, []string{"a ", "b"}},
		{`<p><i>a</i> b</p>`, []string{"a", " b"}},
		{`<p>no<i>gap</i></p>`, []string{"no", "gap"}},
		// Leading whitespace with no preceding sibling still trims.
		{`<p>  x</p>`, []string{"x"}},
		// Trailing whitespace before the element's end tag still trims.
		{`<p>x  </p><p>y</p>`, []string{"x", "y"}},
		// Void elements count as element boundaries too.
		{`<p>a <br>b</p>`, []string{"a ", "b"}},
		// &nbsp; acts as whitespace at a boundary.
		{`<p><b>a</b>&nbsp;b</p>`, []string{"a", " b"}},
	}
	for _, c := range cases {
		doc := Parse(c.src)
		var texts []string
		for _, n := range doc.Nodes {
			if n.Label == "#text" {
				texts = append(texts, n.Text)
			}
		}
		if fmt.Sprint(texts) != fmt.Sprint(c.want) {
			t.Errorf("%s: texts = %q, want %q", c.src, texts, c.want)
		}
	}
}

// errReader fails after a prefix, to exercise ParseReader's only error
// path.
type errReader struct {
	data string
	pos  int
}

func (r *errReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.data) {
		return 0, fmt.Errorf("backend exploded")
	}
	n := copy(p, r.data[r.pos:])
	r.pos += n
	return n, nil
}

func TestParseReader(t *testing.T) {
	src := ProductListing(rand.New(rand.NewSource(3)), 20)
	fromString := Parse(src)
	fromReader, err := ParseReader(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if !fromString.Equal(fromReader) {
		t.Error("ParseReader disagrees with Parse")
	}
	// One-byte-at-a-time reads must not change the result.
	slow, err := ParseReader(iotest{strings.NewReader(src)})
	if err != nil {
		t.Fatal(err)
	}
	if !fromString.Equal(slow) {
		t.Error("one-byte reads change the parse")
	}
	if _, err := ParseReader(&errReader{data: "<html><p>x"}); err == nil {
		t.Error("read error not reported")
	}
}

// iotest delivers one byte per Read.
type iotest struct{ r io.Reader }

func (r iotest) Read(p []byte) (int, error) {
	if len(p) > 1 {
		p = p[:1]
	}
	return r.r.Read(p)
}

// TestStreamingMatchesNodes differential-tests the streaming arena
// parser against the independent pointer-per-node builder on crafted
// and generated documents.
func TestStreamingMatchesNodes(t *testing.T) {
	crafted := []string{
		"",
		"plain text only",
		`<html><body><p>Hello <b>world</b></p></body></html>`,
		`<table><tr><td>a<td>b<tr><td>c</table>`,
		`<ul><li>one<li>two<li>three</ul>`,
		`<table><tr><td><table><tr><td>x</table></table>`,
		`<!DOCTYPE html><!-- c --><p>x &amp; &#x27;y&#X2019; &#65;</p>`,
		`<div><script>if (a < b) { x(); }</script><p>after</p></div>`,
		`<style>a &gt; b</STYLE>tail`,
		`<a href="/x" class='big' data-n=5 checked>link</a>`,
		`<a title="a>b" q='c>d'>x</a>`,
		`</div><p>a</b></p>2 < 3`,
		`a < b`,
		`<p>unterminated `,
		`<p attr="unterminated`,
		`<script>never closed`,
		`</unterminated`,
		`<!-- unterminated`,
		`<td><b>Price:</b> 9 EUR</td>`,
		`<p>a <br>b<hr/>c </p><p>d</p>`,
		"<div> \n <p>x</p> \n </div>",
		`<<<>>><x/><//>`,
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 6; i++ {
		crafted = append(crafted,
			ProductListing(rng, 5+rng.Intn(40)),
			NewsIndex(rng, 1+rng.Intn(4), 1+rng.Intn(6)))
	}
	for _, src := range crafted {
		legacy := ParseNodes(src)
		streamed, err := ParseReader(strings.NewReader(src))
		if err != nil {
			t.Fatalf("%.40q: %v", src, err)
		}
		if !legacy.Equal(streamed) {
			t.Errorf("parsers disagree on %.80q:\nnodes:  %s\nstream: %s", src, legacy, streamed)
			continue
		}
		// Attributes agree node-by-node.
		for j, n := range legacy.Nodes {
			sn := streamed.Nodes[j]
			if len(n.Attrs) != len(sn.Attrs) {
				t.Errorf("%.40q: node %d attrs %v vs %v", src, j, n.Attrs, sn.Attrs)
				continue
			}
			for k, v := range n.Attrs {
				if sn.Attrs[k] != v {
					t.Errorf("%.40q: node %d attr %s=%q vs %q", src, j, k, v, sn.Attrs[k])
				}
			}
		}
	}
}

// TestParseArena checks the bare-arena entry point agrees with the
// view-building one.
func TestParseArena(t *testing.T) {
	src := ProductListing(rand.New(rand.NewSource(5)), 10)
	a, err := ParseArena(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	doc := Parse(src)
	if a.Len() != doc.Size() {
		t.Fatalf("arena %d nodes, tree %d", a.Len(), doc.Size())
	}
	for _, n := range doc.Nodes {
		if a.LabelName(int32(n.ID)) != n.Label {
			t.Fatalf("node %d label %q vs %q", n.ID, a.LabelName(int32(n.ID)), n.Label)
		}
		if a.Text(int32(n.ID)) != n.Text {
			t.Fatalf("node %d text %q vs %q", n.ID, a.Text(int32(n.ID)), n.Text)
		}
	}
	if doc.Arena() == nil {
		t.Error("parsed tree lost its arena")
	}
}

func TestGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	page := ProductListing(rng, 10)
	doc := Parse(page)
	// 1 header row + 10 item rows.
	trs := 0
	for _, n := range doc.Nodes {
		if n.Label == "tr" {
			trs++
		}
	}
	if trs != 11 {
		t.Errorf("tr count = %d", trs)
	}
	idx := Parse(NewsIndex(rng, 3, 4))
	lis := 0
	for _, n := range idx.Nodes {
		if n.Label == "li" {
			lis++
		}
	}
	if lis != 12 {
		t.Errorf("li count = %d", lis)
	}
	// Deterministic for a fixed seed.
	if ProductListing(rand.New(rand.NewSource(7)), 5) != ProductListing(rand.New(rand.NewSource(7)), 5) {
		t.Error("generator not deterministic")
	}
}

// TestWideDocument smoke-tests a wide, flat page (the product-listing
// shape at scale) through the streaming parser.
func TestWideDocument(t *testing.T) {
	var b strings.Builder
	b.WriteString("<html><body><table>")
	const rows = 3000
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&b, "<tr><td>item %d</td><td><b>$%d</b></td></tr>", i, i)
	}
	b.WriteString("</table></body></html>")
	doc := Parse(b.String())
	trs := 0
	for _, n := range doc.Nodes {
		if n.Label == "tr" {
			trs++
		}
	}
	if trs != rows {
		t.Fatalf("tr count = %d", trs)
	}
	a := doc.Arena()
	if a.Len() != doc.Size() {
		t.Fatalf("arena size %d vs %d", a.Len(), doc.Size())
	}
	_ = tree.NoNode
}

// TestAttrsIndependentMaps: nodes with byte-identical attribute
// sections must not share one Attrs map — mutating one node cannot
// leak into another.
func TestAttrsIndependentMaps(t *testing.T) {
	doc := Parse(`<table><tr class="item"><td>a</td></tr><tr class="item"><td>b</td></tr></table>`)
	var trs []*tree.Node
	for _, n := range doc.Nodes {
		if n.Label == "tr" {
			trs = append(trs, n)
		}
	}
	if len(trs) != 2 {
		t.Fatalf("tr count = %d", len(trs))
	}
	trs[0].Attrs["visited"] = "1"
	if _, leaked := trs[1].Attrs["visited"]; leaked {
		t.Error("attribute mutation leaked into a sibling node")
	}
	if trs[1].Attrs["class"] != "item" {
		t.Errorf("attrs = %v", trs[1].Attrs)
	}
}

// noProgressReader returns (0, nil) forever — a misbehaving but
// io.Reader-legal implementation that must not hang the parser.
type noProgressReader struct{ sent bool }

func (r *noProgressReader) Read(p []byte) (int, error) {
	if !r.sent && len(p) > 0 {
		r.sent = true
		return copy(p, "<p>x"), nil
	}
	return 0, nil
}

func TestParseReaderNoProgress(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		_, err := ParseReader(&noProgressReader{})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("expected io.ErrNoProgress-style error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ParseReader hung on a (0, nil) reader")
	}
}
