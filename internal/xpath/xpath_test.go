package xpath

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"mdlog/internal/eval"
	"mdlog/internal/html"
	"mdlog/internal/tmnf"
	"mdlog/internal/tree"
)

func TestParseAndPrint(t *testing.T) {
	cases := []string{
		"/html/body//div",
		"//table/tr[td/b]/td",
		"//li[following-sibling::li]",
		"/a/b[c and d or e]",
		"//p[not(b)]",
		"//a/..",
		"//a/.",
		"/descendant-or-self::p/ancestor::div",
		"//td/text()",
		"/",
	}
	for _, src := range cases {
		p, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if _, err := Parse(p.String()); err != nil {
			t.Errorf("reparse of %q (-> %q): %v", src, p.String(), err)
		}
	}
	for _, bad := range []string{"", "//[", "//a[", "//a[b", "//unknown::a", "//a[not(b]", "//name()"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q): expected error", bad)
		}
	}
}

func docUnderTest() *tree.Tree {
	return html.Parse(`
<html><body>
<table><tr><td>a</td><td><b>x</b></td></tr><tr><td>c</td></tr></table>
<div><p>one</p><p><b>two</b></p></div>
</body></html>`)
}

func TestSelectBasics(t *testing.T) {
	doc := docUnderTest()
	byLabel := func(label string) []int {
		var out []int
		for _, n := range doc.Nodes {
			if n.Label == label {
				out = append(out, n.ID)
			}
		}
		return out
	}
	cases := []struct {
		src  string
		want []int
	}{
		{"//td", byLabel("td")},
		{"//tr", byLabel("tr")},
		{"/", []int{0}},
		{"//td[b]", nil}, // filled below
		{"//tr[td/b]", nil},
		{"//p[not(b)]", nil},
		{"//td/..", byLabel("tr")},
		{"//b/ancestor::table", byLabel("table")},
		{"//td[following-sibling::td]", nil},
	}
	// td containing b: the second td of row 1.
	var tdWithB, trWithTdB, pWithoutB, tdWithFS []int
	for _, n := range doc.Nodes {
		if n.Label == "td" {
			for _, c := range n.Children {
				if c.Label == "b" {
					tdWithB = append(tdWithB, n.ID)
				}
			}
			if n.NextSibling() != nil && n.NextSibling().Label == "td" {
				tdWithFS = append(tdWithFS, n.ID)
			}
		}
		if n.Label == "tr" {
			for _, c := range n.Children {
				for _, cc := range c.Children {
					if cc.Label == "b" {
						trWithTdB = append(trWithTdB, n.ID)
					}
				}
			}
		}
		if n.Label == "p" {
			hasB := false
			for _, c := range n.Children {
				hasB = hasB || c.Label == "b"
			}
			if !hasB {
				pWithoutB = append(pWithoutB, n.ID)
			}
		}
	}
	cases[3].want = tdWithB
	cases[4].want = trWithTdB
	cases[5].want = pWithoutB
	cases[8].want = tdWithFS
	for _, c := range cases {
		got := Select(MustParse(c.src), doc)
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Errorf("%q: got %v, want %v", c.src, got, c.want)
		}
	}
}

func TestFollowingPreceding(t *testing.T) {
	doc := tree.MustParse("r(a(b,c),d(e),f)")
	// following of b (id 2): all nodes strictly after in document order
	// that are not its ancestors/descendants: c, d, e, f.
	got := Select(MustParse("//b/following::*"), doc)
	if fmt.Sprint(got) != "[3 4 5 6]" {
		t.Errorf("following = %v", got)
	}
	got = Select(MustParse("//e/preceding::*"), doc)
	// preceding of e (id 5): nodes before it excluding ancestors: a,b,c.
	if fmt.Sprint(got) != "[1 2 3]" {
		t.Errorf("preceding = %v", got)
	}
}

// TestDatalogAgreesWithSelect is the Section 7 mapping check: the
// generated monadic datalog program selects the same nodes, whether
// evaluated generically or through TMNF + the linear engine.
func TestDatalogAgreesWithSelect(t *testing.T) {
	queries := []string{
		"//td",
		"//tr[td/b]",
		"//tr[td/b]/td",
		"/html/body//p[b]",
		"//td[following-sibling::td]",
		"//b/ancestor::tr",
		"//p/preceding-sibling::p",
		"//div/p[b or preceding-sibling::p]",
		"//td/text()",
		"//table/descendant::b",
		"//b/../..",
		"//td[. and ..]",
	}
	doc := docUnderTest()
	for _, src := range queries {
		p := MustParse(src)
		want := Select(p, doc)
		prog, err := ToDatalog(p, "q")
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		res, err := eval.EvalOnTree(prog, doc, eval.EngineSemiNaive)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if got := res.UnarySet("q"); fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("%q: datalog %v, direct %v", src, got, want)
		}
		// Through the full TMNF pipeline and the linear-time engine.
		tp, err := tmnf.Transform(prog)
		if err != nil {
			t.Fatalf("%q: tmnf: %v", src, err)
		}
		res2, err := eval.LinearTree(tp, doc)
		if err != nil {
			t.Fatalf("%q: linear: %v", src, err)
		}
		if got := res2.UnarySet("q"); fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("%q (TMNF): datalog %v, direct %v", src, got, want)
		}
	}
}

func TestDatalogAgreesQuick(t *testing.T) {
	queries := []string{"//a[b]", "//b/ancestor::a", "//a/following-sibling::b", "//a[descendant::b]/c"}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		doc := tree.Random(rng, tree.RandomOptions{
			Labels: []string{"a", "b", "c"}, Size: 1 + rng.Intn(25), MaxChildren: 4})
		for _, src := range queries {
			q := MustParse(src)
			want := Select(q, doc)
			prog, err := ToDatalog(q, "q")
			if err != nil {
				return false
			}
			res, err := eval.EvalOnTree(prog, doc, eval.EngineSemiNaive)
			if err != nil {
				return false
			}
			if fmt.Sprint(res.UnarySet("q")) != fmt.Sprint(want) {
				t.Logf("%q on %s: datalog %v, direct %v", src, doc, res.UnarySet("q"), want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestToDatalogRejectsNegation(t *testing.T) {
	if _, err := ToDatalog(MustParse("//p[not(b)]"), "q"); err == nil {
		t.Error("not(·) accepted by the positive translation")
	}
}

func TestSelectSorted(t *testing.T) {
	doc := docUnderTest()
	got := Select(MustParse("//td"), doc)
	if !sort.IntsAreSorted(got) {
		t.Errorf("results not in document order: %v", got)
	}
}
