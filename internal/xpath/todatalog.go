package xpath

import (
	"fmt"

	"mdlog/internal/datalog"
)

// ToDatalog translates a positive Core XPath query (no not(·)) into a
// monadic datalog program over τ_ur ∪ {child} whose query predicate
// selects exactly the path's result — the Section 7 mapping. The
// output composes with tmnf.Transform and the Theorem 4.2 engine, so
// Core XPath inherits the O(|P|·|dom|) evaluation bound.
//
// Forward chain: cur_j holds the nodes reachable after j steps.
// Transitive axes unfold into recursive monadic rules. Filter
// predicates compile to "sat" predicates that walk their relative
// paths backward-free: sat(x) holds iff the filter path can be
// completed starting at x.
func ToDatalog(p *Path, queryPred string) (*datalog.Program, error) {
	if queryPred == "" {
		queryPred = "xpath"
	}
	if p.HasNegation() {
		return nil, fmt.Errorf("xpath: not(·) is not expressible in positive monadic datalog; use Select")
	}
	g := &gen{prog: &datalog.Program{Query: queryPred}}
	ep := p.expandComposite()
	cur := g.fresh("ctx")
	// Context: the root (both for absolute and whole-document relative
	// queries, matching Select).
	g.add(datalog.R(datalog.At(cur, datalog.V("X")), datalog.At("root", datalog.V("X"))))
	for _, st := range ep.Steps {
		var err error
		cur, err = g.step(st, cur)
		if err != nil {
			return nil, err
		}
	}
	g.add(datalog.R(datalog.At(queryPred, datalog.V("X")), datalog.At(cur, datalog.V("X"))))
	if err := g.prog.Check(); err != nil {
		return nil, err
	}
	return g.prog, nil
}

type gen struct {
	prog *datalog.Program
	n    int
}

func (g *gen) fresh(kind string) string {
	g.n++
	return fmt.Sprintf("xp_%s%d", kind, g.n)
}

func (g *gen) add(rs ...datalog.Rule) { g.prog.Rules = append(g.prog.Rules, rs...) }

// axisRules emits rules deriving out(y) for every y reachable from
// some x with in(x) via the axis.
func (g *gen) axisRules(ax Axis, in, out string) error {
	V, At, R := datalog.V, datalog.At, datalog.R
	x, y := V("X"), V("Y")
	switch ax {
	case AxisSelf:
		g.add(R(At(out, x), At(in, x)))
	case AxisChild:
		g.add(R(At(out, y), At(in, x), At("child", x, y)))
	case AxisDescendant:
		g.add(R(At(out, y), At(in, x), At("child", x, y)))
		g.add(R(At(out, y), At(out, x), At("child", x, y)))
	case AxisDescendantOrSelf:
		g.add(R(At(out, x), At(in, x)))
		g.add(R(At(out, y), At(out, x), At("child", x, y)))
	case AxisParent:
		g.add(R(At(out, y), At(in, x), At("child", y, x)))
	case AxisAncestor:
		g.add(R(At(out, y), At(in, x), At("child", y, x)))
		g.add(R(At(out, y), At(out, x), At("child", y, x)))
	case AxisAncestorOrSelf:
		g.add(R(At(out, x), At(in, x)))
		g.add(R(At(out, y), At(out, x), At("child", y, x)))
	case AxisFollowingSibling:
		g.add(R(At(out, y), At(in, x), At("nextsibling", x, y)))
		g.add(R(At(out, y), At(out, x), At("nextsibling", x, y)))
	case AxisPrecedingSibling:
		g.add(R(At(out, y), At(in, x), At("nextsibling", y, x)))
		g.add(R(At(out, y), At(out, x), At("nextsibling", y, x)))
	default:
		return fmt.Errorf("xpath: composite axis %v must be expanded first", ax)
	}
	return nil
}

// step emits the rules for one step and returns the new frontier
// predicate.
func (g *gen) step(st Step, cur string) (string, error) {
	V, At, R := datalog.V, datalog.At, datalog.R
	reach := g.fresh("ax")
	if err := g.axisRules(st.Axis, cur, reach); err != nil {
		return "", err
	}
	// Node test and predicates stack as conjunctive refinements.
	filtered := reach
	if st.Test != "*" {
		next := g.fresh("test")
		g.add(R(At(next, V("X")), At(filtered, V("X")), At("label_"+st.Test, V("X"))))
		filtered = next
	}
	for _, e := range st.Preds {
		sat, err := g.exprPred(e)
		if err != nil {
			return "", err
		}
		next := g.fresh("flt")
		g.add(R(At(next, V("X")), At(filtered, V("X")), At(sat, V("X"))))
		filtered = next
	}
	return filtered, nil
}

// exprPred returns a predicate holding for the nodes satisfying the
// filter expression.
func (g *gen) exprPred(e Expr) (string, error) {
	V, At, R := datalog.V, datalog.At, datalog.R
	switch ge := e.(type) {
	case ExprAnd:
		l, err := g.exprPred(ge.L)
		if err != nil {
			return "", err
		}
		r, err := g.exprPred(ge.R)
		if err != nil {
			return "", err
		}
		out := g.fresh("and")
		g.add(R(At(out, V("X")), At(l, V("X")), At(r, V("X"))))
		return out, nil
	case ExprOr:
		l, err := g.exprPred(ge.L)
		if err != nil {
			return "", err
		}
		r, err := g.exprPred(ge.R)
		if err != nil {
			return "", err
		}
		out := g.fresh("or")
		g.add(R(At(out, V("X")), At(l, V("X"))))
		g.add(R(At(out, V("X")), At(r, V("X"))))
		return out, nil
	case ExprNot:
		return "", fmt.Errorf("xpath: not(·) reached the datalog generator")
	case ExprPath:
		return g.pathSat(ge.Path)
	}
	return "", fmt.Errorf("xpath: unknown expression %T", e)
}

// pathSat returns a predicate sat(x) := "the relative path can be
// completed starting at x", built back to front: sat_k(x) holds iff
// step k..n succeed from x.
func (g *gen) pathSat(p *Path) (string, error) {
	V, At, R := datalog.V, datalog.At, datalog.R
	// satAfter: satisfied after the last step — trivially true. Build
	// from the last step backwards.
	cur := "" // empty means "no further requirement"
	for i := len(p.Steps) - 1; i >= 0; i-- {
		st := p.Steps[i]
		// hit(y): y passes this step's test+preds and the rest of the
		// path from y succeeds.
		hit := g.fresh("hit")
		var conds []datalog.Atom
		if st.Test != "*" {
			conds = append(conds, At("label_"+st.Test, V("Y")))
		}
		for _, e := range st.Preds {
			sat, err := g.exprPred(e)
			if err != nil {
				return "", err
			}
			conds = append(conds, At(sat, V("Y")))
		}
		if cur != "" {
			conds = append(conds, At(cur, V("Y")))
		}
		if len(conds) == 0 {
			// Unconstrained: any node reachable by the axis counts; use a
			// trivially true predicate via the dom pattern.
			conds = append(conds, At(g.domPred(), V("Y")))
		}
		body := append([]datalog.Atom{}, conds...)
		g.add(R(At(hit, V("Y")), body...))
		// sat(x): some axis-reachable y has hit(y).
		sat := g.fresh("sat")
		if err := g.axisSatRules(st.Axis, hit, sat); err != nil {
			return "", err
		}
		cur = sat
	}
	if cur == "" {
		return g.domPred(), nil
	}
	return cur, nil
}

// axisSatRules emits sat(x) ← ∃y: axis(x, y) ∧ hit(y).
func (g *gen) axisSatRules(ax Axis, hit, sat string) error {
	V, At, R := datalog.V, datalog.At, datalog.R
	x, y := V("X"), V("Y")
	switch ax {
	case AxisSelf:
		g.add(R(At(sat, x), At(hit, x)))
	case AxisChild:
		g.add(R(At(sat, x), At("child", x, y), At(hit, y)))
	case AxisDescendant, AxisDescendantOrSelf:
		// mid(y): hit holds somewhere in the subtree of y (inclusive).
		mid := g.fresh("mid")
		g.add(R(At(mid, x), At(hit, x)))
		g.add(R(At(mid, x), At("child", x, y), At(mid, y)))
		if ax == AxisDescendant {
			g.add(R(At(sat, x), At("child", x, y), At(mid, y)))
		} else {
			g.add(R(At(sat, x), At(mid, x)))
		}
	case AxisParent:
		g.add(R(At(sat, x), At("child", y, x), At(hit, y)))
	case AxisAncestor, AxisAncestorOrSelf:
		mid := g.fresh("mid")
		g.add(R(At(mid, x), At(hit, x)))
		g.add(R(At(mid, x), At("child", y, x), At(mid, y)))
		if ax == AxisAncestor {
			g.add(R(At(sat, x), At("child", y, x), At(mid, y)))
		} else {
			g.add(R(At(sat, x), At(mid, x)))
		}
	case AxisFollowingSibling:
		mid := g.fresh("mid")
		g.add(R(At(mid, x), At(hit, x)))
		g.add(R(At(mid, x), At("nextsibling", x, y), At(mid, y)))
		g.add(R(At(sat, x), At("nextsibling", x, y), At(mid, y)))
	case AxisPrecedingSibling:
		mid := g.fresh("mid")
		g.add(R(At(mid, x), At(hit, x)))
		g.add(R(At(mid, x), At("nextsibling", y, x), At(mid, y)))
		g.add(R(At(sat, x), At("nextsibling", y, x), At(mid, y)))
	default:
		return fmt.Errorf("xpath: composite axis %v must be expanded first", ax)
	}
	return nil
}

// domPred lazily defines the "any node" pattern.
func (g *gen) domPred() string {
	const name = "xp_dom"
	for _, r := range g.prog.Rules {
		if r.Head.Pred == name {
			return name
		}
	}
	V, At, R := datalog.V, datalog.At, datalog.R
	g.add(
		R(At(name, V("X")), At("root", V("X"))),
		R(At(name, V("Y")), At(name, V("X")), At("child", V("X"), V("Y"))),
	)
	return name
}
