package xpath

import (
	"mdlog/internal/tree"
)

// Direct evaluation of Core XPath on trees — the reference semantics
// for the datalog translation, with full support for not(·).

// Select evaluates the path on the document. Absolute paths start at
// the root; relative paths are evaluated with the root as context (the
// common convention for whole-document queries).
func Select(p *Path, t *tree.Tree) []int {
	ctx := make([]bool, t.Size())
	ctx[t.Root.ID] = true
	res := evalPath(p.expandComposite(), t, ctx)
	var out []int
	for id, in := range res {
		if in {
			out = append(out, id)
		}
	}
	return out
}

func evalPath(p *Path, t *tree.Tree, ctx []bool) []bool {
	cur := ctx
	for _, st := range p.Steps {
		cur = evalStep(st, t, cur)
	}
	return cur
}

func evalStep(st Step, t *tree.Tree, cur []bool) []bool {
	next := make([]bool, t.Size())
	addAxis(st.Axis, t, cur, next)
	// Node test. Core XPath is defined over plain labeled trees: '*'
	// matches any node (text nodes are ordinary leaves labeled #text,
	// matched explicitly by text()).
	for id := range next {
		if !next[id] {
			continue
		}
		if st.Test != "*" && t.Nodes[id].Label != st.Test {
			next[id] = false
		}
	}
	// Predicates.
	for _, e := range st.Preds {
		for id := range next {
			if next[id] && !evalExpr(e, t, id) {
				next[id] = false
			}
		}
	}
	return next
}

func addAxis(ax Axis, t *tree.Tree, cur, next []bool) {
	switch ax {
	case AxisSelf:
		copy(next, cur)
	case AxisChild:
		for id, in := range cur {
			if !in {
				continue
			}
			for _, c := range t.Nodes[id].Children {
				next[c.ID] = true
			}
		}
	case AxisDescendant, AxisDescendantOrSelf:
		var mark func(n *tree.Node)
		mark = func(n *tree.Node) {
			next[n.ID] = true
			for _, c := range n.Children {
				mark(c)
			}
		}
		for id, in := range cur {
			if !in {
				continue
			}
			if ax == AxisDescendantOrSelf {
				mark(t.Nodes[id])
			} else {
				for _, c := range t.Nodes[id].Children {
					mark(c)
				}
			}
		}
	case AxisParent:
		for id, in := range cur {
			if in && t.Nodes[id].Parent != nil {
				next[t.Nodes[id].Parent.ID] = true
			}
		}
	case AxisAncestor, AxisAncestorOrSelf:
		for id, in := range cur {
			if !in {
				continue
			}
			if ax == AxisAncestorOrSelf {
				next[id] = true
			}
			for a := t.Nodes[id].Parent; a != nil; a = a.Parent {
				next[a.ID] = true
			}
		}
	case AxisFollowingSibling:
		for id, in := range cur {
			if !in {
				continue
			}
			for s := t.Nodes[id].NextSibling(); s != nil; s = s.NextSibling() {
				next[s.ID] = true
			}
		}
	case AxisPrecedingSibling:
		for id, in := range cur {
			if !in {
				continue
			}
			for s := t.Nodes[id].PrevSibling(); s != nil; s = s.PrevSibling() {
				next[s.ID] = true
			}
		}
	}
}

func evalExpr(e Expr, t *tree.Tree, id int) bool {
	switch g := e.(type) {
	case ExprPath:
		ctx := make([]bool, t.Size())
		ctx[id] = true
		res := evalPath(g.Path, t, ctx)
		for _, in := range res {
			if in {
				return true
			}
		}
		return false
	case ExprAnd:
		return evalExpr(g.L, t, id) && evalExpr(g.R, t, id)
	case ExprOr:
		return evalExpr(g.L, t, id) || evalExpr(g.R, t, id)
	case ExprNot:
		return !evalExpr(g.E, t, id)
	}
	return false
}
