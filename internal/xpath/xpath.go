// Package xpath implements Core XPath — the logical core of XPath
// identified by Gottlob, Koch & Pichler (VLDB 2002) — and its
// translation into monadic datalog over τ_ur ∪ {child}, realizing the
// concluding remark of Section 7 of the paper: "Core XPath ... can be
// mapped efficiently to monadic datalog and thus inherits its very
// favorable worst-case evaluation complexity bounds."
//
// Supported: absolute and relative location paths over the axes
// child, descendant, descendant-or-self, self, parent, ancestor,
// ancestor-or-self, following-sibling, preceding-sibling, following
// and preceding; name tests, *, and text(); and filter predicates
// [E] built from relative paths, and, or, and not(·).
//
// The positive fragment (no not) compiles to pure monadic datalog
// (ToDatalog); the direct evaluator (Select) supports full Core XPath
// including negation and serves as the reference semantics.
package xpath

import (
	"fmt"
	"strings"
)

// Axis enumerates the Core XPath axes.
type Axis int

const (
	AxisChild Axis = iota
	AxisDescendant
	AxisDescendantOrSelf
	AxisSelf
	AxisParent
	AxisAncestor
	AxisAncestorOrSelf
	AxisFollowingSibling
	AxisPrecedingSibling
	AxisFollowing
	AxisPreceding
)

var axisNames = map[string]Axis{
	"child":              AxisChild,
	"descendant":         AxisDescendant,
	"descendant-or-self": AxisDescendantOrSelf,
	"self":               AxisSelf,
	"parent":             AxisParent,
	"ancestor":           AxisAncestor,
	"ancestor-or-self":   AxisAncestorOrSelf,
	"following-sibling":  AxisFollowingSibling,
	"preceding-sibling":  AxisPrecedingSibling,
	"following":          AxisFollowing,
	"preceding":          AxisPreceding,
}

func (a Axis) String() string {
	for n, ax := range axisNames {
		if ax == a {
			return n
		}
	}
	return fmt.Sprintf("Axis(%d)", int(a))
}

// Step is axis::test[pred]*.
type Step struct {
	Axis Axis
	// Test is a label, "*" (any element), or "#text" (text()).
	Test  string
	Preds []Expr
}

func (s Step) String() string {
	out := s.Axis.String() + "::" + testString(s.Test)
	for _, p := range s.Preds {
		out += "[" + p.String() + "]"
	}
	return out
}

func testString(t string) string {
	if t == "#text" {
		return "text()"
	}
	return t
}

// Path is a location path.
type Path struct {
	// Absolute paths start at the root.
	Absolute bool
	Steps    []Step
}

func (p *Path) String() string {
	parts := make([]string, len(p.Steps))
	for i, s := range p.Steps {
		parts[i] = s.String()
	}
	out := strings.Join(parts, "/")
	if p.Absolute {
		return "/" + out
	}
	return out
}

// Expr is a filter expression.
type Expr interface {
	fmt.Stringer
	isExpr()
}

type (
	// ExprPath is an existential relative path.
	ExprPath struct{ Path *Path }
	// ExprAnd is E1 and E2.
	ExprAnd struct{ L, R Expr }
	// ExprOr is E1 or E2.
	ExprOr struct{ L, R Expr }
	// ExprNot is not(E) — supported by the evaluator, not by the
	// monotone datalog translation.
	ExprNot struct{ E Expr }
)

func (ExprPath) isExpr() {}
func (ExprAnd) isExpr()  {}
func (ExprOr) isExpr()   {}
func (ExprNot) isExpr()  {}

func (e ExprPath) String() string { return e.Path.String() }
func (e ExprAnd) String() string  { return e.L.String() + " and " + e.R.String() }
func (e ExprOr) String() string   { return e.L.String() + " or " + e.R.String() }
func (e ExprNot) String() string  { return "not(" + e.E.String() + ")" }

// HasNegation reports whether the path uses not(·) anywhere.
func (p *Path) HasNegation() bool {
	for _, s := range p.Steps {
		for _, e := range s.Preds {
			if exprHasNeg(e) {
				return true
			}
		}
	}
	return false
}

func exprHasNeg(e Expr) bool {
	switch g := e.(type) {
	case ExprNot:
		return true
	case ExprAnd:
		return exprHasNeg(g.L) || exprHasNeg(g.R)
	case ExprOr:
		return exprHasNeg(g.L) || exprHasNeg(g.R)
	case ExprPath:
		return g.Path.HasNegation()
	}
	return false
}

// expandComposite rewrites following/preceding into their standard
// compositions (ancestor-or-self / {following,preceding}-sibling /
// descendant-or-self), so downstream code handles only primitive axes.
func (p *Path) expandComposite() *Path {
	out := &Path{Absolute: p.Absolute}
	for _, s := range p.Steps {
		preds := make([]Expr, len(s.Preds))
		for i, e := range s.Preds {
			preds[i] = expandExpr(e)
		}
		switch s.Axis {
		case AxisFollowing, AxisPreceding:
			sib := AxisFollowingSibling
			if s.Axis == AxisPreceding {
				sib = AxisPrecedingSibling
			}
			out.Steps = append(out.Steps,
				Step{Axis: AxisAncestorOrSelf, Test: "*"},
				Step{Axis: sib, Test: "*"},
				Step{Axis: AxisDescendantOrSelf, Test: s.Test, Preds: preds})
		default:
			out.Steps = append(out.Steps, Step{Axis: s.Axis, Test: s.Test, Preds: preds})
		}
	}
	return out
}

func expandExpr(e Expr) Expr {
	switch g := e.(type) {
	case ExprPath:
		return ExprPath{g.Path.expandComposite()}
	case ExprAnd:
		return ExprAnd{expandExpr(g.L), expandExpr(g.R)}
	case ExprOr:
		return ExprOr{expandExpr(g.L), expandExpr(g.R)}
	case ExprNot:
		return ExprNot{expandExpr(g.E)}
	}
	return e
}
