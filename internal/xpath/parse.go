package xpath

import (
	"fmt"
	"strings"
)

// Parse reads a Core XPath expression:
//
//	/html/body//div[a and not(self::div[@...])]   (no attributes — Core XPath)
//	//table/tr[td/b]/td
//	//li[following-sibling::li]
//
// Abbreviations: a leading '/' makes the path absolute; '//' stands
// for /descendant-or-self::*/ ; a bare name means child::name;
// 'text()' matches text nodes; '..' is parent::*; '.' is self::*.
func Parse(src string) (*Path, error) {
	p := &xparser{src: strings.TrimSpace(src)}
	path, err := p.path()
	if err != nil {
		return nil, err
	}
	p.skip()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("xpath: trailing input at %d in %q", p.pos, src)
	}
	return path, nil
}

// MustParse panics on error.
func MustParse(src string) *Path {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type xparser struct {
	src string
	pos int
}

func (p *xparser) skip() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n') {
		p.pos++
	}
}

func (p *xparser) peekStr(s string) bool { return strings.HasPrefix(p.src[p.pos:], s) }

func (p *xparser) path() (*Path, error) {
	path := &Path{}
	p.skip()
	switch {
	case p.peekStr("//"):
		path.Absolute = true
		p.pos += 2
		path.Steps = append(path.Steps, Step{Axis: AxisDescendantOrSelf, Test: "*"})
	case p.peekStr("/"):
		path.Absolute = true
		p.pos++
		if p.pos >= len(p.src) { // "/" alone selects the root
			path.Steps = append(path.Steps, Step{Axis: AxisSelf, Test: "*"})
			return path, nil
		}
	}
	for {
		st, err := p.step()
		if err != nil {
			return nil, err
		}
		path.Steps = append(path.Steps, st)
		p.skip()
		switch {
		case p.peekStr("//"):
			p.pos += 2
			path.Steps = append(path.Steps, Step{Axis: AxisDescendantOrSelf, Test: "*"})
		case p.peekStr("/"):
			p.pos++
		default:
			return path, nil
		}
	}
}

func (p *xparser) name() string {
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '-' || c == '_' || c == '#' {
			p.pos++
		} else {
			break
		}
	}
	return p.src[start:p.pos]
}

func (p *xparser) step() (Step, error) {
	p.skip()
	st := Step{Axis: AxisChild, Test: "*"}
	switch {
	case p.peekStr(".."):
		p.pos += 2
		st.Axis, st.Test = AxisParent, "*"
	case p.peekStr("."):
		p.pos++
		st.Axis, st.Test = AxisSelf, "*"
	default:
		save := p.pos
		n := p.name()
		if n == "" && p.peekStr("*") {
			p.pos++
			n = "*"
		}
		if n == "" {
			return st, fmt.Errorf("xpath: expected step at %d in %q", p.pos, p.src)
		}
		if p.peekStr("::") {
			ax, ok := axisNames[n]
			if !ok {
				return st, fmt.Errorf("xpath: unknown axis %q", n)
			}
			st.Axis = ax
			p.pos += 2
			n = p.name()
			if n == "" && p.peekStr("*") {
				p.pos++
				n = "*"
			}
			if n == "" {
				return st, fmt.Errorf("xpath: expected node test after %s::", ax)
			}
		} else if n != "*" && p.peekStr("()") {
			// text() node test.
			if n != "text" {
				return st, fmt.Errorf("xpath: unsupported node test %s()", n)
			}
			p.pos += 2
			st.Test = "#text"
			_ = save
			return p.preds(st)
		}
		if n == "text" && p.peekStr("()") {
			p.pos += 2
			n = "#text"
		}
		st.Test = n
	}
	return p.preds(st)
}

func (p *xparser) preds(st Step) (Step, error) {
	for {
		p.skip()
		if !p.peekStr("[") {
			return st, nil
		}
		p.pos++
		e, err := p.orExpr()
		if err != nil {
			return st, err
		}
		p.skip()
		if !p.peekStr("]") {
			return st, fmt.Errorf("xpath: expected ']' at %d", p.pos)
		}
		p.pos++
		st.Preds = append(st.Preds, e)
	}
}

func (p *xparser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for {
		p.skip()
		if !p.keyword("or") {
			return l, nil
		}
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = ExprOr{l, r}
	}
}

func (p *xparser) andExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		p.skip()
		if !p.keyword("and") {
			return l, nil
		}
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = ExprAnd{l, r}
	}
}

// keyword consumes an identifier-like keyword if present.
func (p *xparser) keyword(kw string) bool {
	p.skip()
	if !strings.HasPrefix(p.src[p.pos:], kw) {
		return false
	}
	after := p.pos + len(kw)
	if after < len(p.src) {
		c := p.src[after]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '-' || c == ':' {
			return false
		}
	}
	p.pos = after
	return true
}

func (p *xparser) unaryExpr() (Expr, error) {
	p.skip()
	switch {
	case p.keyword("not"):
		p.skip()
		if !p.peekStr("(") {
			return nil, fmt.Errorf("xpath: expected '(' after not")
		}
		p.pos++
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		p.skip()
		if !p.peekStr(")") {
			return nil, fmt.Errorf("xpath: expected ')' after not(...")
		}
		p.pos++
		return ExprNot{e}, nil
	case p.peekStr("("):
		p.pos++
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		p.skip()
		if !p.peekStr(")") {
			return nil, fmt.Errorf("xpath: expected ')'")
		}
		p.pos++
		return e, nil
	default:
		path, err := p.path()
		if err != nil {
			return nil, err
		}
		return ExprPath{path}, nil
	}
}
