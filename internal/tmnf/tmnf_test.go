package tmnf

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mdlog/internal/datalog"
	"mdlog/internal/eval"
	"mdlog/internal/tree"
)

// evalBoth evaluates the original program (which may use child and
// lastchild) with the generic engine and the transformed program with
// the linear engine, comparing the extension of the given predicate.
func evalBoth(t *testing.T, orig, tm *datalog.Program, pred string, tr *tree.Tree) {
	t.Helper()
	db := eval.TreeDB(tr, eval.WithChild(), eval.WithLastChild())
	full, err := datalog.SemiNaiveEval(orig, db)
	if err != nil {
		t.Fatalf("orig eval: %v", err)
	}
	want := full.UnarySet(pred)
	res, err := eval.LinearTree(tm, tr)
	if err != nil {
		t.Fatalf("tmnf eval: %v", err)
	}
	got := res.UnarySet(pred)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("pred %s on %s:\n  tmnf %v\n  orig %v\nprogram:\n%s\ntransformed:\n%s",
			pred, tr, got, want, orig, tm)
	}
}

func randomTrees(seed int64, n int) []*tree.Tree {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*tree.Tree, n)
	for i := range out {
		out[i] = tree.Random(rng, tree.RandomOptions{
			Labels: []string{"a", "b", "c"}, Size: 1 + rng.Intn(18), MaxChildren: 4})
	}
	return out
}

func TestIsTMNF(t *testing.T) {
	good := datalog.MustParseProgram(`
p(X) :- root(X).
p(X) :- p(X0), firstchild(X0,X).
p(X) :- p(X0), firstchild(X,X0).
q(X) :- p(X), label_a(X).
r(X) :- q(X).
`)
	if err := IsTMNF(good); err != nil {
		t.Errorf("good program rejected: %v", err)
	}
	bad := []string{
		`p(X) :- q(X), r(X), s(X).`,            // 3 atoms
		`p(X) :- child(X0,X), q(X0).`,          // child not in τ_ur
		`p(X) :- firstchild(X0,X).`,            // no unary atom
		`p(X,Y) :- firstchild(X,Y).`,           // binary head
		`p(X) :- q(Y), firstchild(Y,Z), r(X).`, // stray variable
		`p(X) :- mystery(X).`,                  // unknown unary EDB
	}
	for _, src := range bad {
		p, err := datalog.ParseProgram(src)
		if err != nil {
			continue // some are rejected by the parser (unsafe)
		}
		if IsTMNF(p) == nil {
			t.Errorf("accepted non-TMNF: %s", src)
		}
	}
}

// TestFigure3Rewrite checks the Lemma 5.5 stages on a rule in the
// spirit of Figure 3 (the figure's exact rule is typographically
// garbled in the source; this analog exhibits the same phenomena:
// parent merging through shared sibling components, and the
// introduction of firstchild + nextsibling* for dangling child atoms).
func TestFigure3Rewrite(t *testing.T) {
	r := datalog.MustParseProgram(`
q(X1) :- firstchild(X1,X5), child(X3,X6), nextsibling(X5,X6), child(X2,X9), label_a(X9).
`).Rules[0]
	ac, ok, err := AcyclicizeUnranked(r)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("rule wrongly declared unsatisfiable")
	}
	// X1 and X3 must merge (parents of the siblings X5, X6); the
	// child(X2, X9) atom becomes firstchild(X2, y0), ns*(y0, X9).
	s := ac.String()
	if strings.Contains(s, "child(") && !strings.Contains(s, "firstchild(") {
		t.Errorf("child atoms not eliminated: %s", s)
	}
	counts := map[string]int{}
	for _, b := range ac.Body {
		counts[b.Pred]++
	}
	if counts["firstchild"] != 2 || counts["nextsibling"] != 1 ||
		counts[predNSStar] != 1 || counts["child"] != 0 || counts["label_a"] != 1 {
		t.Errorf("atom counts wrong: %v in %s", counts, s)
	}
	if len(ac.Vars()) != 6 { // X1=X3 merged; +fresh y0
		t.Errorf("vars = %v", ac.Vars())
	}
	if !ac.IsConnected() {
		// Two components: {X1, X5, X6} and {X2, y0, X9} — connection is
		// the job of the later pipeline stage, not of Lemma 5.5.
		t.Log("rule has two components, as expected")
	}
	// Semantics must be preserved end-to-end through the full pipeline.
	p := datalog.NewProgram(r.Clone())
	p.Query = "q"
	tm, err := Transform(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := IsTMNF(tm); err != nil {
		t.Fatalf("not TMNF: %v", err)
	}
	for _, tr := range randomTrees(31, 20) {
		evalBoth(t, p, tm, "q", tr)
	}
}

func TestAcyclicizeUnsat(t *testing.T) {
	unsat := []string{
		`p(X) :- firstchild(X,Y), firstchild(Y,X).`,   // cycle
		`p(X) :- nextsibling(X,Y), nextsibling(Y,X).`, // sibling cycle
		`p(X) :- firstchild(X,X).`,                    // self-loop
		`p(X) :- nextsibling(X,X).`,                   // self-loop
		`p(X) :- firstchild(X,Y), nextsibling(X,Y).`,  // child & sibling
		`p(X) :- child(X,Y), child(Y,X).`,             // parent cycle
	}
	for _, src := range unsat {
		r := datalog.MustParseProgram(src).Rules[0]
		_, ok, err := AcyclicizeUnranked(r)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if ok {
			t.Errorf("%s: should be unsatisfiable", src)
		}
	}
}

func TestAcyclicizeMergesParents(t *testing.T) {
	// Two parents of the same node merge (child: $2→$1).
	r := datalog.MustParseProgram(`p(X) :- child(X,Z), child(Y,Z), label_a(Y).`).Rules[0]
	ac, ok, err := AcyclicizeUnranked(r)
	if err != nil || !ok {
		t.Fatalf("%v %v", ok, err)
	}
	if len(ac.Vars()) != 3 { // X=Y, Z, fresh y0
		t.Errorf("vars = %v in %s", ac.Vars(), ac)
	}
	// The label_a constraint must now apply to X.
	found := false
	for _, b := range ac.Body {
		if b.Pred == "label_a" && b.Args[0].Var == ac.Head.Args[0].Var {
			found = true
		}
	}
	if !found {
		t.Errorf("merged unary constraint missing: %s", ac)
	}
}

func TestAcyclicizeSiblingDepthMerge(t *testing.T) {
	// Two nextsibling chains of equal length from a shared firstchild
	// target merge node-by-node.
	r := datalog.MustParseProgram(`
p(X) :- firstchild(X,A), firstchild(X,B), nextsibling(A,C), nextsibling(B,D), label_a(D).
`).Rules[0]
	ac, ok, err := AcyclicizeUnranked(r)
	if err != nil || !ok {
		t.Fatalf("%v %v", ok, err)
	}
	// A=B and C=D: 3 variables remain.
	if len(ac.Vars()) != 3 {
		t.Errorf("vars = %v in %s", ac.Vars(), ac)
	}
}

// TestTransformTMNFShape: every output rule is syntactically TMNF.
func TestTransformTMNFShape(t *testing.T) {
	programs := []string{
		`q(X) :- label_a(X).`,
		`q(X) :- child(X,Y), label_b(Y).`,
		`q(X) :- child(Y,X), label_b(Y), leaf(X).`,
		`q(X) :- lastchild(X,Y), label_a(Y).`,
		`q(X) :- label_a(X), label_b(Y).`, // disconnected
		`q(X) :- firstchild(X,Y), nextsibling(Y,Z), child(Z,W), leaf(W).`,
		`q(X) :- q0(X), child(X,Y), q1(Y).
q0(X) :- root(X).
q1(X) :- label_a(X).`,
	}
	for _, src := range programs {
		p := datalog.MustParseProgram(src)
		p.Query = "q"
		tm, err := Transform(p)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if err := IsTMNF(tm); err != nil {
			t.Errorf("%s: output not TMNF: %v\n%s", src, err, tm)
		}
	}
}

// TestTMNFEquivalence is the Theorem 5.2 semantic check across a
// program battery and random trees.
func TestTMNFEquivalence(t *testing.T) {
	programs := []string{
		`q(X) :- label_a(X).`,
		`q(X) :- child(X,Y), label_b(Y).`,
		`q(X) :- child(Y,X), label_a(Y).`,
		`q(X) :- lastchild(X,Y), label_a(Y).`,
		`q(X) :- lastchild(Y,X).`,
		`q(X) :- label_a(X), label_b(Y).`,
		`q(X) :- firstchild(X,Y), nextsibling(Y,Z), leaf(Z).`,
		`q(X) :- child(X,Y), child(Y,Z), label_c(Z).`,
		`q(X) :- child(X,Y), child(X,Z), nextsibling(Y,Z), label_a(Y), label_b(Z).`,
		`q(X) :- q(X0), child(X0,X).
q(X) :- root(X).`,
		`q(X) :- leaf(X), child(Y,X), root(Y).`,
	}
	for _, src := range programs {
		p := datalog.MustParseProgram(src)
		p.Query = "q"
		tm, err := Transform(p)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		for _, tr := range randomTrees(int64(len(src)), 12) {
			evalBoth(t, p, tm, "q", tr)
		}
	}
}

// TestTMNFEquivalenceQuick drives random rule shapes through the
// pipeline.
func TestTMNFEquivalenceQuick(t *testing.T) {
	gen := func(rng *rand.Rand) *datalog.Program {
		// Random tree-shaped rule bodies over {child, firstchild,
		// nextsibling, lastchild} with random unary constraints.
		nvars := 2 + rng.Intn(4)
		vars := make([]string, nvars)
		for i := range vars {
			vars[i] = fmt.Sprintf("V%d", i)
		}
		var body []datalog.Atom
		rels := []string{"child", "firstchild", "nextsibling", "lastchild"}
		for i := 1; i < nvars; i++ {
			// connect V_i to a random earlier variable (random direction)
			j := rng.Intn(i)
			rel := rels[rng.Intn(len(rels))]
			if rng.Intn(2) == 0 {
				body = append(body, datalog.At(rel, datalog.V(vars[j]), datalog.V(vars[i])))
			} else {
				body = append(body, datalog.At(rel, datalog.V(vars[i]), datalog.V(vars[j])))
			}
		}
		unaries := []string{"label_a", "label_b", "leaf", "root", "lastsibling"}
		for _, v := range vars {
			if rng.Intn(3) == 0 {
				body = append(body, datalog.At(unaries[rng.Intn(len(unaries))], datalog.V(v)))
			}
		}
		p := datalog.NewProgram(datalog.Rule{
			Head: datalog.At("q", datalog.V(vars[rng.Intn(nvars)])),
			Body: body,
		})
		p.Query = "q"
		return p
	}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := gen(rng)
		tm, err := Transform(p)
		if err != nil {
			t.Logf("transform error on %s: %v", p, err)
			return false
		}
		if err := IsTMNF(tm); err != nil {
			t.Logf("not TMNF: %v", err)
			return false
		}
		tr := tree.Random(rng, tree.RandomOptions{
			Labels: []string{"a", "b"}, Size: 1 + rng.Intn(15), MaxChildren: 3})
		db := eval.TreeDB(tr, eval.WithChild(), eval.WithLastChild())
		full, err := datalog.SemiNaiveEval(p, db)
		if err != nil {
			return false
		}
		res, err := eval.LinearTree(tm, tr)
		if err != nil {
			t.Logf("linear: %v", err)
			return false
		}
		if fmt.Sprint(res.UnarySet("q")) != fmt.Sprint(full.UnarySet("q")) {
			t.Logf("mismatch on %s:\norig %v vs tmnf %v\nprogram %s", tr,
				full.UnarySet("q"), res.UnarySet("q"), p)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestAcyclicizeRanked(t *testing.T) {
	// Merging: two names for the 1st child of X.
	r := datalog.MustParseProgram(`p(X) :- child_1(X,Y), child_1(X,Z), label_a(Z).`).Rules[0]
	ac, ok, err := AcyclicizeRanked(r)
	if err != nil || !ok {
		t.Fatalf("%v %v", ok, err)
	}
	if len(ac.Vars()) != 2 {
		t.Errorf("vars = %v in %s", ac.Vars(), ac)
	}
	// Merging parents: child_2: $2→$1.
	r2 := datalog.MustParseProgram(`p(X) :- child_2(X,Z), child_2(Y,Z), label_b(Y).`).Rules[0]
	ac2, ok, err := AcyclicizeRanked(r2)
	if err != nil || !ok {
		t.Fatalf("%v %v", ok, err)
	}
	if len(ac2.Vars()) != 2 {
		t.Errorf("vars = %v in %s", ac2.Vars(), ac2)
	}
	// Unsatisfiable: a node that is both 1st and 2nd child of the same
	// parent.
	r3 := datalog.MustParseProgram(`p(X) :- child_1(X,Y), child_2(X,Y).`).Rules[0]
	if _, ok, _ := AcyclicizeRanked(r3); ok {
		t.Error("child_1 ∧ child_2 on the same pair must be unsatisfiable")
	}
	// Unsatisfiable: cyclic child chain.
	r4 := datalog.MustParseProgram(`p(X) :- child_1(X,Y), child_1(Y,X).`).Rules[0]
	if _, ok, _ := AcyclicizeRanked(r4); ok {
		t.Error("cyclic rule must be unsatisfiable")
	}
	// Semantics check on a binary tree.
	p := datalog.NewProgram(r.Clone())
	tr := tree.MustParse("f(a,b)")
	db := eval.TreeDB(tr, eval.WithChildK(2))
	want, err := datalog.SemiNaiveEval(p, db)
	if err != nil {
		t.Fatal(err)
	}
	pac := datalog.NewProgram(ac.Clone())
	got, err := datalog.SemiNaiveEval(pac, db)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got.UnarySet("p")) != fmt.Sprint(want.UnarySet("p")) {
		t.Errorf("ranked acyclicize changed semantics: %v vs %v",
			got.UnarySet("p"), want.UnarySet("p"))
	}
}

func TestTransformPreservesQueryPred(t *testing.T) {
	p := datalog.MustParseProgram(`q(X) :- child(X,Y), leaf(Y).`)
	p.Query = "q"
	tm, err := Transform(p)
	if err != nil {
		t.Fatal(err)
	}
	if tm.Query != "q" {
		t.Errorf("query pred lost: %q", tm.Query)
	}
}

func TestTransformRejects(t *testing.T) {
	bad := []string{
		`p(X,Y) :- child(X,Y).`,      // non-monadic head
		`p(X) :- before(X,Y), q(Y).`, // unknown binary predicate
		`p(3).`,                      // constants
	}
	for _, src := range bad {
		p := datalog.MustParseProgram(src)
		if _, err := Transform(p); err == nil {
			t.Errorf("accepted: %s", src)
		}
	}
}
