package tmnf

import (
	"fmt"
	"sort"

	"mdlog/internal/datalog"
	"mdlog/internal/eval"
)

// AcyclicizeRanked implements Lemma 5.4: a rule over τ_rk (child_k
// relations plus unary atoms) is rewritten into an equivalent acyclic
// rule, or reported unsatisfiable (ok = false). Variables at the same
// depth index within a child_k-connected component denote the same
// node (the bidirectional functional dependencies of Proposition 4.1)
// and are merged; if a cycle survives merging, the rule constrains
// some node to be the k-th and j-th child of two parents (k ≠ j) and
// is unsatisfiable on trees.
func AcyclicizeRanked(r datalog.Rule) (datalog.Rule, bool, error) {
	type binAtom struct {
		k    int
		x, y string
	}
	var bins []binAtom
	var unary []datalog.Atom
	head := r.Head.Clone()
	if len(head.Args) != 1 || !head.Args[0].IsVar() {
		return datalog.Rule{}, false, fmt.Errorf("tmnf: head must be unary over a variable: %s", r)
	}
	for _, b := range r.Body {
		for _, t := range b.Args {
			if !t.IsVar() {
				return datalog.Rule{}, false, fmt.Errorf("tmnf: constants unsupported: %s", r)
			}
		}
		switch len(b.Args) {
		case 1:
			unary = append(unary, b.Clone())
		case 2:
			k, ok := eval.IsChildKPred(b.Pred)
			if !ok {
				return datalog.Rule{}, false, fmt.Errorf("tmnf: ranked rules may only use child_k relations, got %s", b.Pred)
			}
			bins = append(bins, binAtom{k, b.Args[0].Var, b.Args[1].Var})
		default:
			return datalog.Rule{}, false, fmt.Errorf("tmnf: unsupported atom arity in %s", r)
		}
	}

	uf := newUF()
	apply := func() {
		for i := range bins {
			bins[i].x, bins[i].y = uf.find(bins[i].x), uf.find(bins[i].y)
		}
		for i := range unary {
			unary[i].Args[0] = datalog.V(uf.find(unary[i].Args[0].Var))
		}
		head.Args[0] = datalog.V(uf.find(head.Args[0].Var))
		// Deduplicate binary atoms.
		seen := map[binAtom]bool{}
		out := bins[:0]
		for _, b := range bins {
			if !seen[b] {
				seen[b] = true
				out = append(out, b)
			}
		}
		bins = out
	}

	varsOf := func() []string {
		set := map[string]bool{}
		var out []string
		add := func(v string) {
			if !set[v] {
				set[v] = true
				out = append(out, v)
			}
		}
		add(head.Args[0].Var)
		for _, u := range unary {
			add(u.Args[0].Var)
		}
		for _, b := range bins {
			add(b.x)
			add(b.y)
		}
		sort.Strings(out)
		return out
	}

	for round := 0; ; round++ {
		if round > len(r.Body)+4 {
			return datalog.Rule{}, false, fmt.Errorf("tmnf: ranked acyclicize did not converge: %s", r)
		}
		// Depth-index map over the full child graph.
		var edges [][2]string
		for _, b := range bins {
			edges = append(edges, [2]string{b.x, b.y})
		}
		d := depthIndex(varsOf(), edges)
		if d == nil {
			return datalog.Rule{}, false, nil // unsatisfiable
		}
		// Per-k component merging at equal depths.
		merged := false
		ks := map[int]bool{}
		for _, b := range bins {
			ks[b.k] = true
		}
		for k := range ks {
			comp := newUF()
			for _, b := range bins {
				if b.k == k {
					comp.union(b.x, b.y)
				}
			}
			groups := map[string][]string{}
			for _, v := range varsOf() {
				key := fmt.Sprintf("%s@%d", comp.find(v), d[v])
				groups[key] = append(groups[key], v)
			}
			for _, g := range groups {
				// Only merge within genuine components (component find of
				// singleton vars is themselves; a group of size 1 is inert).
				for i := 1; i < len(g); i++ {
					if comp.find(g[0]) == comp.find(g[i]) && uf.find(g[0]) != uf.find(g[i]) {
						uf.union(g[0], g[i])
						merged = true
					}
				}
			}
		}
		if !merged {
			break
		}
		apply()
	}

	// Self-loops are unsatisfiable; duplicate-pair atoms with different
	// k likewise.
	for _, b := range bins {
		if b.x == b.y {
			return datalog.Rule{}, false, nil
		}
	}
	out := datalog.Rule{Head: head}
	for _, u := range unary {
		out.Body = append(out.Body, u)
	}
	for _, b := range bins {
		out.Body = append(out.Body, datalog.At(eval.ChildKPred(b.k), datalog.V(b.x), datalog.V(b.y)))
	}
	if !isAcyclicRule(out) {
		// Surviving cycles involve a node forced to be the k-th and j-th
		// child (k ≠ j) or child of two distinct parents: unsatisfiable.
		return datalog.Rule{}, false, nil
	}
	return out, true, nil
}
