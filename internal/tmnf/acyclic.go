// Package tmnf implements Section 5 of Gottlob & Koch (PODS 2002): the
// Tree-Marking Normal Form for monadic datalog over trees and the
// linear-time translation into it (Theorem 5.2), via
//
//   - acyclic rewriting of rules using depth-index maps and the
//     functional dependencies of the tree relations (Lemma 5.4 for
//     ranked τ_rk, Lemmas 5.5/5.6 for τ_ur ∪ {child, lastchild};
//     Figure 3 illustrates the unranked rewrite);
//   - connection of disconnected rules through the total caterpillar
//     relation ≺ ∪ ε ∪ ≻ (document order, Example 2.5);
//   - ear decomposition into rules with at most two body atoms
//     (Lemmas 5.7 and 5.8);
//   - elimination of the introduced caterpillar atoms (nextsibling*
//     and the document-order connector) by Lemma 5.9.
package tmnf

import (
	"fmt"
	"sort"

	"mdlog/internal/datalog"
	"mdlog/internal/eval"
)

// Special binary predicates used in intermediate rules.
const (
	// predNSStar is nextsibling* (output vocabulary of Lemma 5.5).
	predNSStar = "ns_star"
	// predDocAny is the total relation ≺ ∪ ε ∪ ≻ used to connect
	// disconnected rules (proof of Theorem 5.2).
	predDocAny = "doc_any"
)

// unionFind over variable names.
type unionFind struct{ parent map[string]string }

func newUF() *unionFind { return &unionFind{parent: map[string]string{}} }

func (u *unionFind) find(x string) string {
	p, ok := u.parent[x]
	if !ok || p == x {
		return x
	}
	r := u.find(p)
	u.parent[x] = r
	return r
}

func (u *unionFind) union(x, y string) {
	rx, ry := u.find(x), u.find(y)
	if rx != ry {
		u.parent[rx] = ry
	}
}

// workRule is a rule under rewriting: unary atoms plus binary atoms
// bucketed by relation, all over variables only.
type workRule struct {
	head  datalog.Atom
	unary []datalog.Atom
	// binary atom lists: [2]string{from, to}.
	f, c, n, ns [][2]string
}

func (w *workRule) apply(u *unionFind) {
	sub := func(v string) string { return u.find(v) }
	for i := range w.head.Args {
		w.head.Args[i] = datalog.V(sub(w.head.Args[i].Var))
	}
	for i := range w.unary {
		w.unary[i].Args[0] = datalog.V(sub(w.unary[i].Args[0].Var))
	}
	for _, lst := range [][][2]string{w.f, w.c, w.n, w.ns} {
		for i := range lst {
			lst[i][0], lst[i][1] = sub(lst[i][0]), sub(lst[i][1])
		}
	}
	w.dedupe()
}

func (w *workRule) dedupe() {
	dd := func(lst [][2]string) [][2]string {
		seen := map[[2]string]bool{}
		out := lst[:0]
		for _, e := range lst {
			if !seen[e] {
				seen[e] = true
				out = append(out, e)
			}
		}
		return out
	}
	w.f, w.c, w.n, w.ns = dd(w.f), dd(w.c), dd(w.n), dd(w.ns)
	seen := map[string]bool{}
	uo := w.unary[:0]
	for _, a := range w.unary {
		k := a.Pred + "/" + a.Args[0].Var
		if !seen[k] {
			seen[k] = true
			uo = append(uo, a)
		}
	}
	w.unary = uo
}

// vars returns the variable set of the rule.
func (w *workRule) vars() []string {
	set := map[string]bool{}
	var out []string
	add := func(v string) {
		if !set[v] {
			set[v] = true
			out = append(out, v)
		}
	}
	for _, t := range w.head.Args {
		add(t.Var)
	}
	for _, a := range w.unary {
		add(a.Args[0].Var)
	}
	for _, lst := range [][][2]string{w.f, w.c, w.n, w.ns} {
		for _, e := range lst {
			add(e[0])
			add(e[1])
		}
	}
	sort.Strings(out)
	return out
}

// toRule converts back to a datalog rule (c must be empty).
func (w *workRule) toRule() datalog.Rule {
	r := datalog.Rule{Head: w.head.Clone()}
	for _, a := range w.unary {
		r.Body = append(r.Body, a.Clone())
	}
	emit := func(pred string, lst [][2]string) {
		for _, e := range lst {
			r.Body = append(r.Body, datalog.At(pred, datalog.V(e[0]), datalog.V(e[1])))
		}
	}
	emit("firstchild", w.f)
	emit("child", w.c)
	emit("nextsibling", w.n)
	emit(predNSStar, w.ns)
	return r
}

// parseWorkRule buckets a rule's atoms, expanding lastchild (Lemma
// 5.6) and rejecting unsupported shapes.
func parseWorkRule(r datalog.Rule) (*workRule, error) {
	w := &workRule{head: r.Head.Clone()}
	if len(r.Head.Args) != 1 || !r.Head.Args[0].IsVar() {
		return nil, fmt.Errorf("tmnf: head must be unary over a variable: %s", r)
	}
	used := map[string]bool{}
	for _, v := range r.Vars() {
		used[v] = true
	}
	freshN := 0
	fresh := func() string {
		for {
			freshN++
			name := fmt.Sprintf("CK%d", freshN)
			if !used[name] {
				used[name] = true
				return name
			}
		}
	}
	for _, b := range r.Body {
		for _, t := range b.Args {
			if !t.IsVar() {
				return nil, fmt.Errorf("tmnf: constants are not supported: %s", r)
			}
		}
		switch len(b.Args) {
		case 1:
			w.unary = append(w.unary, b.Clone())
		case 2:
			e := [2]string{b.Args[0].Var, b.Args[1].Var}
			switch b.Pred {
			case "firstchild":
				w.f = append(w.f, e)
			case "child":
				w.c = append(w.c, e)
			case "nextsibling":
				w.n = append(w.n, e)
			case predNSStar:
				w.ns = append(w.ns, e)
			case "lastchild":
				// Lemma 5.6: lastchild(x,y) ⇒ child(x,y) ∧ lastsibling(y).
				w.c = append(w.c, e)
				w.unary = append(w.unary, datalog.At("lastsibling", datalog.V(e[1])))
			default:
				// child_k(x,y) is firstchild(x,z1) followed by k−1
				// nextsibling steps — expand it so programs mixing
				// child/2 with τ_rk atoms normalize too (they used to be
				// rejected here while the generic engines accepted them).
				k, ok := eval.IsChildKPred(b.Pred)
				if !ok {
					return nil, fmt.Errorf("tmnf: unsupported binary predicate %s in %s", b.Pred, r)
				}
				cur := e[0]
				for step := 1; step < k; step++ {
					next := fresh()
					if step == 1 {
						w.f = append(w.f, [2]string{cur, next})
					} else {
						w.n = append(w.n, [2]string{cur, next})
					}
					cur = next
				}
				if k == 1 {
					w.f = append(w.f, [2]string{cur, e[1]})
				} else {
					w.n = append(w.n, [2]string{cur, e[1]})
				}
			}
		default:
			return nil, fmt.Errorf("tmnf: unsupported atom arity in %s", r)
		}
	}
	w.dedupe()
	return w, nil
}

// depthIndex computes a depth-index map (Proposition 5.3) on the
// digraph with the given edges over nodes; returns nil if none exists
// (all paths between two nodes must have equal length).
func depthIndex(nodes []string, edges [][2]string) map[string]int {
	adj := map[string][][2]interface{}{}
	addAdj := func(a, b string, delta int) {
		adj[a] = append(adj[a], [2]interface{}{b, delta})
	}
	for _, e := range edges {
		addAdj(e[0], e[1], +1)
		addAdj(e[1], e[0], -1)
	}
	d := map[string]int{}
	for _, start := range nodes {
		if _, ok := d[start]; ok {
			continue
		}
		d[start] = 0
		queue := []string{start}
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			for _, nb := range adj[x] {
				y, delta := nb[0].(string), nb[1].(int)
				want := d[x] + delta
				if have, ok := d[y]; ok {
					if have != want {
						return nil
					}
				} else {
					d[y] = want
					queue = append(queue, y)
				}
			}
		}
	}
	return d
}

// nsComponents returns the connected components of the nextsibling
// graph over all rule variables (singletons included), as sorted
// var lists keyed by representative.
func (w *workRule) nsComponents() map[string][]string {
	comp := newUF()
	for _, e := range w.n {
		comp.union(e[0], e[1])
	}
	out := map[string][]string{}
	for _, v := range w.vars() {
		out[comp.find(v)] = append(out[comp.find(v)], v)
	}
	for k := range out {
		sort.Strings(out[k])
	}
	return out
}

// AcyclicizeUnranked implements Lemmas 5.5 and 5.6 for one rule over
// τ_ur ∪ {child, lastchild}: it returns an equivalent acyclic rule
// over τ_ur ∪ {nextsibling*}, or ok=false if the rule is unsatisfiable
// on trees.
func AcyclicizeUnranked(r datalog.Rule) (datalog.Rule, bool, error) {
	w, err := parseWorkRule(r)
	if err != nil {
		return datalog.Rule{}, false, err
	}
	if len(w.ns) > 0 {
		return datalog.Rule{}, false, fmt.Errorf("tmnf: input rule already contains %s: %s", predNSStar, r)
	}
	uf := newUF()

	// Iterate the merge phases to a fixpoint: each merge is justified by
	// a functional dependency, so merging is always sound; iterating
	// cannot over-merge and guarantees a clean final structure.
	for round := 0; ; round++ {
		if round > len(r.Body)+4 {
			return datalog.Rule{}, false, fmt.Errorf("tmnf: acyclicize did not converge on %s", r)
		}
		changed, unsat, err := acyclicRound(w, uf)
		if err != nil {
			return datalog.Rule{}, false, err
		}
		if unsat {
			return datalog.Rule{}, false, nil
		}
		if !changed {
			break
		}
	}

	// Step (5): replace child atoms.
	fresh := 0
	type key struct{ parent, comp string }
	compOf := newUF()
	for _, e := range w.n {
		compOf.union(e[0], e[1])
	}
	// firstchild targets per parent (post-merging there is at most one
	// per parent; duplicates merged above).
	fcOf := map[string]string{}
	for _, e := range w.f {
		fcOf[e[0]] = e[1]
	}
	handled := map[key]bool{}
	for _, e := range w.c {
		x, y := e[0], e[1]
		k := key{x, compOf.find(y)}
		if handled[k] {
			continue
		}
		handled[k] = true
		if yp, ok := fcOf[x]; ok {
			if compOf.find(yp) == compOf.find(y) {
				continue // position of y implied by the ns-chain from yp
			}
			// The first child exists but lies in another component: the
			// component of y hangs off it via nextsibling*.
			w.ns = append(w.ns, [2]string{yp, y})
			continue
		}
		// No first child known: invent one.
		// Uppercase so the invented variable parses as a variable when
		// the program is printed and re-read.
		y0 := fmt.Sprintf("TMNF_Y%d", fresh)
		fresh++
		w.f = append(w.f, [2]string{x, y0})
		w.ns = append(w.ns, [2]string{y0, y})
		fcOf[x] = y0
	}
	w.c = nil
	w.dedupe()

	// Simplify parallel edges and self-loops until stable. On trees:
	// firstchild/nextsibling self-loops and any pair carrying both a
	// child-type and a sibling-type constraint are unsatisfiable;
	// ns*(x,y) ∧ ns*(y,x) forces x = y (merge); ns* parallel to an
	// explicit nextsibling of the same orientation is subsumed.
	for {
		unsat2, merged2, err := simplifyParallel(w, uf)
		if err != nil {
			return datalog.Rule{}, false, err
		}
		if unsat2 {
			return datalog.Rule{}, false, nil
		}
		if !merged2 {
			break
		}
	}

	out := w.toRule()
	if !isAcyclicRule(out) {
		return datalog.Rule{}, false, fmt.Errorf("tmnf: rule still cyclic after rewriting: %s", out)
	}
	return out, true, nil
}

// acyclicRound performs one pass of steps (1)–(4) of the Lemma 5.5
// algorithm, reporting whether any variables were merged.
func acyclicRound(w *workRule, uf *unionFind) (changed, unsat bool, err error) {
	// (1) Depth indices on the component graph of child/firstchild
	// edges coarsened over nextsibling components.
	comp := newUF()
	for _, e := range w.n {
		comp.union(e[0], e[1])
	}
	var compNodes []string
	seenComp := map[string]bool{}
	for _, v := range w.vars() {
		c := comp.find(v)
		if !seenComp[c] {
			seenComp[c] = true
			compNodes = append(compNodes, c)
		}
	}
	var chEdges [][2]string
	for _, lst := range [][][2]string{w.f, w.c} {
		for _, e := range lst {
			chEdges = append(chEdges, [2]string{comp.find(e[0]), comp.find(e[1])})
		}
	}
	d := depthIndex(compNodes, chEdges)
	if d == nil {
		return false, true, nil
	}

	// (2) Bottom-up bipartite merging: parents pointing into the same
	// nextsibling component are equal (child: $2 → $1).
	merged := false
	byDepth := map[int][]string{}
	for _, c := range compNodes {
		byDepth[d[c]] = append(byDepth[d[c]], c)
	}
	var depths []int
	for dep := range byDepth {
		depths = append(depths, dep)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(depths)))
	for _, dep := range depths {
		// Bipartite graph: variables x with f/c edges into components at
		// this depth; merge all x sharing a component.
		parentsOf := map[string][]string{}
		for _, lst := range [][][2]string{w.f, w.c} {
			for _, e := range lst {
				c := comp.find(e[1])
				if d[c] == dep {
					parentsOf[c] = append(parentsOf[c], e[0])
				}
			}
		}
		for _, ps := range parentsOf {
			for i := 1; i < len(ps); i++ {
				if uf.find(ps[0]) != uf.find(ps[i]) {
					uf.union(ps[0], ps[i])
					merged = true
				}
			}
		}
	}
	if merged {
		w.apply(uf)
		return true, false, nil
	}

	// (3)+(4) Sibling-chain depth merging within each nextsibling
	// component, and first-child merging (firstchild: $1 → $2).
	for _, vs := range w.nsComponents() {
		var edges [][2]string
		inComp := map[string]bool{}
		for _, v := range vs {
			inComp[v] = true
		}
		for _, e := range w.n {
			if inComp[e[0]] {
				edges = append(edges, e)
			}
		}
		dc := depthIndex(vs, edges)
		if dc == nil {
			return false, true, nil
		}
		byIdx := map[int][]string{}
		for _, v := range vs {
			byIdx[dc[v]] = append(byIdx[dc[v]], v)
		}
		for _, group := range byIdx {
			for i := 1; i < len(group); i++ {
				if uf.find(group[0]) != uf.find(group[i]) {
					uf.union(group[0], group[i])
					merged = true
				}
			}
		}
	}
	// First-child merging.
	fcOf := map[string][]string{}
	for _, e := range w.f {
		fcOf[e[0]] = append(fcOf[e[0]], e[1])
	}
	for _, ys := range fcOf {
		for i := 1; i < len(ys); i++ {
			if uf.find(ys[0]) != uf.find(ys[i]) {
				uf.union(ys[0], ys[i])
				merged = true
			}
		}
	}
	if merged {
		w.apply(uf)
	}
	return merged, false, nil
}

// simplifyParallel removes redundant parallel binary atoms and
// detects unsatisfiable combinations. Returns merged=true if variables
// were unified (caller must iterate).
func simplifyParallel(w *workRule, uf *unionFind) (unsat, merged bool, err error) {
	// Self-loops.
	for _, e := range w.f {
		if e[0] == e[1] {
			return true, false, nil
		}
	}
	for _, e := range w.n {
		if e[0] == e[1] {
			return true, false, nil
		}
	}
	var ns2 [][2]string
	for _, e := range w.ns {
		if e[0] != e[1] { // ns*(x,x) is trivially true
			ns2 = append(ns2, e)
		}
	}
	w.ns = ns2

	type edgeInfo struct {
		rel string
		fwd bool
	}
	pairs := map[[2]string][]edgeInfo{}
	addPair := func(rel string, e [2]string) {
		k := [2]string{e[0], e[1]}
		fwd := true
		if k[0] > k[1] {
			k[0], k[1] = k[1], k[0]
			fwd = false
		}
		pairs[k] = append(pairs[k], edgeInfo{rel, fwd})
	}
	for _, e := range w.f {
		addPair("f", e)
	}
	for _, e := range w.n {
		addPair("n", e)
	}
	for _, e := range w.ns {
		addPair("ns", e)
	}
	for k, infos := range pairs {
		if len(infos) < 2 {
			continue
		}
		// Classify the conflict on the unordered pair k.
		hasF, nFwd, nBwd, nsFwd, nsBwd := false, false, false, false, false
		for _, in := range infos {
			switch in.rel {
			case "f":
				hasF = true
			case "n":
				if in.fwd {
					nFwd = true
				} else {
					nBwd = true
				}
			case "ns":
				if in.fwd {
					nsFwd = true
				} else {
					nsBwd = true
				}
			}
		}
		switch {
		case hasF:
			// firstchild parallel to anything else on the same pair is
			// unsatisfiable (child vs. sibling, or two child directions).
			return true, false, nil
		case nFwd && nBwd:
			// nextsibling in both orientations: unsatisfiable.
			return true, false, nil
		case (nFwd && nsBwd) || (nBwd && nsFwd):
			// Sibling positions contradict.
			return true, false, nil
		case (nFwd && nsFwd) || (nBwd && nsBwd):
			// ns* subsumed by the explicit nextsibling.
			var keep [][2]string
			for _, e := range w.ns {
				kk := [2]string{e[0], e[1]}
				if kk[0] > kk[1] {
					kk[0], kk[1] = kk[1], kk[0]
				}
				if kk != k {
					keep = append(keep, e)
				}
			}
			w.ns = keep
			return false, true, nil // structure changed; re-run
		case nsFwd && nsBwd:
			// ns*(x,y) ∧ ns*(y,x) ⇒ x = y.
			uf.union(k[0], k[1])
			w.apply(uf)
			return false, true, nil
		}
	}
	return false, false, nil
}

// isAcyclicRule checks acyclicity of the rule's query multigraph
// (Section 5: vertices are variables, one edge per binary atom;
// parallel edges count as cycles).
func isAcyclicRule(r datalog.Rule) bool {
	uf := newUF()
	for _, b := range r.Body {
		if len(b.Args) != 2 {
			continue
		}
		x, y := b.Args[0].Var, b.Args[1].Var
		if uf.find(x) == uf.find(y) {
			return false // closes a cycle (or parallel edge / self-loop)
		}
		uf.union(x, y)
	}
	return true
}
