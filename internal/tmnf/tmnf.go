package tmnf

import (
	"fmt"

	"mdlog/internal/caterpillar"
	"mdlog/internal/datalog"
	"mdlog/internal/eval"
)

// This file assembles the Theorem 5.2 pipeline and the TMNF validator
// (Definition 5.1).

// domPred is the "any node" pattern of the Theorem 6.5 proof, used
// where an ear has no unary atoms: dom(x) holds for every node and is
// defined by a small recursive TMNF program.
const domPred = "tmnf_dom"

func domRules() []datalog.Rule {
	V, At, R := datalog.V, datalog.At, datalog.R
	return []datalog.Rule{
		R(At(domPred, V("X")), At("root", V("X"))),
		R(At(domPred, V("Y")), At(domPred, V("X")), At("firstchild", V("X"), V("Y"))),
		R(At(domPred, V("Y")), At(domPred, V("X")), At("nextsibling", V("X"), V("Y"))),
	}
}

// IsTMNF reports whether every rule of p is in Tree-Marking Normal
// Form (Definition 5.1): p(x) ← p0(x). or p(x) ← p0(x0), B(x0,x). or
// p(x) ← p0(x), p1(x). where B is firstchild, nextsibling or an
// inverse thereof (encoded by argument order), and all unary body
// predicates are intensional or unary τ_ur relations.
func IsTMNF(p *datalog.Program) error {
	idb := map[string]bool{}
	for _, r := range p.Rules {
		idb[r.Head.Pred] = true
	}
	for _, r := range p.Rules {
		if err := tmnfRule(r, idb); err != nil {
			return err
		}
	}
	return nil
}

// IsNormalized reports whether p is valid Transform output: every rule
// is either in strict TMNF (Definition 5.1) or one of the bridging
// forms Transform emits for rules the paper's normal form cannot
// express — propositional heads and propositional body atoms, which
// monadic datalog allows and the linear engine accepts. A bridging
// rule is an all-ground propositional rule, or a rule whose body is
// one unary intensional atom plus propositional atoms.
func IsNormalized(p *datalog.Program) error {
	idb := map[string]bool{}
	for _, r := range p.Rules {
		idb[r.Head.Pred] = true
	}
	for _, r := range p.Rules {
		if tmnfRule(r, idb) == nil {
			continue
		}
		if err := bridgeRule(r, idb); err != nil {
			return err
		}
	}
	return nil
}

// bridgeRule validates one of splitPropositional's output shapes.
func bridgeRule(r datalog.Rule, idb map[string]bool) error {
	if len(r.Head.Args) > 1 {
		return fmt.Errorf("tmnf: non-monadic head: %s", r)
	}
	unary := 0
	for _, b := range r.Body {
		switch len(b.Args) {
		case 0:
			// Propositional atom: fine in a bridging rule.
		case 1:
			unary++
			if unary > 1 || !idb[b.Pred] || !b.Args[0].IsVar() {
				return fmt.Errorf("tmnf: not a TMNF or bridging rule: %s", r)
			}
			if len(r.Head.Args) == 1 && r.Head.Args[0].Var != b.Args[0].Var {
				return fmt.Errorf("tmnf: bridging rule does not bind its head variable: %s", r)
			}
		default:
			if !r.IsGround() || len(r.Head.Args) != 0 {
				return fmt.Errorf("tmnf: not a TMNF or bridging rule: %s", r)
			}
		}
	}
	if len(r.Head.Args) == 1 && unary != 1 {
		return fmt.Errorf("tmnf: not a TMNF or bridging rule: %s", r)
	}
	return nil
}

// tmnfRule checks one rule against Definition 5.1.
func tmnfRule(r datalog.Rule, idb map[string]bool) error {
	unaryOK := func(pred string) bool {
		if idb[pred] {
			return true
		}
		switch pred {
		case eval.PredRoot, eval.PredLeaf, eval.PredLastSibling:
			return true
		}
		_, isLabel := eval.IsLabelPred(pred)
		return isLabel
	}
	if len(r.Head.Args) != 1 || !r.Head.Args[0].IsVar() {
		return fmt.Errorf("tmnf: non-unary head: %s", r)
	}
	hv := r.Head.Args[0].Var
	switch len(r.Body) {
	case 1:
		b := r.Body[0]
		if len(b.Args) != 1 || b.Args[0].Var != hv || !unaryOK(b.Pred) {
			return fmt.Errorf("tmnf: not form (1): %s", r)
		}
	case 2:
		a1, a2 := r.Body[0], r.Body[1]
		// Normalize: unary first.
		if len(a1.Args) == 2 {
			a1, a2 = a2, a1
		}
		switch {
		case len(a1.Args) == 1 && len(a2.Args) == 1:
			// Form (3): both unary over the head variable.
			if a1.Args[0].Var != hv || a2.Args[0].Var != hv ||
				!unaryOK(a1.Pred) || !unaryOK(a2.Pred) {
				return fmt.Errorf("tmnf: not form (3): %s", r)
			}
		case len(a1.Args) == 1 && len(a2.Args) == 2:
			// Form (2): p(x) ← p0(x0), B(x0, x) with B = R or R⁻¹.
			if a2.Pred != eval.PredFirstChild && a2.Pred != eval.PredNextSibling {
				return fmt.Errorf("tmnf: binary predicate %s not in τ_ur: %s", a2.Pred, r)
			}
			x0 := a1.Args[0].Var
			fwd := a2.Args[0].Var == x0 && a2.Args[1].Var == hv
			bwd := a2.Args[1].Var == x0 && a2.Args[0].Var == hv
			if !unaryOK(a1.Pred) || x0 == hv || (!fwd && !bwd) {
				return fmt.Errorf("tmnf: not form (2): %s", r)
			}
		default:
			return fmt.Errorf("tmnf: not a TMNF rule: %s", r)
		}
	default:
		return fmt.Errorf("tmnf: rule has %d body atoms: %s", len(r.Body), r)
	}
	return nil
}

// nameGen doles out fresh predicate names.
type nameGen struct {
	prefix string
	n      int
}

func (g *nameGen) fresh() string {
	g.n++
	return fmt.Sprintf("%s%d", g.prefix, g.n)
}

// Transform implements Theorem 5.2 for the unranked signature: it
// rewrites an arbitrary monadic datalog program over
// τ_ur ∪ {child, lastchild} into an equivalent TMNF program over τ_ur.
// Unsatisfiable rules are dropped. The query predicate is preserved.
func Transform(p *datalog.Program) (*datalog.Program, error) {
	if err := p.Check(); err != nil {
		return nil, err
	}
	out := &datalog.Program{Query: p.Query}
	g := &nameGen{prefix: "tm_"}
	needDom := false
	for _, r := range p.Rules {
		// The core machinery (Lemmas 5.4–5.8) handles unary heads over
		// rules free of propositional atoms. Propositional heads and
		// body atoms — legal monadic datalog, produced e.g. by
		// connected-rule splitting — are bridged around it: the
		// variable part of the rule is transformed under a fresh unary
		// head, and one bridging rule reattaches the propositional
		// atoms. The output is then TMNF plus bridging rules, which the
		// linear engine accepts unchanged.
		core, bridge, ok := splitPropositional(r, g)
		if !ok {
			out.Rules = append(out.Rules, r.Clone())
			continue
		}
		ac, ok, err := AcyclicizeUnranked(core)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue // unsatisfiable on trees
		}
		nd, err := decomposeRule(ac, out, g)
		if err != nil {
			return nil, err
		}
		needDom = needDom || nd
		if bridge != nil {
			out.Rules = append(out.Rules, *bridge)
		}
	}
	if needDom {
		out.Rules = append(out.Rules, domRules()...)
	}
	final := &datalog.Program{Query: out.Query}
	if err := eliminateSpecial(out, final, g); err != nil {
		return nil, err
	}
	return final, nil
}

// splitPropositional prepares a rule for the core transformation. For
// a plain unary-head rule without propositional body atoms it returns
// the rule itself (bridge nil). Otherwise it returns a core rule — the
// non-propositional body under a fresh unary head over one of its
// variables — plus a bridging rule reattaching the original head and
// the propositional atoms. ok=false means the rule has no variable
// part to transform (an all-propositional rule): the caller keeps it
// verbatim.
func splitPropositional(r datalog.Rule, g *nameGen) (core datalog.Rule, bridge *datalog.Rule, ok bool) {
	var props, rest []datalog.Atom
	for _, b := range r.Body {
		if len(b.Args) == 0 {
			props = append(props, b.Clone())
		} else {
			rest = append(rest, b.Clone())
		}
	}
	propHead := len(r.Head.Args) == 0
	if !propHead && len(props) == 0 {
		return r, nil, true
	}
	// Pick the bridging variable: the head variable for unary heads,
	// else any variable of the non-propositional body.
	v := ""
	if !propHead {
		v = r.Head.Args[0].Var
	} else {
		for _, b := range rest {
			for _, t := range b.Args {
				if t.IsVar() {
					v = t.Var
					break
				}
			}
			if v != "" {
				break
			}
		}
	}
	if v == "" {
		return r, nil, false // no variables: keep the rule as-is
	}
	aux := g.fresh()
	core = datalog.Rule{Head: datalog.At(aux, datalog.V(v)), Body: rest}
	b := datalog.Rule{
		Head: r.Head.Clone(),
		Body: append([]datalog.Atom{datalog.At(aux, datalog.V(v))}, props...),
	}
	return core, &b, true
}

// decomposeRule connects, ear-decomposes and appends TMNF-shaped rules
// (possibly still containing ns_star/doc_any atoms) to out. Reports
// whether the dom pattern is needed.
func decomposeRule(r datalog.Rule, out *datalog.Program, g *nameGen) (needDom bool, err error) {
	V, At, R := datalog.V, datalog.At, datalog.R
	type edge struct {
		pred string
		x, y string
	}
	var edges []edge
	unary := map[string][]string{} // var -> unary predicates
	hv := r.Head.Args[0].Var
	vars := map[string]bool{hv: true}
	for _, b := range r.Body {
		switch len(b.Args) {
		case 1:
			unary[b.Args[0].Var] = append(unary[b.Args[0].Var], b.Pred)
			vars[b.Args[0].Var] = true
		case 2:
			edges = append(edges, edge{b.Pred, b.Args[0].Var, b.Args[1].Var})
			vars[b.Args[0].Var] = true
			vars[b.Args[1].Var] = true
		}
	}

	// Connect components to the head variable's component via doc_any
	// (the total caterpillar relation ≺ ∪ ε ∪ ≻, proof of Theorem 5.2).
	uf := newUF()
	for _, e := range edges {
		uf.union(e.x, e.y)
	}
	reps := map[string]string{} // component -> a representative var
	for v := range vars {
		if _, ok := reps[uf.find(v)]; !ok {
			reps[uf.find(v)] = v
		}
	}
	for c, rep := range reps {
		if c == uf.find(hv) {
			continue
		}
		edges = append(edges, edge{predDocAny, hv, rep})
	}

	// Ear decomposition (Lemmas 5.7 / 5.8): repeatedly strip a
	// non-head variable incident to exactly one binary atom.
	for {
		deg := map[string]int{}
		for _, e := range edges {
			deg[e.x]++
			deg[e.y]++
		}
		earIdx, earVar := -1, ""
		for i, e := range edges {
			if e.x != hv && deg[e.x] == 1 {
				earIdx, earVar = i, e.x
				break
			}
			if e.y != hv && deg[e.y] == 1 {
				earIdx, earVar = i, e.y
				break
			}
		}
		if earIdx == -1 {
			break
		}
		e := edges[earIdx]
		edges = append(edges[:earIdx], edges[earIdx+1:]...)
		other := e.x
		if other == earVar {
			other = e.y
		}
		// base(earVar): the combined unary predicate on the ear.
		base, nd, err := combineUnary(unary[earVar], earVar, out, g)
		if err != nil {
			return needDom, err
		}
		needDom = needDom || nd
		delete(unary, earVar)
		newPred := g.fresh()
		// newPred(other) ← base(earVar), R(...) — form (2) with B = R or R⁻¹.
		out.Rules = append(out.Rules, R(At(newPred, V(other)),
			At(base, V(earVar)),
			At(e.pred, V(e.x), V(e.y))))
		unary[other] = append(unary[other], newPred)
	}
	if len(edges) > 0 {
		return needDom, fmt.Errorf("tmnf: ear decomposition left %d edges in %s (rule not acyclic?)", len(edges), r)
	}

	// The remaining rule is p(hv) ← unary atoms on hv.
	preds := unary[hv]
	if len(preds) == 0 {
		return needDom, fmt.Errorf("tmnf: head variable lost its atoms in %s", r)
	}
	if len(preds) == 1 {
		out.Rules = append(out.Rules, R(At(r.Head.Pred, V(hv)), At(preds[0], V(hv))))
		return needDom, nil
	}
	// Pair up (form (3)), chaining through fresh predicates.
	cur := preds[0]
	for i := 1; i < len(preds)-1; i++ {
		np := g.fresh()
		out.Rules = append(out.Rules, R(At(np, V(hv)), At(cur, V(hv)), At(preds[i], V(hv))))
		cur = np
	}
	out.Rules = append(out.Rules, R(At(r.Head.Pred, V(hv)),
		At(cur, V(hv)), At(preds[len(preds)-1], V(hv))))
	return needDom, nil
}

// combineUnary reduces a list of unary predicates on one variable to a
// single predicate, emitting form (3) chain rules; an empty list
// yields the dom pattern.
func combineUnary(preds []string, v string, out *datalog.Program, g *nameGen) (string, bool, error) {
	V, At, R := datalog.V, datalog.At, datalog.R
	switch len(preds) {
	case 0:
		return domPred, true, nil
	case 1:
		return preds[0], false, nil
	}
	cur := preds[0]
	for i := 1; i < len(preds); i++ {
		np := g.fresh()
		out.Rules = append(out.Rules, R(At(np, V(v)), At(cur, V(v)), At(preds[i], V(v))))
		cur = np
	}
	return cur, false, nil
}

// eliminateSpecial rewrites ns_star and doc_any atoms via Lemma 5.9
// into TMNF rules over τ_ur. Input rules are TMNF-shaped except that
// form (2) binary atoms may be special.
func eliminateSpecial(in *datalog.Program, out *datalog.Program, g *nameGen) error {
	for _, r := range in.Rules {
		special := -1
		for i, b := range r.Body {
			if b.Pred == predNSStar || b.Pred == predDocAny {
				special = i
				break
			}
		}
		if special == -1 {
			out.Rules = append(out.Rules, r)
			continue
		}
		if len(r.Body) != 2 {
			return fmt.Errorf("tmnf: special atom in non-binary-form rule: %s", r)
		}
		unaryAtom := r.Body[1-special]
		bin := r.Body[special]
		hv := r.Head.Args[0].Var
		// Orientation: the expression must map the unary atom's variable
		// to the head variable.
		var e caterpillar.Expr
		switch bin.Pred {
		case predNSStar:
			e = caterpillar.Star{E: caterpillar.Rel{Name: "nextsibling"}}
		case predDocAny:
			e = docAnyExpr()
		}
		if bin.Args[0].Var == unaryAtom.Args[0].Var && bin.Args[1].Var == hv {
			// forward
		} else if bin.Args[1].Var == unaryAtom.Args[0].Var && bin.Args[0].Var == hv {
			e = caterpillar.Inv{E: e}
		} else {
			return fmt.Errorf("tmnf: cannot orient special atom in %s", r)
		}
		outPred := g.fresh()
		rules := caterpillar.ToDatalog(e, unaryAtom.Pred, outPred, g.fresh())
		out.Rules = append(out.Rules, rules...)
		out.Rules = append(out.Rules, datalog.R(
			datalog.At(r.Head.Pred, datalog.V(hv)),
			datalog.At(outPred, datalog.V(hv))))
	}
	return nil
}

// docAnyExpr denotes the total relation on tree nodes, equivalent to
// ≺ ∪ ε ∪ ≻ of the Theorem 5.2 proof (document order is a total
// order, Example 2.5). We use the equivalent (child⁻¹)*.child* — climb
// to a common ancestor, descend to the target — which stays within
// τ_ur after expansion.
func docAnyExpr() caterpillar.Expr {
	return caterpillar.Concat{
		L: caterpillar.Star{E: caterpillar.Inv{E: caterpillar.Rel{Name: "child"}}},
		R: caterpillar.Star{E: caterpillar.Rel{Name: "child"}},
	}
}
