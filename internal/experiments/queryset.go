package experiments

import (
	"context"
	"fmt"
	"math/rand"

	mdlog "mdlog"
	"mdlog/internal/html"
)

// This file measures EXT-QUERYSET: what fusing N wrappers into one
// QuerySet pass buys over evaluating them sequentially — the
// many-wrappers-one-page serving shape. cmd/benchtables -queryset
// serializes the same measurements as BENCH_queryset.json so CI
// archives the fusion trajectory.

// QuerySetPoint is one fleet size's measurement over the benchmark
// document set.
type QuerySetPoint struct {
	// Wrappers is the fleet size N.
	Wrappers int `json:"wrappers"`
	// Fused is how many members the shared pass covers.
	Fused int `json:"fused"`
	// RulesSequential / RulesFused compare the total prepared-plan
	// rule counts: N independent plans vs the one fused program.
	RulesSequential int `json:"rules_sequential"`
	RulesFused      int `json:"rules_fused"`
	// MergedPreds counts auxiliary predicates shared across members.
	MergedPreds int `json:"merged_preds"`
	// SequentialNs / FusedNs are one full pass over the document set
	// (every wrapper, every document) in nanoseconds, per path.
	SequentialNs float64 `json:"sequential_ns"`
	FusedNs      float64 `json:"fused_ns"`
	// Speedup is SequentialNs / FusedNs.
	Speedup float64 `json:"speedup"`
	// BitmapFusedNs is the same fused pass with every member compiled
	// for the bitmap engine, so the shared evaluation runs as columnar
	// bitset algebra; BitmapSpeedup is SequentialNs / BitmapFusedNs.
	// Fused member count grows with N while the pass stays one scan of
	// the shared columns, so this column scales sublinearly in N.
	BitmapFusedNs float64 `json:"bitmap_fused_ns"`
	BitmapSpeedup float64 `json:"bitmap_speedup"`
}

// QuerySetFamily builds a realistic wrapper fleet of size n over the
// product page family: Elog⁻ field extractors sharing the table-row
// chain and differing in their leaf patterns, interleaved with XPath
// wrappers — the deployment shape where many tenants watch the same
// pages. Exported so BenchmarkQuerySetFused measures the identical
// fleet this experiment does.
func QuerySetFamily(n int) []mdlog.SetSpec {
	leafs := []string{"td.#text", "td.b", "td.b.#text", "td.em", "td.em.#text", "td.a"}
	xpaths := []string{`//td[b]`, `//tr[td]/td`, `//td[em]`, `//table/tr`}
	specs := make([]mdlog.SetSpec, 0, n)
	for i := 0; i < n; i++ {
		if i%4 == 3 {
			specs = append(specs, mdlog.SetSpec{
				Name:   fmt.Sprintf("w%d", i),
				Source: xpaths[(i/4)%len(xpaths)],
				Lang:   mdlog.LangXPath,
			})
			continue
		}
		specs = append(specs, mdlog.SetSpec{
			Name: fmt.Sprintf("w%d", i),
			Source: fmt.Sprintf(`
item(x) :- root(x0), subelem("html.body.table.tr", x0, x).
f(x)    :- item(x0), subelem(%q, x0, x).
`, leafs[i%len(leafs)]),
			Lang:    mdlog.LangElog,
			Options: []mdlog.Option{mdlog.WithQueryPred("f")},
		})
	}
	return specs
}

// QuerySetData measures fused vs sequential evaluation for fleets of
// N ∈ {2, 8, 32} wrappers over the benchmark document set. Result
// memos are defeated on both paths (WithoutCache sequentially, Forget
// on the set), so both measure full evaluation.
func QuerySetData(cfg Config) []QuerySetPoint {
	rows := 200
	docsN := 4
	if cfg.Quick {
		rows, docsN = 60, 2
	}
	rng := rand.New(rand.NewSource(48))
	docs := make([]*mdlog.Tree, docsN)
	for i := range docs {
		docs[i] = html.Parse(html.ProductListing(rng, rows))
	}
	ctx := context.Background()

	var out []QuerySetPoint
	for _, n := range []int{2, 8, 32} {
		specs := QuerySetFamily(n)
		queries := make([]*mdlog.CompiledQuery, len(specs))
		rulesSeq := 0
		for i, sp := range specs {
			q, err := mdlog.Compile(sp.Source, sp.Lang,
				append(append([]mdlog.Option{}, sp.Options...), mdlog.WithoutCache())...)
			if err != nil {
				panic(fmt.Sprintf("queryset %s: %v", sp.Name, err))
			}
			queries[i] = q
			rulesSeq += q.OptStats().RulesAfter
		}
		set, err := mdlog.CompileSet(specs)
		if err != nil {
			panic(fmt.Sprintf("queryset N=%d: %v", n, err))
		}
		// The same fleet compiled for the bitmap engine: every fusable
		// member routes through the columnar pipeline, so the shared
		// pass itself runs on bitmaps.
		bitmapSpecs := make([]mdlog.SetSpec, len(specs))
		for i, sp := range specs {
			sp.Options = append(append([]mdlog.Option{}, sp.Options...),
				mdlog.WithEngine(mdlog.EngineBitmap))
			bitmapSpecs[i] = sp
		}
		bset, err := mdlog.CompileSet(bitmapSpecs)
		if err != nil {
			panic(fmt.Sprintf("queryset bitmap N=%d: %v", n, err))
		}
		// Semantics guard: fused and sequential must agree on every
		// member and document, on both fused engines, before timing
		// means anything.
		for _, doc := range docs {
			results := set.Run(ctx, doc)
			bresults := bset.Run(ctx, doc)
			for i, res := range results {
				if res.Err != nil {
					panic(fmt.Sprintf("queryset %s: %v", res.Name, res.Err))
				}
				want, err := queries[i].Select(ctx, doc)
				if err != nil || fmt.Sprint(res.IDs) != fmt.Sprint(want) {
					panic(fmt.Sprintf("queryset %s diverges: %v vs %v (%v)", res.Name, res.IDs, want, err))
				}
				if bres := bresults[i]; bres.Err != nil || fmt.Sprint(bres.IDs) != fmt.Sprint(want) {
					panic(fmt.Sprintf("queryset bitmap %s diverges: %v vs %v (%v)", res.Name, bres.IDs, want, bres.Err))
				}
			}
		}
		rep := set.FuseStats()
		pt := QuerySetPoint{
			Wrappers:        n,
			Fused:           set.FusedLen(),
			RulesSequential: rulesSeq,
			RulesFused:      rep.RulesOut,
			MergedPreds:     rep.MergedPreds,
		}
		pt.SequentialNs = float64(timeIt(func() {
			for _, doc := range docs {
				for _, q := range queries {
					if _, err := q.Assign(ctx, doc); err != nil {
						panic(err)
					}
				}
			}
		}).Nanoseconds())
		pt.FusedNs = float64(timeIt(func() {
			for _, doc := range docs {
				set.Cache().Forget(doc)
				for _, res := range set.Run(ctx, doc) {
					if res.Err != nil {
						panic(res.Err)
					}
				}
			}
		}).Nanoseconds())
		pt.Speedup = pt.SequentialNs / pt.FusedNs
		pt.BitmapFusedNs = float64(timeIt(func() {
			for _, doc := range docs {
				bset.Cache().Forget(doc)
				for _, res := range bset.Run(ctx, doc) {
					if res.Err != nil {
						panic(res.Err)
					}
				}
			}
		}).Nanoseconds())
		pt.BitmapSpeedup = pt.SequentialNs / pt.BitmapFusedNs
		out = append(out, pt)
	}
	return out
}

// QuerySet renders QuerySetData as an experiment table (EXT-QUERYSET).
func QuerySet(cfg Config) Table {
	t := Table{
		ID:    "EXT-QUERYSET",
		Title: "QuerySet fusion: N wrappers, one shared pass per document",
		Headers: []string{"wrappers", "fused", "rules seq", "rules fused", "merged preds",
			"seq ms", "fused ms", "speedup", "bitmap ms", "bitmap speedup"},
		Notes: "Product-page wrapper fleet (Elog⁻ field extractors sharing the row chain + XPath variants) " +
			"over the benchmark document set, result memos defeated on both paths. " +
			"rules seq sums the members' individual prepared plans; rules fused is the one shared program. " +
			"bitmap columns run the identical fused pass on the columnar bitmap engine — growing N adds " +
			"rules to one shared scan, so per-member cost shrinks sublinearly. " +
			"cmd/benchtables -queryset emits these rows as BENCH_queryset.json.",
	}
	for _, pt := range QuerySetData(cfg) {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(pt.Wrappers), fmt.Sprint(pt.Fused),
			fmt.Sprint(pt.RulesSequential), fmt.Sprint(pt.RulesFused), fmt.Sprint(pt.MergedPreds),
			fmt.Sprintf("%.3f", pt.SequentialNs/1e6), fmt.Sprintf("%.3f", pt.FusedNs/1e6),
			fmt.Sprintf("%.2fx", pt.Speedup),
			fmt.Sprintf("%.3f", pt.BitmapFusedNs/1e6), fmt.Sprintf("%.2fx", pt.BitmapSpeedup),
		})
	}
	return t
}
