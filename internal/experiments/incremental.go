package experiments

import (
	"context"
	"fmt"
	"math/rand"

	mdlog "mdlog"
	"mdlog/internal/html"
)

// This file measures the live-document path: maintaining a wrapper's
// result through arena edits (Document + SelectIncremental, DRed
// delta propagation) against the pre-session workflow of reparsing
// the source and re-extracting from scratch on every revision.
// cmd/benchtables -incremental serializes the same measurements as
// BENCH_incremental.json so CI archives the trajectory across PRs.

// IncrementalPoint is one (document size, edit fraction) measurement.
// FullNs and IncNs are per revision: full = reparse + extract, inc =
// apply the edits through the mutation API + incremental extract.
type IncrementalPoint struct {
	// Nodes is the document size before edits, |dom|.
	Nodes int `json:"nodes"`
	// EditFrac is the revision size as a fraction of |dom|.
	EditFrac float64 `json:"edit_frac"`
	// Edits is the resulting number of edit operations per revision.
	Edits int `json:"edits"`
	// FullNs: one revision through the full pipeline — reparse the
	// HTML source, evaluate the compiled wrapper on the fresh tree.
	FullNs int64 `json:"full_ns"`
	// IncNs: one revision through the live-document pipeline — Edits
	// mutations on the Document plus one incremental extract.
	IncNs int64 `json:"inc_ns"`
	// Speedup is FullNs / IncNs.
	Speedup float64 `json:"speedup"`
}

// incrementalQuery is the fixed wrapper of the benchmark — the same
// td-with-bold-price query the substrate benchmark uses, routed
// through the linear engine's DRed maintainer.
const incrementalQuery = `q(X) :- label_td(X), firstchild(X,Y), label_b(Y). ?- q.`

// IncrementalData measures full-vs-incremental revisions at 10k/100k
// nodes (2k/10k under -quick) and 0.1% / 1% / 10% edit fractions.
func IncrementalData(cfg Config) []IncrementalPoint {
	sizes := []int{10000, 100000}
	if cfg.Quick {
		sizes = []int{2000, 10000}
	}
	fracs := []float64{0.001, 0.01, 0.1}
	ctx := context.Background()
	var out []IncrementalPoint
	for _, target := range sizes {
		rng := rand.New(rand.NewSource(53))
		src := html.ProductListing(rng, target/9)
		n := mdlog.ParseHTML(src).Size()

		// Full baseline: every revision reparses the source and
		// re-extracts on the fresh tree (each parse yields a new tree
		// identity, so nothing is served from a memo).
		qFull, err := mdlog.Compile(incrementalQuery, mdlog.LangDatalog)
		if err != nil {
			panic(err)
		}
		full := timeIt(func() {
			if _, err := qFull.Select(ctx, mdlog.ParseHTML(src)); err != nil {
				panic(err)
			}
		})

		for _, frac := range fracs {
			k := int(frac * float64(n))
			if k < 1 {
				k = 1
			}
			q, err := mdlog.Compile(incrementalQuery, mdlog.LangDatalog)
			if err != nil {
				panic(err)
			}
			doc := mdlog.NewDocument(mdlog.ParseHTML(src))
			sub, err := mdlog.ParseTree("td(b)")
			if err != nil {
				panic(err)
			}
			// Parents come from the original document, which the edit
			// script never removes, so they stay valid across runs.
			parents := doc.LiveNodes()
			prng := rand.New(rand.NewSource(54))
			inserted := make([]int, 0, k)
			// One timed call is two balanced revisions — insert k
			// result-bearing subtrees and extract, then remove them and
			// extract — so the document returns to its original
			// extension and repeated runs measure the same work.
			d := timeIt(func() {
				inserted = inserted[:0]
				for i := 0; i < k; i++ {
					id, err := doc.InsertSubtree(parents[prng.Intn(len(parents))], 0, sub.Root)
					if err != nil {
						panic(err)
					}
					inserted = append(inserted, id)
				}
				if _, err := q.SelectIncremental(ctx, doc); err != nil {
					panic(err)
				}
				for _, id := range inserted {
					if err := doc.RemoveSubtree(id); err != nil {
						panic(err)
					}
				}
				if _, err := q.SelectIncremental(ctx, doc); err != nil {
					panic(err)
				}
			})
			inc := d / 2
			out = append(out, IncrementalPoint{
				Nodes:    n,
				EditFrac: frac,
				Edits:    k,
				FullNs:   full.Nanoseconds(),
				IncNs:    inc.Nanoseconds(),
				Speedup:  float64(full) / float64(inc),
			})
		}
	}
	return out
}

// Incremental renders IncrementalData as an experiment table
// (EXT-INCREMENTAL).
func Incremental(cfg Config) Table {
	t := Table{
		ID:      "EXT-INCREMENTAL",
		Title:   "Incremental maintenance: edit-sized revisions vs full reparse + re-extract",
		Headers: []string{"nodes", "edit frac", "edits/rev", "full ms/rev", "inc ms/rev", "speedup"},
		Notes: "Product-listing documents; wrapper = td cells with a bold first child. " +
			"full = reparse the HTML source and evaluate the compiled wrapper on the fresh tree; " +
			"inc = apply the revision's edits through the Document mutation API and run one " +
			"SelectIncremental (DRed delta propagation seeded from the arena delta). " +
			"Revisions alternate inserting and removing result-bearing subtrees, so both delta " +
			"directions are exercised. cmd/benchtables -incremental emits these rows as JSON.",
	}
	for _, pt := range IncrementalData(cfg) {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(pt.Nodes),
			fmt.Sprintf("%.1f%%", pt.EditFrac*100),
			fmt.Sprint(pt.Edits),
			fmt.Sprintf("%.3f", float64(pt.FullNs)/1e6),
			fmt.Sprintf("%.3f", float64(pt.IncNs)/1e6),
			fmt.Sprintf("%.2fx", pt.Speedup),
		})
	}
	return t
}
