// Package experiments regenerates the quantitative results of the
// reproduction: every complexity claim of Gottlob & Koch (PODS 2002)
// becomes a measured scaling table, and Example 4.21 becomes the
// query-automaton-vs-datalog separation series. cmd/benchtables prints
// these tables; EXPERIMENTS.md archives a snapshot with commentary.
package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	mdlog "mdlog"
	"mdlog/internal/datalog"
	"mdlog/internal/elog"
	"mdlog/internal/eval"
	"mdlog/internal/html"
	"mdlog/internal/mso"
	"mdlog/internal/paperex"
	"mdlog/internal/qa"
	"mdlog/internal/tmnf"
	"mdlog/internal/tree"
)

// Table is one experiment's result table.
type Table struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
	Notes   string
}

// Markdown renders the table.
func (t Table) Markdown() string {
	out := fmt.Sprintf("### %s — %s\n\n", t.ID, t.Title)
	out += "| " + join(t.Headers) + " |\n|"
	for range t.Headers {
		out += "---|"
	}
	out += "\n"
	for _, r := range t.Rows {
		out += "| " + join(r) + " |\n"
	}
	if t.Notes != "" {
		out += "\n" + t.Notes + "\n"
	}
	return out
}

func join(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += " | "
		}
		out += s
	}
	return out
}

// Config scales the experiment sizes.
type Config struct {
	// Quick shrinks sizes for smoke runs.
	Quick bool
}

// timeIt measures f by running it repeatedly until 60ms have
// accumulated (at least 5 runs), returning the minimum duration —
// robust against GC pauses and scheduler noise.
func timeIt(f func()) time.Duration {
	f() // warm-up
	var total, best time.Duration
	runs := 0
	for total < 60*time.Millisecond || runs < 5 {
		start := time.Now()
		f()
		d := time.Since(start)
		total += d
		if best == 0 || d < best {
			best = d
		}
		runs++
		if runs >= 1000 {
			break
		}
	}
	return best
}

func ms(d time.Duration) string { return fmt.Sprintf("%.3f", float64(d.Nanoseconds())/1e6) }

func perUnit(d time.Duration, n int) string {
	return fmt.Sprintf("%.0f", float64(d.Nanoseconds())/float64(n))
}

// All runs every experiment.
// catalog is the single registry of experiments; All and Index both
// derive from it so the two can never drift.
var catalog = []struct {
	ID, Title string
	Run       func(Config) Table
}{
	{"CLAIM-T42-data", "Theorem 4.2: linear data complexity", Theorem42Data},
	{"CLAIM-T42-program", "Theorem 4.2: linear program complexity", Theorem42Program},
	{"ABLATION-engines", "Engine ablation: linear vs LIT vs semi-naive vs naive", EnginesAblation},
	{"CLAIM-GROUND", "Proposition 3.5: ground program evaluation", GroundLinear},
	{"CLAIM-GUARD", "Proposition 3.6: guarded program evaluation", GuardedScaling},
	{"FIG-EX421", "Example 4.21: QA runs vs datalog translation", Example421Separation},
	{"CLAIM-T411-size", "Theorem 4.11: QAr translation size", QArTranslationSize},
	{"CLAIM-T52", "Theorem 5.2: TMNF transformation", TMNFTransform},
	{"CLAIM-C64", "Corollary 6.4: Elog⁻ wrapper evaluation", ElogEvalScaling},
	{"FIG-MSO-cost", "MSO compilation blow-up vs linear evaluation", MSOBlowup},
	{"EXT-AMORTIZE", "Compile-once/run-many amortization", CompileOnceAmortization},
	{"EXT-TREESIZE", "Arena substrate scaling: parse/materialize/select per node", TreeSize},
	{"EXT-OPT", "Goal-directed optimizer: plan size and Select speedup", Opt},
	{"EXT-QUERYSET", "QuerySet fusion: N wrappers, one shared pass per document", QuerySet},
	{"EXT-INCREMENTAL", "Incremental maintenance: edit-sized revisions vs full reparse + re-extract", Incremental},
	{"EXT-SUBSUME", "Wrapper subsumption: containment-aware pipeline vs plain fused baseline", Subsume},
	{"EXT-SPAN", "Spanners: compiled span extraction vs node-select + Go regexp", Span},
}

func All(cfg Config) []Table {
	out := make([]Table, len(catalog))
	for i, e := range catalog {
		out[i] = e.Run(cfg)
		if out[i].ID != e.ID {
			panic(fmt.Sprintf("experiments: catalog id %q but table id %q", e.ID, out[i].ID))
		}
	}
	return out
}

// Index lists every experiment's id and title without running any
// measurements.
func Index() [][2]string {
	out := make([][2]string, len(catalog))
	for i, e := range catalog {
		out[i] = [2]string{e.ID, e.Title}
	}
	return out
}

// CompileOnceAmortization: what the compile-once/run-many API buys —
// a prepared Plan with memoized per-tree navigation vs the legacy
// path that re-prepares everything on every call.
func CompileOnceAmortization(cfg Config) Table {
	repeats := 50
	sizes := []int{500, 2000, 8000}
	if cfg.Quick {
		repeats = 10
		sizes = []int{200, 1000}
	}
	p := paperex.EvenAProgram("b")
	t := Table{
		ID:      "EXT-AMORTIZE",
		Title:   "Compile-once/run-many: CompiledQuery + TreeCache vs per-call preparation",
		Headers: []string{"nodes", "runs", "legacy ms", "compiled ms", "speedup"},
		Notes: fmt.Sprintf("Each row evaluates the even-a program %d times on one document. "+
			"Legacy = eval.LinearTree per call (re-split, re-plan, re-build navigation, re-solve); "+
			"compiled = mdlog.CompileProgram once, repeat runs hit the per-(query, tree) result memo.", repeats),
	}
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(42))
		doc := tree.Random(rng, tree.RandomOptions{Labels: []string{"a", "b"}, Size: n, MaxChildren: 5})
		legacy := timeIt(func() {
			for i := 0; i < repeats; i++ {
				if _, err := eval.LinearTree(p, doc); err != nil {
					panic(err)
				}
			}
		})
		q, err := mdlog.CompileProgram(p)
		if err != nil {
			panic(err)
		}
		ctx := context.Background()
		compiled := timeIt(func() {
			for i := 0; i < repeats; i++ {
				if _, err := q.Select(ctx, doc); err != nil {
					panic(err)
				}
			}
		})
		t.Rows = append(t.Rows, []string{fmt.Sprint(n), fmt.Sprint(repeats), ms(legacy), ms(compiled),
			fmt.Sprintf("%.2fx", float64(legacy)/float64(compiled))})
	}
	return t
}

// Theorem42Data: O(|P|·|dom|) combined complexity — data axis. The
// ns/node column must stay roughly flat.
func Theorem42Data(cfg Config) Table {
	sizes := []int{1000, 2000, 4000, 8000, 16000}
	if cfg.Quick {
		sizes = []int{500, 1000, 2000}
	}
	p := paperex.EvenAProgram("b")
	t := Table{
		ID:      "CLAIM-T42-data",
		Title:   "Theorem 4.2: monadic datalog, linear engine, time vs tree size",
		Headers: []string{"|dom|", "eval ms", "ns/node"},
		Notes:   "Program: Example 3.2 (even-aᵀ), Σ = {a, b}. Linearity shows as a flat ns/node column.",
	}
	rng := rand.New(rand.NewSource(42))
	for _, n := range sizes {
		tr := tree.Random(rng, tree.RandomOptions{Labels: []string{"a", "b"}, Size: n, MaxChildren: 5})
		d := timeIt(func() {
			if _, err := eval.LinearTree(p, tr); err != nil {
				panic(err)
			}
		})
		t.Rows = append(t.Rows, []string{fmt.Sprint(n), ms(d), perUnit(d, n)})
	}
	return t
}

// programOfSize builds a monadic program with approximately the given
// number of rules: chained copies of structural rules.
func programOfSize(rules int) *datalog.Program {
	p := &datalog.Program{}
	V, At, R := datalog.V, datalog.At, datalog.R
	p.Add(R(At("p0", V("X")), At("leaf", V("X"))))
	i := 0
	for len(p.Rules) < rules {
		cur := fmt.Sprintf("p%d", i+1)
		prev := fmt.Sprintf("p%d", i)
		switch i % 3 {
		case 0:
			p.Add(R(At(cur, V("X")), At("firstchild", V("X"), V("Y")), At(prev, V("Y"))))
		case 1:
			p.Add(R(At(cur, V("X")), At("nextsibling", V("X"), V("Y")), At(prev, V("Y"))))
		case 2:
			p.Add(R(At(cur, V("X")), At(prev, V("X")), At("label_a", V("X"))))
		}
		i++
	}
	return p
}

// Theorem42Program: combined complexity — program axis.
func Theorem42Program(cfg Config) Table {
	sizes := []int{16, 32, 64, 128, 256}
	if cfg.Quick {
		sizes = []int{8, 16, 32}
	}
	n := 4000
	if cfg.Quick {
		n = 1000
	}
	rng := rand.New(rand.NewSource(43))
	tr := tree.Random(rng, tree.RandomOptions{Labels: []string{"a", "b"}, Size: n, MaxChildren: 5})
	t := Table{
		ID:      "CLAIM-T42-program",
		Title:   "Theorem 4.2: linear engine, time vs program size (fixed tree)",
		Headers: []string{"|P| rules", "eval ms", "µs/rule"},
		Notes:   fmt.Sprintf("Tree size fixed at %d nodes. Linearity in |P| shows as a flat µs/rule column.", n),
	}
	for _, rules := range sizes {
		p := programOfSize(rules)
		d := timeIt(func() {
			if _, err := eval.LinearTree(p, tr); err != nil {
				panic(err)
			}
		})
		t.Rows = append(t.Rows, []string{fmt.Sprint(len(p.Rules)), ms(d),
			fmt.Sprintf("%.1f", float64(d.Nanoseconds())/1e3/float64(len(p.Rules)))})
	}
	return t
}

// EnginesAblation compares the four engines on the same workload
// (the Proposition 3.4 vs Theorem 4.2 contrast).
func EnginesAblation(cfg Config) Table {
	sizes := []int{500, 1000, 2000}
	if cfg.Quick {
		sizes = []int{200, 400}
	}
	p := paperex.EvenAProgram("b")
	t := Table{
		ID:      "ABLATION-engines",
		Title:   "Engine ablation: Theorem 4.2 pipeline vs generic evaluation",
		Headers: []string{"|dom|", "linear ms", "LIT ms", "semi-naive ms", "naive ms"},
		Notes:   "Same program (Example 3.2) and trees across engines; the generic engines carry join and re-derivation overhead the connected-split + Horn pipeline avoids.",
	}
	rng := rand.New(rand.NewSource(44))
	for _, n := range sizes {
		tr := tree.Random(rng, tree.RandomOptions{Labels: []string{"a", "b"}, Size: n, MaxChildren: 5})
		row := []string{fmt.Sprint(n)}
		for _, engine := range []eval.Engine{eval.EngineLinear, eval.EngineLIT, eval.EngineSemiNaive, eval.EngineNaive} {
			e := engine
			d := timeIt(func() {
				if _, err := eval.EvalOnTree(p, tr, e); err != nil {
					panic(err)
				}
			})
			row = append(row, ms(d))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// GroundLinear: Proposition 3.5 — ground programs in O(|P| + |σ|).
func GroundLinear(cfg Config) Table {
	sizes := []int{10000, 20000, 40000, 80000}
	if cfg.Quick {
		sizes = []int{5000, 10000}
	}
	t := Table{
		ID:      "CLAIM-GROUND",
		Title:   "Proposition 3.5: ground program evaluation, time vs program size",
		Headers: []string{"clauses", "eval ms", "ns/clause"},
		Notes:   "Ground implication chains p(i) ← p(i−1) solved by linear-time Horn inference (Dowling–Gallier / LTUR).",
	}
	for _, m := range sizes {
		p := &datalog.Program{}
		p.Add(datalog.R(datalog.At("p", datalog.C(0))))
		for i := 1; i < m; i++ {
			p.Add(datalog.R(datalog.At("p", datalog.C(i)), datalog.At("p", datalog.C(i-1))))
		}
		db := datalog.NewDatabase(m)
		d := timeIt(func() {
			if _, err := eval.GroundEval(p, db); err != nil {
				panic(err)
			}
		})
		t.Rows = append(t.Rows, []string{fmt.Sprint(m), ms(d), perUnit(d, m)})
	}
	return t
}

// GuardedScaling: Proposition 3.6 — O(|P|·|σ|) for guarded programs.
func GuardedScaling(cfg Config) Table {
	sizes := []int{10000, 20000, 40000}
	if cfg.Quick {
		sizes = []int{5000, 10000}
	}
	p := datalog.MustParseProgram(`
sel(X) :- e(X,Y), good(Y).
sel(Y) :- e(X,Y), sel(X).
pair(X,Y) :- e(X,Y), sel(X).
`)
	t := Table{
		ID:      "CLAIM-GUARD",
		Title:   "Proposition 3.6: guarded datalog, time vs database size",
		Headers: []string{"|σ| tuples", "eval ms", "ns/tuple"},
		Notes:   "Random sparse edge relation; every rule carries an extensional guard, grounded per guard tuple.",
	}
	for _, m := range sizes {
		rng := rand.New(rand.NewSource(45))
		db := datalog.NewDatabase(m)
		for i := 0; i < m; i++ {
			db.Add("e", rng.Intn(m), rng.Intn(m))
		}
		for i := 0; i < m/100+1; i++ {
			db.Add("good", rng.Intn(m))
		}
		sz := db.Size()
		d := timeIt(func() {
			if _, err := eval.GuardedEval(p, db); err != nil {
				panic(err)
			}
		})
		t.Rows = append(t.Rows, []string{fmt.Sprint(sz), ms(d), perUnit(d, sz)})
	}
	return t
}

// Example421Separation: the headline figure — direct query automaton
// runs take superpolynomially many steps while the Theorem 4.11
// datalog translation evaluates in linear time.
func Example421Separation(cfg Config) Table {
	t := Table{
		ID:      "FIG-EX421",
		Title:   "Example 4.21: QA direct execution vs datalog simulation (α = 1, β = 2)",
		Headers: []string{"depth", "n = |dom|", "QA steps", "QA ms", "datalog ms", "speed-up"},
		Notes: "Complete binary trees. QA steps follow steps(d) = β(2 + 2·steps(d−1)) = Θ(n·((n+1)/2)^α); " +
			"the datalog translation (program fixed per α) evaluates in O(|P|·n). " +
			"The shape matches the paper: the automaton is superpolynomial, the simulation linear, " +
			"with the crossover already at small depths.",
	}
	maxDepth := 9
	if cfg.Quick {
		maxDepth = 7
	}
	a := qa.Example421(1)
	prog := a.ToDatalog("query")
	for depth := 3; depth <= maxDepth; depth++ {
		tr := tree.CompleteBinary(depth, "a")
		steps := qa.Example421Steps(1, depth)
		dQA := timeIt(func() {
			if _, err := a.Run(tr, qa.RunOptions{}); err != nil {
				panic(err)
			}
		})
		dDL := timeIt(func() {
			if _, err := eval.LinearTree(prog, tr); err != nil {
				panic(err)
			}
		})
		speedup := float64(dQA.Nanoseconds()) / float64(dDL.Nanoseconds())
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(depth), fmt.Sprint(tr.Size()), fmt.Sprint(steps),
			ms(dQA), ms(dDL), fmt.Sprintf("%.2fx", speedup)})
	}
	return t
}

// QArTranslationSize: Theorem 4.11 — the translation is quadratic in
// the automaton.
func QArTranslationSize(cfg Config) Table {
	alphas := []int{1, 2, 3}
	if cfg.Quick {
		alphas = []int{1, 2}
	}
	t := Table{
		ID:      "CLAIM-T411-size",
		Title:   "Theorem 4.11: size and cost of the QAr → monadic datalog translation",
		Headers: []string{"α", "QA states", "datalog rules", "translate ms"},
		Notes:   "A_β family (β = 2^α, (β+1)² states). Rule count grows ~quadratically with the state count, matching the LOGSPACE reduction's output bound.",
	}
	for _, alpha := range alphas {
		a := qa.Example421(alpha)
		var prog *datalog.Program
		d := timeIt(func() { prog = a.ToDatalog("query") })
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(alpha), fmt.Sprint(a.NumStates), fmt.Sprint(len(prog.Rules)), ms(d)})
	}
	return t
}

// TMNFTransform: Theorem 5.2 — near-linear translation into TMNF.
func TMNFTransform(cfg Config) Table {
	sizes := []int{50, 100, 200, 400}
	if cfg.Quick {
		sizes = []int{25, 50, 100}
	}
	t := Table{
		ID:      "CLAIM-T52",
		Title:   "Theorem 5.2: TMNF translation, time and output size vs input size",
		Headers: []string{"input rules", "output rules", "transform ms", "µs/input-rule"},
		Notes:   "Input rules use child atoms and multi-variable bodies; the output is pure TMNF over τ_ur.",
	}
	for _, m := range sizes {
		p := &datalog.Program{}
		V, At, R := datalog.V, datalog.At, datalog.R
		for i := 0; i < m; i++ {
			cur := fmt.Sprintf("q%d", i)
			prev := "leaf"
			if i > 0 {
				prev = fmt.Sprintf("q%d", i-1)
			}
			p.Add(R(At(cur, V("X")),
				At("child", V("X"), V("Y")), At(prev, V("Y")),
				At("child", V("X"), V("Z")), At("label_a", V("Z"))))
		}
		var out *datalog.Program
		d := timeIt(func() {
			var err error
			out, err = tmnf.Transform(p)
			if err != nil {
				panic(err)
			}
		})
		t.Rows = append(t.Rows, []string{fmt.Sprint(m), fmt.Sprint(len(out.Rules)), ms(d),
			fmt.Sprintf("%.1f", float64(d.Nanoseconds())/1e3/float64(m))})
	}
	return t
}

// ElogEvalScaling: Corollary 6.4 — Elog⁻ wrappers evaluate in
// O(|P|·|dom|) on synthetic product-listing pages.
func ElogEvalScaling(cfg Config) Table {
	sizes := []int{200, 400, 800, 1600}
	if cfg.Quick {
		sizes = []int{100, 200, 400}
	}
	prog := elog.MustParseProgram(`
item(x)   :- root(x0), subelem("html.body.table.tr", x0, x).
name(x)   :- item(x0), subelem("td.#text", x0, x), firstsibling(x).
price(x)  :- item(x0), subelem("td.b.#text", x0, x).
status(x) :- item(x0), subelem("td.em.#text", x0, x).
`)
	compiled, err := prog.CompileLinear()
	if err != nil {
		panic(err)
	}
	t := Table{
		ID:      "CLAIM-C64",
		Title:   "Corollary 6.4: Elog⁻ wrapper evaluation on product listings",
		Headers: []string{"rows", "nodes", "eval ms", "ns/node"},
		Notes: fmt.Sprintf("Wrapper compiled once (Elog⁻ → datalog → TMNF, %d rules) and evaluated with the linear engine.",
			len(compiled.Rules)),
	}
	for _, rows := range sizes {
		rng := rand.New(rand.NewSource(46))
		doc := html.Parse(html.ProductListing(rng, rows))
		n := doc.Size()
		d := timeIt(func() {
			if _, err := eval.LinearTree(compiled, doc); err != nil {
				panic(err)
			}
		})
		t.Rows = append(t.Rows, []string{fmt.Sprint(rows), fmt.Sprint(n), ms(d), perUnit(d, n)})
	}
	return t
}

// MSOBlowup: the nonelementary cost of MSO-to-automaton compilation
// vs the stable cost of evaluating the compiled query.
func MSOBlowup(cfg Config) Table {
	t := Table{
		ID:      "FIG-MSO-cost",
		Title:   "MSO compilation blow-up vs linear evaluation (Section 1/4.2 discussion)",
		Headers: []string{"alternations", "DTA states", "transitions", "compile ms", "eval ns/node"},
		Notes: "Queries alternate ∀/∃ over children around a leaf-or-label core. Compilation cost " +
			"(determinizations) grows steeply with alternation depth — the paper's nonelementary " +
			"worst case — while evaluating the compiled automaton stays linear per node.",
	}
	depth := 4
	if cfg.Quick {
		depth = 3
	}
	rng := rand.New(rand.NewSource(47))
	tr := tree.Random(rng, tree.RandomOptions{Labels: []string{"a", "b"}, Size: 3000, MaxChildren: 4})
	for k := 0; k <= depth; k++ {
		src := alternationQuery(k)
		f, err := mso.Parse(src)
		if err != nil {
			panic(fmt.Sprintf("%s: %v", src, err))
		}
		var q *mso.UnaryQuery
		d := timeIt(func() {
			q, err = mso.CompileQuery(f)
			if err != nil {
				panic(err)
			}
		})
		dEval := timeIt(func() { q.Select(tr) })
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(k), fmt.Sprint(q.C.DTA.NumStates), fmt.Sprint(q.C.DTA.NumTransitions()),
			ms(d), perUnit(dEval, tr.Size())})
	}
	return t
}

// alternationQuery builds a unary query with k quantifier
// alternations over the child relation, free variable x.
func alternationQuery(k int) string {
	var build func(level int, cur string) string
	build = func(level int, cur string) string {
		if level == 0 {
			return fmt.Sprintf("(leaf(%s) | label_a(%s))", cur, cur)
		}
		next := fmt.Sprintf("y%d", level)
		inner := build(level-1, next)
		if level%2 == 0 {
			return fmt.Sprintf("forall %s (child(%s,%s) -> %s)", next, cur, next, inner)
		}
		return fmt.Sprintf("exists %s (child(%s,%s) & %s)", next, cur, next, inner)
	}
	return build(k, "x")
}
