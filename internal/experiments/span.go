package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"regexp"
	"strings"

	"mdlog"
)

// This file measures EXT-SPAN: the compiled spanner pipeline
// (LangSpanner node rules + vset-automaton span enumeration) against
// the obvious hand-rolled alternative — select the candidate nodes
// with a monadic-datalog query, then run Go's regexp over each node's
// text. The Go library implements leftmost non-overlapping match
// semantics, so the honest baseline for the spanner's all-matches
// semantics re-anchors the pattern at every byte offset; the cheaper
// FindAll variant is also reported, with its (smaller) match count,
// to show what it silently drops. cmd/benchtables -span serializes
// the points as BENCH_span.json.

// spanListing generates the benchmark document: a product table whose
// price cells carry sale-style text ("was $123.45 now $6.78") — two
// amounts per cell, long enough that extraction work is visible next
// to the shared node-grounding cost. ~9 nodes per row.
func spanListing(rng *rand.Rand, rows int) string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html><html><head><title>Sale</title></head><body>\n<table>\n")
	adjectives := []string{"Red", "Blue", "Large", "Small", "Deluxe", "Basic"}
	nouns := []string{"Widget", "Gadget", "Sprocket", "Gizmo"}
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&b, "<tr><td>%s %s %d</td><td><b>was $%d.%02d now $%d.%02d</b></td><td><em>in stock</em></td></tr>\n",
			adjectives[rng.Intn(len(adjectives))], nouns[rng.Intn(len(nouns))], i+1,
			10+rng.Intn(490), rng.Intn(100), 1+rng.Intn(9), rng.Intn(100))
	}
	b.WriteString("</table>\n</body></html>")
	return b.String()
}

// spanCellRules selects the price texts of a product listing: the
// #text children of bold cells. Shared by the spanner's node part and
// the baseline select so both sides ground the same program.
const spanCellRules = `
cell(X) :- label_b(Y), child(Y, X), label_#text(X).
?- cell.
`

// spanAmountRe is the amount formula, in spanner and Go syntax. No
// leading $ anchor, so a price like 432.07 has the overlapping
// all-matches {432.07, 32.07, 2.07} — the semantics FindAll cannot
// reproduce.
const (
	spanAmountFormula = `(?<amt>[0-9]+\.[0-9][0-9])`
	spanAmountGo      = `([0-9]+\.[0-9][0-9])`
)

// SpanPoint is one document-size measurement. Milliseconds per full
// extraction pass over the document.
type SpanPoint struct {
	// Nodes is the document size |dom|; Cells the candidate text
	// nodes; Spans the all-matches tuple count both the spanner and
	// the re-anchoring baseline produce (equality is asserted).
	Nodes int `json:"nodes"`
	Cells int `json:"cells"`
	Spans int `json:"spans"`
	// SpannerMs: compiled LangSpanner query, uncached — node-part
	// grounding plus automaton enumeration, end to end.
	SpannerMs float64 `json:"spanner_ms"`
	// SpannerWarmMs: same query with the per-(query, tree) memo
	// primed, so the node part is a cache hit and only the span
	// enumeration runs.
	SpannerWarmMs float64 `json:"spanner_warm_ms"`
	// RegexAllMs: datalog node select + Go regexp re-anchored at
	// every byte offset — the same all-matches semantics.
	RegexAllMs float64 `json:"regex_all_ms"`
	// RegexFindMs / FindSpans: datalog node select +
	// FindAllStringSubmatchIndex — leftmost non-overlapping, so
	// FindSpans < Spans wherever matches overlap.
	RegexFindMs float64 `json:"regex_findall_ms"`
	FindSpans   int     `json:"findall_spans"`
	// SpeedupAll / SpeedupFind are RegexAllMs / SpannerMs and
	// RegexFindMs / SpannerMs.
	SpeedupAll  float64 `json:"speedup_vs_all"`
	SpeedupFind float64 `json:"speedup_vs_findall"`
}

// SpanData measures span extraction at 10k / 100k / 300k nodes
// (quick: 10k / 100k — the 100k point is the acceptance gate, so it
// stays in the smoke run).
func SpanData(cfg Config) []SpanPoint {
	sizes := []int{10000, 100000, 300000}
	if cfg.Quick {
		sizes = []int{10000, 100000}
	}
	ctx := context.Background()
	spannerSrc := spanCellRules +
		"price(X, A) :- cell(X), text(X, S), match(S, /" + spanAmountFormula + "/, A).\n"
	qCold, err := mdlog.Compile(spannerSrc, mdlog.LangSpanner, mdlog.WithoutCache())
	if err != nil {
		panic(err)
	}
	qWarm, err := mdlog.Compile(spannerSrc, mdlog.LangSpanner)
	if err != nil {
		panic(err)
	}
	qSel, err := mdlog.Compile(spanCellRules, mdlog.LangDatalog, mdlog.WithoutCache())
	if err != nil {
		panic(err)
	}
	re := regexp.MustCompile(spanAmountGo)
	reAnchored := regexp.MustCompile("^(?:" + spanAmountGo + ")")

	var out []SpanPoint
	for _, target := range sizes {
		rng := rand.New(rand.NewSource(52))
		doc := mdlog.ParseHTML(spanListing(rng, target/9))
		pt := SpanPoint{Nodes: doc.Size()}

		res, err := qCold.Spans(ctx, doc)
		if err != nil {
			panic(err)
		}
		pt.Spans = res.Tuples()
		ids, err := qSel.Select(ctx, doc)
		if err != nil {
			panic(err)
		}
		pt.Cells = len(ids)

		// Both baselines materialize the same output as the spanner —
		// node, amount offsets, amount text — extraction, not counting.
		type row struct {
			node       int
			start, end int
			amt        string
		}
		// The re-anchoring baseline: every byte offset is a candidate
		// match start, exactly the spanner's all-matches semantics.
		regexAll := func() []row {
			var rows []row
			ids, err := qSel.Select(ctx, doc)
			if err != nil {
				panic(err)
			}
			for _, id := range ids {
				text := doc.Nodes[id].Text
				for i := range text {
					if m := reAnchored.FindStringSubmatchIndex(text[i:]); m != nil {
						rows = append(rows, row{id, i + m[2], i + m[3], text[i+m[2] : i+m[3]]})
					}
				}
			}
			return rows
		}
		if got := len(regexAll()); got != pt.Spans {
			panic(fmt.Sprintf("EXT-SPAN: baseline finds %d spans, spanner %d", got, pt.Spans))
		}
		regexFind := func() []row {
			var rows []row
			ids, err := qSel.Select(ctx, doc)
			if err != nil {
				panic(err)
			}
			for _, id := range ids {
				text := doc.Nodes[id].Text
				for _, m := range re.FindAllStringSubmatchIndex(text, -1) {
					rows = append(rows, row{id, m[2], m[3], text[m[2]:m[3]]})
				}
			}
			return rows
		}
		pt.FindSpans = len(regexFind())

		msOf := func(f func()) float64 {
			return float64(timeIt(f).Nanoseconds()) / 1e6
		}
		pt.SpannerMs = msOf(func() {
			if _, err := qCold.Spans(ctx, doc); err != nil {
				panic(err)
			}
		})
		pt.SpannerWarmMs = msOf(func() {
			if _, err := qWarm.Spans(ctx, doc); err != nil {
				panic(err)
			}
		})
		pt.RegexAllMs = msOf(func() { regexAll() })
		pt.RegexFindMs = msOf(func() { regexFind() })
		pt.SpeedupAll = pt.RegexAllMs / pt.SpannerMs
		pt.SpeedupFind = pt.RegexFindMs / pt.SpannerMs
		out = append(out, pt)
	}
	return out
}

// Span renders SpanData as an experiment table (EXT-SPAN).
func Span(cfg Config) Table {
	t := Table{
		ID:    "EXT-SPAN",
		Title: "Spanners: compiled span extraction vs node-select + Go regexp",
		Headers: []string{"nodes", "cells", "spans", "spanner ms", "warm ms",
			"regex-all ms", "speedup", "findall ms", "findall spans"},
		Notes: "Sale-listing documents (two amounts per bold price cell); the query selects the cells " +
			"and extracts every amount match (all-matches semantics, so 432.07 also yields 32.07 and 2.07). " +
			"spanner = compiled LangSpanner end to end; warm = node part served by the " +
			"per-(query, tree) memo. regex-all = datalog node select + Go regexp re-anchored at " +
			"every byte offset, materializing (node, offsets, text) rows — the faithful all-matches " +
			"baseline; speedup is regex-all / spanner. findall = FindAllStringSubmatchIndex — cheaper, " +
			"but leftmost non-overlapping: its span count column shows what it drops. " +
			"cmd/benchtables -span emits these rows as JSON.",
	}
	for _, pt := range SpanData(cfg) {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(pt.Nodes),
			fmt.Sprint(pt.Cells),
			fmt.Sprint(pt.Spans),
			fmt.Sprintf("%.3f", pt.SpannerMs),
			fmt.Sprintf("%.3f", pt.SpannerWarmMs),
			fmt.Sprintf("%.3f", pt.RegexAllMs),
			fmt.Sprintf("%.2fx", pt.SpeedupAll),
			fmt.Sprintf("%.3f", pt.RegexFindMs),
			fmt.Sprint(pt.FindSpans),
		})
	}
	return t
}
