package experiments

import (
	"strings"
	"testing"
)

// TestTablesWellFormed smoke-runs a representative subset of the
// experiment harness in quick mode and checks the tables are sane.
func TestTablesWellFormed(t *testing.T) {
	if testing.Short() {
		t.Skip("timing harness")
	}
	cfg := Config{Quick: true}
	tables := []Table{
		Theorem42Data(cfg),
		GroundLinear(cfg),
		QArTranslationSize(cfg),
	}
	for _, tab := range tables {
		if tab.ID == "" || tab.Title == "" {
			t.Errorf("table missing id/title: %+v", tab)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s: no rows", tab.ID)
		}
		for _, r := range tab.Rows {
			if len(r) != len(tab.Headers) {
				t.Errorf("%s: row width %d, headers %d", tab.ID, len(r), len(tab.Headers))
			}
		}
		md := tab.Markdown()
		if !strings.Contains(md, tab.ID) || !strings.Contains(md, "|") {
			t.Errorf("%s: malformed markdown", tab.ID)
		}
	}
}

// TestOptDataReducesWrappers pins the EXT-OPT acceptance claim: the
// optimizer shrinks the compiled MSO and Elog example wrappers and
// repeated Select gets faster, with identical selections at both
// levels (OptData panics on any O0/O1 disagreement).
func TestOptDataReducesWrappers(t *testing.T) {
	if testing.Short() {
		t.Skip("timing harness")
	}
	pts := OptData(Config{Quick: true})
	byName := map[string]OptPoint{}
	for _, pt := range pts {
		byName[pt.Wrapper] = pt
	}
	for _, name := range []string{"elog-products", "mso-td-b"} {
		pt, ok := byName[name]
		if !ok {
			t.Fatalf("missing wrapper %s in %v", name, pts)
		}
		if pt.RulesAfter >= pt.RulesBefore {
			t.Errorf("%s: no rule reduction (%d -> %d)", name, pt.RulesBefore, pt.RulesAfter)
		}
		if pt.Speedup <= 1 {
			t.Errorf("%s: no Select speedup (%.2fx)", name, pt.Speedup)
		}
	}
}

// TestIncrementalDataSpeedup pins the EXT-INCREMENTAL claim shape:
// small revisions through the live-document path beat full reparse +
// re-extract. (The full-size ≥5x-at-100k acceptance figure comes from
// make bench-incremental; quick mode only asserts a win at the
// smallest edit fraction to stay robust on loaded CI machines.)
func TestIncrementalDataSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing harness")
	}
	pts := IncrementalData(Config{Quick: true})
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	for _, pt := range pts {
		if pt.EditFrac <= 0.001 && pt.Speedup <= 1 {
			t.Errorf("%d nodes, %.1f%% edits: speedup %.2fx, want > 1x",
				pt.Nodes, pt.EditFrac*100, pt.Speedup)
		}
	}
}

// TestSubsumeDataShape pins the EXT-SUBSUME claim shape: in a fleet of
// near-duplicate wrappers the containment checker collapses every
// variant class onto its 4 base shapes (no Unknown verdicts, nothing
// left unmerged) and the subsumed pipeline never loses to the
// baseline. (The full-size ≥3x-at-32 acceptance figure comes from
// make bench-subsume; quick mode asserts structure, not magnitude, to
// stay robust on loaded CI machines.)
func TestSubsumeDataShape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing harness")
	}
	pts := SubsumeData(Config{Quick: true})
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	for _, pt := range pts {
		if pt.Unknown != 0 {
			t.Errorf("N=%d: %d unknown verdicts, want 0", pt.Wrappers, pt.Unknown)
		}
		if pt.Checked != pt.Wrappers {
			t.Errorf("N=%d: checked %d, want all", pt.Wrappers, pt.Checked)
		}
		wantEval := pt.Wrappers
		if wantEval > 4 {
			wantEval = 4
		}
		if pt.Evaluated != wantEval {
			t.Errorf("N=%d: %d evaluated, want %d (one per base shape)", pt.Wrappers, pt.Evaluated, wantEval)
		}
		if pt.Wrappers > 4 && pt.Speedup <= 1 {
			t.Errorf("N=%d: speedup %.2fx, want > 1x", pt.Wrappers, pt.Speedup)
		}
	}
}

func TestAlternationQueryShape(t *testing.T) {
	q0 := alternationQuery(0)
	if !strings.Contains(q0, "leaf(x)") {
		t.Errorf("q0 = %s", q0)
	}
	q2 := alternationQuery(2)
	if !strings.Contains(q2, "forall") || !strings.Contains(q2, "exists") {
		t.Errorf("q2 = %s", q2)
	}
}
