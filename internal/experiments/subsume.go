package experiments

import (
	"fmt"
	"math/rand"

	"mdlog/internal/datalog"
	"mdlog/internal/eval"
	"mdlog/internal/html"
	"mdlog/internal/opt"
)

// This file measures EXT-SUBSUME: what the containment-aware compile
// pipeline (shared-structure CSE + registry-wide wrapper subsumption)
// buys over the plain fused baseline when the fleet contains
// near-duplicate wrappers — syntactically different programs the
// checker proves semantically equivalent, so all but one
// representative per class cost zero evaluation per document.
// cmd/benchtables -subsume serializes the points as BENCH_subsume.json.

// SubsumePoint is one fleet size's measurement over the benchmark
// document set.
type SubsumePoint struct {
	// Wrappers is the fleet size N.
	Wrappers int `json:"wrappers"`
	// Evaluated is how many wrappers still own rules in the
	// containment-aware fused program; Subsumed = N − Evaluated are
	// answered purely by projection.
	Evaluated int `json:"evaluated"`
	Subsumed  int `json:"subsumed"`
	// Checked counts visible predicates the checker fingerprinted;
	// Unknown counts those it declined (fell back to evaluation).
	Checked int `json:"checked"`
	Unknown int `json:"unknown"`
	// RulesBaseline / RulesSubsume compare the fused program sizes:
	// apex-rename + dedup only (the PR 5 pipeline) vs the full
	// CSE + subsumption pipeline.
	RulesBaseline int `json:"rules_baseline"`
	RulesSubsume  int `json:"rules_subsume"`
	// CheckNs is the one-time compile cost of the containment checker
	// for this fleet (amortized over every subsequent document).
	CheckNs int64 `json:"check_ns"`
	// BaselineNs / SubsumeNs are one full fused pass over the document
	// set (grounding + solve for the whole fleet) per pipeline, in
	// nanoseconds; Speedup is BaselineNs / SubsumeNs.
	BaselineNs float64 `json:"baseline_ns"`
	SubsumeNs  float64 `json:"subsume_ns"`
	Speedup    float64 `json:"speedup"`
}

// subsumeWrapper builds wrapper variant v of base shape s: variant 0
// is the base program itself; higher variants pad the body with a dom
// atom and duplicated base atoms whose non-head variables are renamed
// fresh — semantically equivalent by construction (a conjunct implied
// by an existing one changes nothing), syntactically distinct enough
// that α-dedup cannot merge them. Only the containment checker's
// unfold→minimize normal form collapses the class.
func subsumeWrapper(s, v int) string {
	bases := [][]string{
		{"firstchild(X,Y)", "label_td(Y)"},
		{"label_td(X)", "firstchild(X,Y)", "label_b(Y)"},
		{"label_tr(X)", "firstchild(X,Y)", "nextsibling(Y,Z)", "label_td(Z)"},
		{"nextsibling(X,Y)", "label_td(Y)", "firstchild(Y,Z)"},
	}
	base := bases[s%len(bases)]
	body := append([]string{}, base...)
	// Encode the variant index as per-atom duplicate counts (digits of
	// v in base 6): every v yields an α-distinct body, yet bodies stay
	// small enough for the checker's atom budget at any fleet size.
	for j := range base {
		copies := v % 6
		v /= 6
		for m := 0; m < copies; m++ {
			dup := ""
			for _, r := range base[j] {
				if r == 'Y' || r == 'Z' {
					dup += fmt.Sprintf("%c%d%d", r, j, m)
				} else {
					dup += string(r)
				}
			}
			body = append(body, dup)
		}
	}
	if len(body) > len(base) {
		body = append(body, "dom(X)")
	}
	src := "q(X) :- " + body[0]
	for _, a := range body[1:] {
		src += ", " + a
	}
	return src + ". ?- q."
}

// subsumeFleet compiles the N-wrapper fleet into opt.FuseMember form.
// Shape rotates fastest so every fleet size exercises all base shapes;
// the variant index grows with N, deepening the padding.
func subsumeFleet(n int) []opt.FuseMember {
	members := make([]opt.FuseMember, n)
	for i := 0; i < n; i++ {
		p := datalog.MustParseProgram(subsumeWrapper(i%4, i/4))
		members[i] = opt.FuseMember{
			Prefix:  fmt.Sprintf("s%d__", i),
			Program: p,
			Visible: []string{p.Query},
		}
	}
	return members
}

// subsumePlan prepares a fused linear plan for the fleet under the
// given pass selection, resolving each member's visible predicate
// through the alias map.
func subsumePlan(members []opt.FuseMember, o opt.FuseOptions) (*eval.FusedPlan, opt.FuseReport) {
	fused, aliases, rep := opt.FuseWith(members, o)
	fms := make([]eval.FusedMember, len(members))
	for i, m := range members {
		pred := m.Prefix + m.Program.Query
		if tgt, ok := aliases[pred]; ok {
			pred = tgt
		}
		fms[i] = eval.FusedMember{
			Name:    fmt.Sprintf("w%d", i),
			Project: map[string]string{m.Program.Query: pred},
		}
	}
	plan, err := eval.NewFusedPlan(fused, fms)
	if err != nil {
		panic(fmt.Sprintf("subsume plan: %v", err))
	}
	return plan, rep
}

// SubsumeData measures the containment-aware pipeline vs the plain
// fused baseline for fleets of N ∈ {8, 32, 128} near-duplicate
// wrappers over the benchmark document set.
func SubsumeData(cfg Config) []SubsumePoint {
	rows := 150
	docsN := 3
	sizes := []int{8, 32, 128}
	if cfg.Quick {
		rows, docsN = 50, 2
		sizes = []int{4, 8, 16}
	}
	rng := rand.New(rand.NewSource(49))
	navs := make([]*eval.Nav, docsN)
	for i := range navs {
		navs[i] = eval.NewNav(html.Parse(html.ProductListing(rng, rows)))
	}

	var out []SubsumePoint
	for _, n := range sizes {
		members := subsumeFleet(n)
		base, _ := subsumePlan(members, opt.FuseOptions{})
		full, rep := subsumePlan(members, opt.DefaultFuseOptions)
		// Semantics guard: both pipelines must agree on every member's
		// visible relation on every document before timing means
		// anything.
		for _, nav := range navs {
			bdb, err := base.RunFull(nav)
			if err != nil {
				panic(err)
			}
			fdb, err := full.RunFull(nav)
			if err != nil {
				panic(err)
			}
			bviews, fviews := base.Split(bdb), full.Split(fdb)
			for i := range members {
				q := members[i].Program.Query
				b, f := bviews[i].UnarySet(q), fviews[i].UnarySet(q)
				if fmt.Sprint(b) != fmt.Sprint(f) {
					panic(fmt.Sprintf("subsume w%d diverges: baseline %v vs subsume %v", i, b, f))
				}
			}
		}
		evaluated := n - ownerlessMembers(full.Plan().Program(), members)
		pt := SubsumePoint{
			Wrappers:      n,
			Evaluated:     evaluated,
			Subsumed:      n - evaluated,
			Checked:       rep.SubsumeChecked,
			Unknown:       rep.SubsumeUnknown,
			RulesBaseline: len(base.Plan().Program().Rules),
			RulesSubsume:  len(full.Plan().Program().Rules),
			CheckNs:       rep.CheckNs,
		}
		pt.BaselineNs = float64(timeIt(func() {
			for _, nav := range navs {
				if _, err := base.RunFull(nav); err != nil {
					panic(err)
				}
			}
		}).Nanoseconds())
		pt.SubsumeNs = float64(timeIt(func() {
			for _, nav := range navs {
				if _, err := full.RunFull(nav); err != nil {
					panic(err)
				}
			}
		}).Nanoseconds())
		pt.Speedup = pt.BaselineNs / pt.SubsumeNs
		out = append(out, pt)
	}
	return out
}

// ownerlessMembers counts members none of whose apex-prefixed rules
// survive in the fused program — the subsumed members, served purely
// by projection.
func ownerlessMembers(fused *datalog.Program, members []opt.FuseMember) int {
	owned := make(map[string]bool, len(members))
	for _, r := range fused.Rules {
		for _, m := range members {
			if len(r.Head.Pred) >= len(m.Prefix) && r.Head.Pred[:len(m.Prefix)] == m.Prefix {
				owned[m.Prefix] = true
				break
			}
		}
	}
	n := 0
	for _, m := range members {
		if !owned[m.Prefix] {
			n++
		}
	}
	return n
}

// Subsume renders SubsumeData as an experiment table (EXT-SUBSUME).
func Subsume(cfg Config) Table {
	t := Table{
		ID:    "EXT-SUBSUME",
		Title: "Wrapper subsumption: containment-aware pipeline vs plain fused baseline",
		Headers: []string{"wrappers", "evaluated", "subsumed", "rules base", "rules subsume",
			"check ms", "base ms", "subsume ms", "speedup"},
		Notes: "Fleet of near-duplicate datalog wrappers (4 base shapes; variants pad each body with dom atoms " +
			"and implied duplicated fragments, defeating α-dedup and CSE). The containment checker unfolds each " +
			"visible predicate to its minimized UCQ normal form and merges proven-equal classes, so only one " +
			"representative per shape is evaluated per document; the rest answer by projection. " +
			"check ms is the one-time compile cost; base/subsume ms are one full fused pass over the document set. " +
			"cmd/benchtables -subsume emits these rows as BENCH_subsume.json.",
	}
	for _, pt := range SubsumeData(cfg) {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(pt.Wrappers), fmt.Sprint(pt.Evaluated), fmt.Sprint(pt.Subsumed),
			fmt.Sprint(pt.RulesBaseline), fmt.Sprint(pt.RulesSubsume),
			fmt.Sprintf("%.3f", float64(pt.CheckNs)/1e6),
			fmt.Sprintf("%.3f", pt.BaselineNs/1e6), fmt.Sprintf("%.3f", pt.SubsumeNs/1e6),
			fmt.Sprintf("%.2fx", pt.Speedup),
		})
	}
	return t
}
