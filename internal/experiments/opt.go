package experiments

import (
	"context"
	"fmt"
	"math/rand"

	mdlog "mdlog"
	"mdlog/internal/html"
	"mdlog/internal/mso"
)

// This file measures EXT-OPT: what the compile-time optimizer
// (internal/opt) buys on realistic compiled wrappers — rule-count
// reduction of the prepared plan and end-to-end repeated-Select
// speedup. cmd/benchtables -opt serializes the same measurements as
// BENCH_optimize.json so CI archives the optimizer trajectory.

// OptPoint is one wrapper's optimizer measurement. Select timings run
// the full plan per call (result memo disabled), so they expose the
// engine's per-rule grounding cost.
type OptPoint struct {
	// Wrapper names the compiled example.
	Wrapper string `json:"wrapper"`
	// Lang is the source language.
	Lang string `json:"lang"`
	// RulesBefore / RulesAfter are the plan sizes around the -O1
	// pipeline.
	RulesBefore int `json:"rules_before"`
	RulesAfter  int `json:"rules_after"`
	// Inlined and DeadRules break the reduction down by pass.
	Inlined   int `json:"inlined"`
	DeadRules int `json:"dead_rules"`
	// SelectNsO0 / SelectNsO1 are one full Select in nanoseconds at
	// each level.
	SelectNsO0 float64 `json:"select_ns_o0"`
	SelectNsO1 float64 `json:"select_ns_o1"`
	// Speedup is SelectNsO0 / SelectNsO1.
	Speedup float64 `json:"speedup"`
}

// optElogSource is the CLAIM-C64 product wrapper: the Elog⁻ → datalog
// → TMNF route emits long tm_* chains for every subelem path.
const optElogSource = `
item(x)   :- root(x0), subelem("html.body.table.tr", x0, x).
name(x)   :- item(x0), subelem("td.#text", x0, x), firstsibling(x).
price(x)  :- item(x0), subelem("td.b.#text", x0, x).
status(x) :- item(x0), subelem("td.em.#text", x0, x).
`

// OptData measures the optimizer on the compiled MSO, Elog and XPath
// example wrappers against one product-listing document.
func OptData(cfg Config) []OptPoint {
	rows := 300
	if cfg.Quick {
		rows = 60
	}
	rng := rand.New(rand.NewSource(48))
	doc := html.Parse(html.ProductListing(rng, rows))
	ctx := context.Background()

	type wrapper struct {
		name    string
		compile func(lvl mdlog.OptLevel) (*mdlog.CompiledQuery, error)
		lang    string
	}
	msoSrc := `label_td(x) & exists y (child(x,y) & label_b(y))`
	wrappers := []wrapper{
		{"elog-products", func(lvl mdlog.OptLevel) (*mdlog.CompiledQuery, error) {
			return mdlog.Compile(optElogSource, mdlog.LangElog,
				mdlog.WithQueryPred("price"), mdlog.WithOptLevel(lvl), mdlog.WithoutCache())
		}, "elog"},
		{"mso-td-b", func(lvl mdlog.OptLevel) (*mdlog.CompiledQuery, error) {
			f, err := mso.Parse(msoSrc)
			if err != nil {
				return nil, err
			}
			uq, err := mso.CompileQuery(f)
			if err != nil {
				return nil, err
			}
			// The Theorem 4.4 translation needs the document alphabet;
			// goal-direction comes from extracting only the query pred.
			prog, err := uq.ToDatalog(doc.Labels(), "q")
			if err != nil {
				return nil, err
			}
			return mdlog.CompileProgram(prog, mdlog.WithQueryPred("q"),
				mdlog.WithExtract("q"), mdlog.WithOptLevel(lvl), mdlog.WithoutCache())
		}, "mso"},
		{"xpath-td-b", func(lvl mdlog.OptLevel) (*mdlog.CompiledQuery, error) {
			return mdlog.Compile(`//td[b]`, mdlog.LangXPath,
				mdlog.WithOptLevel(lvl), mdlog.WithoutCache())
		}, "xpath"},
	}

	var out []OptPoint
	for _, w := range wrappers {
		q0, err := w.compile(mdlog.OptNone)
		if err != nil {
			panic(fmt.Sprintf("%s/O0: %v", w.name, err))
		}
		q1, err := w.compile(mdlog.OptFull)
		if err != nil {
			panic(fmt.Sprintf("%s/O1: %v", w.name, err))
		}
		// Semantics guard: both levels must select the same nodes.
		ids0, err0 := q0.Select(ctx, doc)
		ids1, err1 := q1.Select(ctx, doc)
		if err0 != nil || err1 != nil || fmt.Sprint(ids0) != fmt.Sprint(ids1) {
			panic(fmt.Sprintf("%s: O0/O1 disagree: %v/%v (%v, %v)", w.name, ids0, ids1, err0, err1))
		}
		rep := q1.OptStats()
		pt := OptPoint{
			Wrapper: w.name, Lang: w.lang,
			RulesBefore: rep.RulesBefore, RulesAfter: rep.RulesAfter,
			Inlined: rep.Inlined, DeadRules: rep.DeadRules,
		}
		pt.SelectNsO0 = float64(timeIt(func() {
			if _, err := q0.Select(ctx, doc); err != nil {
				panic(err)
			}
		}).Nanoseconds())
		pt.SelectNsO1 = float64(timeIt(func() {
			if _, err := q1.Select(ctx, doc); err != nil {
				panic(err)
			}
		}).Nanoseconds())
		pt.Speedup = pt.SelectNsO0 / pt.SelectNsO1
		out = append(out, pt)
	}
	return out
}

// Opt renders OptData as an experiment table (EXT-OPT).
func Opt(cfg Config) Table {
	t := Table{
		ID:    "EXT-OPT",
		Title: "Goal-directed optimizer: plan size and repeated-Select speedup",
		Headers: []string{"wrapper", "lang", "rules O0", "rules O1", "inlined", "dead",
			"select ms O0", "select ms O1", "speedup"},
		Notes: "One product-listing document, result memo disabled so every Select runs the full plan. " +
			"rules O0/O1 are the prepared plan sizes; inlined/dead break the reduction down by pass. " +
			"cmd/benchtables -opt emits these rows as BENCH_optimize.json.",
	}
	for _, pt := range OptData(cfg) {
		t.Rows = append(t.Rows, []string{
			pt.Wrapper, pt.Lang,
			fmt.Sprint(pt.RulesBefore), fmt.Sprint(pt.RulesAfter),
			fmt.Sprint(pt.Inlined), fmt.Sprint(pt.DeadRules),
			fmt.Sprintf("%.3f", pt.SelectNsO0/1e6), fmt.Sprintf("%.3f", pt.SelectNsO1/1e6),
			fmt.Sprintf("%.2fx", pt.Speedup),
		})
	}
	return t
}
