package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"mdlog/internal/datalog"
	"mdlog/internal/eval"
	"mdlog/internal/html"
)

// This file measures the document substrate itself — the arena
// (struct-of-arrays) tree representation and the streaming HTML
// tokenizer — at growing document sizes, and compares it with the
// pointer-per-node baseline pipeline it replaced. cmd/benchtables
// -treesize serializes the same measurements as BENCH_treesize.json
// so CI archives a perf trajectory across PRs.

// TreeSizePoint is one document-size measurement. All figures are
// nanoseconds per node, so linearity shows as flat columns.
type TreeSizePoint struct {
	// Nodes is the actual document size, |dom|.
	Nodes int `json:"nodes"`
	// ParseNsPerNode: streaming parse (html.ParseArena) from an
	// in-memory reader into the arena.
	ParseNsPerNode float64 `json:"parse_ns_per_node"`
	// MaterializeNsPerNode: τ_ur TreeDB materialization off the arena
	// columns (the generic-engine substrate).
	MaterializeNsPerNode float64 `json:"materialize_ns_per_node"`
	// SelectNsPerNode: full pipeline parse → Nav → Theorem 4.2 plan
	// run → selected-node extraction.
	SelectNsPerNode float64 `json:"select_ns_per_node"`
	// PointerParseNsPerNode / PointerSelectNsPerNode: the same
	// measurements through the pointer-per-node baseline
	// (html.ParseNodes + eval.NewNavFromNodes).
	PointerParseNsPerNode  float64 `json:"pointer_parse_ns_per_node"`
	PointerSelectNsPerNode float64 `json:"pointer_select_ns_per_node"`
	// SelectSpeedup is PointerSelect / Select, end to end.
	SelectSpeedup float64 `json:"select_speedup"`
	// EngineSelectNsPerNode / BitmapSelectNsPerNode isolate the engine:
	// the prepared plan runs over a pre-built Nav (no parse, no
	// materialization), linear vs bitmap. The end-to-end select columns
	// are parse-dominated, so engine work only shows here.
	EngineSelectNsPerNode float64 `json:"engine_select_ns_per_node"`
	BitmapSelectNsPerNode float64 `json:"bitmap_select_ns_per_node"`
	// BitmapSelectSpeedup is EngineSelect / BitmapSelect — the
	// engine-only gain of the columnar bitmap pipeline.
	BitmapSelectSpeedup float64 `json:"bitmap_select_speedup"`
}

// treeSizeProgram is the fixed query of the substrate benchmark: td
// cells whose first child is a bold price.
func treeSizeProgram() *datalog.Program {
	return datalog.MustParseProgram(`
q(X) :- label_td(X), firstchild(X,Y), label_b(Y).
?- q.
`)
}

// TreeSizeData measures the substrate at 1k / 10k / 100k nodes.
func TreeSizeData(cfg Config) []TreeSizePoint {
	sizes := []int{1000, 10000, 100000}
	if cfg.Quick {
		sizes = []int{1000, 10000}
	}
	pl, err := eval.NewPlan(treeSizeProgram())
	if err != nil {
		panic(err)
	}
	bp, err := eval.NewBitmapPlan(treeSizeProgram())
	if err != nil {
		panic(err)
	}
	var out []TreeSizePoint
	for _, target := range sizes {
		rng := rand.New(rand.NewSource(52))
		src := html.ProductListing(rng, target/9)
		a, err := html.ParseArena(strings.NewReader(src))
		if err != nil {
			panic(err)
		}
		n := a.Len()
		doc := html.ParseNodes(src)

		perNode := func(f func()) float64 {
			return float64(timeIt(f).Nanoseconds()) / float64(n)
		}
		pt := TreeSizePoint{Nodes: n}
		pt.ParseNsPerNode = perNode(func() {
			if _, err := html.ParseArena(strings.NewReader(src)); err != nil {
				panic(err)
			}
		})
		pt.MaterializeNsPerNode = perNode(func() {
			eval.TreeDB(doc)
		})
		pt.SelectNsPerNode = perNode(func() {
			a, err := html.ParseArena(strings.NewReader(src))
			if err != nil {
				panic(err)
			}
			db, err := pl.Run(eval.NavOf(a))
			if err != nil {
				panic(err)
			}
			db.UnarySet("q")
		})
		pt.PointerParseNsPerNode = perNode(func() {
			html.ParseNodes(src)
		})
		pt.PointerSelectNsPerNode = perNode(func() {
			doc := html.ParseNodes(src)
			db, err := pl.Run(eval.NewNavFromNodes(doc))
			if err != nil {
				panic(err)
			}
			db.UnarySet("q")
		})
		pt.SelectSpeedup = pt.PointerSelectNsPerNode / pt.SelectNsPerNode
		nav := eval.NavOf(a)
		pt.EngineSelectNsPerNode = perNode(func() {
			db, err := pl.Run(nav)
			if err != nil {
				panic(err)
			}
			db.UnarySet("q")
		})
		pt.BitmapSelectNsPerNode = perNode(func() {
			db, err := bp.Run(nav)
			if err != nil {
				panic(err)
			}
			db.UnarySet("q")
		})
		pt.BitmapSelectSpeedup = pt.EngineSelectNsPerNode / pt.BitmapSelectNsPerNode
		out = append(out, pt)
	}
	return out
}

// TreeSize renders TreeSizeData as an experiment table (EXT-TREESIZE).
func TreeSize(cfg Config) Table {
	t := Table{
		ID:    "EXT-TREESIZE",
		Title: "Arena substrate: parse / materialize / Select ns-per-node vs document size",
		Headers: []string{"nodes", "parse ns/node", "treedb ns/node", "select ns/node",
			"ptr parse ns/node", "ptr select ns/node", "select speedup",
			"engine ns/node", "bitmap ns/node", "bitmap speedup"},
		Notes: "Wide product-listing documents. parse = streaming html.ParseArena; treedb = τ_ur TreeDB off the " +
			"arena columns; select = parse → Nav → Theorem 4.2 plan → node ids, end to end. " +
			"ptr columns run the pointer-per-node baseline (html.ParseNodes + eval.NewNavFromNodes). " +
			"engine/bitmap columns isolate plan execution over a pre-built Nav (the end-to-end select " +
			"column is parse-dominated): linear Horn propagation vs the columnar bitset pipeline. " +
			"Flat ns/node columns demonstrate linearity; cmd/benchtables -treesize emits these rows as JSON.",
	}
	for _, pt := range TreeSizeData(cfg) {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(pt.Nodes),
			fmt.Sprintf("%.0f", pt.ParseNsPerNode),
			fmt.Sprintf("%.0f", pt.MaterializeNsPerNode),
			fmt.Sprintf("%.0f", pt.SelectNsPerNode),
			fmt.Sprintf("%.0f", pt.PointerParseNsPerNode),
			fmt.Sprintf("%.0f", pt.PointerSelectNsPerNode),
			fmt.Sprintf("%.2fx", pt.SelectSpeedup),
			fmt.Sprintf("%.1f", pt.EngineSelectNsPerNode),
			fmt.Sprintf("%.1f", pt.BitmapSelectNsPerNode),
			fmt.Sprintf("%.2fx", pt.BitmapSelectSpeedup),
		})
	}
	return t
}
