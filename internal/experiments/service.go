package experiments

// This file measures EXT-SERVICE: what fleet mode buys the serving
// layer — (a) the content-hash dedup cache against duplicated crawl
// traffic (cache on vs off across duplicate ratios), and (b)
// consistent-hash sharding at N ∈ {1, 2, 4} workers, where the win on
// any machine is CACHE PARTITIONING: each worker's dedup cache holds
// only its ring shard of the document universe, so a universe that
// thrashes one worker's cache fits comfortably in four. Everything
// runs over real HTTP (httptest servers for workers and front tier),
// so the numbers include the full service path: admission, routing,
// hashing, body transport. cmd/benchtables -service serializes the
// result as BENCH_service.json so CI archives the fleet trajectory.

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	mdlog "mdlog"
	"mdlog/internal/html"
	"mdlog/internal/service"
)

// serviceWrapperSrc is the Elog⁻ wrapper the benchmark serves: the
// product-row chain plus a leaf field, so evaluation cost scales with
// the page.
const serviceWrapperSrc = `
item(x) :- root(x0), subelem("html.body.table.tr", x0, x).
f(x)    :- item(x0), subelem("td.b", x0, x).
`

// ServiceDedupPoint is one duplicate-ratio measurement on a single
// worker: identical traffic against a cache-on and a cache-off daemon.
type ServiceDedupPoint struct {
	// DupRatio is the fraction of requests that are byte-identical
	// repeats of an earlier document (0: all distinct).
	DupRatio float64 `json:"dup_ratio"`
	// Requests is the traffic volume measured.
	Requests int `json:"requests"`
	// CacheOffNsPerDoc / CacheOnNsPerDoc are mean service latency per
	// document, cache off vs on.
	CacheOffNsPerDoc float64 `json:"cache_off_ns_per_doc"`
	CacheOnNsPerDoc  float64 `json:"cache_on_ns_per_doc"`
	// Speedup is CacheOffNsPerDoc / CacheOnNsPerDoc.
	Speedup float64 `json:"speedup"`
	// HitRate is the cache-on run's dedup hit fraction.
	HitRate float64 `json:"hit_rate"`
}

// ServiceShardPoint is one fleet size's saturation measurement.
type ServiceShardPoint struct {
	// Workers is the fleet size N (1: a single worker, no front tier).
	Workers int `json:"workers"`
	// Requests / Concurrency describe the closed-loop load.
	Requests    int `json:"requests"`
	Concurrency int `json:"concurrency"`
	// ThroughputRPS is completed requests per second at saturation.
	ThroughputRPS float64 `json:"throughput_rps"`
	// P50Ms / P99Ms are per-request service latency percentiles.
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	// HitRate is the fleet-wide dedup hit fraction: the mechanism
	// behind the scaling (per-worker caches partition the universe).
	HitRate float64 `json:"hit_rate"`
	// SpeedupVs1 is ThroughputRPS over the 1-worker point's.
	SpeedupVs1 float64 `json:"speedup_vs_1"`
}

// ServiceBench is the BENCH_service.json document.
type ServiceBench struct {
	// PageRows / PageBytes describe the benchmark document family.
	PageRows  int `json:"page_rows"`
	PageBytes int `json:"page_bytes"`
	// Universe is the distinct-document count of the shard experiment;
	// CachePerWorker is each worker's dedup-cache bound. Universe >
	// CachePerWorker (one worker thrashes) and Universe <= N_max *
	// CachePerWorker (the fleet fits) is the partitioning regime.
	Universe       int                 `json:"universe"`
	CachePerWorker int                 `json:"cache_per_worker"`
	Dedup          []ServiceDedupPoint `json:"dedup"`
	Shard          []ServiceShardPoint `json:"shard"`
}

// serviceDocs builds n distinct product pages of the given row count.
func serviceDocs(n, rows int) []string {
	rng := rand.New(rand.NewSource(51))
	docs := make([]string, n)
	for i := range docs {
		// ProductListing draws fresh pseudo-random rows per call, and a
		// distinct marker comment pins distinctness even at tiny sizes.
		docs[i] = fmt.Sprintf("<!-- doc %d -->%s", i, html.ProductListing(rng, rows))
	}
	return docs
}

// drive issues reqs (round-robin over clients goroutines) against url
// and returns wall time plus sorted per-request latencies. Every
// response must be 200; a non-200 panics — a benchmark that silently
// measures error paths would report fiction.
func drive(url string, bodies []string, concurrency int) (time.Duration, []time.Duration) {
	lat := make([]time.Duration, len(bodies))
	var next atomic.Int64
	var wg sync.WaitGroup
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: concurrency}}
	start := time.Now()
	for c := 0; c < concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(bodies) {
					return
				}
				t0 := time.Now()
				resp, err := client.Post(url, "text/html", strings.NewReader(bodies[i]))
				if err != nil {
					panic(fmt.Sprintf("experiments: service bench request: %v", err))
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					panic(fmt.Sprintf("experiments: service bench got status %d", resp.StatusCode))
				}
				lat[i] = time.Since(t0)
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return wall, lat
}

// percentileMs reads the p-th percentile of sorted latencies in ms.
func percentileMs(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return float64(sorted[i]) / 1e6
}

// bootWorker starts one daemon on an httptest server with the
// benchmark wrapper registered.
func bootWorker(cfg *service.Config) (*service.Server, *httptest.Server) {
	s, err := service.New(cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: service bench boot: %v", err))
	}
	if _, _, err := s.Registry().Register("items", service.WrapperSpec{Lang: mdlog.LangElog, Source: serviceWrapperSrc, Pred: "f"}); err != nil {
		panic(fmt.Sprintf("experiments: service bench wrapper: %v", err))
	}
	return s, httptest.NewServer(s.Handler())
}

// dedupHits reads hit/miss counters off a worker's /stats-visible
// cache state via the exported DocCacheStats accessor.
func dedupHits(s *service.Server) (hits, misses int64) {
	st := s.DocCacheStats()
	return st.Hits, st.Misses
}

// ServiceData measures the dedup sweep and the shard scaling curve.
func ServiceData(cfg Config) ServiceBench {
	rows, universe, cacheEntries := 160, 64, 24
	rounds, concurrency := 6, 8
	dedupReqs := 300
	if cfg.Quick {
		rows, universe, cacheEntries = 60, 16, 6
		rounds, concurrency = 3, 4
		dedupReqs = 60
	}
	probe := serviceDocs(1, rows)
	bench := ServiceBench{
		PageRows:       rows,
		PageBytes:      len(probe[0]),
		Universe:       universe,
		CachePerWorker: cacheEntries,
	}

	// --- Dedup sweep: one worker, cache on vs off, same traffic. ---
	for _, dup := range []float64{0, 0.5, 0.9} {
		distinct := int(float64(dedupReqs)*(1-dup) + 0.5)
		if distinct < 1 {
			distinct = 1
		}
		docs := serviceDocs(distinct, rows)
		traffic := make([]string, dedupReqs)
		for i := range traffic {
			// First present every distinct page once, then repeat:
			// dup-ratio exact by construction.
			traffic[i] = docs[i%distinct]
		}

		offS, offTS := bootWorker(&service.Config{DocCacheEntries: -1, MaxInFlight: -1})
		offWall, _ := drive(offTS.URL+"/extract/items", traffic, concurrency)
		offTS.Close()
		_ = offS

		onS, onTS := bootWorker(&service.Config{DocCacheEntries: dedupReqs, MaxInFlight: -1})
		onWall, _ := drive(onTS.URL+"/extract/items", traffic, concurrency)
		hits, misses := dedupHits(onS)
		onTS.Close()

		offNs := float64(offWall.Nanoseconds()) / float64(dedupReqs)
		onNs := float64(onWall.Nanoseconds()) / float64(dedupReqs)
		bench.Dedup = append(bench.Dedup, ServiceDedupPoint{
			DupRatio:         dup,
			Requests:         dedupReqs,
			CacheOffNsPerDoc: offNs,
			CacheOnNsPerDoc:  onNs,
			Speedup:          offNs / onNs,
			HitRate:          float64(hits) / float64(hits+misses),
		})
	}

	// --- Shard scaling: same universe and traffic at N ∈ {1,2,4}. ---
	docs := serviceDocs(universe, rows)
	traffic := make([]string, 0, universe*rounds)
	for r := 0; r < rounds; r++ {
		for _, d := range docs {
			traffic = append(traffic, d)
		}
	}
	for _, n := range []int{1, 2, 4} {
		workers := make([]*service.Server, n)
		urls := make([]string, n)
		servers := make([]*httptest.Server, n)
		for i := 0; i < n; i++ {
			wcfg := &service.Config{DocCacheEntries: cacheEntries, MaxInFlight: -1}
			if n > 1 {
				wcfg.ShardOf = fmt.Sprintf("%d/%d", i, n)
			}
			workers[i], servers[i] = bootWorker(wcfg)
			urls[i] = servers[i].URL
		}
		target := urls[0]
		var fts *httptest.Server
		if n > 1 {
			f, err := service.NewFront(service.FrontConfig{Workers: urls, WorkerInFlight: -1})
			if err != nil {
				panic(fmt.Sprintf("experiments: service bench front: %v", err))
			}
			fts = httptest.NewServer(f.Handler())
			target = fts.URL
		}
		wall, lat := drive(target+"/extract/items", traffic, concurrency)
		var hits, misses int64
		for _, w := range workers {
			h, m := dedupHits(w)
			hits, misses = hits+h, misses+m
		}
		if fts != nil {
			fts.Close()
		}
		for _, ts := range servers {
			ts.Close()
		}
		pt := ServiceShardPoint{
			Workers:       n,
			Requests:      len(traffic),
			Concurrency:   concurrency,
			ThroughputRPS: float64(len(traffic)) / wall.Seconds(),
			P50Ms:         percentileMs(lat, 0.50),
			P99Ms:         percentileMs(lat, 0.99),
			HitRate:       float64(hits) / float64(hits+misses),
		}
		if len(bench.Shard) > 0 {
			pt.SpeedupVs1 = pt.ThroughputRPS / bench.Shard[0].ThroughputRPS
		} else {
			pt.SpeedupVs1 = 1
		}
		bench.Shard = append(bench.Shard, pt)
	}
	return bench
}
