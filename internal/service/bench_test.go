package service

// BenchmarkServicePath — EXT-SERVICE: what the HTTP serving layer
// costs on top of the direct library API. Three lanes share one
// wrapper and one document:
//
//   - "direct":       CompiledQuery.Select on a pre-parsed tree — the
//     in-process floor (result-memo hit after the first run).
//   - "extract-http": POST /extract/{name} through a real HTTP stack
//     (httptest server, fresh body parse per request — the per-request
//     shape of serving distinct pages).
//   - "batch-http-16": POST /batch/{name} with 16 documents per
//     request, fanned across the worker pool.

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	mdlog "mdlog"
	"mdlog/internal/html"
)

func BenchmarkServicePath(b *testing.B) {
	rng := rand.New(rand.NewSource(61))
	page := html.ProductListing(rng, 100)
	cfg := &Config{Wrappers: []ConfigWrapper{{
		Name:        "items",
		WrapperSpec: WrapperSpec{Lang: mdlog.LangXPath, Source: "//tr[td/b]/td"},
	}}}
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	wr, _ := s.Registry().Get("items")
	doc := mdlog.ParseHTML(page)

	b.Run("direct", func(b *testing.B) {
		ctx := context.Background()
		for i := 0; i < b.N; i++ {
			if _, err := wr.Query.Select(ctx, doc); err != nil {
				b.Fatal(err)
			}
		}
	})
	post := func(b *testing.B, url, body string) {
		resp, err := http.Post(url, "text/html", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	b.Run("extract-http", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			post(b, ts.URL+"/extract/items", page)
		}
	})
	b.Run("batch-http-16", func(b *testing.B) {
		var docs []string
		for i := 0; i < 16; i++ {
			docs = append(docs, fmt.Sprintf(`{"id":"p%d","html":%q}`, i, page))
		}
		body := `{"docs":[` + strings.Join(docs, ",") + `]}`
		for i := 0; i < b.N; i++ {
			post(b, ts.URL+"/batch/items", body)
		}
	})
}
