package service

import (
	"net/http"
	"time"

	mdlog "mdlog"
)

// wrapperStats is one wrapper's point-in-time measurement: the
// compiled query's lifetime aggregate plus its cache snapshot.
type wrapperStats struct {
	wr    *Wrapper
	query mdlog.Stats
	cache mdlog.CacheStats
	// cached is false when the wrapper was compiled without a cache.
	cached bool
	// opt is the compile-time optimizer report (zero for plans that
	// did not route through datalog).
	opt mdlog.OptReport
}

// snapshot collects per-wrapper stats (registry order: sorted by name)
// and the service-wide rollup of the query stats.
func (s *Server) snapshot() ([]wrapperStats, mdlog.Stats) {
	ws := s.reg.Snapshot()
	out := make([]wrapperStats, len(ws))
	var total mdlog.Stats
	for i, wr := range ws {
		st := wrapperStats{wr: wr, query: wr.Query.Stats(), opt: wr.Query.OptStats()}
		if c := wr.Query.Cache(); c != nil {
			st.cache = c.Stats()
			st.cached = true
		}
		total.Merge(st.query)
		out[i] = st
	}
	return out, total
}

// queryStatsJSON renders a lifetime aggregate (see mdlog.Stats). The
// "engine" entry is the engine that SERVED the aggregated runs —
// "mixed" when a wrapper's runs were split across engines (e.g. a
// bitmap wrapper whose fused all-wrapper passes fell back to linear),
// "" before the first run.
func queryStatsJSON(st mdlog.Stats) map[string]any {
	return map[string]any{
		"runs":           st.Runs,
		"fused_runs":     st.FusedRuns,
		"subsumed_runs":  st.SubsumedRuns,
		"facts":          st.Facts,
		"spans":          st.Spans,
		"cache_hits":     st.CacheHits,
		"parse_ns":       int64(st.Parse),
		"compile_ns":     int64(st.Compile),
		"materialize_ns": int64(st.Materialize),
		"eval_ns":        int64(st.Eval),
		"engine":         st.Engine,
	}
}

// runStatsJSON renders a single run's measurements (the per-request
// stats attached to /extract responses).
func runStatsJSON(st mdlog.Stats) map[string]any {
	return map[string]any{
		"facts":          st.Facts,
		"spans":          st.Spans,
		"cache_hits":     st.CacheHits,
		"materialize_ns": int64(st.Materialize),
		"eval_ns":        int64(st.Eval),
		"engine":         st.Engine,
	}
}

func cacheStatsJSON(cs mdlog.CacheStats) map[string]any {
	return map[string]any{
		"trees":            cs.Trees,
		"results":          cs.Results,
		"hits":             cs.Hits,
		"misses":           cs.Misses,
		"result_evictions": cs.ResultEvictions,
	}
}

// subsumePlans returns the fused all-wrapper set's per-member compile
// decisions keyed by wrapper name, plus its fuse report. ok is false
// when no set exists (empty registry) or the set failed to build —
// introspection surfaces then simply omit the subsumption view.
func (s *Server) subsumePlans() (map[string]mdlog.MemberPlan, mdlog.FuseReport, bool) {
	set, err := s.querySet()
	if err != nil || set == nil {
		return nil, mdlog.FuseReport{}, false
	}
	plans := set.Plans()
	out := make(map[string]mdlog.MemberPlan, len(plans))
	for _, p := range plans {
		out[p.Name] = p
	}
	return out, set.FuseStats(), true
}

// memberPlanJSON renders one wrapper's compile decision in the fused
// all-wrapper set: "evaluated" (owns rules in the fused pass),
// "subsumed" (answered by projection from an equivalent wrapper), or
// "individual" (not covered by the fused pass).
func memberPlanJSON(p mdlog.MemberPlan) map[string]any {
	mode := "individual"
	switch {
	case p.Subsumed:
		mode = "subsumed"
	case p.Fused:
		mode = "evaluated"
	}
	entry := map[string]any{"mode": mode, "rules": p.Rules}
	if p.Fused {
		entry["class"] = p.Class
	}
	if p.SharedWith != "" {
		entry["shared_with"] = p.SharedWith
	}
	return entry
}

// fuseReportJSON renders the registry-wide fusion/subsumption report:
// what the compile pipeline merged, extracted, and proved across the
// whole wrapper fleet.
func fuseReportJSON(rep mdlog.FuseReport) map[string]any {
	return map[string]any{
		"members":         rep.Members,
		"rules_in":        rep.RulesIn,
		"rules_out":       rep.RulesOut,
		"merged_preds":    rep.MergedPreds,
		"merged_rules":    rep.MergedRules,
		"cse_preds":       rep.CSEPreds,
		"cse_refs":        rep.CSERefs,
		"subsume_checked": rep.SubsumeChecked,
		"subsumed_preds":  rep.SubsumedPreds,
		"subsume_unknown": rep.SubsumeUnknown,
		"check_ns":        rep.CheckNs,
	}
}

// handleStats reports per-wrapper query + cache aggregates, the
// service-wide rollup, and the daemon's own counters.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	stats, total := s.snapshot()
	plans, fuseRep, havePlans := s.subsumePlans()
	wrappers := make(map[string]any, len(stats))
	for _, st := range stats {
		entry := map[string]any{
			"lang":    st.wr.Spec.Lang.String(),
			"version": st.wr.Version,
			// The engine the wrapper's own plan routes through (what an
			// individual /extract uses); the served-run attribution,
			// which can differ under fused passes, is query.engine.
			"engine": st.wr.Query.EngineName(),
			"query":  queryStatsJSON(st.query),
		}
		if st.cached {
			entry["cache"] = cacheStatsJSON(st.cache)
		}
		if st.opt.RulesBefore > 0 {
			entry["optimizer"] = map[string]any{
				"level":        st.opt.Level.String(),
				"rules_before": st.opt.RulesBefore,
				"rules_after":  st.opt.RulesAfter,
				"inlined":      st.opt.Inlined,
				"dead_rules":   st.opt.DeadRules,
			}
		}
		if p, ok := plans[st.wr.Name]; ok {
			entry["subsume"] = memberPlanJSON(p)
		}
		wrappers[st.wr.Name] = entry
	}
	body := map[string]any{
		"service":  s.serviceJSON(),
		"wrappers": wrappers,
		"totals":   queryStatsJSON(total),
	}
	if havePlans {
		body["fusion"] = fuseReportJSON(fuseRep)
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) serviceJSON() map[string]any {
	reqs := make(map[string]int64, endpoints)
	for ep := endpoint(0); ep < endpoints; ep++ {
		reqs[ep.String()] = s.requests[ep].Load()
	}
	svc := map[string]any{
		"uptime_seconds":  time.Since(s.started).Seconds(),
		"wrappers":        s.reg.Len(),
		"in_flight":       s.inFlight.Load(),
		"max_in_flight":   s.maxIn,
		"rejected":        s.rejected.Load(),
		"documents":       s.documents.Load(),
		"document_errors": s.docErrors.Load(),
		"requests":        reqs,
		"sessions":        s.sessionsJSON(),
	}
	if s.store != nil {
		svc["store"] = map[string]any{
			"path":    s.store.Path(),
			"saves":   s.storeSaves.Load(),
			"errors":  s.storeErrors.Load(),
			"reloads": s.reloads.Load(),
		}
	}
	if s.docs != nil {
		cs := s.docs.stats()
		svc["doc_cache"] = map[string]any{
			"entries":   cs.entries,
			"max":       cs.max,
			"hits":      cs.hits,
			"misses":    cs.misses,
			"evictions": cs.evictions,
		}
	}
	if s.shardN > 0 {
		svc["shard"] = map[string]any{
			"index":     s.shardIdx,
			"of":        s.shardN,
			"misrouted": s.shardMisrouted.Load(),
		}
	}
	return svc
}

// sessionsJSON rolls up the live document sessions: the store state
// plus the incremental-maintenance counters summed across sessions.
func (s *Server) sessionsJSON() map[string]any {
	var applies, fallbacks, overdeleted, rederived int
	var edits int64
	sessions := s.sessions.snapshot()
	for _, ss := range sessions {
		ds := ss.doc.Stats()
		edits += ds.Edits
		applies += ds.Inc.Applies
		fallbacks += ds.Inc.Fallbacks
		overdeleted += ds.Inc.Overdeleted
		rederived += ds.Inc.Rederived
	}
	return map[string]any{
		"count":        len(sessions),
		"max":          s.sessions.max,
		"rejected":     s.sessionRejected.Load(),
		"edits":        s.sessionEdits.Load(),
		"live_edits":   edits,
		"inc_applies":  applies,
		"inc_fallback": fallbacks,
		"overdeleted":  overdeleted,
		"rederived":    rederived,
	}
}
