package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	mdlog "mdlog"
)

// Defaults applied by New when the corresponding Config field is zero.
const (
	// DefaultAddr is the listen address mdlogd binds without -addr or
	// an "addr" config entry.
	DefaultAddr = ":8090"
	// DefaultMaxInFlight bounds concurrently admitted extraction
	// requests (extract + batch); excess requests are rejected with
	// 503 instead of queuing without bound.
	DefaultMaxInFlight = 64
	// DefaultMaxBodyBytes bounds one request body (a document, or a
	// whole batch envelope).
	DefaultMaxBodyBytes = 32 << 20
	// DefaultShutdownGraceMS is how long Serve waits for in-flight
	// requests after its context is canceled.
	DefaultShutdownGraceMS = 5000
	// DefaultMaxSessions bounds live document sessions; at capacity a
	// PUT /documents/{id} reclaims the least-recently-used idle session
	// or is shed with 503.
	DefaultMaxSessions = 64
	// DefaultSessionIdleMS is how long a session must sit unused before
	// the capacity policy may reclaim it.
	DefaultSessionIdleMS = 60_000
	// DefaultDocCacheEntries bounds the content-hash document dedup
	// cache (distinct parsed documents kept live).
	DefaultDocCacheEntries = 256
)

// Config is mdlogd's boot configuration (JSON on disk; see
// LoadConfig). The zero value is usable: every field has a default.
type Config struct {
	// Addr is the host:port to listen on (DefaultAddr if empty).
	Addr string `json:"addr,omitempty"`
	// Workers bounds the batch fan-out worker pool (≤ 0: GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// MaxInFlight bounds concurrently admitted extraction requests
	// (0: DefaultMaxInFlight; < 0: unbounded).
	MaxInFlight int `json:"max_in_flight,omitempty"`
	// MaxBodyBytes bounds one request body (0: DefaultMaxBodyBytes;
	// < 0: unbounded).
	MaxBodyBytes int64 `json:"max_body_bytes,omitempty"`
	// ShutdownGraceMS is the graceful-shutdown window in milliseconds
	// (0: DefaultShutdownGraceMS).
	ShutdownGraceMS int `json:"shutdown_grace_ms,omitempty"`
	// Opt is the daemon-wide default optimization level ("0", "1",
	// "O0", "O1") applied to wrapper specs that do not set their own;
	// empty means full optimization.
	Opt string `json:"opt,omitempty"`
	// Engine is the daemon-wide default evaluation engine ("linear",
	// "bitmap", "seminaive", "naive", "lit") applied to wrapper specs
	// that do not set their own; empty means linear. An unknown name
	// fails the boot with an error listing the valid engines.
	Engine string `json:"engine,omitempty"`
	// MaxSessions bounds live document sessions (0:
	// DefaultMaxSessions; < 0: unbounded). At capacity, PUT
	// /documents/{id} for a new id reclaims the least-recently-used
	// session idle past SessionIdleMS, or is rejected with 503.
	MaxSessions int `json:"max_sessions,omitempty"`
	// SessionIdleMS is the idle threshold for capacity reclaim in
	// milliseconds (0: DefaultSessionIdleMS).
	SessionIdleMS int `json:"session_idle_ms,omitempty"`
	// DataDir enables the persistent wrapper store: the registry
	// snapshot lives at DataDir/wrappers.json, rewritten atomically
	// after every successful wrapper mutation and re-read on SIGHUP
	// (Server.Reload). Empty means no persistence.
	DataDir string `json:"data_dir,omitempty"`
	// DocCacheEntries bounds the content-hash document dedup cache
	// (0: DefaultDocCacheEntries; < 0: cache disabled — every request
	// parses privately).
	DocCacheEntries int `json:"doc_cache_entries,omitempty"`
	// ShardOf runs the daemon as one worker of a shard fleet ("i/n",
	// 0 ≤ i < n): documents whose content hash the consistent-hash
	// ring assigns to a different worker are rejected with 421 rather
	// than silently polluting this worker's dedup cache. Empty means
	// standalone.
	ShardOf string `json:"shard_of,omitempty"`
	// RingReplicas is the consistent-hash ring's virtual-node count
	// per worker (0: DefaultRingReplicas). Front tier and workers
	// must agree on it.
	RingReplicas int `json:"ring_replicas,omitempty"`
	// Wrappers are compiled and registered at boot.
	Wrappers []ConfigWrapper `json:"wrappers,omitempty"`
}

// ConfigWrapper is one boot-time registry entry: a WrapperSpec plus
// its name and an optional source file reference.
type ConfigWrapper struct {
	// Name is the registry key ({name} in the endpoint paths).
	Name string `json:"name"`
	WrapperSpec
	// File names a file to read Source from (relative paths resolve
	// against the config file's directory). Exactly one of File and
	// Source must be set.
	File string `json:"file,omitempty"`
}

// WrapperSpec is the compilable description of a wrapper — the JSON
// body of PUT /wrappers/{name} and the inline part of a boot entry.
type WrapperSpec struct {
	// Lang is the source language ("datalog", "tmnf", "mso", "xpath",
	// "caterpillar", "elog").
	Lang mdlog.Language `json:"lang"`
	// Source is the query text in that language.
	Source string `json:"source"`
	// Pred overrides the distinguished query predicate Select reads.
	Pred string `json:"pred,omitempty"`
	// Extract restricts the predicates / patterns Wrap extracts.
	Extract []string `json:"extract,omitempty"`
	// KeepText copies #text content into wrapped output trees.
	KeepText bool `json:"keep_text,omitempty"`
	// Engine selects the evaluation engine ("linear", "bitmap",
	// "seminaive", "naive", "lit"; empty: the daemon default, which
	// itself defaults to linear). Only datalog-routed plans honor it;
	// an unknown name is rejected at compile time with an error
	// listing the valid engines.
	Engine string `json:"engine,omitempty"`
	// Opt sets the optimization level ("0", "1", "O0", "O1"; empty:
	// the daemon default, which itself defaults to full).
	Opt string `json:"opt,omitempty"`
}

// Compile turns the spec into a CompiledQuery (the registry's unit of
// serving).
func (ws WrapperSpec) Compile() (*mdlog.CompiledQuery, error) {
	opts := []mdlog.Option{mdlog.WithWrapOptions(mdlog.WrapOptions{KeepText: ws.KeepText})}
	if ws.Pred != "" {
		opts = append(opts, mdlog.WithQueryPred(ws.Pred))
	}
	if len(ws.Extract) > 0 {
		opts = append(opts, mdlog.WithExtract(ws.Extract...))
	}
	if ws.Engine != "" {
		e, err := mdlog.ParseEngineFlag(ws.Engine)
		if err != nil {
			return nil, err
		}
		opts = append(opts, mdlog.WithEngine(e))
	}
	if ws.Opt != "" {
		l, err := mdlog.ParseOptLevel(ws.Opt)
		if err != nil {
			return nil, err
		}
		opts = append(opts, mdlog.WithOptLevel(l))
	}
	return mdlog.Compile(ws.Source, ws.Lang, opts...)
}

// LoadConfig reads a JSON config file, rejecting unknown fields, and
// inlines every wrapper's File into its Source (relative to the
// config file's directory), so the result is self-contained.
func LoadConfig(path string) (*Config, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg, err := ParseConfig(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	dir := filepath.Dir(path)
	for i := range cfg.Wrappers {
		cw := &cfg.Wrappers[i]
		if cw.File == "" {
			continue
		}
		if cw.Source != "" {
			return nil, fmt.Errorf("%s: wrapper %q sets both file and source", path, cw.Name)
		}
		f := cw.File
		if !filepath.IsAbs(f) {
			f = filepath.Join(dir, f)
		}
		src, err := os.ReadFile(f)
		if err != nil {
			return nil, fmt.Errorf("wrapper %q: %w", cw.Name, err)
		}
		cw.Source = string(src)
		cw.File = ""
	}
	return cfg, nil
}

// ParseConfig decodes a JSON config document, rejecting unknown
// fields. File references are not resolved — see LoadConfig.
func ParseConfig(b []byte) (*Config, error) {
	var cfg Config
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	return &cfg, nil
}
