package service

// Persistence tests: the restart round-trip e2e (the registry a daemon
// serves after a reboot is byte-for-byte the one it served before),
// the corrupt-snapshot boot refusal, and the SIGHUP reload path.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	mdlog "mdlog"
)

// rawBody issues one request and returns status + exact body bytes.
func rawBody(t *testing.T, method, url, body string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestStoreRestartRoundTrip is the e2e: register wrappers over HTTP
// against a data dir, tear the server down, boot a fresh one on the
// same dir, and require an identical /wrappers listing and
// byte-identical /extract responses — plus the version counter
// surviving the restart.
func TestStoreRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()

	_, ts1 := newTestServer(t, &Config{DataDir: dir})
	spec, _ := json.Marshal(map[string]any{"lang": "elog", "source": elogSrc})
	if status, body := doJSON(t, http.MethodPut, ts1.URL+"/wrappers/items", string(spec)); status != http.StatusCreated {
		t.Fatalf("PUT: status %d, body %v", status, body)
	}
	// Replace once so the version counter moves past 1.
	if status, body := doJSON(t, http.MethodPut, ts1.URL+"/wrappers/items", string(spec)); status != http.StatusOK {
		t.Fatalf("re-PUT: status %d, body %v", status, body)
	}
	spec2, _ := json.Marshal(map[string]any{
		"lang":   "elog",
		"source": `cell(x) :- root(x0), subelem("html.body.table.tr.td", x0, x).`,
	})
	if status, body := doJSON(t, http.MethodPut, ts1.URL+"/wrappers/cells", string(spec2)); status != http.StatusCreated {
		t.Fatalf("PUT cells: status %d, body %v", status, body)
	}

	wantList, err := json.Marshal(listWrappers(t, ts1.URL))
	if err != nil {
		t.Fatal(err)
	}
	// ?output=assign responses carry no run timings, so equality is
	// byte-for-byte; the default output embeds eval_ns.
	_, wantExtract := rawBody(t, http.MethodPost, ts1.URL+"/extract/items?output=assign", page)
	_, wantAll := rawBody(t, http.MethodPost, ts1.URL+"/extractall", page)
	ts1.Close() // "kill" the daemon; the data dir survives

	_, ts2 := newTestServer(t, &Config{DataDir: dir})
	gotList, err := json.Marshal(listWrappers(t, ts2.URL))
	if err != nil {
		t.Fatal(err)
	}
	if string(gotList) != string(wantList) {
		t.Errorf("restarted /wrappers:\n got %s\nwant %s", gotList, wantList)
	}
	if _, got := rawBody(t, http.MethodPost, ts2.URL+"/extract/items?output=assign", page); string(got) != string(wantExtract) {
		t.Errorf("restarted /extract:\n got %s\nwant %s", got, wantExtract)
	}
	if _, got := rawBody(t, http.MethodPost, ts2.URL+"/extractall", page); string(got) != string(wantAll) {
		t.Errorf("restarted /extractall:\n got %s\nwant %s", got, wantAll)
	}
	status, info := doJSON(t, http.MethodGet, ts2.URL+"/wrappers/items", "")
	if status != http.StatusOK {
		t.Fatalf("GET items: status %d", status)
	}
	if v := info["version"].(float64); v != 2 {
		t.Errorf("items version after restart = %v, want 2 (survived replacement count)", v)
	}
}

// listWrappers fetches /wrappers stripped of nothing — the comparison
// is on the full JSON value.
func listWrappers(t *testing.T, base string) map[string]any {
	t.Helper()
	status, v := doJSON(t, http.MethodGet, base+"/wrappers", "")
	if status != http.StatusOK {
		t.Fatalf("GET /wrappers: status %d", status)
	}
	return v
}

// TestStoreCorruptSnapshotFailsBoot: a daemon must refuse to boot —
// naming the file — rather than silently serve an empty registry.
func TestStoreCorruptSnapshotFailsBoot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, storeFileName)
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := New(&Config{DataDir: dir})
	if err == nil {
		t.Fatal("New booted on a corrupt store snapshot")
	}
	if !strings.Contains(err.Error(), path) {
		t.Errorf("boot error %q does not name the snapshot file %q", err, path)
	}

	// Same refusal for a future format version.
	future, _ := json.Marshal(map[string]any{"format_version": storeFormatVersion + 1, "wrappers": []any{}})
	if err := os.WriteFile(path, future, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(&Config{DataDir: dir}); err == nil {
		t.Fatal("New booted on a future-format store snapshot")
	}
}

// TestStoreBootSeedsAndPrecedence: config wrappers seed a fresh store,
// and on the next boot the stored entry wins over a changed config
// seed (the store is runtime state, the config only fills gaps).
func TestStoreBootSeedsAndPrecedence(t *testing.T) {
	dir := t.TempDir()
	cfg := bootConfig()
	cfg.DataDir = dir
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, storeFileName)); err != nil {
		t.Fatalf("boot did not write the snapshot: %v", err)
	}
	w1, _ := s1.Registry().Get("items")

	// Reboot with a different config source for the same name: the
	// stored spec must win.
	cfg2 := &Config{DataDir: dir, Wrappers: []ConfigWrapper{{
		Name:        "items",
		WrapperSpec: WrapperSpec{Lang: mdlog.LangElog, Source: `item(x) :- root(x).`},
	}, {
		Name:        "extra",
		WrapperSpec: WrapperSpec{Lang: mdlog.LangElog, Source: `item(x) :- root(x).`},
	}}}
	s2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	w2, ok := s2.Registry().Get("items")
	if !ok || w2.Spec.Source != w1.Spec.Source {
		t.Errorf("stored spec lost to config seed: got %q, want %q", w2.Spec.Source, w1.Spec.Source)
	}
	if _, ok := s2.Registry().Get("extra"); !ok {
		t.Error("config seed for a name absent from the store was dropped")
	}
}

// TestReload: rewriting the snapshot out-of-band and calling Reload
// (the SIGHUP path) swaps the registry without a restart; a snapshot
// with a broken wrapper leaves the serving registry untouched.
func TestReload(t *testing.T) {
	dir := t.TempDir()
	cfg := bootConfig()
	cfg.DataDir = dir
	s, ts := newTestServer(t, cfg)

	// Rewrite the snapshot as another process would: same shape, new
	// wrapper name, bumped version.
	snap := storeFile{FormatVersion: storeFormatVersion, Wrappers: []StoredWrapper{{
		Name:    "rows",
		Version: 7,
		Spec:    WrapperSpec{Lang: mdlog.LangElog, Source: elogSrc},
	}}}
	b, _ := json.Marshal(snap)
	if err := os.WriteFile(filepath.Join(dir, storeFileName), b, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Reload(); err != nil {
		t.Fatal(err)
	}
	if status, _ := doJSON(t, http.MethodPost, ts.URL+"/extract/items", page); status != http.StatusNotFound {
		t.Errorf("old wrapper survived reload: status %d, want 404", status)
	}
	status, body := doJSON(t, http.MethodPost, ts.URL+"/extract/rows", page)
	if status != http.StatusOK {
		t.Errorf("reloaded wrapper: status %d, body %v", status, body)
	}
	status, info := doJSON(t, http.MethodGet, ts.URL+"/wrappers/rows", "")
	if status != http.StatusOK || info["version"].(float64) != 7 {
		t.Errorf("reloaded version: status %d, info %v, want version 7", status, info)
	}

	// A snapshot that fails to compile must not touch the registry.
	bad, _ := json.Marshal(storeFile{FormatVersion: storeFormatVersion, Wrappers: []StoredWrapper{{
		Name: "broken",
		Spec: WrapperSpec{Lang: mdlog.LangElog, Source: "item(x :- nope"},
	}}})
	if err := os.WriteFile(filepath.Join(dir, storeFileName), bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Reload(); err == nil {
		t.Fatal("Reload accepted a snapshot with a broken wrapper")
	}
	if status, _ := doJSON(t, http.MethodPost, ts.URL+"/extract/rows", page); status != http.StatusOK {
		t.Errorf("failed reload disturbed the serving registry: status %d", status)
	}

	// Reload without a store is an error, not a crash.
	s2, err := New(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Reload(); err == nil {
		t.Error("Reload without a data dir should fail")
	}
}

// TestStoreAtomicSave: the snapshot on disk is always complete JSON —
// after many rapid mutations the final file parses and matches the
// registry.
func TestStoreAtomicSave(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, &Config{DataDir: dir})
	for i := 0; i < 20; i++ {
		spec, _ := json.Marshal(map[string]any{"lang": "elog", "source": elogSrc})
		name := fmt.Sprintf("w%d", i%5)
		if status, body := doJSON(t, http.MethodPut, ts.URL+"/wrappers/"+name, string(spec)); status != http.StatusCreated && status != http.StatusOK {
			t.Fatalf("PUT %s: status %d, body %v", name, status, body)
		}
	}
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := st.Load()
	if err != nil {
		t.Fatalf("snapshot unreadable after rapid mutations: %v", err)
	}
	if len(ws) != 5 {
		t.Errorf("snapshot has %d wrappers, want 5", len(ws))
	}
	for _, sw := range ws {
		if sw.Name == "w0" && sw.Version != 4 {
			t.Errorf("w0 version = %d, want 4 (installed 4 times)", sw.Version)
		}
	}
	// No temp-file litter from the replace-on-write dance.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != storeFileName {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Errorf("data dir contents %v, want just %s", names, storeFileName)
	}
}
